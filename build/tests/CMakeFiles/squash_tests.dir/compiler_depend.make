# Empty compiler generated dependencies file for squash_tests.
# This may be replaced when dependencies are built.
