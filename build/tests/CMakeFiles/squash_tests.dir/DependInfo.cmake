
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/asm_test.cpp" "tests/CMakeFiles/squash_tests.dir/asm_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/asm_test.cpp.o.d"
  "/root/repo/tests/coldcode_test.cpp" "tests/CMakeFiles/squash_tests.dir/coldcode_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/coldcode_test.cpp.o.d"
  "/root/repo/tests/compact_test.cpp" "tests/CMakeFiles/squash_tests.dir/compact_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/compact_test.cpp.o.d"
  "/root/repo/tests/disasm_test.cpp" "tests/CMakeFiles/squash_tests.dir/disasm_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/disasm_test.cpp.o.d"
  "/root/repo/tests/driver_test.cpp" "tests/CMakeFiles/squash_tests.dir/driver_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/driver_test.cpp.o.d"
  "/root/repo/tests/equivalence_test.cpp" "tests/CMakeFiles/squash_tests.dir/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/equivalence_test.cpp.o.d"
  "/root/repo/tests/huffman_test.cpp" "tests/CMakeFiles/squash_tests.dir/huffman_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/huffman_test.cpp.o.d"
  "/root/repo/tests/inspect_test.cpp" "tests/CMakeFiles/squash_tests.dir/inspect_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/inspect_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/squash_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/isa_test.cpp" "tests/CMakeFiles/squash_tests.dir/isa_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/isa_test.cpp.o.d"
  "/root/repo/tests/link_test.cpp" "tests/CMakeFiles/squash_tests.dir/link_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/link_test.cpp.o.d"
  "/root/repo/tests/randomprog_test.cpp" "tests/CMakeFiles/squash_tests.dir/randomprog_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/randomprog_test.cpp.o.d"
  "/root/repo/tests/regions_test.cpp" "tests/CMakeFiles/squash_tests.dir/regions_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/regions_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/squash_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/squash_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/streamcodec_test.cpp" "tests/CMakeFiles/squash_tests.dir/streamcodec_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/streamcodec_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/squash_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/unswitch_test.cpp" "tests/CMakeFiles/squash_tests.dir/unswitch_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/unswitch_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/squash_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/squash_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/squash/CMakeFiles/squash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/squash_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/squash_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/squash_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/huff/CMakeFiles/squash_huff.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/squash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/squash_link.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/squash_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/squash_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/squash_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
