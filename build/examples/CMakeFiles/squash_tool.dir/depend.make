# Empty dependencies file for squash_tool.
# This may be replaced when dependencies are built.
