file(REMOVE_RECURSE
  "CMakeFiles/squash_tool.dir/squash_tool.cpp.o"
  "CMakeFiles/squash_tool.dir/squash_tool.cpp.o.d"
  "squash_tool"
  "squash_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
