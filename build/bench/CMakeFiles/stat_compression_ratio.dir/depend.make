# Empty dependencies file for stat_compression_ratio.
# This may be replaced when dependencies are built.
