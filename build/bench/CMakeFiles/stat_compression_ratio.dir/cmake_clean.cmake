file(REMOVE_RECURSE
  "CMakeFiles/stat_compression_ratio.dir/stat_compression_ratio.cpp.o"
  "CMakeFiles/stat_compression_ratio.dir/stat_compression_ratio.cpp.o.d"
  "stat_compression_ratio"
  "stat_compression_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_compression_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
