file(REMOVE_RECURSE
  "CMakeFiles/stat_restore_stubs.dir/stat_restore_stubs.cpp.o"
  "CMakeFiles/stat_restore_stubs.dir/stat_restore_stubs.cpp.o.d"
  "stat_restore_stubs"
  "stat_restore_stubs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_restore_stubs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
