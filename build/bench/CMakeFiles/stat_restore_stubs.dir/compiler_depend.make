# Empty compiler generated dependencies file for stat_restore_stubs.
# This may be replaced when dependencies are built.
