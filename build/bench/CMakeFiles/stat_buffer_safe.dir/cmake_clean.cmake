file(REMOVE_RECURSE
  "CMakeFiles/stat_buffer_safe.dir/stat_buffer_safe.cpp.o"
  "CMakeFiles/stat_buffer_safe.dir/stat_buffer_safe.cpp.o.d"
  "stat_buffer_safe"
  "stat_buffer_safe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_buffer_safe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
