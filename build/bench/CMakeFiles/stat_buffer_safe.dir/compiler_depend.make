# Empty compiler generated dependencies file for stat_buffer_safe.
# This may be replaced when dependencies are built.
