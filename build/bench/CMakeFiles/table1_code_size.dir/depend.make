# Empty dependencies file for table1_code_size.
# This may be replaced when dependencies are built.
