
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_cold_code.cpp" "bench/CMakeFiles/fig4_cold_code.dir/fig4_cold_code.cpp.o" "gcc" "bench/CMakeFiles/fig4_cold_code.dir/fig4_cold_code.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/squash/CMakeFiles/squash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/huff/CMakeFiles/squash_huff.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/squash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/squash_link.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/squash_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/squash_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/squash_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/squash_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/squash_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
