file(REMOVE_RECURSE
  "CMakeFiles/fig4_cold_code.dir/fig4_cold_code.cpp.o"
  "CMakeFiles/fig4_cold_code.dir/fig4_cold_code.cpp.o.d"
  "fig4_cold_code"
  "fig4_cold_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cold_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
