# Empty dependencies file for fig4_cold_code.
# This may be replaced when dependencies are built.
