# Empty compiler generated dependencies file for fig3_buffer_bound.
# This may be replaced when dependencies are built.
