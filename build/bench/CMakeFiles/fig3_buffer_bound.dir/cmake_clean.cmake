file(REMOVE_RECURSE
  "CMakeFiles/fig3_buffer_bound.dir/fig3_buffer_bound.cpp.o"
  "CMakeFiles/fig3_buffer_bound.dir/fig3_buffer_bound.cpp.o.d"
  "fig3_buffer_bound"
  "fig3_buffer_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_buffer_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
