file(REMOVE_RECURSE
  "CMakeFiles/fig6_size_reduction.dir/fig6_size_reduction.cpp.o"
  "CMakeFiles/fig6_size_reduction.dir/fig6_size_reduction.cpp.o.d"
  "fig6_size_reduction"
  "fig6_size_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_size_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
