# Empty compiler generated dependencies file for fig6_size_reduction.
# This may be replaced when dependencies are built.
