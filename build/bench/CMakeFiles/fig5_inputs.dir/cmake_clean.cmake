file(REMOVE_RECURSE
  "CMakeFiles/fig5_inputs.dir/fig5_inputs.cpp.o"
  "CMakeFiles/fig5_inputs.dir/fig5_inputs.cpp.o.d"
  "fig5_inputs"
  "fig5_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
