# Empty dependencies file for fig5_inputs.
# This may be replaced when dependencies are built.
