# Empty compiler generated dependencies file for fig7_size_and_time.
# This may be replaced when dependencies are built.
