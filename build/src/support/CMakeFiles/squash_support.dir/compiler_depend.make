# Empty compiler generated dependencies file for squash_support.
# This may be replaced when dependencies are built.
