file(REMOVE_RECURSE
  "libsquash_support.a"
)
