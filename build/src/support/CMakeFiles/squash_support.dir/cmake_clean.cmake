file(REMOVE_RECURSE
  "CMakeFiles/squash_support.dir/Error.cpp.o"
  "CMakeFiles/squash_support.dir/Error.cpp.o.d"
  "libsquash_support.a"
  "libsquash_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
