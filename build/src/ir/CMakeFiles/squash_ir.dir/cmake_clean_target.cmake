file(REMOVE_RECURSE
  "libsquash_ir.a"
)
