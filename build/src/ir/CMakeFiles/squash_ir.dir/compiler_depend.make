# Empty compiler generated dependencies file for squash_ir.
# This may be replaced when dependencies are built.
