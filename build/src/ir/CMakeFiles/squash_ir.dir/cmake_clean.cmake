file(REMOVE_RECURSE
  "CMakeFiles/squash_ir.dir/Builder.cpp.o"
  "CMakeFiles/squash_ir.dir/Builder.cpp.o.d"
  "CMakeFiles/squash_ir.dir/IR.cpp.o"
  "CMakeFiles/squash_ir.dir/IR.cpp.o.d"
  "libsquash_ir.a"
  "libsquash_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
