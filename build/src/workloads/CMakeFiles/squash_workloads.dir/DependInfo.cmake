
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Adpcm.cpp" "src/workloads/CMakeFiles/squash_workloads.dir/Adpcm.cpp.o" "gcc" "src/workloads/CMakeFiles/squash_workloads.dir/Adpcm.cpp.o.d"
  "/root/repo/src/workloads/Common.cpp" "src/workloads/CMakeFiles/squash_workloads.dir/Common.cpp.o" "gcc" "src/workloads/CMakeFiles/squash_workloads.dir/Common.cpp.o.d"
  "/root/repo/src/workloads/Epic.cpp" "src/workloads/CMakeFiles/squash_workloads.dir/Epic.cpp.o" "gcc" "src/workloads/CMakeFiles/squash_workloads.dir/Epic.cpp.o.d"
  "/root/repo/src/workloads/G721.cpp" "src/workloads/CMakeFiles/squash_workloads.dir/G721.cpp.o" "gcc" "src/workloads/CMakeFiles/squash_workloads.dir/G721.cpp.o.d"
  "/root/repo/src/workloads/Gsm.cpp" "src/workloads/CMakeFiles/squash_workloads.dir/Gsm.cpp.o" "gcc" "src/workloads/CMakeFiles/squash_workloads.dir/Gsm.cpp.o.d"
  "/root/repo/src/workloads/Jpeg.cpp" "src/workloads/CMakeFiles/squash_workloads.dir/Jpeg.cpp.o" "gcc" "src/workloads/CMakeFiles/squash_workloads.dir/Jpeg.cpp.o.d"
  "/root/repo/src/workloads/Lib.cpp" "src/workloads/CMakeFiles/squash_workloads.dir/Lib.cpp.o" "gcc" "src/workloads/CMakeFiles/squash_workloads.dir/Lib.cpp.o.d"
  "/root/repo/src/workloads/Mpeg2.cpp" "src/workloads/CMakeFiles/squash_workloads.dir/Mpeg2.cpp.o" "gcc" "src/workloads/CMakeFiles/squash_workloads.dir/Mpeg2.cpp.o.d"
  "/root/repo/src/workloads/Pgp.cpp" "src/workloads/CMakeFiles/squash_workloads.dir/Pgp.cpp.o" "gcc" "src/workloads/CMakeFiles/squash_workloads.dir/Pgp.cpp.o.d"
  "/root/repo/src/workloads/Rasta.cpp" "src/workloads/CMakeFiles/squash_workloads.dir/Rasta.cpp.o" "gcc" "src/workloads/CMakeFiles/squash_workloads.dir/Rasta.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/workloads/CMakeFiles/squash_workloads.dir/Workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/squash_workloads.dir/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/squash_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/squash_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/squash_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
