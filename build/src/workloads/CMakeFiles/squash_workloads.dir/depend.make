# Empty dependencies file for squash_workloads.
# This may be replaced when dependencies are built.
