file(REMOVE_RECURSE
  "libsquash_workloads.a"
)
