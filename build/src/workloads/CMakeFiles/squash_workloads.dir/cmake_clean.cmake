file(REMOVE_RECURSE
  "CMakeFiles/squash_workloads.dir/Adpcm.cpp.o"
  "CMakeFiles/squash_workloads.dir/Adpcm.cpp.o.d"
  "CMakeFiles/squash_workloads.dir/Common.cpp.o"
  "CMakeFiles/squash_workloads.dir/Common.cpp.o.d"
  "CMakeFiles/squash_workloads.dir/Epic.cpp.o"
  "CMakeFiles/squash_workloads.dir/Epic.cpp.o.d"
  "CMakeFiles/squash_workloads.dir/G721.cpp.o"
  "CMakeFiles/squash_workloads.dir/G721.cpp.o.d"
  "CMakeFiles/squash_workloads.dir/Gsm.cpp.o"
  "CMakeFiles/squash_workloads.dir/Gsm.cpp.o.d"
  "CMakeFiles/squash_workloads.dir/Jpeg.cpp.o"
  "CMakeFiles/squash_workloads.dir/Jpeg.cpp.o.d"
  "CMakeFiles/squash_workloads.dir/Lib.cpp.o"
  "CMakeFiles/squash_workloads.dir/Lib.cpp.o.d"
  "CMakeFiles/squash_workloads.dir/Mpeg2.cpp.o"
  "CMakeFiles/squash_workloads.dir/Mpeg2.cpp.o.d"
  "CMakeFiles/squash_workloads.dir/Pgp.cpp.o"
  "CMakeFiles/squash_workloads.dir/Pgp.cpp.o.d"
  "CMakeFiles/squash_workloads.dir/Rasta.cpp.o"
  "CMakeFiles/squash_workloads.dir/Rasta.cpp.o.d"
  "CMakeFiles/squash_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/squash_workloads.dir/Workloads.cpp.o.d"
  "libsquash_workloads.a"
  "libsquash_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
