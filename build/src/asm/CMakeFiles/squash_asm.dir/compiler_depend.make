# Empty compiler generated dependencies file for squash_asm.
# This may be replaced when dependencies are built.
