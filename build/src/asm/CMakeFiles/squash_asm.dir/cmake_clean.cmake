file(REMOVE_RECURSE
  "CMakeFiles/squash_asm.dir/Assembler.cpp.o"
  "CMakeFiles/squash_asm.dir/Assembler.cpp.o.d"
  "libsquash_asm.a"
  "libsquash_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
