file(REMOVE_RECURSE
  "libsquash_asm.a"
)
