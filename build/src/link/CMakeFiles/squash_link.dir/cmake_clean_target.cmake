file(REMOVE_RECURSE
  "libsquash_link.a"
)
