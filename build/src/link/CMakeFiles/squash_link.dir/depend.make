# Empty dependencies file for squash_link.
# This may be replaced when dependencies are built.
