file(REMOVE_RECURSE
  "CMakeFiles/squash_link.dir/ImageDisasm.cpp.o"
  "CMakeFiles/squash_link.dir/ImageDisasm.cpp.o.d"
  "CMakeFiles/squash_link.dir/Layout.cpp.o"
  "CMakeFiles/squash_link.dir/Layout.cpp.o.d"
  "libsquash_link.a"
  "libsquash_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
