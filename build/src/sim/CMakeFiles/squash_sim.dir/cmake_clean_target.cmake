file(REMOVE_RECURSE
  "libsquash_sim.a"
)
