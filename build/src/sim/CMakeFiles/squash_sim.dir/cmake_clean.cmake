file(REMOVE_RECURSE
  "CMakeFiles/squash_sim.dir/Machine.cpp.o"
  "CMakeFiles/squash_sim.dir/Machine.cpp.o.d"
  "libsquash_sim.a"
  "libsquash_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
