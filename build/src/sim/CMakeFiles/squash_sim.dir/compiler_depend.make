# Empty compiler generated dependencies file for squash_sim.
# This may be replaced when dependencies are built.
