file(REMOVE_RECURSE
  "CMakeFiles/squash_isa.dir/Disasm.cpp.o"
  "CMakeFiles/squash_isa.dir/Disasm.cpp.o.d"
  "CMakeFiles/squash_isa.dir/Isa.cpp.o"
  "CMakeFiles/squash_isa.dir/Isa.cpp.o.d"
  "libsquash_isa.a"
  "libsquash_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
