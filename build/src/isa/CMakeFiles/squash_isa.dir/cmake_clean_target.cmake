file(REMOVE_RECURSE
  "libsquash_isa.a"
)
