# Empty dependencies file for squash_isa.
# This may be replaced when dependencies are built.
