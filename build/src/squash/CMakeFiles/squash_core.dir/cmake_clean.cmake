file(REMOVE_RECURSE
  "CMakeFiles/squash_core.dir/BufferSafe.cpp.o"
  "CMakeFiles/squash_core.dir/BufferSafe.cpp.o.d"
  "CMakeFiles/squash_core.dir/ColdCode.cpp.o"
  "CMakeFiles/squash_core.dir/ColdCode.cpp.o.d"
  "CMakeFiles/squash_core.dir/Driver.cpp.o"
  "CMakeFiles/squash_core.dir/Driver.cpp.o.d"
  "CMakeFiles/squash_core.dir/Inspect.cpp.o"
  "CMakeFiles/squash_core.dir/Inspect.cpp.o.d"
  "CMakeFiles/squash_core.dir/Regions.cpp.o"
  "CMakeFiles/squash_core.dir/Regions.cpp.o.d"
  "CMakeFiles/squash_core.dir/Rewriter.cpp.o"
  "CMakeFiles/squash_core.dir/Rewriter.cpp.o.d"
  "CMakeFiles/squash_core.dir/Runtime.cpp.o"
  "CMakeFiles/squash_core.dir/Runtime.cpp.o.d"
  "CMakeFiles/squash_core.dir/Unswitch.cpp.o"
  "CMakeFiles/squash_core.dir/Unswitch.cpp.o.d"
  "libsquash_core.a"
  "libsquash_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
