
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/squash/BufferSafe.cpp" "src/squash/CMakeFiles/squash_core.dir/BufferSafe.cpp.o" "gcc" "src/squash/CMakeFiles/squash_core.dir/BufferSafe.cpp.o.d"
  "/root/repo/src/squash/ColdCode.cpp" "src/squash/CMakeFiles/squash_core.dir/ColdCode.cpp.o" "gcc" "src/squash/CMakeFiles/squash_core.dir/ColdCode.cpp.o.d"
  "/root/repo/src/squash/Driver.cpp" "src/squash/CMakeFiles/squash_core.dir/Driver.cpp.o" "gcc" "src/squash/CMakeFiles/squash_core.dir/Driver.cpp.o.d"
  "/root/repo/src/squash/Inspect.cpp" "src/squash/CMakeFiles/squash_core.dir/Inspect.cpp.o" "gcc" "src/squash/CMakeFiles/squash_core.dir/Inspect.cpp.o.d"
  "/root/repo/src/squash/Regions.cpp" "src/squash/CMakeFiles/squash_core.dir/Regions.cpp.o" "gcc" "src/squash/CMakeFiles/squash_core.dir/Regions.cpp.o.d"
  "/root/repo/src/squash/Rewriter.cpp" "src/squash/CMakeFiles/squash_core.dir/Rewriter.cpp.o" "gcc" "src/squash/CMakeFiles/squash_core.dir/Rewriter.cpp.o.d"
  "/root/repo/src/squash/Runtime.cpp" "src/squash/CMakeFiles/squash_core.dir/Runtime.cpp.o" "gcc" "src/squash/CMakeFiles/squash_core.dir/Runtime.cpp.o.d"
  "/root/repo/src/squash/Unswitch.cpp" "src/squash/CMakeFiles/squash_core.dir/Unswitch.cpp.o" "gcc" "src/squash/CMakeFiles/squash_core.dir/Unswitch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/huff/CMakeFiles/squash_huff.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/squash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/squash_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/squash_link.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/squash_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/squash_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/squash_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
