# Empty dependencies file for squash_core.
# This may be replaced when dependencies are built.
