file(REMOVE_RECURSE
  "libsquash_core.a"
)
