# Empty dependencies file for squash_compact.
# This may be replaced when dependencies are built.
