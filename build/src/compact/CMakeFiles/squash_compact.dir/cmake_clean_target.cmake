file(REMOVE_RECURSE
  "libsquash_compact.a"
)
