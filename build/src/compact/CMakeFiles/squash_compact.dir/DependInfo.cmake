
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compact/Compact.cpp" "src/compact/CMakeFiles/squash_compact.dir/Compact.cpp.o" "gcc" "src/compact/CMakeFiles/squash_compact.dir/Compact.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/squash_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/squash_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/squash_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
