file(REMOVE_RECURSE
  "CMakeFiles/squash_compact.dir/Compact.cpp.o"
  "CMakeFiles/squash_compact.dir/Compact.cpp.o.d"
  "libsquash_compact.a"
  "libsquash_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
