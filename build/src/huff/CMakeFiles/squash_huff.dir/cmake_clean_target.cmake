file(REMOVE_RECURSE
  "libsquash_huff.a"
)
