file(REMOVE_RECURSE
  "CMakeFiles/squash_huff.dir/Huffman.cpp.o"
  "CMakeFiles/squash_huff.dir/Huffman.cpp.o.d"
  "CMakeFiles/squash_huff.dir/StreamCodec.cpp.o"
  "CMakeFiles/squash_huff.dir/StreamCodec.cpp.o.d"
  "libsquash_huff.a"
  "libsquash_huff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squash_huff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
