# Empty compiler generated dependencies file for squash_huff.
# This may be replaced when dependencies are built.
