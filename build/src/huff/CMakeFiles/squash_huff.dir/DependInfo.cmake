
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/huff/Huffman.cpp" "src/huff/CMakeFiles/squash_huff.dir/Huffman.cpp.o" "gcc" "src/huff/CMakeFiles/squash_huff.dir/Huffman.cpp.o.d"
  "/root/repo/src/huff/StreamCodec.cpp" "src/huff/CMakeFiles/squash_huff.dir/StreamCodec.cpp.o" "gcc" "src/huff/CMakeFiles/squash_huff.dir/StreamCodec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/squash_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/squash_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
