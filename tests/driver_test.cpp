//===- tests/driver_test.cpp - Pipeline-level policy tests ----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// End-to-end checks of the candidate-filtering policies the driver
// implements: setjmp callers never compressed (Section 2.2), indirect-call
// blocks excluded, computed jumps poisoning their function, and the
// threshold plumbing.
//
//===----------------------------------------------------------------------===//

#include "link/Layout.h"
#include "ir/Builder.h"
#include "squash/Driver.h"
#include "squash/Observability.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;

namespace {

/// True if any block of function \p Name landed in a region.
bool functionCompressed(const SquashResult &SR,
                        const std::string &Name) {
  if (SR.Identity)
    return false;
  // Compressed blocks appear in StubOf (entries) or are simply absent from
  // the final symbol map at their own address; test via the stub map plus
  // region info: a function is compressed iff its entry label has a stub.
  return SR.SP.StubOf.count(Name) != 0;
}

} // namespace

TEST(Driver, SetjmpCallersNeverCompressed) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    F.call("uses_setjmp");
    F.call("plain_cold");
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("uses_setjmp");
    F.enter(8);
    F.la(16, "jb");
    F.sys(SysFunc::Setjmp);
    for (int I = 0; I != 20; ++I)
      F.addi(1, 1, 1);
    F.leave(8);
  }
  {
    FunctionBuilder F = PB.beginFunction("plain_cold");
    for (int I = 0; I != 20; ++I)
      F.addi(1, 1, 1);
    F.ret();
  }
  PB.addBss("jb", 33 * 4);
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {0}).take();

  Options Opts;
  Opts.Theta = 1.0; // Everything cold.
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);
  EXPECT_FALSE(functionCompressed(SR, "uses_setjmp"));
  EXPECT_TRUE(functionCompressed(SR, "plain_cold"));
}

TEST(Driver, IndirectCallBlocksExcluded) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    F.call("dispatcher");
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("dispatcher");
    F.enter(8);
    F.la(1, "tab");
    F.ldw(1, 1, 0);
    F.callIndirect(1); // Jsr: this block cannot be compressed.
    F.leave(8);
  }
  {
    FunctionBuilder F = PB.beginFunction("target");
    for (int I = 0; I != 20; ++I)
      F.addi(1, 1, 1);
    F.ret();
  }
  PB.addSymbolTable("tab", {"target"});
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {0}).take();

  Options Opts;
  Opts.Theta = 1.0;
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);
  EXPECT_FALSE(functionCompressed(SR, "dispatcher"));
  EXPECT_TRUE(functionCompressed(SR, "target"));
  // And the squashed program still runs both paths correctly.
  Machine M(SR.SP.Img);
  RuntimeSystem RT(SR.SP);
  ASSERT_TRUE(RT.attach(M).ok());
  M.setInput({1});
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
}

TEST(Driver, HigherThetaCompressesAtLeastAsMuch) {
  // Monotonicity: the compressed-instruction count never shrinks as θ
  // grows (on a fixed profile).
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(9, 50);
    F.label("hot");
    F.li(16, 1);
    F.call("warm");
    F.subi(9, 9, 1);
    F.bne(9, "hot");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    F.call("cold");
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("warm");
    for (int I = 0; I != 12; ++I)
      F.addi(0, 16, 2);
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("cold");
    for (int I = 0; I != 20; ++I)
      F.addi(1, 1, 1);
    F.ret();
  }
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {0}).take();

  uint64_t Last = 0;
  for (double Theta : {0.0, 1e-3, 1e-1, 1.0}) {
    Options Opts;
    Opts.Theta = Theta;
    SquashResult SR = squashProgram(Prog, Prof, Opts).take();
    EXPECT_GE(SR.Regions.CompressibleInstructions, Last);
    Last = SR.Regions.CompressibleInstructions;
  }
  EXPECT_GT(Last, 0u);
}

TEST(Driver, ProfileReflectsInputDifferences) {
  // The same program profiled on two inputs gives different cold sets.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.beq(0, "pathB");
    F.call("fa");
    F.br("out");
    F.label("pathB");
    F.call("fb");
    F.label("out");
    F.li(16, 0);
    F.halt();
  }
  for (const char *Name : {"fa", "fb"}) {
    FunctionBuilder F = PB.beginFunction(Name);
    for (int I = 0; I != 16; ++I)
      F.addi(1, 1, 1);
    F.ret();
  }
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);

  Profile ProfA = profileImage(Baseline, {1}).take();
  Profile ProfB = profileImage(Baseline, {0}).take();
  Options Opts;
  SquashResult SA = squashProgram(Prog, ProfA, Opts).take();
  SquashResult SB = squashProgram(Prog, ProfB, Opts).take();
  // Under input A, fb is cold (compressed); under input B, fa is.
  EXPECT_TRUE(SA.SP.StubOf.count("fb"));
  EXPECT_FALSE(SA.SP.StubOf.count("fa"));
  EXPECT_TRUE(SB.SP.StubOf.count("fa"));
  EXPECT_FALSE(SB.SP.StubOf.count("fb"));
}

TEST(Driver, UnswitchStatsSurfaceInResult) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    F.call("switchy");
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("switchy");
    F.andi(1, 16, 1);
    F.switchJump(1, 2, "jt", {"a", "b"});
    F.label("a");
    F.li(0, 1);
    F.ret();
    F.label("b");
    F.li(0, 2);
    F.ret();
  }
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {0}).take();

  Options Opts;
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  EXPECT_EQ(SR.Unswitch.Unswitched, 1u);
  EXPECT_EQ(SR.Unswitch.TablesReclaimed, 1u);

  Options NoUnswitch;
  NoUnswitch.Unswitch = false;
  SquashResult SR2 = squashProgram(Prog, Prof, NoUnswitch).take();
  EXPECT_EQ(SR2.Unswitch.Unswitched, 0u);
  EXPECT_GE(SR2.Unswitch.BlocksExcluded, 3u);
}

TEST(Driver, RunSquashedSurfacesAttachFailure) {
  // A corrupted layout never reaches execution: runSquashed reports the
  // validation failure as a Fault run instead of dying or running garbage.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    F.call("cold");
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("cold");
    for (int I = 0; I != 20; ++I)
      F.addi(1, 1, 1);
    F.ret();
  }
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {0}).take();
  SquashResult SR = squashProgram(Prog, Prof, Options()).take();
  ASSERT_FALSE(SR.Identity);

  SquashedProgram SP = SR.SP;
  SP.Layout.BufferWords = 0;
  SquashedRun R = runSquashed(SP, {1});
  EXPECT_EQ(R.Run.Status, RunStatus::Fault);
  EXPECT_NE(R.Run.FaultMessage.find("no jump slot"), std::string::npos);
  EXPECT_EQ(R.Runtime.Decompressions, 0u);
}

TEST(Driver, RunSquashedIsIdempotentOnIdentityImages) {
  // Zero-region squash results carry no runtime machinery; runSquashed
  // must handle them without attach-time complaints.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(1, 5);
    F.label("loop");
    F.subi(1, 1, 1);
    F.bne(1, "loop");
    F.li(16, 0);
    F.halt();
  }
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {}).take();
  SquashResult SR = squashProgram(Prog, Prof, Options()).take();
  ASSERT_TRUE(SR.Identity);
  SquashedRun R = runSquashed(SR.SP, {});
  EXPECT_EQ(R.Run.Status, RunStatus::Halted);
  EXPECT_EQ(R.Runtime.Decompressions, 0u);
}

TEST(Driver, IdentityResultRecordsEveryPass) {
  // The monolithic driver returned early on identity results, skipping the
  // buffer-safe stage and its stats; the pass manager records every pass
  // uniformly, so an identity run still carries a full trace, real
  // buffer-safety stats, and every squash.time.* metric.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(1, 5);
    F.label("loop");
    F.subi(1, 1, 1);
    F.bne(1, "loop");
    F.li(16, 0);
    F.halt();
  }
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {}).take();
  SquashResult SR = squashProgram(Prog, Prof, Options()).take();
  ASSERT_TRUE(SR.Identity);

  // All nine passes appear in the trace, none skipped.
  ASSERT_EQ(SR.PassTrace.size(), 9u);
  EXPECT_EQ(SR.PassTrace.front().Name, "cold-code");
  EXPECT_EQ(SR.PassTrace.back().Name, "rewrite");
  for (const auto &E : SR.PassTrace) {
    EXPECT_TRUE(E.Ok) << E.Name;
    EXPECT_FALSE(E.Disabled) << E.Name;
  }

  // The buffer-safe analysis really ran (the old early exit left this 0).
  EXPECT_GT(SR.BufferSafe.Functions, 0u);

  // The metrics export carries the complete squash.time.* family.
  vea::MetricsRegistry Reg;
  collectSquashMetrics(Reg, SR);
  for (const char *Name :
       {"squash.time.cold_seconds", "squash.time.unswitch_seconds",
        "squash.time.region_seconds", "squash.time.buffersafe_seconds",
        "squash.time.codec_select_seconds", "squash.time.rewrite_seconds",
        "squash.time.total_seconds"})
    EXPECT_TRUE(Reg.has(Name)) << Name;
  EXPECT_EQ(Reg.counter("squash.identity"), 1u);

  // And the identity image still executes end to end.
  SquashedRun R = runSquashed(SR.SP, {});
  EXPECT_EQ(R.Run.Status, RunStatus::Halted);
}
