//===- tests/adaptive_test.cpp - Online re-squash / hot-swap tests --------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The multiversion runtime's contract (DESIGN.md §15): requests always
// complete against a coherent version regardless of when a swap lands;
// drift-triggered re-squash recovers trap cycles; a regressing version is
// rolled back automatically; retired versions are freed only when their
// epoch pins drain; a wedged background attempt degrades the system to
// its current version, never to a broken one. The concurrency tests here
// are the ThreadSanitizer preset's target.
//
//===----------------------------------------------------------------------===//

#include "compact/Compact.h"
#include "huff/FastDecoder.h"
#include "ir/Builder.h"
#include "link/Layout.h"
#include "squash/Adaptive.h"
#include "support/Random.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace vea;
using namespace squash;

namespace {

constexpr double Scale = 0.05;

/// Compacted adpcm workload, its training profile (input A), and the
/// reference behaviour of the initial squashed image on input B.
struct Fixture {
  workloads::Workload W;
  Profile Training;
  SquashedRun Base;

  Fixture() {
    W = workloads::buildAdpcm(Scale);
    compactProgram(W.Prog).take();
    Image Baseline = layoutProgram(W.Prog);
    Training = profileImage(Baseline, W.ProfilingInput).take();
    SquashResult SR = squashProgram(W.Prog, Training, options()).take();
    EXPECT_FALSE(SR.Identity);
    Base = runSquashed(SR.SP, W.TimingInput);
    EXPECT_EQ(Base.Run.Status, RunStatus::Halted) << Base.Run.FaultMessage;
    EXPECT_GT(Base.Runtime.TrapCycles.count(), 0u)
        << "input B must reach compressed code for these tests to bite";
  }

  static Options options() {
    Options Opts;
    Opts.Theta = 0.1; // The timing input reaches compressed code here.
    return Opts;
  }

  std::unique_ptr<ResquashController> controller(AdaptiveConfig Cfg) const {
    return ResquashController::create(W.Prog, Training, options(),
                                      std::move(Cfg))
        .take();
  }

  void expectReferenceRun(const SquashedRun &Run) const {
    ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
    EXPECT_EQ(Run.Run.ExitCode, Base.Run.ExitCode);
    EXPECT_EQ(Run.Output, Base.Output);
  }
};

/// Eager, deterministic adaptation: trigger on any evidence, verdict
/// after one probation run, never roll back on noise.
AdaptiveConfig eagerConfig() {
  AdaptiveConfig Cfg;
  Cfg.DriftThreshold = 0.0;
  Cfg.MinEntriesForTrigger = 1;
  Cfg.ProbationRuns = 1;
  Cfg.ProbationTraps = UINT32_MAX;
  Cfg.RegressionTolerance = 1e9;
  Cfg.MaxAttempts = 1;
  return Cfg;
}

bool eventsContain(const std::vector<AdaptiveEvent> &Events,
                   AdaptiveEvent::Kind K) {
  for (const AdaptiveEvent &E : Events)
    if (E.K == K)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// End to end: drift on input B triggers a background re-squash, the new
// version swaps in, survives probation, and recovers trap cycles; the
// superseded version retires and is freed once its pins drain.
//===----------------------------------------------------------------------===//

TEST(Adaptive, DriftTriggersSwapCommitAndRetirement) {
  Fixture Fx;
  std::unique_ptr<ResquashController> C = Fx.controller(eagerConfig());

  // Run 1 serves on version 0, accumulates live heat, and triggers.
  SquashedRun Before = C->serve(Fx.W.TimingInput);
  Fx.expectReferenceRun(Before);
  ASSERT_TRUE(C->drain(60.0).ok()) << C->lastError().toString();
  ASSERT_EQ(C->activeVersion(), 1u) << C->lastError().toString();
  EXPECT_EQ(C->versionState(1), VersionState::Probation);
  EXPECT_EQ(C->versionState(0), VersionState::Standby);

  // Run 2 serves on version 1 and resolves its probation (1 run).
  SquashedRun After = C->serve(Fx.W.TimingInput);
  Fx.expectReferenceRun(After);
  EXPECT_EQ(C->versionState(1), VersionState::Committed);

  // The re-squash folded input B's heat into the guiding profile: the
  // regions B hammered are no longer compressed, so trap cycles drop.
  EXPECT_LE(After.Runtime.TrapCycles.sum(), Before.Runtime.TrapCycles.sum());

  // Version 0's pins drained at serve time, so the end-of-serve poll
  // already freed it.
  EXPECT_EQ(C->versionState(0), VersionState::Freed);

  AdaptiveStats St = C->stats();
  EXPECT_EQ(St.Attempts, 1u);
  EXPECT_EQ(St.Publications, 1u);
  EXPECT_EQ(St.Successes, 1u);
  EXPECT_EQ(St.Rollbacks, 0u);
  EXPECT_EQ(St.RetiredVersions, 1u);
  EXPECT_EQ(St.ServedRuns, 2u);
  EXPECT_GT(St.SwapPauseNsTotal, 0u);
  EXPECT_GE(St.SwapPauseNsMax, St.SwapPauseNsTotal / 2);
  EXPECT_GT(C->versionWarmupDecodeCycles(0), 0u);

  // The transition record tells the whole story, in order.
  std::vector<AdaptiveEvent> Events = C->events();
  EXPECT_TRUE(eventsContain(Events, AdaptiveEvent::Kind::Trigger));
  EXPECT_TRUE(eventsContain(Events, AdaptiveEvent::Kind::Staged));
  EXPECT_TRUE(eventsContain(Events, AdaptiveEvent::Kind::Published));
  EXPECT_TRUE(eventsContain(Events, AdaptiveEvent::Kind::Committed));
  EXPECT_TRUE(eventsContain(Events, AdaptiveEvent::Kind::Retired));
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].Seq, Events[I - 1].Seq + 1);
  EXPECT_EQ(C->droppedEvents(), 0u);

  // Observability: every resquash.* scalar lands in the registry.
  MetricsRegistry R;
  C->exportMetrics(R);
  EXPECT_EQ(R.counter("resquash.publications"), 1u);
  EXPECT_EQ(R.counter("resquash.served_runs"), 2u);
  EXPECT_EQ(R.gauge("resquash.active_version"), 1.0);
  EXPECT_EQ(R.gauge("resquash.probation_pending"), 0.0);
  EXPECT_TRUE(R.has("resquash.swap_pause_ns"));
  EXPECT_TRUE(R.has("resquash.last_drift_score"));
  EXPECT_NE(R.toPrometheus().find("resquash_publications"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Swap-at-every-trap-index stress: for each trap index k, publish the
// staged version from inside trap k's observer. The serving request holds
// an epoch pin, so it must complete against version 0 — byte-identically —
// no matter where the swap lands.
//===----------------------------------------------------------------------===//

namespace {

struct PublishAtTrap final : TrapObserver {
  ResquashController *C = nullptr;
  uint64_t K = 0;
  uint64_t Seen = 0;
  bool Published = false;
  void onRegionEntry(uint32_t, bool, bool, uint64_t) override {
    if (Seen++ == K) {
      Published = C->publishStaged().ok();
    }
  }
};

} // namespace

TEST(Adaptive, SwapAtEveryTrapIndexIsInvisibleToTheServingRun) {
  Fixture Fx;

  // Manual-trigger config: no background attempts, no auto-publication
  // (the observer controls the exact swap point), verdicts immediate.
  AdaptiveConfig Cfg = eagerConfig();
  Cfg.MaxAttemptsPerVersion = 0; // serve() never self-triggers.
  Cfg.AutoPublish = false;

  // How many traps does one run of input B take?
  const uint64_t Traps = Fx.Base.Runtime.TrapCycles.count();
  ASSERT_GT(Traps, 0u);
  const uint64_t Indices = std::min<uint64_t>(Traps, 48);

  for (uint64_t K = 0; K != Indices; ++K) {
    SCOPED_TRACE("publish at trap " + std::to_string(K));
    std::unique_ptr<ResquashController> C = Fx.controller(Cfg);
    // Gather live heat, then stage a re-squash synchronously.
    Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
    ASSERT_TRUE(C->resquashNow().ok()) << C->lastError().toString();
    ASSERT_TRUE(C->hasStaged());

    PublishAtTrap Obs;
    Obs.C = C.get();
    Obs.K = K;
    SquashedRun Run =
        C->serve(Fx.W.TimingInput, 2'000'000'000ull, &Obs);
    ASSERT_TRUE(Obs.Published) << "observer never reached trap " +
                                      std::to_string(K);
    // The swap landed mid-run, yet the pinned run is byte-identical.
    Fx.expectReferenceRun(Run);
    EXPECT_EQ(C->activeVersion(), 1u);
    // And the next request, on the new version, is too.
    Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
  }
}

//===----------------------------------------------------------------------===//
// Decode-ahead + hot-swap interleaving: with Options::DecodeAhead the
// serving runtime stages decodes on a worker thread. A publication landing
// at any trap index must still be invisible — the pinned run prefetches
// against its own version's codec and blob, and the runtime joins its
// worker before the version can retire. (TSan preset target: the worker
// thread, the serving thread, and the publication all overlap here.)
//===----------------------------------------------------------------------===//

TEST(Adaptive, SwapDuringPrefetchIsInvisibleToTheServingRun) {
  Fixture Fx;
  AdaptiveConfig Cfg = eagerConfig();
  Cfg.MaxAttemptsPerVersion = 0; // serve() never self-triggers.
  Cfg.AutoPublish = false;       // The observer controls the swap point.

  Options Opts = Fixture::options();
  Opts.DecodeAhead = true;

  const uint64_t Traps = Fx.Base.Runtime.TrapCycles.count();
  ASSERT_GT(Traps, 0u);
  const uint64_t Indices = std::min<uint64_t>(Traps, 12);

  for (uint64_t K = 0; K != Indices; ++K) {
    SCOPED_TRACE("publish at trap " + std::to_string(K));
    std::unique_ptr<ResquashController> C =
        ResquashController::create(Fx.W.Prog, Fx.Training, Opts, Cfg).take();
    // Gather live heat (prefetching all the while), stage synchronously.
    Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
    ASSERT_TRUE(C->resquashNow().ok()) << C->lastError().toString();
    ASSERT_TRUE(C->hasStaged());

    PublishAtTrap Obs;
    Obs.C = C.get();
    Obs.K = K;
    SquashedRun Run = C->serve(Fx.W.TimingInput, 2'000'000'000ull, &Obs);
    ASSERT_TRUE(Obs.Published) << "observer never reached trap " +
                                      std::to_string(K);
    // The swap landed while a prefetch may have been in flight, yet the
    // pinned run is byte-identical — and so is the next run, prefetching
    // on the new version.
    Fx.expectReferenceRun(Run);
    EXPECT_EQ(C->activeVersion(), 1u);
    Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
  }
}

//===----------------------------------------------------------------------===//
// Genuine concurrency: multiple threads serve continuously while the
// controller triggers, stages, publishes, and retires in the background.
// Every run must be byte-identical to the reference. (TSan preset target.)
//===----------------------------------------------------------------------===//

TEST(Adaptive, ConcurrentServesDuringBackgroundSwapStayCoherent) {
  Fixture Fx;
  AdaptiveConfig Cfg = eagerConfig();
  Cfg.ProbationRuns = 2;
  Cfg.MaxAttempts = 2;
  std::unique_ptr<ResquashController> C = Fx.controller(Cfg);

  constexpr int Threads = 2;
  constexpr int RunsPerThread = 6;
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T)
    Workers.emplace_back([&] {
      for (int I = 0; I != RunsPerThread; ++I) {
        SquashedRun Run = C->serve(Fx.W.TimingInput);
        if (Run.Run.Status != RunStatus::Halted ||
            Run.Run.ExitCode != Fx.Base.Run.ExitCode ||
            Run.Output != Fx.Base.Output)
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Workers)
    T.join();
  ASSERT_TRUE(C->drain(60.0).ok()) << C->lastError().toString();
  // A publication may have landed at drain time; resolve its probation.
  for (int I = 0; I != 4 && C->stats().ProbationPending; ++I)
    Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));

  EXPECT_EQ(Mismatches.load(), 0);
  AdaptiveStats St = C->stats();
  EXPECT_GE(St.ServedRuns, uint64_t(Threads) * RunsPerThread);
  EXPECT_GE(St.Publications, 1u);
  EXPECT_EQ(St.Rollbacks, 0u);
  EXPECT_FALSE(St.ProbationPending);
  for (uint32_t V = 0; V != C->versionCount(); ++V)
    EXPECT_NE(C->versionState(V), VersionState::Probation);
}

//===----------------------------------------------------------------------===//
// Automatic rollback: a re-squash that (deliberately) compresses the hot
// path regresses its probation trap-cycle rate, and the controller must
// reinstate the prior version — exactly once, with service byte-identical
// throughout.
//===----------------------------------------------------------------------===//

TEST(Adaptive, RegressionOnProbationRollsBackAutomatically) {
  Fixture Fx;
  AdaptiveConfig Cfg = eagerConfig();
  Cfg.RegressionTolerance = 1.10;
  // Sabotaged pipeline: compress nearly everything *and* inflate the
  // simulated decompression costs, so the new version's trap-cycle rate
  // regresses past any real version's — semantics stay intact (the
  // probation runs must still be byte-identical), only the rate is bad.
  Cfg.PipelineOverride = [](const Program &P, const Profile &Prof,
                            const Options &) {
    Options Bad;
    Bad.Theta = 0.95;
    Bad.Costs.DecompSetupCycles = 50'000;
    Bad.Costs.CyclesPerDecodedInstr = 50'000;
    return squashProgram(P, Prof, Bad);
  };
  std::unique_ptr<ResquashController> C = Fx.controller(Cfg);

  Fx.expectReferenceRun(C->serve(Fx.W.TimingInput)); // Triggers.
  ASSERT_TRUE(C->drain(60.0).ok()) << C->lastError().toString();
  ASSERT_EQ(C->activeVersion(), 1u);
  ASSERT_EQ(C->versionState(1), VersionState::Probation);

  // The probation run itself is still byte-identical (slow, not wrong)...
  Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));

  // ...but its verdict reinstates version 0 atomically.
  EXPECT_EQ(C->activeVersion(), 0u);
  EXPECT_EQ(C->versionState(0), VersionState::Committed);
  EXPECT_EQ(C->versionState(1), VersionState::Freed)
      << "the rolled-back version drained its pins and must be freed";

  AdaptiveStats St = C->stats();
  EXPECT_EQ(St.Rollbacks, 1u);
  EXPECT_EQ(St.Successes, 0u);
  EXPECT_EQ(St.Publications, 1u);
  EXPECT_TRUE(eventsContain(C->events(), AdaptiveEvent::Kind::RolledBack));

  // Exactly one rollback: the attempt budget is spent, so continued
  // service neither re-triggers nor rolls back again.
  Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
  Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
  EXPECT_EQ(C->stats().Rollbacks, 1u);
  EXPECT_EQ(C->stats().Attempts, 1u);
  EXPECT_EQ(C->activeVersion(), 0u);
}

//===----------------------------------------------------------------------===//
// Watchdog: a wedged background re-squash is invalidated at its deadline;
// its late result is discarded, the failure is surfaced as
// DeadlineExceeded, and the controller keeps serving its current version.
//===----------------------------------------------------------------------===//

TEST(Adaptive, WatchdogInvalidatesWedgedAttemptAndDiscardsLateResult) {
  Fixture Fx;
  AdaptiveConfig Cfg = eagerConfig();
  Cfg.ResquashTimeoutSeconds = 0.01;
  Cfg.PipelineOverride = [](const Program &P, const Profile &Prof,
                            const Options &O) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return squashProgram(P, Prof, O);
  };
  std::unique_ptr<ResquashController> C = Fx.controller(Cfg);

  Fx.expectReferenceRun(C->serve(Fx.W.TimingInput)); // Triggers.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  C->poll(); // Past the deadline: the watchdog fires here.

  AdaptiveStats St = C->stats();
  EXPECT_EQ(St.Timeouts, 1u);
  EXPECT_EQ(C->lastError().code(), StatusCode::DeadlineExceeded)
      << C->lastError().toString();
  EXPECT_TRUE(eventsContain(C->events(), AdaptiveEvent::Kind::TimedOut));

  // Let the wedged worker finish: its (valid!) result must be discarded
  // because its generation is stale.
  ASSERT_TRUE(C->drain(30.0).ok());
  EXPECT_FALSE(C->hasStaged());
  EXPECT_EQ(C->versionCount(), 1u);
  EXPECT_EQ(C->activeVersion(), 0u);
  EXPECT_EQ(C->stats().Publications, 0u);

  // Degraded, not broken.
  Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
}

//===----------------------------------------------------------------------===//
// Edges: identity images serve fine (no machinery, no drift); manual
// re-squash without live heat fails cleanly; double-staging is refused.
//===----------------------------------------------------------------------===//

TEST(Adaptive, IdentityImageServesWithoutAdaptation) {
  // A program whose every block is executed by the training input: no
  // cold code, so the squash is an identity image with no machinery.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(16, 0);
    F.halt();
  }
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Training = profileImage(Baseline, {}).take();
  std::unique_ptr<ResquashController> C =
      ResquashController::create(Prog, Training, Options(), eagerConfig())
          .take();

  SquashedRun Run = C->serve({});
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  EXPECT_EQ(Run.Runtime.TrapCycles.count(), 0u);
  ASSERT_TRUE(C->drain(10.0).ok());
  EXPECT_EQ(C->versionCount(), 1u);
  EXPECT_EQ(C->stats().Attempts, 0u); // No regions — nothing to drift.
}

TEST(Adaptive, ResquashNowRequiresLiveHeatAndRefusesDoubleStaging) {
  Fixture Fx;
  AdaptiveConfig Cfg = eagerConfig();
  Cfg.MaxAttemptsPerVersion = 0; // Manual control only.
  std::unique_ptr<ResquashController> C = Fx.controller(Cfg);

  // No live heat yet: the merge has nothing to work with.
  Status S = C->resquashNow();
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);

  Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
  ASSERT_TRUE(C->resquashNow().ok()) << C->lastError().toString();
  ASSERT_TRUE(C->hasStaged());

  // A second attempt while one is staged is refused, not queued.
  Status S2 = C->resquashNow();
  ASSERT_FALSE(S2.ok());
  EXPECT_EQ(S2.code(), StatusCode::InvalidArgument);

  ASSERT_TRUE(C->publishStaged().ok()) << C->lastError().toString();
  EXPECT_EQ(C->activeVersion(), 1u);
  Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
}

//===----------------------------------------------------------------------===//
// Fast-decode tables across versions. The memoized FastTables are keyed to
// one StreamCodecs instance; a copied codec (a freshly published version's
// host mirror) must rebuild its own tables instead of aliasing the
// source's — a stale shared table set would decode the new version's blob
// with the old version's codes.
//===----------------------------------------------------------------------===//

namespace {

MInst legalInst(Rng &R) {
  Opcode Op;
  do {
    Op = static_cast<Opcode>(1 + R.nextBelow(NumOpcodes - 1));
  } while (!opcodeInfo(Op).IsLegal && Op != Opcode::Bsrx);
  const FormatLayout &Layout = formatLayout(formatOf(Op));
  MInst I(Op);
  for (unsigned S = 1; S != Layout.Count; ++S) {
    uint32_t Max = (1u << Layout.Slots[S].Width) - 1;
    I.set(Layout.Slots[S].Kind, R.next() & Max);
  }
  return I;
}

} // namespace

TEST(Adaptive, CopiedCodecsRebuildFastTablesInsteadOfSharing) {
  Rng R(4242);
  std::vector<std::vector<MInst>> Corpus(8);
  for (auto &Region : Corpus)
    for (size_t I = 0; I != 60; ++I)
      Region.push_back(legalInst(R));
  StreamCodecs SC = StreamCodecs::build(Corpus);

  std::shared_ptr<const FastTables> Orig = SC.fastTables(11);
  ASSERT_NE(Orig, nullptr);
  // Repeat lookups on the same instance share the memo.
  EXPECT_EQ(SC.fastTables(11).get(), Orig.get());

  // A copy starts with an empty memo: its tables are its own.
  StreamCodecs Copy(SC);
  std::shared_ptr<const FastTables> CopyTables = Copy.fastTables(11);
  ASSERT_NE(CopyTables, nullptr);
  EXPECT_NE(CopyTables.get(), Orig.get())
      << "copied codec aliased the source's fast tables";

  // Copy-assignment over an instance with a populated memo drops it too.
  StreamCodecs Assigned = StreamCodecs::build(Corpus);
  (void)Assigned.fastTables(11);
  Assigned = SC;
  EXPECT_NE(Assigned.fastTables(11).get(), Orig.get())
      << "copy-assigned codec kept a stale memo";

  // A move transfers the memo with the identity: no rebuild.
  StreamCodecs Moved(std::move(Copy));
  EXPECT_EQ(Moved.fastTables(11).get(), CopyTables.get());
}

//===----------------------------------------------------------------------===//
// Swap-then-decode with the table-driven decoder: every post-swap fill of
// the new version must decode through tables built for *its* codec. Before
// per-instance memo isolation a published version could inherit the old
// version's tables by pointer and mis-decode its blob.
//===----------------------------------------------------------------------===//

TEST(Adaptive, SwapThenDecodeWithFastTablesStaysCorrect) {
  Fixture Fx;
  AdaptiveConfig Cfg = eagerConfig();
  Cfg.MaxAttemptsPerVersion = 0; // Manual control only.
  Cfg.AutoPublish = false;

  for (const bool DecodeAhead : {false, true}) {
    SCOPED_TRACE(DecodeAhead ? "fast-decode + decode-ahead" : "fast-decode");
    Options Opts = Fixture::options();
    Opts.FastDecode = true;
    Opts.DecodeAhead = DecodeAhead;
    std::unique_ptr<ResquashController> C =
        ResquashController::create(Fx.W.Prog, Fx.Training, Opts, Cfg).take();

    // Gather live heat on version 0 (filling through its fast tables),
    // stage a re-squash, and publish.
    Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
    ASSERT_TRUE(C->resquashNow().ok()) << C->lastError().toString();
    ASSERT_TRUE(C->publishStaged().ok()) << C->lastError().toString();
    EXPECT_EQ(C->activeVersion(), 1u);

    // Decodes on the published version must run on freshly built tables;
    // a stale table set from version 0 would corrupt every fill here.
    for (int I = 0; I != 3; ++I)
      Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
    ASSERT_TRUE(C->drain(120.0).ok());
  }
}
