//===- tests/link_test.cpp - Layout and encoding tests --------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "link/Layout.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace vea;

TEST(Layout, HiLoSplitReconstructs) {
  Rng R(404);
  auto Check = [](uint32_t Value) {
    uint16_t Hi, Lo;
    splitHiLo(Value, Hi, Lo);
    uint32_t Rebuilt =
        (static_cast<uint32_t>(static_cast<int16_t>(Hi)) << 16) +
        static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(Lo)));
    EXPECT_EQ(Rebuilt, Value) << "value " << Value;
  };
  Check(0);
  Check(0x7FFF);
  Check(0x8000);
  Check(0xFFFF);
  Check(0x10000);
  Check(0x12348765);
  Check(0xFFFFFFFF);
  for (int I = 0; I != 5000; ++I)
    Check(static_cast<uint32_t>(R.next()));
}

TEST(Layout, SymbolsAndEntry) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("second");
    F.ret();
  }
  PB.addDataWords("table", {1, 2, 3});
  PB.setEntry("main");
  Program P = PB.build();
  Image Img = layoutProgram(P);

  EXPECT_EQ(Img.EntryPC, Img.symbol("main"));
  EXPECT_EQ(Img.symbol("main"), DefaultBase);
  // main = li(1) + halt(1) = 2 words.
  EXPECT_EQ(Img.symbol("second"), DefaultBase + 8);
  EXPECT_EQ(Img.CodeBytes, 12u);
  // Data follows code, aligned.
  uint32_t Table = Img.symbol("table");
  EXPECT_EQ(Table % 4, 0u);
  EXPECT_EQ(Img.word(Table), 1u);
  EXPECT_EQ(Img.word(Table + 8), 3u);
}

TEST(Layout, BranchDisplacements) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.li(1, 2);
  F.label("loop");
  F.subi(1, 1, 1);
  F.bne(1, "loop");
  F.li(16, 0);
  F.halt();
  PB.setEntry("main");
  Program P = PB.build();
  Image Img = layoutProgram(P);

  // The bne sits at word 2 (after li, subi); its target is word 1.
  uint32_t BneAddr = DefaultBase + 8;
  MInst Bne = decode(Img.word(BneAddr));
  EXPECT_EQ(Bne.Op, Opcode::Bne);
  // target = pc + 4 + 4*disp  =>  disp = (target - pc - 4) / 4 = -2.
  EXPECT_EQ(Bne.disp21(), -2);
}

TEST(Layout, CallDisplacement) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.call("callee");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("callee");
    F.ret();
  }
  PB.setEntry("main");
  Image Img = layoutProgram(PB.build());
  MInst Call = decode(Img.word(DefaultBase));
  EXPECT_EQ(Call.Op, Opcode::Bsr);
  uint32_t Target = DefaultBase + 4 + 4 * Call.disp21();
  EXPECT_EQ(Target, Img.symbol("callee"));
}

TEST(Layout, HiLoAddressMaterialization) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.la(1, "blob", 12);
  F.li(16, 0);
  F.halt();
  PB.setEntry("main");
  PB.addBss("blob", 64);
  Image Img = layoutProgram(PB.build());

  MInst Hi = decode(Img.word(DefaultBase));
  MInst Lo = decode(Img.word(DefaultBase + 4));
  EXPECT_EQ(Hi.Op, Opcode::Ldah);
  EXPECT_EQ(Lo.Op, Opcode::Lda);
  uint32_t Value =
      (static_cast<uint32_t>(Hi.disp16()) << 16) +
      static_cast<uint32_t>(Lo.disp16());
  EXPECT_EQ(Value, Img.symbol("blob") + 12);
}

TEST(Layout, SymbolWordsPatched) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("fnA");
    F.ret();
  }
  PB.addSymbolTable("fns", {"fnA", "main"});
  PB.setEntry("main");
  Image Img = layoutProgram(PB.build());
  uint32_t Tab = Img.symbol("fns");
  EXPECT_EQ(Img.word(Tab), Img.symbol("fnA"));
  EXPECT_EQ(Img.word(Tab + 4), Img.symbol("main"));
}

TEST(Layout, UnresolvedSymbolIsALayoutError) {
  // ProgramBuilder::build() verifies call targets, so the dangling
  // reference is created after the fact — the binary-rewriting situation
  // where a symbol disappears between program construction and layout.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.call("victim");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("victim");
    F.ret();
  }
  PB.setEntry("main");
  Program P = PB.build();
  ASSERT_EQ(P.Functions.back().Name, "victim");
  P.Functions.pop_back();

  Expected<Image> R = layoutProgramOrError(P, DefaultBase);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), StatusCode::LayoutError);
  EXPECT_NE(R.status().toString().find("unresolved symbol 'victim'"),
            std::string::npos)
      << R.status().toString();
}

TEST(Layout, UnresolvedDataReferencePropagates) {
  // The error surfaces from instruction encoding (la -> hi/lo reloc), deep
  // inside layout, and still comes back as a LayoutError, not an abort.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.la(1, "blob", 0);
    F.li(16, 0);
    F.halt();
  }
  PB.addBss("blob", 16);
  PB.setEntry("main");
  Program P = PB.build();
  P.Data.clear(); // The referenced object vanishes.

  Expected<Image> R = layoutProgramOrError(P, DefaultBase);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), StatusCode::LayoutError);
  EXPECT_NE(R.status().toString().find("blob"), std::string::npos);
}

TEST(Layout, OversizedImageFailsCleanly) {
  // A pathological data alignment pushes the image past MaxImageBytes; the
  // layout must fail with a LayoutError before attempting the allocation.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(16, 0);
    F.halt();
  }
  PB.addBss("pad", 16);
  PB.setEntry("main");
  Program P = PB.build();
  ASSERT_EQ(P.Data.size(), 1u);
  P.Data[0].Align = 1u << 30;

  Expected<Image> R = layoutProgramOrError(P, DefaultBase);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), StatusCode::LayoutError);
  EXPECT_NE(R.status().toString().find("image too large"), std::string::npos)
      << R.status().toString();
}

TEST(Layout, BlockRangesMatchCfgOrder) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(1, 0);
    F.label("x");
    F.li(2, 0);
    F.li(16, 0);
    F.halt();
  }
  PB.setEntry("main");
  Program P = PB.build();
  Image Img = layoutProgram(P);
  ASSERT_EQ(Img.Blocks.size(), 2u);
  EXPECT_EQ(Img.Blocks[0].Addr, DefaultBase);
  EXPECT_EQ(Img.Blocks[0].SizeWords, 1u);
  EXPECT_EQ(Img.Blocks[1].Addr, DefaultBase + 4);
  EXPECT_EQ(Img.Blocks[1].SizeWords, 3u);
}
