//===- tests/histogram_test.cpp - Log-bucketed histogram tests ------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The HDR-style histogram behind the runtime's trap-latency and decode
// metrics: bucket-boundary exactness, percentile accuracy on small-integer
// distributions, merge algebra, and the 0/UINT64_MAX range edges.
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using namespace vea;

namespace {

Histogram fromValues(const std::vector<uint64_t> &Vs) {
  Histogram H;
  for (uint64_t V : Vs)
    H.record(V);
  return H;
}

} // namespace

//===----------------------------------------------------------------------===//
// Bucket layout
//===----------------------------------------------------------------------===//

TEST(Histogram, SmallValuesGetSingleValuedBuckets) {
  // Everything below 2*SubBuckets (16) maps to its own bucket, so the
  // bounds collapse to the value itself.
  for (uint64_t V = 0; V != 2 * Histogram::SubBuckets; ++V) {
    unsigned I = Histogram::bucketIndex(V);
    EXPECT_EQ(I, static_cast<unsigned>(V));
    EXPECT_EQ(Histogram::bucketLowerBound(I), V);
    EXPECT_EQ(Histogram::bucketUpperBound(I), V);
  }
}

TEST(Histogram, BucketBoundsTileTheRange) {
  // Buckets partition [0, UINT64_MAX]: each upper bound is one below the
  // next lower bound, and both bounds map back to their own bucket.
  for (unsigned I = 0; I + 1 != Histogram::NumBuckets; ++I) {
    uint64_t Lo = Histogram::bucketLowerBound(I);
    uint64_t Hi = Histogram::bucketUpperBound(I);
    ASSERT_LE(Lo, Hi);
    EXPECT_EQ(Histogram::bucketIndex(Lo), I);
    EXPECT_EQ(Histogram::bucketIndex(Hi), I);
    EXPECT_EQ(Histogram::bucketLowerBound(I + 1), Hi + 1);
  }
  // The last bucket reaches the top of the 64-bit range.
  EXPECT_EQ(Histogram::bucketUpperBound(Histogram::NumBuckets - 1),
            UINT64_MAX);
  EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX), Histogram::NumBuckets - 1);
}

TEST(Histogram, RelativeErrorBoundedBySubBucketWidth) {
  // Log-linear promise: bucket width / lower bound <= 1/SubBuckets above
  // the linear range.
  for (uint64_t V : {16ull, 100ull, 1000ull, 1ull << 20, 1ull << 40,
                     (1ull << 63) + 12345}) {
    unsigned I = Histogram::bucketIndex(V);
    uint64_t Lo = Histogram::bucketLowerBound(I);
    uint64_t Hi = Histogram::bucketUpperBound(I);
    EXPECT_LE(Lo, V);
    EXPECT_GE(Hi, V);
    EXPECT_LE(Hi - Lo, Lo / Histogram::SubBuckets);
  }
}

//===----------------------------------------------------------------------===//
// Percentiles
//===----------------------------------------------------------------------===//

TEST(Histogram, PercentilesExactOnSmallIntegers) {
  // Every sample stays below 2*SubBuckets, so each bucket is
  // single-valued and every percentile is exact.
  std::vector<uint64_t> Vs;
  for (uint64_t V = 1; V <= 10; ++V)
    for (int N = 0; N != 10; ++N)
      Vs.push_back(V); // 100 samples: ten each of 1..10.
  Histogram H = fromValues(Vs);
  EXPECT_EQ(H.count(), 100u);
  EXPECT_EQ(H.percentile(0), 1u);    // p0 clamps to the minimum.
  EXPECT_EQ(H.percentile(50), 5u);   // rank 50 -> fifth value.
  EXPECT_EQ(H.percentile(90), 9u);
  EXPECT_EQ(H.percentile(99), 10u);  // rank 99 -> tenth value.
  EXPECT_EQ(H.percentile(100), 10u);
  EXPECT_EQ(H.min(), 1u);
  EXPECT_EQ(H.max(), 10u);
  EXPECT_DOUBLE_EQ(H.mean(), 5.5);
}

TEST(Histogram, PercentileClampsToObservedRange) {
  // A single large sample: the percentile must report a value inside
  // [min, max] even though the bucket lower bound sits below the sample.
  Histogram H;
  H.record(1000);
  EXPECT_EQ(H.percentile(50), 1000u);
  EXPECT_EQ(H.percentile(99), 1000u);
  EXPECT_EQ(H.min(), 1000u);
  EXPECT_EQ(H.max(), 1000u);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.percentile(50), 0u);
  EXPECT_DOUBLE_EQ(H.mean(), 0.0);
}

TEST(Histogram, RecordNWeightsSamples) {
  Histogram H;
  H.recordN(3, 99);
  H.recordN(7, 1);
  H.recordN(5, 0); // A zero-weight record must be a no-op...
  EXPECT_EQ(H.count(), 100u);
  EXPECT_EQ(H.sum(), 99u * 3 + 7);
  EXPECT_EQ(H.min(), 3u); // ...including for min/max tracking.
  EXPECT_EQ(H.percentile(99), 3u);
  EXPECT_EQ(H.percentile(100), 7u);
}

//===----------------------------------------------------------------------===//
// Range edges
//===----------------------------------------------------------------------===//

TEST(Histogram, ZeroAndMaxCoexist) {
  Histogram H;
  H.record(0);
  H.record(UINT64_MAX);
  EXPECT_EQ(H.count(), 2u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), UINT64_MAX);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(Histogram::NumBuckets - 1), 1u);
  EXPECT_EQ(H.percentile(50), 0u);
  // UINT64_MAX is not a bucket lower bound, so p100 reports the top
  // bucket's lower bound — within one sub-bucket of the true sample, the
  // documented accuracy contract.
  EXPECT_EQ(H.percentile(100),
            Histogram::bucketLowerBound(Histogram::NumBuckets - 1));
  EXPECT_GE(H.percentile(100), UINT64_MAX - UINT64_MAX / 8);
}

//===----------------------------------------------------------------------===//
// Merge algebra
//===----------------------------------------------------------------------===//

TEST(Histogram, MergeMatchesSingleStreamRecording) {
  std::vector<uint64_t> All = {1, 5, 9, 14, 200, 3000, 1ull << 33};
  Histogram Whole = fromValues(All);
  Histogram A = fromValues({1, 5, 9});
  Histogram B = fromValues({14, 200, 3000, 1ull << 33});
  A.merge(B);
  EXPECT_EQ(A.count(), Whole.count());
  EXPECT_EQ(A.sum(), Whole.sum());
  EXPECT_EQ(A.min(), Whole.min());
  EXPECT_EQ(A.max(), Whole.max());
  for (unsigned I = 0; I != Histogram::NumBuckets; ++I)
    ASSERT_EQ(A.bucketCount(I), Whole.bucketCount(I)) << "bucket " << I;
  EXPECT_EQ(A.toJson(), Whole.toJson());
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  Histogram A = fromValues({1, 2, 3});
  Histogram B = fromValues({100, 200});
  Histogram C = fromValues({7, 1ull << 40});

  Histogram AB_C = A; // (A+B)+C
  AB_C.merge(B);
  AB_C.merge(C);
  Histogram A_BC = A; // A+(B+C)
  Histogram BC = B;
  BC.merge(C);
  A_BC.merge(BC);
  Histogram CBA = C; // C+B+A
  CBA.merge(B);
  CBA.merge(A);

  EXPECT_EQ(AB_C.toJson(), A_BC.toJson());
  EXPECT_EQ(AB_C.toJson(), CBA.toJson());
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram A = fromValues({4, 8});
  std::string Before = A.toJson();
  Histogram Empty;
  A.merge(Empty); // A + 0 = A
  EXPECT_EQ(A.toJson(), Before);
  Empty.merge(A); // 0 + A = A (min/max adopted, not clobbered by zeros).
  EXPECT_EQ(Empty.toJson(), Before);
  EXPECT_EQ(Empty.min(), 4u);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram H = fromValues({1, 2, 1ull << 50});
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.toJson(), fromValues({}).toJson());
}

//===----------------------------------------------------------------------===//
// JSON shape
//===----------------------------------------------------------------------===//

TEST(Histogram, JsonListsNonZeroBucketsAsPairs) {
  Histogram H;
  H.record(1);
  H.record(1);
  H.record(8);
  std::string J = H.toJson();
  EXPECT_NE(J.find("\"count\":3"), std::string::npos) << J;
  EXPECT_NE(J.find("\"sum\":10"), std::string::npos) << J;
  EXPECT_NE(J.find("\"buckets\":[[1,2],[8,1]]"), std::string::npos) << J;
}
