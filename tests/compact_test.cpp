//===- tests/compact_test.cpp - squeeze-baseline compactor tests ----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "compact/Compact.h"
#include "ir/Builder.h"
#include "link/Layout.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace vea;

TEST(Compact, RemovesNops) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.nop();
  F.li(16, 3);
  F.nop();
  F.nop();
  F.halt();
  PB.setEntry("main");
  Program P = PB.build();
  CompactStats S = compactProgram(P).take();
  EXPECT_EQ(S.NopsRemoved, 3u);
  EXPECT_EQ(P.instructionCount(), 2u);
  Machine M(layoutProgram(P));
  EXPECT_EQ(M.run().ExitCode, 3u);
}

TEST(Compact, RemovesIdentityMoves) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.mov(5, 5);
  F.lda(6, 6, 0);
  F.li(16, 1);
  F.halt();
  PB.setEntry("main");
  Program P = PB.build();
  CompactStats S = compactProgram(P).take();
  EXPECT_EQ(S.DeadMovesRemoved, 2u);
}

TEST(Compact, RemovesUnreachableFunctionsAndBlocks) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(16, 0);
    F.halt();
    F.label("dead"); // Unreachable block.
    F.li(16, 1);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("unused"); // Never called.
    F.ret();
  }
  PB.setEntry("main");
  Program P = PB.build();
  CompactStats S = compactProgram(P).take();
  EXPECT_EQ(S.UnreachableFunctionsRemoved, 1u);
  EXPECT_GE(S.UnreachableBlocksRemoved, 2u);
  EXPECT_EQ(P.Functions.size(), 1u);
  EXPECT_EQ(P.Functions[0].Blocks.size(), 1u);
}

TEST(Compact, AddressTakenCodeSurvives) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.la(1, "table");
    F.ldw(2, 1, 0);
    F.callIndirect(2);
    F.mov(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("pointee"); // Only in the table.
    F.li(0, 9);
    F.ret();
  }
  PB.addSymbolTable("table", {"pointee"});
  PB.setEntry("main");
  Program P = PB.build();
  compactProgram(P).take();
  ASSERT_NE(P.findFunction("pointee"), nullptr);
  Machine M(layoutProgram(P));
  EXPECT_EQ(M.run().ExitCode, 9u);
}

TEST(Compact, DeadDataRemoved) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.la(1, "used");
    F.ldw(16, 1, 0);
    F.halt();
  }
  PB.addDataWords("used", {77});
  PB.addDataWords("unused", {1, 2, 3});
  PB.setEntry("main");
  Program P = PB.build();
  compactProgram(P).take();
  EXPECT_NE(P.findData("used"), nullptr);
  EXPECT_EQ(P.findData("unused"), nullptr);
}

TEST(Compact, ThreadsBranchChains) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.li(1, 1);
  F.bne(1, "hop1");
  F.li(16, 0);
  F.halt();
  F.label("hop1");
  F.br("hop2");
  F.label("hop2");
  F.br("end");
  F.label("end");
  F.li(16, 5);
  F.halt();
  PB.setEntry("main");
  Program P = PB.build();
  CompactStats S = compactProgram(P).take();
  EXPECT_GE(S.BranchesThreaded, 1u);
  // The trampolines become unreachable and disappear.
  Cfg G(P);
  EXPECT_FALSE(G.hasLabel("main.hop1"));
  Machine M(layoutProgram(P));
  EXPECT_EQ(M.run().ExitCode, 5u);
}

TEST(Compact, DropsBranchToNextBlock) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.li(1, 0);
  F.br("next");
  F.label("next");
  F.li(16, 4);
  F.halt();
  PB.setEntry("main");
  Program P = PB.build();
  CompactStats S = compactProgram(P).take();
  EXPECT_EQ(S.RedundantBranchesRemoved, 1u);
  Machine M(layoutProgram(P));
  EXPECT_EQ(M.run().ExitCode, 4u);
}

TEST(Compact, PreservesBehaviourOnRealWorkload) {
  // Same program before and after compaction must produce identical
  // output on the same input.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(9, 0);  // checksum
    F.label("loop");
    F.sys(SysFunc::GetChar);
    F.li(1, -1);
    F.cmpeq(1, 0, 1);
    F.bne(1, "out");
    F.nop();
    F.muli(9, 9, 31);
    F.add(9, 9, 0);
    F.nop();
    F.br("loop");
    F.label("out");
    F.andi(16, 9, 0xFF);
    F.halt();
  }
  PB.setEntry("main");
  Program P = PB.build();

  std::vector<uint8_t> Input = {'s', 'q', 'u', 'a', 's', 'h'};
  Machine M1(layoutProgram(P));
  M1.setInput(Input);
  RunResult R1 = M1.run();

  CompactStats S = compactProgram(P).take();
  EXPECT_GT(S.NopsRemoved, 0u);
  Machine M2(layoutProgram(P));
  M2.setInput(Input);
  RunResult R2 = M2.run();

  EXPECT_EQ(R1.ExitCode, R2.ExitCode);
  EXPECT_LT(R2.Instructions, R1.Instructions);
}
