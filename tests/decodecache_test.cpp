//===- tests/decodecache_test.cpp - Multi-slot decode cache ---------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Regression tests for the N-slot decode cache: exact fill/eviction/hit
// counts under LRU for a thrash workload with one more region than the
// cache has slots, the no-re-decode guarantee for resident re-entries,
// direct resident stubs (rewrite on fill, restore on eviction), the
// per-slot revalidation paths (guest slot-map disagreement, resident CRC
// mismatch) driven one trap at a time, and the decode-ahead prefetcher's
// guest-invisibility contract (hits, mispredictions, trace accounting,
// predictor pre-seeding).
//
//===----------------------------------------------------------------------===//

#include "link/Layout.h"
#include "ir/Builder.h"
#include "sim/Machine.h"
#include "squash/Driver.h"
#include "squash/Observability.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace vea;
using namespace squash;

namespace {

/// Iterations of the thrash loop (exact counts below are linear in this).
constexpr uint32_t Reps = 6;

/// A hot driver loop whose guarded cold body calls three cold leaf
/// functions in rotation. Squashed with PackRegions off this yields exactly
/// four regions — the call block M and the leaves f0..f2 — and the request
/// stream per iteration is M f0 M f1 M f2 M (the caller re-enters through
/// a restore stub after every callee return).
Program thrashProgram(uint32_t Iterations = Reps) {
  ProgramBuilder PB("thrash");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.mov(20, 0); // Guard: 0 = profile run (cold body skipped).
    F.li(21, static_cast<int32_t>(Iterations));
    F.li(22, 0); // Accumulator.
    F.label("loop");
    F.beq(20, "next");
    // The label isolates the guarded body in its own block: without it the
    // body would share the guard's (hot) block and never be cold.
    F.label("cold");
    // The cold call block (region M). Padding keeps it a real region.
    for (int I = 0; I != 6; ++I)
      F.addi(1, 1, 1);
    F.call("f0");
    F.add(22, 22, 0);
    F.call("f1");
    F.add(22, 22, 0);
    F.call("f2");
    F.add(22, 22, 0);
    F.label("next");
    F.subi(21, 21, 1);
    F.bne(21, "loop");
    F.mov(16, 22);
    F.sys(SysFunc::PutWord);
    F.andi(16, 22, 0xFF);
    F.halt();
  }
  for (int FI = 0; FI != 3; ++FI) {
    FunctionBuilder F = PB.beginFunction("f" + std::to_string(FI));
    for (int I = 0; I != 12; ++I)
      F.addi(1, 1, 1);
    F.li(0, 7 * FI + 3);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

struct Squashed {
  SquashResult SR;
  RunResult Base;
  std::vector<uint8_t> BaseOut;
};

/// Squashes the thrash program with \p Slots cache slots (profile skips the
/// cold body; timing input executes it), remembering the baseline run.
Squashed squashThrash(uint32_t Slots, bool DirectStubs,
                      uint32_t Iterations = Reps) {
  Program Prog = thrashProgram(Iterations);
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {0}).take();

  Squashed Out;
  {
    Machine M(Baseline);
    M.setInput({1});
    Out.Base = M.run();
    Out.BaseOut = M.output();
    EXPECT_EQ(Out.Base.Status, RunStatus::Halted);
  }

  Options Opts;
  Opts.PackRegions = false;
  Opts.CacheSlots = Slots;
  Opts.ReuseBufferedRegion = true; // Activate the cache even at one slot.
  Opts.DirectResidentStubs = DirectStubs;
  Out.SR = squashProgram(Prog, Prof, Opts).take();
  EXPECT_FALSE(Out.SR.Identity);
  return Out;
}

/// Runs the squashed image on the timing input and checks equivalence.
SquashedRun runAndCheck(const Squashed &S) {
  SquashedRun R = runSquashed(S.SR.SP, {1});
  EXPECT_EQ(R.Run.Status, RunStatus::Halted) << R.Run.FaultMessage;
  EXPECT_EQ(R.Run.ExitCode, S.Base.ExitCode);
  EXPECT_EQ(R.Output, S.BaseOut);
  return R;
}

} // namespace

TEST(DecodeCache, ThrashExactCountsAcrossSlotCounts) {
  // Request stream per iteration: M f0 M f1 M f2 M; across iterations the
  // trailing M request is immediately followed by the next head M request.
  // Expected fills/hits/evictions under LRU, with four regions total:
  struct Want {
    uint32_t Slots;
    uint64_t Fills, Hits, Evictions;
  };
  const uint64_t R = Reps;
  const Want Cases[] = {
      // One slot: everything thrashes except the back-to-back M requests.
      {1, 6 * R + 1, R - 1, 6 * R},
      // Two slots: M pins its slot (always most recent at eviction time);
      // the three leaves rotate through the other.
      {2, 3 * R + 1, 4 * R - 1, 3 * R - 1},
      // Three slots, four regions: the classic LRU pathology — the leaf
      // rotation always evicts the leaf needed next. Same fills as two
      // slots; one fewer warm-up eviction.
      {3, 3 * R + 1, 4 * R - 1, 3 * R - 2},
      // Four slots: whole working set resident after warm-up.
      {4, 4, 7 * R - 4, 0},
  };
  for (const Want &W : Cases) {
    Squashed S = squashThrash(W.Slots, /*DirectStubs=*/false);
    ASSERT_EQ(S.SR.SP.Regions.size(), 4u)
        << "thrash program no longer forms exactly 4 regions";
    SquashedRun Run = runAndCheck(S);
    EXPECT_EQ(Run.Runtime.Decompressions, W.Fills) << W.Slots << " slots";
    EXPECT_EQ(Run.Runtime.BufferedHits, W.Hits) << W.Slots << " slots";
    EXPECT_EQ(Run.Runtime.Evictions, W.Evictions) << W.Slots << " slots";
    // Requests are conserved: every entry is either a fill or a hit.
    EXPECT_EQ(Run.Runtime.Decompressions + Run.Runtime.BufferedHits,
              7 * R);
  }
}

TEST(DecodeCache, ThrashRatioReflectsCachePressure) {
  SquashedRun Thrashing =
      runAndCheck(squashThrash(1, /*DirectStubs=*/false));
  SquashedRun Cached = runAndCheck(squashThrash(4, /*DirectStubs=*/false));
  EXPECT_GT(Thrashing.Runtime.thrashRatio(), 0.8);
  EXPECT_LT(Cached.Runtime.thrashRatio(), 0.2);
}

TEST(DecodeCache, ResidentReentryDoesNotRedecode) {
  // With the whole working set resident, each region is decoded exactly
  // once no matter how long the program runs: the decoded-instruction
  // counter must not grow with the iteration count.
  SquashedRun Short =
      runAndCheck(squashThrash(4, /*DirectStubs=*/false, /*Iterations=*/1));
  SquashedRun Long =
      runAndCheck(squashThrash(4, /*DirectStubs=*/false, /*Iterations=*/Reps));
  ASSERT_GT(Short.Runtime.DecodedInstructions, 0u);
  EXPECT_EQ(Long.Runtime.DecodedInstructions,
            Short.Runtime.DecodedInstructions);
  EXPECT_EQ(Long.Runtime.Decompressions, 4u);
}

TEST(DecodeCache, DirectResidentStubsShortCircuitEntry) {
  // With direct stubs a resident region's entry stub branches straight to
  // its slot, so repeat entries never reach the trap handler at all.
  SquashedRun Trapped =
      runAndCheck(squashThrash(4, /*DirectStubs=*/false));
  SquashedRun Direct = runAndCheck(squashThrash(4, /*DirectStubs=*/true));
  EXPECT_GT(Direct.Runtime.DirectStubRewrites, 0u);
  EXPECT_LT(Direct.Runtime.EntryStubCalls, Trapped.Runtime.EntryStubCalls);
  // Nothing was evicted, so nothing was restored.
  EXPECT_EQ(Direct.Runtime.Evictions, 0u);
  EXPECT_EQ(Direct.Runtime.DirectStubRestores, 0u);
}

TEST(DecodeCache, EvictionRestoresDirectStubs) {
  // Under thrash every eviction must put the original trapping stub back,
  // or a later entry would branch into a slot now holding another region.
  SquashedRun Run = runAndCheck(squashThrash(2, /*DirectStubs=*/true));
  EXPECT_GT(Run.Runtime.Evictions, 0u);
  EXPECT_GT(Run.Runtime.DirectStubRestores, 0u);
}

TEST(DecodeCache, EvictTraceNamesSlotAndRegion) {
  Squashed S = squashThrash(2, /*DirectStubs=*/false);
  Machine M(S.SR.SP.Img);
  RuntimeSystem RT(S.SR.SP);
  RT.enableTrace();
  ASSERT_TRUE(RT.attach(M).ok());
  M.setInput({1});
  ASSERT_EQ(M.run().Status, RunStatus::Halted);

  unsigned Evicts = 0;
  for (const auto &E : RT.events()) {
    if (E.K != RuntimeSystem::Event::Kind::Evict)
      continue;
    ++Evicts;
    EXPECT_LT(E.Addr, 2u) << "eviction from a slot that does not exist";
    EXPECT_LT(E.Region, S.SR.SP.Regions.size());
  }
  EXPECT_EQ(Evicts, RT.stats().Evictions);

  // After the run the host resident table, the guest slot map, and the
  // public accessor all agree.
  const RuntimeLayout &L = S.SR.SP.Layout;
  for (uint32_t Slot = 0; Slot != L.CacheSlots; ++Slot) {
    uint32_t MapWord;
    ASSERT_TRUE(M.loadWord(L.SlotMapBase + 4 * Slot, MapWord));
    int32_t Resident = RT.residentRegion(Slot);
    if (Resident < 0)
      EXPECT_EQ(MapWord, RuntimeLayout::SlotMapEmpty);
    else
      EXPECT_EQ(MapWord, static_cast<uint32_t>(Resident));
  }
}

namespace {

/// Fixture for trap-at-a-time driving of the revalidation paths: a squashed
/// thrash image, attached, with a helper that requests one region through
/// its real entry stub exactly as the bsr would.
class Revalidation : public ::testing::Test {
protected:
  void SetUp() override {
    S = squashThrash(2, /*DirectStubs=*/false);
    M.emplace(S.SR.SP.Img);
    RT.emplace(S.SR.SP);
    ASSERT_TRUE(RT->attach(*M).ok());
    // Find a region that owns an entry stub to drive.
    for (uint32_t R = 0; R != S.SR.SP.RegionEntryStubs.size(); ++R) {
      if (!S.SR.SP.RegionEntryStubs[R].empty()) {
        Region = R;
        StubAddr = S.SR.SP.RegionEntryStubs[R][0].Addr;
        return;
      }
    }
    FAIL() << "no region with an entry stub";
  }

  /// One Decompress request for the fixture's region, as if its entry
  /// stub's `bsr r25, Decompress` had just executed.
  void request() {
    M->setReg(25, StubAddr + 4); // bsr leaves the tag's address in ra.
    ASSERT_TRUE(RT->handleTrap(
        *M, S.SR.SP.Layout.decompressEntry(25)));
  }

  Squashed S;
  std::optional<Machine> M;
  std::optional<RuntimeSystem> RT;
  uint32_t Region = 0;
  uint32_t StubAddr = 0;
};

} // namespace

TEST_F(Revalidation, SlotMapDisagreementIsRepaired) {
  request();
  ASSERT_EQ(RT->stats().Decompressions, 1u);
  ASSERT_EQ(RT->residentRegion(0), static_cast<int32_t>(Region));

  // Corrupt the guest slot-map word behind the runtime's back.
  const RuntimeLayout &L = S.SR.SP.Layout;
  ASSERT_TRUE(M->storeWord(L.SlotMapBase, 0x5EADBEEF));

  // The next request must notice the disagreement, repair the slot by
  // refilling it in place, and leave the map consistent again.
  request();
  EXPECT_EQ(RT->stats().SlotMapRepairs, 1u);
  EXPECT_EQ(RT->stats().Decompressions, 2u);
  EXPECT_EQ(RT->stats().BufferedHits, 0u);
  uint32_t MapWord;
  ASSERT_TRUE(M->loadWord(L.SlotMapBase, MapWord));
  EXPECT_EQ(MapWord, Region);

  // With the map repaired the region is served from its slot again.
  request();
  EXPECT_EQ(RT->stats().BufferedHits, 1u);
  EXPECT_EQ(RT->stats().Decompressions, 2u);
}

TEST_F(Revalidation, ResidentCrcMismatchForcesRefill) {
  request();
  ASSERT_EQ(RT->stats().Decompressions, 1u);

  // Tamper with the resident region's code words inside the slot.
  const RuntimeLayout &L = S.SR.SP.Layout;
  uint32_t Victim = L.slotDataBase(0);
  uint32_t Old;
  ASSERT_TRUE(M->loadWord(Victim, Old));
  ASSERT_TRUE(M->storeWord(Victim, Old ^ 0x00010000));

  // The per-slot CRC re-check must reject the hit and decode again rather
  // than jump into tampered code.
  request();
  EXPECT_EQ(RT->stats().ResidentCrcMismatches, 1u);
  EXPECT_EQ(RT->stats().Decompressions, 2u);
  EXPECT_EQ(RT->stats().BufferedHits, 0u);
  uint32_t Repaired;
  ASSERT_TRUE(M->loadWord(Victim, Repaired));
  EXPECT_EQ(Repaired, Old);

  // And the refilled slot serves hits once more.
  request();
  EXPECT_EQ(RT->stats().BufferedHits, 1u);
}

TEST(DecodeCache, LayoutSizesBufferForAllSlots) {
  Squashed S = squashThrash(3, /*DirectStubs=*/false);
  const RuntimeLayout &L = S.SR.SP.Layout;
  EXPECT_EQ(L.CacheSlots, 3u);
  EXPECT_EQ(L.BufferWords, L.CacheSlots * L.SlotWords);
  EXPECT_EQ(S.SR.SP.Footprint.SlotMapWords, L.CacheSlots);
  // Every region fits every slot (jump word + expansion).
  for (const auto &RI : S.SR.SP.Regions)
    EXPECT_LE(RI.ExpandedWords + 1, L.SlotWords);
  // Slots are disjoint and inside the buffer.
  for (uint32_t Slot = 0; Slot != L.CacheSlots; ++Slot) {
    EXPECT_GE(L.slotBase(Slot), L.BufferBase);
    EXPECT_LE(L.slotBase(Slot) + 4 * L.SlotWords,
              L.BufferBase + 4 * L.BufferWords);
  }
}

//===----------------------------------------------------------------------===//
// Decode-ahead prefetch (Options::DecodeAhead, DESIGN.md §16): a pure
// host-side staging optimization. Everything the guest observes — output,
// fill/hit/eviction counts, final memory image — must be identical with
// prefetch on, off, or mispredicting; the only legitimate differences are
// the prefetch counters and the cycles a prefetched fill no longer pays.
//===----------------------------------------------------------------------===//

namespace {

/// Runs a squashed thrash image with decode-ahead toggled (a runtime-only
/// knob: the image bytes are unchanged) and checks guest equivalence.
SquashedRun runThrashDecodeAhead(const Squashed &S, bool DecodeAhead) {
  SquashedProgram SP = S.SR.SP;
  SP.Opts.DecodeAhead = DecodeAhead;
  SquashedRun R = runSquashed(SP, {1});
  EXPECT_EQ(R.Run.Status, RunStatus::Halted) << R.Run.FaultMessage;
  EXPECT_EQ(R.Run.ExitCode, S.Base.ExitCode);
  EXPECT_EQ(R.Output, S.BaseOut);
  return R;
}

} // namespace

TEST(DecodeAhead, PrefetchIsInvisibleToTheGuestAndMostlyHits) {
  // Long thrash run: the second-order predictor sees the deterministic
  // M f0 M f1 M f2 M rotation, so after the first iteration every fill
  // should be served from a staged decode.
  Squashed S = squashThrash(1, /*DirectStubs=*/false, /*Iterations=*/50);
  SquashedRun Off = runThrashDecodeAhead(S, false);
  SquashedRun On = runThrashDecodeAhead(S, true);

  // Guest-visible behaviour is identical fill for fill.
  EXPECT_EQ(On.Runtime.Decompressions, Off.Runtime.Decompressions);
  EXPECT_EQ(On.Runtime.BufferedHits, Off.Runtime.BufferedHits);
  EXPECT_EQ(On.Runtime.Evictions, Off.Runtime.Evictions);
  EXPECT_EQ(On.Runtime.DecodedInstructions, Off.Runtime.DecodedInstructions);

  // Off: the machinery never engages.
  EXPECT_EQ(Off.Runtime.PrefetchLaunches, 0u);
  EXPECT_EQ(Off.Runtime.PrefetchHits, 0u);
  EXPECT_EQ(Off.Runtime.PrefetchMisses, 0u);

  // On: every fill either consumed a staged decode or demand-decoded, and
  // the predictor converges — the overwhelming majority of fills hit.
  EXPECT_EQ(On.Runtime.PrefetchHits + On.Runtime.PrefetchMisses,
            On.Runtime.Decompressions);
  EXPECT_GT(On.Runtime.PrefetchHits, On.Runtime.Decompressions / 2);
  EXPECT_EQ(On.Runtime.PrefetchCorruptDiscards, 0u);
  // Every launch is eventually consumed, wasted, or (at most one) still
  // staged when the program halts.
  EXPECT_GE(On.Runtime.PrefetchLaunches,
            On.Runtime.PrefetchHits + On.Runtime.PrefetchWasted);
  EXPECT_LE(On.Runtime.PrefetchLaunches,
            On.Runtime.PrefetchHits + On.Runtime.PrefetchWasted + 1);

  // A prefetched fill is charged setup + icache flush but not the decode
  // proper, so the trap-cycle distribution shifts down. With 50 iterations
  // the handful of warm-up demand fills sit far above the 90th percentile.
  EXPECT_LT(On.Runtime.TrapCycles.sum(), Off.Runtime.TrapCycles.sum());
  EXPECT_LT(On.Runtime.TrapCycles.percentile(99.0),
            Off.Runtime.TrapCycles.percentile(99.0));
}

TEST(DecodeAhead, MispredictionsAreWastedNeverObservable) {
  // Poison the first-order context toward one fixed region so the early
  // predictions are mostly wrong: wasted stagings must accrue while the
  // guest-visible run — output, fills, hits, evictions, and the final
  // memory image — stays byte-identical to the prefetch-off run.
  Squashed S = squashThrash(2, /*DirectStubs=*/false, /*Iterations=*/10);
  const uint32_t NumRegions =
      static_cast<uint32_t>(S.SR.SP.Regions.size());
  ASSERT_EQ(NumRegions, 4u);

  SquashedProgram OffSP = S.SR.SP;
  Machine OffM(OffSP.Img);
  RuntimeSystem OffRT(OffSP);
  ASSERT_TRUE(OffRT.attach(OffM).ok());
  OffM.setInput({1});
  ASSERT_EQ(OffM.run().Status, RunStatus::Halted);

  SquashedProgram OnSP = S.SR.SP;
  OnSP.Opts.DecodeAhead = true;
  Machine OnM(OnSP.Img);
  RuntimeSystem OnRT(OnSP);
  ASSERT_TRUE(OnRT.attach(OnM).ok());
  for (uint32_t From = 0; From != NumRegions; ++From)
    OnRT.predictor().seedTransition(From, NumRegions - 1, 1'000'000);
  OnM.setInput({1});
  ASSERT_EQ(OnM.run().Status, RunStatus::Halted);

  EXPECT_GT(OnRT.stats().PrefetchWasted, 0u);
  EXPECT_EQ(OnRT.stats().PrefetchHits + OnRT.stats().PrefetchMisses,
            OnRT.stats().Decompressions);

  // Nothing the guest can see changed — not even one byte of memory.
  EXPECT_EQ(OnM.output(), OffM.output());
  EXPECT_EQ(OnRT.stats().Decompressions, OffRT.stats().Decompressions);
  EXPECT_EQ(OnRT.stats().BufferedHits, OffRT.stats().BufferedHits);
  EXPECT_EQ(OnRT.stats().Evictions, OffRT.stats().Evictions);
  ASSERT_EQ(OnM.memBytes(), OffM.memBytes());
  EXPECT_EQ(std::memcmp(OnM.memData(), OffM.memData(), OnM.memBytes()), 0)
      << "a mispredicted prefetch leaked into guest memory";
}

TEST(DecodeAhead, TraceEventsAccountForEveryLaunch) {
  Squashed S = squashThrash(1, /*DirectStubs=*/false, /*Iterations=*/12);
  SquashedProgram SP = S.SR.SP;
  SP.Opts.DecodeAhead = true;
  SquashedRun Run = runSquashed(SP, {1}, 2'000'000'000ull,
                                RuntimeSystem::DefaultTraceCapacity);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  EXPECT_EQ(Run.Output, S.BaseOut);

  uint64_t Launches = 0, Hits = 0, Drops = 0;
  for (const auto &E : Run.Trace) {
    switch (E.K) {
    case RuntimeSystem::Event::Kind::PrefetchLaunch:
      ++Launches;
      EXPECT_LT(E.Region, S.SR.SP.Regions.size());
      break;
    case RuntimeSystem::Event::Kind::PrefetchHit:
      ++Hits;
      break;
    case RuntimeSystem::Event::Kind::PrefetchDrop:
      ++Drops;
      break;
    default:
      break;
    }
  }
  EXPECT_EQ(Launches, Run.Runtime.PrefetchLaunches);
  EXPECT_EQ(Hits, Run.Runtime.PrefetchHits);
  EXPECT_EQ(Drops,
            Run.Runtime.PrefetchWasted + Run.Runtime.PrefetchCorruptDiscards);
}

TEST(DecodeAhead, SeededPredictorHitsFromTheFirstIteration) {
  // Replaying a prior run's trace into a fresh predictor
  // (seedPredictorFromEvents) removes the warm-up misses: the seeded run
  // must demand-decode strictly less than the cold one.
  Squashed S = squashThrash(1, /*DirectStubs=*/false, /*Iterations=*/10);
  SquashedProgram SP = S.SR.SP;
  SP.Opts.DecodeAhead = true;

  SquashedRun Cold = runSquashed(SP, {1}, 2'000'000'000ull,
                                 RuntimeSystem::DefaultTraceCapacity);
  ASSERT_EQ(Cold.Run.Status, RunStatus::Halted) << Cold.Run.FaultMessage;
  ASSERT_GT(Cold.Runtime.PrefetchMisses, 0u);

  Machine M(SP.Img);
  RuntimeSystem RT(SP);
  ASSERT_TRUE(RT.attach(M).ok());
  seedPredictorFromEvents(RT.predictor(), Cold.Trace);
  seedPredictorFromHeat(RT.predictor(), buildRegionHeatReport(Cold.Trace));
  M.setInput({1});
  ASSERT_EQ(M.run().Status, RunStatus::Halted);
  EXPECT_EQ(M.output(), S.BaseOut);
  EXPECT_LT(RT.stats().PrefetchMisses, Cold.Runtime.PrefetchMisses);
  EXPECT_GT(RT.stats().PrefetchHits, Cold.Runtime.PrefetchHits);
}

TEST(DecodeCache, ZeroSlotsIsRejected) {
  Program Prog = thrashProgram();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {0}).take();
  Options Opts;
  Opts.CacheSlots = 0;
  Expected<SquashResult> R = squashProgram(Prog, Prof, Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), StatusCode::InvalidArgument);
}
