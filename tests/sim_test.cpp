//===- tests/sim_test.cpp - Machine interpreter tests ---------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "link/Layout.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

#include <functional>

using namespace vea;

/// Runs a single-function program and returns its RunResult + output.
static RunResult runMain(std::function<void(FunctionBuilder &)> Body,
                         std::vector<uint8_t> Input = {},
                         std::vector<uint8_t> *Output = nullptr) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    Body(F);
  }
  PB.setEntry("main");
  Image Img = layoutProgram(PB.build());
  Machine M(Img);
  M.setInput(std::move(Input));
  RunResult R = M.run();
  if (Output)
    *Output = M.output();
  return R;
}

/// Parameterized check: an operate instruction applied to two constants
/// yields the expected result (exit code = result & 0xFF via PutWord check).
struct AluCase {
  Opcode Op;
  uint32_t A, B, Want;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, ComputesExpected) {
  AluCase C = GetParam();
  std::vector<uint8_t> Out;
  RunResult R = runMain(
      [&](FunctionBuilder &F) {
        F.li(1, static_cast<int32_t>(C.A));
        F.li(2, static_cast<int32_t>(C.B));
        Inst I;
        I.Op = C.Op;
        I.Rc = 16;
        I.Ra = 1;
        I.Rb = 2;
        F.emit(I);
        F.sys(SysFunc::PutWord);
        F.halt();
      },
      {}, &Out);
  ASSERT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(Out.size(), 4u);
  uint32_t Got = Out[0] | (Out[1] << 8) | (Out[2] << 16) |
                 (static_cast<uint32_t>(Out[3]) << 24);
  EXPECT_EQ(Got, C.Want);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluSemantics,
    ::testing::Values(
        AluCase{Opcode::Add, 7, 8, 15},
        AluCase{Opcode::Add, 0xFFFFFFFF, 1, 0}, // wraparound
        AluCase{Opcode::Sub, 3, 5, 0xFFFFFFFE},
        AluCase{Opcode::Mul, 100000, 100000, 100000u * 100000u},
        AluCase{Opcode::Umulh, 0x80000000, 4, 2},
        AluCase{Opcode::Udiv, 100, 7, 14},
        AluCase{Opcode::Urem, 100, 7, 2},
        AluCase{Opcode::And, 0xF0F0, 0xFF00, 0xF000},
        AluCase{Opcode::Or, 0xF0F0, 0x0F00, 0xFFF0},
        AluCase{Opcode::Xor, 0xFFFF, 0x0F0F, 0xF0F0},
        AluCase{Opcode::Bic, 0xFFFF, 0x0F0F, 0xF0F0},
        AluCase{Opcode::Sll, 1, 31, 0x80000000},
        AluCase{Opcode::Sll, 1, 33, 2}, // shift amounts are mod 32
        AluCase{Opcode::Srl, 0x80000000, 31, 1},
        AluCase{Opcode::Sra, 0x80000000, 31, 0xFFFFFFFF},
        AluCase{Opcode::Cmpeq, 4, 4, 1}, AluCase{Opcode::Cmpeq, 4, 5, 0},
        AluCase{Opcode::Cmplt, 0xFFFFFFFF, 0, 1}, // -1 < 0 signed
        AluCase{Opcode::Cmpult, 0xFFFFFFFF, 0, 0},
        AluCase{Opcode::Cmple, 5, 5, 1},
        AluCase{Opcode::Cmpule, 6, 5, 0}));

TEST(Machine, ZeroRegisterReadsZero) {
  RunResult R = runMain([](FunctionBuilder &F) {
    F.li(31, 99); // Write to r31: discarded.
    F.mov(16, 31);
    F.halt();
  });
  EXPECT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(R.ExitCode, 0u);
}

TEST(Machine, LoadStoreBytesAndWords) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.la(1, "buf");
    F.li(2, 0x11223344);
    F.stw(2, 1, 0);
    F.ldb(16, 1, 1);
    F.halt();
  }
  PB.addBss("buf", 16);
  PB.setEntry("main");
  Machine M(layoutProgram(PB.build()));
  RunResult R = M.run();
  EXPECT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(R.ExitCode, 0x33u);
}

TEST(Machine, CallsAndRecursion) {
  // fib(10) via naive recursion = 55.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(16, 10);
    F.call("fib");
    F.mov(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("fib");
    F.cmplei(1, 16, 1);
    F.beq(1, "rec");
    F.mov(0, 16);
    F.ret();
    F.label("rec");
    F.enter(12);
    F.stw(16, 30, 4);
    F.subi(16, 16, 1);
    F.call("fib");
    F.ldw(16, 30, 4);
    F.stw(0, 30, 8);
    F.subi(16, 16, 2);
    F.call("fib");
    F.ldw(1, 30, 8);
    F.add(0, 0, 1);
    F.leave(12);
  }
  PB.setEntry("main");
  Machine M(layoutProgram(PB.build()));
  RunResult R = M.run();
  ASSERT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(R.ExitCode, 55u);
}

TEST(Machine, InputOutputSyscalls) {
  std::vector<uint8_t> Out;
  RunResult R = runMain(
      [](FunctionBuilder &F) {
        F.sys(SysFunc::GetChar); // 'A'
        F.mov(16, 0);
        F.addi(16, 16, 1);
        F.sys(SysFunc::PutChar); // 'B'
        F.sys(SysFunc::GetWord);
        F.mov(16, 0);
        F.sys(SysFunc::PutWord);
        F.sys(SysFunc::GetChar); // EOF
        F.andi(16, 0, 0xFF);
        F.halt();
      },
      {'A', 1, 2, 3, 4}, &Out);
  ASSERT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(Out.size(), 5u);
  EXPECT_EQ(Out[0], 'B');
  EXPECT_EQ(Out[1], 1);
  EXPECT_EQ(Out[4], 4);
  EXPECT_EQ(R.ExitCode, 0xFFu); // EOF low byte
}

TEST(Machine, PutIntRendersDecimal) {
  std::vector<uint8_t> Out;
  RunResult R = runMain(
      [](FunctionBuilder &F) {
        F.li(16, -123);
        F.sys(SysFunc::PutInt);
        F.li(16, 0);
        F.halt();
      },
      {}, &Out);
  ASSERT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(std::string(Out.begin(), Out.end()), "-123");
}

TEST(Machine, SetjmpLongjmpRoundTrip) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.la(16, "jb");
    F.sys(SysFunc::Setjmp);
    F.bne(0, "second");
    // First return: r0 == 0. Jump back with value 7.
    F.la(16, "jb");
    F.li(17, 7);
    F.sys(SysFunc::Longjmp);
    F.label("second");
    F.mov(16, 0);
    F.halt();
  }
  PB.addBss("jb", 33 * 4);
  PB.setEntry("main");
  Machine M(layoutProgram(PB.build()));
  RunResult R = M.run();
  ASSERT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(R.ExitCode, 7u);
}

TEST(Machine, FaultOnDivideByZero) {
  RunResult R = runMain([](FunctionBuilder &F) {
    F.li(1, 1);
    F.li(2, 0);
    F.udiv(16, 1, 2);
    F.halt();
  });
  EXPECT_EQ(R.Status, RunStatus::Fault);
  EXPECT_NE(R.FaultMessage.find("division"), std::string::npos);
}

TEST(Machine, FaultOnNullPage) {
  RunResult R = runMain([](FunctionBuilder &F) {
    F.li(1, 0);
    F.ldw(16, 1, 0);
    F.halt();
  });
  EXPECT_EQ(R.Status, RunStatus::Fault);
}

TEST(Machine, FaultOnMisalignedWordAccess) {
  RunResult R = runMain([](FunctionBuilder &F) {
    F.li(1, 0x2001);
    F.ldw(16, 1, 0);
    F.halt();
  });
  EXPECT_EQ(R.Status, RunStatus::Fault);
}

TEST(Machine, FaultOnIllegalInstruction) {
  // Returning to address 0 (initial r26) leaves the mapped image.
  RunResult R = runMain([](FunctionBuilder &F) { F.ret(); });
  EXPECT_EQ(R.Status, RunStatus::Fault);
}

TEST(Machine, InstructionLimitStopsRunaways) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.nop();
    F.label("spin");
    F.br("spin");
  }
  PB.setEntry("main");
  Machine::Config Cfg;
  Cfg.MaxInstructions = 1000;
  Machine M(layoutProgram(PB.build()), Cfg);
  RunResult R = M.run();
  EXPECT_EQ(R.Status, RunStatus::InstLimit);
  EXPECT_EQ(R.Instructions, 1000u);
}

TEST(Machine, BlockProfileCountsEntries) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(1, 5);
    F.label("loop");
    F.subi(1, 1, 1);
    F.bne(1, "loop");
    F.li(16, 0);
    F.halt();
  }
  PB.setEntry("main");
  Program P = PB.build();
  Image Img = layoutProgram(P);
  Machine::Config MC;
  MC.CollectBlockProfile = true;
  Machine M(Img, MC);
  RunResult R = M.run();
  ASSERT_EQ(R.Status, RunStatus::Halted);
  Profile Prof = M.takeProfile();
  vea::Cfg G(P);
  EXPECT_EQ(Prof.BlockCounts[G.idOf("main")], 1u);
  EXPECT_EQ(Prof.BlockCounts[G.idOf("main.loop")], 5u);
  EXPECT_EQ(Prof.TotalInstructions, R.Instructions);
}

TEST(Machine, CyclesMatchInstructionsWithoutTraps) {
  RunResult R = runMain([](FunctionBuilder &F) {
    F.li(1, 100);
    F.label("loop");
    F.subi(1, 1, 1);
    F.bne(1, "loop");
    F.li(16, 0);
    F.halt();
  });
  EXPECT_EQ(R.Cycles, R.Instructions);
}
