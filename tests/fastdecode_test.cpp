//===- tests/fastdecode_test.cpp - Table-driven decoder conformance -------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The fast decoder's contract (DESIGN.md §16): FastDecoder is a bit-exact
// drop-in for StreamCodecs::RegionDecoder — same instructions, same bit
// positions after every decode, same clean-end/corrupt verdicts — on every
// stream, valid or not. This suite pins that equivalence three ways:
//
//  - Conformance: random corpora across every transform configuration
//    (plain / MTF / delta / both) and table width, plus the deliberate
//    edge cases — codes longer than the probe window, single-symbol
//    alphabets, empty regions, streams starting at every intra-byte bit
//    offset, and regions long enough to cross many 64-bit window refills.
//  - Differential execution: 64 random programs and all 11 workloads run
//    byte-identically with FastDecode on and off, at every table width.
//  - Fuzz: truncated, bit-flipped, and garbage streams produce the same
//    decoded prefix and the same verdict from both decoders, and never
//    read out of bounds (the fastdecode-asan preset runs this suite under
//    AddressSanitizer).
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"

#include "compact/Compact.h"
#include "huff/FastDecoder.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "squash/Driver.h"
#include "squash/FaultInjector.h"
#include "support/Random.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace squash;
using namespace vea;

namespace {

/// Generates a random legal instruction (value skew gives the Huffman
/// codes something to exploit, so codeword lengths vary widely).
MInst randomInst(Rng &R) {
  Opcode Op;
  do {
    Op = static_cast<Opcode>(1 + R.nextBelow(NumOpcodes - 1));
  } while (!opcodeInfo(Op).IsLegal && Op != Opcode::Bsrx);
  const FormatLayout &Layout = formatLayout(formatOf(Op));
  MInst I(Op);
  for (unsigned S = 1; S != Layout.Count; ++S) {
    uint32_t Max = (1u << Layout.Slots[S].Width) - 1;
    uint32_t V = R.chance(3, 4) ? R.nextBelow(8) : (R.next() & Max);
    I.set(Layout.Slots[S].Kind, V & Max);
  }
  return I;
}

std::vector<std::vector<MInst>> randomCorpus(Rng &R, size_t Regions,
                                             size_t MaxLen) {
  std::vector<std::vector<MInst>> Corpus(Regions);
  for (auto &Region : Corpus) {
    size_t Len = 1 + R.nextBelow(MaxLen);
    for (size_t I = 0; I != Len; ++I)
      Region.push_back(randomInst(R));
  }
  return Corpus;
}

/// Everything one decode of a region observes: the decoded instruction
/// words, the decoder's bit position after each successful next(), and the
/// final verdict. Fast and slow must agree on all of it.
struct DecodeTrace {
  std::vector<uint32_t> Insts; ///< encode() of each decoded instruction.
  std::vector<size_t> Positions;
  bool Ok = false;
  bool HitCap = false;
};

/// Cap for fuzz inputs: garbage bits can decode arbitrarily many
/// instructions before stumbling on a sentinel, and the equivalence claim
/// holds for the capped prefix just as well.
constexpr size_t DecodeCap = 1 << 14;

DecodeTrace decodeSlow(const StreamCodecs &SC, const std::vector<uint8_t> &Blob,
                       size_t StartBit, size_t Cap = DecodeCap) {
  DecodeTrace T;
  BitReader Rd(Blob);
  Rd.seekBit(StartBit);
  StreamCodecs::RegionDecoder Dec(SC, Rd);
  MInst I;
  while (T.Insts.size() < Cap && Dec.next(I)) {
    T.Insts.push_back(encode(I));
    T.Positions.push_back(Dec.bitPosition());
  }
  T.HitCap = T.Insts.size() == Cap;
  T.Ok = Dec.ok();
  return T;
}

DecodeTrace decodeFast(const StreamCodecs &SC,
                       std::shared_ptr<const FastTables> Tables,
                       const std::vector<uint8_t> &Blob, size_t StartBit,
                       size_t Cap = DecodeCap) {
  DecodeTrace T;
  FastDecoder Dec(SC, std::move(Tables), Blob.data(), Blob.size(), StartBit);
  MInst I;
  while (T.Insts.size() < Cap && Dec.next(I)) {
    T.Insts.push_back(encode(I));
    T.Positions.push_back(Dec.bitPosition());
  }
  T.HitCap = T.Insts.size() == Cap;
  T.Ok = Dec.ok();
  return T;
}

void expectSameDecode(const DecodeTrace &Fast, const DecodeTrace &Slow,
                      const std::string &Tag) {
  ASSERT_EQ(Fast.Insts.size(), Slow.Insts.size())
      << Tag << ": decoded instruction counts diverged";
  for (size_t I = 0; I != Fast.Insts.size(); ++I) {
    ASSERT_EQ(Fast.Insts[I], Slow.Insts[I])
        << Tag << ": instruction " << I << " diverged";
    ASSERT_EQ(Fast.Positions[I], Slow.Positions[I])
        << Tag << ": bit position after instruction " << I << " diverged";
  }
  if (!Fast.HitCap) {
    EXPECT_EQ(Fast.Ok, Slow.Ok) << Tag << ": verdicts diverged";
  }
}

/// Decodes every region of \p Corpus through both decoders at table width
/// \p Bits and asserts full agreement.
void expectCorpusConformance(const std::vector<std::vector<MInst>> &Corpus,
                             StreamCodecs::Options CodecOpts, unsigned Bits,
                             const std::string &Tag) {
  StreamCodecs SC = StreamCodecs::build(Corpus, CodecOpts);
  BitWriter W;
  std::vector<size_t> Offsets;
  for (const auto &Region : Corpus) {
    Offsets.push_back(W.bitSize());
    ASSERT_TRUE(SC.encodeRegion(Region, W).ok());
  }
  std::vector<uint8_t> Blob = W.takeBytes();
  std::shared_ptr<const FastTables> Tables = FastTables::build(SC, Bits);
  ASSERT_TRUE(Tables);
  EXPECT_EQ(Tables->fused(), !CodecOpts.MoveToFront);

  for (size_t R = 0; R != Corpus.size(); ++R) {
    const std::string RegionTag =
        Tag + " bits=" + std::to_string(Bits) + " region " + std::to_string(R);
    DecodeTrace Slow = decodeSlow(SC, Blob, Offsets[R]);
    DecodeTrace Fast = decodeFast(SC, Tables, Blob, Offsets[R]);
    expectSameDecode(Fast, Slow, RegionTag);
    ASSERT_TRUE(Fast.Ok) << RegionTag << ": valid stream reported corrupt";
    ASSERT_EQ(Fast.Insts.size(), Corpus[R].size()) << RegionTag;
    for (size_t I = 0; I != Corpus[R].size(); ++I)
      ASSERT_EQ(Fast.Insts[I], encode(Corpus[R][I])) << RegionTag;
  }
}

/// Parameter bits: 1 = move-to-front, 2 = delta displacements.
class FastDecodeConformance : public ::testing::TestWithParam<int> {
protected:
  StreamCodecs::Options codecOptions() const {
    StreamCodecs::Options Opts;
    Opts.MoveToFront = (GetParam() & 1) != 0;
    Opts.DeltaDisplacements = (GetParam() & 2) != 0;
    return Opts;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Conformance on valid streams
//===----------------------------------------------------------------------===//

TEST_P(FastDecodeConformance, RandomCorporaMatchSlowDecoderAtEveryWidth) {
  // Long regions (up to 200 instructions) cross the 64-bit refill window
  // hundreds of times, so every intra-window alignment of a codeword —
  // including codes straddling a refill — is exercised.
  Rng R(4242 + GetParam() * 13);
  auto Corpus = randomCorpus(R, 12, 200);
  for (unsigned Bits : {FastTables::MinBits, 6u, 8u, FastTables::DefaultBits,
                        FastTables::MaxBits})
    expectCorpusConformance(Corpus, codecOptions(), Bits,
                            "cfg " + std::to_string(GetParam()));
}

TEST_P(FastDecodeConformance, BoundaryFieldValuesMatchSlowDecoder) {
  // Every legal opcode with every field at 0 and at its width's maximum,
  // forward and reversed (delta wrap-around both directions).
  std::vector<MInst> Region;
  for (unsigned O = 1; O != NumOpcodes; ++O) {
    Opcode Op = static_cast<Opcode>(O);
    if (!opcodeInfo(Op).IsLegal && Op != Opcode::Bsrx)
      continue;
    const FormatLayout &Layout = formatLayout(formatOf(Op));
    MInst Lo(Op), Hi(Op);
    for (unsigned S = 1; S != Layout.Count; ++S) {
      Lo.set(Layout.Slots[S].Kind, 0);
      Hi.set(Layout.Slots[S].Kind, (1u << Layout.Slots[S].Width) - 1);
    }
    Region.push_back(Lo);
    Region.push_back(Hi);
  }
  std::vector<MInst> Reversed(Region.rbegin(), Region.rend());
  Region.insert(Region.end(), Reversed.begin(), Reversed.end());
  for (unsigned Bits : {FastTables::MinBits, FastTables::DefaultBits})
    expectCorpusConformance({Region}, codecOptions(), Bits, "boundary");
}

INSTANTIATE_TEST_SUITE_P(PlainMtfDelta, FastDecodeConformance,
                         ::testing::Range(0, 4));

TEST(FastDecode, StartBitAtEveryIntraByteOffset) {
  // A region's blob offset is an arbitrary bit position; the fast decoder's
  // initial window load must discard the intra-byte prefix exactly.
  Rng R(77);
  std::vector<MInst> Region;
  for (int I = 0; I != 120; ++I)
    Region.push_back(randomInst(R));
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  std::shared_ptr<const FastTables> Tables =
      FastTables::build(SC, FastTables::DefaultBits);

  for (unsigned Pad = 0; Pad != 8; ++Pad) {
    BitWriter W;
    W.writeBits(0x55u, Pad); // Alternating junk the decoder must skip.
    ASSERT_TRUE(SC.encodeRegion(Region, W).ok());
    std::vector<uint8_t> Blob = W.takeBytes();
    const std::string Tag = "pad " + std::to_string(Pad);
    DecodeTrace Slow = decodeSlow(SC, Blob, Pad);
    DecodeTrace Fast = decodeFast(SC, Tables, Blob, Pad);
    expectSameDecode(Fast, Slow, Tag);
    ASSERT_TRUE(Fast.Ok) << Tag;
    ASSERT_EQ(Fast.Insts.size(), Region.size()) << Tag;
  }
}

TEST(FastDecode, SingleSymbolAlphabetsAndEmptyRegions) {
  // Degenerate codes: one identical instruction repeated collapses every
  // stream to a single-symbol (1-bit) alphabet; an empty region is a bare
  // sentinel. Null tables exercise the private-build fallback path.
  std::vector<std::vector<MInst>> Corpus = {
      std::vector<MInst>(64, makeRRR(Opcode::Add, 7, 7, 7)), {}};
  StreamCodecs SC = StreamCodecs::build(Corpus, StreamCodecs::Options());
  BitWriter W;
  std::vector<size_t> Offsets;
  for (const auto &Region : Corpus) {
    Offsets.push_back(W.bitSize());
    ASSERT_TRUE(SC.encodeRegion(Region, W).ok());
  }
  std::vector<uint8_t> Blob = W.takeBytes();

  for (size_t R = 0; R != Corpus.size(); ++R) {
    DecodeTrace Slow = decodeSlow(SC, Blob, Offsets[R]);
    // nullptr tables: the decoder builds a private set at DefaultBits.
    DecodeTrace Fast = decodeFast(SC, nullptr, Blob, Offsets[R]);
    expectSameDecode(Fast, Slow, "degenerate region " + std::to_string(R));
    ASSERT_TRUE(Fast.Ok);
    ASSERT_EQ(Fast.Insts.size(), Corpus[R].size());
  }
}

TEST(FastDecode, MaxLengthCodesEscapeThroughEveryTableWidth) {
  // Fibonacci literal frequencies force a fully skewed Huffman tree whose
  // deepest codewords exceed even MaxBits, so every table width must take
  // the escape path into the bit-by-bit canonical walk — and agree with
  // the slow decoder on the result.
  std::vector<MInst> Region;
  const FormatLayout &Layout = formatLayout(formatOf(Opcode::Addi));
  uint64_t A = 1, B = 1;
  for (uint32_t Lit = 0; Lit != 20; ++Lit) {
    MInst I(Opcode::Addi);
    for (unsigned S = 1; S != Layout.Count; ++S)
      I.set(Layout.Slots[S].Kind,
            Layout.Slots[S].Kind == FieldKind::Lit8 ? Lit : 1u);
    Region.insert(Region.end(), A, I);
    uint64_t Next = A + B;
    A = B;
    B = Next;
  }
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  ASSERT_GT(SC.code(FieldKind::Lit8).maxLength(), FastTables::MaxBits)
      << "corpus no longer produces codes longer than the widest table";
  BitWriter W;
  ASSERT_TRUE(SC.encodeRegion(Region, W).ok());
  std::vector<uint8_t> Blob = W.takeBytes();

  DecodeTrace Slow = decodeSlow(SC, Blob, 0, Region.size() + 1);
  for (unsigned Bits : {FastTables::MinBits, FastTables::DefaultBits,
                        FastTables::MaxBits}) {
    DecodeTrace Fast = decodeFast(SC, FastTables::build(SC, Bits), Blob, 0,
                                  Region.size() + 1);
    expectSameDecode(Fast, Slow, "bits " + std::to_string(Bits));
    ASSERT_TRUE(Fast.Ok);
    ASSERT_EQ(Fast.Insts.size(), Region.size());
  }
}

TEST(FastDecode, TablesAreMemoizedAndWidthClamped) {
  Rng R(3);
  auto Corpus = randomCorpus(R, 4, 50);
  StreamCodecs SC = StreamCodecs::build(Corpus, StreamCodecs::Options());

  std::shared_ptr<const FastTables> A = SC.fastTables(11);
  std::shared_ptr<const FastTables> B = SC.fastTables(11);
  EXPECT_EQ(A.get(), B.get()) << "repeat attaches must share one table set";
  EXPECT_EQ(A->bits(), 11u);
  EXPECT_GT(A->tableBytes(), 0u);

  EXPECT_EQ(SC.fastTables(99)->bits(), FastTables::MaxBits);
  EXPECT_EQ(SC.fastTables(0)->bits(), FastTables::MinBits);
}

// The batch surface must be observationally identical to a next() loop at
// every chunk size — including chunks that land mid-region, on the
// sentinel, and past it — on both the fused and the MTF (slow-path-only)
// configurations, and on truncated streams.
TEST(FastDecode, DecodeRunChunksMatchNextAtEveryBoundary) {
  Rng R(777);
  auto Corpus = randomCorpus(R, 4, 200);
  for (bool Mtf : {false, true}) {
    StreamCodecs::Options Opts;
    Opts.MoveToFront = Mtf;
    StreamCodecs SC = StreamCodecs::build(Corpus, Opts);
    BitWriter W;
    std::vector<size_t> Offsets;
    for (const auto &Region : Corpus) {
      Offsets.push_back(W.bitSize());
      ASSERT_TRUE(SC.encodeRegion(Region, W).ok());
    }
    std::vector<uint8_t> Blob = W.takeBytes();
    auto Tables = FastTables::build(SC, FastTables::DefaultBits);
    // A truncated copy exercises the corrupt-verdict exits as well.
    std::vector<uint8_t> Cut(Blob.begin(), Blob.begin() + Blob.size() / 2);

    for (const std::vector<uint8_t> &Bytes : {Blob, Cut}) {
      for (size_t RIx = 0; RIx != Corpus.size(); ++RIx) {
        if (Offsets[RIx] >= 8 * Bytes.size())
          continue;
        // Reference: a plain next() loop, final cursor state included.
        std::vector<uint32_t> Ref;
        FastDecoder RefDec(SC, Tables, Bytes.data(), Bytes.size(),
                           Offsets[RIx]);
        MInst I;
        while (Ref.size() < DecodeCap && RefDec.next(I))
          Ref.push_back(encode(I));

        for (size_t Chunk : {1u, 2u, 3u, 7u, 64u, 4096u}) {
          const std::string Tag = std::string(Mtf ? "mtf" : "fused") +
                                  (Bytes.size() == Cut.size() ? " cut" : "") +
                                  " region " + std::to_string(RIx) +
                                  " chunk " + std::to_string(Chunk);
          FastDecoder Dec(SC, Tables, Bytes.data(), Bytes.size(),
                          Offsets[RIx]);
          EXPECT_EQ(Dec.decodeRun(nullptr, 0), 0u) << Tag;
          std::vector<MInst> Out(Chunk);
          std::vector<uint32_t> Got;
          while (Got.size() < DecodeCap) {
            const size_t N = Dec.decodeRun(Out.data(), Chunk);
            if (!N)
              break;
            for (size_t K = 0; K != N; ++K)
              Got.push_back(encode(Out[K]));
          }
          ASSERT_EQ(Got.size(), Ref.size()) << Tag;
          for (size_t K = 0; K != Got.size(); ++K)
            ASSERT_EQ(Got[K], Ref[K]) << Tag << ": instruction " << K;
          EXPECT_EQ(Dec.ok(), RefDec.ok()) << Tag;
          EXPECT_EQ(Dec.atEnd(), RefDec.atEnd()) << Tag;
          EXPECT_EQ(Dec.bitPosition(), RefDec.bitPosition()) << Tag;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Fuzz: malformed streams must produce identical prefixes and verdicts
// from both decoders, and never read out of bounds (asan preset).
//===----------------------------------------------------------------------===//

namespace {

/// Shared fuzz fixture: a fixed random corpus, its encoded blob, and
/// tables at a narrow and the default width (narrow tables route more
/// symbols through the escape path).
struct FuzzCorpus {
  StreamCodecs SC;
  std::vector<uint8_t> Blob;
  std::vector<size_t> Offsets;
  std::shared_ptr<const FastTables> Narrow, Wide;

  explicit FuzzCorpus(StreamCodecs::Options Opts) {
    Rng R(90210);
    auto Corpus = randomCorpus(R, 8, 120);
    SC = StreamCodecs::build(Corpus, Opts);
    BitWriter W;
    for (const auto &Region : Corpus) {
      Offsets.push_back(W.bitSize());
      EXPECT_TRUE(SC.encodeRegion(Region, W).ok());
    }
    Blob = W.takeBytes();
    Narrow = FastTables::build(SC, FastTables::MinBits);
    Wide = FastTables::build(SC, FastTables::DefaultBits);
  }

  void expectAgreement(const std::vector<uint8_t> &Bytes, size_t StartBit,
                       const std::string &Tag) const {
    DecodeTrace Slow = decodeSlow(SC, Bytes, StartBit);
    expectSameDecode(decodeFast(SC, Wide, Bytes, StartBit), Slow,
                     Tag + " wide");
    expectSameDecode(decodeFast(SC, Narrow, Bytes, StartBit), Slow,
                     Tag + " narrow");
  }
};

} // namespace

TEST(FastDecodeFuzz, TruncatedStreamsAgreeAtEveryLength) {
  // Every byte-length prefix of the blob, decoded from region 0: the cut
  // can land inside any codeword of any stream, which is exactly where the
  // fast decoder's zero-padding and overrun accounting must match the
  // BitReader's.
  FuzzCorpus F{StreamCodecs::Options()};
  for (size_t Len = 0; Len <= F.Blob.size(); ++Len) {
    std::vector<uint8_t> Cut(F.Blob.begin(), F.Blob.begin() + Len);
    F.expectAgreement(Cut, 0, "truncate " + std::to_string(Len));
  }
}

TEST(FastDecodeFuzz, BitFlipsAgreeOnVerdictAndPrefix) {
  FuzzCorpus Plain{StreamCodecs::Options()};
  StreamCodecs::Options MtfOpts;
  MtfOpts.MoveToFront = true;
  FuzzCorpus Mtf{MtfOpts};
  Rng R(1337);
  for (int Trial = 0; Trial != 300; ++Trial) {
    const FuzzCorpus &F = (Trial & 1) ? Mtf : Plain;
    std::vector<uint8_t> Bytes = F.Blob;
    size_t Bit = R.nextBelow(Bytes.size() * 8);
    Bytes[Bit / 8] ^= static_cast<uint8_t>(0x80u >> (Bit % 8));
    size_t Start = F.Offsets[R.nextBelow(F.Offsets.size())];
    F.expectAgreement(Bytes, Start,
                      "flip bit " + std::to_string(Bit) + " trial " +
                          std::to_string(Trial));
  }
}

TEST(FastDecodeFuzz, GarbageStreamsAgreeAndNeverCrash) {
  // Pure noise, every buffer length 0..64 and random start bits: both
  // decoders must walk the same instruction prefix, return the same
  // verdict, and stay inside the buffer (the asan job proves the latter).
  FuzzCorpus Plain{StreamCodecs::Options()};
  StreamCodecs::Options MtfOpts;
  MtfOpts.MoveToFront = true;
  MtfOpts.DeltaDisplacements = true;
  FuzzCorpus Mtf{MtfOpts};
  Rng R(5150);
  for (int Trial = 0; Trial != 300; ++Trial) {
    const FuzzCorpus &F = (Trial & 1) ? Mtf : Plain;
    std::vector<uint8_t> Bytes(R.nextBelow(65));
    for (uint8_t &Byte : Bytes)
      Byte = static_cast<uint8_t>(R.next());
    size_t Start = Bytes.empty() ? 0 : R.nextBelow(Bytes.size() * 8 + 1);
    F.expectAgreement(Bytes, Start, "garbage trial " + std::to_string(Trial));
  }
}

//===----------------------------------------------------------------------===//
// Differential execution: FastDecode on and off are observationally
// identical end to end, across random programs, all workloads, and every
// table width.
//===----------------------------------------------------------------------===//

namespace {

struct RunObservables {
  RunStatus Status;
  uint32_t ExitCode;
  std::vector<uint8_t> Output;
  uint64_t Decompressions;
  uint64_t DecodedInstructions;
};

RunObservables runWith(const SquashedProgram &SP, std::vector<uint8_t> Input,
                       bool FastDecode, unsigned TableBits = 11,
                       bool DecodeAhead = false) {
  SquashedProgram Copy = SP;
  Copy.Opts.FastDecode = FastDecode;
  Copy.Opts.DecodeTableBits = TableBits;
  Copy.Opts.DecodeAhead = DecodeAhead;
  SquashedRun Run = runSquashed(Copy, std::move(Input));
  return {Run.Run.Status, Run.Run.ExitCode, Run.Output,
          Run.Runtime.Decompressions, Run.Runtime.DecodedInstructions};
}

void expectSameRun(const RunObservables &Got, const RunObservables &Want,
                   const std::string &Tag) {
  ASSERT_EQ(Got.Status, Want.Status) << Tag;
  EXPECT_EQ(Got.ExitCode, Want.ExitCode) << Tag;
  EXPECT_EQ(Got.Output, Want.Output) << Tag << ": output diverged";
  EXPECT_EQ(Got.Decompressions, Want.Decompressions) << Tag;
  EXPECT_EQ(Got.DecodedInstructions, Want.DecodedInstructions) << Tag;
}

class FastDecodeDifferential : public ::testing::TestWithParam<int> {};

constexpr double WorkloadScale = 0.05;

workloads::Workload buildWorkload(int Index) {
  using namespace workloads;
  switch (Index) {
  case 0:
    return buildAdpcm(WorkloadScale);
  case 1:
    return buildEpic(WorkloadScale);
  case 2:
    return buildG721Dec(WorkloadScale);
  case 3:
    return buildG721Enc(WorkloadScale);
  case 4:
    return buildGsm(WorkloadScale);
  case 5:
    return buildJpegDec(WorkloadScale);
  case 6:
    return buildJpegEnc(WorkloadScale);
  case 7:
    return buildMpeg2Dec(WorkloadScale);
  case 8:
    return buildMpeg2Enc(WorkloadScale);
  case 9:
    return buildPgp(WorkloadScale);
  default:
    return buildRasta(WorkloadScale);
  }
}

const char *workloadName(int Index) {
  static const char *Names[] = {"adpcm",    "epic",     "g721_dec",
                                "g721_enc", "gsm",      "jpeg_dec",
                                "jpeg_enc", "mpeg2dec", "mpeg2enc",
                                "pgp",      "rasta"};
  return Names[Index];
}

} // namespace

TEST_P(FastDecodeDifferential, RandomProgramsIdenticalOnAndOff) {
  const uint64_t Seed = static_cast<uint64_t>(GetParam()) * 2477 + 13;
  const std::string Tag = "seed " + std::to_string(Seed);

  Program Prog = testgen::randomProgram(Seed);
  compactProgram(Prog).take();
  Image Compacted = layoutProgram(Prog);
  Profile Prof = profileImage(Compacted, {}).take();

  // θ = 1.0 with a small buffer bound: every block a candidate, several
  // regions, maximum decoder coverage. MTF alternates across seeds so both
  // fast paths (fused tables and field-at-a-time MTF) see all 64 programs.
  Options Opts;
  Opts.Theta = 1.0;
  Opts.BufferBoundBytes = 256;
  Opts.MoveToFront = (GetParam() % 2) == 1;
  Opts.DeltaDisplacements = (GetParam() % 4) >= 2;
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();

  RunObservables Slow = runWith(SR.SP, {}, /*FastDecode=*/false);
  ASSERT_EQ(Slow.Status, RunStatus::Halted) << Tag;
  expectSameRun(runWith(SR.SP, {}, /*FastDecode=*/true), Slow, Tag + " fast");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastDecodeDifferential,
                         ::testing::Range(0, 64));

namespace {

class FastDecodeWorkloads : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(FastDecodeWorkloads, ByteIdenticalOnAndOff) {
  workloads::Workload W = buildWorkload(GetParam());
  compactProgram(W.Prog).take();
  Image Baseline = layoutProgram(W.Prog);
  Profile Prof = profileImage(Baseline, W.ProfilingInput).take();
  Options Opts;
  Opts.Theta = 0.1; // The timing input reaches compressed code here.
  SquashResult SR = squashProgram(W.Prog, Prof, Opts).take();
  ASSERT_FALSE(SR.Identity) << W.Name;

  RunObservables Slow = runWith(SR.SP, W.TimingInput, /*FastDecode=*/false);
  ASSERT_EQ(Slow.Status, RunStatus::Halted) << W.Name;
  ASSERT_GT(Slow.Decompressions, 0u)
      << W.Name << ": timing input never reached compressed code";
  expectSameRun(runWith(SR.SP, W.TimingInput, /*FastDecode=*/true), Slow,
                std::string(W.Name) + " fast");
  // Decode-ahead on top of the fast decoder is equally invisible.
  expectSameRun(runWith(SR.SP, W.TimingInput, /*FastDecode=*/true, 11,
                        /*DecodeAhead=*/true),
                Slow, std::string(W.Name) + " decode-ahead");
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, FastDecodeWorkloads,
                         ::testing::Range(0, 11),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return workloadName(Info.param);
                         });

TEST(FastDecode, TableWidthSweepIsBehaviorInvariant) {
  workloads::Workload W = buildWorkload(0);
  compactProgram(W.Prog).take();
  Image Baseline = layoutProgram(W.Prog);
  Profile Prof = profileImage(Baseline, W.ProfilingInput).take();
  Options Opts;
  Opts.Theta = 0.1;
  SquashResult SR = squashProgram(W.Prog, Prof, Opts).take();

  RunObservables Slow = runWith(SR.SP, W.TimingInput, /*FastDecode=*/false);
  ASSERT_EQ(Slow.Status, RunStatus::Halted);
  for (unsigned Bits : {4u, 8u, 11u, 14u})
    expectSameRun(runWith(SR.SP, W.TimingInput, /*FastDecode=*/true, Bits),
                  Slow, "table bits " + std::to_string(Bits));
}

//===----------------------------------------------------------------------===//
// Attach-time table validation
//===----------------------------------------------------------------------===//

TEST(FastDecode, TruncatedHostTableRejectedAtAttach) {
  // A host-mirror code table damaged at rest (FaultKind::DecodeTableTruncated)
  // must be refused by attach's StreamCodecs::validate() — a clean Fault
  // run, never a decode-time surprise or a table probe out of bounds.
  workloads::Workload W = buildWorkload(0);
  compactProgram(W.Prog).take();
  Image Baseline = layoutProgram(W.Prog);
  Profile Prof = profileImage(Baseline, W.ProfilingInput).take();
  Options Opts;
  Opts.Theta = 0.1;
  SquashResult SR = squashProgram(W.Prog, Prof, Opts).take();

  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    SquashedProgram SP = SR.SP;
    FaultInjector FI(17 + Seed * 2654435761ull);
    std::optional<FaultReport> FR =
        FI.inject(SP, FaultKind::DecodeTableTruncated);
    ASSERT_TRUE(FR.has_value());
    SCOPED_TRACE(FR->Description);
    EXPECT_FALSE(SP.Codecs.validate().ok());
    SquashedRun Run = runSquashed(SP, W.TimingInput);
    EXPECT_EQ(Run.Run.Status, RunStatus::Fault);
    EXPECT_FALSE(Run.Run.FaultMessage.empty());
  }
}
