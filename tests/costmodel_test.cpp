//===- tests/costmodel_test.cpp - Shared cycle-cost model -----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// squash/CostModel.h is the single source of truth for every cycle charge
// the simulated runtime makes; these tests pin its formulas and then catch
// drift the hard way: run a squashed program and re-derive each aggregate
// charge from event counts times the configured constants. If the runtime
// (or a future codec) starts pricing work on its own, the re-derivation
// stops matching.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "squash/CostModel.h"
#include "squash/Driver.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;

namespace {

/// A squashable program whose compressed half actually runs: the loop and
/// both helpers are skipped on the profiling input (byte 0) so they go
/// cold and compress, then the measurement input (byte 1) drives the loop
/// through them — forcing the runtime to decompress, re-enter (buffered
/// hits), and create restore stubs.
Program costProgram() {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    F.label("go");
    F.li(9, 40);
    F.label("loop");
    F.call("work");
    F.call("helper");
    F.subi(9, 9, 1);
    F.bne(9, "loop");
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("work");
    for (int I = 0; I != 16; ++I)
      F.addi(1, 1, 3);
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("helper");
    for (int I = 0; I != 12; ++I)
      F.addi(2, 2, 7);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

SquashedRun squashAndRun(const Options &Opts) {
  Program Prog = costProgram();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {0}).take();
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  SquashedRun Run = runSquashed(SR.SP, {1});
  EXPECT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  return Run;
}

} // namespace

TEST(CostModel, DefaultConstants) {
  // The charges the benches and DESIGN.md §6 quote. Changing one is a
  // deliberate re-calibration: update the docs with this test.
  CostModel C;
  EXPECT_EQ(C.DecompSetupCycles, 64u);
  EXPECT_EQ(C.CyclesPerDecodedInstr, 24u);
  EXPECT_EQ(C.IcacheFlushCycles, 32u);
  EXPECT_EQ(C.CreateStubCycles, 16u);
  EXPECT_EQ(C.PatternCyclesPerCoveredInstr, 6u);
  EXPECT_EQ(C.ContextCyclesPerDecodedInstr, 28u);
}

TEST(CostModel, CodecDecodeCycleFormulas) {
  CostModel C;
  DecodeWork W;
  W.Instructions = 100;
  W.PatternCovered = 70;
  W.Escapes = 30;

  EXPECT_EQ(codecDecodeCycles(C, CodecKind::Huffman, W), 100u * 24u);
  EXPECT_EQ(codecDecodeCycles(C, CodecKind::Pattern, W),
            70u * 6u + 30u * 24u);
  EXPECT_EQ(codecDecodeCycles(C, CodecKind::Context, W), 100u * 28u);

  // The formulas scale with the constants, not with baked-in numbers.
  C.CyclesPerDecodedInstr = 5;
  C.PatternCyclesPerCoveredInstr = 2;
  C.ContextCyclesPerDecodedInstr = 9;
  EXPECT_EQ(codecDecodeCycles(C, CodecKind::Huffman, W), 500u);
  EXPECT_EQ(codecDecodeCycles(C, CodecKind::Pattern, W), 70u * 2u + 30u * 5u);
  EXPECT_EQ(codecDecodeCycles(C, CodecKind::Context, W), 900u);
}

TEST(CostModel, RegionFillChargeSplitsFlatVsModeledFlush) {
  CostModel C;
  FillCharge Flat = regionFillCharge(C, 1000, /*ModeledIcache=*/false);
  EXPECT_EQ(Flat.Setup, C.DecompSetupCycles);
  EXPECT_EQ(Flat.Decode, 1000u);
  EXPECT_EQ(Flat.Flush, C.IcacheFlushCycles);
  EXPECT_EQ(Flat.total(), 64u + 1000u + 32u);

  // With the machine modeling the cache, the flat flush charge must vanish
  // (the cost surfaces as fetch misses instead; charging both would
  // double-count).
  FillCharge Modeled = regionFillCharge(C, 1000, /*ModeledIcache=*/true);
  EXPECT_EQ(Modeled.Setup, C.DecompSetupCycles);
  EXPECT_EQ(Modeled.Decode, 1000u);
  EXPECT_EQ(Modeled.Flush, 0u);
}

TEST(CostModel, RuntimeChargesMatchEventCountsTimesConstants) {
  Options Opts;
  Opts.Theta = 1.0; // Everything cold: maximal runtime traffic.
  SquashedRun R = squashAndRun(Opts);
  const RuntimeSystem::Stats &St = R.Runtime;
  const CostModel &C = Opts.Costs;

  // The program really exercised every charge path.
  ASSERT_GT(St.Decompressions, 0u);
  ASSERT_GT(St.DecodedInstructions, 0u);

  // Each aggregate equals its event count times the shared constant.
  EXPECT_EQ(St.TrapSetupCyclesTotal,
            (St.Decompressions + St.BufferedHits) * C.DecompSetupCycles);
  EXPECT_EQ(St.IcacheFlushCyclesTotal,
            St.Decompressions * C.IcacheFlushCycles);
  EXPECT_EQ(St.CreateStubCyclesTotal, St.StubCreates * C.CreateStubCycles);
  // All-Huffman plan, no decode-ahead: decode work is exactly the Huffman
  // per-instruction rate.
  EXPECT_EQ(
      St.DecodeOnlyCyclesByCodec[static_cast<size_t>(CodecKind::Huffman)],
      St.DecodedInstructions * C.CyclesPerDecodedInstr);
  EXPECT_EQ(
      St.DecodeOnlyCyclesByCodec[static_cast<size_t>(CodecKind::Pattern)], 0u);
  EXPECT_EQ(
      St.DecodeOnlyCyclesByCodec[static_cast<size_t>(CodecKind::Context)], 0u);
}

TEST(CostModel, ModeledIcacheDropsFlatFlushCharge) {
  Options Opts;
  Opts.Theta = 1.0;
  Opts.Icache.Enabled = true;
  Opts.Icache.Sets = 16;
  Opts.Icache.Ways = 2;
  SquashedRun R = squashAndRun(Opts);
  const RuntimeSystem::Stats &St = R.Runtime;

  ASSERT_GT(St.Decompressions, 0u);
  // The flush cost moved from the flat charge into modeled fetch misses.
  EXPECT_EQ(St.IcacheFlushCyclesTotal, 0u);
  EXPECT_GT(R.Run.IcacheMisses, 0u);
  EXPECT_EQ(R.Run.IcacheMissCycles,
            R.Run.IcacheMisses * Opts.Icache.MissCycles);
  // The other charges are flush-independent.
  EXPECT_EQ(St.TrapSetupCyclesTotal, (St.Decompressions + St.BufferedHits) *
                                         Opts.Costs.DecompSetupCycles);
  EXPECT_EQ(St.CreateStubCyclesTotal,
            St.StubCreates * Opts.Costs.CreateStubCycles);
}

TEST(CostModel, ScaledConstantsMoveRuntimeCharges) {
  // Double one constant; the runtime's aggregate must double with it —
  // proof the runtime prices through the shared model, not a copy.
  Options Base;
  Base.Theta = 1.0;
  SquashedRun A = squashAndRun(Base);

  Options Scaled = Base;
  Scaled.Costs.DecompSetupCycles *= 2;
  SquashedRun B = squashAndRun(Scaled);

  ASSERT_EQ(B.Runtime.Decompressions, A.Runtime.Decompressions);
  ASSERT_EQ(B.Runtime.BufferedHits, A.Runtime.BufferedHits);
  EXPECT_EQ(B.Runtime.TrapSetupCyclesTotal,
            2 * A.Runtime.TrapSetupCyclesTotal);
  EXPECT_EQ(B.Output, A.Output); // Costs never change behaviour.
}
