//===- tests/disasm_test.cpp - Image listing and branch-semantics tests ---===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "isa/Disasm.h"
#include "link/ImageDisasm.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace vea;

TEST(ImageDisasm, ListsLabelsAndAnnotatesBranches) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(1, 2);
    F.label("loop");
    F.subi(1, 1, 1);
    F.bne(1, "loop");
    F.call("helper");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("helper");
    F.ret();
  }
  PB.setEntry("main");
  Image Img = layoutProgram(PB.build());
  std::string Listing = disassembleImage(Img);

  EXPECT_NE(Listing.find("main:"), std::string::npos) << Listing;
  EXPECT_NE(Listing.find("main.loop:"), std::string::npos);
  EXPECT_NE(Listing.find("helper:"), std::string::npos);
  // The backward branch and the call are annotated with their targets.
  EXPECT_NE(Listing.find("<main.loop>"), std::string::npos);
  EXPECT_NE(Listing.find("<helper>"), std::string::npos);
  // One listing row per code word.
  size_t Rows = 0;
  for (size_t Pos = Listing.find("  00"); Pos != std::string::npos;
       Pos = Listing.find("  00", Pos + 1))
    ++Rows;
  EXPECT_EQ(Rows, Img.CodeBytes / 4);
}

namespace {

/// Branch-semantics sweep: opcode, register value, whether it must branch.
struct BranchCase {
  Opcode Op;
  uint32_t Value;
  bool Taken;
};

class BranchSemantics : public ::testing::TestWithParam<BranchCase> {};

} // namespace

TEST_P(BranchSemantics, TakenExactlyWhenSpecified) {
  BranchCase C = GetParam();
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.li(1, static_cast<int32_t>(C.Value));
  Inst Br;
  Br.Op = C.Op;
  Br.Ra = 1;
  Br.Symbol = "main.taken";
  Br.Reloc = RelocKind::BranchDisp;
  F.emit(Br);
  F.li(16, 0); // Fallthrough: exit 0.
  F.halt();
  F.label("taken");
  F.li(16, 1); // Taken: exit 1.
  F.halt();
  PB.setEntry("main");
  Machine M(layoutProgram(PB.build()));
  RunResult R = M.run();
  ASSERT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(R.ExitCode, C.Taken ? 1u : 0u)
      << opcodeInfo(C.Op).Name << " on " << C.Value;
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, BranchSemantics,
    ::testing::Values(
        BranchCase{Opcode::Beq, 0, true}, BranchCase{Opcode::Beq, 5, false},
        BranchCase{Opcode::Bne, 0, false}, BranchCase{Opcode::Bne, 5, true},
        BranchCase{Opcode::Blt, 0xFFFFFFFF, true}, // -1 < 0
        BranchCase{Opcode::Blt, 0, false},
        BranchCase{Opcode::Ble, 0, true},
        BranchCase{Opcode::Ble, 1, false},
        BranchCase{Opcode::Ble, 0x80000000, true}, // INT_MIN
        BranchCase{Opcode::Bgt, 1, true}, BranchCase{Opcode::Bgt, 0, false},
        BranchCase{Opcode::Bgt, 0xFFFFFFFF, false},
        BranchCase{Opcode::Bge, 0, true},
        BranchCase{Opcode::Bge, 0xFFFFFFFF, false},
        BranchCase{Opcode::Blbc, 4, true}, BranchCase{Opcode::Blbc, 5, false},
        BranchCase{Opcode::Blbs, 5, true},
        BranchCase{Opcode::Blbs, 4, false}));

TEST(ImageDisasm, RendersSquashInternalWords) {
  // Bsrx words (never in executable images, but present in diagnostics)
  // and truly illegal words both render without crashing.
  MInst Bsrx = makeBranch(Opcode::Bsrx, 26, 10);
  std::string Text = disassembleWord(encode(Bsrx));
  EXPECT_NE(Text.find("bsrx"), std::string::npos);
  EXPECT_NE(disassembleWord(0x3F << 26).find(".word"), std::string::npos);
}
