//===- tests/coldcode_test.cpp - Section 5 threshold algorithm tests ------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "squash/ColdCode.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;

/// Builds a program with \p N straight-line blocks of \p BlockSize
/// instructions each, and a synthetic profile with given per-block counts.
static Program blockChain(unsigned N, unsigned BlockSize) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  for (unsigned B = 0; B != N; ++B) {
    if (B != 0)
      F.label("b" + std::to_string(B));
    for (unsigned I = 0; I + 1 < BlockSize; ++I)
      F.addi(1, 1, 1);
    if (B + 1 == N) {
      F.halt();
    } else {
      F.addi(1, 1, 1);
    }
  }
  PB.setEntry("main");
  return PB.build();
}

static Profile makeProfile(std::vector<uint64_t> Counts, unsigned BlockSize) {
  Profile P;
  P.BlockCounts = std::move(Counts);
  P.TotalInstructions = 0;
  for (uint64_t C : P.BlockCounts)
    P.TotalInstructions += C * BlockSize;
  return P;
}

TEST(ColdCode, ThetaZeroMeansNeverExecutedOnly) {
  Program Prog = blockChain(4, 10);
  Cfg G(Prog);
  Profile Prof = makeProfile({100, 0, 5, 0}, 10);
  ColdCodeResult R = identifyColdCode(G, Prof, 0.0).take();
  EXPECT_EQ(R.FrequencyCutoff, 0u);
  EXPECT_EQ(R.IsCold[0], 0);
  EXPECT_EQ(R.IsCold[1], 1);
  EXPECT_EQ(R.IsCold[2], 0);
  EXPECT_EQ(R.IsCold[3], 1);
  EXPECT_EQ(R.ColdInstructions, 20u);
}

TEST(ColdCode, ThetaOneMakesEverythingCold) {
  Program Prog = blockChain(3, 10);
  Cfg G(Prog);
  Profile Prof = makeProfile({1000, 10, 1}, 10);
  ColdCodeResult R = identifyColdCode(G, Prof, 1.0).take();
  for (uint8_t C : R.IsCold)
    EXPECT_EQ(C, 1);
  EXPECT_DOUBLE_EQ(R.coldFraction(), 1.0);
}

TEST(ColdCode, FrequencyClassesAdmittedWhole) {
  // Blocks with freq {0, 1, 1, 100}: tot = (1+1)*10 + 100*10 = 1020.
  // A theta budget that covers one-but-not-both freq-1 blocks must not
  // admit the class: "every block with frequency <= N is cold".
  Program Prog = blockChain(4, 10);
  Cfg G(Prog);
  Profile Prof = makeProfile({0, 1, 1, 100}, 10);
  double Budget15 = 15.0 / static_cast<double>(Prof.TotalInstructions);
  ColdCodeResult R = identifyColdCode(G, Prof, Budget15).take();
  EXPECT_EQ(R.FrequencyCutoff, 0u); // Class of weight 20 does not fit 15.

  double Budget20 = 20.0 / static_cast<double>(Prof.TotalInstructions);
  R = identifyColdCode(G, Prof, Budget20).take();
  EXPECT_EQ(R.FrequencyCutoff, 1u);
  EXPECT_EQ(R.IsCold[1], 1);
  EXPECT_EQ(R.IsCold[2], 1);
  EXPECT_EQ(R.IsCold[3], 0);
}

TEST(ColdCode, CutoffIsLargestAdmissibleFrequency) {
  Program Prog = blockChain(5, 10);
  Cfg G(Prog);
  Profile Prof = makeProfile({0, 2, 4, 8, 1000}, 10);
  // Weights: 0, 20, 40, 80, 10000; tot = 10140.
  // Cumulative: f<=2 -> 20; f<=4 -> 60; f<=8 -> 140.
  ColdCodeResult R =
      identifyColdCode(G, Prof, 60.0 / Prof.TotalInstructions).take();
  EXPECT_EQ(R.FrequencyCutoff, 4u);
  R = identifyColdCode(G, Prof, 139.0 / Prof.TotalInstructions).take();
  EXPECT_EQ(R.FrequencyCutoff, 4u);
  R = identifyColdCode(G, Prof, 140.0 / Prof.TotalInstructions).take();
  EXPECT_EQ(R.FrequencyCutoff, 8u);
}

TEST(ColdCode, MismatchedProfileIsError) {
  Program Prog = blockChain(2, 4);
  Cfg G(Prog);
  Profile Prof = makeProfile({1}, 4); // Wrong size.
  vea::Expected<ColdCodeResult> R = identifyColdCode(G, Prof, 0.0);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), vea::StatusCode::InvalidArgument);
  EXPECT_NE(R.status().toString().find("profile"), std::string::npos);
}
