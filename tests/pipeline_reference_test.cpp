//===- tests/pipeline_reference_test.cpp - Pipeline refactor goldens ------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The pass-manager pipeline must be BYTE-IDENTICAL to the monolithic
// driver it replaced. referenceSquash below is a frozen copy of that
// driver's body (pre-pass-manager squashProgram, stats bookkeeping elided);
// every random program (the differential suite's 64 seeds, across the
// option matrix) and every workload is squashed through both and the
// resulting images compared byte for byte. This pins the refactor without
// relying on platform-dependent embedded checksums.
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"

#include "compact/Compact.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "squash/Driver.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;
using testgen::randomProgram;

namespace {

/// The squash pipeline exactly as the monolithic driver ran it, minus
/// timing. Any behavioural change to the passes or their ordering shows up
/// as an image mismatch against this copy.
Expected<SquashResult> referenceSquash(Program Prog, const Profile &Prof,
                                       const Options &Opts) {
  if (std::string Err = Prog.verify(); !Err.empty())
    return Status::error(StatusCode::MalformedProgram,
                         "squash: input does not verify: " + Err);

  SquashResult R;
  const uint32_t OriginalCodeBytes =
      static_cast<uint32_t>(4 * Prog.instructionCount());

  // Section 5: cold code.
  {
    Cfg G0(Prog);
    Expected<ColdCodeResult> Cold =
        identifyColdCode(G0, Prof, Opts.Theta, Opts.ColdCutoffCap);
    if (!Cold)
      return Cold.status();
    R.Cold = std::move(Cold.get());
  }

  // Section 6.2: unswitch cold jump tables.
  std::vector<uint8_t> Candidate = R.Cold.IsCold;
  Expected<UnswitchStats> US =
      unswitchJumpTables(Prog, Candidate, Opts.Unswitch);
  if (!US)
    return US.status();
  R.Unswitch = US.get();

  Cfg G(Prog);

  // Remaining candidacy filters.
  for (unsigned Id = 0; Id != G.numBlocks(); ++Id) {
    if (!Candidate[Id])
      continue;
    if (G.functionCallsSetjmp(G.functionOf(Id))) {
      Candidate[Id] = 0;
      continue;
    }
    if (G.hasIndirectCall(Id)) {
      Candidate[Id] = 0;
      continue;
    }
  }
  // A computed jump with unknown targets poisons its whole function (the
  // original quadratic form, deliberately).
  for (unsigned Id = 0; Id != G.numBlocks(); ++Id) {
    const BasicBlock &B = G.block(Id);
    if (B.Insts.back().Op == Opcode::Jmp && !B.Switch) {
      unsigned F = G.functionOf(Id);
      for (unsigned J = 0; J != G.numBlocks(); ++J)
        if (G.functionOf(J) == F)
          Candidate[J] = 0;
    }
  }

  // Section 4: regions.
  Expected<Partition> PartOr = formRegions(G, Candidate, Opts, &R.Regions);
  if (!PartOr)
    return PartOr.status();
  Partition Part = std::move(PartOr.get());

  if (Part.Regions.empty()) {
    R.Identity = true;
    Expected<Image> Img = layoutProgramOrError(Prog);
    if (!Img)
      return Img.status();
    R.SP.Img = std::move(Img.get());
    R.SP.Opts = Opts;
    R.SP.ProfileBlockCount = static_cast<uint32_t>(Prof.BlockCounts.size());
    R.SP.Footprint.NeverCompressedWords =
        static_cast<uint32_t>(Prog.instructionCount());
    R.SP.Footprint.OriginalCodeBytes = OriginalCodeBytes;
    return R;
  }

  // Section 6.1: buffer safety.
  std::vector<uint8_t> Safe = analyzeBufferSafe(G, Part, &R.BufferSafe);

  // Section 2: rewrite.
  Expected<SquashedProgram> SPOr = rewriteProgram(Prog, G, Part, Safe, Opts);
  if (!SPOr)
    return SPOr.status();
  R.SP = std::move(SPOr.get());
  R.SP.Footprint.OriginalCodeBytes = OriginalCodeBytes;
  R.SP.ProfileBlockCount = static_cast<uint32_t>(Prof.BlockCounts.size());
  return R;
}

/// Squashes through both pipelines and compares everything a consumer of
/// the image could observe.
void expectPipelinesAgree(const Program &Prog, const Profile &Prof,
                          const Options &Opts, const std::string &Tag) {
  SquashResult Ref = referenceSquash(Prog, Prof, Opts).take();
  SquashResult New = squashProgram(Prog, Prof, Opts).take();

  ASSERT_EQ(Ref.Identity, New.Identity) << Tag;
  EXPECT_EQ(Ref.SP.Img.Base, New.SP.Img.Base) << Tag;
  ASSERT_EQ(Ref.SP.Img.Bytes, New.SP.Img.Bytes)
      << Tag << ": pass-manager image diverged from the monolithic driver";
  EXPECT_EQ(Ref.SP.Layout.BlobBytes, New.SP.Layout.BlobBytes) << Tag;
  EXPECT_EQ(Ref.SP.Footprint.totalCodeBytes(),
            New.SP.Footprint.totalCodeBytes())
      << Tag;
  EXPECT_EQ(Ref.Cold.FrequencyCutoff, New.Cold.FrequencyCutoff) << Tag;
  EXPECT_EQ(Ref.Regions.PackedRegions, New.Regions.PackedRegions) << Tag;
  EXPECT_EQ(Ref.Unswitch.Unswitched, New.Unswitch.Unswitched) << Tag;
}

class PipelineReference : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(PipelineReference, ByteIdenticalOnRandomPrograms) {
  const uint64_t Seed = static_cast<uint64_t>(GetParam()) * 2477 + 13;
  const std::string SeedTag = "seed " + std::to_string(Seed);

  Program Prog = randomProgram(Seed);
  compactProgram(Prog).take();
  Image Compacted = layoutProgram(Prog);

  Profile Prof;
  {
    Machine::Config PC;
    PC.MaxInstructions = 20'000'000;
    PC.CollectBlockProfile = true;
    Machine MP(Compacted, PC);
    ASSERT_EQ(MP.run().Status, RunStatus::Halted) << SeedTag;
    Prof = MP.takeProfile();
  }

  // The differential suite's configuration matrix: maximum candidate
  // coverage, small buffer bound (multiple regions), MTF on odd seeds —
  // plus the per-stage ablation toggles and their DisabledPasses twins.
  Options Common;
  Common.Theta = 1.0;
  Common.BufferBoundBytes = 256;
  Common.MoveToFront = (GetParam() % 2) == 1;
  expectPipelinesAgree(Prog, Prof, Common, SeedTag + " base");

  {
    Options O = Common;
    O.Unswitch = false;
    expectPipelinesAgree(Prog, Prof, O, SeedTag + " no-unswitch");
  }
  {
    Options O = Common;
    O.BufferSafeCalls = false;
    expectPipelinesAgree(Prog, Prof, O, SeedTag + " no-buffer-safe");
  }
  {
    Options O = Common;
    O.Theta = 0.0;
    expectPipelinesAgree(Prog, Prof, O, SeedTag + " theta-zero");
  }
  {
    Options O = Common;
    O.CacheSlots = 4;
    O.ReuseBufferedRegion = true;
    expectPipelinesAgree(Prog, Prof, O, SeedTag + " cache-4");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineReference, ::testing::Range(0, 64));

namespace {

class PipelineReferenceWorkloads : public ::testing::TestWithParam<int> {};

constexpr double WorkloadScale = 0.05;

workloads::Workload buildWorkload(int Index) {
  using namespace workloads;
  switch (Index) {
  case 0:
    return buildAdpcm(WorkloadScale);
  case 1:
    return buildEpic(WorkloadScale);
  case 2:
    return buildG721Dec(WorkloadScale);
  case 3:
    return buildG721Enc(WorkloadScale);
  case 4:
    return buildGsm(WorkloadScale);
  case 5:
    return buildJpegDec(WorkloadScale);
  case 6:
    return buildJpegEnc(WorkloadScale);
  case 7:
    return buildMpeg2Dec(WorkloadScale);
  case 8:
    return buildMpeg2Enc(WorkloadScale);
  case 9:
    return buildPgp(WorkloadScale);
  default:
    return buildRasta(WorkloadScale);
  }
}

const char *workloadName(int Index) {
  static const char *Names[] = {"adpcm",    "epic",     "g721_dec",
                                "g721_enc", "gsm",      "jpeg_dec",
                                "jpeg_enc", "mpeg2dec", "mpeg2enc",
                                "pgp",      "rasta"};
  return Names[Index];
}

} // namespace

TEST_P(PipelineReferenceWorkloads, ByteIdenticalOnWorkloads) {
  workloads::Workload W = buildWorkload(GetParam());
  compactProgram(W.Prog).take();
  Image Baseline = layoutProgram(W.Prog);
  Profile Prof = profileImage(Baseline, W.ProfilingInput).take();

  Options Opts;
  Opts.Theta = 1e-2;
  expectPipelinesAgree(W.Prog, Prof, Opts, W.Name);

  Options Mtf = Opts;
  Mtf.MoveToFront = true;
  Mtf.BufferBoundBytes = 256;
  expectPipelinesAgree(W.Prog, Prof, Mtf, W.Name + " mtf256");
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PipelineReferenceWorkloads,
                         ::testing::Range(0, 11),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return workloadName(Info.param);
                         });
