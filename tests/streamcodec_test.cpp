//===- tests/streamcodec_test.cpp - Splitting-streams codec tests ---------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "huff/StreamCodec.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace squash;
using namespace vea;

/// Generates a random legal instruction.
static MInst randomInst(Rng &R) {
  Opcode Op;
  do {
    Op = static_cast<Opcode>(1 + R.nextBelow(NumOpcodes - 1));
  } while (!opcodeInfo(Op).IsLegal && Op != Opcode::Bsrx);
  const FormatLayout &Layout = formatLayout(formatOf(Op));
  MInst I(Op);
  for (unsigned S = 1; S != Layout.Count; ++S) {
    uint32_t Max = (1u << Layout.Slots[S].Width) - 1;
    // Skew values so Huffman has something to exploit.
    uint32_t V = R.chance(3, 4) ? R.nextBelow(8) : (R.next() & Max);
    I.set(Layout.Slots[S].Kind, V & Max);
  }
  return I;
}

static std::vector<std::vector<MInst>> randomCorpus(Rng &R, size_t Regions,
                                                    size_t MaxLen) {
  std::vector<std::vector<MInst>> Corpus(Regions);
  for (auto &Region : Corpus) {
    size_t Len = 1 + R.nextBelow(MaxLen);
    for (size_t I = 0; I != Len; ++I)
      Region.push_back(randomInst(R));
  }
  return Corpus;
}

/// Parameter bits: 1 = move-to-front, 2 = delta displacements.
class StreamCodecRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(StreamCodecRoundTrip, RegionsDecodeExactly) {
  Rng R(1001 + GetParam() * 7);
  auto Corpus = randomCorpus(R, 20, 200);
  StreamCodecs::Options Opts;
  Opts.MoveToFront = (GetParam() & 1) != 0;
  Opts.DeltaDisplacements = (GetParam() & 2) != 0;
  StreamCodecs SC = StreamCodecs::build(Corpus, Opts);

  BitWriter W;
  std::vector<size_t> Offsets;
  for (auto &Region : Corpus) {
    Offsets.push_back(W.bitSize());
    SC.encodeRegion(Region, W);
  }
  std::vector<uint8_t> Blob = W.takeBytes();

  // Decode regions in a scrambled order: regions must be independently
  // decodable (the decompressor jumps straight to an offset).
  std::vector<size_t> Order(Corpus.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  for (size_t I = Order.size(); I > 1; --I)
    std::swap(Order[I - 1], Order[R.nextBelow(I)]);

  for (size_t Idx : Order) {
    BitReader Rd(Blob);
    Rd.seekBit(Offsets[Idx]);
    StreamCodecs::RegionDecoder Dec(SC, Rd);
    MInst I;
    size_t Count = 0;
    while (Dec.next(I)) {
      ASSERT_LT(Count, Corpus[Idx].size());
      const MInst &Want = Corpus[Idx][Count];
      ASSERT_EQ(I.Op, Want.Op);
      ASSERT_EQ(encode(I), encode(Want));
      ++Count;
    }
    EXPECT_TRUE(Dec.ok());
    EXPECT_EQ(Count, Corpus[Idx].size());
  }
}

INSTANTIATE_TEST_SUITE_P(PlainMtfDelta, StreamCodecRoundTrip,
                         ::testing::Range(0, 4));

TEST(StreamCodec, EmptyRegionIsJustSentinel) {
  std::vector<std::vector<MInst>> Corpus = {{}};
  StreamCodecs SC = StreamCodecs::build(Corpus);
  BitWriter W;
  SC.encodeRegion({}, W);
  BitReader Rd(W.bytes());
  StreamCodecs::RegionDecoder Dec(SC, Rd);
  MInst I;
  EXPECT_FALSE(Dec.next(I));
  EXPECT_TRUE(Dec.ok());
}

TEST(StreamCodec, CorruptStreamReportsNotOk) {
  Rng R(5);
  auto Corpus = randomCorpus(R, 4, 60);
  StreamCodecs SC = StreamCodecs::build(Corpus, StreamCodecs::Options());
  BitWriter W;
  SC.encodeRegion(Corpus[0], W);
  std::vector<uint8_t> Blob = W.takeBytes();
  // Truncate mid-region: decode must stop with ok() == false (or hit the
  // sentinel early, which the next() loop surfaces as a short region).
  Blob.resize(Blob.size() / 2);
  BitReader Rd(Blob);
  StreamCodecs::RegionDecoder Dec(SC, Rd);
  MInst I;
  size_t Count = 0;
  while (Dec.next(I))
    ++Count;
  EXPECT_TRUE(!Dec.ok() || Count < Corpus[0].size());
}

TEST(StreamCodec, StatsCoverEveryStream) {
  Rng R(6);
  auto Corpus = randomCorpus(R, 8, 100);
  StreamCodecs SC = StreamCodecs::build(Corpus, StreamCodecs::Options());
  const auto &Stats = SC.stats();
  ASSERT_EQ(Stats.size(), NumFieldKinds);
  uint64_t OpcodeSymbols = 0;
  size_t TotalInsts = 0;
  for (auto &Region : Corpus)
    TotalInsts += Region.size();
  for (const auto &St : Stats)
    if (St.Kind == FieldKind::Opcode)
      OpcodeSymbols = St.Symbols;
  // Opcode stream = every instruction + one sentinel per region.
  EXPECT_EQ(OpcodeSymbols, TotalInsts + Corpus.size());
  EXPECT_GT(SC.tableBits(), 0u);
}

TEST(StreamCodec, CompressionBeatsRawForSkewedInput) {
  // A corpus of highly repetitive instructions must compress well below
  // 32 bits per instruction (the paper reports ~66% overall including
  // tables; payload alone is much smaller).
  std::vector<MInst> Region;
  for (int I = 0; I != 2000; ++I)
    Region.push_back(makeRRR(Opcode::Add, 1, 2, 3));
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  BitWriter W;
  SC.encodeRegion(Region, W);
  EXPECT_LT(W.bitSize(), 2000u * 8); // At least 4x over raw encoding.
}

TEST(StreamCodec, SerializedTablesMatchAccounting) {
  Rng R(9);
  auto Corpus = randomCorpus(R, 6, 80);
  StreamCodecs SC = StreamCodecs::build(Corpus, StreamCodecs::Options());
  BitWriter W;
  SC.serializeTables(W);
  EXPECT_EQ(W.bitSize(), SC.tableBits());
}
