//===- tests/streamcodec_test.cpp - Splitting-streams codec tests ---------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "huff/StreamCodec.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace squash;
using namespace vea;

/// Generates a random legal instruction.
static MInst randomInst(Rng &R) {
  Opcode Op;
  do {
    Op = static_cast<Opcode>(1 + R.nextBelow(NumOpcodes - 1));
  } while (!opcodeInfo(Op).IsLegal && Op != Opcode::Bsrx);
  const FormatLayout &Layout = formatLayout(formatOf(Op));
  MInst I(Op);
  for (unsigned S = 1; S != Layout.Count; ++S) {
    uint32_t Max = (1u << Layout.Slots[S].Width) - 1;
    // Skew values so Huffman has something to exploit.
    uint32_t V = R.chance(3, 4) ? R.nextBelow(8) : (R.next() & Max);
    I.set(Layout.Slots[S].Kind, V & Max);
  }
  return I;
}

static std::vector<std::vector<MInst>> randomCorpus(Rng &R, size_t Regions,
                                                    size_t MaxLen) {
  std::vector<std::vector<MInst>> Corpus(Regions);
  for (auto &Region : Corpus) {
    size_t Len = 1 + R.nextBelow(MaxLen);
    for (size_t I = 0; I != Len; ++I)
      Region.push_back(randomInst(R));
  }
  return Corpus;
}

/// Parameter bits: 1 = move-to-front, 2 = delta displacements.
class StreamCodecRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(StreamCodecRoundTrip, RegionsDecodeExactly) {
  Rng R(1001 + GetParam() * 7);
  auto Corpus = randomCorpus(R, 20, 200);
  StreamCodecs::Options Opts;
  Opts.MoveToFront = (GetParam() & 1) != 0;
  Opts.DeltaDisplacements = (GetParam() & 2) != 0;
  StreamCodecs SC = StreamCodecs::build(Corpus, Opts);

  BitWriter W;
  std::vector<size_t> Offsets;
  for (auto &Region : Corpus) {
    Offsets.push_back(W.bitSize());
    ASSERT_TRUE(SC.encodeRegion(Region, W).ok());
  }
  std::vector<uint8_t> Blob = W.takeBytes();

  // Decode regions in a scrambled order: regions must be independently
  // decodable (the decompressor jumps straight to an offset).
  std::vector<size_t> Order(Corpus.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  for (size_t I = Order.size(); I > 1; --I)
    std::swap(Order[I - 1], Order[R.nextBelow(I)]);

  for (size_t Idx : Order) {
    BitReader Rd(Blob);
    Rd.seekBit(Offsets[Idx]);
    StreamCodecs::RegionDecoder Dec(SC, Rd);
    MInst I;
    size_t Count = 0;
    while (Dec.next(I)) {
      ASSERT_LT(Count, Corpus[Idx].size());
      const MInst &Want = Corpus[Idx][Count];
      ASSERT_EQ(I.Op, Want.Op);
      ASSERT_EQ(encode(I), encode(Want));
      ++Count;
    }
    EXPECT_TRUE(Dec.ok());
    EXPECT_EQ(Count, Corpus[Idx].size());
  }
}

INSTANTIATE_TEST_SUITE_P(PlainMtfDelta, StreamCodecRoundTrip,
                         ::testing::Range(0, 4));

TEST(StreamCodec, EmptyRegionIsJustSentinel) {
  std::vector<std::vector<MInst>> Corpus = {{}};
  StreamCodecs SC = StreamCodecs::build(Corpus);
  BitWriter W;
  ASSERT_TRUE(SC.encodeRegion({}, W).ok());
  BitReader Rd(W.bytes());
  StreamCodecs::RegionDecoder Dec(SC, Rd);
  MInst I;
  EXPECT_FALSE(Dec.next(I));
  EXPECT_TRUE(Dec.ok());
}

TEST(StreamCodec, CorruptStreamReportsNotOk) {
  Rng R(5);
  auto Corpus = randomCorpus(R, 4, 60);
  StreamCodecs SC = StreamCodecs::build(Corpus, StreamCodecs::Options());
  BitWriter W;
  ASSERT_TRUE(SC.encodeRegion(Corpus[0], W).ok());
  std::vector<uint8_t> Blob = W.takeBytes();
  // Truncate mid-region: decode must stop with ok() == false (or hit the
  // sentinel early, which the next() loop surfaces as a short region).
  Blob.resize(Blob.size() / 2);
  BitReader Rd(Blob);
  StreamCodecs::RegionDecoder Dec(SC, Rd);
  MInst I;
  size_t Count = 0;
  while (Dec.next(I))
    ++Count;
  EXPECT_TRUE(!Dec.ok() || Count < Corpus[0].size());
}

TEST(StreamCodec, StatsCoverEveryStream) {
  Rng R(6);
  auto Corpus = randomCorpus(R, 8, 100);
  StreamCodecs SC = StreamCodecs::build(Corpus, StreamCodecs::Options());
  const auto &Stats = SC.stats();
  ASSERT_EQ(Stats.size(), NumFieldKinds);
  uint64_t OpcodeSymbols = 0;
  size_t TotalInsts = 0;
  for (auto &Region : Corpus)
    TotalInsts += Region.size();
  for (const auto &St : Stats)
    if (St.Kind == FieldKind::Opcode)
      OpcodeSymbols = St.Symbols;
  // Opcode stream = every instruction + one sentinel per region.
  EXPECT_EQ(OpcodeSymbols, TotalInsts + Corpus.size());
  EXPECT_GT(SC.tableBits(), 0u);
}

TEST(StreamCodec, CompressionBeatsRawForSkewedInput) {
  // A corpus of highly repetitive instructions must compress well below
  // 32 bits per instruction (the paper reports ~66% overall including
  // tables; payload alone is much smaller).
  std::vector<MInst> Region;
  for (int I = 0; I != 2000; ++I)
    Region.push_back(makeRRR(Opcode::Add, 1, 2, 3));
  StreamCodecs SC = StreamCodecs::build({Region}, StreamCodecs::Options());
  BitWriter W;
  ASSERT_TRUE(SC.encodeRegion(Region, W).ok());
  EXPECT_LT(W.bitSize(), 2000u * 8); // At least 4x over raw encoding.
}

TEST(StreamCodec, SerializedTablesMatchAccounting) {
  Rng R(9);
  auto Corpus = randomCorpus(R, 6, 80);
  StreamCodecs SC = StreamCodecs::build(Corpus, StreamCodecs::Options());
  BitWriter W;
  SC.serializeTables(W);
  EXPECT_EQ(W.bitSize(), SC.tableBits());
}

//===----------------------------------------------------------------------===//
// Property tests: degenerate alphabets, empty streams, maximum-length
// canonical codes, and field values at representation boundaries.
//===----------------------------------------------------------------------===//

TEST(StreamCodec, ManyEmptyRegionsRemainIndependent) {
  // A corpus that is nothing but empty regions: every region is one
  // sentinel codeword, each independently decodable at its own offset.
  std::vector<std::vector<MInst>> Corpus(5);
  StreamCodecs SC = StreamCodecs::build(Corpus);
  BitWriter W;
  std::vector<size_t> Offsets;
  for (const auto &Region : Corpus) {
    Offsets.push_back(W.bitSize());
    ASSERT_TRUE(SC.encodeRegion(Region, W).ok());
  }
  std::vector<uint8_t> Blob = W.takeBytes();
  for (size_t Off : Offsets) {
    BitReader Rd(Blob);
    Rd.seekBit(Off);
    StreamCodecs::RegionDecoder Dec(SC, Rd);
    MInst I;
    EXPECT_FALSE(Dec.next(I));
    EXPECT_TRUE(Dec.ok());
  }
}

TEST(StreamCodec, UnusedStreamsStayEmpty) {
  // A corpus of pure three-register operates never touches the
  // displacement, literal, or system-call streams; their codes must stay
  // empty, cost no table bits beyond their empty representation, and the
  // round trip must still be exact.
  std::vector<MInst> Region;
  for (int I = 0; I != 50; ++I)
    Region.push_back(makeRRR(Opcode::Xor, I % 4, (I + 1) % 4, 3));
  StreamCodecs SC = StreamCodecs::build({Region});
  for (const auto &St : SC.stats()) {
    if (St.Kind == FieldKind::Disp16 || St.Kind == FieldKind::Disp21 ||
        St.Kind == FieldKind::Lit8 || St.Kind == FieldKind::SFunc26) {
      EXPECT_EQ(St.Symbols, 0u) << fieldKindName(St.Kind);
      EXPECT_EQ(St.PayloadBits, 0u) << fieldKindName(St.Kind);
    }
  }
  BitWriter W;
  ASSERT_TRUE(SC.encodeRegion(Region, W).ok());
  BitReader Rd(W.bytes());
  StreamCodecs::RegionDecoder Dec(SC, Rd);
  MInst I;
  size_t Count = 0;
  while (Dec.next(I)) {
    ASSERT_EQ(encode(I), encode(Region[Count]));
    ++Count;
  }
  EXPECT_TRUE(Dec.ok());
  EXPECT_EQ(Count, Region.size());
}

TEST(StreamCodec, SingleSymbolAlphabetsUseOneBit) {
  // One identical instruction repeated: every stream collapses to a
  // single-symbol alphabet, which canonical coding must represent with a
  // 1-bit code (not zero bits — the decoder needs something to consume).
  std::vector<MInst> Region(64, makeRRR(Opcode::Add, 7, 7, 7));
  StreamCodecs SC = StreamCodecs::build({Region});
  BitWriter W;
  ASSERT_TRUE(SC.encodeRegion(Region, W).ok());
  // Opcode stream: 2 symbols (Add + sentinel). Register streams: 1 symbol
  // each. Payload is a handful of bits per instruction, far below raw.
  EXPECT_LT(W.bitSize(), Region.size() * 8);
  BitReader Rd(W.bytes());
  StreamCodecs::RegionDecoder Dec(SC, Rd);
  MInst I;
  size_t Count = 0;
  while (Dec.next(I)) {
    ASSERT_EQ(encode(I), encode(Region[0]));
    ++Count;
  }
  EXPECT_TRUE(Dec.ok());
  EXPECT_EQ(Count, Region.size());
}

TEST(CanonicalCodeProperty, SingleSymbolGetsOneBitCode) {
  CanonicalCode C = CanonicalCode::build({{42, 1000}});
  EXPECT_EQ(C.numSymbols(), 1u);
  EXPECT_EQ(C.maxLength(), 1u);
  EXPECT_EQ(C.lengthOf(42), 1u);
  BitWriter W;
  ASSERT_TRUE(C.encode(42, W));
  BitReader R(W.bytes());
  EXPECT_EQ(C.decode(R), 42u);
}

TEST(CanonicalCodeProperty, FibonacciFrequenciesReachMaximumDepth) {
  // Fibonacci frequencies are the worst case for Huffman depth: n symbols
  // yield a fully skewed tree of depth n - 1. This exercises the longest
  // codewords the canonical representation must handle.
  constexpr unsigned NumSymbols = 24;
  std::vector<std::pair<uint32_t, uint64_t>> Freqs;
  uint64_t A = 1, B = 1;
  for (unsigned S = 0; S != NumSymbols; ++S) {
    Freqs.push_back({S, A});
    uint64_t Next = A + B;
    A = B;
    B = Next;
  }
  CanonicalCode C = CanonicalCode::build(Freqs);
  EXPECT_EQ(C.maxLength(), NumSymbols - 1);

  // Every symbol round-trips through its codeword.
  for (unsigned S = 0; S != NumSymbols; ++S) {
    BitWriter W;
    ASSERT_TRUE(C.encode(S, W));
    BitReader R(W.bytes());
    EXPECT_EQ(C.decode(R), S);
  }

  // The representation survives serialization at maximum depth.
  BitWriter W;
  C.serialize(W, 32);
  BitReader R(W.bytes());
  CanonicalCode C2 = CanonicalCode::deserialize(R, 32);
  ASSERT_FALSE(C2.empty());
  EXPECT_EQ(C2.lengthCounts(), C.lengthCounts());
  EXPECT_EQ(C2.values(), C.values());

  // Kraft equality: an optimal (complete) code's lengths sum to exactly 1.
  double Kraft = 0.0;
  for (unsigned S = 0; S != NumSymbols; ++S)
    Kraft += std::pow(0.5, static_cast<double>(C.lengthOf(S)));
  EXPECT_NEAR(Kraft, 1.0, 1e-12);
}

namespace {

/// One instruction per format with every field at its minimum, and one with
/// every field at its maximum representable value.
std::vector<MInst> boundaryInstructions() {
  std::vector<MInst> Out;
  for (unsigned O = 1; O != NumOpcodes; ++O) {
    Opcode Op = static_cast<Opcode>(O);
    if (!opcodeInfo(Op).IsLegal && Op != Opcode::Bsrx)
      continue;
    const FormatLayout &Layout = formatLayout(formatOf(Op));
    MInst Lo(Op), Hi(Op);
    for (unsigned S = 1; S != Layout.Count; ++S) {
      Lo.set(Layout.Slots[S].Kind, 0);
      Hi.set(Layout.Slots[S].Kind, (1u << Layout.Slots[S].Width) - 1);
    }
    Out.push_back(Lo);
    Out.push_back(Hi);
  }
  return Out;
}

} // namespace

/// Parameter bits: 1 = move-to-front, 2 = delta displacements.
class StreamCodecBoundary : public ::testing::TestWithParam<int> {};

TEST_P(StreamCodecBoundary, AllFieldsAtExtremesRoundTrip) {
  // Every legal opcode with every field at 0 and at its width's maximum:
  // all-ones displacements (-1 when signed), register 31, literal 255, the
  // widest system-call number. Both transform options must reproduce the
  // words exactly — delta coding in particular must wrap cleanly between
  // a maximum value and zero.
  std::vector<MInst> Region = boundaryInstructions();
  // Interleave a second copy in reverse so delta transitions cover
  // max->0, 0->max, and equal-value runs.
  std::vector<MInst> Reversed(Region.rbegin(), Region.rend());
  Region.insert(Region.end(), Reversed.begin(), Reversed.end());

  StreamCodecs::Options Opts;
  Opts.MoveToFront = (GetParam() & 1) != 0;
  Opts.DeltaDisplacements = (GetParam() & 2) != 0;
  StreamCodecs SC = StreamCodecs::build({Region}, Opts);

  BitWriter W;
  ASSERT_TRUE(SC.encodeRegion(Region, W).ok());
  BitReader Rd(W.bytes());
  StreamCodecs::RegionDecoder Dec(SC, Rd);
  MInst I;
  size_t Count = 0;
  while (Dec.next(I)) {
    ASSERT_LT(Count, Region.size());
    ASSERT_EQ(encode(I), encode(Region[Count]))
        << "instruction " << Count << " opcode "
        << static_cast<unsigned>(Region[Count].Op);
    ++Count;
  }
  EXPECT_TRUE(Dec.ok());
  EXPECT_EQ(Count, Region.size());
}

TEST_P(StreamCodecBoundary, EncodingUnknownSymbolFailsCleanly) {
  // Encoding an instruction whose field value was never in the corpus must
  // fail with a recoverable status, not corrupt the stream.
  std::vector<MInst> Region(4, makeRRR(Opcode::Add, 1, 2, 3));
  StreamCodecs::Options Opts;
  Opts.MoveToFront = (GetParam() & 1) != 0;
  Opts.DeltaDisplacements = (GetParam() & 2) != 0;
  StreamCodecs SC = StreamCodecs::build({Region}, Opts);
  BitWriter W;
  Status St = SC.encodeRegion({makeRRR(Opcode::Add, 30, 2, 3)}, W);
  EXPECT_FALSE(St.ok());
  EXPECT_EQ(St.code(), StatusCode::EncodingError);
}

INSTANTIATE_TEST_SUITE_P(PlainMtfDelta, StreamCodecBoundary,
                         ::testing::Range(0, 4));
