//===- tests/inspect_test.cpp - Inspector and extension-option tests ------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "link/Layout.h"
#include "ir/Builder.h"
#include "squash/Driver.h"
#include "squash/Inspect.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace vea;
using namespace squash;

namespace {

/// Hot main + one cold helper; returns the squash result at θ = 0.
SquashResult squashedFixture(const Options &Opts) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    F.li(16, 1);
    F.call("colder");
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("colder");
    for (int I = 0; I != 20; ++I)
      F.addi(1, 1, 3);
    F.blt(1, "wrap");
    F.addi(0, 1, 1);
    F.ret();
    F.label("wrap");
    F.li(0, 0);
    F.ret();
  }
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {0}).take();
  return squashProgram(Prog, Prof, Opts).take();
}

} // namespace

TEST(Inspect, SegmentMapNamesEverySegment) {
  SquashResult SR = squashedFixture(Options());
  ASSERT_FALSE(SR.Identity);
  std::string Map = formatSegmentMap(SR.SP);
  for (const char *Part :
       {"never-compressed code", "entry stubs", "decompressor",
        "function offset table", "restore-stub area", "runtime buffer",
        "compressed blob", "total code footprint"})
    EXPECT_NE(Map.find(Part), std::string::npos) << Map;
}

TEST(Inspect, EntryStubListingDecodesTags) {
  SquashResult SR = squashedFixture(Options());
  std::string Stubs = formatEntryStubs(SR.SP);
  EXPECT_NE(Stubs.find("colder"), std::string::npos) << Stubs;
  EXPECT_NE(Stubs.find("region 0"), std::string::npos) << Stubs;
}

TEST(Inspect, RegionDisassemblyMatchesStoredCount) {
  SquashResult SR = squashedFixture(Options());
  ASSERT_GE(SR.SP.Regions.size(), 1u);
  std::string Text = formatRegion(SR.SP, 0);
  // One "[buf+" row per stored instruction.
  size_t Rows = 0;
  for (size_t Pos = Text.find("[buf+"); Pos != std::string::npos;
       Pos = Text.find("[buf+", Pos + 1))
    ++Rows;
  EXPECT_EQ(Rows, SR.SP.Regions[0].StoredInstructions);
  EXPECT_EQ(Text.find("<corrupt"), std::string::npos);
  EXPECT_NE(formatRegion(SR.SP, 999).find("no such region"),
            std::string::npos);
}

TEST(Inspect, RegionTableRowsMatchRegions) {
  SquashResult SR = squashedFixture(Options());
  std::string Table = formatRegionTable(SR.SP);
  size_t Lines = std::count(Table.begin(), Table.end(), '\n');
  EXPECT_EQ(Lines, SR.SP.Regions.size() + 1); // header + one row each
}

TEST(Extensions, DeltaDisplacementsRoundTrip) {
  Options Opts;
  Opts.DeltaDisplacements = true;
  SquashResult SR = squashedFixture(Opts);
  ASSERT_FALSE(SR.Identity);
  // The inspector decodes through the same path the runtime uses, so a
  // clean disassembly is a full decode round trip.
  std::string Text = formatRegion(SR.SP, 0);
  EXPECT_EQ(Text.find("<corrupt"), std::string::npos);
  // And the program still runs correctly.
  SquashedRun Run = runSquashed(SR.SP, {1});
  EXPECT_EQ(Run.Run.Status, RunStatus::Halted);
}

TEST(Extensions, WholeFunctionRegionsStrawman) {
  Options Whole;
  Whole.WholeFunctionRegions = true;
  SquashResult WholeSR = squashedFixture(Whole);
  SquashResult SubSR = squashedFixture(Options());
  ASSERT_FALSE(WholeSR.Identity);
  // Function-grain: exactly one region (the cold function), whose blocks
  // are all of colder's blocks.
  EXPECT_EQ(WholeSR.Regions.PackedRegions, 1u);
  // Behaviour is still preserved.
  SquashedRun Run = runSquashed(WholeSR.SP, {1});
  EXPECT_EQ(Run.Run.Status, RunStatus::Halted);
  SquashedRun Run2 = runSquashed(SubSR.SP, {1});
  EXPECT_EQ(Run.Run.ExitCode, Run2.Run.ExitCode);
}

TEST(Extensions, WholeFunctionRejectsMixedFunctions) {
  // A function with one hot block cannot be compressed at function grain.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(16, 5);
    F.call("mixed");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("mixed");
    F.addi(0, 16, 1); // Hot entry (executed every run).
    F.beq(16, "cold");
    F.ret();
    F.label("cold");
    for (int I = 0; I != 30; ++I)
      F.addi(1, 1, 1);
    F.ret();
  }
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {}).take();

  Options Whole;
  Whole.WholeFunctionRegions = true;
  SquashResult WholeSR = squashProgram(Prog, Prof, Whole).take();
  // Function grain finds nothing (mixed hot/cold function)...
  EXPECT_TRUE(WholeSR.Identity);
  // ...while sub-function regions compress the cold half (Section 4's
  // argument).
  SquashResult SubSR = squashProgram(Prog, Prof, Options()).take();
  EXPECT_FALSE(SubSR.Identity);
}
