//===- tests/pipeline_test.cpp - Pass-manager tests -----------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The pass-manager surface of squash/Pipeline.h: registration and ordering
// of the standard pipeline, CFG cache invalidation across Unswitch, prefix
// execution (runUntil), Options::DisabledPasses semantics (including their
// equivalence to the historical per-stage option toggles), the pre/post
// hooks, and the linear-time computed-jump poisoning filter against the
// quadratic reference it replaced.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "link/Layout.h"
#include "squash/Driver.h"
#include "squash/FaultInjector.h"
#include "squash/Pipeline.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;

namespace {

/// A program with hot and cold paths plus a cold jump table — enough
/// surface to drive every standard pass out of its trivial case.
Program squashableProgram() {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(9, 50);
    F.label("hot");
    F.li(16, 1);
    F.call("warm");
    F.subi(9, 9, 1);
    F.bne(9, "hot");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    F.call("switchy");
    F.call("cold");
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("warm");
    for (int I = 0; I != 12; ++I)
      F.addi(0, 16, 2);
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("switchy");
    F.andi(1, 16, 1);
    F.switchJump(1, 2, "jt", {"a", "b"});
    F.label("a");
    F.li(0, 1);
    F.ret();
    F.label("b");
    F.li(0, 2);
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("cold");
    for (int I = 0; I != 20; ++I)
      F.addi(1, 1, 1);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

Profile profileFor(Program &Prog) {
  Image Baseline = layoutProgram(Prog);
  return profileImage(Baseline, {0}).take();
}

/// Runs the standard pipeline over a fresh copy of \p Prog, returning the
/// result (and, via \p CtxOut, the final context observables).
SquashResult runStandard(const Program &Prog, const Profile &Prof,
                         const Options &Opts,
                         unsigned *CfgBuildsOut = nullptr) {
  Program Copy = Prog;
  SquashResult R;
  PipelineContext Ctx(Copy, Prof, Opts, R);
  PassManager PM;
  buildStandardPipeline(PM);
  Status St = PM.run(Ctx);
  EXPECT_TRUE(St.ok()) << St.toString();
  if (CfgBuildsOut)
    *CfgBuildsOut = Ctx.cfgBuilds();
  return R;
}

} // namespace

TEST(Pipeline, StandardPassOrderIsStable) {
  // The names are API: Options::DisabledPasses, --stop-after, and the
  // ablation bench all address passes by these strings.
  const std::vector<std::string> Expected = {
      "cold-code",           "unswitch",    "filter-setjmp-indirect",
      "filter-computed-jump", "regions",    "buffer-safe",
      "codec-select",         "layout",     "rewrite"};
  EXPECT_EQ(standardPassNames(), Expected);

  PassManager PM;
  buildStandardPipeline(PM);
  ASSERT_EQ(PM.size(), Expected.size());
  for (size_t I = 0; I != Expected.size(); ++I)
    EXPECT_EQ(PM.pass(I).name(), Expected[I]);
  EXPECT_TRUE(PM.hasPass("rewrite"));
  EXPECT_FALSE(PM.hasPass("no-such-pass"));
}

TEST(Pipeline, CfgBuiltExactlyTwice) {
  // The cache contract: one build feeds cold-code, Unswitch invalidates
  // after mutating the program, one rebuild serves every later pass.
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);
  Options Opts;
  Opts.Theta = 1.0;

  unsigned Builds = 0;
  SquashResult R = runStandard(Prog, Prof, Opts, &Builds);
  EXPECT_EQ(Builds, 2u);

  ASSERT_EQ(R.PassTrace.size(), 9u);
  for (const PassTraceEntry &E : R.PassTrace) {
    EXPECT_TRUE(E.Ok) << E.Name;
    EXPECT_FALSE(E.Disabled) << E.Name;
    EXPECT_GE(E.Seconds, 0.0) << E.Name;
  }
}

TEST(Pipeline, MatchesSquashProgramByteForByte) {
  // squashProgram is a thin wrapper over the same pipeline; a hand-built
  // manager must reproduce its image exactly.
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);
  Options Opts;
  Opts.Theta = 1.0;

  SquashResult Wrapped = squashProgram(Prog, Prof, Opts).take();
  SquashResult Manual = runStandard(Prog, Prof, Opts);
  EXPECT_EQ(Wrapped.Identity, Manual.Identity);
  EXPECT_EQ(Wrapped.SP.Img.Bytes, Manual.SP.Img.Bytes);
}

TEST(Pipeline, RunUntilStopsAfterNamedPass) {
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);
  Options Opts;
  Opts.Theta = 1.0;

  SquashResult R;
  PipelineContext Ctx(Prog, Prof, Opts, R);
  PassManager PM;
  buildStandardPipeline(PM);
  ASSERT_TRUE(PM.runUntil(Ctx, "regions").ok());

  // Five passes ran (through regions); the rewrite never did, so there is
  // no image yet — but the partition is populated for inspection.
  ASSERT_EQ(R.PassTrace.size(), 5u);
  EXPECT_EQ(R.PassTrace.back().Name, "regions");
  EXPECT_TRUE(R.SP.Img.Bytes.empty());
  EXPECT_FALSE(Ctx.Part.Regions.empty());
  EXPECT_EQ(Ctx.Part.RegionOf.size(), Ctx.cfg().numBlocks());
}

TEST(Pipeline, RunUntilUnknownPassIsInvalidArgument) {
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);
  Options Opts;
  SquashResult R;
  PipelineContext Ctx(Prog, Prof, Opts, R);
  PassManager PM;
  buildStandardPipeline(PM);

  Status St = PM.runUntil(Ctx, "no-such-pass");
  ASSERT_FALSE(St.ok());
  EXPECT_EQ(St.code(), StatusCode::InvalidArgument);
  EXPECT_TRUE(R.PassTrace.empty());
}

TEST(Pipeline, DisabledBufferSafeMatchesOptionToggle) {
  // The fallback (every function unsafe) is the same conservatism the
  // BufferSafeCalls=false option always meant; images must match exactly.
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);

  Options ViaOption;
  ViaOption.Theta = 1.0;
  ViaOption.BufferSafeCalls = false;
  SquashResult A = squashProgram(Prog, Prof, ViaOption).take();

  Options ViaDisable;
  ViaDisable.Theta = 1.0;
  ViaDisable.DisabledPasses = {"buffer-safe"};
  SquashResult B = squashProgram(Prog, Prof, ViaDisable).take();

  ASSERT_FALSE(B.Identity);
  EXPECT_EQ(A.SP.Img.Bytes, B.SP.Img.Bytes);
}

TEST(Pipeline, DisabledUnswitchMatchesOptionToggle) {
  // Disabling unswitch must not skip the stage outright — candidate switch
  // blocks still need the exclusion fallback, exactly Unswitch=false.
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);

  Options ViaOption;
  ViaOption.Theta = 1.0;
  ViaOption.Unswitch = false;
  SquashResult A = squashProgram(Prog, Prof, ViaOption).take();

  Options ViaDisable;
  ViaDisable.Theta = 1.0;
  ViaDisable.DisabledPasses = {"unswitch"};
  SquashResult B = squashProgram(Prog, Prof, ViaDisable).take();

  EXPECT_EQ(A.SP.Img.Bytes, B.SP.Img.Bytes);
  EXPECT_EQ(B.Unswitch.Unswitched, 0u);
  EXPECT_GE(B.Unswitch.BlocksExcluded, 1u);
}

TEST(Pipeline, DisabledRewriteYieldsRunnableIdentity) {
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);
  Options Opts;
  Opts.Theta = 1.0;
  Opts.DisabledPasses = {"rewrite"};

  SquashResult R = squashProgram(Prog, Prof, Opts).take();
  EXPECT_TRUE(R.Identity);
  ASSERT_EQ(R.PassTrace.size(), 9u);
  EXPECT_TRUE(R.PassTrace.back().Disabled);

  SquashedRun Run = runSquashed(R.SP, {0});
  EXPECT_EQ(Run.Run.Status, RunStatus::Halted);
}

TEST(Pipeline, UnknownDisabledPassIsError) {
  // A typo in an ablation config must fail loudly, not silently measure
  // the full pipeline.
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);
  Options Opts;
  Opts.DisabledPasses = {"buffersafe"}; // Missing the hyphen.

  Expected<SquashResult> R = squashProgram(Prog, Prof, Opts);
  ASSERT_FALSE(R);
  EXPECT_EQ(R.status().code(), StatusCode::InvalidArgument);
}

TEST(Pipeline, DisabledPassesMarkedInTrace) {
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);
  Options Opts;
  Opts.Theta = 1.0;
  Opts.DisabledPasses = {"buffer-safe"};

  SquashResult R = squashProgram(Prog, Prof, Opts).take();
  ASSERT_EQ(R.PassTrace.size(), 9u);
  for (const PassTraceEntry &E : R.PassTrace)
    EXPECT_EQ(E.Disabled, E.Name == "buffer-safe") << E.Name;

  // The trace renders one row per pass plus a header.
  std::string Table = formatPassTrace(R.PassTrace);
  EXPECT_NE(Table.find("buffer-safe"), std::string::npos);
  EXPECT_NE(Table.find("disabled"), std::string::npos);
}

TEST(Pipeline, HooksRunAroundEveryPass) {
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);
  Options Opts;
  Opts.Theta = 1.0;

  SquashResult R;
  PipelineContext Ctx(Prog, Prof, Opts, R);
  PassManager PM;
  buildStandardPipeline(PM);

  std::vector<std::string> PreNames, PostNames;
  PM.setPreHook([&](const Pass &P, PipelineContext &) {
    PreNames.push_back(P.name());
    return Status::success();
  });
  PM.setPostHook([&](const Pass &P, PipelineContext &) {
    PostNames.push_back(P.name());
    return Status::success();
  });

  ASSERT_TRUE(PM.run(Ctx).ok());
  EXPECT_EQ(PreNames, standardPassNames());
  EXPECT_EQ(PostNames, standardPassNames());
}

TEST(Pipeline, FailingPreHookAbortsBeforeThePass) {
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);
  Options Opts;
  Opts.Theta = 1.0;

  SquashResult R;
  PipelineContext Ctx(Prog, Prof, Opts, R);
  PassManager PM;
  buildStandardPipeline(PM);
  PM.setPreHook([&](const Pass &P, PipelineContext &) {
    if (std::string(P.name()) == "regions")
      return Status::error(StatusCode::InternalError, "injected");
    return Status::success();
  });

  Status St = PM.run(Ctx);
  ASSERT_FALSE(St.ok());
  EXPECT_NE(St.toString().find("regions"), std::string::npos);
  // The aborted pass never executed: the trace holds only the four
  // candidacy passes before it.
  ASSERT_EQ(R.PassTrace.size(), 4u);
  EXPECT_EQ(R.PassTrace.back().Name, "filter-computed-jump");
}

TEST(Pipeline, FaultInjectorAttachesViaPostHook) {
  // The uniform hook point is how the fault harness corrupts the image the
  // instant the rewrite produces it — no pass-specific plumbing.
  Program Prog = squashableProgram();
  Profile Prof = profileFor(Prog);
  Options Opts;
  Opts.Theta = 1.0;

  SquashResult R;
  PipelineContext Ctx(Prog, Prof, Opts, R);
  PassManager PM;
  buildStandardPipeline(PM);

  bool Injected = false;
  PM.setPostHook([&](const Pass &P, PipelineContext &C) {
    if (std::string(P.name()) == "rewrite" && !C.result().Identity) {
      FaultInjector FI(7);
      Injected = FI.inject(C.result().SP, FaultKind::BlobTruncate)
                     .has_value();
    }
    return Status::success();
  });

  ASSERT_TRUE(PM.run(Ctx).ok());
  ASSERT_TRUE(Injected);
  // The truncation is caught at attach, never executed.
  SquashedRun Run = runSquashed(R.SP, {0});
  EXPECT_EQ(Run.Run.Status, RunStatus::Fault);
}

//===----------------------------------------------------------------------===//
// Computed-jump poisoning (the O(blocks^2) -> O(blocks) regression test)
//===----------------------------------------------------------------------===//

namespace {

/// A program whose "poisoned" function ends one block with a raw indirect
/// jump (no SwitchInfo — targets unknown), alongside a clean cold
/// function. Never executed; only the candidacy passes see it.
Program computedJumpProgram() {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("poisoned");
    F.addi(1, 1, 1);
    F.br("mid");
    F.label("mid");
    for (int I = 0; I != 6; ++I)
      F.addi(2, 2, 1);
    Inst J;
    J.Op = Opcode::Jmp;
    J.Rb = 1; // Target register computed upstream: extent unknown.
    F.emit(J);
    F.label("tail");
    for (int I = 0; I != 6; ++I)
      F.addi(3, 3, 1);
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("clean");
    for (int I = 0; I != 10; ++I)
      F.addi(4, 4, 1);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

/// Candidate flags after the given prefix of the standard pipeline, plus
/// the context's CFG observables via out-params.
std::vector<uint8_t> candidatesAfter(const Program &Prog,
                                     const std::string &LastPass) {
  Program Copy = Prog;
  Profile Prof;
  Prof.BlockCounts.assign(Cfg(Copy).numBlocks(), 0);
  Options Opts;
  Opts.Theta = 1.0; // Every block a candidate before filtering.
  SquashResult R;
  PipelineContext Ctx(Copy, Prof, Opts, R);
  PassManager PM;
  buildStandardPipeline(PM);
  EXPECT_TRUE(PM.runUntil(Ctx, LastPass).ok());
  return Ctx.Candidate;
}

} // namespace

TEST(Pipeline, ComputedJumpPoisoningMatchesQuadraticReference) {
  // The filter pass marks poisoned functions in one scan and clears only
  // their block lists; the monolithic driver rescanned every block per
  // computed jump. Same poisoned set, lower complexity.
  Program Prog = computedJumpProgram();

  std::vector<uint8_t> Before =
      candidatesAfter(Prog, "filter-setjmp-indirect");
  std::vector<uint8_t> After = candidatesAfter(Prog, "filter-computed-jump");

  // Reference: the driver's original quadratic loop over the same CFG.
  Cfg G(Prog);
  ASSERT_EQ(Before.size(), G.numBlocks());
  std::vector<uint8_t> Ref = Before;
  for (unsigned Id = 0; Id != G.numBlocks(); ++Id) {
    const BasicBlock &B = G.block(Id);
    if (B.Insts.back().Op == Opcode::Jmp && !B.Switch) {
      unsigned F = G.functionOf(Id);
      for (unsigned J = 0; J != G.numBlocks(); ++J)
        if (G.functionOf(J) == F)
          Ref[J] = 0;
    }
  }
  EXPECT_EQ(After, Ref);

  // And the test is not vacuous: the filter actually cleared the poisoned
  // function's blocks and spared the clean one.
  EXPECT_NE(Before, After);
  bool AnySurvivor = false;
  for (uint8_t C : After)
    AnySurvivor |= (C != 0);
  EXPECT_TRUE(AnySurvivor);
}

TEST(Pipeline, SwitchJumpTablesAreNotPoisoned) {
  // A Jmp carrying SwitchInfo is a jump table with known targets — the
  // filter must leave its function alone.
  Program Prog = squashableProgram();
  std::vector<uint8_t> Before =
      candidatesAfter(Prog, "filter-setjmp-indirect");
  std::vector<uint8_t> After = candidatesAfter(Prog, "filter-computed-jump");
  EXPECT_EQ(Before, After);
}
