//===- tests/randomprog_test.cpp - Random-program equivalence property ----===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Property test: squash must preserve the behaviour of arbitrary programs,
// not just the curated workloads. The generator (tests/RandomProgramGen.h,
// shared with the differential suite) emits random—but always
// terminating—programs and the test runs each at θ = 1.0 (everything
// compressed, including the entry function: maximum runtime-machinery
// coverage) and at intermediate settings.
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"

#include "compact/Compact.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "squash/Driver.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;
using testgen::randomProgram;

namespace {

class RandomProgram : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(RandomProgram, SquashPreservesBehaviour) {
  Program Prog = randomProgram(static_cast<uint64_t>(GetParam()) * 977 + 5);
  compactProgram(Prog).take();
  Image Baseline = layoutProgram(Prog);

  Machine::Config MC;
  MC.MaxInstructions = 20'000'000;
  Machine M(Baseline, MC);
  RunResult Base = M.run();
  ASSERT_EQ(Base.Status, RunStatus::Halted) << Base.FaultMessage;

  Machine::Config PC;
  PC.MaxInstructions = 20'000'000;
  PC.CollectBlockProfile = true;
  Machine MP(Baseline, PC);
  ASSERT_EQ(MP.run().Status, RunStatus::Halted);
  Profile Prof = MP.takeProfile();

  for (double Theta : {0.0, 1e-2, 1.0}) {
    for (uint32_t K : {128u, 512u}) {
      Options Opts;
      Opts.Theta = Theta;
      Opts.BufferBoundBytes = K;
      Opts.MoveToFront = (GetParam() % 2) == 1;
      SquashResult SR = squashProgram(Prog, Prof, Opts).take();

      Machine M2(SR.SP.Img, MC);
      RuntimeSystem RT(SR.SP);
      if (!SR.Identity)
        ASSERT_TRUE(RT.attach(M2).ok());
      RunResult R = M2.run();
      ASSERT_EQ(R.Status, RunStatus::Halted)
          << "seed " << GetParam() << " theta " << Theta << " K " << K
          << ": " << R.FaultMessage;
      EXPECT_EQ(R.ExitCode, Base.ExitCode)
          << "seed " << GetParam() << " theta " << Theta << " K " << K;
      EXPECT_EQ(M2.output(), M.output())
          << "seed " << GetParam() << " theta " << Theta << " K " << K;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram, ::testing::Range(0, 24));
