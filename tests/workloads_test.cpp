//===- tests/workloads_test.cpp - Workload suite sanity tests -------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Structural and behavioural sanity of the 11-benchmark suite itself:
// programs verify, both inputs run to a clean halt deterministically,
// outputs are non-trivial, the profiling/timing inputs genuinely differ in
// coverage, and the generator is reproducible.
//
//===----------------------------------------------------------------------===//

#include "compact/Compact.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "squash/ColdCode.h"
#include "squash/Driver.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>

using namespace vea;
using namespace squash;

namespace {

constexpr double Scale = 0.06;

workloads::Workload buildByIndex(int Index, double S = Scale) {
  using namespace workloads;
  switch (Index) {
  case 0:
    return buildAdpcm(S);
  case 1:
    return buildEpic(S);
  case 2:
    return buildG721Dec(S);
  case 3:
    return buildG721Enc(S);
  case 4:
    return buildGsm(S);
  case 5:
    return buildJpegDec(S);
  case 6:
    return buildJpegEnc(S);
  case 7:
    return buildMpeg2Dec(S);
  case 8:
    return buildMpeg2Enc(S);
  case 9:
    return buildPgp(S);
  default:
    return buildRasta(S);
  }
}

class WorkloadSanity : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(WorkloadSanity, VerifiesAndRunsDeterministically) {
  workloads::Workload W = buildByIndex(GetParam());
  EXPECT_EQ(W.Prog.verify(), "");
  EXPECT_GT(W.Prog.instructionCount(), 1000u);
  EXPECT_FALSE(W.ProfilingInput.empty());
  EXPECT_GT(W.TimingInput.size(), W.ProfilingInput.size() / 4);

  Image Img = layoutProgram(W.Prog);
  auto RunOnce = [&](const std::vector<uint8_t> &Input,
                     std::vector<uint8_t> &Out) {
    Machine M(Img);
    M.setInput(Input);
    RunResult R = M.run();
    Out = M.output();
    return R;
  };

  std::vector<uint8_t> OutA, OutB, OutT;
  RunResult RA = RunOnce(W.ProfilingInput, OutA);
  RunResult RB = RunOnce(W.ProfilingInput, OutB);
  RunResult RT = RunOnce(W.TimingInput, OutT);
  ASSERT_EQ(RA.Status, RunStatus::Halted) << RA.FaultMessage;
  ASSERT_EQ(RT.Status, RunStatus::Halted) << RT.FaultMessage;
  EXPECT_EQ(OutA, OutB) << "non-deterministic workload";
  EXPECT_FALSE(OutA.empty());
  EXPECT_NE(OutA, OutT) << "timing input produced identical output";
  // Timing runs are the heavier ones.
  EXPECT_GT(RT.Instructions, RA.Instructions / 2);
}

TEST_P(WorkloadSanity, TimingInputExercisesProfileColdCode) {
  // The experiment design requires the timing input to execute code that
  // is cold at realistic thresholds (some benchmarks legitimately touch
  // no never-executed code, matching the paper's ~1.00 overhead at
  // theta = 0, so this asserts at a higher threshold).
  workloads::Workload W = buildByIndex(GetParam());
  compactProgram(W.Prog).take();
  Image Baseline = layoutProgram(W.Prog);
  Profile Prof = profileImage(Baseline, W.ProfilingInput).take();

  Options Opts;
  Opts.Theta = 0.1;
  SquashResult SR = squashProgram(W.Prog, Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);
  SquashedRun Run = runSquashed(SR.SP, W.TimingInput);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  EXPECT_GT(Run.Runtime.Decompressions + Run.Runtime.BufferedHits, 0u)
      << "timing input never reached compressed code";
}

TEST_P(WorkloadSanity, ColdFractionInPaperBallpark) {
  // Figure 4 anchor: at theta = 0 the cold fraction should be substantial
  // but not total (paper: ~73% mean; we accept a generous band per
  // benchmark).
  workloads::Workload W = buildByIndex(GetParam());
  compactProgram(W.Prog).take();
  Image Baseline = layoutProgram(W.Prog);
  Profile Prof = profileImage(Baseline, W.ProfilingInput).take();
  Cfg G(W.Prog);
  ColdCodeResult Cold = identifyColdCode(G, Prof, 0.0).take();
  EXPECT_GT(Cold.coldFraction(), 0.40);
  EXPECT_LT(Cold.coldFraction(), 0.92);
}

TEST_P(WorkloadSanity, GeneratorIsReproducible) {
  workloads::Workload A = buildByIndex(GetParam());
  workloads::Workload B = buildByIndex(GetParam());
  EXPECT_EQ(A.Prog.instructionCount(), B.Prog.instructionCount());
  EXPECT_EQ(A.ProfilingInput, B.ProfilingInput);
  EXPECT_EQ(A.TimingInput, B.TimingInput);
  // Same layout byte-for-byte.
  EXPECT_EQ(layoutProgram(A.Prog).Bytes, layoutProgram(B.Prog).Bytes);
}

TEST_P(WorkloadSanity, ScaleControlsInputSizes) {
  workloads::Workload Small = buildByIndex(GetParam(), 0.05);
  workloads::Workload Large = buildByIndex(GetParam(), 0.5);
  EXPECT_LT(Small.ProfilingInput.size(), Large.ProfilingInput.size());
  // Code size is scale-independent.
  EXPECT_EQ(Small.Prog.instructionCount(), Large.Prog.instructionCount());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSanity,
                         ::testing::Range(0, 11));

TEST(WorkloadSuite, AdpcmUlawModeEquivalentWhenForced) {
  // Mode 4 (the mu-law round trip) is selected by neither experiment
  // input — pure cold code. Force it and require original/squashed
  // equivalence at theta = 1.
  workloads::Workload W = workloads::buildAdpcm(Scale);
  compactProgram(W.Prog).take();
  Image Baseline = layoutProgram(W.Prog);
  Profile Prof = profileImage(Baseline, W.ProfilingInput).take();

  std::vector<uint8_t> Input = W.ProfilingInput;
  Input[4] = 4; // Rewrite the frame's mode word.
  Input[5] = Input[6] = Input[7] = 0;

  Machine M(Baseline);
  M.setInput(Input);
  RunResult R1 = M.run();
  ASSERT_EQ(R1.Status, RunStatus::Halted);

  Options Opts;
  Opts.Theta = 1.0;
  SquashResult SR = squashProgram(W.Prog, Prof, Opts).take();
  Machine M2(SR.SP.Img);
  RuntimeSystem RT(SR.SP);
  ASSERT_TRUE(RT.attach(M2).ok());
  M2.setInput(Input);
  RunResult R2 = M2.run();
  ASSERT_EQ(R2.Status, RunStatus::Halted) << R2.FaultMessage;
  EXPECT_EQ(R1.ExitCode, R2.ExitCode);
  EXPECT_EQ(M.output(), M2.output());
}

TEST(WorkloadSuite, BuildAllReturnsElevenDistinct) {
  auto All = workloads::buildAllWorkloads(Scale);
  ASSERT_EQ(All.size(), 11u);
  std::set<std::string> Names;
  for (auto &W : All)
    Names.insert(W.Name);
  EXPECT_EQ(Names.size(), 11u);
}
