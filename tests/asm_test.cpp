//===- tests/asm_test.cpp - Assembler tests -------------------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "link/Layout.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace vea;

TEST(Assembler, MinimalProgramRuns) {
  auto P = assembleProgram(R"(
    .program hello
    .entry main
    .func main
      li r1, 6
      li r2, 7
      mul r16, r1, r2
      sys halt
  )");
  ASSERT_TRUE(P.hasValue()) << P.message();
  Machine M(layoutProgram(P.get()));
  RunResult R = M.run();
  ASSERT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(R.ExitCode, 42u);
}

TEST(Assembler, LabelsAndBranches) {
  auto P = assembleProgram(R"(
    .program loops
    .entry main
    .func main
      li r1, 5
      li r2, 0
    top:
      add r2, r2, r1
      subi r1, r1, 1
      bne r1, top
      or r16, r2, r31
      sys halt
  )");
  ASSERT_TRUE(P.hasValue()) << P.message();
  Machine M(layoutProgram(P.get()));
  EXPECT_EQ(M.run().ExitCode, 15u); // 5+4+3+2+1
}

TEST(Assembler, CallsAndMemory) {
  auto P = assembleProgram(R"(
    .program callmem
    .entry main
    .func main
      la r16, globals
      bsr r26, bump
      bsr r26, bump
      la r1, globals
      ldw r16, 0(r1)
      sys halt
    .func bump
      ldw r1, 0(r16)
      addi r1, r1, 10
      stw r1, 0(r16)
      ret
    .data globals
      .word 2
  )");
  ASSERT_TRUE(P.hasValue()) << P.message();
  Machine M(layoutProgram(P.get()));
  EXPECT_EQ(M.run().ExitCode, 22u);
}

TEST(Assembler, SwitchDirective) {
  auto P = assembleProgram(R"(
    .program sw
    .entry main
    .func main
      li r1, 1
      .switch r1, r2, jt, case0, case1, case2
    case0:
      li r16, 10
      sys halt
    case1:
      li r16, 11
      sys halt
    case2:
      li r16, 12
      sys halt
  )");
  ASSERT_TRUE(P.hasValue()) << P.message();
  const Program &Prog = P.get();
  const BasicBlock &Entry = Prog.Functions[0].Blocks[0];
  ASSERT_TRUE(Entry.Switch.has_value());
  EXPECT_EQ(Entry.Switch->Targets.size(), 3u);
  Machine M(layoutProgram(P.get()));
  EXPECT_EQ(M.run().ExitCode, 11u);
}

TEST(Assembler, DataDirectives) {
  auto P = assembleProgram(R"(
    .program data
    .entry main
    .func main
      la r1, stuff
      ldb r16, 4(r1)
      sys halt
    .data stuff
      .word 257
      .byte 65, 66
      .ascii "hi"
      .zero 3
      .addr main
  )");
  ASSERT_TRUE(P.hasValue()) << P.message();
  Machine M(layoutProgram(P.get()));
  EXPECT_EQ(M.run().ExitCode, 65u);
}

TEST(Assembler, ReportsLineNumbers) {
  auto P = assembleProgram(".program x\n.func f\n  frobnicate r1\n");
  ASSERT_FALSE(P.hasValue());
  EXPECT_NE(P.message().find("line 3"), std::string::npos);
  EXPECT_NE(P.message().find("frobnicate"), std::string::npos);
}

TEST(Assembler, RejectsBadRegister) {
  auto P = assembleProgram(".program x\n.entry f\n.func f\n  add r99, r1, r2\n  sys halt\n");
  ASSERT_FALSE(P.hasValue());
  EXPECT_NE(P.message().find("r99"), std::string::npos);
}

TEST(Assembler, RejectsOutOfRangeLiteral) {
  auto P = assembleProgram(".program x\n.entry f\n.func f\n  addi r1, r1, 999\n  sys halt\n");
  ASSERT_FALSE(P.hasValue());
}

TEST(Assembler, VerifiesResult) {
  // Branch to a label that never appears fails verification.
  auto P = assembleProgram(R"(
    .program x
    .entry main
    .func main
      br nowhere
  )");
  ASSERT_FALSE(P.hasValue());
}

TEST(Assembler, PseudoLiLarge) {
  auto P = assembleProgram(R"(
    .program big
    .entry main
    .func main
      li r1, 305419896
      srli r16, r1, 24
      sys halt
  )");
  ASSERT_TRUE(P.hasValue()) << P.message();
  Machine M(layoutProgram(P.get()));
  EXPECT_EQ(M.run().ExitCode, 0x12u); // 0x12345678 >> 24
}
