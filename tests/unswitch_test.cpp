//===- tests/unswitch_test.cpp - Section 6.2 unswitching tests ------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "link/Layout.h"
#include "ir/Builder.h"
#include "sim/Machine.h"
#include "squash/Unswitch.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;

/// A program whose exit code is the case body selected by the first input
/// byte, via a jump table.
static Program switchProgram(bool SizeKnown) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.sys(SysFunc::GetChar);
  F.mov(1, 0);
  F.cmpulti(2, 1, 4);
  F.beq(2, "bad");
  F.switchJump(1, 2, "jt", {"c0", "c1", "c2", "c3"}, SizeKnown);
  F.label("c0");
  F.li(16, 40);
  F.halt();
  F.label("c1");
  F.li(16, 41);
  F.halt();
  F.label("c2");
  F.li(16, 42);
  F.halt();
  F.label("c3");
  F.li(16, 43);
  F.halt();
  F.label("bad");
  F.li(16, 99);
  F.halt();
  PB.setEntry("main");
  return PB.build();
}

static uint32_t runWithByte(const Program &P, uint8_t Byte) {
  Machine M(layoutProgram(P));
  M.setInput({Byte});
  RunResult R = M.run();
  EXPECT_EQ(R.Status, RunStatus::Halted);
  return R.ExitCode;
}

TEST(Unswitch, ChainPreservesSemantics) {
  Program P = switchProgram(true);
  Cfg G(P);
  std::vector<uint8_t> Candidate(G.numBlocks(), 1);
  UnswitchStats S = unswitchJumpTables(P, Candidate, true).take();
  EXPECT_EQ(S.Unswitched, 1u);
  EXPECT_EQ(S.TablesReclaimed, 1u);
  EXPECT_EQ(S.TableBytesReclaimed, 16u);
  EXPECT_EQ(P.verify(), "");
  // The jump table object is gone.
  EXPECT_EQ(P.findData("main.jt"), nullptr);
  // No Jmp remains in the entry block.
  for (const auto &I : P.Functions[0].Blocks[0].Insts)
    EXPECT_NE(I.Op, Opcode::Jmp);

  for (uint8_t B = 0; B != 4; ++B)
    EXPECT_EQ(runWithByte(P, B), 40u + B);
  EXPECT_EQ(runWithByte(P, 9), 99u);
}

TEST(Unswitch, MatchesOriginalBehaviour) {
  Program Orig = switchProgram(true);
  Program Transformed = switchProgram(true);
  Cfg G(Transformed);
  std::vector<uint8_t> Candidate(G.numBlocks(), 1);
  unswitchJumpTables(Transformed, Candidate, true).take();
  for (uint8_t B = 0; B != 5; ++B)
    EXPECT_EQ(runWithByte(Orig, B), runWithByte(Transformed, B));
}

TEST(Unswitch, UnknownExtentExcludesBlockAndTargets) {
  Program P = switchProgram(false);
  Cfg G(P);
  std::vector<uint8_t> Candidate(G.numBlocks(), 1);
  UnswitchStats S = unswitchJumpTables(P, Candidate, true).take();
  EXPECT_EQ(S.Unswitched, 0u);
  EXPECT_GE(S.BlocksExcluded, 5u); // Switch block + 4 targets.
  EXPECT_EQ(Candidate[G.idOf("main")], 0);
  EXPECT_EQ(Candidate[G.idOf("main.c0")], 0);
  EXPECT_EQ(Candidate[G.idOf("main.c3")], 0);
  EXPECT_EQ(Candidate[G.idOf("main.bad")], 1); // Not a target: untouched.
  // The table survives (it is still jumped through).
  EXPECT_NE(P.findData("main.jt"), nullptr);
}

TEST(Unswitch, DisabledExcludesInstead) {
  Program P = switchProgram(true);
  Cfg G(P);
  std::vector<uint8_t> Candidate(G.numBlocks(), 1);
  UnswitchStats S = unswitchJumpTables(P, Candidate, false).take();
  EXPECT_EQ(S.Unswitched, 0u);
  EXPECT_GE(S.BlocksExcluded, 5u);
}

TEST(Unswitch, NonCandidateSwitchUntouched) {
  Program P = switchProgram(true);
  Cfg G(P);
  std::vector<uint8_t> Candidate(G.numBlocks(), 0); // Hot switch.
  UnswitchStats S = unswitchJumpTables(P, Candidate, true).take();
  EXPECT_EQ(S.Unswitched, 0u);
  EXPECT_EQ(S.BlocksExcluded, 0u);
  EXPECT_NE(P.findData("main.jt"), nullptr);
}

TEST(Unswitch, SingleTargetBecomesPlainBranch) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.li(1, 0);
  F.switchJump(1, 2, "jt", {"only"});
  F.label("only");
  F.li(16, 7);
  F.halt();
  PB.setEntry("main");
  Program P = PB.build();
  Cfg G(P);
  std::vector<uint8_t> Candidate(G.numBlocks(), 1);
  unswitchJumpTables(P, Candidate, true).take();
  EXPECT_EQ(P.verify(), "");
  Machine M(layoutProgram(P));
  EXPECT_EQ(M.run().ExitCode, 7u);
}
