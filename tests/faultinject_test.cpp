//===- tests/faultinject_test.cpp - Fault-injection sweep -----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The robustness contract: a squashed image whose runtime structures are
// corrupted must never crash the harness, hang, or produce a silently
// wrong answer. Every injected fault must be either *detected* (attach
// refuses the image, or the run faults with a diagnostic) or *masked*
// (the run halts with exactly the uncorrupted program's output and exit
// code — e.g. served from the recovery copy, or the corrupted structure
// was never reached).
//
// The sweep covers two configurations per workload:
//   (a) ChecksumAtAttach on: every fault kind, including code bit flips
//       (which only the attach-time checksum can catch).
//   (b) ChecksumAtAttach off: the kinds covered by the always-on layout
//       validation and the lazy per-fill integrity checks.
//
//===----------------------------------------------------------------------===//

#include "compact/Compact.h"
#include "link/Layout.h"
#include "ir/Builder.h"
#include "squash/Driver.h"
#include "squash/FaultInjector.h"
#include "support/Span.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;

namespace {

constexpr double Scale = 0.05;
constexpr uint64_t SeedsPerConfig = 60; // 3 workloads x 2 configs x 60 = 360.

workloads::Workload buildByIndex(int Index) {
  switch (Index) {
  case 0:
    return workloads::buildAdpcm(Scale);
  case 1:
    return workloads::buildGsm(Scale);
  default:
    return workloads::buildG721Enc(Scale);
  }
}

/// The pristine squashed program plus its reference behaviour, against
/// which masked faults are judged.
struct Reference {
  workloads::Workload W;
  SquashResult SR;
  SquashedRun Base;
  uint64_t MaxInstructions = 0;
};

Reference prepare(int Index) {
  Reference R;
  R.W = buildByIndex(Index);
  compactProgram(R.W.Prog).take();
  Image Baseline = layoutProgram(R.W.Prog);
  Profile Prof = profileImage(Baseline, R.W.ProfilingInput).take();
  Options Opts;
  Opts.Theta = 0.1; // The timing input reaches compressed code here.
  R.SR = squashProgram(R.W.Prog, Prof, Opts).take();
  EXPECT_FALSE(R.SR.Identity);
  R.Base = runSquashed(R.SR.SP, R.W.TimingInput);
  EXPECT_EQ(R.Base.Run.Status, RunStatus::Halted) << R.Base.Run.FaultMessage;
  // A corrupted run that needs 4x the reference instruction count is a
  // hang for this sweep's purposes.
  R.MaxInstructions = 4 * R.Base.Run.Instructions + 1'000'000;
  return R;
}

class FaultSweep : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(FaultSweep, EveryFaultDetectedOrMasked) {
  Reference Ref = prepare(GetParam());

  // The sweep doubles as the flight recorder's acceptance harness: armed
  // throughout, every injection must land a trigger, and every faulting
  // run must leave a dump that names its injection (DESIGN.md §18).
  FlightRecorder &Recorder = FlightRecorder::instance();
  Recorder.clear();
  Recorder.arm();

  const std::vector<FaultKind> AllKinds = {
      FaultKind::BlobBitFlip,    FaultKind::OffsetTableEntry,
      FaultKind::StubSlotWord,   FaultKind::EntryStubTag,
      FaultKind::BufferShrink,   FaultKind::BufferGrow,
      FaultKind::BlobTruncate,   FaultKind::NCCodeBitFlip,
      FaultKind::StagingCorrupt, FaultKind::PublishOffsetSkew};
  // Without the attach-time checksum, a flipped bit of never-compressed
  // code executes undetectably; restrict to structures the always-on
  // layout validation and the lazy fill checks cover. PublishOffsetSkew
  // stays: its refreshed CRC is irrelevant here, and the skewed table
  // entry is caught (or masked) exactly like OffsetTableEntry.
  const std::vector<FaultKind> LazyKinds = {
      FaultKind::BlobBitFlip,  FaultKind::OffsetTableEntry,
      FaultKind::StubSlotWord, FaultKind::EntryStubTag,
      FaultKind::BufferShrink, FaultKind::BufferGrow,
      FaultKind::BlobTruncate, FaultKind::PublishOffsetSkew};

  uint64_t Detected = 0, Masked = 0, Recovered = 0;
  for (int Config = 0; Config != 2; ++Config) {
    const bool ChecksumAtAttach = Config == 0;
    const std::vector<FaultKind> &Kinds =
        ChecksumAtAttach ? AllKinds : LazyKinds;
    for (uint64_t Seed = 0; Seed != SeedsPerConfig; ++Seed) {
      Recorder.clear();
      SquashedProgram SP = Ref.SR.SP;
      SP.Opts.ChecksumAtAttach = ChecksumAtAttach;
      FaultInjector FI(1 + Seed * 2654435761ull + 97 * GetParam() + Config);
      std::optional<FaultReport> FR = FI.injectAny(SP, Kinds);
      ASSERT_TRUE(FR.has_value());
      SCOPED_TRACE(std::string(faultKindName(FR->Kind)) + " seed " +
                   std::to_string(Seed) + " config " +
                   (ChecksumAtAttach ? "checksum" : "lazy") + ": " +
                   FR->Description);
      ASSERT_GE(Recorder.triggerCount(), 1u)
          << "injection left no flight-recorder trigger";

      SquashedRun Run =
          runSquashed(SP, Ref.W.TimingInput, Ref.MaxInstructions);
      if (Run.Run.Status == RunStatus::Fault) {
        EXPECT_FALSE(Run.Run.FaultMessage.empty());
        // Postmortem contract: the dump names the injection that caused
        // this fault, and the detection itself triggered too (machine
        // fault mid-run or non-OK Status at attach).
        std::string Dump = Recorder.dumpJson();
        EXPECT_NE(Dump.find("\"source\":\"fault-injector\""),
                  std::string::npos);
        EXPECT_GE(Recorder.triggerCount(), 2u)
            << "detected fault left no trigger of its own";
        ++Detected;
        continue;
      }
      // Not detected: the only acceptable outcome is full masking.
      ASSERT_EQ(Run.Run.Status, RunStatus::Halted)
          << "corrupted image hung (instruction limit)";
      EXPECT_EQ(Run.Run.ExitCode, Ref.Base.Run.ExitCode)
          << "silently wrong exit code";
      EXPECT_EQ(Run.Output, Ref.Base.Output) << "silently wrong output";
      ++Masked;
      Recovered += Run.Runtime.CorruptRegionRecoveries;
    }
  }

  Recorder.disarm();
  Recorder.clear();

  // The sweep must exercise both halves of the contract, and graceful
  // degradation must actually fire (not just trivial never-reached masks).
  EXPECT_EQ(Detected + Masked, 2 * SeedsPerConfig);
  EXPECT_GT(Detected, 0u);
  EXPECT_GT(Masked, 0u);
  EXPECT_GT(Recovered, 0u);
  RecordProperty("detected", static_cast<int>(Detected));
  RecordProperty("masked", static_cast<int>(Masked));
  RecordProperty("recovered_fills", static_cast<int>(Recovered));
}

INSTANTIATE_TEST_SUITE_P(Workloads, FaultSweep, ::testing::Range(0, 3));

// Without recovery copies, a corrupt fill must fault (never limp on).
TEST(FaultInjection, NoRecoveryCopiesMeansCleanFault) {
  Reference Ref = prepare(0);
  uint64_t Faulted = 0;
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    SquashedProgram SP = Ref.SR.SP;
    SP.Opts.ChecksumAtAttach = false;
    SP.RecoveryWords.clear();
    FaultInjector FI(Seed * 7919 + 3);
    ASSERT_TRUE(FI.injectAny(SP, {FaultKind::BlobBitFlip}).has_value());
    SquashedRun Run = runSquashed(SP, Ref.W.TimingInput, Ref.MaxInstructions);
    ASSERT_NE(Run.Run.Status, RunStatus::InstLimit);
    if (Run.Run.Status == RunStatus::Fault) {
      EXPECT_FALSE(Run.Run.FaultMessage.empty());
      ++Faulted;
    } else {
      // A flip in the blob's stream-table prefix (which the host-side
      // codec mirror never reads back) is legitimately harmless.
      EXPECT_EQ(Run.Run.ExitCode, Ref.Base.Run.ExitCode);
      EXPECT_EQ(Run.Output, Ref.Base.Output);
    }
  }
  EXPECT_GT(Faulted, 0u);
}

// Library entry points must return errors on malformed input, not die.
TEST(FaultInjection, MalformedProgramIsRecoverableError) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(16, 0);
    F.halt();
  }
  PB.setEntry("main");
  Program Prog = PB.build();
  Prog.Functions.push_back(Prog.Functions.front()); // Duplicate function.
  Expected<SquashResult> R = squashProgram(std::move(Prog), Profile(), Options());
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), StatusCode::MalformedProgram);
}

TEST(FaultInjection, MismatchedProfileIsRecoverableError) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(16, 0);
    F.halt();
  }
  PB.setEntry("main");
  Profile Prof;
  Prof.BlockCounts = {1, 2, 3, 4, 5}; // Wrong block count.
  Prof.TotalInstructions = 15;
  Expected<SquashResult> R = squashProgram(PB.build(), Prof, Options());
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), StatusCode::InvalidArgument);
}

//===----------------------------------------------------------------------===//
// Decode-cache sweep: the same detect-or-mask contract with the multi-slot
// cache active (slot map, resident table, per-slot CRC revalidation, direct
// resident stubs), including corruption of the slot map itself.
//===----------------------------------------------------------------------===//

namespace {

/// Cache configurations: slot count, with/without direct resident stubs.
class CacheFaultSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

Reference prepareCached(uint32_t Slots, bool DirectStubs) {
  Reference R;
  R.W = buildByIndex(0);
  compactProgram(R.W.Prog).take();
  Image Baseline = layoutProgram(R.W.Prog);
  Profile Prof = profileImage(Baseline, R.W.ProfilingInput).take();
  Options Opts;
  Opts.Theta = 0.1;
  Opts.CacheSlots = Slots;
  Opts.ReuseBufferedRegion = true;
  Opts.DirectResidentStubs = DirectStubs;
  R.SR = squashProgram(R.W.Prog, Prof, Opts).take();
  EXPECT_FALSE(R.SR.Identity);
  R.Base = runSquashed(R.SR.SP, R.W.TimingInput);
  EXPECT_EQ(R.Base.Run.Status, RunStatus::Halted) << R.Base.Run.FaultMessage;
  R.MaxInstructions = 4 * R.Base.Run.Instructions + 1'000'000;
  return R;
}

} // namespace

TEST_P(CacheFaultSweep, EveryFaultDetectedOrMaskedWithCacheActive) {
  const uint32_t Slots = static_cast<uint32_t>(std::get<0>(GetParam()));
  const bool DirectStubs = std::get<1>(GetParam());
  Reference Ref = prepareCached(Slots, DirectStubs);

  // The cached image is deterministic with the cache active: its reference
  // run must agree with the paper-mode reference.
  const std::vector<FaultKind> Kinds = {
      FaultKind::BlobBitFlip,  FaultKind::OffsetTableEntry,
      FaultKind::StubSlotWord, FaultKind::EntryStubTag,
      FaultKind::BufferShrink, FaultKind::BufferGrow,
      FaultKind::BlobTruncate, FaultKind::SlotMapEntry};

  constexpr uint64_t Seeds = 40;
  uint64_t Detected = 0, Masked = 0, SlotMapFaults = 0;
  for (uint64_t Seed = 0; Seed != Seeds; ++Seed) {
    SquashedProgram SP = Ref.SR.SP;
    SP.Opts.ChecksumAtAttach = false; // Force the lazy per-fill checks.
    FaultInjector FI(11 + Seed * 2654435761ull + 1009 * Slots +
                     (DirectStubs ? 7 : 0));
    std::optional<FaultReport> FR = FI.injectAny(SP, Kinds);
    ASSERT_TRUE(FR.has_value());
    SCOPED_TRACE(std::string(faultKindName(FR->Kind)) + " seed " +
                 std::to_string(Seed) + " slots " + std::to_string(Slots) +
                 ": " + FR->Description);
    if (FR->Kind == FaultKind::SlotMapEntry)
      ++SlotMapFaults;

    SquashedRun Run = runSquashed(SP, Ref.W.TimingInput, Ref.MaxInstructions);
    if (Run.Run.Status == RunStatus::Fault) {
      EXPECT_FALSE(Run.Run.FaultMessage.empty());
      ++Detected;
      continue;
    }
    ASSERT_EQ(Run.Run.Status, RunStatus::Halted)
        << "corrupted cached image hung (instruction limit)";
    EXPECT_EQ(Run.Run.ExitCode, Ref.Base.Run.ExitCode)
        << "silently wrong exit code";
    EXPECT_EQ(Run.Output, Ref.Base.Output) << "silently wrong output";
    ++Masked;
  }
  EXPECT_EQ(Detected + Masked, Seeds);
  EXPECT_GT(Detected, 0u);
  EXPECT_GT(Masked, 0u);
  RecordProperty("detected", static_cast<int>(Detected));
  RecordProperty("masked", static_cast<int>(Masked));
  RecordProperty("slot_map_faults", static_cast<int>(SlotMapFaults));
}

INSTANTIATE_TEST_SUITE_P(SlotSweep, CacheFaultSweep,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(false, true)));

// A corrupted slot-map entry alone must always be masked: the slot map is
// redundant with the host resident table, and an entry corrupted before
// the program starts is overwritten by the first fill of that slot before
// any lookup can trust it. (Mid-run disagreement — the repair path proper —
// is driven directly in decodecache_test.cpp's Revalidation fixture.) The
// program's behaviour must be unchanged in every case.
TEST(FaultInjection, SlotMapCorruptionAlwaysMasked) {
  Reference Ref = prepareCached(3, /*DirectStubs=*/false);
  uint64_t Injected = 0;
  for (uint64_t Seed = 0; Seed != 30; ++Seed) {
    SquashedProgram SP = Ref.SR.SP;
    SP.Opts.ChecksumAtAttach = false;
    FaultInjector FI(Seed * 7919 + 31);
    std::optional<FaultReport> FR =
        FI.inject(SP, FaultKind::SlotMapEntry);
    if (!FR)
      continue;
    ++Injected;
    SCOPED_TRACE(FR->Description);
    SquashedRun Run = runSquashed(SP, Ref.W.TimingInput, Ref.MaxInstructions);
    ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
    EXPECT_EQ(Run.Run.ExitCode, Ref.Base.Run.ExitCode);
    EXPECT_EQ(Run.Output, Ref.Base.Output);
    // Every slot was filled at least once, so the corrupted entry must
    // have been rewritten with the truth by run's end.
    EXPECT_GT(Run.Runtime.Decompressions, 0u);
  }
  EXPECT_GT(Injected, 0u);
}

//===----------------------------------------------------------------------===//
// Decode-ahead sweep: the same detect-or-mask contract with the prefetcher
// active. A corrupted staging buffer must be discarded by the consume-time
// CRC re-check and served by a demand decode instead (masked); a truncated
// host-mirror code table must be refused at attach (detected); the blob
// faults behave exactly as they do without prefetch.
//===----------------------------------------------------------------------===//

TEST(FaultInjection, DecodeAheadFaultsDetectedOrMasked) {
  Reference Ref = prepare(0);
  const std::vector<FaultKind> Kinds = {
      FaultKind::PrefetchSlotCorrupt, FaultKind::DecodeTableTruncated,
      FaultKind::BlobBitFlip, FaultKind::BlobTruncate};

  constexpr uint64_t Seeds = 40;
  uint64_t Detected = 0, Masked = 0, TableFaults = 0;
  for (uint64_t Seed = 0; Seed != Seeds; ++Seed) {
    SquashedProgram SP = Ref.SR.SP;
    SP.Opts.DecodeAhead = true;
    FaultInjector FI(401 + Seed * 2654435761ull);
    std::optional<FaultReport> FR = FI.injectAny(SP, Kinds);
    ASSERT_TRUE(FR.has_value());
    SCOPED_TRACE(std::string(faultKindName(FR->Kind)) + " seed " +
                 std::to_string(Seed) + ": " + FR->Description);
    if (FR->Kind == FaultKind::DecodeTableTruncated)
      ++TableFaults;

    SquashedRun Run = runSquashed(SP, Ref.W.TimingInput, Ref.MaxInstructions);
    if (Run.Run.Status == RunStatus::Fault) {
      EXPECT_FALSE(Run.Run.FaultMessage.empty());
      // A truncated table must never survive to decode time.
      if (FR->Kind == FaultKind::DecodeTableTruncated) {
        EXPECT_EQ(Run.Runtime.Decompressions, 0u)
            << "truncated table was detected only after a fill";
      }
      ++Detected;
      continue;
    }
    ASSERT_EQ(Run.Run.Status, RunStatus::Halted)
        << "corrupted decode-ahead image hung (instruction limit)";
    EXPECT_EQ(Run.Run.ExitCode, Ref.Base.Run.ExitCode)
        << "silently wrong exit code";
    EXPECT_EQ(Run.Output, Ref.Base.Output) << "silently wrong output";
    ++Masked;
  }
  EXPECT_EQ(Detected + Masked, Seeds);
  EXPECT_GT(Detected, 0u);
  EXPECT_GT(Masked, 0u);
  EXPECT_GT(TableFaults, 0u) << "the sweep never drew DecodeTableTruncated";
  RecordProperty("detected", static_cast<int>(Detected));
  RecordProperty("masked", static_cast<int>(Masked));
}

// Arming the very first consumed prefetch for corruption pins the discard
// path directly: the CRC re-check must reject the tampered staging buffer,
// demand-decode in its place, and leave the run byte-identical.
TEST(FaultInjection, ArmedPrefetchCorruptionIsDiscardedAtConsume) {
  Reference Ref = prepare(0);
  SquashedProgram SP = Ref.SR.SP;
  SP.Opts.DecodeAhead = true;

  // The clean decode-ahead run consumes prefetches and matches the
  // prefetch-off reference exactly.
  SquashedRun Clean = runSquashed(SP, Ref.W.TimingInput, Ref.MaxInstructions);
  ASSERT_EQ(Clean.Run.Status, RunStatus::Halted) << Clean.Run.FaultMessage;
  EXPECT_EQ(Clean.Output, Ref.Base.Output);
  ASSERT_GT(Clean.Runtime.PrefetchHits, 0u)
      << "workload never consumed a prefetch; the armed fault cannot fire";

  SquashedProgram Armed = SP;
  Armed.ArmPrefetchCorrupt = 1; // Corrupt the first consumed staging.
  SquashedRun Run =
      runSquashed(Armed, Ref.W.TimingInput, Ref.MaxInstructions);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  EXPECT_EQ(Run.Run.ExitCode, Ref.Base.Run.ExitCode);
  EXPECT_EQ(Run.Output, Ref.Base.Output)
      << "a corrupted prefetch escaped into the guest";
  EXPECT_EQ(Run.Runtime.PrefetchCorruptDiscards, 1u);
  // The discarded fill demand-decoded instead; nothing else changed.
  EXPECT_EQ(Run.Runtime.Decompressions, Clean.Runtime.Decompressions);
  EXPECT_EQ(Run.Runtime.PrefetchHits + 1, Clean.Runtime.PrefetchHits);
}

// Non-Huffman codec tables damaged at rest: a truncated pattern-selector
// or context-opcode table must be rejected by attach's per-codec
// validation, before any fill could decode through it.
TEST(FaultInjection, CodecTableCorruptRejectedAtAttach) {
  workloads::Workload W = workloads::buildAdpcm(Scale);
  compactProgram(W.Prog).take();
  Image Baseline = layoutProgram(W.Prog);
  Profile Prof = profileImage(Baseline, W.ProfilingInput).take();
  for (const char *Codec : {"pattern", "context"}) {
    SCOPED_TRACE(Codec);
    Options Opts;
    Opts.Theta = 0.1;
    Opts.Codec = Codec;
    SquashResult SR = squashProgram(W.Prog, Prof, Opts).take();
    ASSERT_FALSE(SR.Identity);
    SquashedRun Base = runSquashed(SR.SP, W.TimingInput);
    ASSERT_EQ(Base.Run.Status, RunStatus::Halted) << Base.Run.FaultMessage;

    for (uint64_t Seed = 0; Seed != 8; ++Seed) {
      SquashedProgram SP = SR.SP;
      FaultInjector FI(601 + Seed * 2654435761ull);
      std::optional<FaultReport> FR =
          FI.inject(SP, FaultKind::CodecTableCorrupt);
      ASSERT_TRUE(FR.has_value());
      SCOPED_TRACE("seed " + std::to_string(Seed) + ": " + FR->Description);
      SquashedRun Run = runSquashed(SP, W.TimingInput,
                                    4 * Base.Run.Instructions + 1'000'000);
      ASSERT_EQ(Run.Run.Status, RunStatus::Fault)
          << "corrupt codec table escaped attach validation";
      EXPECT_FALSE(Run.Run.FaultMessage.empty());
      EXPECT_EQ(Run.Runtime.Decompressions, 0u)
          << "corrupt table was detected only after a fill";
    }

    // The complementary inapplicability: with no Huffman region, attach
    // never reads the Huffman stream tables, so truncating them would be
    // an undetectable (and therefore meaningless) injection.
    bool AnyHuffman = false;
    for (const RegionImageInfo &RI : SR.SP.Regions)
      AnyHuffman |= RI.Codec == static_cast<uint8_t>(CodecKind::Huffman);
    if (!AnyHuffman) {
      SquashedProgram SP = SR.SP;
      FaultInjector FI(11);
      EXPECT_FALSE(
          FI.inject(SP, FaultKind::DecodeTableTruncated).has_value());
    }
  }
}

// CodecTableCorrupt is inapplicable on an all-Huffman image: there is no
// pattern or context table for attach to validate, so inject() must refuse.
TEST(FaultInjection, CodecTableCorruptRequiresNonHuffmanRegion) {
  Reference Ref = prepare(0);
  SquashedProgram SP = Ref.SR.SP;
  FaultInjector FI(7);
  EXPECT_FALSE(FI.inject(SP, FaultKind::CodecTableCorrupt).has_value());
}

// PrefetchSlotCorrupt is inapplicable without decode-ahead: inject() must
// refuse rather than arm a fault that can never fire.
TEST(FaultInjection, PrefetchCorruptRequiresDecodeAhead) {
  Reference Ref = prepare(0);
  SquashedProgram SP = Ref.SR.SP;
  ASSERT_FALSE(SP.Opts.DecodeAhead);
  FaultInjector FI(7);
  EXPECT_FALSE(FI.inject(SP, FaultKind::PrefetchSlotCorrupt).has_value());
  EXPECT_EQ(SP.ArmPrefetchCorrupt, 0u);
}

//===----------------------------------------------------------------------===//
// Adaptive swap-path sweep: the same never-crash contract for the online
// re-squash pipeline. A fault injected into a *staged* image must die at
// the staging CRC gate; one that forges consistent checksums must die at
// the publication cross-check; a leaked epoch pin must wedge retirement
// loudly instead of freeing pinned memory. In every case the controller
// keeps serving byte-identical output.
//===----------------------------------------------------------------------===//

#include "squash/Adaptive.h"

namespace {

/// Shared inputs for the adaptive sweeps: the compacted program, its
/// training profile, and the reference behaviour on the timing input.
struct AdaptiveFixture {
  workloads::Workload W;
  Profile Training;
  SquashedRun Base;

  AdaptiveFixture() {
    W = buildByIndex(0);
    compactProgram(W.Prog).take();
    Image Baseline = layoutProgram(W.Prog);
    Training = profileImage(Baseline, W.ProfilingInput).take();
    Options Opts;
    Opts.Theta = 0.1;
    SquashResult SR = squashProgram(W.Prog, Training, Opts).take();
    Base = runSquashed(SR.SP, W.TimingInput);
    EXPECT_EQ(Base.Run.Status, RunStatus::Halted) << Base.Run.FaultMessage;
  }

  AdaptiveConfig config() const {
    AdaptiveConfig Cfg;
    Cfg.DriftThreshold = 0.0; // Any live evidence triggers.
    Cfg.MinEntriesForTrigger = 1;
    Cfg.ProbationRuns = 1;
    Cfg.ProbationTraps = UINT32_MAX;
    Cfg.RegressionTolerance = 1e9; // Deterministic commit, never rollback.
    Cfg.MaxAttempts = 1;
    Cfg.RetireTimeoutSeconds = 0.0; // Wedges report immediately.
    return Cfg;
  }

  std::unique_ptr<ResquashController> controller(AdaptiveConfig Cfg) const {
    Options Opts;
    Opts.Theta = 0.1;
    return ResquashController::create(W.Prog, Training, Opts, std::move(Cfg))
        .take();
  }

  void expectReferenceRun(const SquashedRun &Run) const {
    ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
    EXPECT_EQ(Run.Run.ExitCode, Base.Run.ExitCode);
    EXPECT_EQ(Run.Output, Base.Output);
  }
};

} // namespace

// A staged image corrupted in flight must be rejected by the CRC gate:
// no publication, no new version, service untouched.
TEST(AdaptiveFaultSweep, StagingCorruptionRejectedAtCrcGate) {
  AdaptiveFixture Fx;
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    AdaptiveConfig Cfg = Fx.config();
    FaultInjector FI(101 + Seed * 2654435761ull);
    bool Applied = false;
    Cfg.StageHook = [&](SquashedProgram &SP) {
      Applied = FI.inject(SP, FaultKind::StagingCorrupt).has_value();
    };
    std::unique_ptr<ResquashController> C = Fx.controller(std::move(Cfg));

    Fx.expectReferenceRun(C->serve(Fx.W.TimingInput)); // Triggers.
    ASSERT_TRUE(C->drain(30.0).ok());
    ASSERT_TRUE(Applied);

    AdaptiveStats St = C->stats();
    EXPECT_EQ(St.Attempts, 1u);
    EXPECT_EQ(St.StagingRejects, 1u);
    EXPECT_EQ(St.Publications, 0u);
    EXPECT_EQ(C->activeVersion(), 0u);
    EXPECT_EQ(C->versionCount(), 1u);
    Status Err = C->lastError();
    EXPECT_TRUE(Err.code() == StatusCode::CorruptBlob ||
                Err.code() == StatusCode::MalformedImage)
        << Err.toString();
    Fx.expectReferenceRun(C->serve(Fx.W.TimingInput)); // Still serves.
  }
}

// A fault that forges consistent checksums (offset table skew + CRC
// refresh) must pass staging but die at the publication cross-check.
TEST(AdaptiveFaultSweep, OffsetSkewRejectedAtPublicationGate) {
  AdaptiveFixture Fx;
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    AdaptiveConfig Cfg = Fx.config();
    FaultInjector FI(211 + Seed * 2654435761ull);
    bool Applied = false;
    Cfg.StageHook = [&](SquashedProgram &SP) {
      Applied = FI.inject(SP, FaultKind::PublishOffsetSkew).has_value();
    };
    std::unique_ptr<ResquashController> C = Fx.controller(std::move(Cfg));

    Fx.expectReferenceRun(C->serve(Fx.W.TimingInput)); // Triggers.
    ASSERT_TRUE(C->drain(30.0).ok()); // Stages, then poll() tries to publish.
    ASSERT_TRUE(Applied);

    AdaptiveStats St = C->stats();
    EXPECT_EQ(St.Attempts, 1u);
    EXPECT_EQ(St.StagingRejects, 0u) << "skew was caught too early: the "
                                        "CRC refresh failed";
    EXPECT_EQ(St.PublishRejects, 1u);
    EXPECT_EQ(St.Publications, 0u);
    EXPECT_EQ(C->activeVersion(), 0u);
    EXPECT_EQ(C->versionCount(), 1u);
    EXPECT_FALSE(C->hasStaged());
    Status Err = C->lastError();
    EXPECT_TRUE(Err.code() == StatusCode::CorruptOffsetTable ||
                Err.code() == StatusCode::MalformedImage)
        << Err.toString();
    Fx.expectReferenceRun(C->serve(Fx.W.TimingInput)); // Still serves.
  }
}

// A request that dies holding its epoch pin must wedge the pinned
// version's retirement — reported via Status and counters, never freed
// under the pin, never a use-after-free.
TEST(AdaptiveFaultSweep, LeakedEpochPinWedgesRetirementLoudly) {
  AdaptiveFixture Fx;
  std::unique_ptr<ResquashController> C = Fx.controller(Fx.config());

  C->armEpochPinLeak();
  Fx.expectReferenceRun(C->serve(Fx.W.TimingInput)); // Leaks v0's pin.
  ASSERT_TRUE(C->drain(30.0).ok()); // Re-squash lands; poll publishes v1.
  ASSERT_EQ(C->activeVersion(), 1u);
  ASSERT_EQ(C->versionState(1), VersionState::Probation);

  // Probation (1 run) commits v1; v0 retires but can never drain.
  Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
  EXPECT_EQ(C->versionState(1), VersionState::Committed);
  EXPECT_EQ(C->versionState(0), VersionState::Retired)
      << "a pinned version must stay Retired (wedged), never be Freed";

  AdaptiveStats St = C->stats();
  EXPECT_EQ(St.Publications, 1u);
  EXPECT_EQ(St.PinLeaks, 1u);
  EXPECT_EQ(St.WedgedRetirements, 1u);
  EXPECT_EQ(St.RetiredVersions, 0u);
  EXPECT_EQ(C->lastError().code(), StatusCode::DeadlineExceeded)
      << C->lastError().toString();

  // The wedge is reported once, not respun; service continues.
  Fx.expectReferenceRun(C->serve(Fx.W.TimingInput));
  EXPECT_EQ(C->stats().WedgedRetirements, 1u);
}
