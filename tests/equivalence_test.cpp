//===- tests/equivalence_test.cpp - Squashed-program equivalence ----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The central integration property: for every workload, threshold, and
// option combination, the squashed program must produce exactly the same
// output and exit code as the original — on the profiling input AND on the
// timing input (which exercises profile-cold code, i.e. the decompressor,
// restore stubs, and re-entry paths).
//
//===----------------------------------------------------------------------===//

#include "compact/Compact.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "squash/Driver.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;

namespace {

struct PreparedWorkload {
  workloads::Workload W;
  Image Baseline;
  Profile Prof;
  RunResult BaseProf, BaseTime;
  std::vector<uint8_t> OutProf, OutTime;
};

/// Builds + compacts + profiles one workload at test scale, caching the
/// baseline runs.
PreparedWorkload prepare(workloads::Workload W) {
  PreparedWorkload P;
  P.W = std::move(W);
  compactProgram(P.W.Prog).take();
  P.Baseline = layoutProgram(P.W.Prog);
  P.Prof = profileImage(P.Baseline, P.W.ProfilingInput).take();
  {
    Machine M(P.Baseline);
    M.setInput(P.W.ProfilingInput);
    P.BaseProf = M.run();
    P.OutProf = M.output();
  }
  {
    Machine M(P.Baseline);
    M.setInput(P.W.TimingInput);
    P.BaseTime = M.run();
    P.OutTime = M.output();
  }
  EXPECT_EQ(P.BaseProf.Status, RunStatus::Halted);
  EXPECT_EQ(P.BaseTime.Status, RunStatus::Halted);
  return P;
}

void expectEquivalent(const PreparedWorkload &P, const Options &Opts,
                      const std::string &Tag) {
  SquashResult SR = squashProgram(P.W.Prog, P.Prof, Opts).take();

  auto RunOne = [&](const std::vector<uint8_t> &Input,
                    const RunResult &Base,
                    const std::vector<uint8_t> &BaseOut, const char *Which) {
    Machine M(SR.SP.Img);
    RuntimeSystem RT(SR.SP);
    if (!SR.Identity)
      ASSERT_TRUE(RT.attach(M).ok());
    M.setInput(Input);
    RunResult R = M.run();
    ASSERT_EQ(R.Status, RunStatus::Halted)
        << P.W.Name << " " << Tag << " " << Which << ": "
        << R.FaultMessage;
    EXPECT_EQ(R.ExitCode, Base.ExitCode)
        << P.W.Name << " " << Tag << " " << Which;
    EXPECT_EQ(M.output(), BaseOut)
        << P.W.Name << " " << Tag << " " << Which << " output diverged";
    // Squashed code executes at most a few extra instructions per
    // decompression (stub + jump slot); it must not balloon.
    EXPECT_LT(R.Instructions, Base.Instructions + Base.Instructions / 4 +
                                  10000)
        << P.W.Name << " " << Tag;
  };
  RunOne(P.W.ProfilingInput, P.BaseProf, P.OutProf, "profiling");
  RunOne(P.W.TimingInput, P.BaseTime, P.OutTime, "timing");
}

/// Test scale: small inputs keep each run in the hundred-thousand
/// instruction range.
constexpr double TestScale = 0.06;

class WorkloadEquivalence : public ::testing::TestWithParam<int> {};

const char *workloadName(int Index) {
  static const char *Names[] = {"adpcm",    "epic",     "g721_dec",
                                "g721_enc", "gsm",      "jpeg_dec",
                                "jpeg_enc", "mpeg2dec", "mpeg2enc",
                                "pgp",      "rasta"};
  return Names[Index];
}

workloads::Workload buildOne(int Index) {
  using namespace workloads;
  switch (Index) {
  case 0:
    return buildAdpcm(TestScale);
  case 1:
    return buildEpic(TestScale);
  case 2:
    return buildG721Dec(TestScale);
  case 3:
    return buildG721Enc(TestScale);
  case 4:
    return buildGsm(TestScale);
  case 5:
    return buildJpegDec(TestScale);
  case 6:
    return buildJpegEnc(TestScale);
  case 7:
    return buildMpeg2Dec(TestScale);
  case 8:
    return buildMpeg2Enc(TestScale);
  case 9:
    return buildPgp(TestScale);
  default:
    return buildRasta(TestScale);
  }
}

} // namespace

TEST_P(WorkloadEquivalence, AcrossThresholds) {
  PreparedWorkload P = prepare(buildOne(GetParam()));
  for (double Theta : {0.0, 1e-3, 1e-2, 1.0}) {
    Options Opts;
    Opts.Theta = Theta;
    expectEquivalent(P, Opts, "theta=" + std::to_string(Theta));
  }
}

TEST_P(WorkloadEquivalence, AcrossBufferBounds) {
  PreparedWorkload P = prepare(buildOne(GetParam()));
  for (uint32_t K : {64u, 256u, 2048u}) {
    Options Opts;
    Opts.Theta = 1e-2;
    Opts.BufferBoundBytes = K;
    expectEquivalent(P, Opts, "K=" + std::to_string(K));
  }
}

TEST_P(WorkloadEquivalence, AcrossOptionToggles) {
  PreparedWorkload P = prepare(buildOne(GetParam()));
  Options Base;
  Base.Theta = 1e-2;

  Options NoPack = Base;
  NoPack.PackRegions = false;
  expectEquivalent(P, NoPack, "no-pack");

  Options NoSafe = Base;
  NoSafe.BufferSafeCalls = false;
  expectEquivalent(P, NoSafe, "no-buffer-safe");

  Options NoUnswitch = Base;
  NoUnswitch.Unswitch = false;
  expectEquivalent(P, NoUnswitch, "no-unswitch");

  Options Mtf = Base;
  Mtf.MoveToFront = true;
  expectEquivalent(P, Mtf, "mtf");

  Options Reuse = Base;
  Reuse.ReuseBufferedRegion = true;
  expectEquivalent(P, Reuse, "reuse-buffer");

  Options Delta = Base;
  Delta.DeltaDisplacements = true;
  expectEquivalent(P, Delta, "delta-disp");

  Options Whole = Base;
  Whole.WholeFunctionRegions = true;
  expectEquivalent(P, Whole, "whole-function");
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadEquivalence,
                         ::testing::Range(0, 11),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return workloadName(Info.param);
                         });
