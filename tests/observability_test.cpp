//===- tests/observability_test.cpp - Metrics, trace, profile IO ----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The observability layer: the metrics registry and its JSON rendering,
// the Chrome-trace exporter's structural validity, the per-region heat
// report, and profile persistence — including the acceptance-criteria
// properties that a saved-then-loaded profile squashes to a byte-identical
// image and that a merged multi-input profile drives a correct
// differential run.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "sim/ProfileIO.h"
#include "squash/Driver.h"
#include "squash/Observability.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace vea;
using namespace squash;

namespace {

/// Minimal recursive-descent JSON syntax checker — enough to assert that
/// every byte the exporters produce is a single well-formed JSON value.
struct JsonChecker {
  const char *C, *E;
  explicit JsonChecker(const std::string &S)
      : C(S.data()), E(S.data() + S.size()) {}

  void ws() {
    while (C != E && (*C == ' ' || *C == '\t' || *C == '\n' || *C == '\r'))
      ++C;
  }
  bool lit(const char *L) {
    size_t N = std::strlen(L);
    if (static_cast<size_t>(E - C) >= N && !std::memcmp(C, L, N)) {
      C += N;
      return true;
    }
    return false;
  }
  bool string() {
    if (C == E || *C != '"')
      return false;
    ++C;
    while (C != E && *C != '"') {
      if (static_cast<unsigned char>(*C) < 0x20)
        return false; // raw control character
      if (*C == '\\') {
        ++C;
        if (C == E || !std::strchr("\"\\/bfnrtu", *C))
          return false;
      }
      ++C;
    }
    if (C == E)
      return false;
    ++C;
    return true;
  }
  bool number() {
    const char *Start = C;
    if (C != E && *C == '-')
      ++C;
    bool Digits = false;
    while (C != E && (std::isdigit(static_cast<unsigned char>(*C)) ||
                      *C == '.' || *C == 'e' || *C == 'E' || *C == '+' ||
                      *C == '-')) {
      Digits |= std::isdigit(static_cast<unsigned char>(*C)) != 0;
      ++C;
    }
    return C != Start && Digits;
  }
  bool value() {
    ws();
    if (C == E)
      return false;
    if (*C == '{') {
      ++C;
      ws();
      if (C != E && *C == '}') {
        ++C;
        return true;
      }
      while (true) {
        ws();
        if (!string())
          return false;
        ws();
        if (C == E || *C != ':')
          return false;
        ++C;
        if (!value())
          return false;
        ws();
        if (C != E && *C == ',') {
          ++C;
          continue;
        }
        if (C != E && *C == '}') {
          ++C;
          return true;
        }
        return false;
      }
    }
    if (*C == '[') {
      ++C;
      ws();
      if (C != E && *C == ']') {
        ++C;
        return true;
      }
      while (true) {
        if (!value())
          return false;
        ws();
        if (C != E && *C == ',') {
          ++C;
          continue;
        }
        if (C != E && *C == ']') {
          ++C;
          return true;
        }
        return false;
      }
    }
    if (*C == '"')
      return string();
    if (lit("true") || lit("false") || lit("null"))
      return true;
    return number();
  }
};

bool isValidJson(const std::string &S) {
  JsonChecker P(S);
  if (!P.value())
    return false;
  P.ws();
  return P.C == P.E;
}

/// A byte-stream accumulator whose >= 128 bytes divert through a cold
/// transform function — cold under any profile whose input stays below
/// 128, exercised by timing inputs that do not.
Program streamProgram() {
  ProgramBuilder PB("obs");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(9, 0); // checksum
    F.label("loop");
    F.sys(SysFunc::GetChar);
    F.li(1, -1);
    F.cmpeq(1, 0, 1);
    F.bne(1, "eof");
    F.cmpulti(1, 0, 128);
    F.bne(1, "plain");
    F.mov(16, 0);
    F.call("rare"); // returns the transformed byte in r0
    F.label("plain");
    F.add(9, 9, 0);
    F.br("loop");
    F.label("eof");
    F.andi(16, 9, 255);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("rare");
    F.muli(0, 16, 3);
    F.xori(0, 0, 0x5a);
    for (int I = 0; I != 10; ++I)
      F.addi(0, 0, 1); // Padding so the function forms a real region.
    F.andi(0, 0, 255);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

std::vector<uint8_t> lowBytes(size_t N, uint8_t Seed) {
  std::vector<uint8_t> In;
  for (size_t I = 0; I != N; ++I)
    In.push_back(static_cast<uint8_t>((Seed + I * 7) % 128));
  return In;
}

std::vector<uint8_t> mixedBytes(size_t N) {
  std::vector<uint8_t> In;
  for (size_t I = 0; I != N; ++I)
    In.push_back(static_cast<uint8_t>(40 + I * 29)); // wraps past 128
  return In;
}

/// Profiles streamProgram's baseline on \p Input.
Profile profileOn(const Program &Prog, const std::vector<uint8_t> &Input) {
  Image Baseline = layoutProgram(Prog);
  return profileImage(Baseline, Input).take();
}

} // namespace

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

TEST(Metrics, CountersAndGauges) {
  MetricsRegistry R;
  EXPECT_TRUE(R.empty());
  R.setCounter("a", 7);
  R.addCounter("a", 3);
  R.setGauge("b", 0.5);
  EXPECT_EQ(R.size(), 2u);
  EXPECT_TRUE(R.has("a"));
  EXPECT_FALSE(R.has("c"));
  EXPECT_EQ(R.counter("a"), 10u);
  EXPECT_DOUBLE_EQ(R.gauge("b"), 0.5);
  // addCounter on a fresh name starts from zero.
  R.addCounter("c", 2);
  EXPECT_EQ(R.counter("c"), 2u);
}

TEST(Metrics, JsonIsValidAndInsertionOrdered) {
  MetricsRegistry R;
  R.setCounter("z.count", 1);
  R.setGauge("a.gauge", 2.25);
  R.setCounter("quote\"key\n", 3); // must be escaped, not break the JSON
  std::string J = R.toJson();
  EXPECT_TRUE(isValidJson(J)) << J;
  // Insertion order, not lexicographic: z before a.
  EXPECT_LT(J.find("z.count"), J.find("a.gauge"));
  EXPECT_NE(J.find("\\\""), std::string::npos);
  EXPECT_NE(J.find("\\n"), std::string::npos);
}

TEST(Metrics, EmptyRegistryIsAnEmptyObject) {
  MetricsRegistry R;
  EXPECT_EQ(R.toJson(), "{}");
  EXPECT_TRUE(isValidJson(R.toJson()));
}

//===----------------------------------------------------------------------===//
// Chrome-trace export + heat report
//===----------------------------------------------------------------------===//

TEST(Observability, ChromeTraceIsStructurallyValid) {
  Program Prog = streamProgram();
  Profile Prof = profileOn(Prog, lowBytes(64, 1));
  Options Opts;
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);

  SquashedRun Run = runSquashed(SR.SP, mixedBytes(64), 2'000'000'000ull,
                                RuntimeSystem::DefaultTraceCapacity);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  ASSERT_FALSE(Run.Trace.empty());

  std::string J = exportChromeTrace(Run.Trace, Run.TraceDropped);
  EXPECT_TRUE(isValidJson(J)) << J.substr(0, 200);
  EXPECT_NE(J.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"decompress\""), std::string::npos);

  // Timestamps are the machine cycle counts, nondecreasing oldest-first.
  for (size_t I = 1; I < Run.Trace.size(); ++I)
    EXPECT_LE(Run.Trace[I - 1].Cycle, Run.Trace[I].Cycle);
}

TEST(Observability, EmptyTraceExportsValidJson) {
  std::string J = exportChromeTrace({}, 5);
  EXPECT_TRUE(isValidJson(J)) << J;
  EXPECT_NE(J.find("\"dropped_events\":\"5\""), std::string::npos);
}

TEST(Observability, HeatReportAggregatesPerRegion) {
  using Event = RuntimeSystem::Event;
  std::vector<Event> Events = {
      {Event::Kind::EnterViaStub, 1, 0, 0, 10},
      {Event::Kind::Decompress, 1, 0, 0, 11},
      {Event::Kind::BufferedHit, 1, 0, 0, 20},
      {Event::Kind::Decompress, 2, 0, 0, 30},
      {Event::Kind::Evict, 1, 0, 0, 30},
      {Event::Kind::StubCreate, 7, 0, 1, 31}, // stub event: not region heat
      {Event::Kind::Decompress, 1, 0, 0, 40},
  };
  std::vector<RegionHeat> Report = buildRegionHeatReport(Events);
  ASSERT_EQ(Report.size(), 2u);
  // Sorted by decompressions descending: region 1 (2 fills) first.
  EXPECT_EQ(Report[0].Region, 1u);
  EXPECT_EQ(Report[0].Decompressions, 2u);
  EXPECT_EQ(Report[0].BufferedHits, 1u);
  EXPECT_EQ(Report[0].Evictions, 1u);
  EXPECT_EQ(Report[0].StubCalls, 1u);
  EXPECT_EQ(Report[0].FirstCycle, 10u);
  EXPECT_EQ(Report[0].LastCycle, 40u);
  EXPECT_EQ(Report[1].Region, 2u);
  EXPECT_EQ(Report[1].Decompressions, 1u);

  std::string Table = renderRegionHeatReport(Report);
  EXPECT_NE(Table.find("decompressions"), std::string::npos);
}

TEST(Observability, CollectCoversSquashAndRunCounters) {
  Program Prog = streamProgram();
  Profile Prof = profileOn(Prog, lowBytes(64, 1));
  Options Opts;
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);
  SquashedRun Run = runSquashed(SR.SP, mixedBytes(64), 2'000'000'000ull,
                                RuntimeSystem::DefaultTraceCapacity);

  MetricsRegistry Reg;
  collectSquashMetrics(Reg, SR);
  collectRunMetrics(Reg, Run);
  // One registry covers both squash-time and runtime counters.
  for (const char *Key :
       {"squash.time.total_seconds", "squash.cold.cold_instructions",
        "squash.regions.initial", "squash.buffersafe.functions",
        "squash.unswitch.unswitched", "footprint.total_code_bytes",
        "run.instructions", "run.cycles", "runtime.decompressions",
        "runtime.trace_events", "runtime.trace_dropped"})
    EXPECT_TRUE(Reg.has(Key)) << Key;
  EXPECT_TRUE(isValidJson(Reg.toJson()));
  EXPECT_EQ(Reg.counter("runtime.trace_events"), Run.Trace.size());
  EXPECT_GE(Reg.counter("runtime.decompressions"), 1u);
}

//===----------------------------------------------------------------------===//
// Profile persistence
//===----------------------------------------------------------------------===//

TEST(ProfileIO, SerializeParseRoundTrip) {
  Profile P;
  P.BlockCounts = {0, 3, 0, 12345678901234ull, 1};
  P.TotalInstructions = 999;
  Expected<Profile> Back = parseProfile(serializeProfile(P));
  ASSERT_TRUE(Back.ok()) << Back.status().toString();
  EXPECT_EQ(Back.get().BlockCounts, P.BlockCounts);
  EXPECT_EQ(Back.get().TotalInstructions, P.TotalInstructions);
}

TEST(ProfileIO, RejectsMalformedInput) {
  EXPECT_FALSE(parseProfile("").ok());
  EXPECT_FALSE(parseProfile("squash-profile v99\nblocks 1\ntotal 0\n").ok());
  const char *Good = "squash-profile v1\nblocks 2\ntotal 5\n";
  EXPECT_TRUE(parseProfile(Good).ok());
  EXPECT_FALSE(parseProfile(std::string(Good) + "2 1\n").ok()) << "id range";
  EXPECT_FALSE(parseProfile(std::string(Good) + "0 1\n0 2\n").ok())
      << "duplicate id";
  EXPECT_FALSE(parseProfile(std::string(Good) + "0 1 junk\n").ok());
  EXPECT_FALSE(parseProfile(std::string(Good) + "0 99999999999999999999\n")
                   .ok())
      << "count overflow";
  EXPECT_FALSE(parseProfile("squash-profile v1\nblocks -1\ntotal 0\n").ok());
}

TEST(ProfileIO, MergeSumsAndValidates) {
  Profile A, B;
  A.BlockCounts = {1, 2, 3};
  A.TotalInstructions = 6;
  B.BlockCounts = {10, 0, 30};
  B.TotalInstructions = 40;
  Expected<Profile> M = mergeProfiles({A, B});
  ASSERT_TRUE(M.ok());
  EXPECT_EQ(M.get().BlockCounts, (std::vector<uint64_t>{11, 2, 33}));
  EXPECT_EQ(M.get().TotalInstructions, 46u);

  EXPECT_FALSE(mergeProfiles({}).ok());
  Profile C;
  C.BlockCounts = {1};
  EXPECT_FALSE(mergeProfiles({A, C}).ok()) << "block count mismatch";
}

TEST(ProfileIO, SaveLoadFileRoundTrip) {
  Profile P;
  P.BlockCounts = {5, 0, 7};
  P.TotalInstructions = 12;
  std::string Path = testing::TempDir() + "squash_profileio_test.prof";
  ASSERT_TRUE(saveProfileFile(P, Path).ok());
  Expected<Profile> Back = loadProfileFile(Path);
  ASSERT_TRUE(Back.ok()) << Back.status().toString();
  EXPECT_EQ(Back.get().BlockCounts, P.BlockCounts);
  EXPECT_EQ(Back.get().TotalInstructions, P.TotalInstructions);
  std::remove(Path.c_str());

  EXPECT_FALSE(loadProfileFile(Path + ".does-not-exist").ok());
}

TEST(ProfileIO, LoadedProfileSquashesByteIdentically) {
  Program Prog = streamProgram();
  Profile Prof = profileOn(Prog, lowBytes(64, 1));

  std::string Path = testing::TempDir() + "squash_profileio_image.prof";
  ASSERT_TRUE(saveProfileFile(Prof, Path).ok());
  Profile Loaded = loadProfileFile(Path).take();
  std::remove(Path.c_str());

  Options Opts;
  SquashResult Direct = squashProgram(Prog, Prof, Opts).take();
  SquashResult ViaFile = squashProgram(Prog, Loaded, Opts).take();
  ASSERT_FALSE(Direct.Identity);
  // The persisted profile carries everything the pipeline consumes: the
  // squashed images must match byte for byte.
  EXPECT_EQ(ViaFile.SP.Img.Bytes, Direct.SP.Img.Bytes);
  EXPECT_EQ(ViaFile.SP.Img.Base, Direct.SP.Img.Base);
  EXPECT_EQ(ViaFile.SP.Img.EntryPC, Direct.SP.Img.EntryPC);
}

TEST(ProfileIO, MergedProfileDrivesDifferentialRun) {
  Program Prog = streamProgram();
  // Two training inputs (the paper's Figure 5 cross-input setup), merged.
  Profile P1 = profileOn(Prog, lowBytes(48, 1));
  Profile P2 = profileOn(Prog, lowBytes(96, 3));
  Profile Merged = mergeProfiles({P1, P2}).take();
  EXPECT_EQ(Merged.TotalInstructions,
            P1.TotalInstructions + P2.TotalInstructions);

  Options Opts;
  SquashResult SR = squashProgram(Prog, Merged, Opts).take();
  ASSERT_FALSE(SR.Identity);

  // Differential check on an input neither profile saw: the squashed
  // program must agree with the baseline and hit the decompressor.
  std::vector<uint8_t> Eval = mixedBytes(80);
  Image Baseline = layoutProgram(Prog);
  Machine M(Baseline);
  M.setInput(Eval);
  RunResult Base = M.run();
  ASSERT_EQ(Base.Status, RunStatus::Halted);

  SquashedRun Run = runSquashed(SR.SP, Eval);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  EXPECT_EQ(Run.Run.ExitCode, Base.ExitCode);
  EXPECT_EQ(Run.Output, M.output());
  EXPECT_GE(Run.Runtime.Decompressions, 1u);
}
