//===- tests/observability_test.cpp - Metrics, trace, profile IO ----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The observability layer: the metrics registry and its JSON rendering,
// the Chrome-trace exporter's structural validity, the per-region heat
// report, and profile persistence — including the acceptance-criteria
// properties that a saved-then-loaded profile squashes to a byte-identical
// image and that a merged multi-input profile drives a correct
// differential run.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "sim/ProfileIO.h"
#include "squash/Driver.h"
#include "squash/DriftMonitor.h"
#include "squash/Observability.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

using namespace vea;
using namespace squash;

namespace {

/// Minimal recursive-descent JSON syntax checker — enough to assert that
/// every byte the exporters produce is a single well-formed JSON value.
struct JsonChecker {
  const char *C, *E;
  explicit JsonChecker(const std::string &S)
      : C(S.data()), E(S.data() + S.size()) {}

  void ws() {
    while (C != E && (*C == ' ' || *C == '\t' || *C == '\n' || *C == '\r'))
      ++C;
  }
  bool lit(const char *L) {
    size_t N = std::strlen(L);
    if (static_cast<size_t>(E - C) >= N && !std::memcmp(C, L, N)) {
      C += N;
      return true;
    }
    return false;
  }
  bool string() {
    if (C == E || *C != '"')
      return false;
    ++C;
    while (C != E && *C != '"') {
      if (static_cast<unsigned char>(*C) < 0x20)
        return false; // raw control character
      if (*C == '\\') {
        ++C;
        if (C == E || !std::strchr("\"\\/bfnrtu", *C))
          return false;
      }
      ++C;
    }
    if (C == E)
      return false;
    ++C;
    return true;
  }
  bool number() {
    const char *Start = C;
    if (C != E && *C == '-')
      ++C;
    bool Digits = false;
    while (C != E && (std::isdigit(static_cast<unsigned char>(*C)) ||
                      *C == '.' || *C == 'e' || *C == 'E' || *C == '+' ||
                      *C == '-')) {
      Digits |= std::isdigit(static_cast<unsigned char>(*C)) != 0;
      ++C;
    }
    return C != Start && Digits;
  }
  bool value() {
    ws();
    if (C == E)
      return false;
    if (*C == '{') {
      ++C;
      ws();
      if (C != E && *C == '}') {
        ++C;
        return true;
      }
      while (true) {
        ws();
        if (!string())
          return false;
        ws();
        if (C == E || *C != ':')
          return false;
        ++C;
        if (!value())
          return false;
        ws();
        if (C != E && *C == ',') {
          ++C;
          continue;
        }
        if (C != E && *C == '}') {
          ++C;
          return true;
        }
        return false;
      }
    }
    if (*C == '[') {
      ++C;
      ws();
      if (C != E && *C == ']') {
        ++C;
        return true;
      }
      while (true) {
        if (!value())
          return false;
        ws();
        if (C != E && *C == ',') {
          ++C;
          continue;
        }
        if (C != E && *C == ']') {
          ++C;
          return true;
        }
        return false;
      }
    }
    if (*C == '"')
      return string();
    if (lit("true") || lit("false") || lit("null"))
      return true;
    return number();
  }
};

bool isValidJson(const std::string &S) {
  JsonChecker P(S);
  if (!P.value())
    return false;
  P.ws();
  return P.C == P.E;
}

/// A byte-stream accumulator whose >= 128 bytes divert through a cold
/// transform function — cold under any profile whose input stays below
/// 128, exercised by timing inputs that do not.
Program streamProgram() {
  ProgramBuilder PB("obs");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(9, 0); // checksum
    F.label("loop");
    F.sys(SysFunc::GetChar);
    F.li(1, -1);
    F.cmpeq(1, 0, 1);
    F.bne(1, "eof");
    F.cmpulti(1, 0, 128);
    F.bne(1, "plain");
    F.mov(16, 0);
    F.call("rare"); // returns the transformed byte in r0
    F.label("plain");
    F.add(9, 9, 0);
    F.br("loop");
    F.label("eof");
    F.andi(16, 9, 255);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("rare");
    F.muli(0, 16, 3);
    F.xori(0, 0, 0x5a);
    for (int I = 0; I != 10; ++I)
      F.addi(0, 0, 1); // Padding so the function forms a real region.
    F.andi(0, 0, 255);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

std::vector<uint8_t> lowBytes(size_t N, uint8_t Seed) {
  std::vector<uint8_t> In;
  for (size_t I = 0; I != N; ++I)
    In.push_back(static_cast<uint8_t>((Seed + I * 7) % 128));
  return In;
}

std::vector<uint8_t> mixedBytes(size_t N) {
  std::vector<uint8_t> In;
  for (size_t I = 0; I != N; ++I)
    In.push_back(static_cast<uint8_t>(40 + I * 29)); // wraps past 128
  return In;
}

/// Profiles streamProgram's baseline on \p Input.
Profile profileOn(const Program &Prog, const std::vector<uint8_t> &Input) {
  Image Baseline = layoutProgram(Prog);
  return profileImage(Baseline, Input).take();
}

} // namespace

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

TEST(Metrics, CountersAndGauges) {
  MetricsRegistry R;
  EXPECT_TRUE(R.empty());
  R.setCounter("a", 7);
  R.addCounter("a", 3);
  R.setGauge("b", 0.5);
  EXPECT_EQ(R.size(), 2u);
  EXPECT_TRUE(R.has("a"));
  EXPECT_FALSE(R.has("c"));
  EXPECT_EQ(R.counter("a"), 10u);
  EXPECT_DOUBLE_EQ(R.gauge("b"), 0.5);
  // addCounter on a fresh name starts from zero.
  R.addCounter("c", 2);
  EXPECT_EQ(R.counter("c"), 2u);
}

TEST(Metrics, JsonIsValidAndInsertionOrdered) {
  MetricsRegistry R;
  R.setCounter("z.count", 1);
  R.setGauge("a.gauge", 2.25);
  // Names with quotes or control characters are rejected at the setter
  // (reject-not-sanitize, see validMetricName), so they can never reach
  // the JSON surface in the first place.
  EXPECT_FALSE(R.setCounter("quote\"key\n", 3));
  std::string J = R.toJson();
  EXPECT_TRUE(isValidJson(J)) << J;
  // Insertion order, not lexicographic: z before a.
  EXPECT_LT(J.find("z.count"), J.find("a.gauge"));
  EXPECT_EQ(J.find("quote"), std::string::npos) << J;
  EXPECT_EQ(R.size(), 2u);
}

TEST(Metrics, EmptyRegistryIsAnEmptyObject) {
  MetricsRegistry R;
  EXPECT_EQ(R.toJson(), "{}");
  EXPECT_TRUE(isValidJson(R.toJson()));
}

TEST(Metrics, HistogramsSerializeIntoJson) {
  MetricsRegistry R;
  Histogram H;
  H.record(3);
  H.record(3);
  H.record(9);
  R.setCounter("before", 1);
  R.setHistogram("run.lat", H);
  std::string J = R.toJson();
  EXPECT_TRUE(isValidJson(J)) << J;
  EXPECT_NE(J.find("\"run.lat\":{\"count\":3"), std::string::npos) << J;
  EXPECT_NE(J.find("\"buckets\":[[3,2],[9,1]]"), std::string::npos) << J;
}

//===----------------------------------------------------------------------===//
// Prometheus exposition
//===----------------------------------------------------------------------===//

TEST(Metrics, PrometheusExpositionStructure) {
  MetricsRegistry R;
  R.setCounter("run.traps", 12);
  R.setGauge("drift.score", 0.25);
  std::string P = R.toPrometheus();
  EXPECT_NE(P.find("# HELP run_traps squash metric run.traps\n"),
            std::string::npos)
      << P;
  EXPECT_NE(P.find("# TYPE run_traps counter\n"), std::string::npos) << P;
  EXPECT_NE(P.find("run_traps 12\n"), std::string::npos) << P;
  EXPECT_NE(P.find("# TYPE drift_score gauge\n"), std::string::npos) << P;
  EXPECT_NE(P.find("drift_score 0.25\n"), std::string::npos) << P;
  // The dotted original survives only in HELP text; sample lines carry
  // the underscored name, and insertion order is kept.
  std::istringstream In(P);
  std::string Line;
  while (std::getline(In, Line)) {
    if (!Line.empty() && Line[0] != '#') {
      EXPECT_EQ(Line.find("run.traps"), std::string::npos) << Line;
    }
  }
  EXPECT_LT(P.find("run_traps"), P.find("drift_score"));
  EXPECT_EQ(P.back(), '\n');
}

TEST(Metrics, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry R;
  Histogram H;
  H.record(1);
  H.record(1);
  H.record(8);
  R.setHistogram("trap.cycles", H);
  std::string P = R.toPrometheus();
  EXPECT_NE(P.find("# TYPE trap_cycles histogram\n"), std::string::npos)
      << P;
  // Buckets are cumulative with inclusive upper bounds: le="1" already
  // holds both 1-samples, le="8" everything, and +Inf closes the ladder.
  EXPECT_NE(P.find("trap_cycles_bucket{le=\"1\"} 2\n"), std::string::npos)
      << P;
  EXPECT_NE(P.find("trap_cycles_bucket{le=\"8\"} 3\n"), std::string::npos)
      << P;
  EXPECT_NE(P.find("trap_cycles_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << P;
  EXPECT_NE(P.find("trap_cycles_sum 10\n"), std::string::npos) << P;
  EXPECT_NE(P.find("trap_cycles_count 3\n"), std::string::npos) << P;
  // Cumulative counts never decrease down the ladder.
  uint64_t Prev = 0;
  std::istringstream In(P);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("trap_cycles_bucket", 0) != 0)
      continue;
    uint64_t N = std::stoull(Line.substr(Line.rfind(' ') + 1));
    EXPECT_GE(N, Prev) << Line;
    Prev = N;
  }
}

TEST(Metrics, PrometheusEmptyRegistryAndEmptyHistogram) {
  MetricsRegistry R;
  EXPECT_EQ(R.toPrometheus(), "");
  R.setHistogram("h", Histogram());
  std::string P = R.toPrometheus();
  // An empty histogram still exposes a complete (all-zero) ladder.
  EXPECT_NE(P.find("h_bucket{le=\"+Inf\"} 0\n"), std::string::npos) << P;
  EXPECT_NE(P.find("h_sum 0\n"), std::string::npos) << P;
  EXPECT_NE(P.find("h_count 0\n"), std::string::npos) << P;
}

//===----------------------------------------------------------------------===//
// Chrome-trace export + heat report
//===----------------------------------------------------------------------===//

TEST(Observability, ChromeTraceIsStructurallyValid) {
  Program Prog = streamProgram();
  Profile Prof = profileOn(Prog, lowBytes(64, 1));
  Options Opts;
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);

  SquashedRun Run = runSquashed(SR.SP, mixedBytes(64), 2'000'000'000ull,
                                RuntimeSystem::DefaultTraceCapacity);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  ASSERT_FALSE(Run.Trace.empty());

  std::string J = exportChromeTrace(Run.Trace, Run.TraceDropped);
  EXPECT_TRUE(isValidJson(J)) << J.substr(0, 200);
  EXPECT_NE(J.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"decompress\""), std::string::npos);

  // Timestamps are the machine cycle counts, nondecreasing oldest-first.
  for (size_t I = 1; I < Run.Trace.size(); ++I)
    EXPECT_LE(Run.Trace[I - 1].Cycle, Run.Trace[I].Cycle);
}

TEST(Observability, EmptyTraceExportsValidJson) {
  std::string J = exportChromeTrace({}, 5);
  EXPECT_TRUE(isValidJson(J)) << J;
  EXPECT_NE(J.find("\"dropped_events\":\"5\""), std::string::npos);
}

TEST(Observability, HeatReportAggregatesPerRegion) {
  using Event = RuntimeSystem::Event;
  std::vector<Event> Events = {
      {Event::Kind::EnterViaStub, 1, 0, 0, 10},
      {Event::Kind::Decompress, 1, 0, 0, 11},
      {Event::Kind::BufferedHit, 1, 0, 0, 20},
      {Event::Kind::Decompress, 2, 0, 0, 30},
      {Event::Kind::Evict, 1, 0, 0, 30},
      {Event::Kind::StubCreate, 7, 0, 1, 31}, // stub event: not region heat
      {Event::Kind::Decompress, 1, 0, 0, 40},
  };
  std::vector<RegionHeat> Report = buildRegionHeatReport(Events);
  ASSERT_EQ(Report.size(), 2u);
  // Sorted by decompressions descending: region 1 (2 fills) first.
  EXPECT_EQ(Report[0].Region, 1u);
  EXPECT_EQ(Report[0].Decompressions, 2u);
  EXPECT_EQ(Report[0].BufferedHits, 1u);
  EXPECT_EQ(Report[0].Evictions, 1u);
  EXPECT_EQ(Report[0].StubCalls, 1u);
  EXPECT_EQ(Report[0].FirstCycle, 10u);
  EXPECT_EQ(Report[0].LastCycle, 40u);
  EXPECT_EQ(Report[1].Region, 2u);
  EXPECT_EQ(Report[1].Decompressions, 1u);

  std::string Table = renderRegionHeatReport(Report);
  EXPECT_NE(Table.find("decompressions"), std::string::npos);
}

TEST(Observability, CollectCoversSquashAndRunCounters) {
  Program Prog = streamProgram();
  Profile Prof = profileOn(Prog, lowBytes(64, 1));
  Options Opts;
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);
  SquashedRun Run = runSquashed(SR.SP, mixedBytes(64), 2'000'000'000ull,
                                RuntimeSystem::DefaultTraceCapacity);

  MetricsRegistry Reg;
  collectSquashMetrics(Reg, SR);
  collectRunMetrics(Reg, Run);
  // One registry covers both squash-time and runtime counters.
  for (const char *Key :
       {"squash.time.total_seconds", "squash.cold.cold_instructions",
        "squash.regions.initial", "squash.buffersafe.functions",
        "squash.unswitch.unswitched", "footprint.total_code_bytes",
        "run.instructions", "run.cycles", "runtime.decompressions",
        "runtime.trace_events", "runtime.trace_dropped"})
    EXPECT_TRUE(Reg.has(Key)) << Key;
  EXPECT_TRUE(isValidJson(Reg.toJson()));
  EXPECT_EQ(Reg.counter("runtime.trace_events"), Run.Trace.size());
  EXPECT_GE(Reg.counter("runtime.decompressions"), 1u);
}

//===----------------------------------------------------------------------===//
// Profile persistence
//===----------------------------------------------------------------------===//

TEST(ProfileIO, SerializeParseRoundTrip) {
  Profile P;
  P.BlockCounts = {0, 3, 0, 12345678901234ull, 1};
  P.TotalInstructions = 999;
  Expected<Profile> Back = parseProfile(serializeProfile(P));
  ASSERT_TRUE(Back.ok()) << Back.status().toString();
  EXPECT_EQ(Back.get().BlockCounts, P.BlockCounts);
  EXPECT_EQ(Back.get().TotalInstructions, P.TotalInstructions);
}

TEST(ProfileIO, RejectsMalformedInput) {
  EXPECT_FALSE(parseProfile("").ok());
  EXPECT_FALSE(parseProfile("squash-profile v99\nblocks 1\ntotal 0\n").ok());
  const char *Good = "squash-profile v1\nblocks 2\ntotal 5\n";
  EXPECT_TRUE(parseProfile(Good).ok());
  EXPECT_FALSE(parseProfile(std::string(Good) + "2 1\n").ok()) << "id range";
  EXPECT_FALSE(parseProfile(std::string(Good) + "0 1\n0 2\n").ok())
      << "duplicate id";
  EXPECT_FALSE(parseProfile(std::string(Good) + "0 1 junk\n").ok());
  EXPECT_FALSE(parseProfile(std::string(Good) + "0 99999999999999999999\n")
                   .ok())
      << "count overflow";
  EXPECT_FALSE(parseProfile("squash-profile v1\nblocks -1\ntotal 0\n").ok());
}

TEST(ProfileIO, MergeSumsAndValidates) {
  Profile A, B;
  A.BlockCounts = {1, 2, 3};
  A.TotalInstructions = 6;
  B.BlockCounts = {10, 0, 30};
  B.TotalInstructions = 40;
  Expected<Profile> M = mergeProfiles({A, B});
  ASSERT_TRUE(M.ok());
  EXPECT_EQ(M.get().BlockCounts, (std::vector<uint64_t>{11, 2, 33}));
  EXPECT_EQ(M.get().TotalInstructions, 46u);

  EXPECT_FALSE(mergeProfiles({}).ok());
  Profile C;
  C.BlockCounts = {1};
  EXPECT_FALSE(mergeProfiles({A, C}).ok()) << "block count mismatch";
}

// The merge feeds the online re-squash path, so hostile or damaged
// profiles must die with a descriptive Status, never wrap around.
TEST(ProfileIO, MergeRejectsCountOverflow) {
  Profile A, B;
  A.BlockCounts = {UINT64_MAX - 1, 5};
  A.TotalInstructions = 10;
  B.BlockCounts = {2, 0};
  B.TotalInstructions = 2;
  Expected<Profile> M = mergeProfiles({A, B});
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.status().code(), StatusCode::InvalidArgument);
  EXPECT_NE(M.status().message().find("overflow"), std::string::npos)
      << M.status().toString();
}

TEST(ProfileIO, MergeRejectsInstructionTotalOverflow) {
  Profile A, B;
  A.BlockCounts = {1};
  A.TotalInstructions = UINT64_MAX - 1;
  B.BlockCounts = {1};
  B.TotalInstructions = 2;
  Expected<Profile> M = mergeProfiles({A, B});
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.status().code(), StatusCode::InvalidArgument);
  EXPECT_NE(M.status().message().find("overflow"), std::string::npos)
      << M.status().toString();
}

TEST(ProfileIO, ScaleRejectsHostileWeights) {
  Profile P;
  P.BlockCounts = {1, 2};
  P.TotalInstructions = 3;
  for (double W : {std::nan(""), std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(), -1.0, -0.25}) {
    Expected<Profile> S = scaleProfile(P, W);
    ASSERT_FALSE(S.ok()) << "weight " << W;
    EXPECT_EQ(S.status().code(), StatusCode::InvalidArgument);
  }
}

TEST(ProfileIO, ScaleRejectsOverflowingCounts) {
  Profile P;
  P.BlockCounts = {UINT64_MAX / 2};
  P.TotalInstructions = 10;
  Expected<Profile> S = scaleProfile(P, 4.0);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.status().code(), StatusCode::InvalidArgument);
  EXPECT_NE(S.status().message().find("overflow"), std::string::npos)
      << S.status().toString();

  Profile Q;
  Q.BlockCounts = {1};
  Q.TotalInstructions = UINT64_MAX / 2;
  Expected<Profile> S2 = scaleProfile(Q, 4.0);
  ASSERT_FALSE(S2.ok());
  EXPECT_EQ(S2.status().code(), StatusCode::InvalidArgument);
}

TEST(ProfileIO, ScaleRoundsHalfAwayLikeTheDriftRecipe) {
  Profile P;
  P.BlockCounts = {2, 3, 0};
  P.TotalInstructions = 10;
  Profile S = scaleProfile(P, 2.5).take();
  EXPECT_EQ(S.BlockCounts, (std::vector<uint64_t>{5, 8, 0}));
  EXPECT_EQ(S.TotalInstructions, 25u);
  // Weight 0 is legal (an empty contribution), unlike negative weights.
  Profile Z = scaleProfile(P, 0.0).take();
  EXPECT_EQ(Z.BlockCounts, (std::vector<uint64_t>{0, 0, 0}));
  EXPECT_EQ(Z.TotalInstructions, 0u);
}

TEST(ProfileIO, SaveLoadFileRoundTrip) {
  Profile P;
  P.BlockCounts = {5, 0, 7};
  P.TotalInstructions = 12;
  std::string Path = testing::TempDir() + "squash_profileio_test.prof";
  ASSERT_TRUE(saveProfileFile(P, Path).ok());
  Expected<Profile> Back = loadProfileFile(Path);
  ASSERT_TRUE(Back.ok()) << Back.status().toString();
  EXPECT_EQ(Back.get().BlockCounts, P.BlockCounts);
  EXPECT_EQ(Back.get().TotalInstructions, P.TotalInstructions);
  std::remove(Path.c_str());

  EXPECT_FALSE(loadProfileFile(Path + ".does-not-exist").ok());
}

TEST(ProfileIO, LoadedProfileSquashesByteIdentically) {
  Program Prog = streamProgram();
  Profile Prof = profileOn(Prog, lowBytes(64, 1));

  std::string Path = testing::TempDir() + "squash_profileio_image.prof";
  ASSERT_TRUE(saveProfileFile(Prof, Path).ok());
  Profile Loaded = loadProfileFile(Path).take();
  std::remove(Path.c_str());

  Options Opts;
  SquashResult Direct = squashProgram(Prog, Prof, Opts).take();
  SquashResult ViaFile = squashProgram(Prog, Loaded, Opts).take();
  ASSERT_FALSE(Direct.Identity);
  // The persisted profile carries everything the pipeline consumes: the
  // squashed images must match byte for byte.
  EXPECT_EQ(ViaFile.SP.Img.Bytes, Direct.SP.Img.Bytes);
  EXPECT_EQ(ViaFile.SP.Img.Base, Direct.SP.Img.Base);
  EXPECT_EQ(ViaFile.SP.Img.EntryPC, Direct.SP.Img.EntryPC);
}

TEST(ProfileIO, MergedProfileDrivesDifferentialRun) {
  Program Prog = streamProgram();
  // Two training inputs (the paper's Figure 5 cross-input setup), merged.
  Profile P1 = profileOn(Prog, lowBytes(48, 1));
  Profile P2 = profileOn(Prog, lowBytes(96, 3));
  Profile Merged = mergeProfiles({P1, P2}).take();
  EXPECT_EQ(Merged.TotalInstructions,
            P1.TotalInstructions + P2.TotalInstructions);

  Options Opts;
  SquashResult SR = squashProgram(Prog, Merged, Opts).take();
  ASSERT_FALSE(SR.Identity);

  // Differential check on an input neither profile saw: the squashed
  // program must agree with the baseline and hit the decompressor.
  std::vector<uint8_t> Eval = mixedBytes(80);
  Image Baseline = layoutProgram(Prog);
  Machine M(Baseline);
  M.setInput(Eval);
  RunResult Base = M.run();
  ASSERT_EQ(Base.Status, RunStatus::Halted);

  SquashedRun Run = runSquashed(SR.SP, Eval);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  EXPECT_EQ(Run.Run.ExitCode, Base.ExitCode);
  EXPECT_EQ(Run.Output, M.output());
  EXPECT_GE(Run.Runtime.Decompressions, 1u);
}

//===----------------------------------------------------------------------===//
// Trap-latency histograms
//===----------------------------------------------------------------------===//

TEST(Observability, TrapHistogramsMatchRunCounters) {
  Program Prog = streamProgram();
  Profile Prof = profileOn(Prog, lowBytes(64, 1));
  Options Opts;
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);
  SquashedRun Run = runSquashed(SR.SP, mixedBytes(64));
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  const RuntimeSystem::Stats &St = Run.Runtime;
  ASSERT_GE(St.Decompressions, 1u);

  // One decode-cycle sample per region fill; one trap-cycle sample per
  // successful trap; the sums are real cycle charges, so the percentile
  // ladder must be ordered and bracketed by min/max.
  EXPECT_EQ(St.DecodeCycles.count(), St.Decompressions);
  EXPECT_GE(St.TrapCycles.count(), St.Decompressions);
  EXPECT_GT(St.TrapCycles.sum(), 0u);
  for (const vea::Histogram *H :
       {&St.TrapCycles, &St.DecodeCycles, &St.HitStreaks}) {
    uint64_t P50 = H->percentile(50), P99 = H->percentile(99);
    EXPECT_LE(H->min(), P50);
    EXPECT_LE(P50, P99);
    EXPECT_LE(P99, H->max());
  }
  // Every fill terminates one (possibly zero-length) hit streak.
  EXPECT_EQ(St.HitStreaks.count(), St.Decompressions);

  // exportMetrics republishes the histograms under the runtime prefix.
  MetricsRegistry Reg;
  St.exportMetrics(Reg, "runtime.");
  const Histogram *H = Reg.histogram("runtime.trap_cycles");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->count(), St.TrapCycles.count());
  EXPECT_EQ(H->sum(), St.TrapCycles.sum());
  EXPECT_TRUE(isValidJson(Reg.toJson()));
}

//===----------------------------------------------------------------------===//
// Drift monitor
//===----------------------------------------------------------------------===//

namespace {

struct DriftSetup {
  SquashResult SR;
  Profile Prof;
};

DriftSetup squashForDrift(const Program &Prog,
                          const std::vector<uint8_t> &TrainInput) {
  DriftSetup S;
  S.Prof = profileOn(Prog, TrainInput);
  Options Opts;
  S.SR = squashProgram(Prog, S.Prof, Opts).take();
  return S;
}

} // namespace

TEST(Drift, MatchedRunScoresZero) {
  Program Prog = streamProgram();
  std::vector<uint8_t> Train = lowBytes(64, 1);
  DriftSetup S = squashForDrift(Prog, Train);
  ASSERT_FALSE(S.SR.Identity);

  // Replaying the training input: every live entry was predicted, so the
  // one-sided excess score is exactly zero (see DriftMonitor.h).
  DriftMonitor Mon(S.SR.SP, S.Prof);
  SquashedRun Run = runSquashed(S.SR.SP, Train, 2'000'000'000ull, 0, &Mon);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  DriftReport Rep = Mon.report();
  EXPECT_EQ(Rep.DriftScore, 0.0);
  EXPECT_EQ(Rep.RegionsTotal, static_cast<uint32_t>(S.SR.SP.Regions.size()));
  EXPECT_TRUE(Rep.MispredictedCold.empty());
}

TEST(Drift, CrossInputScoresPositive) {
  Program Prog = streamProgram();
  DriftSetup S = squashForDrift(Prog, lowBytes(64, 1));
  ASSERT_FALSE(S.SR.Identity);

  // mixedBytes drives >= 128 bytes through the "rare" function the
  // training profile called dead: its region's entries are pure excess.
  DriftMonitor Mon(S.SR.SP, S.Prof);
  SquashedRun Run =
      runSquashed(S.SR.SP, mixedBytes(64), 2'000'000'000ull, 0, &Mon);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  DriftReport Rep = Mon.report();
  EXPECT_GT(Rep.DriftScore, 0.0);
  EXPECT_LE(Rep.DriftScore, 1.0);
  EXPECT_GE(Rep.LiveEntries, 1u);
  ASSERT_FALSE(Rep.MispredictedCold.empty());
  // Ranked hottest-first, and the hottest mispredicted region had little
  // or no predicted heat.
  for (size_t I = 1; I < Rep.MispredictedCold.size(); ++I)
    EXPECT_GE(Rep.MispredictedCold[I - 1].LiveEntries,
              Rep.MispredictedCold[I].LiveEntries);
}

TEST(Drift, NoTrapsMeansNoDrift) {
  Program Prog = streamProgram();
  DriftSetup S = squashForDrift(Prog, lowBytes(64, 1));
  ASSERT_FALSE(S.SR.Identity);
  DriftMonitor Mon(S.SR.SP, S.Prof);
  DriftReport Rep = Mon.report(); // No run at all: nothing observed.
  EXPECT_EQ(Rep.DriftScore, 0.0);
  EXPECT_EQ(Rep.TopKOverlap, 1.0);
  EXPECT_EQ(Rep.LiveEntries, 0u);
  EXPECT_EQ(Rep.RegionsTouched, 0u);
}

TEST(Drift, ReportJsonIsDeterministicAndComplete) {
  Program Prog = streamProgram();
  DriftSetup S = squashForDrift(Prog, lowBytes(64, 1));
  ASSERT_FALSE(S.SR.Identity);

  // Two monitors observing two identical runs must render byte-identical
  // JSON — the property that makes drift reports diffable across runs.
  DriftMonitor A(S.SR.SP, S.Prof), B(S.SR.SP, S.Prof);
  SquashedRun R1 =
      runSquashed(S.SR.SP, mixedBytes(64), 2'000'000'000ull, 0, &A);
  SquashedRun R2 =
      runSquashed(S.SR.SP, mixedBytes(64), 2'000'000'000ull, 0, &B);
  ASSERT_EQ(R1.Run.Status, RunStatus::Halted);
  ASSERT_EQ(R2.Run.Status, RunStatus::Halted);
  std::string J = A.reportJson();
  EXPECT_EQ(J, B.reportJson());
  EXPECT_TRUE(isValidJson(J)) << J;
  for (const char *Key :
       {"\"live_entries\":", "\"live_restores\":", "\"live_fills\":",
        "\"live_charged_cycles\":", "\"regions_total\":",
        "\"regions_touched\":", "\"drift_score\":", "\"top_k_overlap\":",
        "\"normalized_cross_entropy\":", "\"mispredicted_cold\":["})
    EXPECT_NE(J.find(Key), std::string::npos) << Key << " missing in " << J;

  // reset() forgets live heat: back to the no-traps report.
  A.reset();
  EXPECT_EQ(A.report().LiveEntries, 0u);
  EXPECT_EQ(A.report().DriftScore, 0.0);
}

TEST(Drift, ExportMetricsPublishesAllScalars) {
  Program Prog = streamProgram();
  DriftSetup S = squashForDrift(Prog, lowBytes(64, 1));
  ASSERT_FALSE(S.SR.Identity);
  DriftMonitor Mon(S.SR.SP, S.Prof);
  SquashedRun Run =
      runSquashed(S.SR.SP, mixedBytes(64), 2'000'000'000ull, 0, &Mon);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted);
  DriftReport Rep = Mon.report();
  MetricsRegistry Reg;
  Rep.exportMetrics(Reg);
  for (const char *Key :
       {"drift.live_entries", "drift.live_restores", "drift.live_fills",
        "drift.live_charged_cycles", "drift.regions_total",
        "drift.regions_touched", "drift.mispredicted_cold", "drift.score",
        "drift.top_k_overlap", "drift.normalized_cross_entropy"})
    EXPECT_TRUE(Reg.has(Key)) << Key;
  EXPECT_EQ(Reg.counter("drift.live_entries"), Rep.LiveEntries);
  EXPECT_DOUBLE_EQ(Reg.gauge("drift.score"), Rep.DriftScore);
  EXPECT_TRUE(isValidJson(Reg.toJson()));
  // The same registry renders on the Prometheus surface too.
  EXPECT_NE(Reg.toPrometheus().find("# TYPE drift_score gauge"),
            std::string::npos);
}

TEST(Drift, LiveProfileMergesWithTraining) {
  Program Prog = streamProgram();
  DriftSetup S = squashForDrift(Prog, lowBytes(64, 1));
  ASSERT_FALSE(S.SR.Identity);
  DriftMonitor Mon(S.SR.SP, S.Prof);
  SquashedRun Run =
      runSquashed(S.SR.SP, mixedBytes(64), 2'000'000'000ull, 0, &Mon);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted);

  Profile Live = Mon.liveProfile();
  ASSERT_EQ(Live.BlockCounts.size(), S.Prof.BlockCounts.size());
  EXPECT_GT(Live.TotalInstructions, 0u);

  // Weight scales every credited count (and survives the v1 text format).
  Profile Boosted = Mon.liveProfile(3.0);
  for (size_t I = 0; I != Live.BlockCounts.size(); ++I)
    EXPECT_EQ(Boosted.BlockCounts[I], 3 * Live.BlockCounts[I]) << I;

  // The exported profile is mergeable with its training profile and
  // round-trips through ProfileIO — the merge-and-re-squash input path.
  Profile Merged = mergeProfiles({S.Prof, Live}).take();
  EXPECT_EQ(Merged.TotalInstructions,
            S.Prof.TotalInstructions + Live.TotalInstructions);
  Expected<Profile> Back = parseProfile(serializeProfile(Live));
  ASSERT_TRUE(Back.ok()) << Back.status().toString();
  EXPECT_EQ(Back.get().BlockCounts, Live.BlockCounts);

  // Re-squashing under the merged profile keeps the program correct on
  // the drifted input.
  Options Opts;
  SquashResult SR2 = squashProgram(Prog, Merged, Opts).take();
  SquashedRun Run2 = runSquashed(SR2.SP, mixedBytes(64));
  ASSERT_EQ(Run2.Run.Status, RunStatus::Halted) << Run2.Run.FaultMessage;
  EXPECT_EQ(Run2.Run.ExitCode, Run.Run.ExitCode);
  EXPECT_EQ(Run2.Output, Run.Output);
}

//===----------------------------------------------------------------------===//
// Bench row shape (BENCH_drift.json producers)
//===----------------------------------------------------------------------===//

TEST(Drift, BenchRowShapeIsValidJson) {
  // Mirrors bench/stat_drift.cpp's per-workload row: three drift exports
  // under distinct prefixes plus the recovery counters. The bench and this
  // test share the exportMetrics surface, so a key drifting there breaks
  // here first.
  Program Prog = streamProgram();
  DriftSetup S = squashForDrift(Prog, lowBytes(64, 1));
  ASSERT_FALSE(S.SR.Identity);
  DriftMonitor Same(S.SR.SP, S.Prof), Cross(S.SR.SP, S.Prof);
  SquashedRun RunA =
      runSquashed(S.SR.SP, lowBytes(64, 1), 2'000'000'000ull, 0, &Same);
  SquashedRun RunB =
      runSquashed(S.SR.SP, mixedBytes(64), 2'000'000'000ull, 0, &Cross);
  ASSERT_EQ(RunA.Run.Status, RunStatus::Halted);
  ASSERT_EQ(RunB.Run.Status, RunStatus::Halted);

  MetricsRegistry Reg;
  Same.report().exportMetrics(Reg, "drift.same.");
  Cross.report().exportMetrics(Reg, "drift.cross.");
  Reg.setCounter("drift.trap_cycles_before", RunB.Runtime.TrapCycles.sum());
  Reg.setGauge("drift.live_weight", 1.0);
  Reg.setHistogram("drift.cross.trap_cycles_hist", RunB.Runtime.TrapCycles);

  std::string J = Reg.toJson();
  EXPECT_TRUE(isValidJson(J)) << J;
  for (const char *Key : {"drift.same.score", "drift.cross.score",
                          "drift.trap_cycles_before", "drift.live_weight",
                          "drift.cross.trap_cycles_hist"})
    EXPECT_TRUE(Reg.has(Key)) << Key;
  // The matched run scores zero, the drifted one doesn't — the structural
  // core of stat_drift's acceptance check.
  EXPECT_EQ(Reg.gauge("drift.same.score"), 0.0);
  EXPECT_GT(Reg.gauge("drift.cross.score"), 0.0);
}
