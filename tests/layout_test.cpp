//===- tests/layout_test.cpp - Fetch model + profile-guided layout --------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The memory-aware fetch model (sim/Icache.h) and the profile-guided
// function layout seam: the tag-only I-cache's hit/miss/LRU/flush
// semantics, the explicit-order overload of link/Layout (identity must be
// byte-identical, non-permutations must be LayoutErrors, Image::Blocks
// must stay Cfg-id-indexed under any placement), the layout pass's
// determinism and byte-stability when off, and the end-to-end guarantee
// that placement never changes guest behaviour — only cycles.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "link/Layout.h"
#include "sim/Icache.h"
#include "squash/Driver.h"
#include "squash/Inspect.h"
#include "squash/LayoutPass.h"
#include "squash/Pipeline.h"
#include "squash/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace vea;
using namespace squash;

namespace {

/// A program with a hot call pair (main -> warm) separated in program
/// order by a cold function, plus enough cold code to squash. The layout
/// pass should pull main and warm together, so the computed order is
/// observably non-identity.
Program layoutProgram3() {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(9, 60);
    F.label("hot");
    F.li(16, 3);
    F.call("warm");
    F.subi(9, 9, 1);
    F.bne(9, "hot");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    // Blocks here are extended basic blocks (labels are the only split
    // points); give the guarded cold call its own block so its execution
    // count — zero on this input — is what the profile records.
    F.label("coldcall");
    F.call("cold");
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("cold");
    for (int I = 0; I != 24; ++I)
      F.addi(1, 1, 1);
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("warm");
    for (int I = 0; I != 10; ++I)
      F.addi(0, 16, 5);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

Profile profileFor(Program &Prog) {
  Image Baseline = layoutProgram(Prog);
  return profileImage(Baseline, {0}).take();
}

/// Runs \p Img to completion and returns (exit code, output).
std::pair<uint32_t, std::vector<uint8_t>> runImage(const Image &Img,
                                                   bool WithIcache = false) {
  Machine::Config Cfg;
  if (WithIcache) {
    Cfg.Icache.Enabled = true;
    Cfg.Icache.LineBytes = 16;
    Cfg.Icache.Sets = 8;
    Cfg.Icache.Ways = 1;
  }
  Machine M(Img, Cfg);
  M.setInput({0});
  RunResult R = M.run();
  EXPECT_EQ(R.Status, RunStatus::Halted) << R.FaultMessage;
  return {R.ExitCode, M.output()};
}

} // namespace

//===----------------------------------------------------------------------===//
// The tag-only cache model.
//===----------------------------------------------------------------------===//

TEST(Icache, MissThenHitAndLruEviction) {
  IcacheConfig C;
  C.Enabled = true;
  C.LineBytes = 16;
  C.Sets = 1; // Everything contends for one set.
  C.Ways = 2;
  C.MissCycles = 20;
  IcacheModel M(C);

  EXPECT_EQ(M.access(0x1000), 20u); // Cold miss.
  EXPECT_EQ(M.access(0x100C), 0u);  // Same line.
  EXPECT_EQ(M.access(0x2000), 20u); // Second way.
  EXPECT_EQ(M.access(0x1000), 0u);  // Both resident.
  EXPECT_EQ(M.access(0x3000), 20u); // Evicts LRU = 0x2000.
  EXPECT_EQ(M.access(0x1000), 0u);  // Survived (recently used).
  EXPECT_EQ(M.access(0x2000), 20u); // Re-misses after eviction.

  const IcacheStats &S = M.stats();
  EXPECT_EQ(S.Fetches, 7u);
  EXPECT_EQ(S.Misses, 4u);
  EXPECT_EQ(S.MissCycles, 80u);
  EXPECT_DOUBLE_EQ(S.missRate(), 4.0 / 7.0);
}

TEST(Icache, FlushRangeInvalidatesOnlyCoveredLines) {
  IcacheConfig C;
  C.LineBytes = 16;
  C.Sets = 8;
  C.Ways = 1;
  C.MissCycles = 5;
  IcacheModel M(C);

  M.access(0x1000);
  M.access(0x1010);
  M.access(0x1020);
  // Flush the middle line only (one byte inside it suffices).
  M.flushRange(0x1014, 4);
  EXPECT_EQ(M.access(0x1000), 0u); // Untouched.
  EXPECT_EQ(M.access(0x1010), 5u); // Invalidated.
  EXPECT_EQ(M.access(0x1020), 0u); // Untouched.
  EXPECT_EQ(M.stats().LinesFlushed, 1u);
  EXPECT_EQ(M.stats().RangeFlushes, 1u);

  // A zero-length flush touches nothing.
  M.flushRange(0x1000, 0);
  EXPECT_EQ(M.access(0x1000), 0u);

  M.flushAll();
  EXPECT_EQ(M.access(0x1000), 5u);
}

TEST(Icache, GeometryIsNormalizedToPowersOfTwo) {
  IcacheConfig C;
  C.LineBytes = 24; // -> 32
  C.Sets = 3;       // -> 4
  C.Ways = 0;       // -> 1
  IcacheModel M(C);
  EXPECT_EQ(M.config().LineBytes, 32u);
  EXPECT_EQ(M.config().Sets, 4u);
  EXPECT_EQ(M.config().Ways, 1u);

  IcacheConfig Z; // Degenerate zeros all clamp to minima.
  Z.LineBytes = 0;
  Z.Sets = 0;
  Z.Ways = 0;
  IcacheModel MZ(Z);
  EXPECT_EQ(MZ.config().LineBytes, 4u);
  EXPECT_EQ(MZ.config().Sets, 1u);
  EXPECT_EQ(MZ.config().Ways, 1u);
}

TEST(Icache, MachineModelChangesOnlyCycles) {
  Program Prog = layoutProgram3();
  Image Img = layoutProgram(Prog);

  Machine::Config Plain;
  Machine MP(Img, Plain);
  MP.setInput({0});
  RunResult RP = MP.run();
  ASSERT_EQ(RP.Status, RunStatus::Halted);
  EXPECT_EQ(RP.IcacheFetches, 0u); // Model off: no counters.

  Machine::Config Modeled;
  Modeled.Icache.Enabled = true;
  Modeled.Icache.LineBytes = 16;
  Modeled.Icache.Sets = 4;
  Modeled.Icache.Ways = 1;
  Machine MI(Img, Modeled);
  MI.setInput({0});
  RunResult RI = MI.run();
  ASSERT_EQ(RI.Status, RunStatus::Halted);

  // Tag-only: identical architectural outcome...
  EXPECT_EQ(RI.ExitCode, RP.ExitCode);
  EXPECT_EQ(MI.output(), MP.output());
  EXPECT_EQ(RI.Instructions, RP.Instructions);
  // ...but every fetch is observed and misses cost cycles.
  EXPECT_EQ(RI.IcacheFetches, RI.Instructions);
  EXPECT_GT(RI.IcacheMisses, 0u);
  EXPECT_EQ(RI.Cycles, RP.Cycles + RI.IcacheMissCycles);
}

//===----------------------------------------------------------------------===//
// link/Layout's explicit function order.
//===----------------------------------------------------------------------===//

TEST(LayoutOrder, IdentityIsByteIdentical) {
  Program Prog = layoutProgram3();
  Image Plain = layoutProgramOrError(Prog, DefaultBase).take();
  Image Empty = layoutProgramOrError(Prog, DefaultBase, {}).take();
  Image Explicit =
      layoutProgramOrError(Prog, DefaultBase, {0, 1, 2}).take();

  EXPECT_EQ(Plain.Bytes, Empty.Bytes);
  EXPECT_EQ(Plain.Bytes, Explicit.Bytes);
  EXPECT_EQ(Plain.EntryPC, Explicit.EntryPC);
  ASSERT_EQ(Plain.Blocks.size(), Explicit.Blocks.size());
  for (size_t B = 0; B != Plain.Blocks.size(); ++B) {
    EXPECT_EQ(Plain.Blocks[B].Addr, Explicit.Blocks[B].Addr) << B;
    EXPECT_EQ(Plain.Blocks[B].SizeWords, Explicit.Blocks[B].SizeWords) << B;
  }
}

TEST(LayoutOrder, PermutationMovesFunctionsNotBehaviour) {
  Program Prog = layoutProgram3();
  Image Id = layoutProgramOrError(Prog, DefaultBase).take();
  Image Perm = layoutProgramOrError(Prog, DefaultBase, {2, 0, 1}).take();

  // "warm" now leads the image; "main" follows it.
  EXPECT_EQ(Perm.symbol("warm"), DefaultBase);
  EXPECT_GT(Perm.symbol("main"), Perm.symbol("warm"));
  EXPECT_GT(Perm.symbol("cold"), Perm.symbol("main"));
  EXPECT_EQ(Perm.EntryPC, Perm.symbol("main"));
  EXPECT_EQ(Perm.Bytes.size(), Id.Bytes.size());

  // Image::Blocks stays Cfg-id-indexed: block 0 is main's entry block at
  // main's (moved) address, wherever main was placed.
  Cfg G(Prog);
  ASSERT_EQ(Perm.Blocks.size(), G.numBlocks());
  EXPECT_EQ(Perm.Blocks[G.entryBlock(0)].Addr, Perm.symbol("main"));
  EXPECT_EQ(Perm.Blocks[G.entryBlock(1)].Addr, Perm.symbol("cold"));
  EXPECT_EQ(Perm.Blocks[G.entryBlock(2)].Addr, Perm.symbol("warm"));

  // Same architectural behaviour, with and without the cache model.
  EXPECT_EQ(runImage(Id), runImage(Perm));
  EXPECT_EQ(runImage(Id, true), runImage(Perm, true));
}

TEST(LayoutOrder, NonPermutationsAreLayoutErrors) {
  Program Prog = layoutProgram3();
  for (const std::vector<unsigned> &Bad :
       {std::vector<unsigned>{0, 1},          // Too short.
        std::vector<unsigned>{0, 1, 2, 2},    // Too long.
        std::vector<unsigned>{0, 1, 1},       // Duplicate.
        std::vector<unsigned>{0, 1, 7}}) {    // Out of range.
    Expected<Image> R = layoutProgramOrError(Prog, DefaultBase, Bad);
    ASSERT_FALSE(R.ok()) << "order size " << Bad.size();
    EXPECT_EQ(R.status().code(), StatusCode::LayoutError);
  }
}

//===----------------------------------------------------------------------===//
// The layout pass.
//===----------------------------------------------------------------------===//

TEST(LayoutPass, ComputedOrderIsADeterministicPermutation) {
  Program Prog = layoutProgram3();
  Profile Prof = profileFor(Prog);
  Cfg G(Prog);

  std::vector<unsigned> A = computeFunctionLayout(G, Prof);
  std::vector<unsigned> B = computeFunctionLayout(G, Prof);
  EXPECT_EQ(A, B);

  std::vector<unsigned> Sorted = A;
  std::sort(Sorted.begin(), Sorted.end());
  std::vector<unsigned> Identity(G.numFunctions());
  for (unsigned F = 0; F != G.numFunctions(); ++F)
    Identity[F] = F;
  EXPECT_EQ(Sorted, Identity);

  // The hot call pair (main -> warm) lands adjacent, ahead of cold code.
  ASSERT_EQ(A.size(), 3u);
  EXPECT_EQ(A[0], 0u); // main
  EXPECT_EQ(A[1], 2u); // warm, pulled next to its hot caller
  EXPECT_EQ(A[2], 1u); // cold last
}

TEST(LayoutPass, EmptyProfileYieldsIdentity) {
  Program Prog = layoutProgram3();
  Cfg G(Prog);
  Profile Empty;
  Empty.BlockCounts.assign(G.numBlocks(), 0);
  std::vector<unsigned> Order = computeFunctionLayout(G, Empty);
  ASSERT_EQ(Order.size(), 3u);
  for (unsigned F = 0; F != 3; ++F)
    EXPECT_EQ(Order[F], F);
}

TEST(LayoutPass, OffIsByteStableAgainstDisabledPass) {
  Program Prog = layoutProgram3();
  Profile Prof = profileFor(Prog);

  Options Default;
  Default.Theta = 1.0;
  SquashResult A = squashProgram(Prog, Prof, Default).take();

  Options Disabled;
  Disabled.Theta = 1.0;
  Disabled.DisabledPasses = {"layout"};
  SquashResult B = squashProgram(Prog, Prof, Disabled).take();

  EXPECT_EQ(A.SP.Img.Bytes, B.SP.Img.Bytes);
  EXPECT_TRUE(A.SP.FuncLayout.empty());
}

TEST(LayoutPass, OnReordersHotHalfAndPreservesBehaviour) {
  Program Prog = layoutProgram3();
  Profile Prof = profileFor(Prog);

  Options Off;
  Off.Theta = 1.0;
  SquashResult SOff = squashProgram(Prog, Prof, Off).take();

  Options On = Off;
  On.ProfileLayout = true;
  SquashResult SOn = squashProgram(Prog, Prof, On).take();

  // The pass recorded a non-identity placement for the inspector.
  ASSERT_FALSE(SOn.SP.FuncLayout.empty());
  EXPECT_EQ(SOn.SP.FuncLayout.size(), 3u);
  EXPECT_EQ(SOn.SP.FuncLayout[1].Name, "warm");

  // And the inspector renders it: one row per function with its placed
  // address; the layout-off image reports identity instead.
  std::string Table = formatFunctionLayout(SOn.SP);
  EXPECT_NE(Table.find("warm"), std::string::npos) << Table;
  EXPECT_NE(Table.find("cold"), std::string::npos) << Table;
  EXPECT_NE(formatFunctionLayout(SOff.SP).find("identity"),
            std::string::npos);

  SquashedRun ROff = runSquashed(SOff.SP, {0});
  SquashedRun ROn = runSquashed(SOn.SP, {0});
  ASSERT_EQ(ROff.Run.Status, RunStatus::Halted);
  ASSERT_EQ(ROn.Run.Status, RunStatus::Halted);
  EXPECT_EQ(ROn.Run.ExitCode, ROff.Run.ExitCode);
  EXPECT_EQ(ROn.Output, ROff.Output);

  // With the modeled cache the ledger still conserves, on both arms.
  for (Options *O : {&Off, &On}) {
    O->Icache.Enabled = true;
    O->Icache.Sets = 8;
    O->Icache.Ways = 1;
    SquashResult SR = squashProgram(Prog, Prof, *O).take();
    SquashedRun R = runSquashed(SR.SP, {0});
    EXPECT_EQ(R.Run.Status, RunStatus::Halted);
    EXPECT_EQ(R.Output, ROff.Output);
    CycleLedger L = buildCycleLedger(R);
    EXPECT_TRUE(L.conserves())
        << "attributed " << L.attributed() << " of " << L.Total;
  }
}

TEST(LayoutPass, RewriteRejectsBadExplicitOrder) {
  Program Prog = layoutProgram3();
  Profile Prof = profileFor(Prog);
  Options Opts;
  Opts.Theta = 1.0;

  SquashResult R;
  PipelineContext Ctx(Prog, Prof, Opts, R);
  PassManager PM;
  buildStandardPipeline(PM);
  ASSERT_TRUE(PM.runUntil(Ctx, "codec-select").ok());

  Expected<SquashedProgram> Bad =
      rewriteProgram(Ctx.program(), Ctx.cfg(), Ctx.Part, Ctx.BufferSafeFuncs,
                     Opts, CodecPlan(), {1, 1, 0});
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), StatusCode::InvalidArgument);

  // The identity order, passed explicitly, is byte-identical to no order.
  Expected<SquashedProgram> A = rewriteProgram(
      Ctx.program(), Ctx.cfg(), Ctx.Part, Ctx.BufferSafeFuncs, Opts);
  Expected<SquashedProgram> B =
      rewriteProgram(Ctx.program(), Ctx.cfg(), Ctx.Part, Ctx.BufferSafeFuncs,
                     Opts, CodecPlan(), {0, 1, 2});
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(A.get().Img.Bytes, B.get().Img.Bytes);
}
