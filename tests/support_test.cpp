//===- tests/support_test.cpp - Bit I/O and RNG tests ---------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "support/BitStream.h"
#include "support/Metrics.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

using namespace vea;

TEST(BitStream, SingleBits) {
  BitWriter W;
  W.writeBit(1);
  W.writeBit(0);
  W.writeBit(1);
  EXPECT_EQ(W.bitSize(), 3u);
  EXPECT_EQ(W.byteSize(), 1u);
  EXPECT_EQ(W.bytes()[0], 0xA0); // 101 in the top bits, MSB-first.

  BitReader R(W.bytes());
  EXPECT_EQ(R.readBit(), 1u);
  EXPECT_EQ(R.readBit(), 0u);
  EXPECT_EQ(R.readBit(), 1u);
}

TEST(BitStream, MultiBitMsbFirst) {
  BitWriter W;
  W.writeBits(0b1011, 4);
  W.writeBits(0xFF, 8);
  W.writeBits(0, 4);
  BitReader R(W.bytes());
  EXPECT_EQ(R.readBits(4), 0b1011u);
  EXPECT_EQ(R.readBits(8), 0xFFu);
  EXPECT_EQ(R.readBits(4), 0u);
}

TEST(BitStream, RoundTripRandomChunks) {
  Rng Rand(42);
  std::vector<std::pair<uint64_t, unsigned>> Chunks;
  BitWriter W;
  for (int I = 0; I != 2000; ++I) {
    unsigned Bits = 1 + static_cast<unsigned>(Rand.nextBelow(32));
    uint64_t Value = Rand.next() & ((Bits == 64 ? 0 : (1ull << Bits)) - 1);
    Chunks.push_back({Value, Bits});
    W.writeBits(Value, Bits);
  }
  BitReader R(W.bytes());
  for (auto &[Value, Bits] : Chunks)
    ASSERT_EQ(R.readBits(Bits), Value);
  EXPECT_FALSE(R.overran());
}

TEST(BitStream, SeekBit) {
  BitWriter W;
  W.writeBits(0xAB, 8);
  W.writeBits(0xCD, 8);
  BitReader R(W.bytes());
  R.seekBit(8);
  EXPECT_EQ(R.readBits(8), 0xCDu);
  R.seekBit(0);
  EXPECT_EQ(R.readBits(8), 0xABu);
}

TEST(BitStream, OverrunReadsZeroAndFlags) {
  BitWriter W;
  W.writeBits(0x7, 3);
  BitReader R(W.bytes());
  R.readBits(8); // Byte padded with zeros.
  EXPECT_EQ(R.readBit(), 0u);
  EXPECT_TRUE(R.overran());
}

TEST(BitStream, ByteAlignment) {
  BitWriter W;
  W.writeBits(1, 1);
  W.alignToByte();
  W.writeBits(0xFF, 8);
  EXPECT_EQ(W.byteSize(), 2u);
  BitReader R(W.bytes());
  R.seekBit(8);
  EXPECT_EQ(R.readBits(8), 0xFFu);
}

TEST(Rng, Deterministic) {
  Rng A(7), B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BoundsRespected) {
  Rng R(99);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(Rng, SplitIndependence) {
  Rng A(7);
  Rng B = A.split();
  EXPECT_NE(A.next(), B.next());
}

// A metric's kind is fixed by the call that created it: later writes of a
// different kind must be rejected without disturbing the stored value.
// (In debug builds the same misuse also trips an assert; the bool contract
// below is what release builds — and callers that check — rely on.)
#ifdef NDEBUG
TEST(Metrics, KindIsSticky) {
  MetricsRegistry R;
  ASSERT_TRUE(R.setCounter("c", 7));
  EXPECT_FALSE(R.setGauge("c", 1.5));
  EXPECT_FALSE(R.setHistogram("c", Histogram()));
  EXPECT_EQ(R.kind("c"), MetricsRegistry::Kind::Counter);
  EXPECT_EQ(R.counter("c"), 7u);

  ASSERT_TRUE(R.setGauge("g", 2.5));
  EXPECT_FALSE(R.setCounter("g", 3));
  EXPECT_FALSE(R.addCounter("g", 3));
  EXPECT_EQ(R.gauge("g"), 2.5);

  Histogram H;
  H.record(5);
  ASSERT_TRUE(R.setHistogram("h", H));
  EXPECT_FALSE(R.setGauge("h", 0.0));
  ASSERT_NE(R.histogram("h"), nullptr);
  EXPECT_EQ(R.histogram("h")->count(), 1u);

  // Same-kind overwrites stay allowed.
  EXPECT_TRUE(R.setCounter("c", 9));
  EXPECT_EQ(R.counter("c"), 9u);
  EXPECT_EQ(R.size(), 3u);
}
#else
TEST(MetricsDeathTest, KindConflictAssertsInDebug) {
  MetricsRegistry R;
  ASSERT_TRUE(R.setCounter("c", 7));
  EXPECT_DEATH(R.setGauge("c", 1.5), "different kind");
}
#endif

TEST(Metrics, WrongKindAccessorsDegradeToZero) {
  MetricsRegistry R;
  R.setCounter("c", 7);
  R.setGauge("g", 2.5);
  EXPECT_EQ(R.gauge("c"), 0.0);
  EXPECT_EQ(R.counter("g"), 0u);
  EXPECT_EQ(R.histogram("c"), nullptr);
  EXPECT_FALSE(R.has("missing"));
  EXPECT_EQ(R.histogram("missing"), nullptr);
}

TEST(Metrics, GaugeJsonRoundTripsAtFullPrecision) {
  MetricsRegistry R;
  const double V = 0.1234567890123456789; // Needs all 17 significant digits.
  R.setGauge("g", V);
  std::string J = R.toJson();
  std::string Expect = "\"g\":" + formatGauge(V);
  EXPECT_NE(J.find(Expect), std::string::npos) << J;
  EXPECT_EQ(std::stod(formatGauge(V)), V); // %.17g round-trips exactly.
  EXPECT_EQ(formatGauge(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(formatGauge(std::nan("")), "0");
}

TEST(Metrics, PrometheusNameSanitization) {
  EXPECT_EQ(prometheusName("run.trap_cycles"), "run_trap_cycles");
  EXPECT_EQ(prometheusName("9lives"), "_9lives");
  EXPECT_EQ(prometheusName("a-b c"), "a_b_c");
}
