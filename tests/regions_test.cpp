//===- tests/regions_test.cpp - Section 4 region formation tests ----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "squash/BufferSafe.h"
#include "squash/Regions.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace vea;
using namespace squash;

/// A program with one hot function and several cold helper functions of
/// the given sizes (instructions each, straight-line).
static Program hotAndCold(const std::vector<unsigned> &ColdSizes) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    for (size_t I = 0; I != ColdSizes.size(); ++I)
      F.call("cold" + std::to_string(I));
    F.li(16, 0);
    F.halt();
  }
  for (size_t I = 0; I != ColdSizes.size(); ++I) {
    FunctionBuilder F = PB.beginFunction("cold" + std::to_string(I));
    for (unsigned K = 0; K + 1 < ColdSizes[I]; ++K)
      F.addi(1, 1, 1);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

/// Marks every block except main's as compressible.
static std::vector<uint8_t> allColdButMain(const Cfg &G) {
  std::vector<uint8_t> U(G.numBlocks(), 1);
  U[G.idOf("main")] = 0;
  return U;
}

TEST(Regions, PartitionInvariants) {
  Program P = hotAndCold({30, 40, 50, 60, 10, 10, 10});
  Cfg G(P);
  Options Opts;
  Opts.BufferBoundBytes = 256; // 64 instructions
  RegionStats Stats;
  Partition Part = formRegions(G, allColdButMain(G), Opts, &Stats).take();

  // Every block is in at most one region; RegionOf is consistent.
  std::unordered_set<unsigned> Seen;
  for (size_t R = 0; R != Part.Regions.size(); ++R) {
    uint32_t Words = 0;
    for (unsigned B : Part.Regions[R].Blocks) {
      EXPECT_TRUE(Seen.insert(B).second) << "block in two regions";
      EXPECT_EQ(Part.RegionOf[B], static_cast<int32_t>(R));
      Words += G.block(B).size();
    }
    // The K bound holds for every region.
    EXPECT_LE(Words, Opts.BufferBoundBytes / 4);
    // Region blocks are sorted by id (original order).
    EXPECT_TRUE(std::is_sorted(Part.Regions[R].Blocks.begin(),
                               Part.Regions[R].Blocks.end()));
  }
  // Never-compressed blocks have RegionOf == -1.
  EXPECT_EQ(Part.RegionOf[G.idOf("main")], -1);
  EXPECT_GT(Stats.PackedRegions, 0u);
}

TEST(Regions, OnlyCandidatesCompressed) {
  Program P = hotAndCold({20, 20});
  Cfg G(P);
  std::vector<uint8_t> U(G.numBlocks(), 0);
  U[G.idOf("cold1")] = 1;
  Options Opts;
  Partition Part = formRegions(G, U, Opts, nullptr).take();
  for (unsigned B = 0; B != G.numBlocks(); ++B) {
    if (!U[B]) {
      EXPECT_EQ(Part.RegionOf[B], -1);
    }
  }
}

TEST(Regions, UnprofitableTinyBlocksRejected) {
  // A 2-instruction function costs a 2-word entry stub; at gamma = 0.66
  // the savings (0.34 * 2) never beat the stub, so no region forms.
  Program P = hotAndCold({2});
  Cfg G(P);
  Options Opts;
  RegionStats Stats;
  Partition Part = formRegions(G, allColdButMain(G), Opts, &Stats).take();
  EXPECT_TRUE(Part.Regions.empty());
  EXPECT_GT(Stats.RejectedRoots, 0u);
}

TEST(Regions, PackingMergesSmallRegions) {
  std::vector<unsigned> Sizes(12, 12); // Twelve small functions.
  Program P = hotAndCold(Sizes);
  Cfg G(P);
  Options NoPack;
  NoPack.PackRegions = false;
  RegionStats S1;
  formRegions(G, allColdButMain(G), NoPack, &S1).take();

  Options Pack;
  Pack.PackRegions = true;
  RegionStats S2;
  Partition Part = formRegions(G, allColdButMain(G), Pack, &S2).take();

  EXPECT_LT(S2.PackedRegions, S1.PackedRegions);
  EXPECT_GT(S2.Merges, 0u);
  // Packed regions still respect the K bound.
  for (const auto &R : Part.Regions)
    EXPECT_LE(R.sizeWords(G), Pack.BufferBoundBytes / 4);
  // The same blocks are compressed either way.
  EXPECT_EQ(S1.CompressibleInstructions, S2.CompressibleInstructions);
}

TEST(Regions, BufferBoundSplitsLargeFunction) {
  // One 200-instruction function under K = 128 bytes (32 instructions)
  // must split across several regions... but a straight-line function is
  // one block, which exceeds K and cannot be placed at all.
  Program P = hotAndCold({200});
  Cfg G(P);
  Options Opts;
  Opts.BufferBoundBytes = 128;
  Partition Part = formRegions(G, allColdButMain(G), Opts, nullptr).take();
  EXPECT_TRUE(Part.Regions.empty());

  // With blocks smaller than K, the function splits into multiple regions.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.call("big");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("big");
    for (int B = 0; B != 10; ++B) {
      if (B != 0)
        F.label("b" + std::to_string(B));
      for (int I = 0; I != 19; ++I)
        F.addi(1, 1, 1);
    }
    F.ret();
  }
  PB.setEntry("main");
  Program P2 = PB.build();
  Cfg G2(P2);
  std::vector<uint8_t> U(G2.numBlocks(), 1);
  U[G2.idOf("main")] = 0;
  Partition Part2 = formRegions(G2, U, Opts, nullptr).take();
  EXPECT_GE(Part2.Regions.size(), 2u);
}

TEST(Regions, EntryPointsIncludeCallersBranchesAndAddressTaken) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.call("f");
    F.la(1, "g"); // g's address escapes.
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("f");
    F.li(1, 1);
    F.label("inner"); // Only reached from inside f.
    F.subi(1, 1, 1);
    F.bne(1, "inner");
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("g");
    F.ret();
  }
  PB.setEntry("main");
  Program P = PB.build();
  Cfg G(P);

  std::vector<int32_t> RegionOf(G.numBlocks(), -1);
  std::vector<unsigned> Blocks = {G.idOf("f"), G.idOf("f.inner"),
                                  G.idOf("g")};
  for (unsigned B : Blocks)
    RegionOf[B] = 0;
  std::vector<unsigned> Entries = regionEntryPoints(G, Blocks, RegionOf, 0);
  std::unordered_set<unsigned> E(Entries.begin(), Entries.end());
  EXPECT_TRUE(E.count(G.idOf("f")));       // called from outside
  EXPECT_TRUE(E.count(G.idOf("g")));       // address taken
  EXPECT_FALSE(E.count(G.idOf("f.inner"))); // purely internal
}

TEST(BufferSafe, SeedsAndPropagation) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.call("callsCold");
    F.call("leaf");
    F.call("indirect");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("callsCold");
    F.call("coldfn");
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("coldfn");
    for (int I = 0; I != 20; ++I)
      F.addi(1, 1, 1);
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("leaf");
    F.addi(0, 16, 1);
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("indirect");
    F.la(1, "tab");
    F.ldw(1, 1, 0);
    F.callIndirect(1);
    F.ret();
  }
  PB.addSymbolTable("tab", {"leaf"});
  PB.setEntry("main");
  Program P = PB.build();
  Cfg G(P);

  // Compress coldfn only.
  std::vector<uint8_t> U(G.numBlocks(), 0);
  U[G.idOf("coldfn")] = 1;
  Options Opts;
  Partition Part = formRegions(G, U, Opts, nullptr).take();
  ASSERT_EQ(Part.Regions.size(), 1u);

  BufferSafeStats Stats;
  std::vector<uint8_t> Safe = analyzeBufferSafe(G, Part, &Stats);
  auto FuncIdx = [&](const char *Name) {
    return G.functionOf(G.idOf(Name));
  };
  EXPECT_FALSE(Safe[FuncIdx("coldfn")]);    // compressed
  EXPECT_FALSE(Safe[FuncIdx("callsCold")]); // calls compressed code
  EXPECT_FALSE(Safe[FuncIdx("main")]);      // transitively unsafe
  EXPECT_TRUE(Safe[FuncIdx("leaf")]);       // pure leaf
  EXPECT_FALSE(Safe[FuncIdx("indirect")]);  // indirect call
  EXPECT_EQ(Stats.Functions, 5u);
  EXPECT_EQ(Stats.SafeFunctions, 1u);
}

TEST(Regions, InvariantsHoldAfterPackingAndRenumbering) {
  // Many small functions force the packer to merge and renumber regions;
  // the partition invariants must survive that rewrite.
  std::vector<unsigned> Sizes(16, 10);
  Program P = hotAndCold(Sizes);
  Cfg G(P);
  Options Opts;
  Opts.PackRegions = true;
  Opts.BufferBoundBytes = 128; // 32 instructions: several merges per region
  RegionStats Stats;
  Partition Part = formRegions(G, allColdButMain(G), Opts, &Stats).take();
  ASSERT_GT(Stats.Merges, 0u);

  // RegionOf maps into live regions only, and every region id is the
  // block's back-pointer: the two views agree exactly.
  std::unordered_set<unsigned> InSomeRegion;
  for (size_t R = 0; R != Part.Regions.size(); ++R) {
    EXPECT_FALSE(Part.Regions[R].Blocks.empty()) << "empty region survived";
    EXPECT_TRUE(std::is_sorted(Part.Regions[R].Blocks.begin(),
                               Part.Regions[R].Blocks.end()));
    for (unsigned B : Part.Regions[R].Blocks) {
      EXPECT_TRUE(InSomeRegion.insert(B).second) << "block in two regions";
      EXPECT_EQ(Part.RegionOf[B], static_cast<int32_t>(R));
    }
    EXPECT_LE(Part.Regions[R].sizeWords(G), Opts.BufferBoundBytes / 4);
  }
  for (unsigned B = 0; B != G.numBlocks(); ++B) {
    if (Part.RegionOf[B] < 0) {
      EXPECT_EQ(InSomeRegion.count(B), 0u);
    } else {
      ASSERT_LT(static_cast<size_t>(Part.RegionOf[B]), Part.Regions.size())
          << "RegionOf points past the live region list";
      EXPECT_EQ(InSomeRegion.count(B), 1u);
    }
  }
}

TEST(Regions, WholeFunctionRegionsAblation) {
  std::vector<unsigned> Sizes(6, 20);
  Program P = hotAndCold(Sizes);
  Cfg G(P);
  Options Whole;
  Whole.WholeFunctionRegions = true;
  RegionStats Stats;
  Partition Part = formRegions(G, allColdButMain(G), Whole, &Stats).take();
  ASSERT_FALSE(Part.Regions.empty());

  // The strawman forms one region per fully-cold function: no region may
  // span functions, and every block of a compressed function is in it.
  for (size_t R = 0; R != Part.Regions.size(); ++R) {
    unsigned Func = G.functionOf(Part.Regions[R].Blocks.front());
    for (unsigned B : Part.Regions[R].Blocks) {
      EXPECT_EQ(G.functionOf(B), Func) << "region spans functions";
      EXPECT_EQ(Part.RegionOf[B], static_cast<int32_t>(R));
    }
  }
  for (unsigned B = 0; B != G.numBlocks(); ++B) {
    if (Part.RegionOf[B] < 0)
      continue;
    for (unsigned Other = 0; Other != G.numBlocks(); ++Other) {
      if (G.functionOf(Other) == G.functionOf(B)) {
        EXPECT_EQ(Part.RegionOf[Other], Part.RegionOf[B])
            << "partial function compressed under WholeFunctionRegions";
      }
    }
  }

  // The ablation compresses the same straight-line functions the paper's
  // scheme would here, so both schemes agree on the compressed block set.
  Options Default;
  RegionStats DefStats;
  formRegions(G, allColdButMain(G), Default, &DefStats).take();
  EXPECT_EQ(Stats.CompressibleInstructions, DefStats.CompressibleInstructions);
}
