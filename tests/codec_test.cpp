//===- tests/codec_test.cpp - Codec plurality tests -----------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The Codec interface contract and the codec-select pass built on it:
// pattern and context coders round-trip exactly and deterministically,
// their trial measurement (measureRegion) agrees bit-for-bit with the real
// encoder and work-for-work with the real decoder (the property the
// selection objective and the runtime cost charge both rest on), damaged
// side tables are rejected by validate(), per-region auto-selection is
// never worse than always-Huffman on the modeled objective, and — the
// size-accounting regression — the footprint breakdown's totals equal the
// on-disk image bytes under every codec, with the compressed charge equal
// to the byte ceiling of the measured table + payload bits.
//
//===----------------------------------------------------------------------===//

#include "compact/Compact.h"
#include "huff/ContextCodec.h"
#include "huff/PatternCodec.h"
#include "link/Layout.h"
#include "squash/CodecSelect.h"
#include "squash/Driver.h"
#include "squash/Observability.h"
#include "support/Random.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;

namespace {

/// Generates a random legal instruction.
MInst randomInst(Rng &R) {
  Opcode Op;
  do {
    Op = static_cast<Opcode>(1 + R.nextBelow(NumOpcodes - 1));
  } while (!opcodeInfo(Op).IsLegal && Op != Opcode::Bsrx);
  const FormatLayout &Layout = formatLayout(formatOf(Op));
  MInst I(Op);
  for (unsigned S = 1; S != Layout.Count; ++S) {
    uint32_t Max = (1u << Layout.Slots[S].Width) - 1;
    uint32_t V = R.chance(3, 4) ? R.nextBelow(8) : (R.next() & Max);
    I.set(Layout.Slots[S].Kind, V & Max);
  }
  return I;
}

/// A corpus with deliberate n-gram repetition (so the pattern coder has a
/// dictionary to mine) and skewed opcode sequencing (so the context coder
/// has peaked conditionals to exploit).
std::vector<std::vector<MInst>> patternedCorpus(Rng &R, size_t Regions,
                                                size_t MaxLen) {
  // A handful of motifs repeated throughout, interleaved with noise.
  std::vector<std::vector<MInst>> Motifs;
  for (int M = 0; M != 4; ++M) {
    std::vector<MInst> Motif;
    size_t MotifLen = 3 + R.nextBelow(3);
    for (size_t I = 0; I != MotifLen; ++I)
      Motif.push_back(randomInst(R));
    Motifs.push_back(std::move(Motif));
  }
  std::vector<std::vector<MInst>> Corpus(Regions);
  for (auto &Region : Corpus) {
    size_t Len = 8 + R.nextBelow(MaxLen);
    while (Region.size() < Len) {
      if (R.chance(2, 3)) {
        const std::vector<MInst> &M = Motifs[R.nextBelow(Motifs.size())];
        Region.insert(Region.end(), M.begin(), M.end());
      } else {
        Region.push_back(randomInst(R));
      }
    }
  }
  return Corpus;
}

/// Serializes a codec's side tables into raw bytes (determinism checks).
std::vector<uint8_t> serializedTables(const Codec &C) {
  BitWriter W;
  C.serializeTables(W);
  return W.takeBytes();
}

/// Round-trips every corpus region through \p C and asserts (a) exact
/// instruction recovery, (b) measureRegion's bit count equals the real
/// encoder's, and (c) measureRegion's decode work equals the decoder's.
template <typename CodecT>
void roundTripExactly(const CodecT &C,
                      const std::vector<std::vector<MInst>> &Corpus) {
  BitWriter W;
  std::vector<size_t> Offsets;
  std::vector<uint64_t> MeasuredBits;
  std::vector<DecodeWork> MeasuredWork;
  for (const auto &Region : Corpus) {
    size_t Before = W.bitSize();
    Offsets.push_back(Before);
    ASSERT_TRUE(C.encodeRegion(Region, W).ok());

    uint64_t Bits = 0;
    DecodeWork Work;
    ASSERT_TRUE(C.measureRegion(Region, Bits, Work).ok());
    EXPECT_EQ(Bits, W.bitSize() - Before)
        << "measureRegion disagrees with the real encoder";
    MeasuredBits.push_back(Bits);
    MeasuredWork.push_back(Work);
  }
  std::vector<uint8_t> Blob = W.takeBytes();

  for (size_t R = 0; R != Corpus.size(); ++R) {
    std::unique_ptr<RegionCursor> Cur =
        C.makeDecoder(Blob.data(), Blob.size(), Offsets[R]);
    MInst I;
    size_t Count = 0;
    while (Cur->next(I)) {
      ASSERT_LT(Count, Corpus[R].size()) << "region " << R << " overran";
      const MInst &Want = Corpus[R][Count];
      ASSERT_EQ(I.Op, Want.Op) << "region " << R << " inst " << Count;
      for (unsigned F = 0; F != NumFieldKinds; ++F)
        ASSERT_EQ(I.Fields[F], Want.Fields[F])
            << "region " << R << " inst " << Count << " field " << F;
      ++Count;
    }
    ASSERT_TRUE(Cur->ok()) << "region " << R << " stream corrupt";
    ASSERT_EQ(Count, Corpus[R].size()) << "region " << R << " short decode";

    // The decoder's work record matches the encoder-side prediction — the
    // runtime's decode charge and the selection objective use the same
    // numbers.
    const DecodeWork &Got = Cur->work();
    EXPECT_EQ(Got.Instructions, MeasuredWork[R].Instructions) << R;
    EXPECT_EQ(Got.PatternCovered, MeasuredWork[R].PatternCovered) << R;
    EXPECT_EQ(Got.Escapes, MeasuredWork[R].Escapes) << R;
    // The cursor consumed exactly the measured bits.
    EXPECT_EQ(Cur->bitPosition() - Offsets[R], MeasuredBits[R]) << R;
  }
}

/// The squash fixture the end-to-end codec tests share.
struct WorkloadFixture {
  workloads::Workload W;
  Image Baseline;
  Profile Prof;
  vea::RunResult Base;
  std::vector<uint8_t> BaseOutput;

  explicit WorkloadFixture(double Scale = 0.05) {
    W = workloads::buildAdpcm(Scale);
    compactProgram(W.Prog).take();
    Baseline = layoutProgram(W.Prog);
    Prof = profileImage(Baseline, W.ProfilingInput).take();
    Machine M(Baseline);
    M.setInput(W.TimingInput);
    Base = M.run();
    BaseOutput = M.output();
    EXPECT_EQ(Base.Status, RunStatus::Halted);
  }

  SquashResult squash(const std::string &Codec) const {
    Options Opts;
    Opts.Theta = 0.1;
    Opts.Codec = Codec;
    Program Prog = W.Prog;
    return squashProgram(Prog, Prof, Opts).take();
  }
};

/// Decodes every region of \p SP through its assigned cursor and sums the
/// modeled decode cycles — the runtime side of the selection objective.
uint64_t modeledDecodeCycles(const SquashedProgram &SP) {
  const RuntimeLayout &L = SP.Layout;
  const uint8_t *Blob = SP.Img.Bytes.data() + (L.BlobBase - SP.Img.Base);
  const CostModel Costs; // Defaults, same as Options().Costs.
  uint64_t Total = 0;
  for (size_t R = 0; R != SP.Regions.size(); ++R) {
    std::unique_ptr<RegionCursor> Cur =
        SP.makeRegionCursor(R, Blob, L.BlobBytes);
    MInst I;
    while (Cur->next(I))
      ;
    EXPECT_TRUE(Cur->ok()) << "region " << R;
    Total += codecDecodeCycles(Costs, SP.regionCodec(R), Cur->work());
  }
  return Total;
}

} // namespace

//===----------------------------------------------------------------------===//
// Coder round-trips, measurement exactness, determinism
//===----------------------------------------------------------------------===//

TEST(PatternCodec, RoundTripsExactlyWithExactMeasurement) {
  Rng R(2027);
  auto Corpus = patternedCorpus(R, 16, 120);
  PatternCodec C = PatternCodec::build(Corpus);
  ASSERT_TRUE(C.present());
  ASSERT_TRUE(C.validate().ok());
  EXPECT_GT(C.numPatterns(), 0u) << "motif corpus mined no patterns";
  roundTripExactly(C, Corpus);
}

TEST(PatternCodec, RoundTripsCorpusWithoutRepetition) {
  // Worst case for the dictionary: pure noise. The coder must still
  // round-trip (everything escapes).
  Rng R(515);
  std::vector<std::vector<MInst>> Corpus(6);
  for (auto &Region : Corpus)
    for (size_t I = 0; I != 40; ++I)
      Region.push_back(randomInst(R));
  PatternCodec C = PatternCodec::build(Corpus);
  ASSERT_TRUE(C.present());
  roundTripExactly(C, Corpus);
}

TEST(ContextCodec, RoundTripsExactlyWithExactMeasurement) {
  Rng R(3033);
  auto Corpus = patternedCorpus(R, 16, 120);
  ContextCodec C = ContextCodec::build(Corpus);
  ASSERT_TRUE(C.present());
  ASSERT_TRUE(C.validate().ok());
  EXPECT_GE(C.numOpcodeTables(), 1u);
  roundTripExactly(C, Corpus);
}

TEST(CodecBuild, IsDeterministic) {
  Rng R1(7711), R2(7711);
  auto CorpusA = patternedCorpus(R1, 12, 100);
  auto CorpusB = patternedCorpus(R2, 12, 100);
  ASSERT_EQ(CorpusA.size(), CorpusB.size());

  PatternCodec PA = PatternCodec::build(CorpusA);
  PatternCodec PB = PatternCodec::build(CorpusB);
  EXPECT_EQ(serializedTables(PA), serializedTables(PB));

  ContextCodec XA = ContextCodec::build(CorpusA);
  ContextCodec XB = ContextCodec::build(CorpusB);
  EXPECT_EQ(serializedTables(XA), serializedTables(XB));

  // Same corpus, same codec -> same bits for every region.
  BitWriter WA, WB;
  for (size_t I = 0; I != CorpusA.size(); ++I) {
    ASSERT_TRUE(PA.encodeRegion(CorpusA[I], WA).ok());
    ASSERT_TRUE(PB.encodeRegion(CorpusB[I], WB).ok());
  }
  EXPECT_EQ(WA.takeBytes(), WB.takeBytes());
}

TEST(CodecBuild, AbsentCodecRefusesWork) {
  PatternCodec P;
  ContextCodec X;
  EXPECT_FALSE(P.present());
  EXPECT_FALSE(X.present());
  EXPECT_FALSE(P.validate().ok());
  EXPECT_FALSE(X.validate().ok());
  BitWriter W;
  EXPECT_FALSE(P.encodeRegion({}, W).ok());
  EXPECT_FALSE(X.encodeRegion({}, W).ok());
}

TEST(CodecValidate, RejectsTruncatedTables) {
  Rng R(909);
  auto Corpus = patternedCorpus(R, 10, 80);

  PatternCodec P = PatternCodec::build(Corpus);
  ASSERT_TRUE(P.validate().ok());
  P.selectorCodeForFault().truncateValueListForFault();
  Status PS = P.validate();
  ASSERT_FALSE(PS.ok());
  EXPECT_EQ(PS.code(), StatusCode::MalformedImage);

  ContextCodec X = ContextCodec::build(Corpus);
  ASSERT_TRUE(X.validate().ok());
  X.opcodeTableForFault(0).truncateValueListForFault();
  Status XS = X.validate();
  ASSERT_FALSE(XS.ok());
  EXPECT_EQ(XS.code(), StatusCode::MalformedImage);
}

TEST(CodecNames, RoundTripAndRejectAuto) {
  for (unsigned K = 0; K != NumCodecKinds; ++K) {
    CodecKind Kind = static_cast<CodecKind>(K);
    CodecKind Parsed;
    ASSERT_TRUE(codecKindByName(codecKindName(Kind), Parsed));
    EXPECT_EQ(Parsed, Kind);
  }
  CodecKind Unused;
  EXPECT_FALSE(codecKindByName("auto", Unused));
  EXPECT_FALSE(codecKindByName("zstd", Unused));
}

//===----------------------------------------------------------------------===//
// Pipeline integration: forced codecs, auto-selection, error propagation
//===----------------------------------------------------------------------===//

TEST(CodecSelect, UnknownCodecNameIsInvalidArgument) {
  WorkloadFixture Fx;
  Options Opts;
  Opts.Theta = 0.1;
  Opts.Codec = "zstd";
  Program Prog = Fx.W.Prog;
  Expected<SquashResult> SR = squashProgram(Prog, Fx.Prof, Opts);
  ASSERT_FALSE(SR);
  EXPECT_EQ(SR.status().code(), StatusCode::InvalidArgument);
}

TEST(CodecSelect, ForcedCodecRunsEndToEndWithPerCodecStats) {
  WorkloadFixture Fx;
  for (const char *Codec : {"pattern", "context"}) {
    SCOPED_TRACE(Codec);
    SquashResult SR = Fx.squash(Codec);
    ASSERT_FALSE(SR.Identity);

    CodecKind Want;
    ASSERT_TRUE(codecKindByName(Codec, Want));
    for (size_t R = 0; R != SR.SP.Regions.size(); ++R)
      EXPECT_EQ(SR.SP.regionCodec(R), Want) << "region " << R;

    SquashedRun Run = runSquashed(SR.SP, Fx.W.TimingInput);
    ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
    EXPECT_EQ(Run.Run.ExitCode, Fx.Base.ExitCode);
    EXPECT_EQ(Run.Output, Fx.BaseOutput);

    // Every fill was charged to the forced codec, none to the others.
    ASSERT_GT(Run.Runtime.Decompressions, 0u);
    for (unsigned K = 0; K != NumCodecKinds; ++K) {
      if (static_cast<CodecKind>(K) == Want) {
        EXPECT_EQ(Run.Runtime.FillsByCodec[K], Run.Runtime.Decompressions);
        EXPECT_GT(Run.Runtime.DecodeCyclesByCodec[K], 0u);
      } else {
        EXPECT_EQ(Run.Runtime.FillsByCodec[K], 0u);
        EXPECT_EQ(Run.Runtime.DecodeCyclesByCodec[K], 0u);
      }
    }

    // The per-codec counters surface in the metrics export.
    MetricsRegistry Reg;
    Run.Runtime.exportMetrics(Reg);
    EXPECT_TRUE(Reg.has(std::string("runtime.fills_") + Codec));
    EXPECT_TRUE(Reg.has(std::string("runtime.decode_cycles_") + Codec));
  }
}

TEST(CodecSelect, AutoIsNeverWorseThanAlwaysHuffman) {
  WorkloadFixture Fx;
  SquashResult Huff = Fx.squash("huffman");
  SquashResult Auto = Fx.squash("auto");
  ASSERT_FALSE(Huff.Identity);
  ASSERT_FALSE(Auto.Identity);

  // The objective codec-select minimizes: compressed bytes x modeled
  // decode cycles. The safety valve re-models the whole blob before
  // committing, so auto can never regress it.
  const uint64_t HuffObj = static_cast<uint64_t>(
      Huff.SP.Footprint.CompressedBytes) * modeledDecodeCycles(Huff.SP);
  const uint64_t AutoObj = static_cast<uint64_t>(
      Auto.SP.Footprint.CompressedBytes) * modeledDecodeCycles(Auto.SP);
  EXPECT_LE(AutoObj, HuffObj);

  // Auto still runs correctly.
  SquashedRun Run = runSquashed(Auto.SP, Fx.W.TimingInput);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  EXPECT_EQ(Run.Run.ExitCode, Fx.Base.ExitCode);
  EXPECT_EQ(Run.Output, Fx.BaseOutput);

  // The per-region choices land in the metrics export and sum to the
  // region count.
  MetricsRegistry Reg;
  collectSquashMetrics(Reg, Auto);
  uint64_t Sum = 0;
  for (unsigned K = 0; K != NumCodecKinds; ++K)
    Sum += Reg.counter("squash.regions.codec_" +
                       std::string(codecKindName(static_cast<CodecKind>(K))));
  EXPECT_EQ(Sum, Auto.SP.Regions.size());
}

TEST(CodecSelect, ForcedHuffmanMatchesLegacyImageByteForByte) {
  // Codec plurality must be invisible when unused: the default
  // configuration's image is identical to one squashed with the pass
  // explicitly disabled (the legacy single-codec path).
  WorkloadFixture Fx;
  SquashResult Default = Fx.squash("huffman");

  Options Opts;
  Opts.Theta = 0.1;
  Opts.DisabledPasses = {"codec-select"};
  Program Prog = Fx.W.Prog;
  SquashResult Disabled = squashProgram(Prog, Fx.Prof, Opts).take();
  ASSERT_EQ(Default.Identity, Disabled.Identity);
  EXPECT_EQ(Default.SP.Img.Bytes, Disabled.SP.Img.Bytes);
}

//===----------------------------------------------------------------------===//
// Size-accounting regression (the footprint bugfix)
//===----------------------------------------------------------------------===//

TEST(Footprint, TotalsEqualOnDiskImageBytesUnderEveryCodec) {
  WorkloadFixture Fx;
  for (const char *Codec : {"huffman", "pattern", "context", "auto"}) {
    SCOPED_TRACE(Codec);
    SquashResult SR = Fx.squash(Codec);
    ASSERT_FALSE(SR.Identity);
    const FootprintBreakdown &F = SR.SP.Footprint;
    const RuntimeLayout &L = SR.SP.Layout;
    const Image &Img = SR.SP.Img;

    // The compressed charge is exactly the on-disk blob, and the blob is
    // exactly the measured table + payload bits, byte-ceiled: no side
    // table escapes the charge.
    EXPECT_EQ(F.CompressedBytes, L.BlobBytes);
    EXPECT_EQ(F.CompressedBytes,
              (F.HuffmanTableBits + F.PatternTableBits + F.ContextTableBits +
               F.PayloadBits + 7) /
                  8);
    EXPECT_GT(F.PayloadBits, 0u);
    EXPECT_GT(F.HuffmanTableBits + F.PatternTableBits + F.ContextTableBits,
              0u);

    // The word-counted segments tile the image up to the data segment.
    EXPECT_EQ(4u * (F.NeverCompressedWords + F.EntryStubWords +
                    F.DecompressorWords + F.OffsetTableWords +
                    F.StubAreaWords + F.SlotMapWords + F.BufferWords),
              L.DataBase - Img.Base);

    // And the whole image is machinery + data + blob — the footprint total
    // equals what is actually on disk, minus only the data segment it
    // deliberately excludes.
    EXPECT_EQ(Img.Bytes.size(),
              F.totalCodeBytes() + (L.BlobBase - L.DataBase));
  }
}

//===----------------------------------------------------------------------===//
// Image format versioning
//===----------------------------------------------------------------------===//

TEST(FormatVersion, AttachRejectsForeignVersions) {
  WorkloadFixture Fx;
  SquashResult SR = Fx.squash("huffman");
  ASSERT_FALSE(SR.Identity);
  EXPECT_EQ(SR.SP.Layout.FormatVersion, RuntimeLayout::CurrentFormatVersion);

  for (uint32_t Bad : {0u, 1u, RuntimeLayout::CurrentFormatVersion + 1}) {
    SquashedProgram SP = SR.SP;
    SP.Layout.FormatVersion = Bad;
    SquashedRun Run = runSquashed(SP, Fx.W.TimingInput);
    ASSERT_EQ(Run.Run.Status, RunStatus::Fault)
        << "version " << Bad << " attached";
    EXPECT_NE(Run.Run.FaultMessage.find("format version"), std::string::npos)
        << Run.Run.FaultMessage;
    EXPECT_EQ(Run.Runtime.Decompressions, 0u);
  }
}

TEST(FormatVersion, RegionWithUnknownCodecIdIsRejected) {
  WorkloadFixture Fx;
  SquashResult SR = Fx.squash("huffman");
  ASSERT_FALSE(SR.Identity);
  SquashedProgram SP = SR.SP;
  SP.Regions[0].Codec = NumCodecKinds; // First invalid id.
  SquashedRun Run = runSquashed(SP, Fx.W.TimingInput);
  ASSERT_EQ(Run.Run.Status, RunStatus::Fault);
  EXPECT_NE(Run.Run.FaultMessage.find("unknown codec"), std::string::npos)
      << Run.Run.FaultMessage;
}
