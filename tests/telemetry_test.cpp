//===- tests/telemetry_test.cpp - Span tracing / ledger / flight recorder -===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The telemetry PR's contracts (DESIGN.md §18):
//
//  - Span rings drop oldest-first with exact accounting, SpanScope parents
//    nest by the per-thread open stack, and cross-thread work is flow-
//    linked (prefetch launch -> worker -> consuming fill; re-squash
//    trigger -> build -> publish -> verdict).
//  - The cycle-attribution ledger conserves on every run outcome — clean
//    halt, instruction-limit stop, and injected-fault runs.
//  - Tracing never perturbs the guest: byte-identical output, identical
//    cycle count.
//  - The flight recorder turns every non-OK Status / machine fault /
//    injected fault into a parseable postmortem dump that names the
//    faulting span.
//  - Metric names are validated (satellite: hygiene) and the Prometheus
//    exposition is structurally conformant (HELP before TYPE before
//    samples; +Inf bucket equals _count).
//  - Under adaptive hot-swap, the per-run trace ring and the controller
//    event ring both reconcile exactly (retained + dropped == total).
//    That test is the runtime-tsan preset's telemetry target.
//
//===----------------------------------------------------------------------===//

#include "compact/Compact.h"
#include "link/Layout.h"
#include "squash/Adaptive.h"
#include "squash/Driver.h"
#include "squash/FaultInjector.h"
#include "squash/Observability.h"
#include "squash/Telemetry.h"
#include "support/Span.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace vea;
using namespace squash;

namespace {

constexpr double Scale = 0.05;

/// Compacted adpcm workload squashed at a theta where the timing input
/// reaches compressed code, plus reference behaviour.
struct Fixture {
  workloads::Workload W;
  Profile Training;
  SquashResult SR;
  SquashedRun Base;

  Fixture() {
    W = workloads::buildAdpcm(Scale);
    compactProgram(W.Prog).take();
    Image Baseline = layoutProgram(W.Prog);
    Training = profileImage(Baseline, W.ProfilingInput).take();
    SR = squashProgram(W.Prog, Training, options()).take();
    EXPECT_FALSE(SR.Identity);
    Base = runSquashed(SR.SP, W.TimingInput);
    EXPECT_EQ(Base.Run.Status, RunStatus::Halted) << Base.Run.FaultMessage;
  }

  static Options options() {
    Options Opts;
    Opts.Theta = 0.1;
    return Opts;
  }
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

/// RAII guard: every test starts from a clean tracer/recorder and leaves
/// both off, whatever the assertions do in between.
struct TelemetryGuard {
  TelemetryGuard(bool Trace, bool Record) {
    SpanTracer::instance().reset();
    SpanTracer::instance().setEnabled(Trace);
    FlightRecorder::instance().clear();
    if (Record)
      FlightRecorder::instance().arm();
  }
  ~TelemetryGuard() {
    SpanTracer::instance().setEnabled(false);
    SpanTracer::instance().reset();
    FlightRecorder::instance().disarm();
    FlightRecorder::instance().clear();
  }
};

/// Structural JSON check: quotes and braces/brackets balance (with escape
/// handling), so the document at least tokenizes as one object.
bool jsonBalanced(const std::string &S) {
  int Depth = 0;
  bool InString = false, Escaped = false;
  for (char C : S) {
    if (Escaped) {
      Escaped = false;
      continue;
    }
    if (InString) {
      if (C == '\\')
        Escaped = true;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{' || C == '[')
      ++Depth;
    else if (C == '}' || C == ']') {
      if (--Depth < 0)
        return false;
    }
  }
  return Depth == 0 && !InString;
}

const Span *findSpan(const std::vector<Span> &Spans, const char *Name,
                     size_t Skip = 0) {
  for (const Span &S : Spans)
    if (S.Name && std::string(S.Name) == Name && Skip-- == 0)
      return &S;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Span ring and scope mechanics
//===----------------------------------------------------------------------===//

TEST(SpanRing, DropsOldestWithExactAccounting) {
  TelemetryGuard G(true, false);
  SpanTracer &T = SpanTracer::instance();
  T.setRingCapacity(16);
  for (int I = 0; I != 40; ++I)
    SpanScope Sp("ring.fill", "test");
  EXPECT_EQ(T.totalEmitted(), 40u);
  EXPECT_EQ(T.totalDropped(), 24u);
  std::vector<Span> Spans = T.snapshot();
  EXPECT_EQ(Spans.size(), 16u);
  // Oldest-first drop: the retained window is the newest 16 spans, and the
  // snapshot is sorted by start time.
  for (size_t I = 1; I < Spans.size(); ++I)
    EXPECT_GE(Spans[I].StartNanos, Spans[I - 1].StartNanos);
  T.setRingCapacity(1024);
}

TEST(SpanScope, ParentsNestByTheOpenStack) {
  TelemetryGuard G(true, false);
  uint64_t OuterId = 0, InnerId = 0;
  {
    SpanScope Outer("outer", "test");
    OuterId = Outer.id();
    {
      SpanScope Inner("inner", "test");
      InnerId = Inner.id();
      EXPECT_EQ(SpanTracer::instance().currentSpan(), InnerId);
    }
    EXPECT_EQ(SpanTracer::instance().currentSpan(), OuterId);
  }
  std::vector<Span> Spans = SpanTracer::instance().snapshot();
  const Span *Outer = findSpan(Spans, "outer");
  const Span *Inner = findSpan(Spans, "inner");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->Parent, 0u);
  EXPECT_EQ(Inner->Parent, OuterId);
  EXPECT_NE(OuterId, InnerId);
}

TEST(SpanScope, InertWhenTracingIsDisabled) {
  TelemetryGuard G(false, false);
  {
    SpanScope Sp("invisible", "test");
    EXPECT_FALSE(Sp.active());
    EXPECT_EQ(Sp.id(), 0u);
  }
  EXPECT_EQ(SpanTracer::instance().totalEmitted(), 0u);
  EXPECT_TRUE(SpanTracer::instance().snapshot().empty());
}

//===----------------------------------------------------------------------===//
// Guest invariance and the runtime's span shape
//===----------------------------------------------------------------------===//

TEST(Tracing, DoesNotPerturbTheGuest) {
  Fixture &F = fixture();
  TelemetryGuard G(true, false);
  SquashedRun Traced = runSquashed(F.SR.SP, F.W.TimingInput);
  EXPECT_EQ(Traced.Run.Status, F.Base.Run.Status);
  EXPECT_EQ(Traced.Run.ExitCode, F.Base.Run.ExitCode);
  EXPECT_EQ(Traced.Run.Cycles, F.Base.Run.Cycles);
  EXPECT_EQ(Traced.Run.Instructions, F.Base.Run.Instructions);
  EXPECT_EQ(Traced.Output, F.Base.Output);
}

TEST(Tracing, RuntimeSpansParentUnderTheRunRoot) {
  Fixture &F = fixture();
  TelemetryGuard G(true, false);
  SquashedRun Run = runSquashed(F.SR.SP, F.W.TimingInput);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted);
  std::vector<Span> Spans = SpanTracer::instance().snapshot();

  const Span *Root = findSpan(Spans, "run.squashed");
  const Span *Exec = findSpan(Spans, "machine.run");
  const Span *Fill = findSpan(Spans, "region.fill");
  const Span *Decode = findSpan(Spans, "huffman");
  ASSERT_NE(Root, nullptr);
  ASSERT_NE(Exec, nullptr);
  ASSERT_NE(Fill, nullptr);
  ASSERT_NE(Decode, nullptr) << "demand decode span missing";
  EXPECT_EQ(Exec->Parent, Root->Id);
  EXPECT_EQ(Decode->Parent, Fill->Id);
  // The exec span carries the run's cycle bounds; fills nest inside it in
  // simulated time.
  EXPECT_EQ(Exec->EndCycles, Run.Run.Cycles);
  EXPECT_LE(Exec->StartCycles, Fill->StartCycles);
  EXPECT_LE(Fill->EndCycles, Exec->EndCycles);

  // The Chrome export of this snapshot is balanced and names the spans.
  std::string Trace = exportSpansChromeTrace(Spans);
  EXPECT_TRUE(jsonBalanced(Trace));
  EXPECT_NE(Trace.find("\"region.fill\""), std::string::npos);
}

TEST(Tracing, PrefetchFlowLinksLaunchWorkerAndConsumingFill) {
  Fixture &F = fixture();
  SquashedProgram SP = F.SR.SP;
  SP.Opts.DecodeAhead = true;
  TelemetryGuard G(true, false);
  SquashedRun Run = runSquashed(SP, F.W.TimingInput);
  ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
  EXPECT_EQ(Run.Output, F.Base.Output);
  ASSERT_GT(Run.Runtime.PrefetchLaunches, 0u)
      << "prefetcher never fired; the flow contract is untestable";

  std::vector<Span> Spans = SpanTracer::instance().snapshot();
  const Span *Launch = findSpan(Spans, "prefetch.launch");
  ASSERT_NE(Launch, nullptr);
  ASSERT_NE(Launch->FlowOut, 0u);
  // The worker span joins and re-emits the same flow id, on its own thread.
  const Span *Work = nullptr;
  for (const Span &S : Spans)
    if (S.Name && std::string(S.Name) == "prefetch.decode" &&
        S.FlowIn == Launch->FlowOut)
      Work = &S;
  ASSERT_NE(Work, nullptr) << "no worker span joined the launch flow";
  EXPECT_EQ(Work->FlowOut, Launch->FlowOut);
  EXPECT_NE(Work->ThreadId, Launch->ThreadId);
  if (Run.Runtime.PrefetchHits > 0) {
    const Span *Consume = nullptr;
    for (const Span &S : Spans)
      if (S.Name && std::string(S.Name) == "prefetch.consume" && S.FlowIn != 0)
        Consume = &S;
    ASSERT_NE(Consume, nullptr);
    EXPECT_EQ(Consume->ThreadId, Launch->ThreadId);
  }
}

//===----------------------------------------------------------------------===//
// Cycle-attribution ledger
//===----------------------------------------------------------------------===//

TEST(Ledger, ConservesOnCleanHalt) {
  Fixture &F = fixture();
  CycleLedger L = buildCycleLedger(F.Base);
  EXPECT_TRUE(L.conserves())
      << "attributed " << L.attributed() << " of " << L.Total;
  EXPECT_EQ(L.Total, F.Base.Run.Cycles);
  EXPECT_EQ(L.GuestExecute, F.Base.Run.Instructions);
  EXPECT_GT(L.TrapSetup, 0u);
  EXPECT_GT(L.DecodeByCodec[0], 0u);
  EXPECT_EQ(L.WastedPrefetchCycles, 0u);

  // The report and the metrics surface agree with the struct.
  std::string Report = renderAttributionReport(L, "adpcm");
  EXPECT_NE(Report.find("conserved"), std::string::npos);
  EXPECT_EQ(Report.find("NOT CONSERVED"), std::string::npos);
  MetricsRegistry Reg;
  exportLedgerMetrics(Reg, L);
  EXPECT_EQ(Reg.counter("ledger.total_cycles"), L.Total);
  EXPECT_EQ(Reg.counter("ledger.conserved"), 1u);
}

TEST(Ledger, ConservesOnInstructionLimitStops) {
  Fixture &F = fixture();
  // Sweep limits across the run so the stop lands at many different points
  // of the trap sequence (between setup and decode charges included).
  for (uint64_t Limit : {uint64_t(1), uint64_t(64), uint64_t(4096),
                         F.Base.Run.Instructions / 3,
                         F.Base.Run.Instructions / 2 + 7}) {
    SquashedRun Run = runSquashed(F.SR.SP, F.W.TimingInput, Limit);
    CycleLedger L = buildCycleLedger(Run);
    EXPECT_TRUE(L.conserves())
        << "limit " << Limit << ": attributed " << L.attributed() << " of "
        << L.Total;
  }
}

TEST(Ledger, ConservesOnInjectedFaultRuns) {
  Fixture &F = fixture();
  const std::vector<FaultKind> Kinds = {
      FaultKind::BlobBitFlip, FaultKind::OffsetTableEntry,
      FaultKind::StubSlotWord, FaultKind::EntryStubTag,
      FaultKind::BlobTruncate};
  unsigned Faulted = 0;
  for (uint64_t Seed = 0; Seed != 24; ++Seed) {
    SquashedProgram SP = F.SR.SP;
    SP.Opts.ChecksumAtAttach = false; // Let faults reach the runtime.
    FaultInjector FI(1 + Seed * 2654435761ull);
    ASSERT_TRUE(FI.injectAny(SP, Kinds).has_value());
    SquashedRun Run =
        runSquashed(SP, F.W.TimingInput, 4 * F.Base.Run.Instructions);
    CycleLedger L = buildCycleLedger(Run);
    EXPECT_TRUE(L.conserves())
        << "seed " << Seed << ": attributed " << L.attributed() << " of "
        << L.Total;
    Faulted += Run.Run.Status == RunStatus::Fault;
  }
  EXPECT_GT(Faulted, 0u) << "no run faulted; the fault outcome is untested";
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, StatusErrorTriggersWithTheLiveSpanStack) {
  TelemetryGuard G(true, true);
  {
    SpanScope Sp("suspect.work", "test");
    (void)Status::error(StatusCode::CorruptBlob, "telemetry-test detail");
  }
  FlightRecorder &FR = FlightRecorder::instance();
  EXPECT_EQ(FR.triggerCount(), 1u);
  std::string Dump = FR.dumpJson();
  EXPECT_TRUE(jsonBalanced(Dump));
  EXPECT_NE(Dump.find("\"source\":\"status\""), std::string::npos);
  EXPECT_NE(Dump.find("telemetry-test detail"), std::string::npos);
  // The trigger captured the span that was open when the error formed.
  EXPECT_NE(Dump.find("suspect.work"), std::string::npos);
}

TEST(FlightRecorder, DisarmedRecorderIgnoresErrors) {
  TelemetryGuard G(false, false);
  (void)Status::error(StatusCode::CorruptBlob, "ignored");
  EXPECT_EQ(FlightRecorder::instance().triggerCount(), 0u);
}

TEST(FlightRecorder, InjectedFaultYieldsParseableDumpNamingTheFault) {
  Fixture &F = fixture();
  const std::vector<FaultKind> Kinds = {FaultKind::BlobBitFlip,
                                        FaultKind::OffsetTableEntry,
                                        FaultKind::BlobTruncate};
  unsigned MachineFaults = 0;
  for (uint64_t Seed = 0; Seed != 16; ++Seed) {
    TelemetryGuard G(true, true);
    SquashedProgram SP = F.SR.SP;
    SP.Opts.ChecksumAtAttach = false;
    FaultInjector FI(7 + Seed * 2654435761ull);
    ASSERT_TRUE(FI.injectAny(SP, Kinds).has_value());
    // Injection itself is a trigger: the dump must name the injection even
    // if the run later masks the fault.
    ASSERT_GE(FlightRecorder::instance().triggerCount(), 1u);

    SquashedRun Run =
        runSquashed(SP, F.W.TimingInput, 4 * F.Base.Run.Instructions);
    std::string Dump = FlightRecorder::instance().dumpJson();
    ASSERT_TRUE(jsonBalanced(Dump)) << "seed " << Seed;
    EXPECT_NE(Dump.find("\"source\":\"fault-injector\""), std::string::npos);
    // The faulting span: fault.inject is emitted around every injection.
    EXPECT_NE(Dump.find("\"fault.inject\""), std::string::npos);
    if (Run.Run.Status == RunStatus::Fault) {
      ++MachineFaults;
      // A detected fault triggers either as a machine fault (runtime
      // integrity check fired mid-run) or as a non-OK Status (attach-time
      // validation refused the image before execution).
      const bool Machine =
          Dump.find("\"source\":\"machine\"") != std::string::npos;
      const bool StatusErr =
          Dump.find("\"source\":\"status\"") != std::string::npos;
      EXPECT_TRUE(Machine || StatusErr)
          << "seed " << Seed << ": detected fault left no trigger";
    }
  }
  EXPECT_GT(MachineFaults, 0u) << "no run faulted; dump contract untested";
}

//===----------------------------------------------------------------------===//
// Satellite: metric name hygiene
//===----------------------------------------------------------------------===//

TEST(MetricNames, InvalidNamesAreRejectedNotSanitized) {
  EXPECT_TRUE(validMetricName("run.cycles"));
  EXPECT_TRUE(validMetricName("ledger.decode_cycles_huffman"));
  EXPECT_TRUE(validMetricName("spaces are fine"));
  EXPECT_FALSE(validMetricName(""));
  EXPECT_FALSE(validMetricName("a\nb"));
  EXPECT_FALSE(validMetricName("a\tb"));
  EXPECT_FALSE(validMetricName(std::string("a\0b", 3)));
  EXPECT_FALSE(validMetricName("quote\"name"));
  EXPECT_FALSE(validMetricName("back\\slash"));
  EXPECT_FALSE(validMetricName("del\x7f"));

  MetricsRegistry R;
  EXPECT_FALSE(R.setCounter("a\nb", 1));
  EXPECT_FALSE(R.addCounter("a\nb", 1));
  EXPECT_FALSE(R.setGauge("c\"d", 1.0));
  EXPECT_FALSE(R.setHistogram("e\\f", Histogram()));
  EXPECT_TRUE(R.empty()) << "a rejected name must not create an entry";
  EXPECT_FALSE(R.has("a\nb"));
  // Distinct invalid names never alias a legitimate one: "a\nb" being
  // rejected leaves "a_b" free and independent.
  EXPECT_TRUE(R.setCounter("a_b", 7));
  EXPECT_EQ(R.counter("a_b"), 7u);
  EXPECT_EQ(R.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Satellite: Prometheus exposition conformance
//===----------------------------------------------------------------------===//

TEST(Prometheus, ExpositionIsStructurallyConformant) {
  MetricsRegistry R;
  R.setCounter("run.traps", 3);
  R.setGauge("drift.score", 0.25);
  Histogram H;
  H.record(3);
  H.record(100);
  H.record(100000);
  R.setHistogram("trap.cycles", H);

  std::string Out = R.toPrometheus();

  // Per metric: HELP, then TYPE, then samples — in that order.
  for (const char *Name : {"run_traps", "drift_score", "trap_cycles"}) {
    std::string N = Name;
    size_t Help = Out.find("# HELP " + N + " ");
    size_t Type = Out.find("# TYPE " + N + " ");
    size_t Sample = Out.find("\n" + N);
    ASSERT_NE(Help, std::string::npos) << N;
    ASSERT_NE(Type, std::string::npos) << N;
    ASSERT_NE(Sample, std::string::npos) << N;
    EXPECT_LT(Help, Type) << N;
    EXPECT_LT(Type, Sample) << N;
  }
  // The HELP docstring preserves the original dotted name.
  EXPECT_NE(Out.find("# HELP run_traps squash metric run.traps\n"),
            std::string::npos);

  // Histogram: cumulative buckets, a +Inf bucket equal to _count, and
  // _sum/_count samples.
  EXPECT_NE(Out.find("trap_cycles_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Out.find("trap_cycles_count 3\n"), std::string::npos);
  EXPECT_NE(Out.find("trap_cycles_sum 100103\n"), std::string::npos);

  // Every line is a comment or a sample; no blank or malformed lines.
  size_t Pos = 0;
  while (Pos < Out.size()) {
    size_t Eol = Out.find('\n', Pos);
    ASSERT_NE(Eol, std::string::npos) << "unterminated final line";
    std::string Line = Out.substr(Pos, Eol - Pos);
    ASSERT_FALSE(Line.empty());
    if (Line[0] != '#') {
      EXPECT_NE(Line.find(' '), std::string::npos)
          << "sample line lacks a value: " << Line;
    }
    Pos = Eol + 1;
  }

  // An empty registry exposes an empty document.
  EXPECT_EQ(MetricsRegistry().toPrometheus(), "");
}

//===----------------------------------------------------------------------===//
// Re-squash lifecycle flows and the hot-swap ring-drain reconciliation
//===----------------------------------------------------------------------===//

namespace {

AdaptiveConfig eagerConfig() {
  AdaptiveConfig Cfg;
  Cfg.DriftThreshold = 0.0;
  Cfg.MinEntriesForTrigger = 1;
  Cfg.ProbationRuns = 1;
  Cfg.ProbationTraps = UINT32_MAX;
  Cfg.RegressionTolerance = 1e9;
  Cfg.MaxAttempts = 1;
  return Cfg;
}

} // namespace

TEST(ResquashSpans, LifecycleIsFlowLinkedAcrossThreads) {
  Fixture &F = fixture();
  TelemetryGuard G(true, false);
  auto C = ResquashController::create(F.W.Prog, F.Training, Fixture::options(),
                                      eagerConfig())
               .take();
  SquashedRun R1 = C->serve(F.W.TimingInput);
  ASSERT_EQ(R1.Run.Status, RunStatus::Halted);
  ASSERT_TRUE(C->drain(60.0).ok()) << C->lastError().toString();
  SquashedRun R2 = C->serve(F.W.TimingInput); // Resolves probation.
  ASSERT_EQ(R2.Run.Status, RunStatus::Halted);
  EXPECT_EQ(R2.Output, R1.Output);

  std::vector<Span> Spans = SpanTracer::instance().snapshot();
  const Span *Trigger = findSpan(Spans, "resquash.trigger");
  ASSERT_NE(Trigger, nullptr);
  const uint64_t Flow = Trigger->FlowOut;
  ASSERT_NE(Flow, 0u);

  const Span *Build = nullptr, *Publish = nullptr, *Verdict = nullptr;
  for (const Span &S : Spans) {
    if (!S.Name)
      continue;
    std::string N = S.Name;
    if (N == "resquash.build" && S.FlowIn == Flow)
      Build = &S;
    else if (N == "resquash.publish" && S.FlowIn == Flow)
      Publish = &S;
    else if ((N == "resquash.commit" || N == "resquash.rollback") &&
             S.FlowIn == Flow)
      Verdict = &S;
  }
  ASSERT_NE(Build, nullptr) << "no build span joined the trigger flow";
  ASSERT_NE(Publish, nullptr) << "no publish span joined the trigger flow";
  ASSERT_NE(Verdict, nullptr) << "no verdict span joined the trigger flow";
  // The build ran on the pool worker, not the serving thread.
  EXPECT_NE(Build->ThreadId, Trigger->ThreadId);
  // The trigger fired inside the serve that observed the drift.
  const Span *Serve = findSpan(Spans, "resquash.serve");
  ASSERT_NE(Serve, nullptr);
  EXPECT_EQ(Trigger->ThreadId, Serve->ThreadId);
}

TEST(TelemetryHotSwap, RingsReconcileExactlyUnderConcurrentSwap) {
  Fixture &F = fixture();
  TelemetryGuard G(true, false);
  SpanTracer::instance().setRingCapacity(256); // Small: force span drops too.

  AdaptiveConfig Cfg = eagerConfig();
  Cfg.TraceCapacity = 32; // Tiny run-trace ring: every serve overflows it.
  Cfg.EventCapacity = 4;  // Tiny event ring: the swap lifecycle overflows it.
  Cfg.MaxAttempts = 2;
  auto C = ResquashController::create(F.W.Prog, F.Training, Fixture::options(),
                                      std::move(Cfg))
               .take();

  // Concurrent drains: one thread reads the controller's event ring and the
  // tracer while serves and a background swap run. TSan checks this.
  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      (void)C->events();
      (void)C->droppedEvents();
      (void)SpanTracer::instance().snapshot();
      (void)SpanTracer::instance().totalDropped();
    }
  });

  for (int I = 0; I != 4; ++I) {
    SquashedRun Run = C->serve(F.W.TimingInput);
    ASSERT_EQ(Run.Run.Status, RunStatus::Halted) << Run.Run.FaultMessage;
    EXPECT_EQ(Run.Output, F.Base.Output);
    // Per-run trace-ring reconciliation: the ring is bounded, dropped is
    // exact, and retained events are the newest, in cycle order.
    EXPECT_LE(Run.Trace.size(), 32u);
    if (Run.TraceDropped > 0) {
      EXPECT_EQ(Run.Trace.size(), 32u)
          << "events dropped while the ring had room";
    }
    for (size_t E = 1; E < Run.Trace.size(); ++E)
      EXPECT_GE(Run.Trace[E].Cycle, Run.Trace[E - 1].Cycle);
  }
  ASSERT_TRUE(C->drain(60.0).ok()) << C->lastError().toString();
  // Resolve any pending probation so the lifecycle (and its events) finish.
  for (int I = 0; I != 4 && C->stats().ProbationPending; ++I)
    (void)C->serve(F.W.TimingInput);

  Stop.store(true, std::memory_order_release);
  Reader.join();

  // Controller event-ring reconciliation: Seq is gap-free before drops, so
  // retained + dropped accounts for every event ever recorded.
  std::vector<AdaptiveEvent> Events = C->events();
  ASSERT_FALSE(Events.empty());
  for (size_t E = 1; E < Events.size(); ++E)
    EXPECT_EQ(Events[E].Seq, Events[E - 1].Seq + 1)
        << "retained window has a gap";
  EXPECT_EQ(Events.size() + C->droppedEvents(), Events.back().Seq + 1);
  EXPECT_GT(C->droppedEvents(), 0u)
      << "the tiny event ring never overflowed; drop accounting untested";

  // Tracer-side accounting stayed coherent under the concurrent reader.
  EXPECT_EQ(SpanTracer::instance().totalEmitted(),
            SpanTracer::instance().snapshot().size() +
                SpanTracer::instance().totalDropped());
}
