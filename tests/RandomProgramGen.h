//===- tests/RandomProgramGen.h - Random terminating programs --*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The random-program generator shared by the equivalence property test
/// (randomprog_test) and the differential-execution suite
/// (differential_test). It emits random—but always terminating—programs:
/// forward-branch DAG control flow, jump tables, acyclic call graphs, and
/// counted loops only in leaf functions.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_TESTS_RANDOMPROGRAMGEN_H
#define SQUASH_TESTS_RANDOMPROGRAMGEN_H

#include "ir/Builder.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace testgen {

/// Registers the generator hands out for scratch computation.
inline constexpr unsigned ScratchRegs[] = {1, 2, 3, 4, 5, 6, 16, 17, 18, 19};

inline unsigned pickReg(vea::Rng &R) {
  return ScratchRegs[R.nextBelow(std::size(ScratchRegs))];
}

/// Emits a random arithmetic/memory instruction confined to the arena.
inline void emitRandomOp(vea::FunctionBuilder &F, vea::Rng &R) {
  unsigned A = pickReg(R), B = pickReg(R), C = pickReg(R);
  switch (R.nextBelow(12)) {
  case 0:
    F.add(C, A, B);
    break;
  case 1:
    F.sub(C, A, B);
    break;
  case 2:
    F.mul(C, A, B);
    break;
  case 3:
    F.xor_(C, A, B);
    break;
  case 4:
    F.slli(C, A, static_cast<uint32_t>(R.nextBelow(8)));
    break;
  case 5:
    F.srli(C, A, static_cast<uint32_t>(R.nextBelow(8)));
    break;
  case 6:
    F.addi(C, A, static_cast<uint32_t>(R.nextBelow(256)));
    break;
  case 7: { // Guarded divide: divisor forced odd (nonzero).
    F.ori(B, B, 1);
    F.udiv(C, A, B);
    break;
  }
  case 8: { // Arena store.
    F.andi(7, A, 252);
    F.la(8, "arena");
    F.add(8, 8, 7);
    F.stw(B, 8, 0);
    break;
  }
  case 9: { // Arena load.
    F.andi(7, A, 252);
    F.la(8, "arena");
    F.add(8, 8, 7);
    F.ldw(C, 8, 0);
    break;
  }
  case 10:
    F.cmplt(C, A, B);
    break;
  default:
    F.ori(C, A, static_cast<uint32_t>(R.nextBelow(256)));
    break;
  }
}

/// Builds a random, always-terminating program.
inline vea::Program randomProgram(uint64_t Seed) {
  using namespace vea;
  Rng R(Seed);
  ProgramBuilder PB("rand" + std::to_string(Seed));
  PB.addBss("arena", 512);

  unsigned NumFuncs = 3 + static_cast<unsigned>(R.nextBelow(5));

  // main: seed registers, call every function, checksum the arena. main
  // never returns (it halts), so it needs no frame around its calls.
  {
    FunctionBuilder F = PB.beginFunction("main");
    for (unsigned Reg : ScratchRegs)
      F.li(Reg, static_cast<int32_t>(R.nextBelow(100000)));
    F.li(10, 0);
    for (unsigned FI = 0; FI != NumFuncs; ++FI) {
      F.call("f" + std::to_string(FI));
      F.add(10, 10, 0); // Accumulate each function's result.
    }
    // Checksum the arena.
    F.la(11, "arena");
    F.li(12, 128);
    F.label("ck");
    F.ldw(13, 11, 0);
    F.add(10, 10, 13);
    F.addi(11, 11, 4);
    F.subi(12, 12, 1);
    F.bne(12, "ck");
    F.mov(16, 10);
    F.sys(SysFunc::PutWord);
    F.andi(16, 10, 0xFF);
    F.halt();
  }

  for (unsigned FI = 0; FI != NumFuncs; ++FI) {
    FunctionBuilder F = PB.beginFunction("f" + std::to_string(FI));
    // Functions may call only higher-numbered functions (acyclic), and a
    // function either calls or loops — never both (guarantees
    // termination with the shared counter register r9).
    bool CanCall = FI + 1 < NumFuncs && R.chance(1, 2);
    bool Loops = !CanCall && R.chance(2, 3);
    unsigned NumBlocks = 2 + static_cast<unsigned>(R.nextBelow(6));

    if (CanCall)
      F.enter(8);
    if (Loops)
      F.li(9, static_cast<int32_t>(1 + R.nextBelow(5)));

    for (unsigned B = 0; B != NumBlocks; ++B) {
      if (B != 0)
        F.label("b" + std::to_string(B));
      unsigned Ops = 2 + static_cast<unsigned>(R.nextBelow(8));
      for (unsigned O = 0; O != Ops; ++O)
        emitRandomOp(F, R);
      if (CanCall && R.chance(1, 3)) {
        unsigned Callee =
            FI + 1 + static_cast<unsigned>(R.nextBelow(NumFuncs - FI - 1));
        F.mov(16, pickReg(R));
        F.call("f" + std::to_string(Callee));
      }
      // Terminator: forward conditional branch, a forward jump table
      // (exercising unswitching and table relocation), or fallthrough.
      if (B + 1 < NumBlocks) {
        unsigned Target =
            B + 1 + static_cast<unsigned>(R.nextBelow(NumBlocks - B - 1));
        switch (R.nextBelow(4)) {
        case 0:
          F.beq(pickReg(R), "b" + std::to_string(Target));
          break;
        case 1:
          if (Target != B + 1) {
            F.bne(pickReg(R), "b" + std::to_string(Target));
          }
          break;
        case 2: {
          // Jump table over 2-4 strictly-forward targets; the index is
          // bounded by construction.
          unsigned NCases = 2 + static_cast<unsigned>(
                                    R.nextBelow(NumBlocks - B - 1 < 3
                                                    ? NumBlocks - B - 1
                                                    : 3));
          std::vector<std::string> Targets;
          for (unsigned C = 0; C != NCases; ++C)
            Targets.push_back(
                "b" + std::to_string(B + 1 +
                                     R.nextBelow(NumBlocks - B - 1)));
          // The index and scratch registers are dead after a switch (the
          // table idiom clobbers them; the unswitched chain does not), so
          // use r7/r8, which generated code never reads across
          // instructions. Masking with NCases-1 keeps the index strictly
          // below NCases (the result is a submask of NCases-1).
          F.andi(7, pickReg(R), NCases - 1);
          F.switchJump(7, 8, "jt" + std::to_string(B), Targets,
                       /*SizeKnown=*/R.chance(4, 5));
          break;
        }
        default:
          break; // Plain fallthrough.
        }
      }
    }
    // Loop tail: counted backward branch (leaf functions only).
    if (Loops) {
      F.subi(9, 9, 1);
      F.bne(9, "b1");
    }
    F.mov(0, pickReg(R));
    if (CanCall)
      F.leave(8);
    else
      F.ret();
  }

  PB.setEntry("main");
  return PB.build();
}

} // namespace testgen

#endif // SQUASH_TESTS_RANDOMPROGRAMGEN_H
