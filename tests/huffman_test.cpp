//===- tests/huffman_test.cpp - Canonical Huffman tests -------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "huff/Huffman.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

using namespace squash;
using vea::BitReader;
using vea::BitWriter;
using vea::Rng;

/// Rebuilds the codeword of each symbol by encoding it alone.
static std::pair<uint32_t, unsigned> codewordOf(const CanonicalCode &C,
                                                uint32_t Sym) {
  BitWriter W;
  C.encode(Sym, W);
  unsigned Len = static_cast<unsigned>(W.bitSize());
  BitReader R(W.bytes());
  return {static_cast<uint32_t>(R.readBits(Len)), Len};
}

TEST(Huffman, PaperExampleCodewords) {
  // Section 3's example: N[2] = 3, N[3] = 1, N[5] = 4 gives codewords
  // 00, 01, 10, 110, 11100, 11101, 11110, 11111.
  // Frequencies engineered to produce those lengths.
  std::vector<std::pair<uint32_t, uint64_t>> Freqs = {
      {0, 20}, {1, 20}, {2, 20}, {3, 10}, {4, 2}, {5, 2}, {6, 2}, {7, 2}};
  CanonicalCode C = CanonicalCode::build(Freqs);
  ASSERT_EQ(C.numSymbols(), 8u);
  const std::vector<uint32_t> &N = C.lengthCounts();
  ASSERT_GE(N.size(), 6u);
  EXPECT_EQ(N[2], 3u);
  EXPECT_EQ(N[3], 1u);
  EXPECT_EQ(N[5], 4u);

  // b_1 = 0, b_i = 2 (b_{i-1} + N[i-1]).
  EXPECT_EQ(codewordOf(C, 0), std::make_pair(0b00u, 2u));
  EXPECT_EQ(codewordOf(C, 1), std::make_pair(0b01u, 2u));
  EXPECT_EQ(codewordOf(C, 2), std::make_pair(0b10u, 2u));
  EXPECT_EQ(codewordOf(C, 3), std::make_pair(0b110u, 3u));
  EXPECT_EQ(codewordOf(C, 4), std::make_pair(0b11100u, 5u));
  EXPECT_EQ(codewordOf(C, 7), std::make_pair(0b11111u, 5u));
}

TEST(Huffman, LengthsMatchClassicHuffman) {
  Rng R(123);
  for (int Trial = 0; Trial != 50; ++Trial) {
    size_t N = 2 + R.nextBelow(40);
    std::vector<uint64_t> F;
    std::vector<std::pair<uint32_t, uint64_t>> Pairs;
    for (size_t I = 0; I != N; ++I) {
      uint64_t Freq = 1 + R.nextBelow(1000);
      F.push_back(Freq);
      Pairs.push_back({static_cast<uint32_t>(I), Freq});
    }
    std::vector<unsigned> Lengths = huffmanLengths(F);
    CanonicalCode C = CanonicalCode::build(Pairs);
    // The canonical code preserves the optimal codeword lengths.
    std::multiset<unsigned> A(Lengths.begin(), Lengths.end()), B;
    for (size_t I = 0; I != N; ++I)
      B.insert(C.lengthOf(static_cast<uint32_t>(I)));
    EXPECT_EQ(A, B);
  }
}

TEST(Huffman, KraftEquality) {
  // An optimal prefix code over >= 2 symbols is complete: sum 2^-len == 1.
  Rng R(7);
  for (int Trial = 0; Trial != 30; ++Trial) {
    std::vector<std::pair<uint32_t, uint64_t>> Pairs;
    size_t N = 2 + R.nextBelow(60);
    for (size_t I = 0; I != N; ++I)
      Pairs.push_back({static_cast<uint32_t>(I * 3), 1 + R.nextBelow(500)});
    CanonicalCode C = CanonicalCode::build(Pairs);
    double Kraft = 0;
    for (auto &[Sym, Freq] : Pairs)
      Kraft += std::pow(2.0, -static_cast<double>(C.lengthOf(Sym)));
    EXPECT_NEAR(Kraft, 1.0, 1e-9);
  }
}

TEST(Huffman, CodewordsAreConsecutivePerLength) {
  Rng R(17);
  std::vector<std::pair<uint32_t, uint64_t>> Pairs;
  for (uint32_t I = 0; I != 30; ++I)
    Pairs.push_back({I, 1 + R.nextBelow(300)});
  CanonicalCode C = CanonicalCode::build(Pairs);
  std::map<unsigned, std::vector<uint32_t>> ByLen;
  for (auto &[Sym, Freq] : Pairs) {
    auto [Word, Len] = codewordOf(C, Sym);
    ByLen[Len].push_back(Word);
  }
  for (auto &[Len, Words] : ByLen) {
    std::sort(Words.begin(), Words.end());
    for (size_t I = 1; I < Words.size(); ++I)
      EXPECT_EQ(Words[I], Words[I - 1] + 1)
          << "codewords of length " << Len << " not consecutive";
  }
}

TEST(Huffman, RoundTripRandomStreams) {
  Rng R(31337);
  for (int Trial = 0; Trial != 40; ++Trial) {
    // Skewed distribution over a random alphabet.
    size_t N = 1 + R.nextBelow(100);
    std::vector<std::pair<uint32_t, uint64_t>> Pairs;
    for (size_t I = 0; I != N; ++I)
      Pairs.push_back(
          {static_cast<uint32_t>(R.nextBelow(1 << 20)), 1 + R.nextBelow(99)});
    // Dedup symbols.
    std::sort(Pairs.begin(), Pairs.end());
    Pairs.erase(std::unique(Pairs.begin(), Pairs.end(),
                            [](auto &A, auto &B) {
                              return A.first == B.first;
                            }),
                Pairs.end());
    CanonicalCode C = CanonicalCode::build(Pairs);

    std::vector<uint32_t> Message;
    for (int I = 0; I != 500; ++I)
      Message.push_back(Pairs[R.nextBelow(Pairs.size())].first);
    BitWriter W;
    for (uint32_t Sym : Message)
      C.encode(Sym, W);
    BitReader Rd(W.bytes());
    for (uint32_t Sym : Message)
      ASSERT_EQ(C.decode(Rd), Sym);
  }
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  CanonicalCode C = CanonicalCode::build({{42, 100}});
  EXPECT_EQ(C.lengthOf(42), 1u);
  BitWriter W;
  C.encode(42, W);
  C.encode(42, W);
  BitReader R(W.bytes());
  EXPECT_EQ(C.decode(R), 42u);
  EXPECT_EQ(C.decode(R), 42u);
}

TEST(Huffman, EmptyCode) {
  CanonicalCode C = CanonicalCode::build({});
  EXPECT_TRUE(C.empty());
  BitWriter W;
  W.writeBits(0xFF, 8);
  BitReader R(W.bytes());
  EXPECT_EQ(C.decode(R), CanonicalCode::Invalid);
}

TEST(Huffman, ZeroFrequencySymbolsDropped) {
  CanonicalCode C = CanonicalCode::build({{1, 10}, {2, 0}, {3, 10}});
  EXPECT_EQ(C.numSymbols(), 2u);
  EXPECT_EQ(C.lengthOf(2), 0u);
}

TEST(Huffman, SerializeDeserialize) {
  Rng R(555);
  std::vector<std::pair<uint32_t, uint64_t>> Pairs;
  for (uint32_t I = 0; I != 64; ++I)
    Pairs.push_back({I, 1 + R.nextBelow(1000)});
  CanonicalCode C = CanonicalCode::build(Pairs);

  BitWriter W;
  C.serialize(W, 16);
  EXPECT_EQ(W.bitSize(), C.representationBits(16));

  BitReader Rd(W.bytes());
  CanonicalCode D = CanonicalCode::deserialize(Rd, 16);
  ASSERT_EQ(D.numSymbols(), C.numSymbols());
  EXPECT_EQ(D.lengthCounts(), C.lengthCounts());
  EXPECT_EQ(D.values(), C.values());
  for (auto &[Sym, Freq] : Pairs)
    EXPECT_EQ(D.lengthOf(Sym), C.lengthOf(Sym));
}

TEST(Huffman, CorruptStreamDetected) {
  // A stream of all-ones longer than the longest codeword must either
  // decode to valid symbols or return Invalid — never crash or loop.
  CanonicalCode C = CanonicalCode::build({{0, 1000}, {1, 1}, {2, 1}});
  BitWriter W;
  for (int I = 0; I != 64; ++I)
    W.writeBit(1);
  BitReader R(W.bytes());
  for (int I = 0; I != 70; ++I) {
    uint32_t Sym = C.decode(R);
    if (Sym == CanonicalCode::Invalid)
      SUCCEED();
  }
}

TEST(Huffman, EncodedBitsAccounting) {
  std::vector<std::pair<uint32_t, uint64_t>> Pairs = {{0, 8}, {1, 4},
                                                      {2, 2}, {3, 2}};
  CanonicalCode C = CanonicalCode::build(Pairs);
  // Optimal lengths: 1, 2, 3, 3 -> 8*1 + 4*2 + 2*3 + 2*3 = 28 bits.
  EXPECT_EQ(C.encodedBits(Pairs), 28u);
}
