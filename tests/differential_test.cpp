//===- tests/differential_test.cpp - Differential-execution fuzzing -------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// The lock-step property behind the decode cache and the parallel squash
// pipeline: every transformation of a program — compaction, squashing with
// a serial or parallel encoder, and execution through 1..4 decode-cache
// slots — must be observationally equivalent to the plain build. Each
// random program (64 seeds, shared generator in RandomProgramGen.h) is run
// under every configuration and all architectural results (exit code,
// output stream, halt status) are compared against the plain baseline.
//
// The parallel encoder additionally has a stronger obligation: its output
// must be BYTE-IDENTICAL to the serial encoder's, not merely equivalent.
// That is asserted per seed here and across the full workload suite in
// ParallelSquashDeterminism.
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"

#include "compact/Compact.h"
#include "link/Layout.h"
#include "sim/Machine.h"
#include "squash/Driver.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;
using testgen::randomProgram;

namespace {

constexpr uint64_t MaxInstructions = 20'000'000;

/// The architectural observables every configuration must agree on.
struct Observed {
  RunStatus Status;
  uint32_t ExitCode = 0;
  std::vector<uint8_t> Output;
  std::string FaultMessage;
};

Observed runPlain(const Image &Img) {
  Machine::Config MC;
  MC.MaxInstructions = MaxInstructions;
  Machine M(Img, MC);
  RunResult R = M.run();
  return {R.Status, R.ExitCode, M.output(), R.FaultMessage};
}

Observed runSquashed(const SquashResult &SR) {
  Machine::Config MC;
  MC.MaxInstructions = MaxInstructions;
  Machine M(SR.SP.Img, MC);
  RuntimeSystem RT(SR.SP);
  if (!SR.Identity) {
    if (Status St = RT.attach(M); !St.ok())
      return {RunStatus::Fault, 0, {}, St.toString()};
  }
  RunResult R = M.run();
  return {R.Status, R.ExitCode, M.output(), R.FaultMessage};
}

void expectSame(const Observed &Got, const Observed &Want,
                const std::string &Tag) {
  ASSERT_EQ(Got.Status, RunStatus::Halted) << Tag << ": " << Got.FaultMessage;
  EXPECT_EQ(Got.ExitCode, Want.ExitCode) << Tag;
  EXPECT_EQ(Got.Output, Want.Output) << Tag << " output diverged";
}

class Differential : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(Differential, AllConfigurationsAgree) {
  const uint64_t Seed = static_cast<uint64_t>(GetParam()) * 2477 + 13;
  const std::string SeedTag = "seed " + std::to_string(Seed);

  // Configuration 1: plain — the uncompacted, unsquashed reference.
  Observed Base;
  {
    Program Plain = randomProgram(Seed);
    Base = runPlain(layoutProgram(Plain));
    ASSERT_EQ(Base.Status, RunStatus::Halted)
        << SeedTag << " plain: " << Base.FaultMessage;
  }

  // Configuration 2: compacted.
  Program Prog = randomProgram(Seed);
  compactProgram(Prog).take();
  Image Compacted = layoutProgram(Prog);
  expectSame(runPlain(Compacted), Base, SeedTag + " compacted");

  Profile Prof;
  {
    Machine::Config PC;
    PC.MaxInstructions = MaxInstructions;
    PC.CollectBlockProfile = true;
    Machine MP(Compacted, PC);
    ASSERT_EQ(MP.run().Status, RunStatus::Halted);
    Prof = MP.takeProfile();
  }

  // Everything below squashes at θ = 1.0 (every block a candidate: maximum
  // runtime-machinery coverage) with a small buffer bound so the program
  // splits into several regions — without that the cache-slot sweep would
  // never fill more than one slot.
  Options Common;
  Common.Theta = 1.0;
  Common.BufferBoundBytes = 256;
  Common.MoveToFront = (GetParam() % 2) == 1;

  // Configurations 3 and 4: squashed, serial vs. parallel encoder. The
  // images must match byte for byte before either is run.
  Options Serial = Common;
  Serial.SquashThreads = 1;
  SquashResult SerialSR = squashProgram(Prog, Prof, Serial).take();

  Options Parallel = Common;
  Parallel.SquashThreads = 4;
  SquashResult ParallelSR = squashProgram(Prog, Prof, Parallel).take();

  ASSERT_EQ(SerialSR.Identity, ParallelSR.Identity) << SeedTag;
  EXPECT_EQ(SerialSR.SP.Img.Base, ParallelSR.SP.Img.Base) << SeedTag;
  ASSERT_EQ(SerialSR.SP.Img.Bytes, ParallelSR.SP.Img.Bytes)
      << SeedTag << ": parallel encoder produced different image bytes";
  EXPECT_EQ(SerialSR.SP.Layout.BlobBytes, ParallelSR.SP.Layout.BlobBytes)
      << SeedTag;

  expectSame(runSquashed(SerialSR), Base, SeedTag + " squashed-serial");
  expectSame(runSquashed(ParallelSR), Base, SeedTag + " squashed-parallel");

  // Configurations 5..8: the decode cache at every slot count. Slot count
  // 1 with reuse enabled is the degenerate cache (single resident region);
  // 2..4 exercise fills, hits, LRU eviction, and direct resident stubs.
  for (uint32_t Slots : {1u, 2u, 3u, 4u}) {
    Options Cached = Common;
    Cached.CacheSlots = Slots;
    Cached.ReuseBufferedRegion = true;
    Cached.DirectResidentStubs = true;
    SquashResult SR = squashProgram(Prog, Prof, Cached).take();
    expectSame(runSquashed(SR), Base,
               SeedTag + " cache-slots=" + std::to_string(Slots));
  }

  // Configurations 9..14: every non-default coder, forced and
  // auto-selected (huffman is Common's default, covered above). Each
  // combines with the seed's MTF setting. The serial and parallel encoders
  // must stay byte-identical under every codec, and each image must agree
  // with the plain baseline.
  for (const char *Codec : {"pattern", "context", "auto"}) {
    Options CodecOpts = Common;
    CodecOpts.Codec = Codec;
    CodecOpts.SquashThreads = 1;
    SquashResult CSerial = squashProgram(Prog, Prof, CodecOpts).take();
    CodecOpts.SquashThreads = 4;
    SquashResult CParallel = squashProgram(Prog, Prof, CodecOpts).take();
    ASSERT_EQ(CSerial.SP.Img.Bytes, CParallel.SP.Img.Bytes)
        << SeedTag << " codec=" << Codec
        << ": parallel encode not byte-identical to serial";
    expectSame(runSquashed(CSerial), Base,
               SeedTag + " codec=" + std::string(Codec));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range(0, 64));

namespace {

class ParallelSquashDeterminism : public ::testing::TestWithParam<int> {};

constexpr double WorkloadScale = 0.05;

workloads::Workload buildWorkload(int Index) {
  using namespace workloads;
  switch (Index) {
  case 0:
    return buildAdpcm(WorkloadScale);
  case 1:
    return buildEpic(WorkloadScale);
  case 2:
    return buildG721Dec(WorkloadScale);
  case 3:
    return buildG721Enc(WorkloadScale);
  case 4:
    return buildGsm(WorkloadScale);
  case 5:
    return buildJpegDec(WorkloadScale);
  case 6:
    return buildJpegEnc(WorkloadScale);
  case 7:
    return buildMpeg2Dec(WorkloadScale);
  case 8:
    return buildMpeg2Enc(WorkloadScale);
  case 9:
    return buildPgp(WorkloadScale);
  default:
    return buildRasta(WorkloadScale);
  }
}

const char *workloadName(int Index) {
  static const char *Names[] = {"adpcm",    "epic",     "g721_dec",
                                "g721_enc", "gsm",      "jpeg_dec",
                                "jpeg_enc", "mpeg2dec", "mpeg2enc",
                                "pgp",      "rasta"};
  return Names[Index];
}

} // namespace

TEST_P(ParallelSquashDeterminism, ByteIdenticalToSerial) {
  workloads::Workload W = buildWorkload(GetParam());
  compactProgram(W.Prog).take();
  Image Baseline = layoutProgram(W.Prog);
  Profile Prof = profileImage(Baseline, W.ProfilingInput).take();

  Options Serial;
  Serial.Theta = 1e-2;
  Serial.SquashThreads = 1;
  SquashResult SerialSR = squashProgram(W.Prog, Prof, Serial).take();

  for (uint32_t Threads : {2u, 4u, 8u}) {
    Options Parallel = Serial;
    Parallel.SquashThreads = Threads;
    SquashResult ParallelSR = squashProgram(W.Prog, Prof, Parallel).take();

    ASSERT_EQ(SerialSR.SP.Img.Bytes, ParallelSR.SP.Img.Bytes)
        << W.Name << ": " << Threads
        << "-thread encode not byte-identical to serial";
    EXPECT_EQ(SerialSR.SP.Layout.BlobBytes, ParallelSR.SP.Layout.BlobBytes)
        << W.Name;
    EXPECT_EQ(SerialSR.SP.Footprint.totalCodeBytes(),
              ParallelSR.SP.Footprint.totalCodeBytes())
        << W.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ParallelSquashDeterminism,
                         ::testing::Range(0, 11),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return workloadName(Info.param);
                         });
