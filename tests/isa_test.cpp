//===- tests/isa_test.cpp - VEA-32 encoding tests -------------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "isa/Disasm.h"
#include "isa/Isa.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace vea;

TEST(Isa, FormatLayoutsCover32Bits) {
  for (Format Form : {Format::Mem, Format::Branch, Format::Jump,
                      Format::OpRRR, Format::OpRRI, Format::Sys}) {
    const FormatLayout &L = formatLayout(Form);
    unsigned Total = 0;
    uint32_t Mask = 0;
    for (unsigned I = 0; I != L.Count; ++I) {
      const FieldSlot &S = L.Slots[I];
      EXPECT_EQ(S.Width, fieldWidth(S.Kind));
      Total += S.Width;
      uint32_t FieldMask = (S.Width == 32 ? ~0u : ((1u << S.Width) - 1))
                           << S.Shift;
      EXPECT_EQ(Mask & FieldMask, 0u) << "overlapping fields";
      Mask |= FieldMask;
    }
    EXPECT_EQ(Total, 32u);
    EXPECT_EQ(Mask, 0xFFFFFFFFu);
  }
}

TEST(Isa, OpcodeTableConsistency) {
  for (unsigned I = 0; I != NumOpcodes; ++I) {
    Opcode Op = static_cast<Opcode>(I);
    const OpcodeInfo &Info = opcodeInfo(Op);
    EXPECT_EQ(opcodeByName(Info.Name), Op == Opcode::Sentinel
                                           ? Opcode::Sentinel
                                           : Op);
  }
  EXPECT_EQ(opcodeByName("no_such_op"), Opcode::Sentinel);
}

/// Round-trip every opcode with random field contents.
class EncodeRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(EncodeRoundTrip, AllFieldsSurvive) {
  Opcode Op = static_cast<Opcode>(GetParam());
  Rng R(GetParam() * 7919 + 1);
  const FormatLayout &Layout = formatLayout(formatOf(Op));
  for (int Trial = 0; Trial != 200; ++Trial) {
    MInst I(Op);
    for (unsigned S = 1; S != Layout.Count; ++S) {
      FieldKind Kind = Layout.Slots[S].Kind;
      uint32_t Max = Layout.Slots[S].Width == 32
                         ? ~0u
                         : (1u << Layout.Slots[S].Width) - 1;
      I.set(Kind, static_cast<uint32_t>(R.next()) & Max);
    }
    uint32_t Word = encode(I);
    MInst D = decode(Word);
    EXPECT_EQ(D.Op, Op);
    for (unsigned S = 0; S != Layout.Count; ++S)
      EXPECT_EQ(D.get(Layout.Slots[S].Kind), I.get(Layout.Slots[S].Kind));
    EXPECT_EQ(encode(D), Word);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::Range(1u, NumOpcodes));

TEST(Isa, SignedDisplacements) {
  MInst I = makeBranch(Opcode::Br, 5, -3);
  EXPECT_EQ(I.disp21(), -3);
  I = makeBranch(Opcode::Br, 5, (1 << 20) - 1);
  EXPECT_EQ(I.disp21(), (1 << 20) - 1);
  MInst M = makeMem(Opcode::Ldw, 1, 2, -32768);
  EXPECT_EQ(M.disp16(), -32768);
  M = makeMem(Opcode::Ldw, 1, 2, 32767);
  EXPECT_EQ(decode(encode(M)).disp16(), 32767);
}

TEST(Isa, SentinelIsIllegal) {
  EXPECT_FALSE(isLegalWord(0));
  EXPECT_FALSE(opcodeInfo(Opcode::Sentinel).IsLegal);
  EXPECT_FALSE(opcodeInfo(Opcode::Bsrx).IsLegal);
  EXPECT_TRUE(isLegalWord(encode(makeNop())));
}

TEST(Isa, IllegalOpcodeBitsRejected) {
  for (uint32_t OpBits = NumOpcodes; OpBits != 64; ++OpBits)
    EXPECT_FALSE(isLegalWord(OpBits << 26));
}

TEST(Isa, NopClassification) {
  EXPECT_TRUE(isNop(makeNop()));
  EXPECT_TRUE(isNop(makeRRR(Opcode::Add, RegZero, 1, 2)));
  EXPECT_FALSE(isNop(makeRRR(Opcode::Add, 1, 1, 2)));
  // Divides may fault: not nops even when dead.
  EXPECT_FALSE(isNop(makeRRR(Opcode::Udiv, RegZero, 1, 2)));
  EXPECT_FALSE(isNop(makeBranch(Opcode::Br, RegZero, 0)));
}

TEST(Isa, Classification) {
  EXPECT_TRUE(isCondBranch(Opcode::Beq));
  EXPECT_FALSE(isCondBranch(Opcode::Br));
  EXPECT_TRUE(isUncondBranch(Opcode::Bsr));
  EXPECT_TRUE(isDirectCall(Opcode::Bsrx));
  EXPECT_TRUE(isIndirectJump(Opcode::Ret));
  EXPECT_FALSE(isControlFlow(Opcode::Add));
  EXPECT_TRUE(isControlFlow(Opcode::Jmp));
}

TEST(Disasm, RendersOperands) {
  EXPECT_EQ(disassemble(makeMem(Opcode::Ldw, 1, 30, 8)), "ldw r1, 8(r30)");
  EXPECT_EQ(disassemble(makeRRR(Opcode::Add, 3, 1, 2)), "add r3, r1, r2");
  EXPECT_EQ(disassemble(makeRRI(Opcode::Addi, 3, 1, 200)),
            "addi r3, r1, 200");
  EXPECT_EQ(disassemble(makeJump(Opcode::Ret, 31, 26)), "ret r31, (r26)");
  EXPECT_EQ(disassemble(makeSys(SysFunc::Halt)), "sys 0");
  // With a PC, branch targets render absolutely.
  EXPECT_EQ(disassemble(makeBranch(Opcode::Br, 31, 1), 0x1000),
            "br r31, 0x1008");
}
