//===- tests/ir_test.cpp - IR, builder, verifier, CFG tests ---------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/IR.h"

#include <gtest/gtest.h>

using namespace vea;

/// A minimal two-function program used across the tests.
static Program twoFunctionProgram() {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(16, 1);
    F.call("helper");
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("helper");
    F.addi(0, 16, 1);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

TEST(IrVerify, AcceptsValidProgram) {
  Program P = twoFunctionProgram();
  EXPECT_EQ(P.verify(), "");
  EXPECT_EQ(P.instructionCount(), 5u);
}

TEST(IrVerify, RejectsDuplicateLabels) {
  Program P = twoFunctionProgram();
  P.Functions[0].Blocks.push_back(P.Functions[0].Blocks[0]);
  EXPECT_NE(P.verify().find("duplicate"), std::string::npos);
}

TEST(IrVerify, RejectsUnknownBranchTarget) {
  Program P = twoFunctionProgram();
  Inst Br;
  Br.Op = Opcode::Beq;
  Br.Ra = 1;
  Br.Symbol = "nowhere";
  Br.Reloc = RelocKind::BranchDisp;
  P.Functions[1].Blocks[0].Insts.insert(
      P.Functions[1].Blocks[0].Insts.begin(), Br);
  EXPECT_NE(P.verify(), "");
}

TEST(IrVerify, RejectsCrossFunctionBranch) {
  Program P = twoFunctionProgram();
  Inst Br;
  Br.Op = Opcode::Br;
  Br.Symbol = "helper"; // A Br (not Bsr) into another function.
  Br.Reloc = RelocKind::BranchDisp;
  P.Functions[0].Blocks[0].Insts.back() = Br;
  EXPECT_NE(P.verify().find("outside function"), std::string::npos);
}

TEST(IrVerify, RejectsMidBlockUnconditionalTransfer) {
  Program P = twoFunctionProgram();
  Inst Br;
  Br.Op = Opcode::Br;
  Br.Symbol = "main";
  Br.Reloc = RelocKind::BranchDisp;
  auto &Insts = P.Functions[0].Blocks[0].Insts;
  Insts.insert(Insts.begin(), Br);
  EXPECT_NE(P.verify().find("not at end"), std::string::npos);
}

TEST(IrVerify, AcceptsMidBlockConditionalBranch) {
  // Superblocks: conditional branches may appear mid-block.
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.li(1, 1);
  F.beq(1, "tail");
  F.li(1, 2);
  F.beq(1, "tail");
  F.li(16, 0);
  F.halt();
  F.label("tail");
  F.li(16, 1);
  F.halt();
  PB.setEntry("main");
  Program P = PB.build();
  EXPECT_EQ(P.verify(), "");
}

TEST(IrVerify, RejectsFallOffFunctionEnd) {
  Program P = twoFunctionProgram();
  P.Functions[1].Blocks[0].Insts.pop_back(); // Drop the ret.
  EXPECT_NE(P.verify().find("falls off"), std::string::npos);
}

TEST(IrVerify, RejectsOutOfRangeLiteral) {
  Program P = twoFunctionProgram();
  P.Functions[1].Blocks[0].Insts[0].Imm = 300;
  EXPECT_NE(P.verify().find("literal"), std::string::npos);
}

TEST(IrVerify, RejectsMissingEntry) {
  Program P = twoFunctionProgram();
  P.EntryFunction = "nope";
  EXPECT_NE(P.verify(), "");
}

TEST(Cfg, BranchAndFallthroughEdges) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.li(1, 3);
  F.label("loop");
  F.subi(1, 1, 1);
  F.bne(1, "loop");
  F.label("exit");
  F.li(16, 0);
  F.halt();
  PB.setEntry("main");
  Program P = PB.build();
  Cfg G(P);

  unsigned Entry = G.idOf("main");
  unsigned Loop = G.idOf("main.loop");
  unsigned Exit = G.idOf("main.exit");
  ASSERT_EQ(G.numBlocks(), 3u);
  EXPECT_EQ(G.succs(Entry), std::vector<unsigned>{Loop});
  std::vector<unsigned> LoopSuccs = G.succs(Loop);
  std::sort(LoopSuccs.begin(), LoopSuccs.end());
  EXPECT_EQ(LoopSuccs, (std::vector<unsigned>{Loop, Exit}));
  EXPECT_TRUE(G.succs(Exit).empty()); // halt: no successors
}

TEST(Cfg, CallEdgesAndSetjmp) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.call("uses_setjmp");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("uses_setjmp");
    F.sys(SysFunc::Setjmp);
    F.ret();
  }
  PB.setEntry("main");
  Program P = PB.build();
  Cfg G(P);
  EXPECT_EQ(G.callees(G.idOf("main")),
            std::vector<unsigned>{G.idOf("uses_setjmp")});
  EXPECT_FALSE(G.functionCallsSetjmp(0));
  EXPECT_TRUE(G.functionCallsSetjmp(1));
}

TEST(Cfg, AddressTakenViaDataAndLa) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.la(1, "target");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("target");
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("tabled");
    F.ret();
  }
  PB.addSymbolTable("fns", {"tabled"});
  PB.setEntry("main");
  Program P = PB.build();
  Cfg G(P);
  EXPECT_TRUE(G.isAddressTaken(G.idOf("target")));
  EXPECT_TRUE(G.isAddressTaken(G.idOf("tabled")));
  EXPECT_FALSE(G.isAddressTaken(G.idOf("main")));
}

TEST(Cfg, SwitchTargetsAreEdges) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.li(1, 0);
  F.switchJump(1, 2, "tab", {"a", "b"});
  F.label("a");
  F.li(16, 0);
  F.halt();
  F.label("b");
  F.li(16, 1);
  F.halt();
  PB.setEntry("main");
  Program P = PB.build();
  Cfg G(P);
  std::vector<unsigned> S = G.succs(G.idOf("main"));
  std::sort(S.begin(), S.end());
  EXPECT_EQ(S, (std::vector<unsigned>{G.idOf("main.a"), G.idOf("main.b")}));
  EXPECT_FALSE(G.hasIndirectCall(G.idOf("main")));
}

TEST(Cfg, UnknownJumpMarksIndirect) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.li(1, 0x2000);
  Inst J;
  J.Op = Opcode::Jmp;
  J.Rb = 1;
  F.emit(J);
  PB.setEntry("main");
  Program P = PB.build();
  Cfg G(P);
  EXPECT_TRUE(G.hasIndirectCall(G.idOf("main")));
}

TEST(Builder, LiExpandsLargeConstants) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.li(1, 42);          // 1 instruction
  F.li(2, 0x12345678);  // 2 instructions
  F.li(3, -1000000);    // 2 instructions
  F.li(16, 0);
  F.halt();
  PB.setEntry("main");
  Program P = PB.build();
  EXPECT_EQ(P.Functions[0].Blocks[0].Insts.size(), 1u + 2 + 2 + 1 + 1);
}

TEST(Builder, CanFallThroughSemantics) {
  ProgramBuilder PB("t");
  FunctionBuilder F = PB.beginFunction("main");
  F.li(16, 0);
  F.halt();
  F.label("r");
  F.ret();
  F.label("b");
  F.br("r");
  F.label("c");
  F.beq(1, "r");
  F.label("d");
  F.call("main"); // Trailing call: falls through.
  F.label("e");
  F.li(16, 0);
  F.halt();
  PB.setEntry("main");
  Program P = PB.build();
  const auto &B = P.Functions[0].Blocks;
  EXPECT_FALSE(B[0].canFallThrough()); // halt
  EXPECT_FALSE(B[1].canFallThrough()); // ret
  EXPECT_FALSE(B[2].canFallThrough()); // br
  EXPECT_TRUE(B[3].canFallThrough());  // cond branch
  EXPECT_TRUE(B[4].canFallThrough());  // call
}
