//===- tests/runtime_test.cpp - Decompressor runtime tests ----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Targets the runtime machinery of Sections 2.2 / 2.3: entry stubs, the
// CreateStub / Decompress split, reference-counted restore stubs, calls
// from the runtime buffer, recursion through compressed regions, the
// buffer-safe call optimization, and the failure modes.
//
//===----------------------------------------------------------------------===//

#include "link/Layout.h"
#include "ir/Builder.h"
#include "sim/Machine.h"
#include "squash/Driver.h"

#include <gtest/gtest.h>

using namespace vea;
using namespace squash;

namespace {

/// Helper bundling the original/squashed comparison.
struct Pipeline {
  Program Prog;
  Image Baseline;
  Profile Prof;

  explicit Pipeline(Program P) : Prog(std::move(P)) {
    Baseline = layoutProgram(Prog);
  }

  void profile(std::vector<uint8_t> Input) {
    Prof = profileImage(Baseline, std::move(Input)).take();
  }

  /// Runs baseline and squashed on \p Input; requires identical results.
  SquashedRun check(const Options &Opts, std::vector<uint8_t> Input,
                    SquashResult *OutSR = nullptr) {
    Machine M(Baseline);
    M.setInput(Input);
    RunResult Base = M.run();
    EXPECT_EQ(Base.Status, RunStatus::Halted);

    SquashResult SR = squashProgram(Prog, Prof, Opts).take();
    Machine M2(SR.SP.Img);
    RuntimeSystem RT(SR.SP);
    Status At = RT.attach(M2);
    EXPECT_TRUE(At.ok()) << At.toString();
    M2.setInput(Input);
    RunResult R = M2.run();
    EXPECT_EQ(R.Status, RunStatus::Halted) << R.FaultMessage;
    EXPECT_EQ(R.ExitCode, Base.ExitCode);
    EXPECT_EQ(M2.output(), M.output());
    if (OutSR)
      *OutSR = SR;
    SquashedRun Out;
    Out.Run = R;
    Out.Runtime = RT.stats();
    return Out;
  }
};

/// A cold function that calls another cold function (call from the runtime
/// buffer; return needs a restore stub).
Program callFromBufferProgram() {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip"); // Input byte 0: skip the cold path.
    F.li(16, 5);
    F.call("coldA");
    F.mov(16, 0);
    F.halt();
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("coldA");
    F.enter(8);
    F.addi(16, 16, 10); // 15
    F.call("coldB");
    F.addi(0, 0, 1); // Uses the value coldB returns: 15*2 + 1 = 31.
    F.leave(8);
  }
  {
    FunctionBuilder F = PB.beginFunction("coldB");
    for (int I = 0; I != 12; ++I)
      F.addi(1, 1, 1); // Padding so both functions form real regions.
    F.add(0, 16, 16);
    F.ret();
  }
  PB.setEntry("main");
  return PB.build();
}

} // namespace

TEST(Runtime, CallFromBufferRestoresCaller) {
  Pipeline P(callFromBufferProgram());
  P.profile({0}); // Cold path never profiled.
  Options Opts;
  Opts.PackRegions = false; // Keep coldA and coldB in separate regions.
  SquashResult SR;
  SquashedRun R = P.check(Opts, {1}, &SR);
  ASSERT_FALSE(SR.Identity);
  // coldA and coldB land in regions; the call out of the buffer forces a
  // restore stub and a re-decompression of the caller.
  EXPECT_GE(R.Runtime.Decompressions, 2u);
  EXPECT_GE(R.Runtime.RestoreStubCalls, 1u);
  EXPECT_GE(R.Runtime.StubCreates, 1u);
  EXPECT_EQ(R.Run.ExitCode, 31u);
}

TEST(Runtime, RecursionThroughCompressedRegion) {
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    F.li(16, 10);
    F.call("fact"); // 10! mod 2^32
    F.mov(16, 0);
    F.andi(16, 16, 0xFF);
    F.halt();
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("fact");
    // Pad the entry and the recursive arm so they exceed the buffer bound
    // together: the recursion then crosses region boundaries.
    for (int I = 0; I != 20; ++I)
      F.addi(2, 2, 1);
    F.bne(16, "rec");
    F.li(0, 1);
    F.ret();
    F.label("rec");
    for (int I = 0; I != 15; ++I)
      F.addi(2, 2, 1);
    F.enter(12);
    F.stw(16, 30, 4);
    F.subi(16, 16, 1);
    F.call("fact"); // Self-recursive call from the buffer.
    F.ldw(1, 30, 4);
    F.mul(0, 0, 1);
    F.leave(12);
  }
  PB.setEntry("main");

  Pipeline P(PB.build());
  P.profile({0});
  Options Opts;
  Opts.PackRegions = false;
  Opts.BufferBoundBytes = 128; // 32 instructions: entry and rec split.
  SquashResult SR;
  SquashedRun R = P.check(Opts, {1}, &SR);
  ASSERT_FALSE(SR.Identity);
  // One restore stub per call site, reference-counted across the whole
  // recursion (paper: "we create only one restore stub for a particular
  // call site and maintain a usage count").
  EXPECT_GE(R.Runtime.StubReuses, 5u);
  EXPECT_LE(R.Runtime.MaxLiveStubs, 4u);
  EXPECT_GE(R.Runtime.Decompressions, 10u);
}

TEST(Runtime, TraceShowsTheProtocol) {
  // The observable event sequence of Sections 2.2/2.3 for "cold caller
  // calls cold callee": enter A via stub, fill A, create a restore stub at
  // the call, enter B via stub, fill B, then B's return drives the restore
  // path: enter via restore stub, release it, refill A.
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  Options Opts;
  Opts.PackRegions = false;
  SquashResult SR = squashProgram(P.Prog, P.Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);

  Machine M(SR.SP.Img);
  RuntimeSystem RT(SR.SP);
  RT.enableTrace();
  ASSERT_TRUE(RT.attach(M).ok());
  M.setInput({1});
  ASSERT_EQ(M.run().Status, RunStatus::Halted);

  using K = RuntimeSystem::Event::Kind;
  std::vector<K> Kinds;
  for (const auto &E : RT.events())
    Kinds.push_back(E.K);
  // Expected shape (regions A and B may carry any indices):
  std::vector<K> Want = {K::EnterViaStub,    K::Decompress, K::StubCreate,
                         K::EnterViaStub,    K::Decompress,
                         K::EnterViaRestore, K::StubRelease, K::Decompress};
  ASSERT_EQ(Kinds, Want);
  // The restore-stub events agree on the stub address.
  uint32_t CreateAddr = 0, ReleaseAddr = 0;
  for (const auto &E : RT.events()) {
    if (E.K == K::StubCreate)
      CreateAddr = E.Addr;
    if (E.K == K::StubRelease)
      ReleaseAddr = E.Addr;
  }
  EXPECT_EQ(CreateAddr, ReleaseAddr);
  // The two fills before the restore differ; the final fill re-loads the
  // caller's region.
  EXPECT_EQ(RT.events()[1].Region, RT.events()[7].Region);
  EXPECT_NE(RT.events()[1].Region, RT.events()[4].Region);
}

TEST(Runtime, RestoreStubsFullyReleased) {
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  Options Opts;
  Opts.PackRegions = false;
  SquashedRun R = P.check(Opts, {1});
  EXPECT_EQ(R.Runtime.LiveStubs, 0u) << "stub leaked after returns";
}

TEST(Runtime, BufferSafeCallSkipsStub) {
  // A cold function calling a hot leaf: with the Section 6.1 optimization
  // the call needs no restore stub at all.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(9, 0);
    F.li(1, 50);
    F.label("warm"); // Keep `leaf` hot.
    F.li(16, 3);
    F.call("leaf");
    F.add(9, 9, 0);
    F.subi(1, 1, 1);
    F.bne(1, "warm");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    F.li(16, 7);
    F.call("coldCaller");
    F.add(9, 9, 0);
    F.label("skip");
    F.andi(16, 9, 0xFF);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("leaf");
    F.add(0, 16, 16);
    F.ret();
  }
  {
    FunctionBuilder F = PB.beginFunction("coldCaller");
    F.enter(8);
    for (int I = 0; I != 10; ++I)
      F.addi(1, 1, 1);
    F.call("leaf"); // Buffer-safe callee.
    F.addi(0, 0, 1);
    F.leave(8);
  }
  PB.setEntry("main");

  Pipeline P(PB.build());
  P.profile({0});

  Options WithOpt;
  WithOpt.BufferSafeCalls = true;
  SquashedRun R1 = P.check(WithOpt, {1});
  EXPECT_EQ(R1.Runtime.StubCreates, 0u);
  EXPECT_EQ(R1.Runtime.RestoreStubCalls, 0u);

  Options WithoutOpt;
  WithoutOpt.BufferSafeCalls = false;
  SquashedRun R2 = P.check(WithoutOpt, {1});
  EXPECT_GE(R2.Runtime.StubCreates, 1u);
  // The optimization saves decompressions at run time.
  EXPECT_LT(R1.Run.Cycles, R2.Run.Cycles);
}

TEST(Runtime, ReuseBufferedRegionSkipsRefill) {
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  Options Reuse;
  Reuse.ReuseBufferedRegion = true;
  Reuse.PackRegions = false;
  SquashedRun R1 = P.check(Reuse, {1});
  Options NoReuse;
  NoReuse.PackRegions = false;
  SquashedRun R2 = P.check(NoReuse, {1});
  EXPECT_LE(R1.Runtime.Decompressions, R2.Runtime.Decompressions);
}

TEST(Runtime, StubAreaExhaustionFaults) {
  // Two distinct cold call sites with only one restore-stub slot: the
  // second active stub cannot be allocated.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.sys(SysFunc::GetChar);
    F.beq(0, "skip");
    F.call("a");
    F.label("skip");
    F.li(16, 0);
    F.halt();
  }
  {
    FunctionBuilder F = PB.beginFunction("a");
    F.enter(8);
    for (int I = 0; I != 10; ++I)
      F.addi(1, 1, 1);
    F.call("b"); // Callsite 1 (stub live across b's body).
    F.leave(8);
  }
  {
    FunctionBuilder F = PB.beginFunction("b");
    F.enter(8);
    for (int I = 0; I != 10; ++I)
      F.addi(1, 1, 1);
    F.call("c"); // Callsite 2 while callsite 1's stub is still live.
    F.leave(8);
  }
  {
    FunctionBuilder F = PB.beginFunction("c");
    for (int I = 0; I != 10; ++I)
      F.addi(1, 1, 1);
    F.ret();
  }
  PB.setEntry("main");

  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {0}).take();

  Options Opts;
  Opts.MaxRestoreStubs = 1;
  Opts.PackRegions = false; // Keep a, b, c in distinct regions.
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);
  Machine M(SR.SP.Img);
  RuntimeSystem RT(SR.SP);
  ASSERT_TRUE(RT.attach(M).ok());
  M.setInput({1});
  RunResult R = M.run();
  EXPECT_EQ(R.Status, RunStatus::Fault);
  EXPECT_NE(R.FaultMessage.find("restore stub area exhausted"),
            std::string::npos);
}

TEST(Runtime, CorruptBlobFaultsCleanly) {
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  Options Opts;
  SquashResult SR = squashProgram(P.Prog, P.Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);
  // Flip bytes in the middle of the compressed blob.
  Image Broken = SR.SP.Img;
  for (uint32_t A = SR.SP.Layout.BlobBase + SR.SP.Layout.BlobBytes / 2;
       A < SR.SP.Layout.BlobBase + SR.SP.Layout.BlobBytes; ++A)
    Broken.Bytes[A - Broken.Base] ^= 0x5A;
  SquashedProgram SP2 = SR.SP;
  SP2.Img = Broken;
  Machine M(SP2.Img);
  RuntimeSystem RT(SP2);
  // The blob checksum catches the corruption at attach; nothing is
  // registered, so running the image faults cleanly at the first entry
  // stub instead of hanging or exiting 31.
  Status At = RT.attach(M);
  EXPECT_FALSE(At.ok());
  EXPECT_EQ(At.code(), StatusCode::CorruptBlob);
  M.setInput({1});
  RunResult R = M.run();
  EXPECT_NE(R.Status, RunStatus::InstLimit);
  EXPECT_FALSE(R.Status == RunStatus::Halted && R.ExitCode == 31);
}

TEST(Runtime, IdentityWhenNothingCompressible) {
  // An entirely hot program squashes to itself.
  ProgramBuilder PB("t");
  {
    FunctionBuilder F = PB.beginFunction("main");
    F.li(1, 9);
    F.label("loop");
    F.subi(1, 1, 1);
    F.bne(1, "loop");
    F.li(16, 0);
    F.halt();
  }
  PB.setEntry("main");
  Program Prog = PB.build();
  Image Baseline = layoutProgram(Prog);
  Profile Prof = profileImage(Baseline, {}).take();
  Options Opts;
  SquashResult SR = squashProgram(Prog, Prof, Opts).take();
  EXPECT_TRUE(SR.Identity);
  EXPECT_EQ(SR.SP.Footprint.totalCodeBytes(),
            SR.SP.Footprint.OriginalCodeBytes);
  Machine M(SR.SP.Img);
  EXPECT_EQ(M.run().Status, RunStatus::Halted);
}

TEST(Runtime, JumpIntoDecompressorMiddleFaults) {
  // PCs inside the trap range but past the entry points (the zero
  // sentinel words) must fault with a diagnostic, not dispatch.
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  SquashResult SR = squashProgram(P.Prog, P.Prof, Options()).take();
  ASSERT_FALSE(SR.Identity);
  const RuntimeLayout &L = SR.SP.Layout;
  for (uint32_t PC : {L.DecompBase + 4 * RuntimeLayout::NumEntryPoints,
                      L.DecompEnd - 4}) {
    Machine M(SR.SP.Img);
    RuntimeSystem RT(SR.SP);
    ASSERT_TRUE(RT.attach(M).ok());
    M.setInput({1});
    M.setPC(PC);
    RunResult R = M.run();
    EXPECT_EQ(R.Status, RunStatus::Fault);
    EXPECT_NE(R.FaultMessage.find("middle of the decompressor"),
              std::string::npos)
        << "PC " << PC << ": " << R.FaultMessage;
  }
}

TEST(Runtime, DecompressorRegionMustFitEntryPoints) {
  // The reserved decompressor region cannot be smaller than its entry
  // points (one Decompress + one CreateStub entry per register).
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  Options Opts;
  Opts.DecompressorCodeWords = RuntimeLayout::NumEntryPoints - 1;
  Expected<SquashResult> R = squashProgram(P.Prog, P.Prof, Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), StatusCode::InvalidArgument);
}

TEST(Runtime, AttachRejectsTruncatedImage) {
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  SquashResult SR = squashProgram(P.Prog, P.Prof, Options()).take();
  ASSERT_FALSE(SR.Identity);
  SquashedProgram SP = SR.SP;
  ASSERT_GT(SP.Layout.BlobBytes, 4u);
  SP.Img.Bytes.resize(SP.Img.Bytes.size() - 4); // Blob loses its tail.
  Machine M(SP.Img);
  RuntimeSystem RT(SP);
  Status At = RT.attach(M);
  ASSERT_FALSE(At.ok());
  EXPECT_NE(At.toString().find("past the image"), std::string::npos);
}

TEST(Runtime, AttachRejectsZeroWordBuffer) {
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  SquashResult SR = squashProgram(P.Prog, P.Prof, Options()).take();
  ASSERT_FALSE(SR.Identity);
  SquashedProgram SP = SR.SP;
  SP.Layout.BufferWords = 0;
  Machine M(SP.Img);
  RuntimeSystem RT(SP);
  Status At = RT.attach(M);
  ASSERT_FALSE(At.ok());
  EXPECT_NE(At.toString().find("no jump slot"), std::string::npos);
}

TEST(Runtime, AttachRejectsShortOffsetTable) {
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  SquashResult SR = squashProgram(P.Prog, P.Prof, Options()).take();
  ASSERT_FALSE(SR.Identity);
  SquashedProgram SP = SR.SP;
  // Claim the stub area starts where the offset table does: no room for
  // the region entries.
  SP.Layout.StubAreaBase = SP.Layout.OffsetTableBase;
  Machine M(SP.Img);
  RuntimeSystem RT(SP);
  Status At = RT.attach(M);
  ASSERT_FALSE(At.ok());
  EXPECT_NE(At.toString().find("offset table shorter"), std::string::npos);
}

TEST(Runtime, AttachRejectsRegionAtExactBlobEnd) {
  // Boundary regression: a region whose bit offset equals 8 * BlobBytes
  // (one past the last valid bit) must be rejected, not accepted by an
  // off-by-one.
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  SquashResult SR = squashProgram(P.Prog, P.Prof, Options()).take();
  ASSERT_FALSE(SR.Identity);
  SquashedProgram SP = SR.SP;
  SP.Regions.back().BitOffset = 8 * SP.Layout.BlobBytes;
  Machine M(SP.Img);
  RuntimeSystem RT(SP);
  Status At = RT.attach(M);
  ASSERT_FALSE(At.ok());
  EXPECT_NE(At.toString().find("past the end of the blob"),
            std::string::npos);
}

TEST(Rewriter, RegionChecksumsMatchRecoveryCopies) {
  // The stored per-region CRC must be the CRC of the retained recovery
  // words — the single-source-of-truth expansion helper guarantees the
  // rewriter and the runtime agree.
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  SquashResult SR = squashProgram(P.Prog, P.Prof, Options()).take();
  ASSERT_FALSE(SR.Identity);
  ASSERT_EQ(SR.SP.RecoveryWords.size(), SR.SP.Regions.size());
  for (size_t R = 0; R != SR.SP.Regions.size(); ++R) {
    ASSERT_EQ(SR.SP.RecoveryWords[R].size(), SR.SP.Regions[R].ExpandedWords);
    EXPECT_EQ(expandedWordsCrc(SR.SP.RecoveryWords[R]),
              SR.SP.Regions[R].Crc32);
  }
}

TEST(Rewriter, RecoveryCopiesCanBeDisabled) {
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  Options Opts;
  Opts.RetainRecoveryCopies = false;
  SquashResult SR = squashProgram(P.Prog, P.Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);
  for (const auto &Words : SR.SP.RecoveryWords)
    EXPECT_TRUE(Words.empty());
  // The image still runs correctly without them.
  SquashedRun R = runSquashed(SR.SP, {1});
  EXPECT_EQ(R.Run.Status, RunStatus::Halted) << R.Run.FaultMessage;
  EXPECT_EQ(R.Run.ExitCode, 31u);
}

TEST(Rewriter, FootprintAccountingConsistent) {
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  Options Opts;
  SquashResult SR = squashProgram(P.Prog, P.Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);
  const FootprintBreakdown &F = SR.SP.Footprint;
  const RuntimeLayout &L = SR.SP.Layout;
  EXPECT_EQ(F.DecompressorWords * 4, L.DecompEnd - L.DecompBase);
  EXPECT_EQ(F.StubAreaWords, 4 * L.StubSlots);
  EXPECT_EQ(F.BufferWords, L.BufferWords);
  EXPECT_EQ(F.CompressedBytes, L.BlobBytes);
  // Every compressed block with external references has a stub address.
  for (const auto &[Label, Addr] : SR.SP.StubOf) {
    EXPECT_GE(Addr, DefaultBase);
    // The stub's tag word selects a valid region and offset.
    uint32_t Tag = SR.SP.Img.word(Addr + 4);
    EXPECT_LT(Tag >> 16, SR.SP.Regions.size());
    EXPECT_GE(Tag & 0xFFFF, 1u);
  }
  // Region bit offsets are strictly increasing and inside the blob.
  for (size_t R = 1; R < SR.SP.Regions.size(); ++R)
    EXPECT_GT(SR.SP.Regions[R].BitOffset, SR.SP.Regions[R - 1].BitOffset);
  for (const auto &RI : SR.SP.Regions)
    EXPECT_LT(RI.BitOffset, 8u * L.BlobBytes);
}

TEST(Runtime, TraceRingKeepsNewestAndCountsDropsExactly) {
  Pipeline P(callFromBufferProgram());
  P.profile({0});
  Options Opts;
  Opts.PackRegions = false;
  SquashResult SR = squashProgram(P.Prog, P.Prof, Opts).take();
  ASSERT_FALSE(SR.Identity);

  // Reference run with a capacity no realistic trace reaches.
  SquashedRun Full = runSquashed(SR.SP, {1}, 2'000'000'000ull, 1u << 20);
  ASSERT_EQ(Full.Run.Status, RunStatus::Halted) << Full.Run.FaultMessage;
  ASSERT_EQ(Full.TraceDropped, 0u);
  ASSERT_GE(Full.Trace.size(), 4u);

  // Same deterministic run through a 3-slot ring: memory stays O(capacity),
  // the drop counter is exact, and exactly the newest events survive in
  // oldest-first order.
  const uint32_t Cap = 3;
  SquashedRun Ring = runSquashed(SR.SP, {1}, 2'000'000'000ull, Cap);
  ASSERT_EQ(Ring.Run.Status, RunStatus::Halted);
  ASSERT_EQ(Ring.Trace.size(), Cap);
  EXPECT_EQ(Ring.TraceDropped, Full.Trace.size() - Cap);
  for (size_t I = 0; I != Cap; ++I) {
    const RuntimeSystem::Event &Want =
        Full.Trace[Full.Trace.size() - Cap + I];
    const RuntimeSystem::Event &Got = Ring.Trace[I];
    EXPECT_EQ(Got.K, Want.K) << "event " << I;
    EXPECT_EQ(Got.Region, Want.Region);
    EXPECT_EQ(Got.Addr, Want.Addr);
    EXPECT_EQ(Got.Count, Want.Count);
    EXPECT_EQ(Got.Cycle, Want.Cycle);
  }

  // An untraced run keeps no events at all.
  SquashedRun Off = runSquashed(SR.SP, {1});
  EXPECT_TRUE(Off.Trace.empty());
  EXPECT_EQ(Off.TraceDropped, 0u);
}
