//===- huff/ContextCodec.h - Order-1 opcode-context coder ------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A context-model region coder exploiting instruction-sequence structure
/// (in the spirit of the MIPS code-compression line of work): the previous
/// opcode is the context, and each context selects its own canonical
/// Huffman code over the next opcode — after an `addi` the opcode
/// distribution is far more peaked than the global one. Contexts too rare
/// to earn a table share one merged fallback table. Region start uses the
/// sentinel context (the sentinel never appears mid-region), and the
/// region terminator is the sentinel symbol in whatever context the region
/// ends in, so regions stay independently decodable.
///
/// Non-opcode fields use per-stream order-0 codes (no MTF/delta — the
/// context machinery is the whole point of this coder; keeping the field
/// side simple keeps its decode cost model honest).
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_HUFF_CONTEXTCODEC_H
#define SQUASH_HUFF_CONTEXTCODEC_H

#include "huff/Codec.h"

#include <array>
#include <cstdint>
#include <vector>

namespace squash {

class ContextCodec final : public Codec {
public:
  /// A context earns a dedicated opcode table once the corpus shows at
  /// least this many transitions out of it; rarer contexts share the
  /// merged fallback table (index 0).
  static constexpr uint64_t MinContextCount = 8;

  ContextCodec() = default;

  /// Builds all tables from the corpus (one instruction sequence per
  /// region). Deterministic.
  static ContextCodec build(const std::vector<std::vector<vea::MInst>> &Corpus);

  bool present() const { return Present; }
  size_t numOpcodeTables() const { return OpTables.size(); }

  CodecKind kind() const override { return CodecKind::Context; }
  [[nodiscard]] vea::Status
  encodeRegion(const std::vector<vea::MInst> &Insts,
               vea::BitWriter &W) const override;
  std::unique_ptr<RegionCursor> makeDecoder(const uint8_t *Blob,
                                            size_t BlobBytes,
                                            size_t StartBit) const override;
  uint64_t tableBits() const override { return TableBitsCache; }
  void serializeTables(vea::BitWriter &W) const override;
  [[nodiscard]] vea::Status validate() const override;

  /// Trial encode for codec selection: exact payload bits and decode work.
  [[nodiscard]] vea::Status measureRegion(const std::vector<vea::MInst> &Insts,
                                          uint64_t &Bits,
                                          DecodeWork &Work) const;

  /// Fault-injection hook (FaultKind::CodecTableCorrupt): mutable access
  /// to one per-context opcode table.
  CanonicalCode &opcodeTableForFault(size_t Index) { return OpTables[Index]; }

  class Decoder final : public RegionCursor {
  public:
    Decoder(const ContextCodec &Codec, vea::BitReader Reader)
        : Codec(Codec), Reader(std::move(Reader)) {}

    bool next(vea::MInst &Inst) override;
    bool ok() const override { return !Corrupt; }
    size_t bitPosition() const override { return Reader.bitPosition(); }
    const DecodeWork &work() const override { return Work; }

  private:
    const ContextCodec &Codec;
    vea::BitReader Reader;
    DecodeWork Work;
    bool Corrupt = false;
    bool Done = false;
    uint32_t Context = 0; ///< Previous opcode; sentinel at region start.
  };

private:
  bool Present = false;
  /// Per-context table index; 0 is the merged fallback.
  std::array<uint8_t, vea::NumOpcodes> TableOf = {};
  /// Opcode codes (symbols include the sentinel terminator).
  std::vector<CanonicalCode> OpTables;
  /// Order-0 codes for the non-opcode streams ([Opcode] stays empty).
  std::array<CanonicalCode, vea::NumFieldKinds> FieldCodes;
  uint64_t TableBitsCache = 0;
};

} // namespace squash

#endif // SQUASH_HUFF_CONTEXTCODEC_H
