//===- huff/StreamCodec.h - Splitting-streams instruction codec -*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's simplified "splitting streams" compressor (Section 3):
/// instructions are split into one stream of values per field type; each
/// stream gets its own canonical Huffman code; the codeword sequences of all
/// streams are merged into a single bit sequence driven by the opcode
/// stream (an opcode fully determines which field codes follow). A region's
/// encoding ends with the sentinel opcode.
///
/// Optionally each stream is move-to-front transformed before coding
/// (Section 3 notes this helps some streams at the cost of a bigger, slower
/// decompressor); MTF state resets at every region boundary so regions stay
/// independently decompressible.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_HUFF_STREAMCODEC_H
#define SQUASH_HUFF_STREAMCODEC_H

#include "huff/Huffman.h"
#include "isa/Isa.h"
#include "support/BitStream.h"
#include "support/Status.h"

#include <array>
#include <cstdint>
#include <vector>

namespace squash {

/// Per-stream accounting surfaced by the compression-ratio benchmark.
struct StreamStats {
  vea::FieldKind Kind;
  uint64_t Symbols = 0;       ///< Field occurrences in the corpus.
  uint64_t Distinct = 0;      ///< Distinct values.
  uint64_t PayloadBits = 0;   ///< Encoded codeword bits.
  uint64_t TableBits = 0;     ///< N + D representation bits.
};

/// The per-field-kind canonical Huffman codes, built over the whole corpus
/// of compressed regions (the paper stores one code representation and
/// value list per stream for the whole compressed program).
class StreamCodecs {
public:
  struct Options {
    bool MoveToFront = false;
    /// Delta-encode the displacement streams (disp16/disp21) before
    /// entropy coding; state resets at region boundaries. Applied before
    /// MTF when both are enabled.
    bool DeltaDisplacements = false;
  };

  StreamCodecs() = default;

  /// Builds codes from the corpus: one instruction sequence per region.
  static StreamCodecs build(const std::vector<std::vector<vea::MInst>> &Corpus,
                            Options Opts);
  static StreamCodecs build(
      const std::vector<std::vector<vea::MInst>> &Corpus) {
    return build(Corpus, Options());
  }

  /// Encodes one region (terminated by the sentinel opcode codeword).
  /// Fails with EncodingError if an instruction carries a value outside
  /// the corpus the codes were built from.
  vea::Status encodeRegion(const std::vector<vea::MInst> &Insts,
                           vea::BitWriter &W) const;

  /// Streaming decoder for one region; instantiated by the runtime
  /// decompressor at the region's bit offset.
  class RegionDecoder {
  public:
    RegionDecoder(const StreamCodecs &Codecs, vea::BitReader Reader);

    /// Decodes the next instruction into \p Inst. Returns false at the
    /// sentinel or on a corrupt stream (check ok()).
    bool next(vea::MInst &Inst);
    bool ok() const { return !Corrupt; }
    size_t bitPosition() const { return Reader.bitPosition(); }

  private:
    const StreamCodecs &Codecs;
    vea::BitReader Reader;
    bool Corrupt = false;
    /// Per-stream MTF recency lists (only used when MTF is enabled).
    std::array<std::vector<uint32_t>, vea::NumFieldKinds> Mtf;
    /// Per-stream previous values for delta decoding.
    std::array<uint32_t, vea::NumFieldKinds> DeltaPrev = {};
  };

  /// Total bits of all stream code representations (counted against the
  /// compressed program's footprint).
  uint64_t tableBits() const;

  /// Writes every stream's code representation (and MTF dictionaries, when
  /// enabled) into \p W — the "code representation and value list for each
  /// stream" that the paper stores with the compressed program.
  void serializeTables(vea::BitWriter &W) const;

  /// Per-stream statistics over the corpus the codes were built from.
  const std::vector<StreamStats> &stats() const { return Stats; }

  bool moveToFront() const { return Opts.MoveToFront; }

private:
  Options Opts;
  std::array<CanonicalCode, vea::NumFieldKinds> Codes;
  /// Initial MTF dictionaries (distinct values, most frequent first).
  std::array<std::vector<uint32_t>, vea::NumFieldKinds> MtfInit;
  std::vector<StreamStats> Stats;
};

} // namespace squash

#endif // SQUASH_HUFF_STREAMCODEC_H
