//===- huff/StreamCodec.h - Splitting-streams instruction codec -*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's simplified "splitting streams" compressor (Section 3):
/// instructions are split into one stream of values per field type; each
/// stream gets its own canonical Huffman code; the codeword sequences of all
/// streams are merged into a single bit sequence driven by the opcode
/// stream (an opcode fully determines which field codes follow). A region's
/// encoding ends with the sentinel opcode.
///
/// Optionally each stream is move-to-front transformed before coding
/// (Section 3 notes this helps some streams at the cost of a bigger, slower
/// decompressor); MTF state resets at every region boundary so regions stay
/// independently decompressible.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_HUFF_STREAMCODEC_H
#define SQUASH_HUFF_STREAMCODEC_H

#include "huff/Huffman.h"
#include "isa/Isa.h"
#include "support/BitStream.h"
#include "support/Status.h"

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace squash {

class FastTables;

/// Per-stream accounting surfaced by the compression-ratio benchmark.
struct StreamStats {
  vea::FieldKind Kind;
  uint64_t Symbols = 0;       ///< Field occurrences in the corpus.
  uint64_t Distinct = 0;      ///< Distinct values.
  uint64_t PayloadBits = 0;   ///< Encoded codeword bits.
  uint64_t TableBits = 0;     ///< N + D representation bits.
};

/// The per-field-kind canonical Huffman codes, built over the whole corpus
/// of compressed regions (the paper stores one code representation and
/// value list per stream for the whole compressed program).
class StreamCodecs {
public:
  struct Options {
    bool MoveToFront = false;
    /// Delta-encode the displacement streams (disp16/disp21) before
    /// entropy coding; state resets at region boundaries. Applied before
    /// MTF when both are enabled.
    bool DeltaDisplacements = false;
  };

  StreamCodecs() = default;

  /// The memoized fast-table pointer is mutable shared state guarded by
  /// the module-wide memo mutex (huff/FastDecoder.cpp). The
  /// compiler-generated copy would read it without the lock (a race
  /// against a concurrent fastTables() build) and would alias the
  /// published tables between two codecs whose codes can then diverge —
  /// exactly the stale-table hazard of an adaptive hot-swap mutating a
  /// copied codec. A copy therefore starts with an empty memo and builds
  /// fresh tables on first use; a move hands the memo over under the lock.
  StreamCodecs(const StreamCodecs &Other);
  StreamCodecs &operator=(const StreamCodecs &Other);
  StreamCodecs(StreamCodecs &&Other) noexcept;
  StreamCodecs &operator=(StreamCodecs &&Other) noexcept;
  ~StreamCodecs() = default;

  /// Builds codes from the corpus: one instruction sequence per region.
  static StreamCodecs build(const std::vector<std::vector<vea::MInst>> &Corpus,
                            Options Opts);
  static StreamCodecs build(
      const std::vector<std::vector<vea::MInst>> &Corpus) {
    return build(Corpus, Options());
  }

  /// Encodes one region (terminated by the sentinel opcode codeword).
  /// Fails with EncodingError if an instruction carries a value outside
  /// the corpus the codes were built from.
  vea::Status encodeRegion(const std::vector<vea::MInst> &Insts,
                           vea::BitWriter &W) const;

  /// Streaming decoder for one region; instantiated by the runtime
  /// decompressor at the region's bit offset.
  class RegionDecoder {
  public:
    RegionDecoder(const StreamCodecs &Codecs, vea::BitReader Reader);

    /// Decodes the next instruction into \p Inst. Returns false at the
    /// sentinel or on a corrupt stream (check ok()).
    bool next(vea::MInst &Inst);
    bool ok() const { return !Corrupt; }
    size_t bitPosition() const { return Reader.bitPosition(); }

  private:
    const StreamCodecs &Codecs;
    vea::BitReader Reader;
    bool Corrupt = false;
    /// Per-stream MTF recency lists (only used when MTF is enabled).
    std::array<std::vector<uint32_t>, vea::NumFieldKinds> Mtf;
    /// Per-stream previous values for delta decoding.
    std::array<uint32_t, vea::NumFieldKinds> DeltaPrev = {};
  };

  /// Total bits of all stream code representations (counted against the
  /// compressed program's footprint).
  uint64_t tableBits() const;

  /// Writes every stream's code representation (and MTF dictionaries, when
  /// enabled) into \p W — the "code representation and value list for each
  /// stream" that the paper stores with the compressed program.
  void serializeTables(vea::BitWriter &W) const;

  /// Per-stream statistics over the corpus the codes were built from.
  const std::vector<StreamStats> &stats() const { return Stats; }

  bool moveToFront() const { return Opts.MoveToFront; }
  const Options &options() const { return Opts; }

  /// The canonical code of one stream.
  const CanonicalCode &code(vea::FieldKind Kind) const {
    return Codes[static_cast<unsigned>(Kind)];
  }
  /// Initial MTF recency list of one stream (empty when MTF is off).
  const std::vector<uint32_t> &mtfInit(vea::FieldKind Kind) const {
    return MtfInit[static_cast<unsigned>(Kind)];
  }

  /// Structural validation of every stream's code (see
  /// CanonicalCode::valid). The runtime calls this at attach so a
  /// truncated or tampered host-mirror table is a clean MalformedImage
  /// instead of a decode-time surprise.
  vea::Status validate() const;

  /// The table-driven decode acceleration structure (huff/FastDecoder.h)
  /// for a \p Bits-wide probe window, built on first use and memoized —
  /// repeat attaches of the same squashed program share one immutable
  /// table set. Thread-safe; \p Bits is clamped to FastTables' supported
  /// range.
  std::shared_ptr<const FastTables> fastTables(unsigned Bits) const;

  /// Fault-injection hook (FaultKind::DecodeTableTruncated): mutable
  /// access to one stream's code. Drops the memoized fast tables so they
  /// cannot mask the mutation.
  CanonicalCode &codeForFault(vea::FieldKind Kind) {
    FastMemo.reset();
    return Codes[static_cast<unsigned>(Kind)];
  }

  /// The streams the delta-displacement transform applies to, and its
  /// forward/inverse steps. Shared with FastDecoder so the two decode
  /// paths can never drift apart.
  static bool isDeltaKind(vea::FieldKind Kind) {
    return Kind == vea::FieldKind::Disp16 || Kind == vea::FieldKind::Disp21;
  }
  static uint32_t deltaStep(vea::FieldKind Kind, uint32_t Value,
                            uint32_t &Prev) {
    uint32_t Mask = vea::fieldMask(Kind);
    uint32_t Out = (Value - Prev) & Mask;
    Prev = Value;
    return Out;
  }
  static uint32_t undeltaStep(vea::FieldKind Kind, uint32_t Coded,
                              uint32_t &Prev) {
    uint32_t Mask = vea::fieldMask(Kind);
    uint32_t Value = (Prev + Coded) & Mask;
    Prev = Value;
    return Value;
  }

private:
  Options Opts;
  std::array<CanonicalCode, vea::NumFieldKinds> Codes;
  /// Initial MTF dictionaries (distinct values, most frequent first).
  std::array<std::vector<uint32_t>, vea::NumFieldKinds> MtfInit;
  std::vector<StreamStats> Stats;
  /// Memoized fast-decode tables (immutable once built; never shared
  /// across copies — see the special members above). Guarded by the
  /// module-wide memo mutex in FastDecoder.cpp.
  mutable std::shared_ptr<const FastTables> FastMemo;
};

} // namespace squash

#endif // SQUASH_HUFF_STREAMCODEC_H
