//===- huff/Codec.h - Pluggable region codec interface ---------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper commits to a single splitting-streams Huffman coder, but its
/// cost model (compression ratio x decode cost) is codec-agnostic. This
/// header abstracts "a way to encode and decode one compressed region" so
/// the pipeline can pick the best coder per region:
///
///   - CodecKind::Huffman  — the paper's splitting-streams coder
///     (huff/StreamCodec.h), adapted by HuffmanCodecView.
///   - CodecKind::Pattern  — a pattern-table coder (huff/PatternCodec.h):
///     frequent instruction n-grams get short indices, an escape symbol
///     falls back to field-split Huffman.
///   - CodecKind::Context  — an order-1 context coder (huff/ContextCodec.h):
///     the previous opcode selects a per-context opcode code table.
///
/// Every codec shares the region contract the runtime relies on: regions
/// are independently decodable from a bit offset, the encoding carries its
/// own terminator, and a corrupt stream is reported (never read past).
/// DecodeWork reports what a decode actually did, so the cost model can
/// charge different codecs different per-instruction costs.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_HUFF_CODEC_H
#define SQUASH_HUFF_CODEC_H

#include "huff/StreamCodec.h"
#include "isa/Isa.h"
#include "support/BitStream.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace squash {

/// Identifies one region coder. The numeric values are image metadata
/// (RegionImageInfo::Codec) and must never be reordered.
enum class CodecKind : uint8_t {
  Huffman = 0, ///< Splitting-streams canonical Huffman (the paper's coder).
  Pattern = 1, ///< n-gram pattern table + escape to field-split Huffman.
  Context = 2, ///< Order-1 opcode-context code tables.
};
inline constexpr unsigned NumCodecKinds = 3;

/// Stable lowercase name ("huffman", "pattern", "context").
const char *codecKindName(CodecKind Kind);

/// Parses a codec name; returns false if \p Name is unknown. "auto" is a
/// selection policy, not a codec, and is rejected here.
bool codecKindByName(const std::string &Name, CodecKind &Out);

/// What one region decode actually did, reported by every cursor so the
/// runtime's cost model can charge codec-specific per-instruction costs
/// (a pattern-table hit replays pre-decoded words; an order-1 context
/// lookup costs more than an order-0 one).
struct DecodeWork {
  uint64_t Instructions = 0;   ///< Instructions produced.
  uint64_t PatternCovered = 0; ///< Produced from a pattern-table entry.
  uint64_t Escapes = 0;        ///< Escaped to the field-split fallback.
};

/// Streaming decoder over one region, positioned at its bit offset.
class RegionCursor {
public:
  virtual ~RegionCursor() = default;

  /// Decodes the next instruction into \p Inst. Returns false at the
  /// region terminator or on a corrupt stream (check ok()).
  virtual bool next(vea::MInst &Inst) = 0;
  virtual bool ok() const = 0;
  virtual size_t bitPosition() const = 0;
  virtual const DecodeWork &work() const = 0;
};

/// A region coder: encodes lowered instruction sequences into the blob and
/// makes decoders for them. Implementations are built from the corpus of
/// all compressed regions (build(corpus) -> encodeRegion / makeDecoder);
/// their side tables are serialized into the blob so they count toward the
/// compressed footprint exactly like the paper's Huffman tables.
class Codec {
public:
  virtual ~Codec() = default;

  virtual CodecKind kind() const = 0;

  /// Encodes one region, terminator included. Fails with EncodingError if
  /// an instruction carries a value outside the corpus the codec was built
  /// from; callers must propagate the Status (a half-encoded region must
  /// never reach an image).
  [[nodiscard]] virtual vea::Status
  encodeRegion(const std::vector<vea::MInst> &Insts,
               vea::BitWriter &W) const = 0;

  /// A cursor over the region starting at \p StartBit of \p Blob.
  virtual std::unique_ptr<RegionCursor>
  makeDecoder(const uint8_t *Blob, size_t BlobBytes, size_t StartBit) const = 0;

  /// Size in bits of the serialized side tables (charged to the
  /// compressed program's footprint).
  virtual uint64_t tableBits() const = 0;

  /// Writes the side tables into \p W (the blob's table prefix).
  virtual void serializeTables(vea::BitWriter &W) const = 0;

  /// Structural validation of the host-mirror tables; the runtime calls
  /// this at attach so tampered tables are a clean MalformedImage.
  [[nodiscard]] virtual vea::Status validate() const = 0;
};

/// Codec adapter over the existing splitting-streams stack: a non-owning
/// view of a StreamCodecs (the viewed codec must outlive the view and any
/// cursor it makes). The runtime keeps its devirtualized FastDecoder path
/// for Huffman regions; this view serves the generic dispatch sites
/// (inspection, benches, codec selection).
class HuffmanCodecView final : public Codec {
public:
  explicit HuffmanCodecView(const StreamCodecs &Codecs) : Codecs(Codecs) {}

  CodecKind kind() const override { return CodecKind::Huffman; }
  [[nodiscard]] vea::Status
  encodeRegion(const std::vector<vea::MInst> &Insts,
               vea::BitWriter &W) const override {
    return Codecs.encodeRegion(Insts, W);
  }
  std::unique_ptr<RegionCursor> makeDecoder(const uint8_t *Blob,
                                            size_t BlobBytes,
                                            size_t StartBit) const override;
  uint64_t tableBits() const override { return Codecs.tableBits(); }
  void serializeTables(vea::BitWriter &W) const override {
    Codecs.serializeTables(W);
  }
  [[nodiscard]] vea::Status validate() const override {
    return Codecs.validate();
  }

private:
  const StreamCodecs &Codecs;
};

} // namespace squash

#endif // SQUASH_HUFF_CODEC_H
