//===- huff/Huffman.h - Canonical Huffman coding ---------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical Huffman coding as described in Section 3 of the paper: an
/// optimal character-based code whose codewords of length i are the N[i]
/// consecutive i-bit numbers starting at b_i, where b_1 = 0 and
/// b_i = 2 (b_{i-1} + N[i-1]). The decoder is the paper's DECODE() loop,
/// driven by the length-count array N and the value array D (characters
/// ordered by codeword value).
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_HUFF_HUFFMAN_H
#define SQUASH_HUFF_HUFFMAN_H

#include "support/BitStream.h"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace squash {

/// A canonical Huffman code over arbitrary 32-bit symbol values.
class CanonicalCode {
public:
  /// Sentinel returned by decode() on a corrupt bit stream.
  static constexpr uint32_t Invalid = 0xFFFFFFFFu;

  CanonicalCode() = default;

  /// Builds an optimal code from (symbol, frequency) pairs. Zero-frequency
  /// pairs are ignored; a single-symbol alphabet gets a 1-bit code. The
  /// construction is deterministic: ties in the Huffman tree are broken by
  /// insertion order, and symbols of equal codeword length are ordered by
  /// value.
  static CanonicalCode build(std::vector<std::pair<uint32_t, uint64_t>> Freqs);

  bool empty() const { return D.empty(); }
  size_t numSymbols() const { return D.size(); }
  unsigned maxLength() const {
    return static_cast<unsigned>(N.empty() ? 0 : N.size() - 1);
  }

  /// Codeword length of \p Symbol; 0 if the symbol is not in the alphabet.
  unsigned lengthOf(uint32_t Symbol) const;

  /// Writes the codeword for \p Symbol. Returns false — writing nothing —
  /// if the symbol is not in the alphabet (a corrupt corpus or API misuse;
  /// callers surface it as an EncodingError Status).
  bool encode(uint32_t Symbol, vea::BitWriter &W) const;

  /// The paper's DECODE(): reads one codeword and returns its symbol, or
  /// Invalid if the bit stream does not contain a valid codeword.
  uint32_t decode(vea::BitReader &R) const;

  /// The N[i] array (index = codeword length; N[0] == 0).
  const std::vector<uint32_t> &lengthCounts() const { return N; }
  /// The D[j] array: symbol values ordered by codeword value.
  const std::vector<uint32_t> &values() const { return D; }

  /// Structural consistency of the stored representation: N[0] == 0, the
  /// canonical codeword space never overflows (b_i + N[i] <= 2^i), and the
  /// value list length matches the length counts. build() and a successful
  /// deserialize() always satisfy this; a truncated or tampered table does
  /// not, and decode() on such a table returns Invalid rather than reading
  /// out of bounds.
  bool valid() const;

  /// Fault-injection hook (FaultKind::DecodeTableTruncated): drops the last
  /// value-list entry without fixing the length counts, modeling a stored
  /// code table cut short. valid() fails afterwards; never call on a code
  /// in real use.
  void truncateValueListForFault() {
    if (!D.empty())
      D.pop_back();
  }

  /// Size in bits of the stored code representation (the N and D arrays)
  /// when each value is stored in \p ValueBits bits. This is the
  /// "code representation" + "value list" cost the paper counts against the
  /// compressed program.
  size_t representationBits(unsigned ValueBits) const;

  /// Serializes the representation (MaxLen, N, D) for storage.
  void serialize(vea::BitWriter &W, unsigned ValueBits) const;
  /// Reconstructs a code from serialize()'s output. Returns an empty code
  /// on malformed input.
  static CanonicalCode deserialize(vea::BitReader &R, unsigned ValueBits);

  /// Expected encoded size, in bits, of a stream with the given frequencies
  /// under this code (used by compression-ratio accounting).
  uint64_t
  encodedBits(const std::vector<std::pair<uint32_t, uint64_t>> &Freqs) const;

private:
  /// Rebuilds the encode map and first-codeword table from N and D.
  void finalize();

  std::vector<uint32_t> N; ///< N[i] = number of codewords of length i.
  std::vector<uint32_t> D; ///< Values ordered by codeword value.
  /// Symbol -> (length, codeword).
  std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> Enc;
};

/// Computes optimal Huffman codeword lengths for \p Freqs (frequency > 0).
/// Exposed for tests that check the canonical code preserves optimal
/// lengths.
std::vector<unsigned>
huffmanLengths(const std::vector<uint64_t> &Freqs);

} // namespace squash

#endif // SQUASH_HUFF_HUFFMAN_H
