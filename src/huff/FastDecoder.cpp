//===- huff/FastDecoder.cpp - Table-driven multi-symbol decode ------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "huff/FastDecoder.h"

#include <algorithm>
#include <chrono>
#include <mutex>

using namespace squash;
using vea::FieldKind;
using vea::MInst;
using vea::Opcode;

static unsigned idx(FieldKind Kind) { return static_cast<unsigned>(Kind); }

static_assert(FastTables::MaxSlots ==
                  std::tuple_size<decltype(vea::FormatLayout::Slots)>::value,
              "fused entries must hold every slot of the widest format");
static_assert(FastTables::MaxBits <= FastTables::FusedConsumedMask,
              "fused consumed counts must fit their control-byte nibble");
static_assert(FastTables::MaxSlots <= FastTables::FusedResolvedMask,
              "fused resolved counts must fit their control-word field");
static_assert(FastTables::MaxSlots <= FastTables::FusedCountMask,
              "format slot counts must fit their control-word field");
static_assert(vea::NumFieldKinds <= (1u << FastTables::FusedKindBits),
              "field kinds must fit their control-word nibbles");
static_assert(FastTables::FusedKindsShift +
                      FastTables::FusedKindBits * (FastTables::MaxSlots - 1) <=
                  32,
              "operand slot kinds must fit the control word");

//===----------------------------------------------------------------------===//
// FastTables
//===----------------------------------------------------------------------===//

std::shared_ptr<const FastTables> FastTables::build(const StreamCodecs &Codecs,
                                                    unsigned Bits) {
  const auto T0 = std::chrono::steady_clock::now();
  Bits = std::clamp(Bits, MinBits, MaxBits);
  std::shared_ptr<FastTables> T(new FastTables());
  T->Bits = Bits;
  const uint32_t Size = 1u << Bits;

  // Per-stream symbol tables: every window beginning with the codeword of
  // symbol s (length L <= Bits) maps to (s, L); the 2^(Bits-L) suffix
  // variants are filled in one run. Codewords longer than the window,
  // windows matching no codeword, and whole absent streams keep the
  // default escape entry (length 0) in the flat arrays.
  T->SymLen.assign(static_cast<size_t>(vea::NumFieldKinds) << Bits, 0);
  T->SymVal.assign(static_cast<size_t>(vea::NumFieldKinds) << Bits, 0);
  for (unsigned K = 0; K != vea::NumFieldKinds; ++K) {
    const CanonicalCode &C = Codecs.code(static_cast<FieldKind>(K));
    if (C.empty())
      continue; // Escape path reports the empty code invalid.
    uint8_t *Len = T->SymLen.data() + (static_cast<size_t>(K) << Bits);
    uint32_t *Val = T->SymVal.data() + (static_cast<size_t>(K) << Bits);
    const std::vector<uint32_t> &N = C.lengthCounts();
    const std::vector<uint32_t> &D = C.values();
    // A window escape conclusively means "codeword longer than the
    // window" only while the fill below never skips a short codeword;
    // track that so escapes can resume the canonical walk at depth Bits.
    bool Conclusive = true;
    uint64_t B = 0; // First codeword of the current length (paper §3).
    size_t J = 0;
    for (unsigned L = 1; L < N.size(); ++L) {
      if (L > 1)
        B = 2 * (B + N[L - 1]);
      if (L > Bits)
        break;
      for (uint32_t I = 0; I != N[L]; ++I) {
        if (J + I >= D.size()) {
          Conclusive = false;
          break; // Truncated value list: those windows stay escapes.
        }
        uint64_t Code = B + I;
        if (Code >= (1ull << L)) {
          Conclusive = false;
          break; // Malformed length counts: ditto.
        }
        const size_t First = static_cast<size_t>(Code << (Bits - L));
        std::fill_n(Len + First, 1u << (Bits - L), static_cast<uint8_t>(L));
        std::fill_n(Val + First, 1u << (Bits - L), D[J + I]);
      }
      J += N[L];
    }
    if (Conclusive && C.maxLength() > Bits) {
      // Escape resume state: B and J of the DECODE() loop after Bits
      // iterations (the probe already rejected every shorter codeword).
      uint64_t EB = 0;
      uint64_t EJ = 0;
      for (unsigned I = 0; I != Bits; ++I) {
        EB = 2 * (EB + N[I]);
        EJ += N[I];
      }
      T->Esc[K] = EscStart{EB, static_cast<uint32_t>(EJ), 1};
    }
  }

  // Fused instruction table: resolve the opcode, then as many operand
  // fields of its format as still fit in the window. Only meaningful when
  // MTF is off — with MTF the opcode symbol is a recency index, so the
  // format (and every subsequent stream) depends on mutable decoder state.
  if (!Codecs.options().MoveToFront) {
    T->FusedCtl.assign(Size, 0);
    T->FusedVals.assign(Size, {});
    const uint8_t *OpLen =
        T->SymLen.data() + (static_cast<size_t>(idx(FieldKind::Opcode)) << Bits);
    const uint32_t *OpVal =
        T->SymVal.data() + (static_cast<size_t>(idx(FieldKind::Opcode)) << Bits);
    for (uint32_t W = 0; W != Size; ++W) {
      if (!OpLen[W])
        continue; // Opcode escape.
      const uint32_t OpSym = OpVal[W];
      auto &Vals = T->FusedVals[W];
      Vals[0] = OpSym;
      unsigned Resolved = 1;
      unsigned Used = OpLen[W];
      if (OpSym == static_cast<uint32_t>(Opcode::Sentinel)) {
        T->FusedCtl[W] = Used | FusedSentinelBit;
        continue;
      }
      if (OpSym >= vea::NumOpcodes)
        continue; // Escape: the slow path reports the stream corrupt.
      const vea::FormatLayout &Layout =
          vea::formatLayout(vea::formatOf(static_cast<Opcode>(OpSym)));
      uint32_t Kinds = 0;
      for (unsigned S = 1; S < Layout.Count; ++S)
        Kinds |= static_cast<uint32_t>(Layout.Slots[S].Kind)
                 << (FusedKindBits * (S - 1));
      for (unsigned S = 1; S < Layout.Count; ++S) {
        unsigned Rem = Bits - Used;
        if (Rem == 0)
          break;
        const uint8_t *FLenTab =
            T->SymLen.data() +
            (static_cast<size_t>(idx(Layout.Slots[S].Kind)) << Bits);
        // The bits after the consumed prefix, left-aligned in a fresh
        // window; positions past Rem are zero padding, so an entry is
        // trustworthy only when its codeword fits in Rem bits.
        const uint32_t SubW = (W << Used) & (Size - 1);
        const unsigned FLen = FLenTab[SubW];
        if (!FLen || FLen > Rem)
          break;
        Vals[S] =
            T->SymVal[(static_cast<size_t>(idx(Layout.Slots[S].Kind)) << Bits) |
                      SubW];
        Resolved = S + 1;
        Used += FLen;
      }
      T->FusedCtl[W] = Used | (Resolved << FusedResolvedShift) |
                       (Layout.Count << FusedCountShift) |
                       (Kinds << FusedKindsShift);
    }
  }

  T->BuildNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  return T;
}

size_t FastTables::tableBytes() const {
  return FusedCtl.size() * sizeof(uint32_t) +
         FusedVals.size() * sizeof(FusedVals[0]) + SymLen.size() +
         SymVal.size() * sizeof(uint32_t);
}

// One global lock: builds are rare (first attach per program) and the
// memo must stay copyable with the codec, which rules out a member
// mutex. Concurrent attaches of the same pinned program (Adaptive's
// serve threads) synchronize here, as do the codec's copy/move special
// members below.
static std::mutex MemoMutex;

std::shared_ptr<const FastTables> StreamCodecs::fastTables(unsigned Bits) const {
  Bits = std::clamp(Bits, FastTables::MinBits, FastTables::MaxBits);
  std::lock_guard<std::mutex> Lock(MemoMutex);
  if (!FastMemo || FastMemo->bits() != Bits)
    FastMemo = FastTables::build(*this, Bits);
  return FastMemo;
}

// A copied codec never inherits the source's decoder tables: the copy is
// the staging ground for mutation (adaptive re-squash, fault injection),
// and tables reused by pointer would go stale the moment the codes
// diverge. Starting from an empty memo forces a rebuild on first use.
StreamCodecs::StreamCodecs(const StreamCodecs &Other)
    : Opts(Other.Opts), Codes(Other.Codes), MtfInit(Other.MtfInit),
      Stats(Other.Stats) {}

StreamCodecs &StreamCodecs::operator=(const StreamCodecs &Other) {
  if (this == &Other)
    return *this;
  Opts = Other.Opts;
  Codes = Other.Codes;
  MtfInit = Other.MtfInit;
  Stats = Other.Stats;
  std::lock_guard<std::mutex> Lock(MemoMutex);
  FastMemo.reset();
  return *this;
}

// Moves transfer the memo: the source is being retired, so the tables
// keep matching the one live owner. The lock covers the transfer against
// a concurrent fastTables() build on the source.
StreamCodecs::StreamCodecs(StreamCodecs &&Other) noexcept
    : Opts(std::move(Other.Opts)), Codes(std::move(Other.Codes)),
      MtfInit(std::move(Other.MtfInit)), Stats(std::move(Other.Stats)) {
  std::lock_guard<std::mutex> Lock(MemoMutex);
  FastMemo = std::move(Other.FastMemo);
  Other.FastMemo.reset();
}

StreamCodecs &StreamCodecs::operator=(StreamCodecs &&Other) noexcept {
  if (this == &Other)
    return *this;
  Opts = std::move(Other.Opts);
  Codes = std::move(Other.Codes);
  MtfInit = std::move(Other.MtfInit);
  Stats = std::move(Other.Stats);
  std::lock_guard<std::mutex> Lock(MemoMutex);
  FastMemo = std::move(Other.FastMemo);
  Other.FastMemo.reset();
  return *this;
}

//===----------------------------------------------------------------------===//
// FastDecoder
//===----------------------------------------------------------------------===//

FastDecoder::FastDecoder(const StreamCodecs &Codecs,
                         std::shared_ptr<const FastTables> Tables,
                         const uint8_t *Data, size_t NumBytes, size_t StartBit)
    : Codecs(Codecs), T(std::move(Tables)), Data(Data), NumBytes(NumBytes),
      Start(StartBit),
      Avail(StartBit <= 8 * NumBytes ? 8 * NumBytes - StartBit : 0),
      NextByte(std::min(StartBit / 8, NumBytes)),
      MtfOn(Codecs.options().MoveToFront),
      DeltaOn(Codecs.options().DeltaDisplacements) {
  if (!T)
    T = FastTables::build(Codecs, FastTables::DefaultBits);
  TBits = T->bits();
  SymLenTab = T->SymLen.data();
  SymValTab = T->SymVal.data();
  if (!MtfOn && !T->FusedCtl.empty()) {
    FusedCtlTab = T->FusedCtl.data();
    FusedValsTab = T->FusedVals.data();
  }
  refill();
  // Discard the intra-byte prefix so the window starts exactly at
  // StartBit; these bits never count against Consumed.
  if (unsigned Skip = StartBit & 7) {
    Window <<= Skip;
    Have = Skip > Have ? 0 : Have - Skip;
  }
  if (MtfOn)
    for (unsigned K = 0; K != vea::NumFieldKinds; ++K)
      Mtf[K] = Codecs.mtfInit(static_cast<FieldKind>(K));
}

bool FastDecoder::escapeSym(FieldKind Kind, uint32_t &Sym) {
  // The paper's DECODE() loop, bit-for-bit identical to
  // CanonicalCode::decode (including the truncated-value-list guard).
  const CanonicalCode &Code = Codecs.code(Kind);
  const std::vector<uint32_t> &N = Code.lengthCounts();
  const std::vector<uint32_t> &D = Code.values();
  if (D.empty())
    return false;
  uint64_t V = 0, B = 0;
  size_t J = 0;
  unsigned I = 0;
  const unsigned MaxLen = Code.maxLength();
  const FastTables::EscStart &E = T->Esc[idx(Kind)];
  if (E.Valid) {
    // The table probe that sent us here already rejected every codeword
    // of length <= TBits, so consume the whole window at once and resume
    // the walk from that depth (bit consumption and loop state match the
    // bit-by-bit walk exactly).
    probeReady();
    V = peek(TBits);
    consume(TBits);
    B = E.B;
    J = E.J;
    I = TBits;
  }
  do {
    if (I >= MaxLen)
      return false;
    V = 2 * V + readBit();
    B = 2 * (B + N[I]);
    J += N[I];
    ++I;
  } while (V >= B + N[I]);
  size_t Idx = J + static_cast<size_t>(V - B);
  if (Idx >= D.size())
    return false;
  Sym = D[Idx];
  return true;
}

bool FastDecoder::decodeSym(FieldKind Kind, uint32_t &Sym) {
  probeReady();
  const uint32_t W = peek(TBits);
  const size_t Ix = (static_cast<size_t>(idx(Kind)) << TBits) | W;
  if (const unsigned Len = SymLenTab[Ix]) {
    consume(Len);
    Sym = SymValTab[Ix];
    return !overran();
  }
  if (!escapeSym(Kind, Sym))
    return false;
  return !overran();
}

bool FastDecoder::decodeField(FieldKind Kind, uint32_t &Value) {
  uint32_t Sym;
  if (!decodeSym(Kind, Sym)) {
    Corrupt = true;
    return false;
  }
  if (MtfOn) {
    auto &List = Mtf[idx(Kind)];
    if (Sym >= List.size()) {
      Corrupt = true;
      return false;
    }
    uint32_t V = List[Sym];
    List.erase(List.begin() + static_cast<ptrdiff_t>(Sym));
    List.insert(List.begin(), V);
    Value = V;
  } else {
    Value = Sym;
  }
  if (DeltaOn && StreamCodecs::isDeltaKind(Kind))
    Value = StreamCodecs::undeltaStep(Kind, Value, DeltaPrev[idx(Kind)]);
  return true;
}

bool FastDecoder::slowNext(MInst &Inst) {
  uint32_t Op;
  if (!decodeField(FieldKind::Opcode, Op))
    return false;
  if (Op == static_cast<uint32_t>(Opcode::Sentinel)) {
    Done = true;
    return false; // Clean end of region.
  }
  if (Op >= vea::NumOpcodes) {
    Corrupt = true;
    return false;
  }
  Inst = MInst(static_cast<Opcode>(Op));
  const vea::FormatLayout &Layout =
      vea::formatLayout(vea::formatOf(static_cast<Opcode>(Op)));
  for (unsigned S = 1; S != Layout.Count; ++S) {
    uint32_t Value;
    if (!decodeField(Layout.Slots[S].Kind, Value))
      return false;
    Inst.set(Layout.Slots[S].Kind, Value);
  }
  return true;
}
