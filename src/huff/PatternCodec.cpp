//===- huff/PatternCodec.cpp - n-gram pattern-table coder -----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "huff/PatternCodec.h"

#include <algorithm>
#include <map>

using namespace vea;

namespace squash {

namespace {

/// Region instruction sequences as encoded words, the mining/matching
/// representation (exact word equality is pattern equality).
std::vector<uint32_t> toWords(const std::vector<MInst> &Insts) {
  std::vector<uint32_t> Words;
  Words.reserve(Insts.size());
  for (const MInst &I : Insts)
    Words.push_back(encode(I));
  return Words;
}

/// Match-priority ordering of dictionary entries: longest first so greedy
/// parsing maximizes coverage, ties by word sequence for determinism.
bool patternBefore(const std::vector<uint32_t> &A,
                   const std::vector<uint32_t> &B) {
  if (A.size() != B.size())
    return A.size() > B.size();
  return A < B;
}

} // namespace

PatternCodec
PatternCodec::build(const std::vector<std::vector<MInst>> &Corpus) {
  PatternCodec C;
  C.Present = true;

  std::vector<std::vector<uint32_t>> RegionWords;
  RegionWords.reserve(Corpus.size());
  for (const auto &R : Corpus)
    RegionWords.push_back(toWords(R));

  // Candidate mining: every n-gram of MinLen..MaxLen words, counted at
  // every position. std::map keys keep the scan order deterministic.
  std::map<std::vector<uint32_t>, uint64_t> Counts;
  for (const auto &Words : RegionWords)
    for (size_t At = 0; At != Words.size(); ++At)
      for (size_t Len = MinLen; Len <= MaxLen && At + Len <= Words.size();
           ++Len)
        ++Counts[std::vector<uint32_t>(Words.begin() + At,
                                       Words.begin() + At + Len)];

  // Rank by estimated savings (occurrences x length), drop singletons, and
  // take the top MaxPatterns as the provisional dictionary.
  std::vector<std::pair<uint64_t, std::vector<uint32_t>>> Ranked;
  for (const auto &[Words, Count] : Counts)
    if (Count >= 2)
      Ranked.emplace_back(Count * Words.size(), Words);
  std::sort(Ranked.begin(), Ranked.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first > B.first;
              return patternBefore(A.second, B.second);
            });
  if (Ranked.size() > MaxPatterns)
    Ranked.resize(MaxPatterns);
  C.PatternWords.clear();
  for (auto &[Score, Words] : Ranked)
    C.PatternWords.push_back(std::move(Words));
  std::sort(C.PatternWords.begin(), C.PatternWords.end(), patternBefore);

  // Two parse rounds: overlapping mined counts overstate usefulness, so
  // parse once, keep only entries the greedy parse actually used at least
  // twice, and re-parse with the pruned set for the final frequencies.
  for (int Round = 0; Round != 2; ++Round) {
    std::vector<uint64_t> Uses(C.PatternWords.size(), 0);
    for (const auto &Words : RegionWords)
      for (size_t At = 0; At < Words.size();) {
        int M = C.matchAt(Words, At);
        if (M >= 0) {
          ++Uses[static_cast<size_t>(M)];
          At += C.PatternWords[static_cast<size_t>(M)].size();
        } else {
          ++At;
        }
      }
    std::vector<std::vector<uint32_t>> Kept;
    const uint64_t MinUses = Round == 0 ? 2 : 1;
    for (size_t I = 0; I != C.PatternWords.size(); ++I)
      if (Uses[I] >= MinUses)
        Kept.push_back(std::move(C.PatternWords[I]));
    C.PatternWords = std::move(Kept); // Order (longest-first) is preserved.
  }

  C.Patterns.clear();
  for (const auto &Words : C.PatternWords) {
    std::vector<MInst> Insts;
    for (uint32_t W : Words)
      Insts.push_back(decode(W));
    C.Patterns.push_back(std::move(Insts));
  }

  // Final parse: selector frequencies and escape field histograms.
  std::vector<uint64_t> SelFreq(C.Patterns.size() + 2, 0);
  std::array<std::map<uint32_t, uint64_t>, NumFieldKinds> FieldFreq;
  for (size_t R = 0; R != RegionWords.size(); ++R) {
    const auto &Words = RegionWords[R];
    const auto &Insts = Corpus[R];
    for (size_t At = 0; At < Words.size();) {
      int M = C.matchAt(Words, At);
      if (M >= 0) {
        ++SelFreq[static_cast<size_t>(M)];
        At += C.PatternWords[static_cast<size_t>(M)].size();
        continue;
      }
      ++SelFreq[C.escapeSymbol()];
      const MInst &I = Insts[At];
      const FormatLayout &L = formatLayout(formatOf(I.Op));
      for (unsigned S = 0; S != L.Count; ++S) {
        FieldKind K = L.Slots[S].Kind;
        ++FieldFreq[static_cast<unsigned>(K)][I.get(K)];
      }
      ++At;
    }
    ++SelFreq[C.endSymbol()];
  }

  std::vector<std::pair<uint32_t, uint64_t>> SelPairs;
  for (uint32_t S = 0; S != SelFreq.size(); ++S)
    if (SelFreq[S])
      SelPairs.emplace_back(S, SelFreq[S]);
  C.Selector = CanonicalCode::build(std::move(SelPairs));

  for (unsigned K = 0; K != NumFieldKinds; ++K) {
    std::vector<std::pair<uint32_t, uint64_t>> Pairs(FieldFreq[K].begin(),
                                                     FieldFreq[K].end());
    C.Esc[K] = CanonicalCode::build(std::move(Pairs));
  }

  // Exact serialized table size, cached for tableBits().
  BitWriter Scratch;
  C.serializeTables(Scratch);
  C.TableBitsCache = Scratch.bitSize();
  return C;
}

int PatternCodec::matchAt(const std::vector<uint32_t> &Words,
                          size_t At) const {
  for (size_t P = 0; P != PatternWords.size(); ++P) {
    const auto &Pat = PatternWords[P];
    if (At + Pat.size() > Words.size())
      continue;
    if (std::equal(Pat.begin(), Pat.end(), Words.begin() + At))
      return static_cast<int>(P);
  }
  return -1;
}

Status PatternCodec::encodeCore(const std::vector<MInst> &Insts, BitWriter &W,
                                DecodeWork &Work) const {
  if (!Present)
    return Status::error(vea::StatusCode::InternalError,
                         "pattern codec was never built");
  std::vector<uint32_t> Words = toWords(Insts);
  auto Fail = [](const char *What) {
    return Status::error(vea::StatusCode::EncodingError,
                         std::string("pattern: ") + What +
                             " outside the corpus alphabet");
  };
  for (size_t At = 0; At < Words.size();) {
    int M = matchAt(Words, At);
    if (M >= 0) {
      if (!Selector.encode(static_cast<uint32_t>(M), W))
        return Fail("pattern index");
      size_t Len = PatternWords[static_cast<size_t>(M)].size();
      Work.Instructions += Len;
      Work.PatternCovered += Len;
      At += Len;
      continue;
    }
    if (!Selector.encode(escapeSymbol(), W))
      return Fail("escape symbol");
    const MInst &I = Insts[At];
    const FormatLayout &L = formatLayout(formatOf(I.Op));
    for (unsigned S = 0; S != L.Count; ++S) {
      FieldKind K = L.Slots[S].Kind;
      if (!Esc[static_cast<unsigned>(K)].encode(I.get(K), W))
        return Fail(fieldKindName(K));
    }
    ++Work.Instructions;
    ++Work.Escapes;
    ++At;
  }
  if (!Selector.encode(endSymbol(), W))
    return Fail("end symbol");
  return Status::success();
}

Status PatternCodec::encodeRegion(const std::vector<MInst> &Insts,
                                  BitWriter &W) const {
  DecodeWork Work;
  return encodeCore(Insts, W, Work);
}

Status PatternCodec::measureRegion(const std::vector<MInst> &Insts,
                                   uint64_t &Bits, DecodeWork &Work) const {
  BitWriter Scratch;
  Work = DecodeWork();
  if (Status St = encodeCore(Insts, Scratch, Work); !St.ok())
    return St;
  Bits = Scratch.bitSize();
  return Status::success();
}

bool PatternCodec::decodeEscape(BitReader &Reader, MInst &Inst) const {
  uint32_t Op =
      Esc[static_cast<unsigned>(FieldKind::Opcode)].decode(Reader);
  if (Op == CanonicalCode::Invalid || Reader.overran() || Op >= NumOpcodes ||
      Op == static_cast<uint32_t>(Opcode::Sentinel))
    return false;
  Inst = MInst(static_cast<Opcode>(Op));
  const FormatLayout &L = formatLayout(formatOf(Inst.Op));
  for (unsigned S = 1; S != L.Count; ++S) {
    FieldKind K = L.Slots[S].Kind;
    uint32_t V = Esc[static_cast<unsigned>(K)].decode(Reader);
    if (V == CanonicalCode::Invalid || Reader.overran() || V > fieldMask(K))
      return false;
    Inst.set(K, V);
  }
  return true;
}

bool PatternCodec::Decoder::next(MInst &Inst) {
  if (Corrupt || Done)
    return false;
  if (Replay) {
    Inst = (*Replay)[ReplayIx++];
    ++Work.Instructions;
    ++Work.PatternCovered;
    if (ReplayIx == Replay->size())
      Replay = nullptr;
    return true;
  }
  uint32_t Sym = Codec.Selector.decode(Reader);
  if (Sym == CanonicalCode::Invalid || Reader.overran()) {
    Corrupt = true;
    return false;
  }
  if (Sym == Codec.endSymbol()) {
    Done = true;
    return false;
  }
  if (Sym == Codec.escapeSymbol()) {
    if (!Codec.decodeEscape(Reader, Inst)) {
      Corrupt = true;
      return false;
    }
    ++Work.Instructions;
    ++Work.Escapes;
    return true;
  }
  if (Sym >= Codec.numPatterns() || Codec.Patterns[Sym].empty()) {
    Corrupt = true;
    return false;
  }
  const std::vector<MInst> &Pat = Codec.Patterns[Sym];
  Inst = Pat[0];
  ++Work.Instructions;
  ++Work.PatternCovered;
  if (Pat.size() > 1) {
    Replay = &Pat;
    ReplayIx = 1;
  }
  return true;
}

std::unique_ptr<RegionCursor>
PatternCodec::makeDecoder(const uint8_t *Blob, size_t BlobBytes,
                          size_t StartBit) const {
  BitReader Reader(Blob, BlobBytes);
  Reader.seekBit(StartBit);
  return std::make_unique<Decoder>(*this, std::move(Reader));
}

void PatternCodec::serializeTables(BitWriter &W) const {
  // Dictionary: count, then (length, raw instruction words) per entry.
  W.writeBits(static_cast<uint32_t>(Patterns.size()), 8);
  for (const auto &Words : PatternWords) {
    W.writeBits(static_cast<uint32_t>(Words.size()), 4);
    for (uint32_t Word : Words)
      W.writeBits(Word, 32);
  }
  // Selector symbols fit 8 bits (at most MaxPatterns + 2 values).
  Selector.serialize(W, 8);
  for (unsigned K = 0; K != NumFieldKinds; ++K)
    Esc[K].serialize(W, fieldWidth(static_cast<FieldKind>(K)));
}

Status PatternCodec::validate() const {
  auto Bad = [](const char *What) {
    return Status::error(vea::StatusCode::MalformedImage,
                         std::string("pattern codec: ") + What);
  };
  if (!Present)
    return Bad("tables missing");
  if (Patterns.size() > MaxPatterns ||
      Patterns.size() != PatternWords.size())
    return Bad("dictionary size out of range");
  for (size_t P = 0; P != Patterns.size(); ++P) {
    if (Patterns[P].empty() || Patterns[P].size() > MaxLen ||
        Patterns[P].size() != PatternWords[P].size())
      return Bad("dictionary entry length out of range");
    for (const MInst &I : Patterns[P])
      if (static_cast<unsigned>(I.Op) >= NumOpcodes ||
          I.Op == Opcode::Sentinel)
        return Bad("dictionary entry holds an invalid opcode");
  }
  if (!Selector.valid() || Selector.empty())
    return Bad("selector code is invalid");
  for (uint32_t V : Selector.values())
    if (V > endSymbol())
      return Bad("selector value out of range");
  for (unsigned K = 0; K != NumFieldKinds; ++K) {
    if (!Esc[K].valid())
      return Bad("escape field code is invalid");
    for (uint32_t V : Esc[K].values())
      if (V > fieldMask(static_cast<FieldKind>(K)))
        return Bad("escape field value exceeds its field width");
  }
  return Status::success();
}

} // namespace squash
