//===- huff/Huffman.cpp - Canonical Huffman coding ------------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "huff/Huffman.h"

#include <algorithm>
#include <queue>

using namespace squash;

std::vector<unsigned> squash::huffmanLengths(const std::vector<uint64_t> &Freqs) {
  size_t N = Freqs.size();
  if (N == 0)
    return {};
  if (N == 1)
    return {1}; // A lone symbol still needs one bit per occurrence.

  // Standard two-queue-free approach: a priority queue over tree nodes.
  // Ties are broken by node id so the construction is deterministic.
  struct Node {
    uint64_t Freq;
    uint32_t Id;
    int32_t Left, Right; // -1 for leaves.
  };
  std::vector<Node> Nodes;
  Nodes.reserve(2 * N);
  using QItem = std::pair<uint64_t, uint32_t>; // (freq, node id)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>> Q;
  for (size_t I = 0; I != N; ++I) {
    Nodes.push_back({Freqs[I], static_cast<uint32_t>(I), -1, -1});
    Q.push({Freqs[I], static_cast<uint32_t>(I)});
  }
  while (Q.size() > 1) {
    QItem A = Q.top();
    Q.pop();
    QItem B = Q.top();
    Q.pop();
    uint32_t Id = static_cast<uint32_t>(Nodes.size());
    Nodes.push_back({A.first + B.first, Id, static_cast<int32_t>(A.second),
                     static_cast<int32_t>(B.second)});
    Q.push({A.first + B.first, Id});
  }

  // Depth-first traversal assigning depths.
  std::vector<unsigned> Lengths(N, 0);
  std::vector<std::pair<uint32_t, unsigned>> Stack;
  Stack.push_back({Q.top().second, 0});
  while (!Stack.empty()) {
    auto [Id, Depth] = Stack.back();
    Stack.pop_back();
    const Node &Nd = Nodes[Id];
    if (Nd.Left < 0) {
      Lengths[Id] = Depth == 0 ? 1 : Depth;
      continue;
    }
    Stack.push_back({static_cast<uint32_t>(Nd.Left), Depth + 1});
    Stack.push_back({static_cast<uint32_t>(Nd.Right), Depth + 1});
  }
  return Lengths;
}

CanonicalCode
CanonicalCode::build(std::vector<std::pair<uint32_t, uint64_t>> Freqs) {
  // Drop zero-frequency symbols; keep construction order deterministic.
  Freqs.erase(std::remove_if(Freqs.begin(), Freqs.end(),
                             [](const auto &P) { return P.second == 0; }),
              Freqs.end());

  CanonicalCode Code;
  if (Freqs.empty())
    return Code;

  std::vector<uint64_t> F;
  F.reserve(Freqs.size());
  for (const auto &P : Freqs)
    F.push_back(P.second);
  std::vector<unsigned> Lengths = huffmanLengths(F);

  unsigned MaxLen = 0;
  for (unsigned L : Lengths)
    MaxLen = std::max(MaxLen, L);

  // Order symbols by (length, value): this fixes the canonical assignment.
  std::vector<std::pair<unsigned, uint32_t>> Order; // (length, symbol)
  Order.reserve(Freqs.size());
  for (size_t I = 0; I != Freqs.size(); ++I)
    Order.push_back({Lengths[I], Freqs[I].first});
  std::sort(Order.begin(), Order.end());

  Code.N.assign(MaxLen + 1, 0);
  Code.D.reserve(Order.size());
  for (const auto &[Len, Sym] : Order) {
    ++Code.N[Len];
    Code.D.push_back(Sym);
  }
  Code.finalize();
  return Code;
}

void CanonicalCode::finalize() {
  Enc.clear();
  // Codewords of length i are b_i, b_i + 1, ..., b_i + N[i] - 1 with
  // b_1 = 0 and b_i = 2 (b_{i-1} + N[i-1])  (paper Section 3).
  uint64_t B = 0;
  size_t J = 0;
  for (unsigned Len = 1; Len < N.size(); ++Len) {
    if (Len > 1)
      B = 2 * (B + N[Len - 1]);
    for (uint32_t K = 0; K != N[Len]; ++K) {
      uint32_t Sym = D[J + K];
      Enc[Sym] = {Len, static_cast<uint32_t>(B + K)};
    }
    J += N[Len];
  }
}

unsigned CanonicalCode::lengthOf(uint32_t Symbol) const {
  auto It = Enc.find(Symbol);
  return It == Enc.end() ? 0 : It->second.first;
}

bool CanonicalCode::encode(uint32_t Symbol, vea::BitWriter &W) const {
  auto It = Enc.find(Symbol);
  if (It == Enc.end())
    return false;
  W.writeBits(It->second.second, It->second.first);
  return true;
}

uint32_t CanonicalCode::decode(vea::BitReader &R) const {
  if (D.empty())
    return Invalid;
  // DECODE() from the paper, with a bound check for corrupt streams.
  uint64_t V = 0, B = 0;
  size_t J = 0;
  unsigned I = 0;
  unsigned MaxLen = maxLength();
  do {
    if (I >= MaxLen)
      return Invalid; // Ran past the longest codeword: corrupt stream.
    V = 2 * V + R.readBit();
    B = 2 * (B + N[I]);
    J += N[I];
    ++I;
  } while (V >= B + N[I]);
  size_t Idx = J + (V - B);
  if (Idx >= D.size())
    return Invalid; // Truncated value list (see valid()).
  return D[Idx];
}

bool CanonicalCode::valid() const {
  if (N.empty())
    return D.empty();
  if (N[0] != 0)
    return false;
  uint64_t Total = 0, B = 0;
  for (unsigned Len = 1; Len < N.size(); ++Len) {
    if (Len > 1)
      B = 2 * (B + N[Len - 1]);
    if (B + N[Len] > (1ull << std::min(Len, 63u)))
      return false; // More codewords of this length than Len bits can hold.
    Total += N[Len];
  }
  return Total == D.size();
}

size_t CanonicalCode::representationBits(unsigned ValueBits) const {
  // 8 bits for MaxLen, 32 bits per N[i] (i = 1..MaxLen), 32 bits for the
  // value count, then the value list.
  return 8 + 32ull * maxLength() + 32 + ValueBits * D.size();
}

void CanonicalCode::serialize(vea::BitWriter &W, unsigned ValueBits) const {
  W.writeBits(maxLength(), 8);
  for (unsigned Len = 1; Len < N.size(); ++Len)
    W.writeBits(N[Len], 32);
  W.writeBits(D.size(), 32);
  for (uint32_t Sym : D)
    W.writeBits(Sym, ValueBits);
}

CanonicalCode CanonicalCode::deserialize(vea::BitReader &R,
                                         unsigned ValueBits) {
  CanonicalCode Code;
  unsigned MaxLen = static_cast<unsigned>(R.readBits(8));
  if (MaxLen == 0)
    return Code;
  Code.N.assign(MaxLen + 1, 0);
  uint64_t Total = 0;
  for (unsigned Len = 1; Len <= MaxLen; ++Len) {
    Code.N[Len] = static_cast<uint32_t>(R.readBits(32));
    Total += Code.N[Len];
  }
  uint64_t Count = R.readBits(32);
  if (Count != Total || R.overran())
    return CanonicalCode();
  Code.D.reserve(Count);
  for (uint64_t I = 0; I != Count; ++I)
    Code.D.push_back(static_cast<uint32_t>(R.readBits(ValueBits)));
  if (R.overran())
    return CanonicalCode();
  Code.finalize();
  return Code;
}

uint64_t CanonicalCode::encodedBits(
    const std::vector<std::pair<uint32_t, uint64_t>> &Freqs) const {
  uint64_t Bits = 0;
  for (const auto &[Sym, Freq] : Freqs)
    Bits += static_cast<uint64_t>(lengthOf(Sym)) * Freq;
  return Bits;
}
