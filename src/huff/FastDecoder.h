//===- huff/FastDecoder.h - Table-driven multi-symbol decode ---*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A table-driven accelerator for the splitting-streams decoder: instead of
/// walking the paper's DECODE() loop one bit at a time, the decoder peeks a
/// Bits-wide window of the stream and resolves one-or-more whole fields per
/// probe from precomputed tables (DESIGN.md §16).
///
/// Two table families, both derived from the canonical codes alone:
///
///  - Per-stream symbol tables: for each field kind, a 2^Bits entry table
///    mapping every window to (symbol, codeword length); windows whose
///    shortest matching codeword is longer than Bits (or that match no
///    codeword) carry an escape entry, and the decoder falls back to the
///    bit-by-bit canonical walk for that one symbol.
///  - A fused instruction table (built only when MTF is off, since MTF
///    makes the stream format depend on mutable recency-list state): each
///    window resolves the opcode plus as many operand fields of its format
///    as fit in the window, so a typical instruction costs one or two
///    probes instead of one loop iteration per bit.
///
/// The decoder consumes exactly the bits the canonical decode would, pads
/// the stream with zero bits past its end (matching BitReader's default
/// overrun bit), and reports the same corrupt/clean-end verdicts as
/// StreamCodecs::RegionDecoder on every stream — valid, truncated, or
/// malformed; the fastdecode conformance suite pins this equivalence.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_HUFF_FASTDECODER_H
#define SQUASH_HUFF_FASTDECODER_H

#include "huff/StreamCodec.h"

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace squash {

/// The precomputed lookup tables for one StreamCodecs instance. Immutable
/// once built; shared (via shared_ptr) between every decoder and every
/// attach of the same squashed program.
class FastTables {
public:
  /// Supported probe-window widths. 11 bits covers the overwhelming
  /// majority of codewords on the paper's streams while keeping the fused
  /// table at 2^11 entries; Options::DecodeTableBits is clamped to this
  /// range.
  static constexpr unsigned MinBits = 4;
  static constexpr unsigned MaxBits = 14;
  static constexpr unsigned DefaultBits = 11;

  /// Operand slots of the widest instruction format (opcode included).
  static constexpr size_t MaxSlots = 6;

  /// Tables are split by role so the bit cursor's serial dependence chain
  /// (how many bits did this probe consume? what fields come next?) only
  /// ever loads from small control arrays, while the wide symbol values —
  /// which feed field writes off the critical path — live in separate
  /// value arrays:
  ///
  ///  - Per-stream: one flat byte array of codeword lengths indexed
  ///    [kind << Bits | window] (0 = escape: codeword longer than the
  ///    window, invalid prefix, or empty code) plus a parallel uint32
  ///    array of symbol values. Flat layout means the probe loop needs no
  ///    per-kind pointer load and no null check — absent streams are
  ///    all-zero and escape naturally.
  ///  - Fused: a 2^Bits control word per window packing consumed bit
  ///    count (0 = escape), resolved slot count, sentinel flag, the
  ///    format's slot count, and the field kind of every operand slot (4
  ///    bits each) — the complete per-instruction decode plan, so the
  ///    probe loop neither calls into the ISA's format tables nor waits
  ///    on the larger value table — plus a parallel array of per-slot
  ///    symbol values.
  static constexpr uint32_t FusedConsumedMask = 0x0F;
  static constexpr unsigned FusedResolvedShift = 4;
  static constexpr uint32_t FusedResolvedMask = 0x07;
  static constexpr uint32_t FusedSentinelBit = 0x80;
  static constexpr unsigned FusedCountShift = 8;
  static constexpr uint32_t FusedCountMask = 0x07;
  /// Kinds of operand slots 1..MaxSlots-1, 4 bits per slot from bit 12.
  static constexpr unsigned FusedKindsShift = 12;
  static constexpr unsigned FusedKindBits = 4;

  /// Resume state for the escape path's canonical walk: B (first codeword)
  /// and J (value-list index) of the paper's DECODE() loop after bits()
  /// iterations. Valid only when the stream's table probes conclusively
  /// rule out every codeword of length <= bits() (sane counts and a max
  /// length beyond the window), so an escaping decoder can consume the
  /// whole window at once and continue from that depth.
  struct EscStart {
    uint64_t B = 0;
    uint32_t J = 0;
    uint8_t Valid = 0;
  };

  /// Builds the tables for \p Codecs with a \p Bits-wide window (clamped
  /// to [MinBits, MaxBits]). Safe on structurally invalid codes (see
  /// CanonicalCode::valid): affected windows simply escape to the slow
  /// path, which reports them corrupt.
  static std::shared_ptr<const FastTables> build(const StreamCodecs &Codecs,
                                                 unsigned Bits);

  unsigned bits() const { return Bits; }
  bool fused() const { return !FusedCtl.empty(); }
  /// Host wall-clock nanoseconds spent constructing the tables.
  uint64_t buildNanos() const { return BuildNs; }
  /// Total host bytes of table storage.
  size_t tableBytes() const;

private:
  friend class FastDecoder;
  FastTables() = default;

  unsigned Bits = DefaultBits;
  uint64_t BuildNs = 0;
  /// Flat per-stream tables, indexed [kind << Bits | window].
  std::vector<uint8_t> SymLen;
  std::vector<uint32_t> SymVal;
  std::array<EscStart, vea::NumFieldKinds> Esc;
  /// Fused control words and per-window slot values; empty when MTF is on.
  std::vector<uint32_t> FusedCtl;
  std::vector<std::array<uint32_t, MaxSlots>> FusedVals;
};

/// Streaming region decoder over the fast tables; drop-in equivalent of
/// StreamCodecs::RegionDecoder (same next()/ok()/bitPosition() surface and
/// verdicts), reading from a raw byte buffer at an arbitrary start bit.
/// The fill path is allocation-free when MTF is off: the only per-call
/// state is the 64-bit window and the delta registers.
class FastDecoder {
public:
  /// \p Tables must come from \p Codecs (fastTables()); passing nullptr
  /// builds a private, unmemoized set at DefaultBits. \p StartBit may be
  /// anywhere in [0, 8*NumBytes]; reads past the end decode zero bits and
  /// flag the stream corrupt, exactly like a BitReader-backed decode.
  FastDecoder(const StreamCodecs &Codecs,
              std::shared_ptr<const FastTables> Tables, const uint8_t *Data,
              size_t NumBytes, size_t StartBit);

  /// Decodes the next instruction into \p Inst. Returns false at the
  /// sentinel or on a corrupt stream (check ok()).
  bool next(vea::MInst &Inst) { return decodeRun(&Inst, 1) == 1; }
  /// Decodes up to \p Max instructions into \p Out, returning how many
  /// were produced; short counts mean sentinel or corruption (check
  /// ok()/atEnd()), never an internal stall. This is the throughput
  /// surface: the bit cursor stays in registers across the whole run
  /// instead of round-tripping through members per instruction. Defined
  /// inline below: the fill loops that drive it (runtime decompression,
  /// the decode benches) live in other translation units, and keeping
  /// the probe chain inlinable there is worth a header-visible body.
  size_t decodeRun(vea::MInst *Out, size_t Max);
  bool ok() const { return !Corrupt; }
  /// True once the region's sentinel has been cleanly consumed.
  bool atEnd() const { return Done; }
  /// Absolute bit offset of the next unconsumed bit (matches the slow
  /// decoder's reader position after each successful next()).
  size_t bitPosition() const { return Start + Consumed; }

private:
  /// First stream byte of an 8-byte window chunk, MSB-aligned.
  static uint64_t loadBe64(const uint8_t *P) {
    uint64_t V;
    std::memcpy(&V, P, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return V;
#else
    return __builtin_bswap64(V);
#endif
  }
  /// Tops the window up to >= 57 valid bits (or to the end of the data).
  /// Away from the stream tail this is one unaligned 8-byte load: bits of
  /// partially counted bytes land below the Have watermark holding their
  /// true stream values, so re-ORing the same bytes on a later refill is
  /// idempotent; only positions past the stream's end stay zero (the
  /// padding BitReader also decodes).
  void refill() {
    if (Have <= 56 && NextByte + 8 <= NumBytes) {
      Window |= loadBe64(Data + NextByte) >> Have;
      const unsigned Bytes = (64 - Have) >> 3;
      NextByte += Bytes;
      Have += 8 * Bytes;
      return;
    }
    while (Have <= 56 && NextByte < NumBytes) {
      Window |= static_cast<uint64_t>(Data[NextByte++]) << (56 - Have);
      Have += 8;
    }
  }
  /// Guarantees the window's top TBits bits are decodable (valid stream
  /// bits, or the zero padding past its end). A full window feeds several
  /// probes, so the common case is one refill per instruction.
  void probeReady() {
    if (Have < TBits)
      refill();
  }
  uint32_t peek(unsigned NumBits) const {
    return static_cast<uint32_t>(Window >> (64 - NumBits));
  }
  void consume(unsigned NumBits) {
    Window <<= NumBits;
    Have = NumBits > Have ? 0 : Have - NumBits;
    Consumed += NumBits;
  }
  /// One bit, zero past the end (the overrun is caught by overran()).
  unsigned readBit() {
    if (!Have)
      refill();
    unsigned Bit = static_cast<unsigned>(Window >> 63);
    consume(1);
    return Bit;
  }
  bool overran() const { return Consumed > Avail; }

  /// Bit-by-bit canonical decode of one symbol (the table escape path),
  /// resuming at window depth when the stream's EscStart allows. Returns
  /// false on an invalid codeword; overrun is checked by the caller.
  bool escapeSym(vea::FieldKind Kind, uint32_t &Sym);
  /// One symbol of stream \p Kind via its table (escaping as needed);
  /// false on invalid codeword or overrun.
  bool decodeSym(vea::FieldKind Kind, uint32_t &Sym);
  /// One field value: symbol decode plus the MTF and delta inverse
  /// transforms. Sets Corrupt on failure.
  bool decodeField(vea::FieldKind Kind, uint32_t &Value);
  /// Field-at-a-time instruction decode (fused-table escape path and the
  /// MTF configuration).
  bool slowNext(vea::MInst &Inst);

  const StreamCodecs &Codecs;
  std::shared_ptr<const FastTables> T;
  /// Raw table pointers hoisted out of the probe loops.
  const uint8_t *SymLenTab = nullptr;  ///< Flat, [kind << TBits | window].
  const uint32_t *SymValTab = nullptr;
  const uint32_t *FusedCtlTab = nullptr;
  const std::array<uint32_t, FastTables::MaxSlots> *FusedValsTab = nullptr;
  unsigned TBits = FastTables::DefaultBits;
  const uint8_t *Data;
  size_t NumBytes;
  size_t Start;       ///< Absolute start bit.
  uint64_t Avail;     ///< Valid bits from Start to the end of the buffer.
  size_t NextByte;    ///< Next byte to shift into the window.
  uint64_t Window = 0; ///< Upcoming bits, MSB-aligned at bit 63.
  unsigned Have = 0;   ///< Valid bits currently in the window.
  uint64_t Consumed = 0;
  bool MtfOn, DeltaOn;
  bool Corrupt = false, Done = false;
  /// Per-stream MTF recency lists (only populated when MTF is on).
  std::array<std::vector<uint32_t>, vea::NumFieldKinds> Mtf;
  /// Per-stream previous values for delta decoding.
  std::array<uint32_t, vea::NumFieldKinds> DeltaPrev = {};
};

inline size_t FastDecoder::decodeRun(vea::MInst *Out, size_t Max) {
  using vea::FieldKind;
  using vea::Opcode;
  if (Corrupt || Done)
    return 0;
  size_t N = 0;
  if (!FusedCtlTab) {
    while (N != Max && slowNext(Out[N]))
      ++N;
    return N;
  }

  // The whole run decodes on a local copy of the bit cursor so the probe
  // chain lives in registers: stores into Out (a pointer of unknown
  // provenance) and the uint8_t stream loads would otherwise force the
  // compiler to spill and reload the members around every field. Members
  // are written back once per run — or just before any slow-path
  // handoff, which continues on member state and is reloaded after.
  uint64_t Win = Window;
  unsigned H = Have;
  size_t NB = NextByte;
  uint64_t Cons = Consumed;
  const auto Refill = [&] {
    if (H <= 56 && NB + 8 <= NumBytes) {
      Win |= loadBe64(Data + NB) >> H;
      const unsigned Bytes = (64 - H) >> 3;
      NB += Bytes;
      H += 8 * Bytes;
      return;
    }
    while (H <= 56 && NB < NumBytes) {
      Win |= static_cast<uint64_t>(Data[NB++]) << (56 - H);
      H += 8;
    }
  };
  const auto Commit = [&] {
    Window = Win;
    Have = H;
    NextByte = NB;
    Consumed = Cons;
  };
  const auto Reload = [&] {
    Win = Window;
    H = Have;
    NB = NextByte;
    Cons = Consumed;
  };

  while (N != Max) {
    if (H < TBits)
      Refill();
    const uint32_t W = static_cast<uint32_t>(Win >> (64 - TBits));
    const uint32_t Ctl = FusedCtlTab[W];
    const unsigned C = Ctl & FastTables::FusedConsumedMask;
    if (!C) {
      // Fused escape: decode this one instruction field-at-a-time on
      // member state (the local cursor had not advanced past it), then
      // resume the register cursor.
      Commit();
      if (!slowNext(Out[N]))
        return N;
      ++N;
      Reload();
      continue;
    }
    Win <<= C;
    H = C > H ? 0 : H - C;
    Cons += C;
    if (Cons > Avail) {
      // Some resolved codeword crossed the end of the stream; the
      // bit-serial decoder flags exactly these streams corrupt.
      Commit();
      Corrupt = true;
      return N;
    }
    if (Ctl & FastTables::FusedSentinelBit) {
      Commit();
      Done = true;
      return N;
    }
    // The slot count and every operand slot's field kind ride in the
    // control word, so the probe loop's control flow never waits on the
    // (much larger) value table and never calls into the ISA's format
    // tables.
    const unsigned Resolved = (Ctl >> FastTables::FusedResolvedShift) &
                              FastTables::FusedResolvedMask;
    const unsigned Count =
        (Ctl >> FastTables::FusedCountShift) & FastTables::FusedCountMask;
    uint32_t Kinds = Ctl >> FastTables::FusedKindsShift;
    const std::array<uint32_t, FastTables::MaxSlots> &Vals = FusedValsTab[W];
    vea::MInst &Inst = Out[N];
    Inst = vea::MInst(static_cast<Opcode>(Vals[0]));
    unsigned S = 1;
    for (; S != Resolved; ++S, Kinds >>= FastTables::FusedKindBits) {
      const FieldKind Kind =
          static_cast<FieldKind>(Kinds & ((1u << FastTables::FusedKindBits) - 1));
      uint32_t V = Vals[S];
      if (DeltaOn && StreamCodecs::isDeltaKind(Kind))
        V = StreamCodecs::undeltaStep(Kind, V,
                                      DeltaPrev[static_cast<unsigned>(Kind)]);
      // Slots past 0 are never the opcode, so the raw field store skips
      // set()'s opcode-resync branch.
      Inst.Fields[static_cast<unsigned>(Kind)] = V;
    }
    // Fields past the window: one table probe each on the local cursor,
    // handing the remaining fields to the member-state path on a miss.
    for (; S != Count; ++S, Kinds >>= FastTables::FusedKindBits) {
      const FieldKind Kind =
          static_cast<FieldKind>(Kinds & ((1u << FastTables::FusedKindBits) - 1));
      if (H < TBits)
        Refill();
      const uint32_t FW = static_cast<uint32_t>(Win >> (64 - TBits));
      const size_t Ix = (static_cast<size_t>(Kind) << TBits) | FW;
      const unsigned Len = SymLenTab[Ix];
      if (!Len) {
        // Deep codeword (or an absent stream, which is all-escape):
        // hand off to decodeField, which redoes the probe on committed
        // state and walks the canonical code.
        Commit();
        for (; S != Count; ++S, Kinds >>= FastTables::FusedKindBits) {
          const FieldKind K = static_cast<FieldKind>(
              Kinds & ((1u << FastTables::FusedKindBits) - 1));
          uint32_t Value;
          if (!decodeField(K, Value))
            return N;
          Inst.set(K, Value);
        }
        Reload();
        break;
      }
      Win <<= Len;
      H = Len > H ? 0 : H - Len;
      Cons += Len;
      if (Cons > Avail) {
        Commit();
        Corrupt = true;
        return N;
      }
      uint32_t V = SymValTab[Ix];
      if (DeltaOn && StreamCodecs::isDeltaKind(Kind))
        V = StreamCodecs::undeltaStep(Kind, V,
                                      DeltaPrev[static_cast<unsigned>(Kind)]);
      Inst.Fields[static_cast<unsigned>(Kind)] = V;
    }
    ++N;
  }
  Commit();
  return N;
}

} // namespace squash

#endif // SQUASH_HUFF_FASTDECODER_H
