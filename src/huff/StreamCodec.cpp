//===- huff/StreamCodec.cpp - Splitting-streams instruction codec ---------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "huff/StreamCodec.h"

#include <cassert>
#include <algorithm>
#include <unordered_map>

using namespace squash;
using vea::FieldKind;
using vea::Format;
using vea::MInst;
using vea::Opcode;

static unsigned idx(FieldKind Kind) { return static_cast<unsigned>(Kind); }

namespace {
/// Per-stream value histogram collected over the corpus.
struct Histograms {
  std::array<std::unordered_map<uint32_t, uint64_t>, vea::NumFieldKinds> Freq;

  void addValue(FieldKind Kind, uint32_t Value) { ++Freq[idx(Kind)][Value]; }

  void addInst(const MInst &I) {
    const vea::FormatLayout &Layout = vea::formatLayout(vea::formatOf(I.Op));
    for (unsigned S = 0; S != Layout.Count; ++S)
      addValue(Layout.Slots[S].Kind, I.get(Layout.Slots[S].Kind));
  }
};
} // namespace

/// Applies one MTF step to \p State's list for stream \p Kind: returns the
/// recency index of \p Value and moves it to the front, or -1 if the value
/// is not in the dictionary (the caller surfaces this as an error).
static int64_t mtfStep(std::vector<uint32_t> &List, uint32_t Value) {
  for (size_t I = 0; I != List.size(); ++I) {
    if (List[I] == Value) {
      List.erase(List.begin() + static_cast<ptrdiff_t>(I));
      List.insert(List.begin(), Value);
      return static_cast<int64_t>(I);
    }
  }
  return -1;
}

StreamCodecs
StreamCodecs::build(const std::vector<std::vector<MInst>> &Corpus,
                    Options Opts) {
  StreamCodecs SC;
  SC.Opts = Opts;

  Histograms H;
  for (const auto &Region : Corpus) {
    std::array<uint32_t, vea::NumFieldKinds> Prev = {};
    for (const auto &I : Region) {
      const vea::FormatLayout &Layout =
          vea::formatLayout(vea::formatOf(I.Op));
      for (unsigned S = 0; S != Layout.Count; ++S) {
        FieldKind Kind = Layout.Slots[S].Kind;
        uint32_t V = I.get(Kind);
        if (Opts.DeltaDisplacements && isDeltaKind(Kind))
          V = deltaStep(Kind, V, Prev[idx(Kind)]);
        H.addValue(Kind, V);
      }
    }
    // One sentinel terminates each region.
    H.addValue(FieldKind::Opcode, static_cast<uint32_t>(Opcode::Sentinel));
  }

  if (Opts.MoveToFront) {
    // Initial dictionaries: distinct values, most frequent first (ties by
    // value). Then re-histogram the corpus as MTF indices.
    for (unsigned K = 0; K != vea::NumFieldKinds; ++K) {
      std::vector<std::pair<uint32_t, uint64_t>> Pairs(H.Freq[K].begin(),
                                                       H.Freq[K].end());
      std::sort(Pairs.begin(), Pairs.end(), [](const auto &A, const auto &B) {
        if (A.second != B.second)
          return A.second > B.second;
        return A.first < B.first;
      });
      for (const auto &P : Pairs)
        SC.MtfInit[K].push_back(P.first);
    }
    Histograms HIdx;
    auto State = SC.MtfInit;
    for (const auto &Region : Corpus) {
      State = SC.MtfInit; // MTF resets at region boundaries.
      std::array<uint32_t, vea::NumFieldKinds> Prev = {};
      for (const auto &I : Region) {
        const vea::FormatLayout &Layout =
            vea::formatLayout(vea::formatOf(I.Op));
        for (unsigned S = 0; S != Layout.Count; ++S) {
          FieldKind Kind = Layout.Slots[S].Kind;
          uint32_t V = I.get(Kind);
          if (Opts.DeltaDisplacements && isDeltaKind(Kind))
            V = deltaStep(Kind, V, Prev[idx(Kind)]);
          // The dictionary was built from this very corpus, so every value
          // is present.
          int64_t Idx = mtfStep(State[idx(Kind)], V);
          assert(Idx >= 0 && "corpus value missing from MTF dictionary");
          HIdx.addValue(Kind, static_cast<uint32_t>(Idx));
        }
      }
      int64_t SentIdx = mtfStep(State[idx(FieldKind::Opcode)],
                                static_cast<uint32_t>(Opcode::Sentinel));
      assert(SentIdx >= 0 && "sentinel missing from MTF dictionary");
      HIdx.addValue(FieldKind::Opcode, static_cast<uint32_t>(SentIdx));
    }
    H = std::move(HIdx);
  }

  for (unsigned K = 0; K != vea::NumFieldKinds; ++K) {
    std::vector<std::pair<uint32_t, uint64_t>> Pairs(H.Freq[K].begin(),
                                                     H.Freq[K].end());
    std::sort(Pairs.begin(), Pairs.end()); // Deterministic construction.
    SC.Codes[K] = CanonicalCode::build(Pairs);

    StreamStats St;
    St.Kind = static_cast<FieldKind>(K);
    for (const auto &P : Pairs) {
      St.Symbols += P.second;
      ++St.Distinct;
    }
    St.PayloadBits = SC.Codes[K].encodedBits(Pairs);
    unsigned Width = vea::fieldWidth(static_cast<FieldKind>(K));
    St.TableBits = SC.Codes[K].representationBits(Width);
    if (Opts.MoveToFront)
      St.TableBits += static_cast<uint64_t>(Width) * SC.MtfInit[K].size();
    SC.Stats.push_back(St);
  }
  return SC;
}

vea::Status StreamCodecs::encodeRegion(const std::vector<MInst> &Insts,
                                       vea::BitWriter &W) const {
  auto State = MtfInit; // Fresh recency lists for this region.
  std::array<uint32_t, vea::NumFieldKinds> Prev = {};
  auto EncodeValue = [&](FieldKind Kind, uint32_t Value) -> vea::Status {
    if (Opts.DeltaDisplacements && isDeltaKind(Kind))
      Value = deltaStep(Kind, Value, Prev[idx(Kind)]);
    if (Opts.MoveToFront) {
      int64_t Idx = mtfStep(State[idx(Kind)], Value);
      if (Idx < 0)
        return vea::Status::error(
            vea::StatusCode::EncodingError,
            std::string("mtf: value not in the ") + vea::fieldKindName(Kind) +
                " dictionary");
      Value = static_cast<uint32_t>(Idx);
    }
    if (!Codes[idx(Kind)].encode(Value, W))
      return vea::Status::error(
          vea::StatusCode::EncodingError,
          std::string("huffman: ") + vea::fieldKindName(Kind) +
              " symbol outside alphabet");
    return vea::Status::success();
  };
  for (const auto &I : Insts) {
    const vea::FormatLayout &Layout = vea::formatLayout(vea::formatOf(I.Op));
    for (unsigned S = 0; S != Layout.Count; ++S) {
      vea::Status St =
          EncodeValue(Layout.Slots[S].Kind, I.get(Layout.Slots[S].Kind));
      if (!St.ok())
        return St;
    }
  }
  return EncodeValue(FieldKind::Opcode,
                     static_cast<uint32_t>(Opcode::Sentinel));
}

vea::Status StreamCodecs::validate() const {
  for (unsigned K = 0; K != vea::NumFieldKinds; ++K) {
    if (!Codes[K].valid())
      return vea::Status::error(
          vea::StatusCode::MalformedImage,
          std::string("stream code for ") +
              vea::fieldKindName(static_cast<FieldKind>(K)) +
              " is truncated or inconsistent");
    // MTF decoding indexes the recency list with decoded symbols; a
    // dictionary shorter than the alphabet would make valid indices
    // unreachable, a longer one is impossible from build().
    if (Opts.MoveToFront && MtfInit[K].size() < Codes[K].numSymbols())
      return vea::Status::error(
          vea::StatusCode::MalformedImage,
          std::string("mtf dictionary for ") +
              vea::fieldKindName(static_cast<FieldKind>(K)) +
              " is shorter than its alphabet");
  }
  return vea::Status::success();
}

uint64_t StreamCodecs::tableBits() const {
  uint64_t Bits = 0;
  for (const auto &St : Stats)
    Bits += St.TableBits;
  return Bits;
}

void StreamCodecs::serializeTables(vea::BitWriter &W) const {
  for (unsigned K = 0; K != vea::NumFieldKinds; ++K) {
    unsigned Width = vea::fieldWidth(static_cast<FieldKind>(K));
    Codes[K].serialize(W, Width);
    if (Opts.MoveToFront)
      for (uint32_t V : MtfInit[K])
        W.writeBits(V, Width);
  }
}

//===----------------------------------------------------------------------===//
// RegionDecoder
//===----------------------------------------------------------------------===//

StreamCodecs::RegionDecoder::RegionDecoder(const StreamCodecs &Codecs,
                                           vea::BitReader Reader)
    : Codecs(Codecs), Reader(Reader) {
  if (Codecs.Opts.MoveToFront)
    Mtf = Codecs.MtfInit;
}

bool StreamCodecs::RegionDecoder::next(MInst &Inst) {
  if (Corrupt)
    return false;
  auto DecodeValue = [&](FieldKind Kind, uint32_t &Value) {
    uint32_t Sym = Codecs.Codes[idx(Kind)].decode(Reader);
    if (Sym == CanonicalCode::Invalid || Reader.overran()) {
      Corrupt = true;
      return false;
    }
    if (Codecs.Opts.MoveToFront) {
      auto &List = Mtf[idx(Kind)];
      if (Sym >= List.size()) {
        Corrupt = true;
        return false;
      }
      uint32_t V = List[Sym];
      List.erase(List.begin() + Sym);
      List.insert(List.begin(), V);
      Value = V;
    } else {
      Value = Sym;
    }
    if (Codecs.Opts.DeltaDisplacements && isDeltaKind(Kind))
      Value = undeltaStep(Kind, Value, DeltaPrev[idx(Kind)]);
    return true;
  };

  uint32_t Op;
  if (!DecodeValue(FieldKind::Opcode, Op))
    return false;
  if (Op == static_cast<uint32_t>(Opcode::Sentinel))
    return false; // Clean end of region.
  if (Op >= vea::NumOpcodes) {
    Corrupt = true;
    return false;
  }
  Inst = MInst(static_cast<Opcode>(Op));
  const vea::FormatLayout &Layout =
      vea::formatLayout(vea::formatOf(static_cast<Opcode>(Op)));
  for (unsigned S = 1; S != Layout.Count; ++S) {
    uint32_t Value;
    if (!DecodeValue(Layout.Slots[S].Kind, Value))
      return false;
    Inst.set(Layout.Slots[S].Kind, Value);
  }
  return true;
}
