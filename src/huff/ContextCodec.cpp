//===- huff/ContextCodec.cpp - Order-1 opcode-context coder ---------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "huff/ContextCodec.h"

#include <map>

using namespace vea;

namespace squash {

ContextCodec
ContextCodec::build(const std::vector<std::vector<MInst>> &Corpus) {
  ContextCodec C;
  C.Present = true;

  // Transition histogram: context (previous opcode; sentinel = region
  // start) -> next opcode, the terminator counting as a sentinel symbol.
  std::array<std::array<uint64_t, NumOpcodes>, NumOpcodes> Hist = {};
  std::array<std::map<uint32_t, uint64_t>, NumFieldKinds> FieldFreq;
  for (const auto &Insts : Corpus) {
    uint32_t Prev = 0;
    for (const MInst &I : Insts) {
      uint32_t Op = static_cast<uint32_t>(I.Op);
      ++Hist[Prev][Op];
      Prev = Op;
      const FormatLayout &L = formatLayout(formatOf(I.Op));
      for (unsigned S = 1; S != L.Count; ++S) {
        FieldKind K = L.Slots[S].Kind;
        ++FieldFreq[static_cast<unsigned>(K)][I.get(K)];
      }
    }
    ++Hist[Prev][0]; // Terminator.
  }

  // Contexts with enough evidence get their own table; the rest share the
  // merged fallback (table 0). Opcode order keeps the split deterministic.
  std::array<uint64_t, NumOpcodes> Fallback = {};
  std::vector<uint32_t> Dedicated;
  for (uint32_t Ctx = 0; Ctx != NumOpcodes; ++Ctx) {
    uint64_t Total = 0;
    for (uint32_t Op = 0; Op != NumOpcodes; ++Op)
      Total += Hist[Ctx][Op];
    if (Total >= MinContextCount) {
      Dedicated.push_back(Ctx);
    } else {
      for (uint32_t Op = 0; Op != NumOpcodes; ++Op)
        Fallback[Op] += Hist[Ctx][Op];
    }
  }

  auto BuildTable = [](const std::array<uint64_t, NumOpcodes> &Freqs) {
    std::vector<std::pair<uint32_t, uint64_t>> Pairs;
    for (uint32_t Op = 0; Op != NumOpcodes; ++Op)
      if (Freqs[Op])
        Pairs.emplace_back(Op, Freqs[Op]);
    return CanonicalCode::build(std::move(Pairs));
  };

  C.OpTables.clear();
  C.OpTables.push_back(BuildTable(Fallback));
  C.TableOf.fill(0);
  for (uint32_t Ctx : Dedicated) {
    C.TableOf[Ctx] = static_cast<uint8_t>(C.OpTables.size());
    C.OpTables.push_back(BuildTable(Hist[Ctx]));
  }

  for (unsigned K = 1; K != NumFieldKinds; ++K) {
    std::vector<std::pair<uint32_t, uint64_t>> Pairs(FieldFreq[K].begin(),
                                                     FieldFreq[K].end());
    C.FieldCodes[K] = CanonicalCode::build(std::move(Pairs));
  }

  BitWriter Scratch;
  C.serializeTables(Scratch);
  C.TableBitsCache = Scratch.bitSize();
  return C;
}

Status ContextCodec::measureRegion(const std::vector<MInst> &Insts,
                                   uint64_t &Bits, DecodeWork &Work) const {
  BitWriter Scratch;
  if (Status St = encodeRegion(Insts, Scratch); !St.ok())
    return St;
  Bits = Scratch.bitSize();
  Work = DecodeWork();
  Work.Instructions = Insts.size();
  return Status::success();
}

Status ContextCodec::encodeRegion(const std::vector<MInst> &Insts,
                                  BitWriter &W) const {
  if (!Present)
    return Status::error(vea::StatusCode::InternalError,
                         "context codec was never built");
  auto Fail = [](const char *What) {
    return Status::error(vea::StatusCode::EncodingError,
                         std::string("context: ") + What +
                             " outside the corpus alphabet");
  };
  uint32_t Ctx = 0;
  for (const MInst &I : Insts) {
    uint32_t Op = static_cast<uint32_t>(I.Op);
    if (Op == 0 || Op >= NumOpcodes)
      return Fail("opcode");
    if (!OpTables[TableOf[Ctx]].encode(Op, W))
      return Fail("opcode");
    Ctx = Op;
    const FormatLayout &L = formatLayout(formatOf(I.Op));
    for (unsigned S = 1; S != L.Count; ++S) {
      FieldKind K = L.Slots[S].Kind;
      if (!FieldCodes[static_cast<unsigned>(K)].encode(I.get(K), W))
        return Fail(fieldKindName(K));
    }
  }
  if (!OpTables[TableOf[Ctx]].encode(0, W)) // Terminator.
    return Fail("terminator");
  return Status::success();
}

bool ContextCodec::Decoder::next(MInst &Inst) {
  if (Corrupt || Done)
    return false;
  uint32_t Op = Codec.OpTables[Codec.TableOf[Context]].decode(Reader);
  if (Op == CanonicalCode::Invalid || Reader.overran() || Op >= NumOpcodes) {
    Corrupt = true;
    return false;
  }
  if (Op == 0) {
    Done = true;
    return false;
  }
  Inst = MInst(static_cast<Opcode>(Op));
  const FormatLayout &L = formatLayout(formatOf(Inst.Op));
  for (unsigned S = 1; S != L.Count; ++S) {
    FieldKind K = L.Slots[S].Kind;
    uint32_t V = Codec.FieldCodes[static_cast<unsigned>(K)].decode(Reader);
    if (V == CanonicalCode::Invalid || Reader.overran() ||
        V > fieldMask(K)) {
      Corrupt = true;
      return false;
    }
    Inst.set(K, V);
  }
  Context = Op;
  ++Work.Instructions;
  return true;
}

std::unique_ptr<RegionCursor>
ContextCodec::makeDecoder(const uint8_t *Blob, size_t BlobBytes,
                          size_t StartBit) const {
  BitReader Reader(Blob, BlobBytes);
  Reader.seekBit(StartBit);
  return std::make_unique<Decoder>(*this, std::move(Reader));
}

void ContextCodec::serializeTables(BitWriter &W) const {
  W.writeBits(static_cast<uint32_t>(OpTables.size()), 8);
  for (unsigned Ctx = 0; Ctx != NumOpcodes; ++Ctx)
    W.writeBits(TableOf[Ctx], 8);
  const unsigned OpBits = fieldWidth(FieldKind::Opcode);
  for (const CanonicalCode &T : OpTables)
    T.serialize(W, OpBits);
  for (unsigned K = 1; K != NumFieldKinds; ++K)
    FieldCodes[K].serialize(W, fieldWidth(static_cast<FieldKind>(K)));
}

Status ContextCodec::validate() const {
  auto Bad = [](const char *What) {
    return Status::error(vea::StatusCode::MalformedImage,
                         std::string("context codec: ") + What);
  };
  if (!Present)
    return Bad("tables missing");
  if (OpTables.empty() || OpTables.size() > NumOpcodes + 1)
    return Bad("table count out of range");
  for (unsigned Ctx = 0; Ctx != NumOpcodes; ++Ctx)
    if (TableOf[Ctx] >= OpTables.size())
      return Bad("context maps to a missing table");
  for (const CanonicalCode &T : OpTables) {
    if (!T.valid())
      return Bad("opcode table is invalid");
    for (uint32_t V : T.values())
      if (V >= NumOpcodes)
        return Bad("opcode table value out of range");
  }
  for (unsigned K = 1; K != NumFieldKinds; ++K) {
    if (!FieldCodes[K].valid())
      return Bad("field code is invalid");
    for (uint32_t V : FieldCodes[K].values())
      if (V > fieldMask(static_cast<FieldKind>(K)))
        return Bad("field value exceeds its field width");
  }
  return Status::success();
}

} // namespace squash
