//===- huff/Codec.cpp - Pluggable region codec interface ------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "huff/Codec.h"

namespace squash {

const char *codecKindName(CodecKind Kind) {
  switch (Kind) {
  case CodecKind::Huffman:
    return "huffman";
  case CodecKind::Pattern:
    return "pattern";
  case CodecKind::Context:
    return "context";
  }
  return "unknown";
}

bool codecKindByName(const std::string &Name, CodecKind &Out) {
  for (unsigned K = 0; K != NumCodecKinds; ++K) {
    CodecKind Kind = static_cast<CodecKind>(K);
    if (Name == codecKindName(Kind)) {
      Out = Kind;
      return true;
    }
  }
  return false;
}

namespace {

/// RegionCursor over the bit-serial splitting-streams decoder.
class HuffmanCursor final : public RegionCursor {
public:
  HuffmanCursor(const StreamCodecs &Codecs, vea::BitReader Reader)
      : Dec(Codecs, std::move(Reader)) {}

  bool next(vea::MInst &Inst) override {
    if (!Dec.next(Inst))
      return false;
    ++Work.Instructions;
    return true;
  }
  bool ok() const override { return Dec.ok(); }
  size_t bitPosition() const override { return Dec.bitPosition(); }
  const DecodeWork &work() const override { return Work; }

private:
  StreamCodecs::RegionDecoder Dec;
  DecodeWork Work;
};

} // namespace

std::unique_ptr<RegionCursor>
HuffmanCodecView::makeDecoder(const uint8_t *Blob, size_t BlobBytes,
                              size_t StartBit) const {
  vea::BitReader Reader(Blob, BlobBytes);
  Reader.seekBit(StartBit);
  return std::make_unique<HuffmanCursor>(Codecs, std::move(Reader));
}

} // namespace squash
