//===- huff/PatternCodec.h - n-gram pattern-table coder --------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pattern-table region coder in the style of access-pattern-based code
/// compression: frequent instruction n-grams mined from the corpus become
/// dictionary entries addressed by short Huffman-coded indices, and an
/// escape symbol falls back to field-split order-0 Huffman for everything
/// else. A region is a selector stream
///
///   { pattern-index | ESCAPE <field codewords> }* END
///
/// where the selector alphabet (indices, ESCAPE, END) carries one canonical
/// Huffman code built from the greedy-parse frequencies of the corpus.
/// Decode of a pattern hit replays pre-decoded instructions from the host
/// table, which is why the cost model charges covered instructions less
/// than entropy-decoded ones (Options::CostModel).
///
/// All side tables — the pattern dictionary, the selector code, and the
/// escape field codes — are serialized into the blob and counted against
/// the compressed footprint, exactly like the paper's stream tables.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_HUFF_PATTERNCODEC_H
#define SQUASH_HUFF_PATTERNCODEC_H

#include "huff/Codec.h"

#include <array>
#include <cstdint>
#include <vector>

namespace squash {

class PatternCodec final : public Codec {
public:
  /// Dictionary bounds: entries are MinLen..MaxLen instructions, at most
  /// MaxPatterns of them (an 8-bit serialized count and a small, cheap
  /// longest-match scan).
  static constexpr unsigned MaxPatterns = 64;
  static constexpr unsigned MinLen = 2;
  static constexpr unsigned MaxLen = 8;

  PatternCodec() = default;

  /// Mines the dictionary and builds all codes from the corpus (one
  /// instruction sequence per region). Deterministic: candidate ranking,
  /// greedy parsing, and every code construction break ties by value.
  static PatternCodec build(const std::vector<std::vector<vea::MInst>> &Corpus);

  /// False for a default-constructed codec (no corpus); such a codec
  /// refuses to encode and fails validate().
  bool present() const { return Present; }
  size_t numPatterns() const { return Patterns.size(); }
  const std::vector<vea::MInst> &pattern(size_t I) const {
    return Patterns[I];
  }

  CodecKind kind() const override { return CodecKind::Pattern; }
  [[nodiscard]] vea::Status
  encodeRegion(const std::vector<vea::MInst> &Insts,
               vea::BitWriter &W) const override;
  std::unique_ptr<RegionCursor> makeDecoder(const uint8_t *Blob,
                                            size_t BlobBytes,
                                            size_t StartBit) const override;
  uint64_t tableBits() const override { return TableBitsCache; }
  void serializeTables(vea::BitWriter &W) const override;
  [[nodiscard]] vea::Status validate() const override;

  /// Trial encode for codec selection: exact payload bits and the decode
  /// work the region would cost, without keeping the bits.
  [[nodiscard]] vea::Status measureRegion(const std::vector<vea::MInst> &Insts,
                                          uint64_t &Bits,
                                          DecodeWork &Work) const;

  /// Fault-injection hook (FaultKind::CodecTableCorrupt): mutable access
  /// to the selector code so a sweep can model a truncated stored table.
  CanonicalCode &selectorCodeForFault() { return Selector; }

  class Decoder final : public RegionCursor {
  public:
    Decoder(const PatternCodec &Codec, vea::BitReader Reader)
        : Codec(Codec), Reader(std::move(Reader)) {}

    bool next(vea::MInst &Inst) override;
    bool ok() const override { return !Corrupt; }
    size_t bitPosition() const override { return Reader.bitPosition(); }
    const DecodeWork &work() const override { return Work; }

  private:
    const PatternCodec &Codec;
    vea::BitReader Reader;
    DecodeWork Work;
    bool Corrupt = false;
    bool Done = false;
    const std::vector<vea::MInst> *Replay = nullptr; ///< Pattern in flight.
    size_t ReplayIx = 0;
  };

private:
  /// Selector symbols above the pattern indices.
  uint32_t escapeSymbol() const {
    return static_cast<uint32_t>(Patterns.size());
  }
  uint32_t endSymbol() const {
    return static_cast<uint32_t>(Patterns.size()) + 1;
  }

  /// Longest dictionary entry matching \p Words at \p At, or -1. Patterns
  /// are kept sorted longest-first, so the first hit wins.
  int matchAt(const std::vector<uint32_t> &Words, size_t At) const;

  /// Shared encode core: greedy-parses and emits \p Insts into \p W,
  /// accumulating \p Work.
  [[nodiscard]] vea::Status encodeCore(const std::vector<vea::MInst> &Insts,
                                       vea::BitWriter &W,
                                       DecodeWork &Work) const;

  /// Decodes one escaped instruction; returns false (setting nothing) on a
  /// corrupt stream.
  bool decodeEscape(vea::BitReader &Reader, vea::MInst &Inst) const;

  bool Present = false;
  /// Dictionary entries, longest first (ties by encoded words ascending).
  std::vector<std::vector<vea::MInst>> Patterns;
  /// The same entries as encoded instruction words, for matching.
  std::vector<std::vector<uint32_t>> PatternWords;
  /// Selector code over {0..P-1, ESCAPE=P, END=P+1}.
  CanonicalCode Selector;
  /// Escape field codes, one per stream (order-0, no MTF/delta).
  std::array<CanonicalCode, vea::NumFieldKinds> Esc;
  uint64_t TableBitsCache = 0;
};

} // namespace squash

#endif // SQUASH_HUFF_PATTERNCODEC_H
