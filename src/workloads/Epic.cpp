//===- workloads/Epic.cpp - Pyramid image coder workload ------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Mirrors MediaBench `epic`: a Haar-style pyramid transform, quantization,
// and run-length entropy stage over an image. The profiling input only
// compresses; the timing input also reconstructs (exercising the inverse
// pipeline, cold under the profile).
//
//===----------------------------------------------------------------------===//

#include "workloads/Lib.h"
#include "workloads/Workloads.h"

using namespace vea;
using namespace vea::workloads;

static const uint32_t EpicMagic = 0xE61C0001u;

static void addEpicCore(ProgramBuilder &PB) {
  addTickFunction(PB, "epic");
  // epic_fwd(src=r16, n=r17, dst=r18): one 1-D Haar level; n even.
  // dst[0..n/2) = averages, dst[n/2..n) = differences (mod 256).
  {
    FunctionBuilder F = PB.beginFunction("epic_fwd");
    F.srli(1, 17, 1); // half
    F.beq(1, "done");
    F.mov(2, 16);     // src cursor
    F.mov(3, 18);     // avg cursor
    F.add(4, 18, 1);  // diff cursor = dst + half
    F.mov(5, 1);
    F.label("loop");
    F.ldb(6, 2, 0);
    F.ldb(7, 2, 1);
    F.add(8, 6, 7);
    F.srli(8, 8, 1);
    F.stb(8, 3, 0);
    F.sub(8, 6, 7);
    F.stb(8, 4, 0);
    F.addi(2, 2, 2);
    F.addi(3, 3, 1);
    F.addi(4, 4, 1);
    F.subi(5, 5, 1);
    F.bne(5, "loop");
    F.label("done");
    F.ret();
  }

  // epic_inv(src=r16, n=r17, dst=r18): approximate inverse of epic_fwd.
  {
    FunctionBuilder F = PB.beginFunction("epic_inv");
    F.srli(1, 17, 1);
    F.beq(1, "done");
    F.mov(3, 16);    // avg cursor
    F.add(4, 16, 1); // diff cursor
    F.mov(2, 18);
    F.mov(5, 1);
    F.label("loop");
    F.ldb(6, 3, 0); // avg
    F.ldb(7, 4, 0); // diff (mod 256)
    F.slli(8, 7, 24); // sign-extend the difference byte
    F.srai(8, 8, 24);
    F.addi(7, 8, 1);
    F.srai(7, 7, 1);
    F.add(7, 6, 7); // a = avg + (diff + 1) / 2
    F.stb(7, 2, 0);
    F.sub(7, 7, 8); // b = a - diff
    F.stb(7, 2, 1);
    F.addi(2, 2, 2);
    F.addi(3, 3, 1);
    F.addi(4, 4, 1);
    F.subi(5, 5, 1);
    F.bne(5, "loop");
    F.label("done");
    F.ret();
  }

  // epic_quant(buf=r16, n=r17, shift=r18): dead-zone quantizer on the
  // difference plane. Values close to zero snap to zero (making runs for
  // the RLE stage); others are right-shifted.
  {
    FunctionBuilder F = PB.beginFunction("epic_quant");
    F.beq(17, "done");
    F.label("loop");
    F.ldb(1, 16, 0);
    F.slli(2, 1, 24);
    F.srai(2, 2, 24);
    // |v| <= 2: dead zone.
    F.mov(3, 2);
    F.bge(3, "abs_ok");
    F.sub(3, 31, 3);
    F.label("abs_ok");
    F.cmplei(4, 3, 2);
    F.beq(4, "keep");
    F.li(1, 0);
    F.br("store");
    F.label("keep");
    F.sra(1, 2, 18);
    F.andi(1, 1, 0xFF);
    F.label("store");
    F.stb(1, 16, 0);
    F.addi(16, 16, 1);
    F.subi(17, 17, 1);
    F.bne(17, "loop");
    F.label("done");
    F.ret();
  }

  // epic_rle(src=r16, n=r17, dst=r18) -> r0 = encoded bytes.
  // Encoding: (value, runlen) byte pairs, runs capped at 255.
  {
    FunctionBuilder F = PB.beginFunction("epic_rle");
    F.mov(23, 18);
    F.beq(17, "done");
    F.label("outer");
    F.andi(4, 17, 255);
    F.bne(4, "tickskip");
    emitTickCall(F, "epic");
    F.label("tickskip");
    F.ldb(1, 16, 0); // run value
    F.li(2, 0);      // run length
    F.label("run");
    F.ldb(3, 16, 0);
    F.cmpeq(4, 3, 1);
    F.beq(4, "flush");
    F.cmpulti(4, 2, 255);
    F.beq(4, "flush");
    F.addi(2, 2, 1);
    F.addi(16, 16, 1);
    F.subi(17, 17, 1);
    F.bne(17, "run");
    F.label("flush");
    F.stb(1, 18, 0);
    F.stb(2, 18, 1);
    F.addi(18, 18, 2);
    F.bne(17, "outer");
    F.label("done");
    F.sub(0, 18, 23);
    F.ret();
  }

  // epic_unrle(src=r16, len=r17, dst=r18) -> r0 = decoded bytes.
  {
    FunctionBuilder F = PB.beginFunction("epic_unrle");
    F.mov(23, 18);
    F.cmpulei(1, 17, 1);
    F.bne(1, "done");
    F.label("outer");
    F.ldb(1, 16, 0); // value
    F.ldb(2, 16, 1); // run length
    F.addi(16, 16, 2);
    F.beq(2, "next");
    F.label("run");
    F.stb(1, 18, 0);
    F.addi(18, 18, 1);
    F.subi(2, 2, 1);
    F.bne(2, "run");
    F.label("next");
    F.subi(17, 17, 2);
    F.cmpulei(1, 17, 1);
    F.beq(1, "outer");
    F.label("done");
    F.sub(0, 18, 23);
    F.ret();
  }
}

Workload vea::workloads::buildEpic(double Scale) {
  ProgramBuilder PB("epic");
  addRuntimeLibrary(PB);
  addEpicCore(PB);
  addFilterFarm(PB, "epic", 80, 0xE61C);
  PB.addBss("inbuf", 131072);
  PB.addBss("workbuf", 131072);
  PB.addBss("outbuf", 262144);

  {
    FunctionBuilder F = PB.beginFunction("main");
    emitReadFrame(F, EpicMagic, "inbuf", 131072);
    F.cmpulti(2, 10, 3);
    F.beq(2, "badmode");
    emitCalibration(F, "epic", 80, 26, "inbuf");
    F.mov(1, 10);
    F.switchJump(1, 2, "modes", {"m_compress", "m_roundtrip", "m_lossless"});

    // Shared compression pipeline: two transform levels, quantize the
    // difference planes, then RLE. Result length in r13, data in outbuf.
    F.label("m_compress");
    F.li(14, 0); // roundtrip flag
    F.br("pipeline");
    F.label("m_roundtrip");
    F.li(14, 1);
    F.br("pipeline");

    F.label("pipeline");
    // Level 1: inbuf -> workbuf.
    F.la(16, "inbuf");
    F.mov(17, 11);
    F.la(18, "workbuf");
    F.call("epic_fwd");
    // Level 2 on the average plane: workbuf[0..n/2) -> inbuf (reused).
    F.la(16, "workbuf");
    F.srli(17, 11, 1);
    F.la(18, "inbuf");
    F.call("epic_fwd");
    // Quantize both difference planes.
    F.la(16, "workbuf");
    F.srli(1, 11, 1);
    F.add(16, 16, 1);
    F.mov(17, 1);
    F.li(18, 1);
    F.call("epic_quant");
    F.la(16, "inbuf");
    F.srli(1, 11, 2);
    F.add(16, 16, 1);
    F.mov(17, 1);
    F.li(18, 2);
    F.call("epic_quant");
    // RLE the level-2 plane (averages + quantized diffs).
    F.la(16, "inbuf");
    F.srli(17, 11, 1);
    F.la(18, "outbuf");
    F.call("epic_rle");
    F.mov(13, 0);
    F.beq(14, "emit");

    // Timing-only reconstruction: un-RLE and invert one level, then pass
    // the result through a farm filter.
    F.la(16, "outbuf");
    F.mov(17, 13);
    F.la(18, "workbuf");
    F.call("epic_unrle");
    F.mov(12, 0);
    F.la(16, "workbuf");
    F.mov(17, 12);
    F.la(18, "inbuf");
    F.call("epic_inv");
    F.andi(16, 11, 3);
    F.addi(16, 16, 50);
    F.la(17, "inbuf");
    F.li(18, 2048);
    F.call("epic_apply");

    F.label("emit");
    F.la(16, "workbuf");
    F.la(17, "outbuf");
    F.mov(18, 13);
    F.call("memcpy");
    F.mov(11, 13);
    F.br("finish");

    // Never exercised: lossless archival mode.
    F.label("m_lossless");
    F.la(16, "inbuf");
    F.mov(17, 11);
    F.la(18, "outbuf");
    F.call("epic_rle");
    F.mov(11, 0);
    F.la(16, "workbuf");
    F.la(17, "outbuf");
    F.mov(18, 11);
    F.call("memcpy");
    F.br("finish");

    F.label("badmode");
    F.li(16, 23);
    F.call("panic");
    F.halt();

    F.label("finish");
    emitChecksumAndHalt(F, "workbuf");
  }
  PB.setEntry("main");

  Workload W;
  W.Name = "epic";
  W.Prog = PB.build();
  W.ProfilingInput = frameInput(
      EpicMagic, 0,
      makeImagePayload(256, static_cast<unsigned>(400 * Scale) + 8,
                       0xBAB001));
  W.TimingInput = frameInput(
      EpicMagic, 1,
      makeImagePayload(256, static_cast<unsigned>(480 * Scale) + 8,
                       0x1E4A001));
  W.ProfilingInputName = "baboon.tif (synthetic, compress)";
  W.TimingInputName = "lena.tif (synthetic, compress+reconstruct)";
  return W;
}
