//===- workloads/Pgp.cpp - Block cipher + armor workload ------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Mirrors MediaBench `pgp`: a 32-round XTEA-style block cipher with key
// schedule, integrity check, and radix-64 armoring. Error recovery uses
// setjmp/longjmp, exercising the paper's rule that functions calling
// setjmp are never compressed (Section 2.2). The timing input runs the
// corruption-detection mode, so the longjmp recovery path actually
// executes under timing.
//
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Lib.h"
#include "workloads/Workloads.h"

using namespace vea;
using namespace vea::workloads;

static const uint32_t PgpMagic = 0x06106001u;
static const unsigned Rounds = 32;

static void addPgpCore(ProgramBuilder &PB) {
  addTickFunction(PB, "pgp");
  PB.addBss("pgp_subkeys", Rounds * 2 * 4);
  PB.addBss("pgp_jmpbuf", 33 * 4);
  PB.addDataWords("pgp_key", {0x2B7E1516, 0x28AED2A6, 0xABF71588,
                              0x09CF4F3C});

  // pgp_keysched(): derive 64 round subkeys from pgp_key (XTEA schedule).
  {
    FunctionBuilder F = PB.beginFunction("pgp_keysched");
    F.la(1, "pgp_key");
    F.la(2, "pgp_subkeys");
    F.li(3, 0);          // sum
    F.li(4, 0x9E3779B9); // delta
    F.li(5, Rounds);
    F.label("round");
    // k0 = key[sum & 3]
    F.andi(6, 3, 3);
    F.slli(6, 6, 2);
    F.add(6, 1, 6);
    F.ldw(6, 6, 0);
    F.add(6, 6, 3);
    F.stw(6, 2, 0);
    F.add(3, 3, 4); // sum += delta
    // k1 = key[(sum >> 11) & 3]
    F.srli(6, 3, 11);
    F.andi(6, 6, 3);
    F.slli(6, 6, 2);
    F.add(6, 1, 6);
    F.ldw(6, 6, 0);
    F.add(6, 6, 3);
    F.stw(6, 2, 4);
    F.addi(2, 2, 8);
    F.subi(5, 5, 1);
    F.bne(5, "round");
    F.ret();
  }

  // One XTEA half-round: v0 += (((v1<<4) ^ (v1>>5)) + v1) ^ k.
  // v0 = rN0, v1 = rN1, k = rK; clobbers r6, r7.
  auto HalfRound = [](FunctionBuilder &F, unsigned V0, unsigned V1,
                      unsigned K) {
    F.slli(6, V1, 4);
    F.srli(7, V1, 5);
    F.xor_(6, 6, 7);
    F.add(6, 6, V1);
    F.xor_(6, 6, K);
    F.add(V0, V0, 6);
  };

  // pgp_encrypt(buf=r16, nblocks=r17): in-place, 8 bytes per block.
  {
    FunctionBuilder F = PB.beginFunction("pgp_encrypt");
    F.beq(17, "done");
    F.label("blk");
    F.andi(6, 17, 63);
    F.bne(6, "tickskip");
    emitTickCall(F, "pgp");
    F.label("tickskip");
    F.ldw(1, 16, 0); // v0
    F.ldw(2, 16, 4); // v1
    F.la(3, "pgp_subkeys");
    F.li(4, Rounds);
    F.label("round");
    F.ldw(5, 3, 0);
    HalfRound(F, 1, 2, 5);
    F.ldw(5, 3, 4);
    HalfRound(F, 2, 1, 5);
    F.addi(3, 3, 8);
    F.subi(4, 4, 1);
    F.bne(4, "round");
    F.stw(1, 16, 0);
    F.stw(2, 16, 4);
    F.addi(16, 16, 8);
    F.subi(17, 17, 1);
    F.bne(17, "blk");
    F.label("done");
    F.ret();
  }

  // pgp_decrypt(buf=r16, nblocks=r17): inverse, applying subkeys in
  // reverse with subtraction.
  {
    FunctionBuilder F = PB.beginFunction("pgp_decrypt");
    F.beq(17, "done");
    F.label("blk");
    F.andi(6, 17, 63);
    F.bne(6, "tickskip");
    emitTickCall(F, "pgp");
    F.label("tickskip");
    F.ldw(1, 16, 0);
    F.ldw(2, 16, 4);
    F.la(3, "pgp_subkeys");
    F.addi(3, 3, (Rounds - 1) * 8);
    F.li(4, Rounds);
    F.label("round");
    F.ldw(5, 3, 4);
    // v1 -= (((v0<<4) ^ (v0>>5)) + v0) ^ k1
    F.slli(6, 1, 4);
    F.srli(7, 1, 5);
    F.xor_(6, 6, 7);
    F.add(6, 6, 1);
    F.xor_(6, 6, 5);
    F.sub(2, 2, 6);
    F.ldw(5, 3, 0);
    F.slli(6, 2, 4);
    F.srli(7, 2, 5);
    F.xor_(6, 6, 7);
    F.add(6, 6, 2);
    F.xor_(6, 6, 5);
    F.sub(1, 1, 6);
    F.subi(3, 3, 8);
    F.subi(4, 4, 1);
    F.bne(4, "round");
    F.stw(1, 16, 0);
    F.stw(2, 16, 4);
    F.addi(16, 16, 8);
    F.subi(17, 17, 1);
    F.bne(17, "blk");
    F.label("done");
    F.ret();
  }

  // pgp_armor(src=r16, n=r17, dst=r18) -> r0 = armored length: expands
  // every 3 bytes into 4 radix-64 characters.
  {
    PB.addData("pgp_radix64",
               []() {
                 std::string A = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                                 "abcdefghijklmnopqrstuvwxyz0123456789+/";
                 return std::vector<uint8_t>(A.begin(), A.end());
               }());
    FunctionBuilder F = PB.beginFunction("pgp_armor");
    F.mov(23, 18);
    F.la(22, "pgp_radix64");
    F.label("grp");
    F.cmpulti(1, 17, 3);
    F.bne(1, "done"); // partial tail groups are dropped
    F.ldb(1, 16, 0);
    F.ldb(2, 16, 1);
    F.ldb(3, 16, 2);
    F.slli(1, 1, 16);
    F.slli(2, 2, 8);
    F.or_(1, 1, 2);
    F.or_(1, 1, 3);
    F.li(4, 18); // shift
    F.label("emit");
    F.srl(5, 1, 4);
    F.andi(5, 5, 63);
    F.add(5, 22, 5);
    F.ldb(5, 5, 0);
    F.stb(5, 18, 0);
    F.addi(18, 18, 1);
    F.subi(4, 4, 6);
    F.bge(4, "emit");
    F.addi(16, 16, 3);
    F.subi(17, 17, 3);
    F.br("grp");
    F.label("done");
    F.sub(0, 18, 23);
    F.ret();
  }

  // pgp_verify(a=r16, b=r17, n=r18) -> r0 = 1 if equal.
  {
    FunctionBuilder F = PB.beginFunction("pgp_verify");
    F.li(0, 1);
    F.beq(18, "done");
    F.label("loop");
    F.ldb(1, 16, 0);
    F.ldb(2, 17, 0);
    F.cmpeq(3, 1, 2);
    F.beq(3, "fail");
    F.addi(16, 16, 1);
    F.addi(17, 17, 1);
    F.subi(18, 18, 1);
    F.bne(18, "loop");
    F.label("done");
    F.ret();
    F.label("fail");
    F.li(0, 0);
    F.ret();
  }
}

Workload vea::workloads::buildPgp(double Scale) {
  ProgramBuilder PB("pgp");
  addRuntimeLibrary(PB);
  addPgpCore(PB);
  addFilterFarm(PB, "pgp", 130, 0x610);
  PB.addBss("inbuf", 131072);
  PB.addBss("workbuf", 262144);
  PB.addBss("armorbuf", 262144);

  {
    FunctionBuilder F = PB.beginFunction("main");
    emitReadFrame(F, PgpMagic, "inbuf", 131072);
    F.cmpulti(2, 10, 3);
    F.beq(2, "badmode");
    emitCalibration(F, "pgp", 130, 42, "inbuf");
    F.call("pgp_keysched");

    // Error recovery point: corrupted archives longjmp back here.
    F.la(16, "pgp_jmpbuf");
    F.sys(SysFunc::Setjmp);
    F.bne(0, "recover");

    // Keep a pristine copy for verification, then encrypt in place.
    F.la(16, "workbuf");
    F.la(17, "inbuf");
    F.mov(18, 11);
    F.call("memcpy");
    F.srli(12, 11, 3); // whole 8-byte blocks
    F.la(16, "inbuf");
    F.mov(17, 12);
    F.call("pgp_encrypt");

    // Mode 0 stops at armoring (the profiling path).
    F.beq(10, "armor");

    // Mode 2 corrupts the ciphertext first (timing path; detection below
    // raises the longjmp).
    F.cmpeqi(2, 10, 2);
    F.beq(2, "decrypt");
    F.la(1, "inbuf");
    F.ldb(2, 1, 16);
    F.xori(2, 2, 0xFF);
    F.stb(2, 1, 16);

    F.label("decrypt"); // Cold under the profiling input.
    F.la(16, "inbuf");
    F.mov(17, 12);
    F.call("pgp_decrypt");
    F.la(16, "inbuf");
    F.la(17, "workbuf");
    F.slli(18, 12, 3);
    F.call("pgp_verify");
    F.bne(0, "verified");
    // Integrity failure: raise the recovery path.
    F.la(16, "pgp_jmpbuf");
    F.li(17, 9);
    F.sys(SysFunc::Longjmp);
    F.label("verified");
    // Re-encrypt so every mode armors ciphertext.
    F.la(16, "inbuf");
    F.mov(17, 12);
    F.call("pgp_encrypt");

    F.label("armor");
    F.la(16, "inbuf");
    F.slli(17, 12, 3);
    F.la(18, "armorbuf");
    F.call("pgp_armor");
    F.mov(11, 0);
    F.la(16, "workbuf");
    F.la(17, "armorbuf");
    F.mov(18, 11);
    F.call("memcpy");
    F.br("finish");

    // Longjmp landing: report and checksum whatever survives. Cold, and
    // only ever reached in mode 2.
    F.label("recover");
    F.mov(16, 0);
    F.sys(SysFunc::PutInt);
    F.andi(16, 11, 7);
    F.addi(16, 16, 90);
    F.la(17, "inbuf");
    F.li(18, 2048);
    F.call("pgp_apply");
    F.la(16, "workbuf");
    F.la(17, "inbuf");
    F.mov(18, 11);
    F.call("memcpy");
    F.br("finish");

    F.label("badmode");
    F.li(16, 27);
    F.call("panic");
    F.halt();

    F.label("finish");
    emitChecksumAndHalt(F, "workbuf");
  }
  PB.setEntry("main");

  Workload W;
  W.Name = "pgp";
  W.Prog = PB.build();
  W.ProfilingInput = frameInput(
      PgpMagic, 0,
      makeTextPayload(static_cast<size_t>(48000 * Scale) + 64, 0x610F1));
  W.TimingInput = frameInput(
      PgpMagic, 2,
      makeTextPayload(static_cast<size_t>(64000 * Scale) + 64, 0x610F2));
  W.ProfilingInputName = "compression.ps (synthetic, encrypt+armor)";
  W.TimingInputName = "TI-320-manual.ps (synthetic, corrupt-detect path)";
  return W;
}
