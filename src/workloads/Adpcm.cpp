//===- workloads/Adpcm.cpp - IMA ADPCM speech codec workload --------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Mirrors MediaBench `adpcm`: IMA ADPCM encode/decode of 16-bit PCM.
// The profiling input encodes only; the timing input runs the full
// encode + decode + post-filter pipeline, so the decoder (cold in the
// profile) is decompressed at run time.
//
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Lib.h"
#include "workloads/Workloads.h"

using namespace vea;
using namespace vea::workloads;

static const uint32_t AdpcmMagic = 0xAD9C0001u;

static std::vector<uint32_t> stepTable() {
  return {7,     8,     9,     10,    11,    12,    13,    14,    16,
          17,    19,    21,    23,    25,    28,    31,    34,    37,
          41,    45,    50,    55,    60,    66,    73,    80,    88,
          97,    107,   118,   130,   143,   157,   173,   190,   209,
          230,   253,   279,   307,   337,   371,   408,   449,   494,
          544,   598,   658,   724,   796,   876,   963,   1060,  1166,
          1282,  1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,
          3024,  3327,  3660,  4026,  4428,  4871,  5358,  5894,  6484,
          7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899, 15289,
          16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};
}

/// Emits the common "reconstruct difference and update predictor/step"
/// tail shared by the encoder and decoder. Expects: code in r5, step in
/// r4; predictor in r19, step index in r20; clobbers r6, r7, r8.
/// Block labels are prefixed with \p P to stay unique per caller.
static void emitPredictorUpdate(FunctionBuilder &F, const std::string &P) {
  // diff = step>>3 (+step if bit2) (+step>>1 if bit1) (+step>>2 if bit0)
  F.srli(6, 4, 3);
  F.andi(7, 5, 4);
  F.beq(7, P + "_nb2");
  F.add(6, 6, 4);
  F.label(P + "_nb2");
  F.andi(7, 5, 2);
  F.beq(7, P + "_nb1");
  F.srli(7, 4, 1);
  F.add(6, 6, 7);
  F.label(P + "_nb1");
  F.andi(7, 5, 1);
  F.beq(7, P + "_nb0");
  F.srli(7, 4, 2);
  F.add(6, 6, 7);
  F.label(P + "_nb0");
  // Apply sign bit (bit 3).
  F.andi(7, 5, 8);
  F.beq(7, P + "_plus");
  F.sub(19, 19, 6);
  F.br(P + "_clamp");
  F.label(P + "_plus");
  F.add(19, 19, 6);
  F.label(P + "_clamp");
  // Saturate the predictor: these paths run only on loud signal swings,
  // giving the block-frequency spectrum squash's thresholds slice.
  F.li(7, 32767);
  F.cmple(6, 19, 7);
  F.bne(6, P + "_nhi");
  F.mov(19, 7);
  F.label(P + "_nhi");
  F.li(7, -32768);
  F.cmple(6, 7, 19);
  F.bne(6, P + "_nlo");
  F.mov(19, 7);
  F.label(P + "_nlo");
  // Step index update: idx += idxtab[code & 7], clamped to [0, 88].
  F.andi(7, 5, 7);
  F.slli(7, 7, 2);
  F.la(8, "adpcm_idxtab");
  F.add(8, 8, 7);
  F.ldw(7, 8, 0);
  F.add(20, 20, 7);
  F.bge(20, P + "_iok");
  F.li(20, 0);
  F.label(P + "_iok");
  F.li(7, 88);
  F.cmple(6, 20, 7);
  F.bne(6, P + "_iok2");
  F.mov(20, 7);
  F.label(P + "_iok2");
}

/// Loads step_table[r20] into r4.
static void emitLoadStep(FunctionBuilder &F) {
  F.la(4, "adpcm_steps");
  F.slli(5, 20, 2);
  F.add(4, 4, 5);
  F.ldw(4, 4, 0);
}

static void addAdpcmCodec(ProgramBuilder &PB) {
  addTickFunction(PB, "adpcm");
  PB.addDataWords("adpcm_steps", stepTable());
  PB.addDataWords("adpcm_idxtab", {0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu,
                                   0xFFFFFFFFu, 2, 4, 6, 8});

  // adpcm_encode(src=r16, nsamples=r17, dst=r18) -> r0 = bytes written.
  {
    FunctionBuilder F = PB.beginFunction("adpcm_encode");
    F.mov(23, 18); // dst start
    F.li(19, 0);   // predictor
    F.li(20, 0);   // step index
    F.li(22, 0);   // nibble toggle
    F.li(21, 0);   // pending nibble
    F.beq(17, "edone");
    F.label("eloop");
    // Per-chunk bookkeeping (every 256 samples).
    F.andi(6, 17, 255);
    F.bne(6, "etickskip");
    emitTickCall(F, "adpcm");
    F.label("etickskip");
    // Load a signed 16-bit little-endian sample.
    F.ldb(1, 16, 0);
    F.ldb(2, 16, 1);
    F.slli(2, 2, 8);
    F.or_(1, 1, 2);
    F.slli(1, 1, 16);
    F.srai(1, 1, 16);
    F.addi(16, 16, 2);
    // delta and sign.
    F.sub(2, 1, 19);
    F.li(3, 0);
    F.bge(2, "dpos");
    F.li(3, 8);
    F.sub(2, 31, 2);
    F.label("dpos");
    emitLoadStep(F);
    F.li(5, 0);
    F.cmplt(6, 2, 4);
    F.bne(6, "c2");
    F.ori(5, 5, 4);
    F.sub(2, 2, 4);
    F.label("c2");
    F.srli(7, 4, 1);
    F.cmplt(6, 2, 7);
    F.bne(6, "c1");
    F.ori(5, 5, 2);
    F.sub(2, 2, 7);
    F.label("c1");
    F.srli(7, 4, 2);
    F.cmplt(6, 2, 7);
    F.bne(6, "c0");
    F.ori(5, 5, 1);
    F.label("c0");
    F.or_(5, 5, 3); // code |= sign
    emitPredictorUpdate(F, "e");
    // Pack two 4-bit codes per byte.
    F.bne(22, "esecond");
    F.mov(21, 5);
    F.li(22, 1);
    F.br("enext");
    F.label("esecond");
    F.slli(6, 5, 4);
    F.or_(6, 6, 21);
    F.stb(6, 18, 0);
    F.addi(18, 18, 1);
    F.li(22, 0);
    F.label("enext");
    F.subi(17, 17, 1);
    F.bne(17, "eloop");
    // Flush a pending nibble (odd sample counts only: rare).
    F.beq(22, "edone");
    F.stb(21, 18, 0);
    F.addi(18, 18, 1);
    F.label("edone");
    F.sub(0, 18, 23);
    F.ret();
  }

  // adpcm_decode(src=r16, ncodes=r17, dst=r18) -> r0 = bytes written.
  {
    FunctionBuilder F = PB.beginFunction("adpcm_decode");
    F.mov(23, 18);
    F.li(19, 0);
    F.li(20, 0);
    F.li(22, 0);
    F.li(21, 0);
    F.beq(17, "ddone");
    F.label("dloop");
    F.andi(6, 17, 255);
    F.bne(6, "dtickskip");
    emitTickCall(F, "adpcm");
    F.label("dtickskip");
    F.bne(22, "dsecond");
    F.ldb(21, 16, 0);
    F.addi(16, 16, 1);
    F.andi(5, 21, 15);
    F.li(22, 1);
    F.br("ddec");
    F.label("dsecond");
    F.srli(5, 21, 4);
    F.li(22, 0);
    F.label("ddec");
    emitLoadStep(F);
    emitPredictorUpdate(F, "d");
    // Store the reconstructed sample (LE16).
    F.stb(19, 18, 0);
    F.srai(6, 19, 8);
    F.stb(6, 18, 1);
    F.addi(18, 18, 2);
    F.subi(17, 17, 1);
    F.bne(17, "dloop");
    F.label("ddone");
    F.sub(0, 18, 23);
    F.ret();
  }
}

/// A simplified mu-law companding codec: the alternate speech format the
/// real adpcm tools interoperate with. Linked into the binary but selected
/// by neither experiment input (pure cold real code).
static void addUlawCodec(ProgramBuilder &PB) {
  // ulaw_encode(src=r16, nsamples=r17, dst=r18) -> r0 = bytes.
  {
    FunctionBuilder F = PB.beginFunction("ulaw_encode");
    F.mov(23, 18);
    F.beq(17, "done");
    F.label("loop");
    // Load a signed 16-bit sample.
    F.ldb(1, 16, 0);
    F.ldb(2, 16, 1);
    F.slli(2, 2, 8);
    F.or_(1, 1, 2);
    F.slli(1, 1, 16);
    F.srai(1, 1, 16);
    F.addi(16, 16, 2);
    // Sign and magnitude, with the mu-law bias.
    F.li(3, 0);
    F.bge(1, "pos");
    F.li(3, 0x80);
    F.sub(1, 31, 1);
    F.label("pos");
    F.addi(1, 1, 132);
    F.li(4, 32767);
    F.cmple(5, 1, 4);
    F.bne(5, "noclip");
    F.mov(1, 4); // Saturation: rare.
    F.label("noclip");
    // Exponent: e = position of the leading bit above bit 7, capped at 7.
    F.li(4, 0); // e
    F.srli(5, 1, 8);
    F.label("eloop");
    F.beq(5, "edone");
    F.cmpulti(6, 4, 7);
    F.beq(6, "edone");
    F.addi(4, 4, 1);
    F.srli(5, 5, 1);
    F.br("eloop");
    F.label("edone");
    // Mantissa: the 4 bits below the leading bit.
    F.addi(6, 4, 3);
    F.srl(5, 1, 6);
    F.andi(5, 5, 15);
    // Byte = ~(sign | e<<4 | mantissa), as in G.711.
    F.slli(6, 4, 4);
    F.or_(5, 5, 6);
    F.or_(5, 5, 3);
    F.xori(5, 5, 0xFF);
    F.stb(5, 18, 0);
    F.addi(18, 18, 1);
    F.subi(17, 17, 1);
    F.bne(17, "loop");
    F.label("done");
    F.sub(0, 18, 23);
    F.ret();
  }
  // ulaw_decode(src=r16, nbytes=r17, dst=r18) -> r0 = bytes (2/sample).
  {
    FunctionBuilder F = PB.beginFunction("ulaw_decode");
    F.mov(23, 18);
    F.beq(17, "done");
    F.label("loop");
    F.ldb(1, 16, 0);
    F.addi(16, 16, 1);
    F.xori(1, 1, 0xFF);
    F.andi(3, 1, 0x80); // sign
    F.srli(4, 1, 4);
    F.andi(4, 4, 7); // exponent
    F.andi(5, 1, 15); // mantissa
    // Reconstruct: s = ((mantissa | 16) << (e + 3)) - 132.
    F.ori(5, 5, 16);
    F.addi(6, 4, 3);
    F.sll(5, 5, 6);
    F.subi(5, 5, 132);
    F.beq(3, "store");
    F.sub(5, 31, 5);
    F.label("store");
    F.stb(5, 18, 0);
    F.srai(6, 5, 8);
    F.stb(6, 18, 1);
    F.addi(18, 18, 2);
    F.subi(17, 17, 1);
    F.bne(17, "loop");
    F.label("done");
    F.sub(0, 18, 23);
    F.ret();
  }
}

Workload vea::workloads::buildAdpcm(double Scale) {
  ProgramBuilder PB("adpcm");
  addRuntimeLibrary(PB);
  addAdpcmCodec(PB);
  addUlawCodec(PB);
  addFilterFarm(PB, "adpcm", 70, 0xAD9C);
  PB.addBss("inbuf", 131072);
  PB.addBss("workbuf", 131072);
  PB.addBss("outbuf", 131072);

  {
    FunctionBuilder F = PB.beginFunction("main");
    emitReadFrame(F, AdpcmMagic, "inbuf", 131072);
    // r10 = mode, r11 = payload bytes.
    F.cmpulti(2, 10, 5);
    F.beq(2, "badmode");
    emitCalibration(F, "adpcm", 70, 22, "inbuf");
    F.mov(1, 10);
    F.switchJump(1, 2, "modes",
                 {"m_encode", "m_decode", "m_both", "m_stats", "m_ulaw"});

    // Mode 0: encode only (the profiling path).
    F.label("m_encode");
    F.srli(12, 11, 1); // samples = bytes / 2
    F.la(16, "inbuf");
    F.mov(17, 12);
    F.la(18, "workbuf");
    F.call("adpcm_encode");
    F.mov(11, 0);
    F.br("finish");

    // Mode 1: decode a raw code stream (cold under the profiling input).
    F.label("m_decode");
    F.la(16, "inbuf");
    F.mov(17, 11); // every input byte carries two codes; use n codes
    F.la(18, "workbuf");
    F.call("adpcm_decode");
    F.mov(11, 0);
    F.br("finish");

    // Mode 2: encode, decode, then post-filter — the timing path.
    F.label("m_both");
    F.srli(12, 11, 1);
    F.la(16, "inbuf");
    F.mov(17, 12);
    F.la(18, "workbuf");
    F.call("adpcm_encode");
    F.mov(13, 0); // code bytes
    F.slli(14, 13, 1);
    F.la(16, "workbuf");
    F.mov(17, 14); // 2 codes per byte
    F.la(18, "outbuf");
    F.call("adpcm_decode");
    F.mov(13, 0); // decoded bytes
    // Post-filter a slice through the farm (a cold filter under the
    // profile).
    F.andi(16, 11, 7);
    F.addi(16, 16, 40);
    F.la(17, "outbuf");
    F.li(18, 2048);
    F.call("adpcm_apply");
    F.la(16, "workbuf");
    F.la(17, "outbuf");
    F.mov(18, 13);
    F.call("memcpy");
    F.mov(11, 13);
    F.br("finish");

    // Mode 3: signal statistics (never exercised by either input).
    F.label("m_stats");
    F.la(1, "inbuf");
    F.li(2, 0);  // sum
    F.li(3, 0);  // max
    F.mov(4, 11);
    F.beq(4, "stats_out");
    F.label("stats_loop");
    F.ldb(5, 1, 0);
    F.add(2, 2, 5);
    F.cmple(6, 5, 3);
    F.bne(6, "stats_nmax");
    F.mov(3, 5);
    F.label("stats_nmax");
    F.addi(1, 1, 1);
    F.subi(4, 4, 1);
    F.bne(4, "stats_loop");
    F.label("stats_out");
    F.mov(16, 2);
    F.sys(SysFunc::PutInt);
    F.mov(16, 3);
    F.sys(SysFunc::PutInt);
    F.li(16, 0);
    F.halt();

    // Mode 4: companded (mu-law style) round trip — real alternate-codec
    // code that neither input selects; the kind of linked-in-but-unused
    // feature real firmware carries.
    F.label("m_ulaw");
    F.srli(12, 11, 1);
    F.la(16, "inbuf");
    F.mov(17, 12);
    F.la(18, "workbuf");
    F.call("ulaw_encode");
    F.mov(13, 0);
    F.la(16, "workbuf");
    F.mov(17, 13);
    F.la(18, "outbuf");
    F.call("ulaw_decode");
    F.la(16, "workbuf");
    F.la(17, "outbuf");
    F.mov(18, 0);
    F.mov(11, 0);
    F.call("memcpy");
    F.br("finish");

    F.label("badmode");
    F.li(16, 21);
    F.call("panic");
    F.halt();

    F.label("finish");
    emitChecksumAndHalt(F, "workbuf");
  }
  PB.setEntry("main");

  Workload W;
  W.Name = "adpcm";
  W.Prog = PB.build();
  size_t ProfSamples = static_cast<size_t>(40000 * Scale);
  size_t TimeSamples = static_cast<size_t>(56000 * Scale);
  W.ProfilingInput =
      frameInput(AdpcmMagic, 0, makeAudioPayload(ProfSamples, 0xC11A701));
  W.TimingInput =
      frameInput(AdpcmMagic, 2, makeAudioPayload(TimeSamples, 0x31A5EED));
  W.ProfilingInputName = "clinton.pcm (synthetic, encode)";
  W.TimingInputName = "mlk_speech.pcm (synthetic, encode+decode+filter)";
  return W;
}
