//===- workloads/Rasta.cpp - IIR filterbank analysis workload -------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Mirrors MediaBench `rasta`: a bank of second-order IIR filters over an
// audio stream, per-frame band energies companded through a lookup table.
// The timing input enables the "high-resolution" band set, which is cold
// under the profiling input.
//
//===----------------------------------------------------------------------===//

#include "workloads/Lib.h"
#include "workloads/Workloads.h"

using namespace vea;
using namespace vea::workloads;

static const uint32_t RastaMagic = 0x4A57A001u;
static const unsigned BaseBands = 6;
static const unsigned HiResBands = 4; // Extra bands in mode 1.
static const unsigned FrameLen = 256; // Samples per analysis frame.

/// Fixed-point (Q8) biquad coefficients per band: b0, b1, b2, a1, a2.
static std::vector<uint32_t> bandCoeffs() {
  std::vector<uint32_t> C;
  for (unsigned B = 0; B != BaseBands + HiResBands; ++B) {
    C.push_back(40 + 9 * B);                          // b0
    C.push_back(256 - 13 * B);                        // b1
    C.push_back(static_cast<uint32_t>(-24 - 5 * (int)B)); // b2
    C.push_back(static_cast<uint32_t>(-70 + 11 * (int)B)); // a1
    C.push_back(30 + 4 * B);                          // a2
  }
  return C;
}

/// Logarithm-like companding table.
static std::vector<uint32_t> compandTable() {
  std::vector<uint32_t> T(256);
  for (unsigned I = 0; I != 256; ++I) {
    unsigned V = 0, X = I;
    while (X > 1) {
      X >>= 1;
      V += 23;
    }
    T[I] = V + I / 5;
  }
  return T;
}

static void addRastaCore(ProgramBuilder &PB) {
  addTickFunction(PB, "rasta");
  PB.addDataWords("rasta_coeffs", bandCoeffs());
  PB.addDataWords("rasta_compand", compandTable());
  PB.addBss("rasta_state", (BaseBands + HiResBands) * 4 * 4); // x1,x2,y1,y2

  // rasta_reset(): zero all filter state. Called once per run (cold at
  // higher thresholds).
  {
    FunctionBuilder F = PB.beginFunction("rasta_reset");
    F.la(1, "rasta_state");
    F.li(2, (BaseBands + HiResBands) * 4);
    F.label("loop");
    F.stw(31, 1, 0);
    F.addi(1, 1, 4);
    F.subi(2, 2, 1);
    F.bne(2, "loop");
    F.ret();
  }

  // rasta_band(frame=r16, n=r17, band=r18) -> r0 = frame band energy.
  // Runs one biquad over the frame, accumulating |y|.
  {
    FunctionBuilder F = PB.beginFunction("rasta_band");
    // Load coefficients (r19..r23 = b0,b1,b2,a1,a2) and state.
    F.muli(1, 18, 20);
    F.la(2, "rasta_coeffs");
    F.add(2, 2, 1);
    F.ldw(19, 2, 0);
    F.ldw(20, 2, 4);
    F.ldw(21, 2, 8);
    F.ldw(22, 2, 12);
    F.ldw(23, 2, 16);
    F.slli(1, 18, 4);
    F.la(24, "rasta_state");
    F.add(24, 24, 1);
    F.ldw(2, 24, 0);  // x1
    F.ldw(3, 24, 4);  // x2
    F.ldw(4, 24, 8);  // y1
    F.ldw(5, 24, 12); // y2
    F.li(0, 0);       // energy
    F.beq(17, "done");
    F.label("loop");
    // x = sext16(frame[i])
    F.ldb(6, 16, 0);
    F.ldb(7, 16, 1);
    F.slli(7, 7, 8);
    F.or_(6, 6, 7);
    F.slli(6, 6, 16);
    F.srai(6, 6, 16);
    // y = (b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2) >> 8
    F.mul(7, 19, 6);
    F.mul(8, 20, 2);
    F.add(7, 7, 8);
    F.mul(8, 21, 3);
    F.add(7, 7, 8);
    F.mul(8, 22, 4);
    F.sub(7, 7, 8);
    F.mul(8, 23, 5);
    F.sub(7, 7, 8);
    F.srai(7, 7, 8);
    // Shift state.
    F.mov(3, 2);
    F.mov(2, 6);
    F.mov(5, 4);
    F.mov(4, 7);
    // energy += |y| (clamped into a byte for companding).
    F.bge(7, "pos");
    F.sub(7, 31, 7);
    F.label("pos");
    F.add(0, 0, 7);
    F.addi(16, 16, 2);
    F.subi(17, 17, 1);
    F.bne(17, "loop");
    F.label("done");
    // Persist the state.
    F.stw(2, 24, 0);
    F.stw(3, 24, 4);
    F.stw(4, 24, 8);
    F.stw(5, 24, 12);
    F.ret();
  }

  // rasta_compand_energy(e=r16) -> r0: table compand of the scaled energy.
  {
    FunctionBuilder F = PB.beginFunction("rasta_compand_energy");
    F.srli(1, 16, 10);
    F.cmplei(2, 1, 255);
    F.bne(2, "ok");
    F.li(1, 255); // saturation: rare
    F.label("ok");
    F.la(2, "rasta_compand");
    F.slli(1, 1, 2);
    F.add(2, 2, 1);
    F.ldw(0, 2, 0);
    F.ret();
  }
}

Workload vea::workloads::buildRasta(double Scale) {
  ProgramBuilder PB("rasta");
  addRuntimeLibrary(PB);
  addRastaCore(PB);
  addFilterFarm(PB, "rasta", 65, 0x4A57A);
  PB.addBss("inbuf", 131072);
  PB.addBss("workbuf", 65536);

  {
    FunctionBuilder F = PB.beginFunction("main");
    emitReadFrame(F, RastaMagic, "inbuf", 131072);
    F.cmpulti(2, 10, 2);
    F.beq(2, "badmode");
    emitCalibration(F, "rasta", 65, 20, "inbuf");
    F.call("rasta_reset");
    // Bands to analyze: 6, or 10 in high-resolution mode (timing).
    F.li(15, BaseBands);
    F.beq(10, "bands_set");
    F.li(15, BaseBands + HiResBands);
    F.label("bands_set");
    F.la(12, "inbuf");
    F.srli(13, 11, 1);
    F.li(2, FrameLen);
    F.udiv(13, 13, 2); // whole frames
    F.la(14, "workbuf");
    F.beq(13, "done");

    F.label("frame");
    emitTickCall(F, "rasta");
    F.li(9, 0); // band index
    F.label("band");
    F.mov(16, 12);
    F.li(17, FrameLen);
    F.mov(18, 9);
    F.call("rasta_band");
    F.mov(16, 0);
    F.call("rasta_compand_energy");
    F.stb(0, 14, 0);
    F.addi(14, 14, 1);
    F.addi(9, 9, 1);
    F.cmpult(1, 9, 15);
    F.bne(1, "band");
    F.lda(12, 12, FrameLen * 2);
    F.subi(13, 13, 1);
    F.bne(13, "frame");

    F.label("done");
    F.la(1, "workbuf");
    F.sub(11, 14, 1); // descriptor bytes
    emitChecksumAndHalt(F, "workbuf");

    F.label("badmode");
    F.li(16, 28);
    F.call("panic");
    F.halt();
  }
  PB.setEntry("main");

  Workload W;
  W.Name = "rasta";
  W.Prog = PB.build();
  W.ProfilingInput = frameInput(
      RastaMagic, 0,
      makeAudioPayload(static_cast<size_t>(24000 * Scale) + 512, 0x4A5F1));
  W.TimingInput = frameInput(
      RastaMagic, 1,
      makeAudioPayload(static_cast<size_t>(32000 * Scale) + 512, 0x4A5F2,
                       /*WithSilence=*/true));
  W.ProfilingInputName = "ex5_c1.wav (synthetic, 6 bands)";
  W.TimingInputName = "phone.pcmle.wav (synthetic, 10 bands)";
  return W;
}
