//===- workloads/Common.cpp - Shared workload scaffolding -----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"

#include <cmath>

using namespace vea;
using namespace vea::workloads;

/// Emits one generated operation from the recipe RNG, transforming r1.
/// \p LabelCounter disambiguates the labels of generated rare-path blocks.
static void emitRecipeOp(FunctionBuilder &F, Rng &R, unsigned StateReg,
                         unsigned &LabelCounter) {
  uint32_t Lit = static_cast<uint32_t>(R.nextBelow(255) + 1);
  switch (R.nextBelow(9)) {
  case 0:
    F.addi(1, 1, Lit);
    break;
  case 1:
    F.xori(1, 1, Lit);
    break;
  case 2:
    F.muli(1, 1, static_cast<uint32_t>(R.nextBelow(7) + 3));
    break;
  case 3:
    F.add(1, 1, StateReg); // Mix in the running state.
    break;
  case 4:
    F.slli(5, 1, static_cast<uint32_t>(R.nextBelow(3) + 1));
    F.xor_(1, 1, 5);
    break;
  case 5:
    F.srli(5, 1, static_cast<uint32_t>(R.nextBelow(3) + 1));
    F.add(1, 1, 5);
    break;
  case 6:
    F.subi(1, 1, Lit);
    break;
  case 7: {
    // Rare saturation: clip the value if it crossed a threshold. The clip
    // executes only for large intermediates, adding low-frequency blocks
    // to the profile spectrum.
    std::string Skip = "clip" + std::to_string(LabelCounter++);
    F.cmpulti(5, 1, 200);
    F.bne(5, Skip);
    F.andi(1, 1, 0x7F);
    F.label(Skip);
    break;
  }
  default:
    F.ori(1, 1, static_cast<uint32_t>(R.nextBelow(15) + 1));
    break;
  }
}

void vea::workloads::addFilterFarm(ProgramBuilder &PB,
                                   const std::string &Prefix, unsigned Count,
                                   uint64_t Seed) {
  Rng R(Seed);
  std::vector<std::string> Names;
  Names.reserve(Count);

  for (unsigned I = 0; I != Count; ++I) {
    std::string Name = Prefix + "_f" + std::to_string(I);
    Names.push_back(Name);

    // Each filter owns a generated coefficient table, like the per-mode
    // tables of real codec option handlers.
    std::vector<uint32_t> Coeffs;
    unsigned NCoeff = 8 + static_cast<unsigned>(R.nextBelow(9));
    for (unsigned C = 0; C != NCoeff; ++C)
      Coeffs.push_back(static_cast<uint32_t>(R.nextBelow(251) + 1));
    PB.addDataWords(Name + "_coef", Coeffs);

    // A third of the filters post-process each byte through a helper
    // call. Most use a dedicated per-filter helper (cold whenever the
    // filter is cold — the common case in real programs); some use the
    // shared library leaves abs32/clamp, which stay warm and showcase the
    // buffer-safe optimization (Section 6.1).
    bool CallsHelper = R.chance(1, 3);
    bool SharedHelper = CallsHelper && R.chance(1, 3);
    bool ClampHelper = R.chance(1, 2);
    if (CallsHelper && !SharedHelper) {
      // Dedicated saturating-quantize helper: leaf, called only from this
      // filter.
      FunctionBuilder H = PB.beginFunction(Name + "_hlp");
      H.mov(0, 16);
      H.bge(0, "pos");
      H.sub(0, 31, 0);
      H.label("pos");
      H.cmplei(1, 0, static_cast<uint32_t>(150 + R.nextBelow(100)));
      H.bne(1, "ok");
      H.srli(0, 0, 1);
      H.label("ok");
      H.srli(1, 0, static_cast<uint32_t>(3 + R.nextBelow(3)));
      H.xor_(0, 0, 1);
      H.ret();
    }

    FunctionBuilder F = PB.beginFunction(Name);
    unsigned LabelCounter = 0;
    // filter(buf=r16, n=r17): a forward transform pass followed by a
    // backward mixing pass, each with its own generated recipe.
    if (CallsHelper) {
      F.enter(16);
      F.stw(16, RegSP, 4);
      F.stw(17, RegSP, 8);
    }
    F.beq(17, "done");
    F.mov(2, 16);
    F.mov(3, 17);
    F.la(7, Name + "_coef");
    F.li(4, static_cast<int32_t>(R.nextBelow(251) + 1)); // running state
    F.li(8, 0);                                          // coeff index
    F.label("fwd");
    // Scheduling padding the squeeze baseline strips, as a real compiler's
    // output would carry.
    if (R.chance(2, 5))
      F.nop();
    F.ldb(1, 2, 0);
    // Fold in the current coefficient.
    F.slli(6, 8, 2);
    F.add(6, 7, 6);
    F.ldw(6, 6, 0);
    F.add(1, 1, 6);
    unsigned Ops = 4 + static_cast<unsigned>(R.nextBelow(8));
    for (unsigned Op = 0; Op != Ops; ++Op)
      emitRecipeOp(F, R, 4, LabelCounter);
    if (CallsHelper) {
      // Helper post-processing every 32nd byte (keeping the call cost —
      // and the decompressor round trips it causes when cold — at the
      // once-per-chunk granularity real codecs show).
      F.andi(5, 3, 31);
      F.bne(5, "hskip");
      F.mov(16, 1);
      if (!SharedHelper) {
        F.call(Name + "_hlp");
      } else if (ClampHelper) {
        F.li(17, 0);
        F.li(18, 200);
        F.call("clamp");
      } else {
        F.call("abs32");
      }
      F.mov(1, 0);
      F.label("hskip");
    }
    F.addi(4, 4, 3); // Advance the running state.
    F.andi(1, 1, 0xFF);
    F.stb(1, 2, 0);
    // Cycle the coefficient index.
    F.addi(8, 8, 1);
    F.cmpulti(6, 8, NCoeff);
    F.bne(6, "fnext");
    F.li(8, 0);
    F.label("fnext");
    F.addi(2, 2, 1);
    F.subi(3, 3, 1);
    F.bne(3, "fwd");
    // Backward mixing pass: buf[i] ^= transformed buf[i+1].
    if (CallsHelper) {
      F.ldw(16, RegSP, 4); // The helper calls clobbered the arguments.
      F.ldw(17, RegSP, 8);
    }
    F.mov(3, 17);
    F.subi(3, 3, 1);
    F.beq(3, "done");
    F.add(2, 16, 3);
    F.label("bwd");
    F.ldb(1, 2, 0);
    unsigned Ops2 = 2 + static_cast<unsigned>(R.nextBelow(5));
    for (unsigned Op = 0; Op != Ops2; ++Op)
      emitRecipeOp(F, R, 4, LabelCounter);
    F.ldb(5, 2, -1);
    F.xor_(1, 1, 5);
    F.andi(1, 1, 0xFF);
    F.stb(1, 2, -1);
    F.subi(2, 2, 1);
    F.subi(3, 3, 1);
    F.bne(3, "bwd");
    F.label("done");
    if (CallsHelper)
      F.leave(16);
    else
      F.ret();

    // Every few filters drag in an unreferenced diagnostic twin — dead
    // code a real linker would pull from the library archive, and exactly
    // what the squeeze baseline exists to remove.
    if (R.chance(1, 3)) {
      FunctionBuilder D = PB.beginFunction(Name + "_dbg");
      D.li(1, static_cast<int32_t>(R.nextBelow(1000)));
      unsigned DbgOps = 10 + static_cast<unsigned>(R.nextBelow(20));
      for (unsigned Op = 0; Op != DbgOps; ++Op) {
        if (R.chance(1, 4))
          D.nop();
        else
          D.addi(1, 1, static_cast<uint32_t>(R.nextBelow(200)));
      }
      D.mov(0, 1);
      D.ret();
    }
  }

  PB.addSymbolTable(Prefix + "_table", Names);

  // apply(idx=r16, buf=r17, n=r18): bounds-checked indirect dispatch.
  {
    FunctionBuilder F = PB.beginFunction(Prefix + "_apply");
    F.enter(8);
    F.cmpulti(1, 16, Count);
    F.beq(1, "bad");
    F.slli(1, 16, 2);
    F.la(2, Prefix + "_table");
    F.add(2, 2, 1);
    F.ldw(2, 2, 0);
    F.mov(16, 17);
    F.mov(17, 18);
    F.callIndirect(2);
    F.leave(8);
    F.label("bad"); // Cold error path.
    F.li(16, 77);
    F.call("panic");
    F.halt(); // Unreachable; panic never returns.
  }
}

std::vector<uint8_t> vea::workloads::frameInput(
    uint32_t Magic, uint32_t Mode, const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> In;
  auto PushWord = [&](uint32_t W) {
    In.push_back(static_cast<uint8_t>(W));
    In.push_back(static_cast<uint8_t>(W >> 8));
    In.push_back(static_cast<uint8_t>(W >> 16));
    In.push_back(static_cast<uint8_t>(W >> 24));
  };
  PushWord(Magic);
  PushWord(Mode);
  PushWord(static_cast<uint32_t>(Payload.size()));
  In.insert(In.end(), Payload.begin(), Payload.end());
  return In;
}

std::vector<uint8_t> vea::workloads::makeAudioPayload(size_t Samples,
                                                      uint64_t Seed,
                                                      bool WithSilence) {
  Rng R(Seed);
  std::vector<uint8_t> Out;
  Out.reserve(Samples * 2);
  double Phase = 0.0, Freq = 0.02;
  for (size_t I = 0; I != Samples; ++I) {
    int32_t S;
    if (WithSilence && (I / 512) % 4 == 3) {
      S = 0; // Quarter of the frames are silent.
    } else {
      Phase += Freq;
      if (I % 1024 == 0)
        Freq = 0.005 + 0.001 * static_cast<double>(R.nextBelow(50));
      S = static_cast<int32_t>(9000.0 * std::sin(Phase)) +
          static_cast<int32_t>(R.nextBelow(600)) - 300;
    }
    uint16_t U = static_cast<uint16_t>(S);
    Out.push_back(static_cast<uint8_t>(U));
    Out.push_back(static_cast<uint8_t>(U >> 8));
  }
  return Out;
}

std::vector<uint8_t> vea::workloads::makeImagePayload(unsigned Width,
                                                      unsigned Height,
                                                      uint64_t Seed) {
  Rng R(Seed);
  std::vector<uint8_t> Out;
  Out.reserve(static_cast<size_t>(Width) * Height);
  for (unsigned Y = 0; Y != Height; ++Y)
    for (unsigned X = 0; X != Width; ++X) {
      unsigned V = (X * 2 + Y * 3) / 4 + static_cast<unsigned>(R.nextBelow(24));
      Out.push_back(static_cast<uint8_t>(V & 0xFF));
    }
  return Out;
}

std::vector<uint8_t> vea::workloads::makeTextPayload(size_t Bytes,
                                                     uint64_t Seed) {
  Rng R(Seed);
  static const char Alphabet[] =
      "etaoin shrdlu cmfwyp etaoin shrdlu..,;\nETAOIN";
  std::vector<uint8_t> Out;
  Out.reserve(Bytes);
  for (size_t I = 0; I != Bytes; ++I)
    Out.push_back(static_cast<uint8_t>(
        Alphabet[R.nextBelow(sizeof(Alphabet) - 1)]));
  return Out;
}

void vea::workloads::emitReadFrame(FunctionBuilder &F, uint32_t Magic,
                                   const std::string &BufSym,
                                   uint32_t BufCap) {
  // Magic word.
  F.sys(SysFunc::GetWord);
  F.beq(1, "hdr_truncated");
  F.mov(9, 0);
  F.li(2, static_cast<int32_t>(Magic));
  F.cmpeq(2, 9, 2);
  F.beq(2, "bad_magic");
  // Mode.
  F.sys(SysFunc::GetWord);
  F.beq(1, "hdr_truncated");
  F.mov(10, 0);
  // Payload size.
  F.sys(SysFunc::GetWord);
  F.beq(1, "hdr_truncated");
  F.mov(11, 0);
  F.li(2, static_cast<int32_t>(BufCap));
  F.cmpule(2, 11, 2);
  F.beq(2, "too_big");
  // Payload.
  F.la(16, BufSym);
  F.mov(17, 11);
  F.call("read_block");
  F.cmpeq(2, 0, 11);
  F.beq(2, "short_read");
  F.br("frame_ok");
  // Cold error paths.
  F.label("hdr_truncated");
  F.li(16, 11);
  F.call("panic");
  F.halt();
  F.label("bad_magic");
  F.li(16, 12);
  F.call("panic");
  F.halt();
  F.label("too_big");
  F.li(16, 13);
  F.call("panic");
  F.halt();
  F.label("short_read");
  F.li(16, 14);
  F.call("panic");
  F.halt();
  F.label("frame_ok");
}

void vea::workloads::addTickFunction(ProgramBuilder &PB,
                                     const std::string &Prefix) {
  PB.addBss(Prefix + "_tick_state", 16);
  FunctionBuilder F = PB.beginFunction(Prefix + "_tick");
  // Fully register-transparent: saves everything it uses.
  F.lda(RegSP, RegSP, -20);
  F.stw(1, RegSP, 0);
  F.stw(2, RegSP, 4);
  F.stw(3, RegSP, 8);
  F.stw(4, RegSP, 12);
  F.la(1, Prefix + "_tick_state");
  F.ldw(2, 1, 0);
  F.addi(2, 2, 1);
  F.stw(2, 1, 0); // ticks++
  // Mix the progress counter into a rolling signature.
  F.ldw(3, 1, 4);
  F.li(4, 14);
  F.label("mix");
  F.muli(3, 3, 5);
  F.add(3, 3, 2);
  F.xori(3, 3, 0x6D);
  F.srli(2, 3, 11);
  F.xor_(3, 3, 2);
  F.subi(4, 4, 1);
  F.bne(4, "mix");
  F.stw(3, 1, 4);
  F.ldw(1, RegSP, 0);
  F.ldw(2, RegSP, 4);
  F.ldw(3, RegSP, 8);
  F.ldw(4, RegSP, 12);
  F.lda(RegSP, RegSP, 20);
  // Linked through r24 (see emitTickCall) so hot callers keep r26 intact
  // and need no frame; this also exercises the decompressor's per-register
  // entry points on a register other than the conventional $ra.
  Inst Ret;
  Ret.Op = Opcode::Ret;
  Ret.Ra = RegZero;
  Ret.Rb = 24;
  F.emit(Ret);
}

void vea::workloads::emitTickCall(FunctionBuilder &F,
                                  const std::string &Prefix) {
  Inst Call;
  Call.Op = Opcode::Bsr;
  Call.Ra = 24;
  Call.Symbol = Prefix + "_tick";
  Call.Reloc = RelocKind::BranchDisp;
  F.emit(Call);
}

void vea::workloads::emitCalibration(FunctionBuilder &F,
                                     const std::string &FarmPrefix,
                                     unsigned FarmCount, unsigned Used,
                                     const std::string &BufSym) {
  for (unsigned I = 0; I != Used; ++I) {
    unsigned Index = (I * 7 + 2) % FarmCount;
    F.li(16, static_cast<int32_t>(Index));
    F.la(17, BufSym);
    F.li(18, 48);
    F.call(FarmPrefix + "_apply");
  }
}

void vea::workloads::emitChecksumAndHalt(FunctionBuilder &F,
                                         const std::string &BufSym) {
  F.la(16, BufSym);
  F.mov(17, 11);
  F.call("crc32");
  F.mov(16, 0);
  F.sys(SysFunc::PutWord);
  F.andi(16, 16, 0xFF);
  F.halt();
}
