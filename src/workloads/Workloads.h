//===- workloads/Workloads.h - The MediaBench-analog suite -----*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eleven-benchmark suite mirroring the paper's MediaBench selection
/// (Section 7 / Figure 5 / Table 1). Each is a genuine miniature
/// implementation of the same algorithm family, built for the VEA-32
/// machine, with a distinct profiling input (used to collect the guiding
/// profile) and a larger timing input (used to measure the effect of
/// runtime decompression). Timing inputs deliberately exercise some code
/// that is cold or absent in the profile — alternate codec modes, rare
/// per-frame paths — reproducing the dynamics the paper describes for
/// SPECint's `li` (profile-cold code executed many times when timed).
///
/// Every program additionally carries a "filter farm" of address-taken,
/// rarely-called routines standing in for the large rarely-executed
/// library bodies of real MediaBench binaries (see Common.h).
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_WORKLOADS_WORKLOADS_H
#define SQUASH_WORKLOADS_WORKLOADS_H

#include "workloads/Common.h"

namespace vea::workloads {

/// Input scaling: 1.0 gives the standard experiment sizes; tests use
/// smaller factors for speed.
Workload buildAdpcm(double Scale = 1.0);    ///< IMA ADPCM speech codec.
Workload buildEpic(double Scale = 1.0);     ///< Pyramid image coder.
Workload buildG721Dec(double Scale = 1.0);  ///< G.721-style decoder.
Workload buildG721Enc(double Scale = 1.0);  ///< G.721-style encoder.
Workload buildGsm(double Scale = 1.0);      ///< LPC-style speech analysis.
Workload buildJpegDec(double Scale = 1.0);  ///< Block-transform decoder.
Workload buildJpegEnc(double Scale = 1.0);  ///< Block-transform encoder.
Workload buildMpeg2Dec(double Scale = 1.0); ///< Motion-comp decoder.
Workload buildMpeg2Enc(double Scale = 1.0); ///< Motion-comp encoder.
Workload buildPgp(double Scale = 1.0);      ///< Block cipher + armor.
Workload buildRasta(double Scale = 1.0);    ///< IIR filterbank analysis.

/// All eleven, in the paper's order.
std::vector<Workload> buildAllWorkloads(double Scale = 1.0);

} // namespace vea::workloads

#endif // SQUASH_WORKLOADS_WORKLOADS_H
