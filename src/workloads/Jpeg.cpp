//===- workloads/Jpeg.cpp - Block-transform image codec workloads ---------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Mirrors MediaBench `jpeg_enc` / `jpeg_dec`: 8x8 block transform coding
// with quantization, zigzag reordering, and run-length coding. Each binary
// contains both directions (like libjpeg); the unused direction is cold.
//
//===----------------------------------------------------------------------===//

#include "workloads/Lib.h"
#include "workloads/Workloads.h"

using namespace vea;
using namespace vea::workloads;

static const uint32_t JpegMagic = 0x01BE6001u;

/// The classic JPEG zigzag order for an 8x8 block.
static std::vector<uint32_t> zigzagTable() {
  return {0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18,
          11, 4,  5,  12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
          13, 6,  7,  14, 21, 28, 35, 42, 49, 56, 57, 50, 43,
          36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59, 52, 45,
          38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};
}

/// A luminance-like quantization table (coarser at high frequencies).
static std::vector<uint32_t> quantTable() {
  std::vector<uint32_t> Q(64);
  for (unsigned I = 0; I != 64; ++I)
    Q[I] = 2 + (I / 8) + (I % 8);
  return Q;
}

static void addJpegCore(ProgramBuilder &PB) {
  addTickFunction(PB, "jpeg");
  PB.addDataWords("jpeg_zigzag", zigzagTable());
  PB.addDataWords("jpeg_quant", quantTable());
  PB.addBss("jpeg_tmp", 64 * 4); // one block of 32-bit coefficients

  // jpeg_fwdblock(src=r16, dst=r17): transform one 8x8 byte block into 64
  // quantized zigzagged signed bytes. A 2-stage butterfly per row, then
  // per column, stands in for the DCT.
  {
    FunctionBuilder F = PB.beginFunction("jpeg_fwdblock");
    // Rows: tmp[r*8+c] = butterfly of src bytes.
    F.li(1, 0); // row
    F.label("rows");
    F.slli(2, 1, 3);
    F.add(3, 16, 2); // src row base
    F.la(4, "jpeg_tmp");
    F.slli(5, 2, 2);
    F.add(4, 4, 5); // tmp row base (words)
    F.li(5, 0);     // pair index
    F.label("rpair");
    F.slli(6, 5, 1);
    F.add(7, 3, 6);
    F.ldb(7, 7, 0); // a
    F.add(8, 3, 6);
    F.ldb(8, 8, 1); // b
    F.add(2, 7, 8); // sum
    F.sub(7, 7, 8); // diff
    F.slli(6, 5, 2);
    F.add(8, 4, 6);
    F.stw(2, 8, 0); // tmp[pair] = sum
    F.stw(7, 8, 16); // tmp[pair+4] = diff
    F.addi(5, 5, 1);
    F.cmpulti(6, 5, 4);
    F.bne(6, "rpair");
    F.addi(1, 1, 1);
    F.cmpulti(6, 1, 8);
    F.bne(6, "rows");
    // Columns: in-place butterfly over tmp (stride 8 words).
    F.li(1, 0); // column
    F.label("cols");
    F.la(4, "jpeg_tmp");
    F.slli(2, 1, 2);
    F.add(4, 4, 2); // column base
    F.li(5, 0);
    F.label("cpair");
    F.slli(6, 5, 6); // pair * 2 rows * 8 words * 4 bytes
    F.add(7, 4, 6);
    F.ldw(2, 7, 0);  // a = tmp[2p][c]
    F.ldw(3, 7, 32); // b = tmp[2p+1][c]
    F.add(8, 2, 3);
    F.sub(2, 2, 3);
    F.stw(8, 7, 0);
    F.stw(2, 7, 32);
    F.addi(5, 5, 1);
    F.cmpulti(6, 5, 4);
    F.bne(6, "cpair");
    F.addi(1, 1, 1);
    F.cmpulti(6, 1, 8);
    F.bne(6, "cols");
    // Quantize + zigzag into dst bytes.
    F.li(1, 0);
    F.la(2, "jpeg_zigzag");
    F.la(3, "jpeg_quant");
    F.la(4, "jpeg_tmp");
    F.label("zq");
    F.slli(5, 1, 2);
    F.add(6, 2, 5);
    F.ldw(6, 6, 0); // zz index
    F.slli(6, 6, 2);
    F.add(6, 4, 6);
    F.ldw(6, 6, 0); // coefficient
    F.add(7, 3, 5);
    F.ldw(7, 7, 0); // quant step
    // Signed divide by the step (magnitude form).
    F.li(8, 0);
    F.bge(6, "qpos");
    F.li(8, 1);
    F.sub(6, 31, 6);
    F.label("qpos");
    F.udiv(6, 6, 7);
    F.cmplei(7, 6, 127);
    F.bne(7, "qcap");
    F.li(6, 127); // saturation: rare
    F.label("qcap");
    F.beq(8, "qstore");
    F.sub(6, 31, 6);
    F.label("qstore");
    F.add(7, 17, 1);
    F.stb(6, 7, 0);
    F.addi(1, 1, 1);
    F.cmpulti(7, 1, 64);
    F.bne(7, "zq");
    F.ret();
  }

  // jpeg_invblock(src=r16, dst=r17): approximate inverse (dequantize,
  // un-zigzag, inverse butterflies), emitting 64 bytes.
  {
    FunctionBuilder F = PB.beginFunction("jpeg_invblock");
    // Dequantize + un-zigzag into jpeg_tmp.
    F.li(1, 0);
    F.la(2, "jpeg_zigzag");
    F.la(3, "jpeg_quant");
    F.la(4, "jpeg_tmp");
    F.label("dz");
    F.add(5, 16, 1);
    F.ldb(5, 5, 0);
    F.slli(5, 5, 24);
    F.srai(5, 5, 24); // signed level
    F.slli(6, 1, 2);
    F.add(7, 3, 6);
    F.ldw(7, 7, 0);
    F.mul(5, 5, 7); // coefficient
    F.add(7, 2, 6);
    F.ldw(7, 7, 0); // zz index
    F.slli(7, 7, 2);
    F.add(7, 4, 7);
    F.stw(5, 7, 0);
    F.addi(1, 1, 1);
    F.cmpulti(7, 1, 64);
    F.bne(7, "dz");
    // Inverse column butterflies: a' = (a+b)/2, b' = (a-b)/2.
    F.li(1, 0);
    F.label("icols");
    F.la(4, "jpeg_tmp");
    F.slli(2, 1, 2);
    F.add(4, 4, 2);
    F.li(5, 0);
    F.label("icpair");
    F.slli(6, 5, 6);
    F.add(7, 4, 6);
    F.ldw(2, 7, 0);
    F.ldw(3, 7, 32);
    F.add(8, 2, 3);
    F.srai(8, 8, 1);
    F.sub(2, 2, 3);
    F.srai(2, 2, 1);
    F.stw(8, 7, 0);
    F.stw(2, 7, 32);
    F.addi(5, 5, 1);
    F.cmpulti(6, 5, 4);
    F.bne(6, "icpair");
    F.addi(1, 1, 1);
    F.cmpulti(6, 1, 8);
    F.bne(6, "icols");
    // Inverse rows, writing clamped bytes to dst.
    F.li(1, 0);
    F.label("irows");
    F.slli(2, 1, 3);
    F.add(3, 17, 2); // dst row base
    F.la(4, "jpeg_tmp");
    F.slli(5, 2, 2);
    F.add(4, 4, 5);
    F.li(5, 0);
    F.label("irpair");
    F.slli(6, 5, 2);
    F.add(7, 4, 6);
    F.ldw(2, 7, 0);  // sum
    F.ldw(8, 7, 16); // diff
    F.add(6, 2, 8);
    F.srai(6, 6, 1); // a
    F.sub(7, 2, 8);
    F.srai(7, 7, 1); // b
    F.andi(6, 6, 0xFF);
    F.andi(7, 7, 0xFF);
    F.slli(8, 5, 1);
    F.add(8, 3, 8);
    F.stb(6, 8, 0);
    F.stb(7, 8, 1);
    F.addi(5, 5, 1);
    F.cmpulti(6, 5, 4);
    F.bne(6, "irpair");
    F.addi(1, 1, 1);
    F.cmpulti(6, 1, 8);
    F.bne(6, "irows");
    F.ret();
  }

  // jpeg_encode(src=r16, nblocks=r17, dst=r18): transform every block,
  // then RLE-pack zero runs: (0x00, runlen) pairs, literals otherwise.
  // Returns r0 = encoded bytes.
  {
    FunctionBuilder F = PB.beginFunction("jpeg_encode");
    F.enter(24);
    F.stw(9, 30, 4);
    F.stw(10, 30, 8);
    F.stw(11, 30, 12);
    F.stw(12, 30, 16);
    F.mov(9, 16);  // src
    F.mov(10, 17); // blocks left
    F.mov(11, 18); // dst cursor
    F.mov(12, 18); // dst start
    F.beq(10, "done");
    F.label("block");
    F.andi(1, 10, 15);
    F.bne(1, "tickskip");
    emitTickCall(F, "jpeg");
    F.label("tickskip");
    F.mov(16, 9);
    F.la(17, "jpeg_stage"); // transform into the staging block, then pack
    F.call("jpeg_fwdblock");
    // Pack the 64 staged coefficient bytes: copy non-zeros, collapse zero
    // runs. Read cursor r1, write cursor r2, remaining r3.
    F.la(1, "jpeg_stage");
    F.mov(2, 11);
    F.li(3, 64);
    F.label("pack");
    F.ldb(4, 1, 0);
    F.bne(4, "lit");
    // Zero run.
    F.li(5, 0);
    F.label("zrun");
    F.ldb(4, 1, 0);
    F.bne(4, "zend");
    F.beq(3, "zend");
    F.addi(5, 5, 1);
    F.addi(1, 1, 1);
    F.subi(3, 3, 1);
    F.bne(3, "zrun");
    F.label("zend");
    F.li(4, 0);
    F.stb(4, 2, 0);
    F.stb(5, 2, 1);
    F.addi(2, 2, 2);
    F.bne(3, "pack");
    F.br("blockdone");
    F.label("lit");
    F.stb(4, 2, 0);
    F.addi(2, 2, 1);
    F.addi(1, 1, 1);
    F.subi(3, 3, 1);
    F.bne(3, "pack");
    F.label("blockdone");
    F.mov(11, 2);
    F.addi(9, 9, 64);
    F.subi(10, 10, 1);
    F.bne(10, "block");
    F.label("done");
    F.sub(0, 11, 12);
    F.ldw(9, 30, 4);
    F.ldw(10, 30, 8);
    F.ldw(11, 30, 12);
    F.ldw(12, 30, 16);
    F.leave(24);
  }

  // jpeg_decode(src=r16, len=r17, dst=r18) -> r0 = emitted bytes.
  // Unpacks the RLE stream into 64-byte coefficient blocks and inverse-
  // transforms each.
  {
    FunctionBuilder F = PB.beginFunction("jpeg_decode");
    F.enter(24);
    F.stw(9, 30, 4);
    F.stw(10, 30, 8);
    F.stw(11, 30, 12);
    F.stw(12, 30, 16);
    F.mov(9, 16);  // src cursor
    F.mov(10, 17); // bytes left
    F.mov(11, 18); // dst cursor
    F.mov(12, 18); // dst start
    F.label("block");
    F.beq(10, "done");
    F.srli(1, 11, 6);
    F.andi(1, 1, 15); // every 16 output blocks
    F.bne(1, "tickskip");
    emitTickCall(F, "jpeg");
    F.label("tickskip");
    // Unpack 64 coefficients into the byte staging area.
    F.la(1, "jpeg_stage");
    F.li(3, 64);
    F.label("unpack");
    F.beq(10, "fillz");
    F.ldb(4, 9, 0);
    F.addi(9, 9, 1);
    F.subi(10, 10, 1);
    F.bne(4, "ulit");
    // Zero run: next byte is the length.
    F.beq(10, "fillz");
    F.ldb(5, 9, 0);
    F.addi(9, 9, 1);
    F.subi(10, 10, 1);
    F.label("urun");
    F.beq(5, "unext");
    F.beq(3, "unext");
    F.li(4, 0);
    F.stb(4, 1, 0);
    F.addi(1, 1, 1);
    F.subi(3, 3, 1);
    F.subi(5, 5, 1);
    F.br("urun");
    F.label("ulit");
    F.stb(4, 1, 0);
    F.addi(1, 1, 1);
    F.subi(3, 3, 1);
    F.label("unext");
    F.bne(3, "unpack");
    F.br("expand");
    F.label("fillz"); // Truncated stream: pad with zeros (rare).
    F.beq(3, "expand");
    F.li(4, 0);
    F.stb(4, 1, 0);
    F.addi(1, 1, 1);
    F.subi(3, 3, 1);
    F.br("fillz");
    F.label("expand");
    F.la(16, "jpeg_stage");
    F.mov(17, 11);
    F.call("jpeg_invblock");
    F.addi(11, 11, 64);
    F.br("block");
    F.label("done");
    F.sub(0, 11, 12);
    F.ldw(9, 30, 4);
    F.ldw(10, 30, 8);
    F.ldw(11, 30, 12);
    F.ldw(12, 30, 16);
    F.leave(24);
  }
  PB.addBss("jpeg_stage", 64);
}

static Workload buildJpeg(bool Encode, double Scale) {
  std::string Name = Encode ? "jpeg_enc" : "jpeg_dec";
  ProgramBuilder PB(Name);
  addRuntimeLibrary(PB);
  addJpegCore(PB);
  addFilterFarm(PB, Name, 95, Encode ? 0x1BE6E : 0x1BE6D);
  PB.addBss("inbuf", 131072);
  PB.addBss("workbuf", 524288);
  PB.addBss("outbuf", 524288);

  {
    FunctionBuilder F = PB.beginFunction("main");
    emitReadFrame(F, JpegMagic, "inbuf", 131072);
    F.cmpulti(2, 10, 2);
    F.beq(2, "badmode");
    emitCalibration(F, Name, 95, 30, "inbuf");

    if (Encode) {
      F.srli(12, 11, 6); // whole 64-byte blocks
      F.la(16, "inbuf");
      F.mov(17, 12);
      F.la(18, "workbuf");
      F.call("jpeg_encode");
      F.mov(11, 0);
      // Timing mode decodes what was just encoded (cold in the profile).
      F.beq(10, "finish");
      F.la(16, "workbuf");
      F.mov(17, 11);
      F.la(18, "outbuf");
      F.call("jpeg_decode");
      F.mov(13, 0);
      F.andi(16, 13, 7);
      F.addi(16, 16, 60);
      F.la(17, "outbuf");
      F.li(18, 2048);
      F.call(Name + "_apply");
      F.br("finish");
    } else {
      F.la(16, "inbuf");
      F.mov(17, 11);
      F.la(18, "workbuf");
      F.call("jpeg_decode");
      F.mov(11, 0);
      // Timing mode re-encodes the decoded image (cold in the profile).
      F.beq(10, "finish");
      F.srli(12, 11, 6);
      F.la(16, "workbuf");
      F.mov(17, 12);
      F.la(18, "outbuf");
      F.call("jpeg_encode");
      F.mov(13, 0);
      F.andi(16, 13, 7);
      F.addi(16, 16, 60);
      F.la(17, "outbuf");
      F.li(18, 2048);
      F.call(Name + "_apply");
      F.br("finish");
    }

    F.label("badmode");
    F.li(16, 25);
    F.call("panic");
    F.halt();

    F.label("finish");
    emitChecksumAndHalt(F, "workbuf");
  }
  PB.setEntry("main");

  Workload W;
  W.Name = Name;
  W.Prog = PB.build();
  if (Encode) {
    W.ProfilingInput = frameInput(
        JpegMagic, 1,
        makeImagePayload(256, static_cast<unsigned>(360 * Scale) + 8,
                         0x1BE6E1));
    W.TimingInput = frameInput(
        JpegMagic, 1,
        makeImagePayload(256, static_cast<unsigned>(440 * Scale) + 8,
                         0x1BE6E2));
    W.ProfilingInputName = "testimg.ppm (synthetic, encode)";
    W.TimingInputName = "roses17.ppm (synthetic, encode+decode)";
  } else {
    // The decoder consumes an RLE coefficient stream; synthesize one by
    // byte-wise construction (literals and zero runs).
    auto MakeStream = [](size_t Bytes, uint64_t Seed) {
      Rng R(Seed);
      std::vector<uint8_t> S;
      S.reserve(Bytes);
      while (S.size() < Bytes) {
        if (R.chance(2, 5)) {
          S.push_back(0);
          S.push_back(static_cast<uint8_t>(R.nextBelow(12) + 1));
        } else {
          S.push_back(static_cast<uint8_t>(R.nextBelow(39) + 1));
        }
      }
      return S;
    };
    W.ProfilingInput = frameInput(
        JpegMagic, 1,
        MakeStream(static_cast<size_t>(56000 * Scale) + 256, 0x1BE6D1));
    W.TimingInput = frameInput(
        JpegMagic, 1,
        MakeStream(static_cast<size_t>(72000 * Scale) + 256, 0x1BE6D2));
    W.ProfilingInputName = "testimg.jpg (synthetic, decode)";
    W.TimingInputName = "roses17.jpg (synthetic, decode+encode)";
  }
  return W;
}

Workload vea::workloads::buildJpegEnc(double Scale) {
  return buildJpeg(true, Scale);
}

Workload vea::workloads::buildJpegDec(double Scale) {
  return buildJpeg(false, Scale);
}
