//===- workloads/G721.cpp - G.721-style adaptive codec workloads ----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Mirrors MediaBench `g721_enc` / `g721_dec`: an ADPCM codec with an
// adaptive quantizer scale and an adaptive one-pole predictor. Like the
// Sun reference implementation, each binary links both directions; the
// unused direction is cold code.
//
//===----------------------------------------------------------------------===//

#include "workloads/Lib.h"
#include "workloads/Workloads.h"

using namespace vea;
using namespace vea::workloads;

static const uint32_t G721Magic = 0x60721001u;

/// Emits the shared predictor/quantizer state update. Inputs: q (signed
/// quantizer level) in r5, scale in r4. State registers: y1=r19, y2=r20,
/// a1=r21, scale=r4 (written back to r4), last sign=r22.
/// Clobbers r6, r7, r8. Labels prefixed by \p P.
static void emitG721Update(FunctionBuilder &F, const std::string &P) {
  // recon = pred(r18? no: caller) ... caller computes recon; here we adapt.
  // |q| drives the scale adaptation.
  F.mov(6, 5);
  F.bge(6, P + "_qa");
  F.sub(6, 31, 6);
  F.label(P + "_qa");
  // Large levels: grow the scale (scale = scale * 5 / 4, capped).
  F.cmplei(7, 6, 5);
  F.bne(7, P + "_nogrow");
  F.muli(4, 4, 5);
  F.srli(4, 4, 2);
  F.li(7, 16384);
  F.cmple(8, 4, 7);
  F.bne(8, P + "_nogrow");
  F.mov(4, 7);
  F.label(P + "_nogrow");
  // Small levels: shrink the scale (scale = scale * 3 / 4, floored).
  F.cmplei(7, 6, 1);
  F.beq(7, P + "_noshrink");
  F.muli(4, 4, 3);
  F.srli(4, 4, 2);
  F.cmplei(7, 4, 3);
  F.beq(7, P + "_noshrink");
  F.li(4, 4);
  F.label(P + "_noshrink");
  // Pole adaptation: same-sign runs strengthen the predictor.
  F.li(7, 0);
  F.bge(5, P + "_sgn");
  F.li(7, 1);
  F.label(P + "_sgn");
  F.cmpeq(8, 7, 22);
  F.beq(8, P + "_flip");
  F.addi(21, 21, 4);
  F.cmplei(8, 21, 200);
  F.bne(8, P + "_adone");
  F.li(21, 200);
  F.br(P + "_adone");
  F.label(P + "_flip");
  F.subi(21, 21, 8);
  F.bge(21, P + "_adone");
  F.li(21, 0);
  F.label(P + "_adone");
  F.mov(22, 7);
}

/// Emits pred = y1 + ((y1 - y2) * a1) >> 8 into r3. Clobbers r6.
static void emitG721Pred(FunctionBuilder &F) {
  F.sub(6, 19, 20);
  F.mul(6, 6, 21);
  F.srai(6, 6, 8);
  F.add(3, 19, 6);
}

static void addG721Core(ProgramBuilder &PB, const std::string &Tick) {
  // g721_encode(src=r16, nsamples=r17, dst=r18) -> r0 = bytes (1/sample).
  {
    FunctionBuilder F = PB.beginFunction("g721_encode");
    F.mov(23, 18);
    F.li(19, 0);  // y1
    F.li(20, 0);  // y2
    F.li(21, 64); // a1
    F.li(22, 0);  // last sign
    F.li(4, 16);  // scale
    F.beq(17, "done");
    F.label("loop");
    F.andi(6, 17, 255);
    F.bne(6, "tickskip");
    emitTickCall(F, Tick);
    F.label("tickskip");
    F.ldb(1, 16, 0);
    F.ldb(2, 16, 1);
    F.slli(2, 2, 8);
    F.or_(1, 1, 2);
    F.slli(1, 1, 16);
    F.srai(1, 1, 16);
    F.addi(16, 16, 2);
    emitG721Pred(F); // pred -> r3
    F.sub(2, 1, 3);  // diff
    // q = clamp(diff * 4 / scale, -8..7), computed on |diff|.
    F.slli(5, 2, 2);
    F.li(7, 0);
    F.bge(5, "qpos");
    F.li(7, 1);
    F.sub(5, 31, 5);
    F.label("qpos");
    F.udiv(5, 5, 4);
    F.cmplei(6, 5, 7);
    F.bne(6, "qcap");
    F.li(5, 7);
    F.label("qcap");
    F.beq(7, "qsigned");
    F.sub(5, 31, 5);
    F.label("qsigned");
    // recon = pred + (q * scale) >> 2; update taps.
    F.mul(6, 5, 4);
    F.srai(6, 6, 2);
    F.add(6, 3, 6);
    F.mov(20, 19);
    F.mov(19, 6);
    emitG721Update(F, "e");
    // Emit the level as a signed nibble in a byte.
    F.andi(6, 5, 15);
    F.stb(6, 18, 0);
    F.addi(18, 18, 1);
    F.subi(17, 17, 1);
    F.bne(17, "loop");
    F.label("done");
    F.sub(0, 18, 23);
    F.ret();
  }

  // g721_decode(src=r16, ncodes=r17, dst=r18) -> r0 = bytes (2/code).
  {
    FunctionBuilder F = PB.beginFunction("g721_decode");
    F.mov(23, 18);
    F.li(19, 0);
    F.li(20, 0);
    F.li(21, 64);
    F.li(22, 0);
    F.li(4, 16);
    F.beq(17, "done");
    F.label("loop");
    F.andi(6, 17, 255);
    F.bne(6, "tickskip");
    emitTickCall(F, Tick);
    F.label("tickskip");
    F.ldb(5, 16, 0);
    F.addi(16, 16, 1);
    F.slli(5, 5, 28); // sign-extend the 4-bit level
    F.srai(5, 5, 28);
    emitG721Pred(F);
    F.mul(6, 5, 4);
    F.srai(6, 6, 2);
    F.add(6, 3, 6);
    F.mov(20, 19);
    F.mov(19, 6);
    emitG721Update(F, "d");
    F.stb(19, 18, 0);
    F.srai(6, 19, 8);
    F.stb(6, 18, 1);
    F.addi(18, 18, 2);
    F.subi(17, 17, 1);
    F.bne(17, "loop");
    F.label("done");
    F.sub(0, 18, 23);
    F.ret();
  }
}

/// Shared main generator: \p Encode selects which direction is the hot
/// mode-0 path; mode 1 runs the full round trip (the timing mode); mode 2
/// is a never-exercised diagnostics dump.
static void addG721Main(ProgramBuilder &PB, bool Encode,
                        const std::string &Farm) {
  FunctionBuilder F = PB.beginFunction("main");
  emitReadFrame(F, G721Magic, "inbuf", 131072);
  F.cmpulti(2, 10, 3);
  F.beq(2, "badmode");
  emitCalibration(F, Farm, 60, 20, "inbuf");
  F.mov(1, 10);
  F.switchJump(1, 2, "modes", {"m_primary", "m_roundtrip", "m_dump"});

  F.label("m_primary");
  F.la(16, "inbuf");
  if (Encode) {
    F.srli(17, 11, 1);
    F.la(18, "workbuf");
    F.call("g721_encode");
  } else {
    F.mov(17, 11);
    F.la(18, "workbuf");
    F.call("g721_decode");
  }
  F.mov(11, 0);
  F.br("finish");

  F.label("m_roundtrip");
  F.la(16, "inbuf");
  if (Encode) {
    F.srli(17, 11, 1);
    F.la(18, "workbuf");
    F.call("g721_encode");
    F.mov(13, 0);
    F.la(16, "workbuf");
    F.mov(17, 13);
    F.la(18, "outbuf");
    F.call("g721_decode"); // Cold under the profiling input.
  } else {
    F.mov(17, 11);
    F.la(18, "workbuf");
    F.call("g721_decode");
    F.mov(13, 0);
    F.la(16, "workbuf");
    F.srli(17, 13, 1);
    F.la(18, "outbuf");
    F.call("g721_encode"); // Cold under the profiling input.
  }
  F.mov(13, 0);
  F.andi(16, 11, 3);
  F.addi(16, 16, 45);
  F.la(17, "outbuf");
  F.li(18, 2048);
  F.call(Farm + "_apply");
  F.la(16, "workbuf");
  F.la(17, "outbuf");
  F.mov(18, 13);
  F.call("memcpy");
  F.mov(11, 13);
  F.br("finish");

  F.label("m_dump"); // Never exercised.
  F.la(16, "inbuf");
  F.mov(17, 11);
  F.call("crc32");
  F.mov(16, 0);
  F.sys(SysFunc::PutInt);
  F.la(16, "inbuf");
  F.mov(17, 11);
  F.call("isort_w");
  F.li(16, 1);
  F.halt();

  F.label("badmode");
  F.li(16, 22);
  F.call("panic");
  F.halt();

  F.label("finish");
  emitChecksumAndHalt(F, "workbuf");
}

static Workload buildG721(bool Encode, double Scale) {
  std::string Name = Encode ? "g721_enc" : "g721_dec";
  ProgramBuilder PB(Name);
  addRuntimeLibrary(PB);
  addTickFunction(PB, Name);
  addG721Core(PB, Name);
  addFilterFarm(PB, Name, 60, Encode ? 0x60721E : 0x60721D);
  PB.addBss("inbuf", 131072);
  PB.addBss("workbuf", 131072);
  PB.addBss("outbuf", 131072);
  addG721Main(PB, Encode, Name);
  PB.setEntry("main");

  Workload W;
  W.Name = Name;
  W.Prog = PB.build();
  if (Encode) {
    W.ProfilingInput = frameInput(
        G721Magic, 0,
        makeAudioPayload(static_cast<size_t>(36000 * Scale), 0x7210E1));
    W.TimingInput = frameInput(
        G721Magic, 1,
        makeAudioPayload(static_cast<size_t>(48000 * Scale), 0x7210E2));
    W.ProfilingInputName = "clinton.pcm (synthetic, encode)";
    W.TimingInputName = "mlk_speech.pcm (synthetic, round trip)";
  } else {
    // The decoder consumes a stream of 4-bit levels; synthetic level
    // streams stand in for clinton.g721 / mlk_speech.g721.
    Rng R(0x7210D1);
    std::vector<uint8_t> Prof, Time;
    for (size_t I = 0; I != static_cast<size_t>(50000 * Scale); ++I)
      Prof.push_back(static_cast<uint8_t>(R.nextBelow(16)));
    Rng R2(0x7210D2);
    for (size_t I = 0; I != static_cast<size_t>(64000 * Scale); ++I)
      Time.push_back(static_cast<uint8_t>(R2.nextBelow(16)));
    W.ProfilingInput = frameInput(G721Magic, 0, Prof);
    W.TimingInput = frameInput(G721Magic, 1, Time);
    W.ProfilingInputName = "clinton.g721 (synthetic, decode)";
    W.TimingInputName = "mlk_speech.g721 (synthetic, round trip)";
  }
  return W;
}

Workload vea::workloads::buildG721Enc(double Scale) {
  return buildG721(true, Scale);
}

Workload vea::workloads::buildG721Dec(double Scale) {
  return buildG721(false, Scale);
}
