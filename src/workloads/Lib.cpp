//===- workloads/Lib.cpp - Mini runtime library for workloads -------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "workloads/Lib.h"

using namespace vea;
using namespace vea::workloads;

/// Precomputed CRC-32 (polynomial 0xEDB88320) table.
static std::vector<uint32_t> crcTable() {
  std::vector<uint32_t> T(256);
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : (C >> 1);
    T[I] = C;
  }
  return T;
}

void vea::workloads::addRuntimeLibrary(ProgramBuilder &PB) {
  PB.addDataWords("crc32_table", crcTable());
  PB.addDataWords("rand_state", {0x12345678u});

  // memcpy(dst=r16, src=r17, n=r18)
  {
    FunctionBuilder F = PB.beginFunction("memcpy");
    F.beq(18, "done");
    F.label("loop");
    F.ldb(1, 17, 0);
    F.stb(1, 16, 0);
    F.addi(16, 16, 1);
    F.addi(17, 17, 1);
    F.subi(18, 18, 1);
    F.bne(18, "loop");
    F.label("done");
    F.ret();
  }

  // memset(dst=r16, val=r17, n=r18)
  {
    FunctionBuilder F = PB.beginFunction("memset");
    F.beq(18, "done");
    F.label("loop");
    F.stb(17, 16, 0);
    F.addi(16, 16, 1);
    F.subi(18, 18, 1);
    F.bne(18, "loop");
    F.label("done");
    F.ret();
  }

  // read_block(dst=r16, n=r17) -> r0 = bytes actually read.
  {
    FunctionBuilder F = PB.beginFunction("read_block");
    F.li(0, 0);
    F.beq(17, "done");
    F.mov(2, 16);           // cursor
    F.mov(3, 17);           // remaining
    F.label("loop");
    F.mov(4, 0);            // save count across the syscall clobber of r0
    F.sys(SysFunc::GetChar);
    F.mov(5, 0);
    F.mov(0, 4);
    F.li(6, -1);
    F.cmpeq(6, 5, 6);
    F.bne(6, "done");       // end of input
    F.stb(5, 2, 0);
    F.addi(2, 2, 1);
    F.addi(0, 0, 1);
    F.subi(3, 3, 1);
    F.bne(3, "loop");
    F.label("done");
    F.ret();
  }

  // write_block(src=r16, n=r17)
  {
    FunctionBuilder F = PB.beginFunction("write_block");
    F.beq(17, "done");
    F.mov(2, 16);
    F.mov(3, 17);
    F.label("loop");
    F.ldb(16, 2, 0);
    F.sys(SysFunc::PutChar);
    F.addi(2, 2, 1);
    F.subi(3, 3, 1);
    F.bne(3, "loop");
    F.label("done");
    F.ret();
  }

  // crc32(buf=r16, n=r17) -> r0
  {
    FunctionBuilder F = PB.beginFunction("crc32");
    F.li(0, -1); // crc = 0xFFFFFFFF
    F.la(2, "crc32_table");
    F.beq(17, "done");
    F.label("loop");
    F.ldb(3, 16, 0);        // byte
    F.xor_(4, 0, 3);
    F.andi(4, 4, 0xFF);
    F.slli(4, 4, 2);
    F.add(4, 2, 4);
    F.ldw(4, 4, 0);         // table[(crc ^ b) & 0xFF]
    F.srli(0, 0, 8);
    F.xor_(0, 0, 4);
    F.addi(16, 16, 1);
    F.subi(17, 17, 1);
    F.bne(17, "loop");
    F.label("done");
    F.li(2, -1);
    F.xor_(0, 0, 2);
    F.ret();
  }

  // rand_seed(s=r16)
  {
    FunctionBuilder F = PB.beginFunction("rand_seed");
    F.la(1, "rand_state");
    F.ori(2, 16, 1);        // Never let the state become zero.
    F.stw(2, 1, 0);
    F.ret();
  }

  // rand_next() -> r0 (xorshift32)
  {
    FunctionBuilder F = PB.beginFunction("rand_next");
    F.la(1, "rand_state");
    F.ldw(0, 1, 0);
    F.slli(2, 0, 13);
    F.xor_(0, 0, 2);
    F.srli(2, 0, 17);
    F.xor_(0, 0, 2);
    F.slli(2, 0, 5);
    F.xor_(0, 0, 2);
    F.stw(0, 1, 0);
    F.ret();
  }

  // isort_w(buf=r16, n=r17): insertion sort of n words.
  {
    FunctionBuilder F = PB.beginFunction("isort_w");
    F.cmpulei(1, 17, 1);
    F.bne(1, "done");
    F.li(2, 1); // i
    F.label("outer");
    F.slli(3, 2, 2);
    F.add(3, 16, 3);
    F.ldw(4, 3, 0); // key
    F.mov(5, 3);    // insertion cursor (byte address of slot i)
    F.label("inner");
    F.ldw(6, 5, -4);
    F.cmple(7, 6, 4); // buf[j-1] <= key?
    F.bne(7, "place");
    F.stw(6, 5, 0);
    F.subi(5, 5, 4);
    F.sub(7, 5, 16);
    F.bne(7, "inner");
    F.label("place");
    F.stw(4, 5, 0);
    F.addi(2, 2, 1);
    F.cmpult(1, 2, 17);
    F.bne(1, "outer");
    F.label("done");
    F.ret();
  }

  // abs32(x=r16) -> r0
  {
    FunctionBuilder F = PB.beginFunction("abs32");
    F.mov(0, 16);
    F.bge(0, "done");
    F.sub(0, 31, 0); // 0 - x
    F.label("done");
    F.ret();
  }

  // clamp(x=r16, lo=r17, hi=r18) -> r0
  {
    FunctionBuilder F = PB.beginFunction("clamp");
    F.mov(0, 16);
    F.sub(1, 0, 17);
    F.bge(1, "not_low");
    F.mov(0, 17);
    F.ret();
    F.label("not_low");
    F.sub(1, 18, 0);
    F.bge(1, "done");
    F.mov(0, 18);
    F.label("done");
    F.ret();
  }

  // panic(code=r16): diagnostic exit. Cold in every workload.
  {
    FunctionBuilder F = PB.beginFunction("panic");
    F.sys(SysFunc::PutInt);
    F.li(16, 255);
    F.halt();
  }
}
