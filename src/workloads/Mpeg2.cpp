//===- workloads/Mpeg2.cpp - Motion-compensated codec workloads -----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Mirrors MediaBench `mpeg2enc` / `mpeg2dec`: per-frame motion estimation
// against a reference frame, residual coding, and motion-compensated
// reconstruction. Frames are 64x32 bytes; blocks are 8x8. The encoder
// binary carries the decoder (cold) and vice versa; timing inputs run the
// round trip.
//
//===----------------------------------------------------------------------===//

#include "workloads/Lib.h"
#include "workloads/Workloads.h"

using namespace vea;
using namespace vea::workloads;

static const uint32_t Mpeg2Magic = 0x3BE62001u;
static const unsigned FrameW = 64;
static const unsigned FrameH = 32;
static const unsigned FrameBytes = FrameW * FrameH;

static void addMpeg2Core(ProgramBuilder &PB) {
  PB.addBss("mp2_ref", FrameBytes);   // reference (previous) frame
  PB.addBss("mp2_rec", FrameBytes);   // reconstruction scratch

  // mp2_sad(a=r16, b=r17, stride=r18) -> r0: sum of absolute differences
  // over an 8x8 block. The hot inner kernel of motion estimation.
  {
    FunctionBuilder F = PB.beginFunction("mp2_sad");
    F.li(0, 0);
    F.li(1, 8); // rows
    F.label("row");
    F.li(2, 8); // cols
    F.mov(3, 16);
    F.mov(4, 17);
    F.label("col");
    F.ldb(5, 3, 0);
    F.ldb(6, 4, 0);
    F.sub(5, 5, 6);
    F.bge(5, "abs");
    F.sub(5, 31, 5);
    F.label("abs");
    F.add(0, 0, 5);
    F.addi(3, 3, 1);
    F.addi(4, 4, 1);
    F.subi(2, 2, 1);
    F.bne(2, "col");
    F.add(16, 16, 18);
    F.add(17, 17, 18);
    F.subi(1, 1, 1);
    F.bne(1, "row");
    F.ret();
  }

  // mp2_motion(cur=r16, refbase=r17) -> r0 = best candidate index (0..3).
  // Candidates are offsets {0, 1, FrameW, FrameW+1} into the reference.
  {
    FunctionBuilder F = PB.beginFunction("mp2_motion");
    F.enter(24);
    F.stw(9, 30, 4);
    F.stw(10, 30, 8);
    F.stw(11, 30, 12);
    F.stw(12, 30, 16);
    F.stw(13, 30, 20);
    F.mov(9, 16);       // cur
    F.mov(10, 17);      // ref base
    F.li(11, 0);        // best index
    F.li(12, 0x7FFFFF); // best SAD
    F.li(13, 0);        // candidate (mp2_sad leaves r9..r15 alone)
    F.label("cand");
    // offset = (cand & 1) + (cand >> 1) * FrameW
    F.andi(1, 13, 1);
    F.srli(2, 13, 1);
    F.muli(2, 2, FrameW);
    F.add(1, 1, 2);
    F.add(17, 10, 1);
    F.mov(16, 9);
    F.li(18, FrameW);
    F.call("mp2_sad");
    F.cmplt(1, 0, 12);
    F.beq(1, "worse");
    F.mov(12, 0);
    F.mov(11, 13);
    F.label("worse");
    F.addi(13, 13, 1);
    F.cmpulti(1, 13, 4);
    F.bne(1, "cand");
    F.mov(0, 11);
    F.ldw(9, 30, 4);
    F.ldw(10, 30, 8);
    F.ldw(11, 30, 12);
    F.ldw(12, 30, 16);
    F.ldw(13, 30, 20);
    F.leave(24);
  }

  // mp2_residual(cur=r16, pred=r17, dst=r18): dst = clamp(cur - pred)
  // over an 8x8 block, quantized by >>1 (stride FrameW on inputs, packed
  // 8 bytes per row on output).
  {
    FunctionBuilder F = PB.beginFunction("mp2_residual");
    F.li(1, 8);
    F.label("row");
    F.li(2, 8);
    F.mov(3, 16);
    F.mov(4, 17);
    F.label("col");
    F.ldb(5, 3, 0);
    F.ldb(6, 4, 0);
    F.sub(5, 5, 6);
    F.srai(5, 5, 1);
    F.andi(5, 5, 0xFF);
    F.stb(5, 18, 0);
    F.addi(18, 18, 1);
    F.addi(3, 3, 1);
    F.addi(4, 4, 1);
    F.subi(2, 2, 1);
    F.bne(2, "col");
    F.addi(16, 16, FrameW);
    F.addi(17, 17, FrameW);
    F.subi(1, 1, 1);
    F.bne(1, "row");
    F.ret();
  }

  // mp2_compensate(res=r16, pred=r17, dst=r18): reconstruction
  // dst = pred + 2 * sext(res), strides as in mp2_residual reversed.
  {
    FunctionBuilder F = PB.beginFunction("mp2_compensate");
    F.li(1, 8);
    F.label("row");
    F.li(2, 8);
    F.mov(4, 17);
    F.mov(5, 18);
    F.label("col");
    F.ldb(6, 16, 0);
    F.slli(6, 6, 24);
    F.srai(6, 6, 23); // 2 * sext(res)
    F.ldb(7, 4, 0);
    F.add(6, 6, 7);
    F.andi(6, 6, 0xFF);
    F.stb(6, 5, 0);
    F.addi(16, 16, 1);
    F.addi(4, 4, 1);
    F.addi(5, 5, 1);
    F.subi(2, 2, 1);
    F.bne(2, "col");
    F.addi(17, 17, FrameW - 8);
    F.addi(18, 18, FrameW - 8);
    F.subi(1, 1, 1);
    F.bne(1, "row");
    F.ret();
  }
}

static Workload buildMpeg2(bool Encode, double Scale) {
  std::string Name = Encode ? "mpeg2enc" : "mpeg2dec";
  ProgramBuilder PB(Name);
  addRuntimeLibrary(PB);
  addTickFunction(PB, Name);
  addMpeg2Core(PB);
  addFilterFarm(PB, Name, 95, Encode ? 0x3BE62E : 0x3BE62D);
  PB.addBss("inbuf", 131072);
  PB.addBss("workbuf", 262144);

  // Encoder: for every frame, for every 8x8 block: motion-estimate against
  // the reference, write [mv byte][32 packed residual bytes... actually 64]
  // to the output, reconstruct into mp2_rec, then promote mp2_rec to
  // mp2_ref. Decoder consumes that stream.
  //
  // mp2_encframe(src=r16, dst=r17) -> r0 = bytes written (65 per block).
  {
    FunctionBuilder F = PB.beginFunction("mp2_encframe");
    F.enter(32);
    F.stw(9, 30, 4);
    F.stw(10, 30, 8);
    F.stw(11, 30, 12);
    F.stw(12, 30, 16);
    F.stw(13, 30, 20);
    F.stw(14, 30, 24);
    F.mov(9, 16);  // src frame
    F.mov(10, 17); // dst cursor
    F.mov(14, 17); // dst start
    F.li(11, 0);   // block row
    F.label("brow");
    emitTickCall(F, Name);
    F.li(12, 0); // block col
    F.label("bcol");
    // cur = src + brow*8*FrameW + bcol*8
    F.slli(1, 11, 9); // * 8 * FrameW
    F.slli(2, 12, 3);
    F.add(1, 1, 2);
    F.add(13, 9, 1); // cur block
    F.mov(16, 13);
    F.la(17, "mp2_ref");
    F.slli(1, 11, 9); // * 8 * FrameW
    F.slli(2, 12, 3);
    F.add(1, 1, 2);
    F.add(17, 17, 1);
    F.mov(16, 13);
    F.call("mp2_motion");
    // Emit the motion vector byte.
    F.stb(0, 10, 0);
    F.addi(10, 10, 1);
    // pred = ref block + candidate offset.
    F.andi(1, 0, 1);
    F.srli(2, 0, 1);
    F.muli(2, 2, FrameW);
    F.add(1, 1, 2);
    F.la(17, "mp2_ref");
    F.slli(2, 11, 9); // * 8 * FrameW
    F.add(17, 17, 2);
    F.slli(2, 12, 3);
    F.add(17, 17, 2);
    F.add(17, 17, 1);
    F.mov(16, 13);
    F.mov(18, 10);
    F.mov(8, 17) /* keep pred for reconstruction */;
    F.call("mp2_residual");
    // Reconstruct into mp2_rec (so encoder and decoder references match).
    F.mov(16, 10); // residual bytes just written
    F.mov(17, 8);
    F.la(18, "mp2_rec");
    F.slli(1, 11, 9); // * 8 * FrameW
    F.add(18, 18, 1);
    F.slli(1, 12, 3);
    F.add(18, 18, 1);
    F.call("mp2_compensate");
    F.addi(10, 10, 64);
    F.addi(12, 12, 1);
    F.cmpulti(1, 12, FrameW / 8);
    F.bne(1, "bcol");
    F.addi(11, 11, 1);
    F.cmpulti(1, 11, FrameH / 8);
    F.bne(1, "brow");
    // Promote the reconstruction to the reference.
    F.la(16, "mp2_ref");
    F.la(17, "mp2_rec");
    F.li(18, FrameBytes);
    F.call("memcpy");
    F.sub(0, 10, 14);
    F.ldw(9, 30, 4);
    F.ldw(10, 30, 8);
    F.ldw(11, 30, 12);
    F.ldw(12, 30, 16);
    F.ldw(13, 30, 20);
    F.ldw(14, 30, 24);
    F.leave(32);
  }

  // mp2_decframe(src=r16, dst=r17) -> r0 = bytes consumed.
  {
    FunctionBuilder F = PB.beginFunction("mp2_decframe");
    F.enter(32);
    F.stw(9, 30, 4);
    F.stw(10, 30, 8);
    F.stw(11, 30, 12);
    F.stw(12, 30, 16);
    F.stw(13, 30, 20);
    F.mov(9, 16);  // src cursor
    F.mov(13, 16); // src start
    F.mov(10, 17); // dst frame
    F.li(11, 0);
    F.label("brow");
    emitTickCall(F, Name);
    F.li(12, 0);
    F.label("bcol");
    F.ldb(1, 9, 0); // motion vector byte
    F.addi(9, 9, 1);
    // pred = ref + block offset + mv offset
    F.andi(2, 1, 1);
    F.srli(1, 1, 1);
    F.muli(1, 1, FrameW);
    F.add(2, 2, 1);
    F.la(17, "mp2_ref");
    F.slli(1, 11, 9); // * 8 * FrameW
    F.add(17, 17, 1);
    F.slli(1, 12, 3);
    F.add(17, 17, 1);
    F.add(17, 17, 2);
    F.mov(16, 9);
    F.mov(18, 10);
    F.slli(1, 11, 9); // * 8 * FrameW
    F.add(18, 18, 1);
    F.slli(1, 12, 3);
    F.add(18, 18, 1);
    F.call("mp2_compensate");
    F.addi(9, 9, 64);
    F.addi(12, 12, 1);
    F.cmpulti(1, 12, FrameW / 8);
    F.bne(1, "bcol");
    F.addi(11, 11, 1);
    F.cmpulti(1, 11, FrameH / 8);
    F.bne(1, "brow");
    // The decoded frame becomes the new reference.
    F.la(16, "mp2_ref");
    F.mov(17, 10);
    F.li(18, FrameBytes);
    F.call("memcpy");
    F.sub(0, 9, 13);
    F.ldw(9, 30, 4);
    F.ldw(10, 30, 8);
    F.ldw(11, 30, 12);
    F.ldw(12, 30, 16);
    F.ldw(13, 30, 20);
    F.leave(32);
  }

  {
    FunctionBuilder F = PB.beginFunction("main");
    emitReadFrame(F, Mpeg2Magic, "inbuf", 131072);
    F.cmpulti(2, 10, 2);
    F.beq(2, "badmode");
    emitCalibration(F, Name, 95, 30, "inbuf");
    F.li(2, FrameBytes);
    F.udiv(13, 11, 2); // whole frames in the payload
    F.la(12, "inbuf");
    F.la(14, "workbuf");
    F.li(15, 0); // total output bytes
    F.beq(13, "done");

    F.label("frame");
    F.mov(16, 12);
    F.mov(17, 14);
    if (Encode)
      F.call("mp2_encframe");
    else
      F.call("mp2_decframe");
    if (Encode) {
      F.add(14, 14, 0);
      F.add(15, 15, 0);
      F.lda(12, 12, FrameBytes);
    } else {
      // Decoder input is a 65-bytes-per-block stream per frame.
      F.add(12, 12, 0);
      F.lda(14, 14, FrameBytes);
      F.lda(15, 15, FrameBytes);
    }
    F.subi(13, 13, 1);
    F.bne(13, "frame");

    F.label("done");
    F.mov(11, 15);
    // Timing mode: run the opposite direction over the result (cold).
    F.beq(10, "finish");
    if (Encode) {
      F.la(16, "workbuf");
      F.la(17, "inbuf"); // reuse as the decode target
      F.call("mp2_decframe");
    } else {
      F.la(16, "workbuf");
      F.la(17, "inbuf");
      F.call("mp2_encframe");
    }
    F.andi(16, 11, 7);
    F.addi(16, 16, 60);
    F.la(17, "workbuf");
    F.li(18, 2048);
    F.call(Name + "_apply");

    F.label("finish");
    emitChecksumAndHalt(F, "workbuf");

    F.label("badmode");
    F.li(16, 26);
    F.call("panic");
    F.halt();
  }
  PB.setEntry("main");

  Workload W;
  W.Name = Name;
  W.Prog = PB.build();
  auto Frames = [&](double N) {
    return makeImagePayload(FrameW,
                            FrameH * static_cast<unsigned>(N * Scale + 1),
                            Encode ? 0x3BE6E1 : 0x3BE6D1);
  };
  if (Encode) {
    W.ProfilingInput = frameInput(Mpeg2Magic, 0, Frames(40));
    W.TimingInput = frameInput(Mpeg2Magic, 1, Frames(52));
    W.ProfilingInputName = "sarnoff2.m2v (synthetic, encode)";
    W.TimingInputName = "tceh_v2.m2v (synthetic, encode+decode)";
  } else {
    // Decoder streams: 65 bytes per block, FrameBytes/64 blocks per frame.
    auto Stream = [&](unsigned NFrames, uint64_t Seed) {
      Rng R(Seed);
      std::vector<uint8_t> S;
      unsigned Blocks = FrameBytes / 64;
      for (unsigned Fr = 0; Fr != NFrames; ++Fr)
        for (unsigned B = 0; B != Blocks; ++B) {
          S.push_back(static_cast<uint8_t>(R.nextBelow(4)));
          for (unsigned I = 0; I != 64; ++I)
            S.push_back(static_cast<uint8_t>(R.nextBelow(9)) - 4);
        }
      return S;
    };
    // Frame count chosen so the stream is an exact multiple of FrameBytes
    // per the header's frame arithmetic below.
    W.ProfilingInput = frameInput(
        Mpeg2Magic, 0, Stream(static_cast<unsigned>(40 * Scale + 1), 0x3BD1));
    W.TimingInput = frameInput(
        Mpeg2Magic, 1, Stream(static_cast<unsigned>(52 * Scale + 1), 0x3BD2));
    W.ProfilingInputName = "sarnoff2.m2v (synthetic, decode)";
    W.TimingInputName = "tceh_v2.m2v (synthetic, decode+encode)";
  }
  return W;
}

Workload vea::workloads::buildMpeg2Enc(double Scale) {
  return buildMpeg2(true, Scale);
}

Workload vea::workloads::buildMpeg2Dec(double Scale) {
  return buildMpeg2(false, Scale);
}
