//===- workloads/Workloads.cpp - The MediaBench-analog suite --------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace vea;
using namespace vea::workloads;

std::vector<Workload> vea::workloads::buildAllWorkloads(double Scale) {
  std::vector<Workload> All;
  All.push_back(buildAdpcm(Scale));
  All.push_back(buildEpic(Scale));
  All.push_back(buildG721Dec(Scale));
  All.push_back(buildG721Enc(Scale));
  All.push_back(buildGsm(Scale));
  All.push_back(buildJpegDec(Scale));
  All.push_back(buildJpegEnc(Scale));
  All.push_back(buildMpeg2Dec(Scale));
  All.push_back(buildMpeg2Enc(Scale));
  All.push_back(buildPgp(Scale));
  All.push_back(buildRasta(Scale));
  return All;
}
