//===- workloads/Lib.h - Mini runtime library for workloads ----*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small "libc" emitted into every workload program, playing the role the
/// statically linked C library plays in the paper's MediaBench binaries:
/// shared leaf routines, some hot (memcpy, crc32), some cold (panic,
/// sorting), all candidates for profile-guided compression like any other
/// code.
///
/// Calling convention: arguments in r16..r21, result in r0, r1..r8 and
/// r16..r21 are caller-saved, r9..r15 are callee-saved (library routines
/// simply never touch them), r25 is reserved for squash stubs, r26 is the
/// return address, r30 the stack pointer.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_WORKLOADS_LIB_H
#define SQUASH_WORKLOADS_LIB_H

#include "ir/Builder.h"

namespace vea::workloads {

/// Emits the runtime library into \p PB:
///   memcpy(dst, src, n)           byte copy
///   memset(dst, val, n)           byte fill
///   read_block(dst, n) -> count   consume input bytes
///   write_block(src, n)           emit output bytes
///   crc32(buf, n) -> crc          table-driven CRC-32
///   rand_seed(s) / rand_next() -> r0   xorshift32
///   isort_w(buf, n)               insertion sort of words
///   abs32(x) -> |x|
///   clamp(x, lo, hi) -> clamped
///   panic(code)                   print code and halt(255); cold everywhere
/// Also creates the data objects the routines use (CRC table, RNG state).
void addRuntimeLibrary(ProgramBuilder &PB);

} // namespace vea::workloads

#endif // SQUASH_WORKLOADS_LIB_H
