//===- workloads/Common.h - Shared workload scaffolding --------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the benchmark suite:
///
///  * The Workload record: a program plus its profiling and timing inputs
///    (the paper's Figure 5 distinguishes the inputs used to collect the
///    guiding profile from the larger inputs used to measure speed).
///
///  * The "filter farm": a bank of distinct, address-taken transformation
///    routines dispatched through a function-pointer table. This is the
///    synthetic stand-in for the large bodies of rarely-executed library
///    code in real MediaBench binaries (codec option handlers, error
///    concealment, rarely used primitives): it is reachable (so the
///    squeeze-like compactor cannot delete it) yet almost entirely cold.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_WORKLOADS_COMMON_H
#define SQUASH_WORKLOADS_COMMON_H

#include "ir/Builder.h"
#include "support/Random.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vea::workloads {

/// A benchmark: the program plus its two inputs.
struct Workload {
  std::string Name;
  Program Prog;
  std::vector<uint8_t> ProfilingInput;
  std::vector<uint8_t> TimingInput;
  std::string ProfilingInputName;
  std::string TimingInputName;
};

/// Emits \p Count distinct filter routines named "<prefix>_f0" ... plus a
/// function-pointer table "<prefix>_table" and a dispatcher
/// "<prefix>_apply(idx=r16, buf=r17, n=r18)" that bounds-checks the index
/// (panicking on overflow — cold) and calls through the table. Each filter
/// transforms the byte buffer in place with a unique generated operation
/// recipe. Requires the runtime library (panic) to be present.
void addFilterFarm(ProgramBuilder &PB, const std::string &Prefix,
                   unsigned Count, uint64_t Seed);

/// Standard input framing shared by the workloads:
///   word 0: magic, word 1: mode, word 2: payload byte count, then payload.
std::vector<uint8_t> frameInput(uint32_t Magic, uint32_t Mode,
                                const std::vector<uint8_t> &Payload);

/// Deterministic synthetic payloads.
std::vector<uint8_t> makeAudioPayload(size_t Samples, uint64_t Seed,
                                      bool WithSilence = false);
std::vector<uint8_t> makeImagePayload(unsigned Width, unsigned Height,
                                      uint64_t Seed);
std::vector<uint8_t> makeTextPayload(size_t Bytes, uint64_t Seed);

/// Emits a main() prologue that validates the frame header: reads magic /
/// mode / size into r9 / r10 / r11, reads the payload into \p BufSym
/// (bounded by \p BufCap), and panics on bad magic or oversized payload
/// (cold error paths). Leaves mode in r10 and payload length in r11.
void emitReadFrame(FunctionBuilder &F, uint32_t Magic,
                   const std::string &BufSym, uint32_t BufCap);

/// Emits the standard epilogue: crc32 of \p BufSym (length r11), written
/// with sys PutWord, then halt with the low byte of the CRC.
void emitChecksumAndHalt(FunctionBuilder &F, const std::string &BufSym);

/// Emits "<prefix>_tick": a register-transparent bookkeeping routine
/// (progress counter + a short mixing loop over its own state) safe to
/// call from the middle of any hot loop — it saves and restores every
/// register it touches. Called once per frame/chunk, it lands in the
/// middle of the profile's frequency spectrum: hot enough to stay
/// uncompressed at low θ, compressed — and repeatedly re-decompressed at
/// run time — once θ admits per-frame code. This reproduces the dynamics
/// behind the paper's execution-time curve (Figure 7(b)).
void addTickFunction(ProgramBuilder &PB, const std::string &Prefix);

/// Emits a call to "<prefix>_tick" linked through r24 (the tick routine
/// returns through r24 and preserves all other registers).
void emitTickCall(FunctionBuilder &F, const std::string &Prefix);

/// Emits a one-shot "calibration" pass: \p Used of the farm's filters run
/// once each over a 48-byte slice of \p BufSym. This models option/setup
/// code that executes exactly once per run: warm enough to stay
/// uncompressed at θ = 0, but cold — and compressed — once the threshold
/// admits once-per-run code. Clobbers r1 and the call-clobbered registers;
/// preserves r9..r15.
void emitCalibration(FunctionBuilder &F, const std::string &FarmPrefix,
                     unsigned FarmCount, unsigned Used,
                     const std::string &BufSym);

} // namespace vea::workloads

#endif // SQUASH_WORKLOADS_COMMON_H
