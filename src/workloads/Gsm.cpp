//===- workloads/Gsm.cpp - LPC-style speech analysis workload -------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
// Mirrors MediaBench `gsm` (GSM 06.10 full-rate transcoding): per-frame
// autocorrelation analysis, reflection-coefficient quantization, and a
// silence-detection path. Silent frames never occur in the profiling
// input but do in the timing input, so the silence path is profile-cold
// yet executed repeatedly when timed — the exact dynamics Section 7
// discusses.
//
//===----------------------------------------------------------------------===//

#include "workloads/Lib.h"
#include "workloads/Workloads.h"

using namespace vea;
using namespace vea::workloads;

static const uint32_t GsmMagic = 0x656D0001u;
static const unsigned FrameSamples = 160;
static const unsigned NumLags = 8;

static void addGsmCore(ProgramBuilder &PB) {
  addTickFunction(PB, "gsm");
  PB.addBss("gsm_ac", NumLags * 4);

  // gsm_autocorr(frame=r16, n=r17): fills gsm_ac[k] with
  // sum(s[i] * s[i+k]) >> 6 for k = 0..7. The hot kernel.
  {
    FunctionBuilder F = PB.beginFunction("gsm_autocorr");
    F.li(1, 0); // k
    F.label("lag");
    F.li(2, 0);      // acc
    F.sub(3, 17, 1); // n - k iterations
    F.mov(4, 16);    // s[i] cursor
    F.slli(5, 1, 1);
    F.add(5, 16, 5); // s[i+k] cursor
    F.ble(3, "store");
    F.label("inner");
    // Load both samples (signed LE16).
    F.ldb(6, 4, 0);
    F.ldb(7, 4, 1);
    F.slli(7, 7, 8);
    F.or_(6, 6, 7);
    F.slli(6, 6, 16);
    F.srai(6, 6, 16);
    F.ldb(7, 5, 0);
    F.ldb(8, 5, 1);
    F.slli(8, 8, 8);
    F.or_(7, 7, 8);
    F.slli(7, 7, 16);
    F.srai(7, 7, 16);
    F.mul(6, 6, 7);
    F.srai(6, 6, 6);
    F.add(2, 2, 6);
    F.addi(4, 4, 2);
    F.addi(5, 5, 2);
    F.subi(3, 3, 1);
    F.bne(3, "inner");
    F.label("store");
    F.la(6, "gsm_ac");
    F.slli(7, 1, 2);
    F.add(6, 6, 7);
    F.stw(2, 6, 0);
    F.addi(1, 1, 1);
    F.cmpulti(2, 1, NumLags);
    F.bne(2, "lag");
    F.ret();
  }

  // gsm_reflect(out=r16): quantizes gsm_ac[1..7]/gsm_ac[0] into signed
  // bytes at out[0..6]. Returns r0 = 1, or 0 when the frame energy is too
  // low to analyze (the caller then takes the silence path).
  {
    FunctionBuilder F = PB.beginFunction("gsm_reflect");
    F.la(1, "gsm_ac");
    F.ldw(2, 1, 0); // ac[0] (frame energy)
    F.cmplei(3, 2, 15);
    F.beq(3, "live");
    F.li(0, 0); // silence
    F.ret();
    F.label("live");
    F.li(3, 1); // k
    F.label("loop");
    F.slli(4, 3, 2);
    F.add(4, 1, 4);
    F.ldw(4, 4, 0); // ac[k]
    // r = ac[k] * 64 / ac[0], computed on magnitudes.
    F.li(5, 0);
    F.bge(4, "pos");
    F.li(5, 1);
    F.sub(4, 31, 4);
    F.label("pos");
    F.slli(4, 4, 6);
    F.udiv(4, 4, 2);
    F.cmplei(6, 4, 127);
    F.bne(6, "cap");
    F.li(4, 127); // saturation: rare
    F.label("cap");
    F.beq(5, "signed");
    F.sub(4, 31, 4);
    F.label("signed");
    F.subi(6, 3, 1);
    F.add(6, 16, 6);
    F.stb(4, 6, 0);
    F.addi(3, 3, 1);
    F.cmpulti(6, 3, NumLags);
    F.bne(6, "loop");
    F.li(0, 1);
    F.ret();
  }

  // gsm_silence(out=r16): emits the comfort-noise descriptor. Cold under
  // the profiling input (which has no silent frames).
  {
    FunctionBuilder F = PB.beginFunction("gsm_silence");
    F.enter(8);
    F.call("rand_next");
    F.andi(1, 0, 7);
    F.li(2, 0);
    F.label("loop");
    F.add(3, 16, 2);
    F.xori(4, 1, 0x5A);
    F.stb(4, 3, 0);
    F.addi(2, 2, 1);
    F.cmpulti(4, 2, NumLags - 1);
    F.bne(4, "loop");
    F.leave(8);
  }
}

Workload vea::workloads::buildGsm(double Scale) {
  ProgramBuilder PB("gsm");
  addRuntimeLibrary(PB);
  addGsmCore(PB);
  addFilterFarm(PB, "gsm", 85, 0x656D);
  PB.addBss("inbuf", 131072);
  PB.addBss("workbuf", 65536);

  {
    FunctionBuilder F = PB.beginFunction("main");
    emitReadFrame(F, GsmMagic, "inbuf", 131072);
    F.cmpulti(2, 10, 2);
    F.beq(2, "badmode");
    emitCalibration(F, "gsm", 85, 28, "inbuf");
    // r12 = frame cursor, r13 = frames remaining, r14 = output cursor.
    F.la(12, "inbuf");
    F.srli(13, 11, 1);             // samples
    F.li(2, FrameSamples);
    F.udiv(13, 13, 2);             // whole frames
    F.la(14, "workbuf");
    F.li(15, 0);                   // silent-frame count
    F.beq(13, "done");

    F.label("frame");
    emitTickCall(F, "gsm");
    F.mov(16, 12);
    F.li(17, FrameSamples);
    F.call("gsm_autocorr");
    F.mov(16, 14);
    F.call("gsm_reflect");
    F.bne(0, "voiced");
    // Profile-cold: silence descriptor.
    F.mov(16, 14);
    F.call("gsm_silence");
    F.addi(15, 15, 1);
    F.label("voiced");
    F.addi(14, 14, NumLags - 1);
    F.lda(12, 12, FrameSamples * 2);
    F.subi(13, 13, 1);
    F.bne(13, "frame");

    F.label("done");
    // Mode 1 additionally post-processes the descriptors (timing only).
    F.cmpeqi(2, 10, 1);
    F.beq(2, "emit");
    F.la(1, "workbuf");
    F.sub(2, 14, 1);
    F.andi(16, 15, 3);
    F.addi(16, 16, 52);
    F.la(17, "workbuf");
    F.mov(18, 2);
    F.call("gsm_apply");
    F.label("emit");
    F.la(1, "workbuf");
    F.sub(11, 14, 1); // descriptor bytes
    emitChecksumAndHalt(F, "workbuf");

    F.label("badmode");
    F.li(16, 24);
    F.call("panic");
    F.halt();
  }
  PB.setEntry("main");

  Workload W;
  W.Name = "gsm";
  W.Prog = PB.build();
  W.ProfilingInput = frameInput(
      GsmMagic, 0,
      makeAudioPayload(static_cast<size_t>(22000 * Scale), 0x65E1,
                       /*WithSilence=*/false));
  W.TimingInput = frameInput(
      GsmMagic, 1,
      makeAudioPayload(static_cast<size_t>(30000 * Scale), 0x65E2,
                       /*WithSilence=*/true));
  W.ProfilingInputName = "clinton.pcm (synthetic, no silence)";
  W.TimingInputName = "mlk_speech.pcm (synthetic, with silent frames)";
  return W;
}
