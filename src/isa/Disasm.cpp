//===- isa/Disasm.cpp - VEA-32 disassembler -------------------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "isa/Disasm.h"

#include <cstdio>

using namespace vea;

static std::string reg(unsigned R) { return "r" + std::to_string(R); }

static std::string branchTarget(const MInst &Inst, int64_t PC) {
  int32_t Disp = Inst.disp21();
  if (PC < 0)
    return (Disp >= 0 ? "+" : "") + std::to_string(Disp);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llx",
                static_cast<unsigned long long>(PC + 4 + 4 * int64_t(Disp)));
  return Buf;
}

std::string vea::disassemble(const MInst &Inst, int64_t PC) {
  const OpcodeInfo &Info = opcodeInfo(Inst.Op);
  std::string Name = Info.Name;
  switch (Info.Form) {
  case Format::Mem:
    return Name + " " + reg(Inst.ra()) + ", " + std::to_string(Inst.disp16()) +
           "(" + reg(Inst.rb()) + ")";
  case Format::Branch:
    return Name + " " + reg(Inst.ra()) + ", " + branchTarget(Inst, PC);
  case Format::Jump:
    return Name + " " + reg(Inst.ra()) + ", (" + reg(Inst.rb()) + ")";
  case Format::OpRRR:
    return Name + " " + reg(Inst.rc()) + ", " + reg(Inst.ra()) + ", " +
           reg(Inst.rb());
  case Format::OpRRI:
    return Name + " " + reg(Inst.rc()) + ", " + reg(Inst.ra()) + ", " +
           std::to_string(Inst.lit8());
  case Format::Sys:
    if (Inst.Op == Opcode::Sentinel)
      return "sentinel";
    return Name + " " + std::to_string(Inst.sfunc());
  }
  return "<?>";
}

std::string vea::disassembleWord(uint32_t Word, int64_t PC) {
  if (!isLegalWord(Word) && (Word >> 26) != 0) {
    // Permit disassembly of squash-internal opcodes for diagnostics.
    unsigned OpBits = Word >> 26;
    if (OpBits >= NumOpcodes) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), ".word 0x%08x", Word);
      return Buf;
    }
  }
  return disassemble(decode(Word), PC);
}
