//===- isa/Isa.h - The VEA-32 instruction set ------------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VEA-32: a 32-bit fixed-width RISC instruction set modeled on the Compaq
/// Alpha encoding the paper targets. Every instruction is one 32-bit word;
/// a 6-bit opcode fully determines the instruction's field layout, which is
/// the property the paper's "splitting streams" compression (Section 3)
/// relies on. The instruction word is split into typed fields; each field
/// type becomes one compression stream.
///
/// Formats (bit 31 is the MSB):
///   Mem     op[31:26] ra[25:21] rb[20:16] disp16[15:0]
///   Branch  op[31:26] ra[25:21] disp21[20:0]
///   Jump    op[31:26] ra[25:21] rb[20:16] jfunc2[15:14] hint14[13:0]
///   OpRRR   op[31:26] ra[25:21] rb[20:16] pad11[15:5]   rc[4:0]
///   OpRRI   op[31:26] ra[25:21] lit8[20:13] pad8[12:5]  rc[4:0]
///   Sys     op[31:26] sfunc26[25:0]
///
/// Register conventions: r0 = return value, r16..r21 = arguments,
/// r26 = return address ($ra), r30 = stack pointer, r31 reads as zero.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_ISA_ISA_H
#define SQUASH_ISA_ISA_H

#include <array>
#include <cassert>
#include <cstdint>
#include <string>

namespace vea {

/// Number of architectural registers. Register 31 always reads zero.
inline constexpr unsigned NumRegs = 32;
inline constexpr unsigned RegRV = 0;   ///< Return value.
inline constexpr unsigned RegA0 = 16;  ///< First argument register.
inline constexpr unsigned RegRA = 26;  ///< Conventional return address.
inline constexpr unsigned RegSP = 30;  ///< Stack pointer.
inline constexpr unsigned RegZero = 31;

/// Instruction word size in bytes. VEA-32 is byte-addressed; instructions
/// must be 4-byte aligned.
inline constexpr uint32_t WordBytes = 4;

/// The instruction formats. The opcode alone selects the format.
enum class Format : uint8_t {
  Mem,    ///< Loads, stores, address arithmetic (lda/ldah).
  Branch, ///< PC-relative branches and calls.
  Jump,   ///< Register-indirect jumps (jmp/jsr/ret).
  OpRRR,  ///< Three-register operates.
  OpRRI,  ///< Register + 8-bit literal operates.
  Sys,    ///< System calls / traps.
};

/// The typed instruction fields. One compression stream exists per kind
/// (paper Section 3: "we split the instructions into 15 streams" on Alpha;
/// VEA-32 has 12).
enum class FieldKind : uint8_t {
  Opcode,
  RA,
  RB,
  RC,
  Disp16,
  Disp21,
  Lit8,
  JFunc2,
  Hint14,
  SFunc26,
  Pad8,
  Pad11,
};
inline constexpr unsigned NumFieldKinds = 12;

/// Bit width of each field kind, indexed by FieldKind.
unsigned fieldWidth(FieldKind Kind);

/// All-ones mask of fieldWidth(Kind) bits. Safe for the full-width case:
/// `(1u << 32) - 1` is undefined behaviour, so every mask computation must
/// go through here rather than shifting by the raw width.
uint32_t fieldMask(FieldKind Kind);

/// Printable name of a field kind (for diagnostics and benchmarks).
const char *fieldKindName(FieldKind Kind);

/// The VEA-32 opcodes. Opcode 0 is reserved as the illegal instruction the
/// paper uses as the decompression sentinel (Section 2.1: "Decompression
/// stops when the decompressor encounters a sentinel (an illegal
/// instruction)").
enum class Opcode : uint8_t {
  Sentinel = 0, ///< Illegal; terminates a compressed region.

  // Mem format: op ra, disp16(rb)
  Ldw,  ///< ra = mem32[rb + sext(disp16)]
  Ldb,  ///< ra = zext(mem8[rb + sext(disp16)])
  Stw,  ///< mem32[rb + sext(disp16)] = ra
  Stb,  ///< mem8[rb + sext(disp16)] = low byte of ra
  Lda,  ///< ra = rb + sext(disp16)
  Ldah, ///< ra = rb + (sext(disp16) << 16)

  // Branch format: op ra, disp21. Targets are PC + 4 + 4*sext(disp21).
  Br,   ///< ra = PC + 4; jump (unconditional)
  Bsr,  ///< ra = PC + 4; call (unconditional; identical semantics to Br,
        ///< kept distinct because squash treats calls specially)
  Beq,  ///< if (ra == 0) jump
  Bne,  ///< if (ra != 0) jump
  Blt,  ///< if ((int32)ra < 0) jump
  Ble,  ///< if ((int32)ra <= 0) jump
  Bgt,  ///< if ((int32)ra > 0) jump
  Bge,  ///< if ((int32)ra >= 0) jump
  Blbc, ///< if ((ra & 1) == 0) jump
  Blbs, ///< if ((ra & 1) == 1) jump

  // Jump format: op ra, (rb). ra = PC + 4; PC = rb & ~3.
  Jmp,
  Jsr,
  Ret,

  // OpRRR format: op rc = ra OP rb.
  Add,
  Sub,
  Mul,
  Umulh,
  Udiv, ///< Unsigned divide; divide-by-zero is a machine fault.
  Urem,
  And,
  Or,
  Xor,
  Bic,  ///< rc = ra & ~rb
  Sll,
  Srl,
  Sra,
  Cmpeq,
  Cmplt,  ///< signed
  Cmple,  ///< signed
  Cmpult, ///< unsigned
  Cmpule, ///< unsigned

  // OpRRI format: op rc = ra OP zext(lit8).
  Addi,
  Subi,
  Muli,
  Andi,
  Ori,
  Xori,
  Slli,
  Srli,
  Srai,
  Cmpeqi,
  Cmplti,
  Cmplei,
  Cmpulti,
  Cmpulei,

  // Sys format.
  Sys,

  /// squash-internal opcode (Branch format). Never appears in an executable
  /// image; it exists only inside compressed regions, marking a call that
  /// the decompressor must expand into the two-instruction
  /// BSR-to-CreateStub + BR-to-callee sequence (paper Section 2.2, Figure 2).
  Bsrx,

  NumOpcodes
};

inline constexpr unsigned NumOpcodes =
    static_cast<unsigned>(Opcode::NumOpcodes);

/// System call numbers carried in the SFunc26 field of a Sys instruction.
enum class SysFunc : uint32_t {
  Halt = 0,    ///< Stop execution; exit code in r16.
  PutChar = 1, ///< Append low byte of r16 to the output channel.
  GetChar = 2, ///< r0 = next input byte, or 0xFFFFFFFF at end of input.
  PutInt = 3,  ///< Append decimal rendering of (int32)r16 to the output.
  PutWord = 4, ///< Append r16 to the output as 4 little-endian bytes.
  GetWord = 5, ///< r0 = next 4 input bytes (LE); r1 = 1, or r1 = 0 at EOF.
  Setjmp = 6,  ///< Save machine context to mem[r16..]; r0 = 0.
  Longjmp = 7, ///< Restore context from mem[r16..]; r0 = r17 (or 1 if 0).
};

/// Static description of one opcode.
struct OpcodeInfo {
  const char *Name;   ///< Assembler mnemonic.
  Format Form;        ///< Field layout.
  bool IsLegal;       ///< False for Sentinel and squash-internal opcodes.
};

/// Returns the descriptor for \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

/// Returns the format of \p Op.
inline Format formatOf(Opcode Op) { return opcodeInfo(Op).Form; }

/// Returns the opcode named \p Name, or Sentinel if unknown.
Opcode opcodeByName(const std::string &Name);

/// Placement of a field within an instruction word.
struct FieldSlot {
  FieldKind Kind;
  uint8_t Shift; ///< Bit position of the field's LSB.
  uint8_t Width;
};

/// The field layout of a format: up to 6 slots, terminated by Count.
struct FormatLayout {
  std::array<FieldSlot, 6> Slots;
  unsigned Count;
};

/// Returns the field layout for \p Form. Slots are listed from the opcode
/// downwards; the widths of all slots always sum to 32.
const FormatLayout &formatLayout(Format Form);

/// A decoded instruction: the opcode plus the raw (unsigned, unshifted)
/// value of each field present in its format. Fields not present read 0.
struct MInst {
  Opcode Op = Opcode::Sentinel;
  std::array<uint32_t, NumFieldKinds> Fields = {};

  MInst() = default;
  explicit MInst(Opcode Op) : Op(Op) {
    Fields[static_cast<unsigned>(FieldKind::Opcode)] =
        static_cast<uint32_t>(Op);
  }

  uint32_t get(FieldKind Kind) const {
    return Fields[static_cast<unsigned>(Kind)];
  }
  void set(FieldKind Kind, uint32_t Value) {
    assert(Value <= fieldMask(Kind) && "field value exceeds field width");
    Fields[static_cast<unsigned>(Kind)] = Value;
    if (Kind == FieldKind::Opcode)
      Op = static_cast<Opcode>(Value);
  }

  unsigned ra() const { return get(FieldKind::RA); }
  unsigned rb() const { return get(FieldKind::RB); }
  unsigned rc() const { return get(FieldKind::RC); }
  uint32_t lit8() const { return get(FieldKind::Lit8); }
  uint32_t sfunc() const { return get(FieldKind::SFunc26); }

  /// Sign-extended 16-bit displacement (Mem format).
  int32_t disp16() const {
    return static_cast<int32_t>(static_cast<int16_t>(get(FieldKind::Disp16)));
  }
  /// Sign-extended 21-bit displacement in words (Branch format).
  int32_t disp21() const {
    uint32_t Raw = get(FieldKind::Disp21);
    if (Raw & (1u << 20))
      Raw |= 0xFFE00000u;
    return static_cast<int32_t>(Raw);
  }
  void setDisp16(int32_t Disp) {
    assert(Disp >= -32768 && Disp <= 32767 && "disp16 out of range");
    set(FieldKind::Disp16, static_cast<uint16_t>(Disp));
  }
  void setDisp21(int32_t Disp) {
    assert(Disp >= -(1 << 20) && Disp < (1 << 20) && "disp21 out of range");
    set(FieldKind::Disp21, static_cast<uint32_t>(Disp) & 0x1FFFFFu);
  }
};

/// Encodes \p Inst into a 32-bit instruction word.
uint32_t encode(const MInst &Inst);

/// Decodes a 32-bit instruction word. Unknown opcodes decode with
/// Op == Sentinel semantics (opcode field preserved) so the simulator can
/// fault on them.
MInst decode(uint32_t Word);

/// True if \p Word decodes to a legal executable instruction.
bool isLegalWord(uint32_t Word);

// Convenience constructors -------------------------------------------------

MInst makeMem(Opcode Op, unsigned Ra, unsigned Rb, int32_t Disp16);
MInst makeBranch(Opcode Op, unsigned Ra, int32_t Disp21);
MInst makeJump(Opcode Op, unsigned Ra, unsigned Rb, unsigned Hint = 0);
MInst makeRRR(Opcode Op, unsigned Rc, unsigned Ra, unsigned Rb);
MInst makeRRI(Opcode Op, unsigned Rc, unsigned Ra, uint32_t Lit8);
MInst makeSys(SysFunc Func);

/// The canonical no-op: Or rc=r31, ra=r31, rb=r31.
MInst makeNop();

/// True if \p Inst has no architectural effect (writes only r31 and has no
/// memory/control/system side effects).
bool isNop(const MInst &Inst);

/// Branch-classification helpers used throughout the pipeline.
bool isCondBranch(Opcode Op);
bool isUncondBranch(Opcode Op); ///< Br or Bsr (or Bsrx).
bool isDirectCall(Opcode Op);   ///< Bsr or Bsrx.
bool isIndirectJump(Opcode Op); ///< Jmp, Jsr or Ret.
bool isBranchFormat(Opcode Op);
/// True if the instruction can transfer control somewhere other than the
/// next instruction.
bool isControlFlow(Opcode Op);

} // namespace vea

#endif // SQUASH_ISA_ISA_H
