//===- isa/Isa.cpp - The VEA-32 instruction set ---------------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "isa/Isa.h"

#include <cassert>
#include <unordered_map>

using namespace vea;

static const OpcodeInfo OpcodeTable[] = {
    {"sentinel", Format::Sys, false},
    {"ldw", Format::Mem, true},
    {"ldb", Format::Mem, true},
    {"stw", Format::Mem, true},
    {"stb", Format::Mem, true},
    {"lda", Format::Mem, true},
    {"ldah", Format::Mem, true},
    {"br", Format::Branch, true},
    {"bsr", Format::Branch, true},
    {"beq", Format::Branch, true},
    {"bne", Format::Branch, true},
    {"blt", Format::Branch, true},
    {"ble", Format::Branch, true},
    {"bgt", Format::Branch, true},
    {"bge", Format::Branch, true},
    {"blbc", Format::Branch, true},
    {"blbs", Format::Branch, true},
    {"jmp", Format::Jump, true},
    {"jsr", Format::Jump, true},
    {"ret", Format::Jump, true},
    {"add", Format::OpRRR, true},
    {"sub", Format::OpRRR, true},
    {"mul", Format::OpRRR, true},
    {"umulh", Format::OpRRR, true},
    {"udiv", Format::OpRRR, true},
    {"urem", Format::OpRRR, true},
    {"and", Format::OpRRR, true},
    {"or", Format::OpRRR, true},
    {"xor", Format::OpRRR, true},
    {"bic", Format::OpRRR, true},
    {"sll", Format::OpRRR, true},
    {"srl", Format::OpRRR, true},
    {"sra", Format::OpRRR, true},
    {"cmpeq", Format::OpRRR, true},
    {"cmplt", Format::OpRRR, true},
    {"cmple", Format::OpRRR, true},
    {"cmpult", Format::OpRRR, true},
    {"cmpule", Format::OpRRR, true},
    {"addi", Format::OpRRI, true},
    {"subi", Format::OpRRI, true},
    {"muli", Format::OpRRI, true},
    {"andi", Format::OpRRI, true},
    {"ori", Format::OpRRI, true},
    {"xori", Format::OpRRI, true},
    {"slli", Format::OpRRI, true},
    {"srli", Format::OpRRI, true},
    {"srai", Format::OpRRI, true},
    {"cmpeqi", Format::OpRRI, true},
    {"cmplti", Format::OpRRI, true},
    {"cmplei", Format::OpRRI, true},
    {"cmpulti", Format::OpRRI, true},
    {"cmpulei", Format::OpRRI, true},
    {"sys", Format::Sys, true},
    {"bsrx", Format::Branch, false},
};

static_assert(sizeof(OpcodeTable) / sizeof(OpcodeTable[0]) ==
                  vea::NumOpcodes,
              "opcode table out of sync with Opcode enum");

const OpcodeInfo &vea::opcodeInfo(Opcode Op) {
  unsigned Index = static_cast<unsigned>(Op);
  assert(Index < NumOpcodes && "opcode out of range");
  return OpcodeTable[Index];
}

Opcode vea::opcodeByName(const std::string &Name) {
  static const std::unordered_map<std::string, Opcode> Map = [] {
    std::unordered_map<std::string, Opcode> M;
    for (unsigned I = 0; I != NumOpcodes; ++I)
      M.emplace(OpcodeTable[I].Name, static_cast<Opcode>(I));
    return M;
  }();
  auto It = Map.find(Name);
  return It == Map.end() ? Opcode::Sentinel : It->second;
}

unsigned vea::fieldWidth(FieldKind Kind) {
  switch (Kind) {
  case FieldKind::Opcode:
    return 6;
  case FieldKind::RA:
  case FieldKind::RB:
  case FieldKind::RC:
    return 5;
  case FieldKind::Disp16:
    return 16;
  case FieldKind::Disp21:
    return 21;
  case FieldKind::Lit8:
    return 8;
  case FieldKind::JFunc2:
    return 2;
  case FieldKind::Hint14:
    return 14;
  case FieldKind::SFunc26:
    return 26;
  case FieldKind::Pad8:
    return 8;
  case FieldKind::Pad11:
    return 11;
  }
  // Exhaustive switch; a value outside the enum means corrupted state.
  // Degrade to a zero-width field rather than killing the process.
  assert(false && "unknown field kind");
  return 0;
}

uint32_t vea::fieldMask(FieldKind Kind) {
  unsigned W = fieldWidth(Kind);
  return W >= 32 ? 0xFFFFFFFFu : (1u << W) - 1;
}

const char *vea::fieldKindName(FieldKind Kind) {
  switch (Kind) {
  case FieldKind::Opcode:
    return "opcode";
  case FieldKind::RA:
    return "ra";
  case FieldKind::RB:
    return "rb";
  case FieldKind::RC:
    return "rc";
  case FieldKind::Disp16:
    return "disp16";
  case FieldKind::Disp21:
    return "disp21";
  case FieldKind::Lit8:
    return "lit8";
  case FieldKind::JFunc2:
    return "jfunc2";
  case FieldKind::Hint14:
    return "hint14";
  case FieldKind::SFunc26:
    return "sfunc26";
  case FieldKind::Pad8:
    return "pad8";
  case FieldKind::Pad11:
    return "pad11";
  }
  assert(false && "unknown field kind");
  return "?";
}

// Field layouts. Slot order within each layout is the order fields are
// emitted into compression streams; the opcode is always first so the
// decoder can select the remaining codes (paper Section 3).
static const FormatLayout MemLayout = {
    {{{FieldKind::Opcode, 26, 6},
      {FieldKind::RA, 21, 5},
      {FieldKind::RB, 16, 5},
      {FieldKind::Disp16, 0, 16}}},
    4};
static const FormatLayout BranchLayout = {
    {{{FieldKind::Opcode, 26, 6},
      {FieldKind::RA, 21, 5},
      {FieldKind::Disp21, 0, 21}}},
    3};
static const FormatLayout JumpLayout = {
    {{{FieldKind::Opcode, 26, 6},
      {FieldKind::RA, 21, 5},
      {FieldKind::RB, 16, 5},
      {FieldKind::JFunc2, 14, 2},
      {FieldKind::Hint14, 0, 14}}},
    5};
static const FormatLayout OpRRRLayout = {
    {{{FieldKind::Opcode, 26, 6},
      {FieldKind::RA, 21, 5},
      {FieldKind::RB, 16, 5},
      {FieldKind::Pad11, 5, 11},
      {FieldKind::RC, 0, 5}}},
    5};
static const FormatLayout OpRRILayout = {
    {{{FieldKind::Opcode, 26, 6},
      {FieldKind::RA, 21, 5},
      {FieldKind::Lit8, 13, 8},
      {FieldKind::Pad8, 5, 8},
      {FieldKind::RC, 0, 5}}},
    5};
static const FormatLayout SysLayout = {
    {{{FieldKind::Opcode, 26, 6}, {FieldKind::SFunc26, 0, 26}}}, 2};

const FormatLayout &vea::formatLayout(Format Form) {
  switch (Form) {
  case Format::Mem:
    return MemLayout;
  case Format::Branch:
    return BranchLayout;
  case Format::Jump:
    return JumpLayout;
  case Format::OpRRR:
    return OpRRRLayout;
  case Format::OpRRI:
    return OpRRILayout;
  case Format::Sys:
    return SysLayout;
  }
  // A Format outside the enum can only come from corrupted state; the Sys
  // layout is the smallest safe answer (opcode + one immediate).
  assert(false && "unknown format");
  return SysLayout;
}

uint32_t vea::encode(const MInst &Inst) {
  const FormatLayout &Layout = formatLayout(formatOf(Inst.Op));
  uint32_t Word = 0;
  for (unsigned I = 0; I != Layout.Count; ++I) {
    const FieldSlot &Slot = Layout.Slots[I];
    uint32_t Mask = Slot.Width == 32 ? ~0u : ((1u << Slot.Width) - 1);
    Word |= (Inst.get(Slot.Kind) & Mask) << Slot.Shift;
  }
  return Word;
}

MInst vea::decode(uint32_t Word) {
  unsigned OpBits = Word >> 26;
  MInst Inst;
  Inst.set(FieldKind::Opcode, OpBits);
  if (OpBits >= NumOpcodes)
    return Inst; // Illegal; only the opcode field is meaningful.
  const FormatLayout &Layout =
      formatLayout(formatOf(static_cast<Opcode>(OpBits)));
  for (unsigned I = 1; I != Layout.Count; ++I) {
    const FieldSlot &Slot = Layout.Slots[I];
    uint32_t Mask = Slot.Width == 32 ? ~0u : ((1u << Slot.Width) - 1);
    Inst.set(Slot.Kind, (Word >> Slot.Shift) & Mask);
  }
  return Inst;
}

bool vea::isLegalWord(uint32_t Word) {
  unsigned OpBits = Word >> 26;
  return OpBits < NumOpcodes &&
         opcodeInfo(static_cast<Opcode>(OpBits)).IsLegal;
}

MInst vea::makeMem(Opcode Op, unsigned Ra, unsigned Rb, int32_t Disp16) {
  assert(formatOf(Op) == Format::Mem && "wrong format");
  MInst Inst(Op);
  Inst.set(FieldKind::RA, Ra);
  Inst.set(FieldKind::RB, Rb);
  Inst.setDisp16(Disp16);
  return Inst;
}

MInst vea::makeBranch(Opcode Op, unsigned Ra, int32_t Disp21) {
  assert(formatOf(Op) == Format::Branch && "wrong format");
  MInst Inst(Op);
  Inst.set(FieldKind::RA, Ra);
  Inst.setDisp21(Disp21);
  return Inst;
}

MInst vea::makeJump(Opcode Op, unsigned Ra, unsigned Rb, unsigned Hint) {
  assert(formatOf(Op) == Format::Jump && "wrong format");
  MInst Inst(Op);
  Inst.set(FieldKind::RA, Ra);
  Inst.set(FieldKind::RB, Rb);
  Inst.set(FieldKind::Hint14, Hint & 0x3FFFu);
  return Inst;
}

MInst vea::makeRRR(Opcode Op, unsigned Rc, unsigned Ra, unsigned Rb) {
  assert(formatOf(Op) == Format::OpRRR && "wrong format");
  MInst Inst(Op);
  Inst.set(FieldKind::RA, Ra);
  Inst.set(FieldKind::RB, Rb);
  Inst.set(FieldKind::RC, Rc);
  return Inst;
}

MInst vea::makeRRI(Opcode Op, unsigned Rc, unsigned Ra, uint32_t Lit8) {
  assert(formatOf(Op) == Format::OpRRI && "wrong format");
  assert(Lit8 < 256 && "literal exceeds 8 bits");
  MInst Inst(Op);
  Inst.set(FieldKind::RA, Ra);
  Inst.set(FieldKind::Lit8, Lit8);
  Inst.set(FieldKind::RC, Rc);
  return Inst;
}

MInst vea::makeSys(SysFunc Func) {
  MInst Inst(Opcode::Sys);
  Inst.set(FieldKind::SFunc26, static_cast<uint32_t>(Func));
  return Inst;
}

MInst vea::makeNop() { return makeRRR(Opcode::Or, RegZero, RegZero, RegZero); }

bool vea::isNop(const MInst &Inst) {
  Format Form = formatOf(Inst.Op);
  if (Form != Format::OpRRR && Form != Format::OpRRI)
    return false;
  // Divides can fault, so they are not dead even when the result is
  // discarded.
  if (Inst.Op == Opcode::Udiv || Inst.Op == Opcode::Urem)
    return false;
  return Inst.rc() == RegZero;
}

bool vea::isCondBranch(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Ble:
  case Opcode::Bgt:
  case Opcode::Bge:
  case Opcode::Blbc:
  case Opcode::Blbs:
    return true;
  default:
    return false;
  }
}

bool vea::isUncondBranch(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::Bsr || Op == Opcode::Bsrx;
}

bool vea::isDirectCall(Opcode Op) {
  return Op == Opcode::Bsr || Op == Opcode::Bsrx;
}

bool vea::isIndirectJump(Opcode Op) {
  return Op == Opcode::Jmp || Op == Opcode::Jsr || Op == Opcode::Ret;
}

bool vea::isBranchFormat(Opcode Op) {
  return formatOf(Op) == Format::Branch;
}

bool vea::isControlFlow(Opcode Op) {
  return isCondBranch(Op) || isUncondBranch(Op) || isIndirectJump(Op);
}
