//===- isa/Disasm.h - VEA-32 disassembler ----------------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual rendering of VEA-32 instructions, for diagnostics, tests, and the
/// example tools.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_ISA_DISASM_H
#define SQUASH_ISA_DISASM_H

#include "isa/Isa.h"

#include <string>

namespace vea {

/// Renders \p Inst as assembler text, e.g. "ldw r1, 8(r30)".
/// If \p PC is provided, branch targets are rendered as absolute addresses;
/// otherwise as relative displacements.
std::string disassemble(const MInst &Inst, int64_t PC = -1);

/// Renders the raw word \p Word (decodes first; illegal words render as
/// ".word 0x...").
std::string disassembleWord(uint32_t Word, int64_t PC = -1);

} // namespace vea

#endif // SQUASH_ISA_DISASM_H
