//===- link/ImageDisasm.h - Whole-image disassembly -------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// objdump-style listings over laid-out images: one line per code word
/// with address, raw encoding, mnemonic, symbol labels, and annotated
/// branch targets. Used by `squash_tool --disasm` and tests.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_LINK_IMAGEDISASM_H
#define SQUASH_LINK_IMAGEDISASM_H

#include "link/Layout.h"

#include <string>

namespace vea {

/// Produces a listing of \p Img's code segment. Labels come from the
/// image's symbol table; direct branch targets landing exactly on a symbol
/// are annotated with it.
std::string disassembleImage(const Image &Img);

} // namespace vea

#endif // SQUASH_LINK_IMAGEDISASM_H
