//===- link/ImageDisasm.cpp - Whole-image disassembly ---------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "link/ImageDisasm.h"

#include "isa/Disasm.h"

#include <cstdio>
#include <map>

using namespace vea;

std::string vea::disassembleImage(const Image &Img) {
  // Invert the symbol table so addresses print their labels; prefer the
  // shortest name on collisions (functions over their entry block alias).
  std::map<uint32_t, std::string> LabelAt;
  for (const auto &[Name, Addr] : Img.Symbols) {
    auto It = LabelAt.find(Addr);
    if (It == LabelAt.end() || Name.size() < It->second.size())
      LabelAt[Addr] = Name;
  }

  std::string Out;
  for (uint32_t PC = Img.Base; PC + 4 <= Img.Base + Img.CodeBytes;
       PC += 4) {
    auto Label = LabelAt.find(PC);
    if (Label != LabelAt.end())
      Out += Label->second + ":\n";
    uint32_t Word = Img.word(PC);
    char Head[40];
    std::snprintf(Head, sizeof(Head), "  %06x:  %08x  ", PC, Word);
    Out += Head;
    Out += disassembleWord(Word, PC);
    // Annotate direct branch targets that land exactly on a symbol.
    if (isLegalWord(Word)) {
      MInst I = decode(Word);
      if (formatOf(I.Op) == Format::Branch) {
        uint32_t Target = static_cast<uint32_t>(
            static_cast<int64_t>(PC) + 4 + 4 * int64_t(I.disp21()));
        auto T = LabelAt.find(Target);
        if (T != LabelAt.end())
          Out += "  <" + T->second + ">";
      }
    }
    Out += "\n";
  }
  return Out;
}

