//===- link/Layout.cpp - Program layout and image format ------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "link/Layout.h"

#include "support/Error.h"

using namespace vea;

uint32_t Image::symbol(const std::string &Name) const {
  auto It = Symbols.find(Name);
  if (It == Symbols.end())
    reportFatalError("image: unknown symbol '" + Name + "'");
  return It->second;
}

void vea::splitHiLo(uint32_t Value, uint16_t &Hi, uint16_t &Lo) {
  Lo = static_cast<uint16_t>(Value & 0xFFFF);
  // If the low half is negative as a signed 16-bit value, the lda will
  // subtract 0x10000; compensate in the high half.
  uint32_t Carry = (Lo & 0x8000) ? 1 : 0;
  Hi = static_cast<uint16_t>(((Value >> 16) + Carry) & 0xFFFF);
}

static Status layoutError(const std::string &Message) {
  return Status::error(StatusCode::LayoutError, Message);
}

static Expected<uint32_t>
resolve(const std::string &Symbol,
        const std::unordered_map<std::string, uint32_t> &Syms) {
  auto It = Syms.find(Symbol);
  if (It == Syms.end())
    return layoutError("unresolved symbol '" + Symbol + "'");
  return It->second;
}

Expected<uint32_t> vea::encodeInstOrError(
    const Inst &I, uint32_t PC,
    const std::unordered_map<std::string, uint32_t> &Syms) {
  MInst M(I.Op);
  switch (formatOf(I.Op)) {
  case Format::Mem: {
    M.set(FieldKind::RA, I.Ra);
    M.set(FieldKind::RB, I.Rb);
    int32_t Disp = I.Imm;
    if (I.Reloc == RelocKind::Lo16 || I.Reloc == RelocKind::Hi16) {
      Expected<uint32_t> Addr = resolve(I.Symbol, Syms);
      if (!Addr)
        return Addr;
      uint32_t Value = *Addr + static_cast<uint32_t>(I.Imm);
      uint16_t Hi, Lo;
      splitHiLo(Value, Hi, Lo);
      Disp = static_cast<int16_t>(I.Reloc == RelocKind::Hi16 ? Hi : Lo);
    }
    if (Disp < -32768 || Disp > 32767)
      return layoutError("disp16 out of range");
    M.setDisp16(Disp);
    break;
  }
  case Format::Branch: {
    M.set(FieldKind::RA, I.Ra);
    int64_t Disp = I.Imm;
    if (I.Reloc == RelocKind::BranchDisp) {
      Expected<uint32_t> TargetOr = resolve(I.Symbol, Syms);
      if (!TargetOr)
        return TargetOr;
      int64_t Target = *TargetOr;
      Disp = (Target - (static_cast<int64_t>(PC) + 4)) / 4;
      if ((Target - (static_cast<int64_t>(PC) + 4)) % 4 != 0)
        return layoutError("misaligned branch target '" + I.Symbol + "'");
    }
    if (Disp < -(1 << 20) || Disp >= (1 << 20))
      return layoutError("disp21 out of range");
    M.setDisp21(static_cast<int32_t>(Disp));
    break;
  }
  case Format::Jump:
    M.set(FieldKind::RA, I.Ra);
    M.set(FieldKind::RB, I.Rb);
    break;
  case Format::OpRRR:
    M.set(FieldKind::RA, I.Ra);
    M.set(FieldKind::RB, I.Rb);
    M.set(FieldKind::RC, I.Rc);
    break;
  case Format::OpRRI:
    M.set(FieldKind::RA, I.Ra);
    M.set(FieldKind::RC, I.Rc);
    if (I.Imm < 0 || I.Imm > 255)
      return layoutError("lit8 out of range");
    M.set(FieldKind::Lit8, static_cast<uint32_t>(I.Imm));
    break;
  case Format::Sys:
    if (I.Imm < 0 || static_cast<uint32_t>(I.Imm) >= (1u << 26))
      return layoutError("sfunc out of range");
    M.set(FieldKind::SFunc26, static_cast<uint32_t>(I.Imm));
    break;
  }
  return encode(M);
}

uint32_t vea::encodeInst(
    const Inst &I, uint32_t PC,
    const std::unordered_map<std::string, uint32_t> &Syms) {
  return encodeInstOrError(I, PC, Syms).context("layout").take();
}

Expected<Image> vea::layoutProgramOrError(const Program &Prog,
                                          uint32_t Base) {
  return layoutProgramOrError(Prog, Base, {});
}

Expected<Image>
vea::layoutProgramOrError(const Program &Prog, uint32_t Base,
                          const std::vector<unsigned> &FuncOrder) {
  Image Img;
  Img.Base = Base;

  const size_t NumFuncs = Prog.Functions.size();
  std::vector<unsigned> Order = FuncOrder;
  if (Order.empty()) {
    Order.resize(NumFuncs);
    for (size_t F = 0; F != NumFuncs; ++F)
      Order[F] = static_cast<unsigned>(F);
  } else {
    if (Order.size() != NumFuncs)
      return layoutError("function order has " +
                         std::to_string(Order.size()) + " entries for " +
                         std::to_string(NumFuncs) + " functions");
    std::vector<bool> Seen(NumFuncs, false);
    for (unsigned F : Order) {
      if (F >= NumFuncs || Seen[F])
        return layoutError("function order is not a permutation (index " +
                           std::to_string(F) + ")");
      Seen[F] = true;
    }
  }

  // Block ids are function-then-block in program order; precompute each
  // function's first id so placement order cannot change the id space.
  std::vector<size_t> FirstBlockId(NumFuncs + 1, 0);
  for (size_t F = 0; F != NumFuncs; ++F)
    FirstBlockId[F + 1] = FirstBlockId[F] + Prog.Functions[F].Blocks.size();
  Img.Blocks.assign(FirstBlockId[NumFuncs], BlockLayout());

  // Pass 1: assign code addresses, walking functions in placement order.
  uint64_t Cursor = Base;
  for (unsigned F : Order) {
    const auto &Blocks = Prog.Functions[F].Blocks;
    for (size_t BI = 0; BI != Blocks.size(); ++BI) {
      const auto &B = Blocks[BI];
      uint32_t Addr = static_cast<uint32_t>(Cursor);
      Img.Symbols[B.Label] = Addr;
      Img.Blocks[FirstBlockId[F] + BI] = {
          Addr, static_cast<uint32_t>(B.Insts.size())};
      Cursor += static_cast<uint64_t>(B.Insts.size()) * WordBytes;
    }
  }
  Img.CodeBytes = static_cast<uint32_t>(Cursor - Base);
  if (Cursor - Base > MaxImageBytes)
    return layoutError("image too large: code alone is " +
                       std::to_string(Cursor - Base) + " bytes (limit " +
                       std::to_string(MaxImageBytes) + ")");

  // Data addresses.
  for (const auto &D : Prog.Data) {
    uint64_t Align = D.Align ? D.Align : 4;
    Cursor = (Cursor + Align - 1) / Align * Align;
    Img.Symbols[D.Name] = static_cast<uint32_t>(Cursor);
    Cursor += D.Bytes.size();
  }
  // Check the total before allocating: a pathological alignment or data
  // size must fail cleanly, not attempt a giant allocation.
  if (Cursor - Base > MaxImageBytes)
    return layoutError("image too large: " + std::to_string(Cursor - Base) +
                       " bytes (limit " + std::to_string(MaxImageBytes) +
                       ")");

  Img.Bytes.assign(static_cast<size_t>(Cursor - Base), 0);

  // Pass 2: encode instructions, in the same placement order.
  uint32_t PC = Base;
  for (unsigned F : Order) {
    for (const auto &B : Prog.Functions[F].Blocks) {
      for (const auto &I : B.Insts) {
        Expected<uint32_t> Word = encodeInstOrError(I, PC, Img.Symbols);
        if (!Word)
          return Status(Word.status()).context("block '" + B.Label + "'");
        Img.setWord(PC, *Word);
        PC += WordBytes;
      }
    }
  }

  // Emit data with symbol-word patches.
  for (const auto &D : Prog.Data) {
    uint32_t Addr = Img.Symbols.at(D.Name);
    std::copy(D.Bytes.begin(), D.Bytes.end(),
              Img.Bytes.begin() + (Addr - Base));
    for (const auto &SW : D.SymWords) {
      Expected<uint32_t> Value = resolve(SW.Symbol, Img.Symbols);
      if (!Value)
        return Status(Value.status())
            .context("data object '" + D.Name + "'");
      Img.setWord(Addr + SW.Offset, *Value + static_cast<uint32_t>(SW.Addend));
    }
  }

  Expected<uint32_t> Entry = resolve(Prog.EntryFunction, Img.Symbols);
  if (!Entry)
    return Status(Entry.status()).context("entry function");
  Img.EntryPC = *Entry;
  return Img;
}

Image vea::layoutProgram(const Program &Prog, uint32_t Base) {
  return layoutProgramOrError(Prog, Base).context("layout").take();
}
