//===- link/Layout.h - Program layout and image format ---------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a symbolic Program into a flat, executable binary Image: code
/// first (functions in order, blocks in order), then data objects. The Image
/// retains the symbol table and per-basic-block address ranges, which stand
/// in for the relocation information the paper's binary rewriter requires
/// from the Tru64 linker.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_LINK_LAYOUT_H
#define SQUASH_LINK_LAYOUT_H

#include "ir/IR.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace vea {

/// Address range of one basic block within an image. Entries are ordered
/// function-then-block, matching Cfg block ids.
struct BlockLayout {
  uint32_t Addr = 0;      ///< Byte address of the first instruction.
  uint32_t SizeWords = 0; ///< Number of instructions.
};

/// A loaded program: a flat byte array based at \c Base, plus metadata.
struct Image {
  uint32_t Base = 0;          ///< Load address of Bytes[0].
  std::vector<uint8_t> Bytes; ///< Code followed by data.
  uint32_t EntryPC = 0;
  uint32_t CodeBytes = 0; ///< Length of the executable prefix of Bytes.
  std::unordered_map<std::string, uint32_t> Symbols;
  std::vector<BlockLayout> Blocks; ///< Per-block ranges (Cfg id order).

  uint32_t limit() const {
    return Base + static_cast<uint32_t>(Bytes.size());
  }
  bool contains(uint32_t Addr, uint32_t Len = 1) const {
    return Addr >= Base && Addr + Len <= limit();
  }
  uint32_t word(uint32_t Addr) const {
    uint32_t Off = Addr - Base;
    return static_cast<uint32_t>(Bytes[Off]) |
           (static_cast<uint32_t>(Bytes[Off + 1]) << 8) |
           (static_cast<uint32_t>(Bytes[Off + 2]) << 16) |
           (static_cast<uint32_t>(Bytes[Off + 3]) << 24);
  }
  void setWord(uint32_t Addr, uint32_t Value) {
    uint32_t Off = Addr - Base;
    Bytes[Off] = static_cast<uint8_t>(Value);
    Bytes[Off + 1] = static_cast<uint8_t>(Value >> 8);
    Bytes[Off + 2] = static_cast<uint8_t>(Value >> 16);
    Bytes[Off + 3] = static_cast<uint8_t>(Value >> 24);
  }
  uint32_t symbol(const std::string &Name) const;
};

/// Default load address; the page below it is left unmapped so stray null
/// dereferences fault.
inline constexpr uint32_t DefaultBase = 0x1000;

/// Hard ceiling on the laid-out image size. Checked before the byte buffer
/// is allocated, so a program whose data alignment or sheer size would
/// produce a multi-gigabyte (or address-wrapping) image fails with a
/// LayoutError instead of an allocation attempt.
inline constexpr uint64_t MaxImageBytes = 1ull << 28; // 256 MiB

/// Lays out \p Prog into an image. Fails with a LayoutError Status on
/// unresolved symbols, out-of-range displacements, or an image exceeding
/// MaxImageBytes; the squash pipeline propagates the error rather than
/// dying.
Expected<Image> layoutProgramOrError(const Program &Prog,
                                     uint32_t Base = DefaultBase);

/// As above, but places functions in the explicit order \p FuncOrder (a
/// permutation of indices into Prog.Functions); blocks keep their in-
/// function order. This is the seam the profile-guided layout pass drives:
/// under the identity permutation the image is byte-identical to the
/// two-argument overload, and Image::Blocks stays indexed by Cfg block id
/// (function-then-block in *program* order) regardless of placement, so
/// profile collection is order-independent. An empty \p FuncOrder means
/// identity; anything else that is not a permutation is a LayoutError.
Expected<Image> layoutProgramOrError(const Program &Prog, uint32_t Base,
                                     const std::vector<unsigned> &FuncOrder);

/// Convenience wrapper for tools and tests: as layoutProgramOrError, but a
/// failure is fatal (reported and aborted).
Image layoutProgram(const Program &Prog, uint32_t Base = DefaultBase);

/// Encodes one symbolic instruction at address \p PC, resolving any symbol
/// through \p Syms. Shared by the linker and by squash's rewriter (which
/// uses it with a symbol map whose entries for compressed code point at
/// entry stubs). Fails with LayoutError on unresolved symbols or
/// out-of-range fields.
Expected<uint32_t>
encodeInstOrError(const Inst &I, uint32_t PC,
                  const std::unordered_map<std::string, uint32_t> &Syms);

/// Convenience wrapper: as encodeInstOrError, but failure is fatal.
uint32_t encodeInst(const Inst &I, uint32_t PC,
                    const std::unordered_map<std::string, uint32_t> &Syms);

/// Computes the Alpha-style hi/lo split of \p Value such that
/// (sext(Hi) << 16) + sext(Lo) == Value.
void splitHiLo(uint32_t Value, uint16_t &Hi, uint16_t &Lo);

} // namespace vea

#endif // SQUASH_LINK_LAYOUT_H
