//===- compact/Compact.cpp - squeeze-like code compaction -----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "compact/Compact.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace vea;

namespace {

/// True for operate instructions that write r31 without side effects.
static bool isIrNop(const Inst &I) {
  Format Form = formatOf(I.Op);
  if (Form != Format::OpRRR && Form != Format::OpRRI)
    return false;
  if (I.Op == Opcode::Udiv || I.Op == Opcode::Urem)
    return false;
  return I.Rc == RegZero;
}

/// True for moves with no effect (rd = rd).
static bool isIdentityMove(const Inst &I) {
  if (I.Op == Opcode::Or && I.Rc == I.Ra && I.Rb == RegZero)
    return true;
  if (I.Op == Opcode::Add && I.Rc == I.Ra && I.Rb == RegZero)
    return true;
  if (I.Op == Opcode::Lda && I.Reloc == RelocKind::None && I.Imm == 0 &&
      I.Ra == I.Rb)
    return true;
  return false;
}

class Compactor {
public:
  Compactor(Program &Prog, const CompactOptions &Opts)
      : Prog(Prog), Opts(Opts) {}

  Expected<CompactStats> run();

private:
  void removeNopsAndDeadMoves();
  void threadBranches();
  void removeFallthroughBranches();
  void removeUnreachable();

  Program &Prog;
  const CompactOptions &Opts;
  CompactStats Stats;
};

} // namespace

void Compactor::removeNopsAndDeadMoves() {
  for (auto &F : Prog.Functions) {
    for (auto &B : F.Blocks) {
      std::vector<Inst> Kept;
      Kept.reserve(B.Insts.size());
      for (auto &I : B.Insts) {
        if (Opts.RemoveNops && isIrNop(I)) {
          ++Stats.NopsRemoved;
          continue;
        }
        if (Opts.RemoveDeadMoves && isIdentityMove(I)) {
          ++Stats.DeadMovesRemoved;
          continue;
        }
        Kept.push_back(std::move(I));
      }
      if (Kept.empty()) {
        // Keep the block non-empty; a lone nop preserves fallthrough.
        Inst Nop;
        Nop.Op = Opcode::Or;
        Nop.Rc = Nop.Ra = Nop.Rb = RegZero;
        Kept.push_back(Nop);
        --Stats.NopsRemoved;
      }
      B.Insts = std::move(Kept);
    }
  }
}

void Compactor::threadBranches() {
  // Find trampolines: non-entry blocks whose body is exactly `br TARGET`.
  std::unordered_map<std::string, std::string> Tramp;
  for (const auto &F : Prog.Functions) {
    for (size_t BI = 1; BI < F.Blocks.size(); ++BI) {
      const BasicBlock &B = F.Blocks[BI];
      if (B.Insts.size() == 1 && B.Insts[0].Op == Opcode::Br &&
          B.Insts[0].Reloc == RelocKind::BranchDisp)
        Tramp[B.Label] = B.Insts[0].Symbol;
    }
  }
  if (Tramp.empty())
    return;

  auto Resolve = [&](const std::string &Label) {
    std::string Cur = Label;
    std::unordered_set<std::string> Seen;
    while (Tramp.count(Cur) && Seen.insert(Cur).second)
      Cur = Tramp[Cur];
    return Cur;
  };

  for (auto &F : Prog.Functions) {
    for (auto &B : F.Blocks) {
      for (auto &I : B.Insts) {
        // Calls are never threaded: their targets must stay function
        // entries.
        if (I.Reloc == RelocKind::BranchDisp && I.Op != Opcode::Bsr) {
          std::string To = Resolve(I.Symbol);
          if (To != I.Symbol) {
            I.Symbol = To;
            ++Stats.BranchesThreaded;
          }
        }
      }
      if (B.Switch) {
        for (auto &T : B.Switch->Targets)
          T = Resolve(T);
        if (DataObject *Tab = Prog.findData(B.Switch->TableSymbol))
          for (auto &SW : Tab->SymWords)
            SW.Symbol = Resolve(SW.Symbol);
      }
    }
  }
  // Note: data-object references to blocks (function-pointer tables) are
  // left alone; only entries of functions can appear there and entries are
  // never trampoline candidates.
}

void Compactor::removeFallthroughBranches() {
  for (auto &F : Prog.Functions) {
    for (size_t BI = 0; BI + 1 < F.Blocks.size(); ++BI) {
      BasicBlock &B = F.Blocks[BI];
      if (B.Insts.empty())
        continue;
      Inst &Last = B.Insts.back();
      if (Last.Op == Opcode::Br &&
          Last.Symbol == F.Blocks[BI + 1].Label) {
        B.Insts.pop_back();
        ++Stats.RedundantBranchesRemoved;
        if (B.Insts.empty()) {
          Inst Nop;
          Nop.Op = Opcode::Or;
          Nop.Rc = Nop.Ra = Nop.Rb = RegZero;
          B.Insts.push_back(Nop);
        }
      }
    }
  }
}

void Compactor::removeUnreachable() {
  // Joint reachability over blocks and data objects, seeded at the entry
  // function. A reference from live code or live data keeps its target
  // live; everything else is removed.
  Cfg G(Prog);
  std::unordered_set<unsigned> LiveBlocks;
  std::unordered_set<std::string> LiveData;
  std::vector<unsigned> BlockWork;
  std::vector<std::string> DataWork;

  std::unordered_map<std::string, const DataObject *> DataByName;
  for (const auto &D : Prog.Data)
    DataByName[D.Name] = &D;

  auto MarkBlock = [&](unsigned Id) {
    if (LiveBlocks.insert(Id).second)
      BlockWork.push_back(Id);
  };
  auto MarkSymbol = [&](const std::string &Sym) {
    if (G.hasLabel(Sym)) {
      MarkBlock(G.idOf(Sym));
    } else if (DataByName.count(Sym) && LiveData.insert(Sym).second) {
      DataWork.push_back(Sym);
    }
  };

  MarkBlock(G.idOf(Prog.EntryFunction));
  while (!BlockWork.empty() || !DataWork.empty()) {
    if (!BlockWork.empty()) {
      unsigned Id = BlockWork.back();
      BlockWork.pop_back();
      for (unsigned S : G.succs(Id))
        MarkBlock(S);
      for (unsigned C : G.callees(Id))
        MarkBlock(C);
      for (const auto &I : G.block(Id).Insts)
        if (I.Reloc == RelocKind::Lo16 || I.Reloc == RelocKind::Hi16)
          MarkSymbol(I.Symbol);
      continue;
    }
    std::string Name = DataWork.back();
    DataWork.pop_back();
    for (const auto &SW : DataByName[Name]->SymWords)
      MarkSymbol(SW.Symbol);
  }

  // If any block of a function is live, its entry must survive too (the
  // Function invariant requires the entry block first).
  for (unsigned FI = 0; FI != G.numFunctions(); ++FI) {
    unsigned Entry = G.entryBlock(FI);
    unsigned End = FI + 1 == G.numFunctions()
                       ? G.numBlocks()
                       : G.entryBlock(FI + 1);
    for (unsigned Id = Entry; Id != End; ++Id)
      if (LiveBlocks.count(Id)) {
        MarkBlock(Entry);
        break;
      }
  }

  // Rebuild the program.
  std::vector<Function> NewFuncs;
  unsigned Id = 0;
  for (auto &F : Prog.Functions) {
    Function NF;
    NF.Name = F.Name;
    for (auto &B : F.Blocks) {
      if (LiveBlocks.count(Id))
        NF.Blocks.push_back(std::move(B));
      else
        ++Stats.UnreachableBlocksRemoved;
      ++Id;
    }
    if (NF.Blocks.empty())
      ++Stats.UnreachableFunctionsRemoved;
    else
      NewFuncs.push_back(std::move(NF));
  }
  Prog.Functions = std::move(NewFuncs);

  std::vector<DataObject> NewData;
  for (auto &D : Prog.Data)
    if (LiveData.count(D.Name))
      NewData.push_back(std::move(D));
  Prog.Data = std::move(NewData);
}

Expected<CompactStats> Compactor::run() {
  // Reject malformed input before any transform runs: the reachability pass
  // builds a Cfg, which requires every referenced label to exist.
  std::string InErr = Prog.verify();
  if (!InErr.empty())
    return Status::error(StatusCode::MalformedProgram,
                         "compact: input does not verify: " + InErr);

  Stats.InputInstructions = Prog.instructionCount();
  if (Opts.RemoveNops || Opts.RemoveDeadMoves)
    removeNopsAndDeadMoves();
  if (Opts.ThreadBranches) {
    threadBranches();
    removeFallthroughBranches();
  }
  if (Opts.RemoveUnreachable)
    removeUnreachable();
  Stats.OutputInstructions = Prog.instructionCount();

  std::string Err = Prog.verify();
  if (!Err.empty())
    return Status::error(StatusCode::InternalError,
                         "compact: produced invalid program: " + Err);
  return Stats;
}

Expected<CompactStats> vea::compactProgram(Program &Prog,
                                           const CompactOptions &Opts) {
  Compactor C(Prog, Opts);
  return C.run();
}

Expected<CompactStats> vea::compactProgram(Program &Prog) {
  CompactOptions Opts;
  return compactProgram(Prog, Opts);
}
