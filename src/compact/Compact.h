//===- compact/Compact.h - squeeze-like code compaction --------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A light-weight stand-in for the authors' prior code compactor *squeeze*
/// [Debray et al., TOPLAS 2000]. The paper's inputs are binaries that have
/// already been squeezed; squash's reductions are measured relative to that
/// baseline. This module provides the same role: it removes unreachable
/// functions and blocks, strips no-ops (scheduling padding), threads
/// branch chains, and drops trivially dead moves, producing the "Squeeze"
/// column of Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_COMPACT_COMPACT_H
#define SQUASH_COMPACT_COMPACT_H

#include "ir/IR.h"
#include "support/Status.h"

#include <cstdint>

namespace vea {

struct CompactStats {
  uint64_t InputInstructions = 0;
  uint64_t OutputInstructions = 0;
  uint64_t UnreachableBlocksRemoved = 0;
  uint64_t UnreachableFunctionsRemoved = 0;
  uint64_t NopsRemoved = 0;
  uint64_t BranchesThreaded = 0;
  uint64_t RedundantBranchesRemoved = 0;
  uint64_t DeadMovesRemoved = 0;
};

struct CompactOptions {
  bool RemoveUnreachable = true;
  bool RemoveNops = true;
  bool ThreadBranches = true;
  bool RemoveDeadMoves = true;
};

/// Compacts \p Prog in place and returns what was done. The result still
/// verifies and is behaviour-preserving. Fails with MalformedProgram if the
/// input does not verify (the program is left untouched), or InternalError
/// if compaction itself produced a program that no longer verifies.
Expected<CompactStats> compactProgram(Program &Prog,
                                      const CompactOptions &Opts);
Expected<CompactStats> compactProgram(Program &Prog);

} // namespace vea

#endif // SQUASH_COMPACT_COMPACT_H
