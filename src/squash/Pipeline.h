//===- squash/Pipeline.h - Pass manager for the squash pipeline -*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The squash pipeline as a declarative pass list over a shared analysis
/// context (DESIGN.md §14). Each stage of the paper's tool flow is a named
/// Pass; a PassManager owns the ordered list and uniformly provides
/// per-pass wall-clock timing (feeding SquashStats and the squash.time.*
/// metric names), per-pass hooks (fault injection, logging), a pass trace,
/// and prefix/skip execution (runUntil, Options::DisabledPasses) so tools
/// and ablation benches never re-implement stage subsets by hand.
///
/// The PipelineContext carries the evolving state between passes: the
/// Program (which Unswitch rewrites), the Profile, the Options, the
/// SquashResult under construction, the candidate-block flags, the region
/// partition, the buffer-safety flags — and a CFG cache with explicit
/// invalidation. Passes call cfg() instead of building their own
/// vea::Cfg; Unswitch invalidates after mutating the program and every
/// later pass reuses one shared rebuild.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_PIPELINE_H
#define SQUASH_SQUASH_PIPELINE_H

#include "squash/Driver.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace squash {

/// Mutable state threaded through the pass pipeline. Constructed over a
/// Program/Profile/Options/SquashResult that must outlive it; the
/// SquashResult accumulates everything callers consume (stats, pass trace,
/// the squashed program itself).
class PipelineContext {
public:
  PipelineContext(vea::Program &Prog, const vea::Profile &Prof,
                  const Options &Opts, SquashResult &Result);

  vea::Program &program() { return Prog; }
  const vea::Profile &profile() const { return Prof; }
  const Options &options() const { return Opts; }
  SquashResult &result() { return Result; }

  /// The CFG of the current program, built on first use and cached until
  /// invalidateCfg(). Passes that mutate the program (Unswitch) must
  /// invalidate; every other pass reuses the shared instance.
  const vea::Cfg &cfg();

  /// Per-function block-id lists derived from (and cached with) the CFG.
  /// Lets passes touch "every block of function F" in time proportional to
  /// the function instead of scanning the whole program.
  const std::vector<std::vector<unsigned>> &functionBlocks();

  /// Drops the cached CFG (and derived indexes). The next cfg() call
  /// rebuilds from the current program.
  void invalidateCfg();

  /// How many times the CFG has been (re)built — the cache-effectiveness
  /// observable the pipeline tests assert on (the standard pipeline builds
  /// exactly twice: once before Unswitch, once after).
  unsigned cfgBuilds() const { return CfgBuildCount; }

  /// Evolving candidate-block flags (one per CFG block id): seeded by the
  /// cold-code pass, narrowed by unswitching and the candidacy filters,
  /// consumed by region formation.
  std::vector<uint8_t> Candidate;

  /// Region partition produced by the regions pass.
  Partition Part;

  /// Per-function buffer-safety flags produced by the buffer-safe pass.
  std::vector<uint8_t> BufferSafeFuncs;

  /// Per-region coder choices produced by the codec-select pass and
  /// consumed (moved out) by the rewrite pass. Empty = all Huffman.
  CodecPlan Plan;

  /// Hot-half function placement produced by the layout pass (a
  /// permutation of function indices) and consumed by the rewrite pass.
  /// Empty = identity order, the byte-stable default.
  std::vector<unsigned> FuncOrder;

  /// 4 * instruction count of the *input* program (before unswitching
  /// grows it), recorded into FootprintBreakdown::OriginalCodeBytes.
  uint32_t OriginalCodeBytes = 0;

private:
  vea::Program &Prog;
  const vea::Profile &Prof;
  const Options &Opts;
  SquashResult &Result;
  std::unique_ptr<vea::Cfg> CachedCfg;
  std::vector<std::vector<unsigned>> FuncBlocks;
  unsigned CfgBuildCount = 0;
};

/// One stage of the squash pipeline. Passes are stateless between runs;
/// everything they read and write lives in the PipelineContext.
class Pass {
public:
  virtual ~Pass() = default;

  /// Stable pass name (Options::DisabledPasses, --stop-after, the trace).
  virtual const char *name() const = 0;

  /// Executes the pass. Errors abort the pipeline.
  virtual vea::Status run(PipelineContext &Ctx) = 0;

  /// What the pass must still do when listed in Options::DisabledPasses so
  /// that downstream passes stay correct. Default: nothing. Passes whose
  /// work is load-bearing override this with their conservative fallback
  /// (e.g. Unswitch excludes candidate switch blocks instead of
  /// transforming them).
  virtual vea::Status runDisabled(PipelineContext &Ctx) {
    (void)Ctx;
    return vea::Status::success();
  }

  /// SquashStats member this pass's wall time accumulates into, or null if
  /// only the pass trace records it. The mapping preserves the historical
  /// squash.time.* metric names (the three candidacy passes all fold into
  /// unswitch_seconds, exactly what the monolithic driver measured).
  virtual double SquashStats::*statSlot() const { return nullptr; }
};

/// Owns an ordered pass list and runs it over a context. Timing, tracing,
/// stat accumulation, DisabledPasses handling, and hook invocation are
/// uniform across passes — individual passes carry none of that logic.
class PassManager {
public:
  /// Called around every executed pass (fault injection, logging). A
  /// non-Ok return aborts the pipeline with that status.
  using Hook = std::function<vea::Status(const Pass &, PipelineContext &)>;

  /// Appends \p P to the pipeline and returns it for further configuration.
  Pass &addPass(std::unique_ptr<Pass> P);

  size_t size() const { return Passes.size(); }
  const Pass &pass(size_t I) const { return *Passes[I]; }
  bool hasPass(const std::string &Name) const;
  /// Pass names in execution order.
  std::vector<std::string> passNames() const;

  /// Hooks run before / after each pass (skipped passes included, so a
  /// fault injector can target any pipeline point).
  void setPreHook(Hook H) { Pre = std::move(H); }
  void setPostHook(Hook H) { Post = std::move(H); }

  /// Runs every pass in order. Each pass is individually timed; its
  /// seconds are appended to SquashResult::PassTrace and accumulated into
  /// its SquashStats slot, and the loop's total lands in
  /// SquashStats::TotalSeconds. Passes named in Options::DisabledPasses
  /// execute their runDisabled fallback instead (traced as disabled); a
  /// DisabledPasses entry naming no registered pass is an InvalidArgument
  /// error, not a silent no-op.
  vea::Status run(PipelineContext &Ctx);

  /// Runs the prefix of the pipeline up to and including \p LastPass;
  /// fails with InvalidArgument if no pass has that name. The context and
  /// result are left in the valid intermediate state the prefix produced
  /// (squash_tool --stop-after).
  vea::Status runUntil(PipelineContext &Ctx, const std::string &LastPass);

private:
  vea::Status runPrefix(PipelineContext &Ctx, size_t End);

  std::vector<std::unique_ptr<Pass>> Passes;
  Hook Pre, Post;
};

/// Appends the standard squash pipeline to \p PM — the paper's tool flow,
/// one pass per stage plus the two candidacy filters the monolithic driver
/// used to inline:
///
///   cold-code, unswitch, filter-setjmp-indirect, filter-computed-jump,
///   regions, buffer-safe, codec-select, layout, rewrite
void buildStandardPipeline(PassManager &PM);

/// Names of the standard passes, in order (squash_tool --print-pipeline).
std::vector<std::string> standardPassNames();

/// Renders \p Trace as an aligned, log-able table (one pass per row with
/// its seconds and executed/disabled/failed status).
std::string formatPassTrace(const std::vector<PassTraceEntry> &Trace);

} // namespace squash

#endif // SQUASH_SQUASH_PIPELINE_H
