//===- squash/CostModel.h - Shared runtime cycle-cost model ----*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for every cycle constant the simulated
/// runtime charges and every formula the offline passes use to predict
/// those charges. The runtime trap path (RuntimeSystem::fillBuffer), the
/// codec-select objective, and the telemetry ledger all price work through
/// this header, so a constant edited here moves the whole system together
/// — and tests/costmodel_test.cpp fails if any of them re-derive a charge
/// that drifts from these formulas.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_COSTMODEL_H
#define SQUASH_SQUASH_COSTMODEL_H

#include "huff/Codec.h"

#include <cstdint>

namespace squash {

/// Cycle charges for the simulated runtime services (see DESIGN.md §6).
struct CostModel {
  uint64_t DecompSetupCycles = 64;    ///< Register save/restore + dispatch.
  uint64_t CyclesPerDecodedInstr = 24; ///< Canonical Huffman decode work.
  uint64_t IcacheFlushCycles = 32;    ///< Post-decompression flush.
  uint64_t CreateStubCycles = 16;     ///< Restore-stub create/reuse.
  /// Pattern-codec charge per instruction materialized from a dictionary
  /// pattern (a table copy, far cheaper than a canonical decode); escaped
  /// instructions pay CyclesPerDecodedInstr.
  uint64_t PatternCyclesPerCoveredInstr = 6;
  /// Context-codec charge per decoded instruction (an extra indirection
  /// per opcode to pick the context table).
  uint64_t ContextCyclesPerDecodedInstr = 28;
};

/// Modeled cycle charge for decoding one region fill with codec \p Kind,
/// given the decode work the coder reported for the region. The same
/// formula prices a fill in the runtime (RuntimeSystem::fillBuffer) and a
/// candidate in the codec-select pass, so the selection objective and the
/// simulated cost can never drift apart.
inline uint64_t codecDecodeCycles(const CostModel &C, CodecKind Kind,
                                  const DecodeWork &W) {
  switch (Kind) {
  case CodecKind::Huffman:
    return C.CyclesPerDecodedInstr * W.Instructions;
  case CodecKind::Pattern:
    return C.PatternCyclesPerCoveredInstr * W.PatternCovered +
           C.CyclesPerDecodedInstr * W.Escapes;
  case CodecKind::Context:
    return C.ContextCyclesPerDecodedInstr * W.Instructions;
  }
  return C.CyclesPerDecodedInstr * W.Instructions;
}

/// The three components a region fill charges, in the order the ledger
/// attributes them. Built by regionFillCharge so the runtime and any
/// offline predictor price a fill identically.
struct FillCharge {
  uint64_t Setup = 0;  ///< Trap setup (DecompSetupCycles).
  uint64_t Decode = 0; ///< Per-codec decode work (0 for a prefetched fill).
  uint64_t Flush = 0;  ///< Flat post-fill I-cache flush charge.

  uint64_t total() const { return Setup + Decode + Flush; }
};

/// Prices one region fill: trap setup, \p DecodeCycles of decode work, and
/// the flat I-cache flush constant. When \p ModeledIcache is true the
/// machine simulates the I-cache itself — the runtime invalidates the
/// written lines instead, the cost surfaces as fetch misses, and the flat
/// flush charge must be zero or the flush would be double-counted.
inline FillCharge regionFillCharge(const CostModel &C, uint64_t DecodeCycles,
                                   bool ModeledIcache) {
  FillCharge F;
  F.Setup = C.DecompSetupCycles;
  F.Decode = DecodeCycles;
  F.Flush = ModeledIcache ? 0 : C.IcacheFlushCycles;
  return F;
}

} // namespace squash

#endif // SQUASH_SQUASH_COSTMODEL_H
