//===- squash/Regions.cpp - Compressible region formation -----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Regions.h"

#include <algorithm>
#include <map>
#include <unordered_set>

using namespace squash;
using vea::Cfg;

RegionEntryAnalysis::RegionEntryAnalysis(const Cfg &G) : G(G) {
  Callers.resize(G.numBlocks());
  for (unsigned Id = 0; Id != G.numBlocks(); ++Id)
    for (unsigned Callee : G.callees(Id))
      Callers[Callee].push_back(Id);
  ProgramEntry = G.idOf(G.program().EntryFunction);
}

bool RegionEntryAnalysis::isEntry(unsigned B,
                                  const std::vector<int32_t> &RegionOf,
                                  int32_t Self) const {
  if (B == ProgramEntry || G.isAddressTaken(B))
    return true;
  if (!Callers[B].empty())
    return true;
  for (unsigned P : G.preds(B))
    if (RegionOf[P] != Self)
      return true;
  return false;
}

void RegionEntryAnalysis::externalSources(
    unsigned B, const std::vector<int32_t> &RegionOf, int32_t Self,
    std::unordered_set<int32_t> &Out) const {
  if (B == ProgramEntry || G.isAddressTaken(B) || !Callers[B].empty())
    Out.insert(-2); // Sources no merge can absorb.
  for (unsigned P : G.preds(B))
    if (RegionOf[P] != Self)
      Out.insert(RegionOf[P]);
}

std::vector<unsigned>
squash::regionEntryPoints(const RegionEntryAnalysis &A,
                          const std::vector<unsigned> &Blocks,
                          const std::vector<int32_t> &RegionOf,
                          int32_t SelfRegion) {
  std::vector<unsigned> Entries;
  for (unsigned B : Blocks)
    if (A.isEntry(B, RegionOf, SelfRegion))
      Entries.push_back(B);
  return Entries;
}

std::vector<unsigned>
squash::regionEntryPoints(const Cfg &G, const std::vector<unsigned> &Blocks,
                          const std::vector<int32_t> &RegionOf,
                          int32_t SelfRegion) {
  return regionEntryPoints(RegionEntryAnalysis(G), Blocks, RegionOf,
                           SelfRegion);
}

void RegionStats::exportMetrics(vea::MetricsRegistry &R,
                                const std::string &Prefix) const {
  R.setCounter(Prefix + "initial", InitialRegions);
  R.setCounter(Prefix + "packed", PackedRegions);
  R.setCounter(Prefix + "merges", Merges);
  R.setCounter(Prefix + "rejected_roots", RejectedRoots);
  R.setCounter(Prefix + "compressible_instructions",
               CompressibleInstructions);
}

/// True if \p A's terminator permits falling through to the next block.
static bool fallsThrough(const Cfg &G, unsigned A) {
  return G.block(A).canFallThrough();
}

//===----------------------------------------------------------------------===//
// Initial DFS regions
//===----------------------------------------------------------------------===//

static void formInitialRegions(const Cfg &G, const RegionEntryAnalysis &Ctx,
                               const std::vector<uint8_t> &Compressible,
                               const Options &Opts, Partition &Part,
                               RegionStats &Stats) {
  const uint32_t KWords = std::max<uint32_t>(1, Opts.BufferBoundBytes / 4);
  std::vector<uint8_t> FailedRoot(G.numBlocks(), 0);

  // Per-root processed marks, epoch-stamped so the vector is allocated
  // once for the whole pass. A block's accept/reject outcome is fixed the
  // first time it is popped (the word budget only grows within a root), so
  // once marked it is never re-tested — and never re-pushed — for this
  // root. Without this a dense cold CFG re-tests every over-budget block
  // once per incoming edge per root.
  std::vector<unsigned> SeenEpoch(G.numBlocks(), 0);

  for (unsigned Root = 0; Root != G.numBlocks(); ++Root) {
    if (!Compressible[Root] || Part.RegionOf[Root] >= 0 || FailedRoot[Root])
      continue;
    unsigned Func = G.functionOf(Root);
    const unsigned Epoch = Root + 1;

    // Depth-first search bounded to K instructions, compressible blocks,
    // a single function (Section 4).
    std::vector<unsigned> Tree;
    uint32_t TreeWords = 0;
    std::vector<unsigned> Stack = {Root};
    while (!Stack.empty()) {
      unsigned B = Stack.back();
      Stack.pop_back();
      if (SeenEpoch[B] == Epoch)
        continue; // Already decided for this root (duplicate in stack).
      SeenEpoch[B] = Epoch;
      if (!Compressible[B] || Part.RegionOf[B] >= 0 ||
          G.functionOf(B) != Func)
        continue;
      uint32_t Size = G.block(B).size();
      if (TreeWords + Size > KWords)
        continue;
      Tree.push_back(B);
      TreeWords += Size;
      for (unsigned S : G.succs(B))
        if (SeenEpoch[S] != Epoch)
          Stack.push_back(S);
    }
    if (Tree.empty())
      continue;

    // Profitability: entry stubs cost E instructions; compression saves
    // (1 - γ) I.
    std::sort(Tree.begin(), Tree.end());
    int32_t Self = static_cast<int32_t>(Part.Regions.size());
    auto Trial = Part.RegionOf;
    for (unsigned B : Tree)
      Trial[B] = Self;
    unsigned NumEntries = 0;
    for (unsigned B : Tree)
      if (Ctx.isEntry(B, Trial, Self))
        ++NumEntries;
    double SavedWords = (1.0 - Opts.Gamma) * TreeWords;
    double StubWords = 2.0 * NumEntries;
    if (StubWords >= SavedWords) {
      FailedRoot[Root] = 1;
      ++Stats.RejectedRoots;
      continue;
    }

    Region R;
    R.Blocks = std::move(Tree);
    for (unsigned B : R.Blocks)
      Part.RegionOf[B] = Self;
    Part.Regions.push_back(std::move(R));
  }
  Stats.InitialRegions = Part.Regions.size();
}

//===----------------------------------------------------------------------===//
// Packing (greedy pair merging)
//===----------------------------------------------------------------------===//

namespace {
/// Heuristic weights for the paper's packing savings: a merge saves the
/// offset-table word, two words per removable entry stub, the extra buffer
/// word plus restore-stub traffic per internalized call, and one word per
/// fallthrough edge that no longer needs an explicit jump.
constexpr uint32_t OffsetWordSaving = 1;
constexpr uint32_t EntryStubSaving = 2;
constexpr uint32_t FallthroughSaving = 1;
} // namespace

static void packRegions(const Cfg &G, const RegionEntryAnalysis &Ctx,
                        const Options &Opts, Partition &Part,
                        RegionStats &Stats) {
  const uint32_t KWords = std::max<uint32_t>(1, Opts.BufferBoundBytes / 4);

  std::vector<uint32_t> SizeOf(Part.Regions.size());
  std::vector<uint8_t> Dead(Part.Regions.size(), 0);
  for (size_t I = 0; I != Part.Regions.size(); ++I)
    SizeOf[I] = Part.Regions[I].sizeWords(G);

  auto Merge = [&](int32_t A, int32_t B) {
    // Merge B into A.
    auto &RA = Part.Regions[A].Blocks;
    auto &RB = Part.Regions[B].Blocks;
    RA.insert(RA.end(), RB.begin(), RB.end());
    std::sort(RA.begin(), RA.end());
    for (unsigned Blk : RB)
      Part.RegionOf[Blk] = A;
    SizeOf[A] += SizeOf[B];
    RB.clear();
    Dead[B] = 1;
    ++Stats.Merges;
  };

  // Phase 1: merge connected pairs by exact savings.
  for (;;) {
    std::map<std::pair<int32_t, int32_t>, uint32_t> PairSavings;
    auto Credit = [&](int32_t A, int32_t B, uint32_t W) {
      if (A < 0 || B < 0 || A == B)
        return;
      auto Key = std::minmax(A, B);
      PairSavings[{Key.first, Key.second}] += W;
    };

    for (unsigned Blk = 0; Blk != G.numBlocks(); ++Blk) {
      int32_t RB = Part.RegionOf[Blk];
      // Entry-stub removal: creditable when the block has exactly one
      // external source region (which must itself be a region).
      if (RB >= 0 && Ctx.isEntry(Blk, Part.RegionOf, RB)) {
        std::unordered_set<int32_t> Sources;
        Ctx.externalSources(Blk, Part.RegionOf, RB, Sources);
        if (Sources.size() == 1 && *Sources.begin() >= 0)
          Credit(RB, *Sources.begin(), EntryStubSaving);
      }
      // (Calls never merge away: they always route through entry stubs and
      // restore stubs, so they earn no packing credit.)
      // Original-order fallthrough across regions.
      if (RB >= 0 && Blk + 1 < G.numBlocks() &&
          G.functionOf(Blk) == G.functionOf(Blk + 1) &&
          fallsThrough(G, Blk) && Part.RegionOf[Blk + 1] >= 0 &&
          Part.RegionOf[Blk + 1] != RB)
        Credit(RB, Part.RegionOf[Blk + 1], FallthroughSaving);
    }

    int32_t BestA = -1, BestB = -1;
    uint32_t BestSavings = 0;
    for (const auto &[Key, W] : PairSavings) {
      uint32_t Total = W + OffsetWordSaving;
      if (SizeOf[Key.first] + SizeOf[Key.second] > KWords)
        continue;
      if (Total > BestSavings) {
        BestSavings = Total;
        BestA = Key.first;
        BestB = Key.second;
      }
    }
    if (BestA < 0 || BestSavings <= OffsetWordSaving)
      break;
    Merge(BestA, BestB);
  }

  // Phase 2: bin-pack the remainder (each merge still saves the offset
  // word). First-fit decreasing over live regions.
  std::vector<int32_t> Live;
  for (size_t I = 0; I != Part.Regions.size(); ++I)
    if (!Dead[I])
      Live.push_back(static_cast<int32_t>(I));
  std::sort(Live.begin(), Live.end(), [&](int32_t A, int32_t B) {
    return SizeOf[A] > SizeOf[B];
  });
  std::vector<int32_t> Bins;
  for (int32_t R : Live) {
    bool Placed = false;
    for (int32_t Bin : Bins) {
      if (SizeOf[Bin] + SizeOf[R] <= KWords) {
        Merge(Bin, R);
        Placed = true;
        break;
      }
    }
    if (!Placed)
      Bins.push_back(R);
  }

  // Compact the region list and renumber.
  std::vector<Region> NewRegions;
  std::vector<int32_t> NewIndex(Part.Regions.size(), -1);
  for (size_t I = 0; I != Part.Regions.size(); ++I) {
    if (Dead[I] || Part.Regions[I].Blocks.empty())
      continue;
    NewIndex[I] = static_cast<int32_t>(NewRegions.size());
    NewRegions.push_back(std::move(Part.Regions[I]));
  }
  for (auto &R : Part.RegionOf)
    if (R >= 0)
      R = NewIndex[R];
  Part.Regions = std::move(NewRegions);
}

//===----------------------------------------------------------------------===//
// Whole-function regions (the strawman of Section 4, kept for ablation)
//===----------------------------------------------------------------------===//

/// One region per fully-cold function; no K bound (the runtime buffer must
/// hold the largest compressed function, which is exactly the problem the
/// paper's sub-function regions solve).
static void formWholeFunctionRegions(const Cfg &G, const RegionEntryAnalysis &Ctx,
                                     const std::vector<uint8_t> &Compressible,
                                     const Options &Opts, Partition &Part,
                                     RegionStats &Stats) {
  for (unsigned FI = 0; FI != G.numFunctions(); ++FI) {
    unsigned Begin = G.entryBlock(FI);
    unsigned End = FI + 1 == G.numFunctions() ? G.numBlocks()
                                              : G.entryBlock(FI + 1);
    bool AllCold = true;
    uint32_t Words = 0;
    for (unsigned B = Begin; B != End; ++B) {
      AllCold &= Compressible[B] != 0;
      Words += G.block(B).size();
    }
    if (!AllCold)
      continue;

    int32_t Self = static_cast<int32_t>(Part.Regions.size());
    Region R;
    for (unsigned B = Begin; B != End; ++B)
      R.Blocks.push_back(B);
    auto Trial = Part.RegionOf;
    for (unsigned B : R.Blocks)
      Trial[B] = Self;
    unsigned NumEntries = 0;
    for (unsigned B : R.Blocks)
      if (Ctx.isEntry(B, Trial, Self))
        ++NumEntries;
    if (2.0 * NumEntries >= (1.0 - Opts.Gamma) * Words) {
      ++Stats.RejectedRoots;
      continue;
    }
    for (unsigned B : R.Blocks)
      Part.RegionOf[B] = Self;
    Part.Regions.push_back(std::move(R));
  }
  Stats.InitialRegions = Part.Regions.size();
}

vea::Expected<Partition>
squash::formRegions(const Cfg &G, const std::vector<uint8_t> &Compressible,
                    const Options &Opts, RegionStats *StatsOut) {
  if (Compressible.size() != G.numBlocks())
    return vea::Status::error(
        vea::StatusCode::InvalidArgument,
        "regions: candidate set does not match program");

  Partition Part;
  Part.RegionOf.assign(G.numBlocks(), -1);
  RegionStats Stats;
  RegionEntryAnalysis Ctx(G);

  if (Opts.WholeFunctionRegions) {
    formWholeFunctionRegions(G, Ctx, Compressible, Opts, Part, Stats);
  } else {
    formInitialRegions(G, Ctx, Compressible, Opts, Part, Stats);
    if (Opts.PackRegions)
      packRegions(G, Ctx, Opts, Part, Stats);
  }

  Stats.PackedRegions = Part.Regions.size();
  Stats.CompressibleInstructions = Part.compressedInstructions(G);
  if (StatsOut)
    *StatsOut = Stats;
  return Part;
}
