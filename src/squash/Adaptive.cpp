//===- squash/Adaptive.cpp - Online re-squash with hot-swap ---------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Adaptive.h"

#include "sim/ProfileIO.h"
#include "support/Checksum.h"
#include "support/Span.h"

#include <algorithm>
#include <cmath>

using namespace squash;
using namespace vea;

const char *squash::versionStateName(VersionState S) {
  switch (S) {
  case VersionState::Probation:
    return "probation";
  case VersionState::Committed:
    return "committed";
  case VersionState::Standby:
    return "standby";
  case VersionState::Retired:
    return "retired";
  case VersionState::RolledBack:
    return "rolled-back";
  case VersionState::Freed:
    return "freed";
  }
  return "unknown";
}

const char *squash::adaptiveEventKindName(AdaptiveEvent::Kind K) {
  switch (K) {
  case AdaptiveEvent::Kind::Trigger:
    return "trigger";
  case AdaptiveEvent::Kind::Staged:
    return "staged";
  case AdaptiveEvent::Kind::StagingRejected:
    return "staging-rejected";
  case AdaptiveEvent::Kind::Converged:
    return "converged";
  case AdaptiveEvent::Kind::Published:
    return "published";
  case AdaptiveEvent::Kind::PublishRejected:
    return "publish-rejected";
  case AdaptiveEvent::Kind::Committed:
    return "committed";
  case AdaptiveEvent::Kind::RolledBack:
    return "rolled-back";
  case AdaptiveEvent::Kind::Retired:
    return "retired";
  case AdaptiveEvent::Kind::TimedOut:
    return "timed-out";
  case AdaptiveEvent::Kind::Failed:
    return "failed";
  case AdaptiveEvent::Kind::PinLeaked:
    return "pin-leaked";
  case AdaptiveEvent::Kind::Wedged:
    return "wedged";
  }
  return "unknown";
}

void AdaptiveStats::exportMetrics(MetricsRegistry &R,
                                  const std::string &Prefix) const {
  R.setCounter(Prefix + "attempts", Attempts);
  R.setCounter(Prefix + "successes", Successes);
  R.setCounter(Prefix + "rollbacks", Rollbacks);
  R.setCounter(Prefix + "failures", Failures);
  R.setCounter(Prefix + "staging_rejects", StagingRejects);
  R.setCounter(Prefix + "publish_rejects", PublishRejects);
  R.setCounter(Prefix + "converged_attempts", ConvergedAttempts);
  R.setCounter(Prefix + "timeouts", Timeouts);
  R.setCounter(Prefix + "publications", Publications);
  R.setCounter(Prefix + "retired_versions", RetiredVersions);
  R.setCounter(Prefix + "wedged_retirements", WedgedRetirements);
  R.setCounter(Prefix + "pin_leaks", PinLeaks);
  R.setCounter(Prefix + "served_runs", ServedRuns);
  R.setCounter(Prefix + "served_during_resquash", ServedDuringResquash);
  R.setCounter(Prefix + "swap_pause_ns", SwapPauseNsTotal);
  R.setGauge(Prefix + "swap_pause_ns_max",
             static_cast<double>(SwapPauseNsMax));
  R.setGauge(Prefix + "last_resquash_seconds", LastResquashSeconds);
  R.setGauge(Prefix + "last_drift_score", LastDriftScore);
  R.setGauge(Prefix + "active_version", ActiveVersion);
  R.setGauge(Prefix + "versions", VersionsCreated);
  R.setGauge(Prefix + "probation_pending", ProbationPending ? 1.0 : 0.0);
}

namespace {

/// Serve-time observer fanout: the per-request scratch DriftMonitor plus
/// an optional caller observer (the concurrency stress test publishes
/// from the latter at exact trap indices).
struct FanoutObserver final : TrapObserver {
  TrapObserver *A = nullptr;
  TrapObserver *B = nullptr;
  void onRegionEntry(uint32_t Region, bool Filled, bool ViaRestore,
                     uint64_t ChargedCycles) override {
    if (A)
      A->onRegionEntry(Region, Filled, ViaRestore, ChargedCycles);
    if (B)
      B->onRegionEntry(Region, Filled, ViaRestore, ChargedCycles);
  }
};

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Staging gate: pure integrity. The image prefix and blob must match
/// their recorded CRCs before the image is allowed anywhere near
/// publication — a staged re-squash damaged in flight dies here.
Status validateStaging(const SquashedProgram &SP) {
  const RuntimeLayout &L = SP.Layout;
  const Image &Img = SP.Img;
  if (L.DecompEnd == L.DecompBase)
    return Status::success(); // Identity image: no runtime machinery.
  if (L.StubAreaBase < Img.Base ||
      L.StubAreaBase - Img.Base > Img.Bytes.size())
    return Status::error(StatusCode::MalformedImage,
                         "staging: image prefix out of bounds");
  const uint32_t Prefix = L.StubAreaBase - Img.Base;
  if (crc32(Img.Bytes.data(), Prefix) != L.ImageCrc32)
    return Status::error(StatusCode::MalformedImage,
                         "staging: image CRC32 mismatch");
  if (L.BlobBase < Img.Base ||
      static_cast<uint64_t>(L.BlobBase - Img.Base) + L.BlobBytes >
          Img.Bytes.size())
    return Status::error(StatusCode::MalformedImage,
                         "staging: blob out of bounds");
  if (crc32(&Img.Bytes[L.BlobBase - Img.Base], L.BlobBytes) != L.BlobCrc32)
    return Status::error(StatusCode::CorruptBlob,
                         "staging: blob CRC32 mismatch");
  return Status::success();
}

/// Publication gate: semantic coherence between the image's offset table
/// and the host-side region metadata the runtime will trust. Catches
/// faults that forged consistent checksums (PublishOffsetSkew).
Status validatePublication(const SquashedProgram &SP) {
  const RuntimeLayout &L = SP.Layout;
  const Image &Img = SP.Img;
  if (L.DecompEnd == L.DecompBase)
    return Status::success();
  uint32_t Prev = 0;
  for (size_t R = 0; R != SP.Regions.size(); ++R) {
    const RegionImageInfo &RI = SP.Regions[R];
    const uint32_t Addr = L.OffsetTableBase + 4 * static_cast<uint32_t>(R);
    if (Addr < Img.Base || Addr + 4 > Img.limit())
      return Status::error(StatusCode::CorruptOffsetTable,
                           "publish: offset table entry " +
                               std::to_string(R) + " out of image bounds");
    const uint32_t W = Img.word(Addr);
    if (W != RI.BitOffset)
      return Status::error(StatusCode::CorruptOffsetTable,
                           "publish: offset table entry " +
                               std::to_string(R) + " (" + std::to_string(W) +
                               ") disagrees with region metadata (" +
                               std::to_string(RI.BitOffset) + ")");
    if (static_cast<uint64_t>(RI.BitOffset) >= 8ull * L.BlobBytes)
      return Status::error(StatusCode::CorruptOffsetTable,
                           "publish: region " + std::to_string(R) +
                               " bit offset outside the blob");
    if (R && RI.BitOffset <= Prev)
      return Status::error(StatusCode::MalformedImage,
                           "publish: offset table not strictly increasing "
                           "at region " +
                               std::to_string(R));
    if (RI.ExpandedWords + 1 > L.SlotWords)
      return Status::error(StatusCode::MalformedImage,
                           "publish: region " + std::to_string(R) +
                               " larger than a cache slot");
    Prev = RI.BitOffset;
  }
  return Status::success();
}

} // namespace

Expected<std::unique_ptr<ResquashController>>
ResquashController::create(Program Prog, Profile Training, Options Opts,
                           AdaptiveConfig Cfg) {
  Expected<SquashResult> SROr = squashProgram(Prog, Training, Opts);
  if (!SROr) {
    Status S = SROr.status();
    return S.context("adaptive: initial squash");
  }
  std::unique_ptr<ResquashController> C(new ResquashController());
  C->Pristine = std::move(Prog);
  C->BaseOpts = Opts;
  C->Cfg = std::move(Cfg);
  C->AbsColdBudget =
      Opts.Theta *
      static_cast<double>(std::max<uint64_t>(Training.TotalInstructions, 1));
  C->EventCap = std::max<uint32_t>(C->Cfg.EventCapacity, 1);
  C->Pool = std::make_unique<ThreadPool>(
      std::max<unsigned>(C->Cfg.WorkerThreads, 1));
  auto V = std::make_unique<Version>();
  V->Id = 0;
  V->State = VersionState::Committed;
  V->Result = std::move(SROr.get());
  V->Guiding = std::move(Training);
  V->Monitor = std::make_unique<DriftMonitor>(V->Result.SP, V->Guiding);
  C->Versions.push_back(std::move(V));
  C->St.ActiveVersion = 0;
  C->St.VersionsCreated = 1;
  return std::move(C);
}

ResquashController::~ResquashController() {
  {
    std::lock_guard<std::mutex> L(Mu);
    ++Generation; // Any in-flight attempt discards its result.
  }
  Pool.reset(); // Joins the workers (pending tasks drain first).
}

SquashedRun ResquashController::serve(const std::vector<uint8_t> &Input,
                                      uint64_t MaxInstructions,
                                      TrapObserver *Extra) {
  poll();
  Version *V = nullptr;
  {
    std::lock_guard<std::mutex> L(Mu);
    V = Versions[Active].get();
    ++V->Pins; // Epoch pin: V's memory is untouchable until we unpin.
    ++St.ServedRuns;
    if (InFlight)
      ++St.ServedDuringResquash;
  }

  // The run itself holds no lock: concurrent serves and a concurrent
  // publication proceed freely while this request executes against its
  // pinned — hence coherent — version.
  DriftMonitor RunMon(V->Result.SP, V->Guiding);
  FanoutObserver Obs;
  Obs.A = &RunMon;
  Obs.B = Extra;
  SpanScope Serve("resquash.serve", "adaptive");
  SquashedRun Run = runSquashed(V->Result.SP, Input, MaxInstructions,
                                Cfg.TraceCapacity, &Obs);
  Serve.setEndCycles(Run.Run.Cycles);
  Serve.setArgs(V->Id, Run.Runtime.Decompressions);

  {
    std::lock_guard<std::mutex> L(Mu);
    if (PinLeakArmed) {
      // Injected retirement fault: this request "dies" without releasing
      // its epoch. The version can now never drain; the reaper must
      // report the wedge instead of freeing pinned memory.
      PinLeakArmed = false;
      ++St.PinLeaks;
      recordEventLocked(AdaptiveEvent::Kind::PinLeaked, V->Id);
    } else {
      --V->Pins;
    }
    if (V->Monitor)
      V->Monitor->absorb(RunMon);
    V->TrapCycles.merge(Run.Runtime.TrapCycles);
    V->Instructions += Run.Run.Instructions;
    ++V->Runs;
    if (!V->WarmupSet) {
      V->WarmupDecodeCycles = Run.Runtime.DecodeCycles.sum();
      V->WarmupSet = true;
    }
    if (V->Id == Active) {
      if (V->State == VersionState::Probation)
        probationVerdictLocked(*V);
      else if (V->State == VersionState::Committed)
        maybeTriggerLocked(*V);
    }
  }
  poll();
  return Run;
}

void ResquashController::poll() {
  std::lock_guard<std::mutex> L(Mu);
  watchdogLocked();
  if (Staged && !InProbation && Cfg.AutoPublish)
    (void)publishStagedLocked(); // Outcome recorded in counters/events.
  reapRetiredLocked();
}

Status ResquashController::drain(double TimeoutSeconds) {
  double Limit =
      TimeoutSeconds < 0.0 ? Cfg.ResquashTimeoutSeconds : TimeoutSeconds;
  const bool Settled = Pool->waitFor(Limit);
  poll();
  if (!Settled)
    return Status::error(StatusCode::DeadlineExceeded,
                         "drain: background re-squash still running after " +
                             std::to_string(Limit) + "s");
  return Status::success();
}

Status ResquashController::resquashNow() {
  AttemptInput In;
  {
    std::lock_guard<std::mutex> L(Mu);
    if (InFlight)
      return Status::error(StatusCode::InvalidArgument,
                           "resquashNow: an attempt is already in flight");
    if (Staged)
      return Status::error(StatusCode::InvalidArgument,
                           "resquashNow: a staged image is pending");
    Version &V = *Versions[Active];
    ++V.Attempts;
    ++St.Attempts;
    In.Guiding = V.Guiding;
    In.LiveUnit = V.Monitor ? V.Monitor->liveProfile(1.0) : Profile();
    In.ColdCutoff = V.Result.Cold.FrequencyCutoff;
    In.FromVersion = V.Id;
    In.Gen = Generation;
    In.Flow = SpanTracer::enabled() ? SpanTracer::instance().nextId() : 0;
    InFlight = true;
    InFlightFrom = V.Id;
    AttemptStart = Clock::now();
    recordEventLocked(AdaptiveEvent::Kind::Trigger, V.Id);
    SpanScope Trigger("resquash.trigger", "adaptive");
    Trigger.setFlow(0, In.Flow);
    Trigger.setArgs(V.Id, St.Attempts);
  }
  return runAttempt(std::move(In));
}

Status ResquashController::publishStaged() {
  std::lock_guard<std::mutex> L(Mu);
  return publishStagedLocked();
}

bool ResquashController::hasStaged() const {
  std::lock_guard<std::mutex> L(Mu);
  return Staged.has_value();
}

void ResquashController::armEpochPinLeak() {
  std::lock_guard<std::mutex> L(Mu);
  PinLeakArmed = true;
}

uint32_t ResquashController::activeVersion() const {
  std::lock_guard<std::mutex> L(Mu);
  return Active;
}

uint32_t ResquashController::versionCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return static_cast<uint32_t>(Versions.size());
}

VersionState ResquashController::versionState(uint32_t Id) const {
  std::lock_guard<std::mutex> L(Mu);
  return Id < Versions.size() ? Versions[Id]->State : VersionState::Freed;
}

const SquashResult &ResquashController::versionResult(uint32_t Id) const {
  std::lock_guard<std::mutex> L(Mu);
  return Versions.at(Id)->Result;
}

uint64_t ResquashController::versionWarmupDecodeCycles(uint32_t Id) const {
  std::lock_guard<std::mutex> L(Mu);
  return Id < Versions.size() ? Versions[Id]->WarmupDecodeCycles : 0;
}

AdaptiveStats ResquashController::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return St;
}

Status ResquashController::lastError() const {
  std::lock_guard<std::mutex> L(Mu);
  return LastError;
}

std::vector<AdaptiveEvent> ResquashController::events() const {
  std::lock_guard<std::mutex> L(Mu);
  if (Events.size() < EventCap)
    return Events;
  std::vector<AdaptiveEvent> Out;
  Out.reserve(Events.size());
  for (size_t I = 0; I != Events.size(); ++I)
    Out.push_back(Events[(EventNext + I) % Events.size()]);
  return Out;
}

uint64_t ResquashController::droppedEvents() const {
  std::lock_guard<std::mutex> L(Mu);
  return EventDropped;
}

void ResquashController::exportMetrics(MetricsRegistry &R,
                                       const std::string &Prefix) const {
  AdaptiveStats Snapshot;
  uint64_t Dropped = 0;
  bool StagedPending = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    Snapshot = St;
    Dropped = EventDropped;
    StagedPending = Staged.has_value();
  }
  Snapshot.exportMetrics(R, Prefix);
  R.setCounter(Prefix + "events_dropped", Dropped);
  R.setGauge(Prefix + "staged_pending", StagedPending ? 1.0 : 0.0);
}

Expected<ResquashController::StagedImage>
ResquashController::buildCandidate(const AttemptInput &In) const {
  if (In.LiveUnit.TotalInstructions == 0)
    return Status::error(StatusCode::InvalidArgument,
                         "resquash: no live heat to merge");
  // Mirror the offline recipe (bench/stat_drift): weight the live heat so
  // its instruction total matches the guiding profile's — enough to flip
  // every monitored region decisively hot without inflating the merged
  // total (and with it the θ cold budget) past recognition.
  const double Weight =
      static_cast<double>(
          std::max<uint64_t>(In.Guiding.TotalInstructions, 1)) /
      static_cast<double>(In.LiveUnit.TotalInstructions);
  Expected<Profile> ScaledOr = scaleProfile(In.LiveUnit, Weight);
  if (!ScaledOr)
    return Status(ScaledOr.status()).context("resquash: scale live profile");
  Expected<Profile> MergedOr = mergeProfiles({In.Guiding, ScaledOr.get()});
  if (!MergedOr)
    return Status(MergedOr.status()).context("resquash: merge profiles");
  Profile Merged = std::move(MergedOr.get());

  // Keep the absolute cold budget θ·(initial training total) and pin the
  // frequency cutoff to the triggering version's: live heat should flip
  // mispredicted regions hot, never reclassify hot blocks as cold.
  Options Opts2 = BaseOpts;
  Opts2.Theta =
      AbsColdBudget /
      static_cast<double>(std::max<uint64_t>(Merged.TotalInstructions, 1));
  Opts2.ColdCutoffCap = In.ColdCutoff;

  Expected<SquashResult> SROr =
      Cfg.PipelineOverride ? Cfg.PipelineOverride(Pristine, Merged, Opts2)
                           : squashProgram(Pristine, Merged, Opts2);
  if (!SROr)
    return Status(SROr.status()).context("resquash: pipeline");

  StagedImage SI;
  SI.Result = std::move(SROr.get());
  SI.Guiding = std::move(Merged);
  SI.FromVersion = In.FromVersion;
  if (Cfg.StageHook)
    Cfg.StageHook(SI.Result.SP);
  if (Status S = validateStaging(SI.Result.SP); !S.ok())
    return S;
  return SI;
}

Status ResquashController::runAttempt(AttemptInput In) {
  // The build span runs on whichever thread executes the attempt (the
  // pool worker in the background case), flow-linked from the trigger.
  SpanScope Build("resquash.build", "adaptive");
  Build.setFlow(In.Flow, In.Flow);
  Build.setArgs(In.FromVersion, 0);
  const auto T0 = Clock::now();
  Expected<StagedImage> CandOr = buildCandidate(In);
  const double Seconds = secondsSince(T0);

  std::lock_guard<std::mutex> L(Mu);
  if (In.Gen != Generation)
    // The watchdog invalidated this attempt (and recorded the timeout);
    // its result is stale and must not be staged.
    return Status::error(StatusCode::DeadlineExceeded,
                         "resquash: attempt invalidated by watchdog");
  InFlight = false;
  St.LastResquashSeconds = Seconds;

  if (!CandOr) {
    Status S = CandOr.status();
    // CRC/structure failures of the *staged image* are staging
    // rejections; everything else is a pipeline/merge failure. Either
    // way the active version is untouched.
    if (S.code() == StatusCode::CorruptBlob ||
        S.code() == StatusCode::MalformedImage) {
      ++St.StagingRejects;
      recordEventLocked(AdaptiveEvent::Kind::StagingRejected, In.FromVersion);
    } else {
      ++St.Failures;
      recordEventLocked(AdaptiveEvent::Kind::Failed, In.FromVersion);
    }
    LastError = S;
    return S;
  }

  StagedImage Cand = std::move(CandOr.get());
  Cand.Flow = In.Flow;
  // Convergence: re-squashing under the merged profile reproduced the
  // active image byte for byte — nothing to swap, and no reason to keep
  // re-attempting while the (already predicted) drift signal persists.
  const Version &A = *Versions[Active];
  if (Cand.Result.SP.Img.Bytes == A.Result.SP.Img.Bytes) {
    ++St.ConvergedAttempts;
    recordEventLocked(AdaptiveEvent::Kind::Converged, In.FromVersion);
    return Status::success();
  }
  Staged = std::move(Cand);
  recordEventLocked(AdaptiveEvent::Kind::Staged, In.FromVersion);
  return Status::success();
}

void ResquashController::startAttemptLocked(Version &V) {
  ++V.Attempts;
  ++St.Attempts;
  auto In = std::make_shared<AttemptInput>();
  In->Guiding = V.Guiding;
  In->LiveUnit = V.Monitor ? V.Monitor->liveProfile(1.0) : Profile();
  In->ColdCutoff = V.Result.Cold.FrequencyCutoff;
  In->FromVersion = V.Id;
  In->Gen = Generation;
  In->Flow = SpanTracer::enabled() ? SpanTracer::instance().nextId() : 0;
  InFlight = true;
  InFlightFrom = V.Id;
  AttemptStart = Clock::now();
  recordEventLocked(AdaptiveEvent::Kind::Trigger, V.Id);
  {
    SpanScope Trigger("resquash.trigger", "adaptive");
    Trigger.setFlow(0, In->Flow);
    Trigger.setArgs(V.Id, St.Attempts);
  }
  Pool->enqueue([this, In] { (void)runAttempt(std::move(*In)); });
}

void ResquashController::maybeTriggerLocked(Version &V) {
  if (InFlight || Staged || InProbation)
    return;
  if (Cfg.MaxAttempts && St.Attempts >= Cfg.MaxAttempts)
    return;
  if (V.Attempts >= Cfg.MaxAttemptsPerVersion)
    return;
  if (!V.Monitor)
    return;
  const DriftReport Rep = V.Monitor->report();
  St.LastDriftScore = Rep.DriftScore;
  if (Rep.LiveEntries < Cfg.MinEntriesForTrigger)
    return;
  if (Rep.DriftScore < Cfg.DriftThreshold)
    return;
  startAttemptLocked(V);
}

Status ResquashController::publishStagedLocked() {
  if (!Staged)
    return Status::error(StatusCode::InvalidArgument,
                         "publish: no staged image");
  if (InProbation)
    return Status::error(StatusCode::InvalidArgument,
                         "publish: probation still pending");
  const auto T0 = Clock::now();
  if (Status S = validatePublication(Staged->Result.SP); !S.ok()) {
    ++St.PublishRejects;
    LastError = S;
    recordEventLocked(AdaptiveEvent::Kind::PublishRejected,
                      Staged->FromVersion);
    Staged.reset();
    return S;
  }

  SpanScope Publish("resquash.publish", "adaptive");
  Publish.setFlow(Staged->Flow, Staged->Flow);

  auto V = std::make_unique<Version>();
  V->Id = static_cast<uint32_t>(Versions.size());
  V->State = VersionState::Probation;
  V->Result = std::move(Staged->Result);
  V->Guiding = std::move(Staged->Guiding);
  V->Monitor = std::make_unique<DriftMonitor>(V->Result.SP, V->Guiding);
  V->Flow = Staged->Flow;
  Publish.setArgs(V->Id, Staged->FromVersion);
  Staged.reset();

  Version &Prior = *Versions[Active];
  Prior.State = VersionState::Standby; // Rollback target; never freed now.
  ProbationPrior = Active;
  InProbation = true;
  Active = V->Id;
  Versions.push_back(std::move(V));

  ++St.Publications;
  St.ActiveVersion = Active;
  St.VersionsCreated = static_cast<uint32_t>(Versions.size());
  St.ProbationPending = true;
  const uint64_t Ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - T0)
          .count());
  St.SwapPauseNsTotal += Ns;
  St.SwapPauseNsMax = std::max(St.SwapPauseNsMax, Ns);
  recordEventLocked(AdaptiveEvent::Kind::Published, Active);
  return Status::success();
}

double ResquashController::rateOfLocked(const Version &V) const {
  return static_cast<double>(V.TrapCycles.sum()) /
         static_cast<double>(std::max<uint64_t>(V.Instructions, 1));
}

void ResquashController::probationVerdictLocked(Version &V) {
  if (V.TrapCycles.count() < Cfg.ProbationTraps &&
      V.Runs < Cfg.ProbationRuns)
    return;
  Version &Prior = *Versions[ProbationPrior];
  const double NewRate = rateOfLocked(V);
  const double PriorRate = rateOfLocked(Prior);
  const bool Regressed = NewRate > PriorRate * Cfg.RegressionTolerance + 1e-12;
  SpanScope Verdict(Regressed ? "resquash.rollback" : "resquash.commit",
                    "adaptive");
  Verdict.setFlow(V.Flow, 0);
  Verdict.setArgs(V.Id, Prior.Id);
  if (Regressed) {
    // Regression: reinstate the prior version atomically. The regressed
    // version drains its pins and is then freed like any retiree.
    Active = Prior.Id;
    Prior.State = VersionState::Committed;
    V.State = VersionState::RolledBack;
    V.RetiredAt = Clock::now();
    ++St.Rollbacks;
    St.ActiveVersion = Active;
    recordEventLocked(AdaptiveEvent::Kind::RolledBack, V.Id);
  } else {
    V.State = VersionState::Committed;
    Prior.State = VersionState::Retired;
    Prior.RetiredAt = Clock::now();
    ++St.Successes;
    recordEventLocked(AdaptiveEvent::Kind::Committed, V.Id);
  }
  InProbation = false;
  St.ProbationPending = false;
}

void ResquashController::reapRetiredLocked() {
  for (auto &VP : Versions) {
    Version &V = *VP;
    if (V.State != VersionState::Retired &&
        V.State != VersionState::RolledBack)
      continue;
    if (V.Pins == 0) {
      // Epoch drained: no request can reference this version's memory.
      V.Result = SquashResult();
      V.Monitor.reset();
      V.State = VersionState::Freed;
      ++St.RetiredVersions;
      recordEventLocked(AdaptiveEvent::Kind::Retired, V.Id);
    } else if (!V.WedgeReported &&
               secondsSince(V.RetiredAt) > Cfg.RetireTimeoutSeconds) {
      // Pins that never drain (a leaked epoch) wedge retirement. The
      // memory is deliberately NOT freed — a use-after-free under a live
      // run would be strictly worse than the leak — but the condition is
      // surfaced loudly.
      V.WedgeReported = true;
      ++St.WedgedRetirements;
      LastError = Status::error(
          StatusCode::DeadlineExceeded,
          "epoch retirement wedged: version " + std::to_string(V.Id) +
              " still holds " + std::to_string(V.Pins) + " pin(s)");
      recordEventLocked(AdaptiveEvent::Kind::Wedged, V.Id);
    }
  }
}

void ResquashController::watchdogLocked() {
  if (!InFlight || secondsSince(AttemptStart) <= Cfg.ResquashTimeoutSeconds)
    return;
  // The worker overran its deadline: invalidate the attempt (a late
  // completion sees the bumped generation and discards itself) and
  // degrade to the current version.
  ++Generation;
  InFlight = false;
  ++St.Timeouts;
  LastError = Status::error(StatusCode::DeadlineExceeded,
                            "resquash: background attempt from version " +
                                std::to_string(InFlightFrom) +
                                " exceeded its watchdog deadline");
  recordEventLocked(AdaptiveEvent::Kind::TimedOut, InFlightFrom);
}

void ResquashController::recordEventLocked(AdaptiveEvent::Kind K,
                                           uint32_t VersionId) {
  AdaptiveEvent E{K, VersionId, EventSeq++};
  if (Events.size() < EventCap) {
    Events.push_back(E);
  } else {
    Events[EventNext] = E;
    EventNext = (EventNext + 1) % EventCap;
    ++EventDropped;
  }
}
