//===- squash/DriftMonitor.h - Online profile-drift monitor ----*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's premise is that a *training* profile predicts which code
/// stays cold in production (§4.3: "results are relatively insensitive to
/// differences between training and production inputs"). This monitor
/// turns that claim into a live, quantitative signal: it rides the
/// runtime's trap path as a TrapObserver, accumulates per-region heat
/// (entries, fills, charged cycles) online, and compares the live heat
/// distribution against the heat the training profile predicted for the
/// same regions.
///
/// Three drift metrics (DESIGN.md §13):
///  - drift score: the share of live region entries in excess of the
///    training prediction, after scaling the prediction up (never down)
///    to the live volume. Entry-block counts bound entry-trap counts
///    from above on the training input, so a matched run scores exactly
///    0 (as does a longer run with proportionally identical behaviour);
///    1 means the live mass landed entirely on regions the profile
///    called dead. A run with no traps scores 0.
///  - top-K overlap: fraction of the K live-hottest regions that are also
///    among the K training-hottest.
///  - normalized cross-entropy: H(live, training-smoothed) / log2(regions),
///    the coding penalty of describing live behaviour with the trained
///    model.
///
/// Beyond the report, the monitor exports its heat as a block-level
/// sim::Profile (each region entry credits every block of the region with
/// one execution). That profile merges with the training profile via
/// mergeProfiles, and re-squashing under the merged profile de-compresses
/// the mispredicted-cold code — closing the paper's profile-guided loop
/// end to end (bench/stat_drift measures the recovered trap cycles).
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_DRIFTMONITOR_H
#define SQUASH_SQUASH_DRIFTMONITOR_H

#include "sim/Machine.h"
#include "squash/Runtime.h"
#include "support/Metrics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace squash {

struct DriftConfig {
  /// K for the top-K heat-overlap metric (clamped to the region count).
  uint32_t TopK = 8;
  /// A region is reported "mispredicted cold" when its share of live
  /// entries reaches this fraction while exceeding its smoothed training
  /// share (i.e., it is materially hotter than the profile predicted).
  double MispredictShare = 0.01;
};

/// One region whose live trap rate exceeded the misprediction threshold.
struct MispredictedRegion {
  uint32_t Region = 0;
  uint64_t LiveEntries = 0;
  uint64_t LiveChargedCycles = 0;
  double LiveShare = 0.0;     ///< Fraction of all live entries.
  uint64_t TrainingHeat = 0;  ///< Sum of training counts over its blocks.
};

/// Snapshot of the drift metrics at report time.
struct DriftReport {
  uint64_t LiveEntries = 0;       ///< Entry-stub traps (fresh entries).
  uint64_t LiveRestores = 0;      ///< Restore-stub traps (cache pressure).
  uint64_t LiveFills = 0;         ///< Traps that re-decoded the region.
  uint64_t LiveChargedCycles = 0; ///< Cycles the observed traps charged.
  uint32_t RegionsTotal = 0;
  uint32_t RegionsTouched = 0; ///< Regions with at least one live entry.
  double DriftScore = 0.0;     ///< Excess live-entry share, [0, 1].
  double TopKOverlap = 1.0;    ///< [0, 1]; 1 when no traps occurred.
  double NormalizedCrossEntropy = 0.0;
  std::vector<MispredictedRegion> MispredictedCold; ///< Ranked by entries.

  /// Registers every scalar (plus the misprediction count) under
  /// \p Prefix, for bench rows and the --metrics surfaces.
  void exportMetrics(vea::MetricsRegistry &R,
                     const std::string &Prefix = "drift.") const;
};

class DriftMonitor : public TrapObserver {
public:
  /// Observes runs of \p SP, comparing against \p Training — the profile
  /// \p SP was squashed under (same block numbering). A profile whose
  /// block count disagrees with SP.ProfileBlockCount yields all-zero
  /// training heat (everything live then reads as drift). \p SP must
  /// outlive the monitor.
  DriftMonitor(const SquashedProgram &SP, const vea::Profile &Training,
               DriftConfig C = {});

  /// TrapObserver: accumulates live heat. Called on the trap path — a few
  /// array increments against preallocated vectors, no allocation. Only
  /// entry-stub traps count toward the drift distribution; restore-stub
  /// re-entries are tallied (and charged) separately, since they measure
  /// decode-cache pressure rather than mispredicted heat.
  void onRegionEntry(uint32_t Region, bool Filled, bool ViaRestore,
                     uint64_t ChargedCycles) override;

  /// Forgets all accumulated live heat (training heat is kept).
  void reset();

  /// Folds \p Other's accumulated live heat into this monitor. The two
  /// must observe the same squashed program (same region count); a
  /// mismatch is ignored rather than corrupting the accumulation. This is
  /// how squash/Adaptive aggregates per-request scratch monitors into one
  /// per-version monitor under its own lock, keeping onRegionEntry free of
  /// cross-thread traffic.
  void absorb(const DriftMonitor &Other);

  DriftReport report() const;

  /// The report as one deterministic JSON object: identical inputs produce
  /// byte-identical text (fields in fixed order, regions in id order).
  std::string reportJson() const;

  /// Projects the live heat onto a block-level profile compatible with
  /// mergeProfiles(training, live): each of region R's blocks (with a
  /// profile slot) is credited entries(R) * Weight executions. Weight > 1
  /// lets a short monitored run stand in for a long production run when
  /// merged against a heavyweight training profile.
  vea::Profile liveProfile(double Weight = 1.0) const;

  /// Per-region training heat: the sum of training counts over each
  /// region's entry blocks (the profile's prediction of how often the
  /// region would be entered, i.e. trap).
  const std::vector<uint64_t> &trainingHeat() const { return Training; }
  uint64_t liveEntries(uint32_t Region) const {
    return Region < Entries.size() ? Entries[Region] : 0;
  }

private:
  const SquashedProgram &SP;
  DriftConfig Cfg;
  std::vector<uint64_t> Training; ///< Per region: predicted heat.
  std::vector<uint64_t> Entries;  ///< Per region: live entry traps.
  std::vector<uint64_t> Fills;    ///< Per region: live fills.
  std::vector<uint64_t> Cycles;   ///< Per region: live charged cycles.
  uint64_t TotalEntries = 0;
  uint64_t TotalRestores = 0;
  uint64_t TotalFills = 0;
  uint64_t TotalCycles = 0;
};

} // namespace squash

#endif // SQUASH_SQUASH_DRIFTMONITOR_H
