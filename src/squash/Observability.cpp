//===- squash/Observability.cpp - Trace export & run reporting ------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Observability.h"

#include "squash/DriftMonitor.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace squash;

const char *squash::eventKindName(RuntimeSystem::Event::Kind K) {
  switch (K) {
  case RuntimeSystem::Event::Kind::Decompress:
    return "decompress";
  case RuntimeSystem::Event::Kind::BufferedHit:
    return "buffered_hit";
  case RuntimeSystem::Event::Kind::EnterViaStub:
    return "enter_via_stub";
  case RuntimeSystem::Event::Kind::EnterViaRestore:
    return "enter_via_restore";
  case RuntimeSystem::Event::Kind::StubCreate:
    return "stub_create";
  case RuntimeSystem::Event::Kind::StubReuse:
    return "stub_reuse";
  case RuntimeSystem::Event::Kind::StubRelease:
    return "stub_release";
  case RuntimeSystem::Event::Kind::RecoverFill:
    return "recover_fill";
  case RuntimeSystem::Event::Kind::Evict:
    return "evict";
  case RuntimeSystem::Event::Kind::SlotMapRepair:
    return "slot_map_repair";
  case RuntimeSystem::Event::Kind::PrefetchLaunch:
    return "prefetch_launch";
  case RuntimeSystem::Event::Kind::PrefetchHit:
    return "prefetch_hit";
  case RuntimeSystem::Event::Kind::PrefetchDrop:
    return "prefetch_drop";
  }
  return "unknown";
}

std::string
squash::exportChromeTrace(const std::vector<RuntimeSystem::Event> &Events,
                          uint64_t Dropped) {
  // Chrome trace format, JSON-object flavor: {"traceEvents":[...]}. Each
  // runtime event becomes an instant event ("ph":"i") with the machine
  // cycle count as its microsecond timestamp — cycles are what the
  // simulator measures, so the tracing UI's time axis reads in cycles.
  std::string Out = "{\"traceEvents\":[";
  char Buf[256];
  bool First = true;
  for (const RuntimeSystem::Event &E : Events) {
    if (!First)
      Out += ',';
    First = false;
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"name\":\"%s\",\"cat\":\"squash\",\"ph\":\"i\",\"s\":\"t\","
        "\"ts\":%llu,\"pid\":1,\"tid\":1,\"args\":{\"region\":%u,"
        "\"addr\":%u,\"count\":%u}}",
        eventKindName(E.K), static_cast<unsigned long long>(E.Cycle),
        E.Region, E.Addr, E.Count);
    Out += Buf;
  }
  Out += "],\"displayTimeUnit\":\"ns\"";
  std::snprintf(Buf, sizeof(Buf),
                ",\"otherData\":{\"dropped_events\":\"%llu\"}}",
                static_cast<unsigned long long>(Dropped));
  Out += Buf;
  return Out;
}

std::string squash::exportSpansChromeTrace(const std::vector<vea::Span> &Spans) {
  // Complete-event ("X") flavor: ts/dur in microseconds of host wall
  // clock, rebased to the earliest span so the numbers stay small. Flow
  // events ("s" at the producer's end, "f" at the consumer's start, bound
  // by the flow id) give Perfetto its cross-thread arrows.
  uint64_t Base = ~uint64_t{0};
  for (const vea::Span &S : Spans)
    Base = std::min(Base, S.StartNanos);
  if (Spans.empty())
    Base = 0;
  auto Us = [Base](uint64_t Nanos) {
    return (Nanos - Base) / 1000.0;
  };
  std::string Out = "{\"traceEvents\":[";
  char Buf[512];
  bool First = true;
  auto Emit = [&](const char *Fmt, auto... Args) {
    if (!First)
      Out += ',';
    First = false;
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Out += Buf;
  };
  for (const vea::Span &S : Spans) {
    const uint64_t End = std::max(S.EndNanos, S.StartNanos);
    Emit("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
         "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"id\":%llu,"
         "\"parent\":%llu,\"start_cycles\":%llu,\"end_cycles\":%llu,"
         "\"arg_a\":%llu,\"arg_b\":%llu}}",
         S.Name ? S.Name : "", S.Category ? S.Category : "", Us(S.StartNanos),
         (End - S.StartNanos) / 1000.0, S.ThreadId,
         static_cast<unsigned long long>(S.Id),
         static_cast<unsigned long long>(S.Parent),
         static_cast<unsigned long long>(S.StartCycles),
         static_cast<unsigned long long>(S.EndCycles),
         static_cast<unsigned long long>(S.ArgA),
         static_cast<unsigned long long>(S.ArgB));
    if (S.FlowOut)
      Emit("{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%llu,"
           "\"ts\":%.3f,\"pid\":1,\"tid\":%u}",
           static_cast<unsigned long long>(S.FlowOut), Us(End), S.ThreadId);
    if (S.FlowIn)
      Emit("{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
           "\"id\":%llu,\"ts\":%.3f,\"pid\":1,\"tid\":%u}",
           static_cast<unsigned long long>(S.FlowIn), Us(S.StartNanos),
           S.ThreadId);
  }
  std::snprintf(Buf, sizeof(Buf),
                "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"spans\":"
                "\"%zu\"}}",
                Spans.size());
  Out += Buf;
  return Out;
}

std::vector<RegionHeat> squash::buildRegionHeatReport(
    const std::vector<RuntimeSystem::Event> &Events) {
  std::map<uint32_t, RegionHeat> ByRegion;
  for (const RuntimeSystem::Event &E : Events) {
    // Stub lifecycle events carry a stub address, not a region; they are
    // per-call-site bookkeeping and do not attribute to region heat.
    // Prefetch events describe predictions about regions, not entries into
    // them, so they do not attribute either.
    using Kind = RuntimeSystem::Event::Kind;
    if (E.K == Kind::StubCreate || E.K == Kind::StubReuse ||
        E.K == Kind::StubRelease || E.K == Kind::SlotMapRepair ||
        E.K == Kind::PrefetchLaunch || E.K == Kind::PrefetchHit ||
        E.K == Kind::PrefetchDrop)
      continue;
    auto It = ByRegion.find(E.Region);
    if (It == ByRegion.end()) {
      RegionHeat H;
      H.Region = E.Region;
      H.FirstCycle = E.Cycle;
      It = ByRegion.emplace(E.Region, H).first;
    }
    RegionHeat &H = It->second;
    H.LastCycle = E.Cycle;
    switch (E.K) {
    case Kind::Decompress:
    case Kind::RecoverFill:
      ++H.Decompressions;
      break;
    case Kind::BufferedHit:
      ++H.BufferedHits;
      break;
    case Kind::Evict:
      ++H.Evictions;
      break;
    case Kind::EnterViaStub:
    case Kind::EnterViaRestore:
      ++H.StubCalls;
      break;
    default:
      break;
    }
  }
  std::vector<RegionHeat> Report;
  Report.reserve(ByRegion.size());
  for (const auto &KV : ByRegion)
    Report.push_back(KV.second);
  std::sort(Report.begin(), Report.end(),
            [](const RegionHeat &A, const RegionHeat &B) {
              if (A.Decompressions != B.Decompressions)
                return A.Decompressions > B.Decompressions;
              return A.Region < B.Region;
            });
  return Report;
}

std::string
squash::renderRegionHeatReport(const std::vector<RegionHeat> &Report) {
  std::string Out =
      "region  decompressions  hits  evictions  stub-calls  resident-cycles\n";
  char Buf[160];
  for (const RegionHeat &H : Report) {
    std::snprintf(Buf, sizeof(Buf), "%6u  %14llu  %4llu  %9llu  %10llu  %15llu\n",
                  H.Region,
                  static_cast<unsigned long long>(H.Decompressions),
                  static_cast<unsigned long long>(H.BufferedHits),
                  static_cast<unsigned long long>(H.Evictions),
                  static_cast<unsigned long long>(H.StubCalls),
                  static_cast<unsigned long long>(H.LastCycle - H.FirstCycle));
    Out += Buf;
  }
  return Out;
}

void squash::collectSquashMetrics(vea::MetricsRegistry &Reg,
                                  const SquashResult &R) {
  R.Stats.exportMetrics(Reg);
  Reg.setCounter("squash.cold.frequency_cutoff", R.Cold.FrequencyCutoff);
  Reg.setCounter("squash.cold.cold_instructions", R.Cold.ColdInstructions);
  Reg.setCounter("squash.cold.total_instructions", R.Cold.TotalInstructions);
  Reg.setGauge("squash.cold.cold_fraction", R.Cold.coldFraction());
  R.Regions.exportMetrics(Reg);
  R.BufferSafe.exportMetrics(Reg);
  R.Unswitch.exportMetrics(Reg);
  R.SP.Footprint.exportMetrics(Reg);
  Reg.setCounter("squash.identity", R.Identity ? 1 : 0);
  Reg.setCounter("squash.cache_slots", R.SP.Layout.CacheSlots);
  uint64_t ByCodec[NumCodecKinds] = {};
  for (const RegionImageInfo &RI : R.SP.Regions)
    if (RI.Codec < NumCodecKinds)
      ++ByCodec[RI.Codec];
  for (unsigned K = 0; K != NumCodecKinds; ++K)
    Reg.setCounter("squash.regions.codec_" +
                       std::string(codecKindName(static_cast<CodecKind>(K))),
                   ByCodec[K]);
}

void squash::collectRunMetrics(vea::MetricsRegistry &Reg,
                               const SquashedRun &Run) {
  vea::exportRunMetrics(Reg, Run.Run);
  Run.Runtime.exportMetrics(Reg);
  Reg.setCounter("runtime.trace_events", Run.Trace.size());
  Reg.setCounter("runtime.trace_dropped", Run.TraceDropped);
}

//===----------------------------------------------------------------------===//
// Predictor seeding
//===----------------------------------------------------------------------===//

void squash::seedPredictorFromEvents(
    RegionPredictor &P, const std::vector<RuntimeSystem::Event> &Events) {
  // Replaying the entry stream through observe() populates the pair and
  // single contexts exactly as the prior run's runtime would have.
  using Kind = RuntimeSystem::Event::Kind;
  for (const RuntimeSystem::Event &E : Events)
    if (E.K == Kind::EnterViaStub || E.K == Kind::EnterViaRestore)
      P.observe(E.Region);
}

void squash::seedPredictorFromHeat(RegionPredictor &P,
                                   const std::vector<RegionHeat> &Report) {
  for (const RegionHeat &H : Report)
    P.seedHeat(H.Region, H.Decompressions + H.BufferedHits);
}

void squash::seedPredictorFromDrift(RegionPredictor &P,
                                    const DriftMonitor &Drift,
                                    uint32_t NumRegions) {
  for (uint32_t R = 0; R != NumRegions; ++R)
    P.seedHeat(R, Drift.liveEntries(R));
}
