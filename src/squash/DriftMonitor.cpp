//===- squash/DriftMonitor.cpp - Online profile-drift monitor -------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/DriftMonitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

using namespace squash;
using namespace vea;

DriftMonitor::DriftMonitor(const SquashedProgram &SP, const Profile &Training,
                           DriftConfig C)
    : SP(SP), Cfg(C) {
  const size_t R = SP.Regions.size();
  this->Training.assign(R, 0);
  Entries.assign(R, 0);
  Fills.assign(R, 0);
  Cycles.assign(R, 0);
  // Predicted heat: the training execution counts of each region's *entry*
  // blocks. The monitor observes one trap per region entry, and an entry
  // block executes (approximately) once per entry, so entry-block counts
  // are the profile's prediction in the same unit the monitor measures.
  // Summing all blocks instead would inflate looping regions by their
  // iteration counts and make even a perfectly-matched run read as drift.
  // A profile for a different program (block count mismatch) predicts
  // nothing; all live activity then reads as drift.
  if (Training.BlockCounts.size() == SP.ProfileBlockCount)
    for (size_t I = 0; I != SP.RegionBlocks.size() && I != R; ++I) {
      uint64_t EntrySum = 0, AllSum = 0;
      bool HasEntry = false;
      for (const RegionBlockRef &B : SP.RegionBlocks[I]) {
        if (B.Block >= Training.BlockCounts.size())
          continue;
        AllSum += Training.BlockCounts[B.Block];
        if (B.IsEntry) {
          HasEntry = true;
          EntrySum += Training.BlockCounts[B.Block];
        }
      }
      this->Training[I] = HasEntry ? EntrySum : AllSum;
    }
}

void DriftMonitor::onRegionEntry(uint32_t Region, bool Filled,
                                 bool ViaRestore, uint64_t ChargedCycles) {
  if (Region >= Entries.size())
    return; // Corrupt-tag traps fault before reaching the observer.
  if (ViaRestore) {
    // Returns into an evicted region measure cache pressure, not heat the
    // profile could have predicted: cost is charged, drift is not.
    ++TotalRestores;
  } else {
    ++Entries[Region];
    ++TotalEntries;
  }
  if (Filled) {
    ++Fills[Region];
    ++TotalFills;
  }
  Cycles[Region] += ChargedCycles;
  TotalCycles += ChargedCycles;
}

void DriftMonitor::absorb(const DriftMonitor &Other) {
  if (Other.Entries.size() != Entries.size())
    return;
  for (size_t I = 0; I != Entries.size(); ++I) {
    Entries[I] += Other.Entries[I];
    Fills[I] += Other.Fills[I];
    Cycles[I] += Other.Cycles[I];
  }
  TotalEntries += Other.TotalEntries;
  TotalRestores += Other.TotalRestores;
  TotalFills += Other.TotalFills;
  TotalCycles += Other.TotalCycles;
}

void DriftMonitor::reset() {
  std::fill(Entries.begin(), Entries.end(), 0);
  std::fill(Fills.begin(), Fills.end(), 0);
  std::fill(Cycles.begin(), Cycles.end(), 0);
  TotalEntries = TotalRestores = TotalFills = TotalCycles = 0;
}

namespace {
/// Region ids ordered by \p Heat descending, id ascending (deterministic).
std::vector<uint32_t> rankByHeat(const std::vector<uint64_t> &Heat) {
  std::vector<uint32_t> Order(Heat.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](uint32_t A, uint32_t B) { return Heat[A] > Heat[B]; });
  return Order;
}
} // namespace

DriftReport DriftMonitor::report() const {
  DriftReport Rep;
  const size_t R = Entries.size();
  Rep.RegionsTotal = static_cast<uint32_t>(R);
  Rep.LiveEntries = TotalEntries;
  Rep.LiveRestores = TotalRestores;
  Rep.LiveFills = TotalFills;
  Rep.LiveChargedCycles = TotalCycles;
  for (uint64_t E : Entries)
    Rep.RegionsTouched += E > 0;

  // A run that never trapped produced no evidence of drift: the profile's
  // cold predictions held exactly.
  if (TotalEntries == 0 || R == 0)
    return Rep;

  const uint64_t TrainTotal =
      std::accumulate(Training.begin(), Training.end(), uint64_t{0});

  // Drift score: the share of live entries in excess of the training
  // prediction, after scaling the prediction up (never down) to the live
  // volume: s = max(1, ΣE/ΣT), score = Σ_r max(0, E_r − s·T_r) / ΣE.
  // Every trap into region r executes one of r's entry blocks, so on the
  // training input E_r ≤ T_r exactly and the score is 0; a longer run
  // with the *same* behaviour scales all regions by ΣE/ΣT and still
  // scores 0; only regions entered disproportionately more than trained
  // — drifted behaviour — contribute.
  double Excess = 0.0;
  const double Scale =
      TrainTotal ? std::max(1.0, static_cast<double>(TotalEntries) /
                                     static_cast<double>(TrainTotal))
                 : 0.0;
  for (size_t I = 0; I != R; ++I)
    Excess += std::max(0.0, static_cast<double>(Entries[I]) -
                                Scale * static_cast<double>(Training[I]));
  Rep.DriftScore = TrainTotal
                       ? Excess / static_cast<double>(TotalEntries)
                       : 1.0; // Nothing predicted, something happened.

  // Cross-entropy of the live entry distribution P under the ε-smoothed
  // training distribution Q (ε keeps regions the profile called dead at
  // nonzero probability, so the penalty stays finite), normalized by the
  // uniform-model cost log2(R).
  const double Eps = 1.0 / 256.0;
  const double QDen =
      static_cast<double>(TrainTotal) + Eps * static_cast<double>(R);
  double Xent = 0.0;
  for (size_t I = 0; I != R; ++I) {
    const double P =
        static_cast<double>(Entries[I]) / static_cast<double>(TotalEntries);
    if (P > 0.0)
      Xent -= P * std::log2((static_cast<double>(Training[I]) + Eps) / QDen);
  }
  Rep.NormalizedCrossEntropy =
      Xent / std::log2(static_cast<double>(std::max<size_t>(R, 2)));

  // Top-K overlap: the K live-hottest regions vs the K training-hottest
  // (only regions the profile actually predicted heat for count as
  // training-hot; if it predicted none, nothing live was foreseen).
  const uint32_t K = std::min<uint32_t>(std::max<uint32_t>(Cfg.TopK, 1),
                                        static_cast<uint32_t>(R));
  std::vector<uint32_t> LiveOrder = rankByHeat(Entries);
  std::vector<uint32_t> TrainOrder = rankByHeat(Training);
  std::vector<uint8_t> InTrainTop(R, 0);
  for (uint32_t I = 0; I != K; ++I)
    if (Training[TrainOrder[I]] > 0)
      InTrainTop[TrainOrder[I]] = 1;
  uint32_t Overlap = 0;
  for (uint32_t I = 0; I != K; ++I)
    if (Entries[LiveOrder[I]] > 0 && InTrainTop[LiveOrder[I]])
      ++Overlap;
  Rep.TopKOverlap = static_cast<double>(Overlap) / static_cast<double>(K);

  // Mispredicted cold: materially hot live regions whose entries exceed
  // even the scaled training prediction, ranked hottest first.
  for (size_t I = 0; I != R; ++I) {
    const double P =
        static_cast<double>(Entries[I]) / static_cast<double>(TotalEntries);
    const bool Underpredicted =
        !TrainTotal || static_cast<double>(Entries[I]) >
                           Scale * static_cast<double>(Training[I]);
    if (P >= Cfg.MispredictShare && Underpredicted)
      Rep.MispredictedCold.push_back({static_cast<uint32_t>(I), Entries[I],
                                      Cycles[I], P, Training[I]});
  }
  std::stable_sort(Rep.MispredictedCold.begin(), Rep.MispredictedCold.end(),
                   [](const MispredictedRegion &A, const MispredictedRegion &B) {
                     return A.LiveEntries > B.LiveEntries;
                   });
  return Rep;
}

std::string DriftMonitor::reportJson() const {
  const DriftReport Rep = report();
  char Buf[256];
  std::string Out = "{";
  std::snprintf(Buf, sizeof(Buf),
                "\"live_entries\":%llu,\"live_restores\":%llu,"
                "\"live_fills\":%llu,"
                "\"live_charged_cycles\":%llu,\"regions_total\":%u,"
                "\"regions_touched\":%u,",
                static_cast<unsigned long long>(Rep.LiveEntries),
                static_cast<unsigned long long>(Rep.LiveRestores),
                static_cast<unsigned long long>(Rep.LiveFills),
                static_cast<unsigned long long>(Rep.LiveChargedCycles),
                Rep.RegionsTotal, Rep.RegionsTouched);
  Out += Buf;
  Out += "\"drift_score\":" + formatGauge(Rep.DriftScore) + ",";
  Out += "\"top_k_overlap\":" + formatGauge(Rep.TopKOverlap) + ",";
  Out += "\"normalized_cross_entropy\":" +
         formatGauge(Rep.NormalizedCrossEntropy) + ",";
  Out += "\"mispredicted_cold\":[";
  for (size_t I = 0; I != Rep.MispredictedCold.size(); ++I) {
    const MispredictedRegion &M = Rep.MispredictedCold[I];
    if (I)
      Out += ',';
    std::snprintf(Buf, sizeof(Buf),
                  "{\"region\":%u,\"live_entries\":%llu,"
                  "\"live_charged_cycles\":%llu,\"training_heat\":%llu,"
                  "\"live_share\":",
                  M.Region, static_cast<unsigned long long>(M.LiveEntries),
                  static_cast<unsigned long long>(M.LiveChargedCycles),
                  static_cast<unsigned long long>(M.TrainingHeat));
    Out += Buf;
    Out += formatGauge(M.LiveShare) + "}";
  }
  Out += "]}";
  return Out;
}

Profile DriftMonitor::liveProfile(double Weight) const {
  Profile P;
  P.BlockCounts.assign(SP.ProfileBlockCount, 0);
  if (Weight <= 0.0)
    Weight = 1.0;
  for (size_t R = 0; R != Entries.size() && R != SP.RegionBlocks.size();
       ++R) {
    if (!Entries[R])
      continue;
    uint64_t Count = static_cast<uint64_t>(
        std::llround(static_cast<double>(Entries[R]) * Weight));
    Count = std::max<uint64_t>(Count, 1);
    for (const RegionBlockRef &B : SP.RegionBlocks[R]) {
      // Unswitch-created blocks (id at or past the profile) have no
      // profile slot; their heat is attributed to the original blocks.
      if (B.Block >= P.BlockCounts.size())
        continue;
      P.BlockCounts[B.Block] += Count;
      P.TotalInstructions += Count * B.Instructions;
    }
  }
  return P;
}

void DriftReport::exportMetrics(MetricsRegistry &R,
                                const std::string &Prefix) const {
  R.setCounter(Prefix + "live_entries", LiveEntries);
  R.setCounter(Prefix + "live_restores", LiveRestores);
  R.setCounter(Prefix + "live_fills", LiveFills);
  R.setCounter(Prefix + "live_charged_cycles", LiveChargedCycles);
  R.setCounter(Prefix + "regions_total", RegionsTotal);
  R.setCounter(Prefix + "regions_touched", RegionsTouched);
  R.setCounter(Prefix + "mispredicted_cold", MispredictedCold.size());
  R.setGauge(Prefix + "score", DriftScore);
  R.setGauge(Prefix + "top_k_overlap", TopKOverlap);
  R.setGauge(Prefix + "normalized_cross_entropy", NormalizedCrossEntropy);
}
