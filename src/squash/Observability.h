//===- squash/Observability.h - Trace export & run reporting ---*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the runtime's bounded event trace and the pipeline's stats
/// structures into things a human (or a plotting script) can consume:
///
///  - exportChromeTrace: the trace as Chrome trace format JSON — instant
///    events with machine-cycle timestamps, loadable in chrome://tracing
///    or Perfetto.
///  - buildRegionHeatReport / renderRegionHeatReport: per-region
///    decompression and hit counts plus cache-slot residency derived from
///    the trace.
///  - collectSquashMetrics / collectRunMetrics: one-call registration of
///    every pipeline / runtime counter into a MetricsRegistry, the single
///    JSON surface DESIGN.md §12 describes.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_OBSERVABILITY_H
#define SQUASH_SQUASH_OBSERVABILITY_H

#include "squash/Driver.h"
#include "support/Metrics.h"
#include "support/Span.h"

#include <string>
#include <vector>

namespace squash {

/// Stable lowercase name of a trace event kind ("decompress", "evict", ...)
/// used as the Chrome-trace event name and in the heat report.
const char *eventKindName(RuntimeSystem::Event::Kind K);

/// Renders \p Events (oldest first, as SquashedRun::Trace provides) as
/// Chrome trace format JSON: one instant event per trace entry with the
/// machine cycle count as its timestamp and the region / addr / count
/// payload in args. \p Dropped, when nonzero, is recorded in the trace
/// metadata so a truncated trace is recognizable.
std::string exportChromeTrace(const std::vector<RuntimeSystem::Event> &Events,
                              uint64_t Dropped = 0);

/// Renders a SpanTracer snapshot as Chrome trace format JSON: one complete
/// ("X") duration event per span — ts/dur in microseconds of wall clock,
/// start/end simulated cycles and the span args in the args payload — plus
/// flow ("s"/"f") events binding cross-thread producer/consumer pairs
/// (prefetch launch → worker → consuming fill; re-squash trigger → build →
/// publish → verdict) so Perfetto draws the arrows. Timestamps are
/// rebased to the earliest span.
std::string exportSpansChromeTrace(const std::vector<vea::Span> &Spans);

/// Per-region activity aggregated from a trace.
struct RegionHeat {
  uint32_t Region = 0;
  uint64_t Decompressions = 0; ///< Fills (incl. recovery refills).
  uint64_t BufferedHits = 0;   ///< Entries that found it resident.
  uint64_t Evictions = 0;      ///< Times it was displaced from its slot.
  uint64_t StubCalls = 0;      ///< Entry-stub + restore-stub entries.
  uint64_t FirstCycle = 0;     ///< Cycle of its first traced event.
  uint64_t LastCycle = 0;      ///< Cycle of its last traced event.
};

/// Aggregates \p Events into one RegionHeat per region seen, sorted by
/// decompression count (descending) then region id. Regions never touched
/// in the trace do not appear.
std::vector<RegionHeat>
buildRegionHeatReport(const std::vector<RuntimeSystem::Event> &Events);

/// Renders the heat report as an aligned text table (one region per row)
/// for terminal consumption.
std::string renderRegionHeatReport(const std::vector<RegionHeat> &Report);

/// Registers every squash-time stats structure carried by \p R — stage
/// times, cold-code/region/buffer-safety/unswitch counters, and the
/// footprint breakdown — into \p Reg.
void collectSquashMetrics(vea::MetricsRegistry &Reg, const SquashResult &R);

/// Registers a squashed run's machine counters, runtime-system counters,
/// and trace accounting (events retained/dropped) into \p Reg.
void collectRunMetrics(vea::MetricsRegistry &Reg, const SquashedRun &Run);

class DriftMonitor;

/// Pre-seeds a decode-ahead predictor from a prior run's trace: replays
/// the decompressor-entry events (EnterViaStub / EnterViaRestore) in
/// order, so the predictor starts with the previous run's transition
/// model instead of learning from scratch.
void seedPredictorFromEvents(RegionPredictor &P,
                             const std::vector<RuntimeSystem::Event> &Events);

/// Pre-seeds the predictor's global-heat fallback from a region heat
/// report (fills + hits per region).
void seedPredictorFromHeat(RegionPredictor &P,
                           const std::vector<RegionHeat> &Report);

/// Pre-seeds the predictor's global-heat fallback from a DriftMonitor's
/// live entry counts, \p NumRegions being the squashed program's region
/// count.
void seedPredictorFromDrift(RegionPredictor &P, const DriftMonitor &Drift,
                            uint32_t NumRegions);

} // namespace squash

#endif // SQUASH_SQUASH_OBSERVABILITY_H
