//===- squash/Inspect.cpp - Squashed-image inspection ---------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Inspect.h"

#include "isa/Disasm.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

using namespace squash;
using namespace vea;

static std::string line(const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  return Buf;
}

std::string squash::formatSegmentMap(const SquashedProgram &SP) {
  const RuntimeLayout &L = SP.Layout;
  const FootprintBreakdown &F = SP.Footprint;
  std::string Out = "segment map (Figure 1(b) organization):\n";
  auto Row = [&](const char *Name, uint32_t Begin, uint32_t Bytes) {
    Out += line("  %-22s 0x%06x..0x%06x  %6u bytes\n", Name, Begin,
                Begin + Bytes, Bytes);
  };
  uint32_t Base = SP.Img.Base;
  Row("never-compressed code", Base, 4 * F.NeverCompressedWords);
  Row("entry stubs", Base + 4 * F.NeverCompressedWords,
      4 * F.EntryStubWords);
  Row("decompressor", L.DecompBase, L.DecompEnd - L.DecompBase);
  Row("function offset table", L.OffsetTableBase, 4 * F.OffsetTableWords);
  Row("restore-stub area", L.StubAreaBase,
      4 * RuntimeLayout::StubSlotWords * L.StubSlots);
  Row("decode-cache slot map", L.SlotMapBase, 4 * L.CacheSlots);
  Row("runtime buffer", L.BufferBase, 4 * L.BufferWords);
  if (L.CacheSlots > 1)
    Out += line("    (%u cache slots x %u words)\n", L.CacheSlots,
                L.SlotWords);
  Row("compressed blob", L.BlobBase, L.BlobBytes);
  Out += line("  total code footprint: %u bytes (original %u, reduction "
              "%.1f%%)\n",
              F.totalCodeBytes(), F.OriginalCodeBytes,
              100.0 * F.reduction());
  return Out;
}

std::string squash::formatEntryStubs(const SquashedProgram &SP) {
  std::string Out = "entry stubs (2 words each: bsr r25,Decompress ; "
                    "tag):\n";
  std::vector<std::pair<uint32_t, std::string>> Stubs;
  for (const auto &[Label, Addr] : SP.StubOf)
    Stubs.push_back({Addr, Label});
  std::sort(Stubs.begin(), Stubs.end());
  for (const auto &[Addr, Label] : Stubs) {
    uint32_t Tag = SP.Img.word(Addr + 4);
    Out += line("  0x%06x  region %-4u offset %-5u  %s\n", Addr, Tag >> 16,
                Tag & 0xFFFF, Label.c_str());
  }
  return Out;
}

std::string squash::formatRegion(const SquashedProgram &SP, unsigned Index) {
  if (Index >= SP.Regions.size())
    return "no such region\n";
  const RegionImageInfo &RI = SP.Regions[Index];
  std::string Out = line("region %u: %u stored instructions, expands to %u "
                         "buffer words (bit offset %u, codec %s)\n",
                         Index, RI.StoredInstructions, RI.ExpandedWords,
                         RI.BitOffset,
                         codecKindName(SP.regionCodec(Index)));

  // Decode straight from the in-image blob through the region's own codec,
  // as the runtime does.
  const uint8_t *Blob =
      SP.Img.Bytes.data() + (SP.Layout.BlobBase - SP.Img.Base);
  std::unique_ptr<RegionCursor> Dec =
      SP.makeRegionCursor(Index, Blob, SP.Layout.BlobBytes);

  uint32_t BufAddr = SP.Layout.BufferBase + 4;
  MInst I;
  while (Dec->next(I)) {
    if (I.Op == Opcode::Bsrx) {
      Out += line("  [buf+%4u] bsrx r%u, %+d   ; expands to: bsr "
                  "r%u,CreateStub ; br <callee>\n",
                  (BufAddr - SP.Layout.BufferBase) / 4, I.ra(), I.disp21(),
                  I.ra());
      BufAddr += 8;
      continue;
    }
    Out += line("  [buf+%4u] %s\n", (BufAddr - SP.Layout.BufferBase) / 4,
                disassemble(I, BufAddr).c_str());
    BufAddr += 4;
  }
  if (!Dec->ok())
    Out += "  <corrupt stream>\n";
  return Out;
}

std::string squash::formatRegionTable(const SquashedProgram &SP) {
  std::string Out = line("%-8s %8s %9s %7s %7s %10s %8s\n", "region",
                         "stored", "expanded", "stubs", "calls",
                         "bit offset", "codec");
  for (unsigned R = 0; R != SP.Regions.size(); ++R) {
    const RegionImageInfo &RI = SP.Regions[R];
    Out += line("%-8u %8u %9u %7u %7u %10u %8s\n", R, RI.StoredInstructions,
                RI.ExpandedWords, RI.NumEntryStubs, RI.ExternalCalls,
                RI.BitOffset, codecKindName(SP.regionCodec(R)));
  }
  return Out;
}

std::string squash::formatFunctionLayout(const SquashedProgram &SP) {
  if (SP.FuncLayout.empty())
    return "function layout: identity (layout pass off or no reorder)\n";
  std::string Out = line("function layout (%zu functions, image order):\n",
                         SP.FuncLayout.size());
  Out += line("  %-4s %-6s %-10s %-6s  %s\n", "pos", "func", "address",
              "moved", "name");
  for (size_t Pos = 0; Pos != SP.FuncLayout.size(); ++Pos) {
    const FunctionPlacement &P = SP.FuncLayout[Pos];
    const long Delta =
        static_cast<long>(Pos) - static_cast<long>(P.FuncIdx);
    Out += line("  %-4zu %-6u 0x%08x %+-6ld  %s\n", Pos, P.FuncIdx, P.Addr,
                Delta, P.Name.c_str());
  }
  return Out;
}
