//===- squash/CodecSelect.cpp - Per-region codec selection ----------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/CodecSelect.h"

#include "squash/Rewriter.h"

#include <array>
#include <string>

using namespace squash;
using namespace vea;

namespace {

/// One trial encode: exact payload bits plus the modeled decode charge.
struct Trial {
  uint64_t Bits = 0;
  uint64_t Cycles = 0;
};

/// bits x cycles in 128-bit so large regions cannot overflow the compare.
static unsigned __int128 objective(const Trial &T) {
  return static_cast<unsigned __int128>(T.Bits) * T.Cycles;
}

/// Exact serialized size of a codec's side tables.
template <typename CodecT> uint64_t serializedTableBits(const CodecT &C) {
  BitWriter Scratch;
  C.serializeTables(Scratch);
  return Scratch.bitSize();
}

} // namespace

Status CodecSelectPass::runDisabled(PipelineContext &Ctx) {
  Ctx.Plan = CodecPlan();
  return Status::success();
}

Status CodecSelectPass::run(PipelineContext &Ctx) {
  Ctx.Plan = CodecPlan();
  const Options &Opts = Ctx.options();
  const std::string &Mode = Opts.Codec;
  const bool Auto = Mode == "auto";
  CodecKind Forced = CodecKind::Huffman;
  if (!Auto && !codecKindByName(Mode, Forced))
    return Status::error(StatusCode::InvalidArgument,
                         "codec-select: unknown codec '" + Mode +
                             "' (huffman, pattern, context, auto)");
  // The legacy single-coder configuration needs no plan; an empty plan
  // keeps the rewriter's blob byte-identical to the pre-plan pipeline.
  if (Ctx.Part.Regions.empty() || (!Auto && Forced == CodecKind::Huffman))
    return Status::success();

  // Trial-encode against exactly what the rewriter will store: the
  // lowered per-region instruction sequences.
  Expected<std::vector<std::vector<MInst>>> StoredOr = lowerStoredRegions(
      Ctx.program(), Ctx.cfg(), Ctx.Part, Ctx.BufferSafeFuncs, Opts);
  if (!StoredOr)
    return StoredOr.status();
  const std::vector<std::vector<MInst>> &Stored = StoredOr.get();
  const size_t N = Stored.size();
  const CostModel &C = Opts.Costs;

  CodecPlan Plan;
  if (Auto || Forced == CodecKind::Pattern)
    Plan.Pattern = PatternCodec::build(Stored);
  if (Auto || Forced == CodecKind::Context)
    Plan.Context = ContextCodec::build(Stored);

  if (!Auto) {
    // Forced mode: every region uses the named coder. Trial-encode now so
    // a value outside the coder's alphabet is a clean pipeline Status
    // here instead of a surprise inside image emission.
    for (size_t R = 0; R != N; ++R) {
      uint64_t Bits = 0;
      DecodeWork Work;
      Status St = Forced == CodecKind::Pattern
                      ? Plan.Pattern.measureRegion(Stored[R], Bits, Work)
                      : Plan.Context.measureRegion(Stored[R], Bits, Work);
      if (!St.ok())
        return St.context("codec-select: region " + std::to_string(R));
    }
    Plan.RegionCodec.assign(N, Forced);
    Ctx.Plan = std::move(Plan);
    return Status::success();
  }

  // Auto mode. The Huffman candidate is priced with codes built over the
  // whole corpus (the pre-selection baseline); the safety valve below
  // re-prices the surviving Huffman regions with their subset codes.
  StreamCodecs::Options CO;
  CO.MoveToFront = Opts.MoveToFront;
  CO.DeltaDisplacements = Opts.DeltaDisplacements;
  const StreamCodecs HuffAll = StreamCodecs::build(Stored, CO);

  std::vector<std::array<Trial, NumCodecKinds>> Trials(N);
  for (size_t R = 0; R != N; ++R) {
    auto Fail = [&](Status St) -> Status {
      St.context("codec-select: region " + std::to_string(R));
      return St;
    };
    BitWriter Scratch;
    if (Status St = HuffAll.encodeRegion(Stored[R], Scratch); !St.ok())
      return Fail(std::move(St));
    DecodeWork HuffWork;
    HuffWork.Instructions = Stored[R].size();
    Trials[R][0] = {Scratch.bitSize(),
                    codecDecodeCycles(C, CodecKind::Huffman, HuffWork)};
    uint64_t Bits = 0;
    DecodeWork Work;
    if (Status St = Plan.Pattern.measureRegion(Stored[R], Bits, Work);
        !St.ok())
      return Fail(std::move(St));
    Trials[R][1] = {Bits, codecDecodeCycles(C, CodecKind::Pattern, Work)};
    if (Status St = Plan.Context.measureRegion(Stored[R], Bits, Work);
        !St.ok())
      return Fail(std::move(St));
    Trials[R][2] = {Bits, codecDecodeCycles(C, CodecKind::Context, Work)};
  }

  // Per-region argmin of bits x cycles; ties break toward the lowest
  // CodecKind id so the choice is deterministic.
  std::vector<CodecKind> Pick(N, CodecKind::Huffman);
  bool AnyNonHuffman = false;
  for (size_t R = 0; R != N; ++R) {
    unsigned Best = 0;
    unsigned __int128 BestObj = objective(Trials[R][0]);
    for (unsigned K = 1; K != NumCodecKinds; ++K)
      if (objective(Trials[R][K]) < BestObj) {
        Best = K;
        BestObj = objective(Trials[R][K]);
      }
    Pick[R] = static_cast<CodecKind>(Best);
    AnyNonHuffman |= Best != 0;
  }
  if (!AnyNonHuffman)
    return Status::success(); // Empty plan: the legacy blob already wins.

  // Safety valve: model the whole blob under the plan exactly as emit()
  // will build it — side tables of every used codec plus per-region
  // payloads, with the Huffman codes rebuilt over only their remaining
  // regions — and keep the plan only if bytes x cycles is no worse than
  // the all-Huffman blob. Per-region wins that shrink the Huffman corpus
  // can bloat the remaining regions' codes; this check catches that.
  std::vector<std::vector<MInst>> HuffCorpus;
  for (size_t R = 0; R != N; ++R)
    if (Pick[R] == CodecKind::Huffman)
      HuffCorpus.push_back(Stored[R]);
  bool UsePattern = false, UseContext = false;
  for (CodecKind K : Pick) {
    UsePattern |= K == CodecKind::Pattern;
    UseContext |= K == CodecKind::Context;
  }
  uint64_t PlanBits = 0, PlanCycles = 0;
  StreamCodecs HuffSub;
  if (!HuffCorpus.empty()) {
    HuffSub = StreamCodecs::build(HuffCorpus, CO);
    PlanBits += serializedTableBits(HuffSub);
  }
  if (UsePattern)
    PlanBits += serializedTableBits(Plan.Pattern);
  if (UseContext)
    PlanBits += serializedTableBits(Plan.Context);
  for (size_t R = 0; R != N; ++R) {
    if (Pick[R] == CodecKind::Huffman) {
      BitWriter Scratch;
      if (Status St = HuffSub.encodeRegion(Stored[R], Scratch); !St.ok())
        return St.context("codec-select: region " + std::to_string(R));
      PlanBits += Scratch.bitSize();
      PlanCycles += Trials[R][0].Cycles;
    } else {
      const unsigned K = static_cast<unsigned>(Pick[R]);
      PlanBits += Trials[R][K].Bits;
      PlanCycles += Trials[R][K].Cycles;
    }
  }
  uint64_t AllBits = serializedTableBits(HuffAll);
  uint64_t AllCycles = 0;
  for (size_t R = 0; R != N; ++R) {
    AllBits += Trials[R][0].Bits;
    AllCycles += Trials[R][0].Cycles;
  }
  const uint64_t PlanBytes = (PlanBits + 7) / 8;
  const uint64_t AllBytes = (AllBits + 7) / 8;
  if (static_cast<unsigned __int128>(PlanBytes) * PlanCycles >
      static_cast<unsigned __int128>(AllBytes) * AllCycles)
    return Status::success(); // Revert to the all-Huffman legacy blob.

  Plan.RegionCodec = std::move(Pick);
  Ctx.Plan = std::move(Plan);
  return Status::success();
}
