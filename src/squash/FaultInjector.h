//===- squash/FaultInjector.h - Deterministic image corruption --*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded corruption harness for the squashed image. Each
/// injection mutates one structure a real deployment could lose — blob
/// bits, offset-table entries, restore-stub memory, entry-stub tags, buffer
/// sizing — so the fault-tolerance tests can assert that the runtime either
/// detects the corruption (clean Fault / failed attach) or masks it
/// (recovery copy; untouched output), but never crashes, hangs, or returns
/// a silently wrong answer.
///
/// The injector never fabricates a *valid* entry tag: a corrupted tag that
/// happened to name another real region entry would be a legitimate —
/// undetectable — control transfer, not a fault.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_FAULTINJECTOR_H
#define SQUASH_SQUASH_FAULTINJECTOR_H

#include "squash/Rewriter.h"
#include "support/Random.h"

#include <optional>
#include <string>
#include <vector>

namespace squash {

enum class FaultKind : uint8_t {
  BlobBitFlip,      ///< Flip one bit of the compressed blob.
  OffsetTableEntry, ///< Overwrite one function-offset-table word.
  StubSlotWord,     ///< Plant a garbage word in the restore-stub area.
  EntryStubTag,     ///< Overwrite an entry stub's tag word.
  BufferShrink,     ///< Shrink the runtime buffer below the largest region.
  BufferGrow,       ///< Grow the runtime buffer into the data segment.
  BlobTruncate,     ///< Cut the blob (and the image) short.
  NCCodeBitFlip,    ///< Flip one bit of never-compressed code / stubs.
  SlotMapEntry,     ///< Corrupt one decode-cache slot-map word.
  StagingCorrupt,   ///< Flip one bit of CRC-covered content (image prefix
                    ///< or blob) without fixing the checksums: the model
                    ///< of a staged re-squash image damaged in flight,
                    ///< caught by CRC-validated staging.
  PublishOffsetSkew,///< Skew one offset-table word and *refresh* the image
                    ///< CRC so integrity checks pass; only the
                    ///< publication-time cross-check of the table against
                    ///< the region metadata (or the lazy fill check) can
                    ///< catch it.
  EpochPinLeak,     ///< Leak an epoch pin so a retired version can never
                    ///< drain. Not an image mutation — inject() reports it
                    ///< inapplicable; the adaptive sweep arms it through
                    ///< ResquashController::armEpochPinLeak().
  PrefetchSlotCorrupt, ///< Arm a bit flip in a decode-ahead staging buffer
                       ///< (SquashedProgram::ArmPrefetchCorrupt): the Nth
                       ///< consumed prefetch is corrupted before its CRC
                       ///< re-check, which must discard it and fall back
                       ///< to a demand decode. Applicable only when
                       ///< Options::DecodeAhead is set.
  DecodeTableTruncated, ///< Cut one stream's canonical-code value list
                        ///< short in the host mirror, modeling a stored
                        ///< code table damaged at rest; attach's
                        ///< StreamCodecs::validate() must reject it.
                        ///< Applicable only when some region decodes
                        ///< through the Huffman stream codes.
  CodecTableCorrupt,    ///< Truncate a pattern-selector or context-opcode
                        ///< code's value list in the host mirror: a stored
                        ///< non-Huffman codec table damaged at rest.
                        ///< Attach's per-codec validate() must reject it.
                        ///< Applicable only when some region uses the
                        ///< pattern or context coder.
};

const char *faultKindName(FaultKind K);

/// What one injection did, for diagnostics when a sweep fails.
struct FaultReport {
  FaultKind Kind;
  uint32_t Addr = 0; ///< Byte address affected (0 for pure layout faults).
  std::string Description;
};

class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed) : R(Seed) {}

  /// Applies one fault of kind \p K to \p SP, mutating its image bytes or
  /// layout in place. Returns nothing if the kind is not applicable to
  /// this image (e.g. no compressed regions).
  std::optional<FaultReport> inject(SquashedProgram &SP, FaultKind K);

  /// Applies one fault of a randomly chosen applicable kind from
  /// \p Kinds.
  std::optional<FaultReport> injectAny(SquashedProgram &SP,
                                       const std::vector<FaultKind> &Kinds);

private:
  vea::Rng R;
};

} // namespace squash

#endif // SQUASH_SQUASH_FAULTINJECTOR_H
