//===- squash/LayoutPass.cpp - Profile-guided function layout -------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/LayoutPass.h"

#include <algorithm>
#include <cstdint>
#include <map>

using namespace squash;
using namespace vea;

namespace {

/// One directed call edge at function granularity.
struct CallEdge {
  unsigned Caller = 0;
  unsigned Callee = 0;
  uint64_t Weight = 0;
};

} // namespace

std::vector<unsigned> squash::computeFunctionLayout(const Cfg &G,
                                                    const Profile &Prof) {
  const unsigned NumFuncs = G.numFunctions();
  std::vector<unsigned> Order(NumFuncs);
  for (unsigned F = 0; F != NumFuncs; ++F)
    Order[F] = F;
  if (NumFuncs <= 1)
    return Order;

  // 1. Function-level adjacency: weight(F, G) = sum over blocks B of F of
  // count(B) per direct call B -> entry(G). A block's execution count is
  // the best available proxy for how often its calls fire. Self-edges say
  // nothing about placement. The map keys give a deterministic edge
  // enumeration regardless of profile hash order.
  std::map<std::pair<unsigned, unsigned>, uint64_t> W;
  std::vector<uint64_t> Heat(NumFuncs, 0);
  for (unsigned B = 0; B != G.numBlocks(); ++B) {
    const uint64_t Count =
        B < Prof.BlockCounts.size() ? Prof.BlockCounts[B] : 0;
    if (Count == 0)
      continue;
    const unsigned Caller = G.functionOf(B);
    Heat[Caller] += Count * G.block(B).size();
    for (unsigned CalleeEntry : G.callees(B)) {
      const unsigned Callee = G.functionOf(CalleeEntry);
      if (Callee != Caller)
        W[{Caller, Callee}] += Count;
    }
  }

  std::vector<CallEdge> Edges;
  Edges.reserve(W.size());
  for (const auto &[Key, Weight] : W)
    Edges.push_back({Key.first, Key.second, Weight});
  // Heaviest first; ties in deterministic (caller, callee) order, which
  // the map iteration already provides, so stable_sort pins the result.
  std::stable_sort(Edges.begin(), Edges.end(),
                   [](const CallEdge &A, const CallEdge &B) {
                     return A.Weight > B.Weight;
                   });

  // 2. Greedy chain merge (Pettis-Hansen): each function starts as its own
  // chain; the heaviest edge whose endpoints live in different chains
  // joins them. The chains are joined at the endpoints that carry the
  // edge, reversing a chain when that brings the hot caller/callee pair
  // onto adjacent lines; an interior endpoint falls back to plain
  // concatenation (the pair is already line-adjacent to an even hotter
  // partner, or placement cannot help it).
  std::vector<int32_t> ChainOf(NumFuncs);
  std::vector<std::vector<unsigned>> Chains(NumFuncs);
  for (unsigned F = 0; F != NumFuncs; ++F) {
    ChainOf[F] = static_cast<int32_t>(F);
    Chains[F] = {F};
  }
  for (const CallEdge &E : Edges) {
    const int32_t A = ChainOf[E.Caller], B = ChainOf[E.Callee];
    if (A == B)
      continue;
    std::vector<unsigned> &CA = Chains[A];
    std::vector<unsigned> &CB = Chains[B];
    const bool CallerAtHead = CA.front() == E.Caller;
    const bool CallerAtTail = CA.back() == E.Caller;
    const bool CalleeAtHead = CB.front() == E.Callee;
    const bool CalleeAtTail = CB.back() == E.Callee;
    if (CallerAtTail && CalleeAtHead) {
      // caller | callee: already oriented.
    } else if (CallerAtTail && CalleeAtTail) {
      std::reverse(CB.begin(), CB.end());
    } else if (CallerAtHead && CalleeAtHead) {
      std::reverse(CA.begin(), CA.end());
    } else if (CallerAtHead && CalleeAtTail) {
      std::reverse(CA.begin(), CA.end());
      std::reverse(CB.begin(), CB.end());
    }
    for (unsigned F : CB)
      ChainOf[F] = A;
    CA.insert(CA.end(), CB.begin(), CB.end());
    CB.clear();
  }

  // 3. Chains by descending total heat; cold functions (and cold chains)
  // retain program order — the seed chain index breaks ties.
  struct ChainRank {
    uint64_t Heat;
    unsigned Seed;
  };
  std::vector<ChainRank> Ranks;
  for (unsigned C = 0; C != NumFuncs; ++C) {
    if (Chains[C].empty())
      continue;
    uint64_t H = 0;
    for (unsigned F : Chains[C])
      H += Heat[F];
    Ranks.push_back({H, C});
  }
  std::stable_sort(Ranks.begin(), Ranks.end(),
                   [](const ChainRank &A, const ChainRank &B) {
                     if (A.Heat != B.Heat)
                       return A.Heat > B.Heat;
                     return A.Seed < B.Seed;
                   });

  Order.clear();
  for (const ChainRank &R : Ranks)
    for (unsigned F : Chains[R.Seed])
      Order.push_back(F);
  return Order;
}

Status LayoutPass::run(PipelineContext &Ctx) {
  if (!Ctx.options().ProfileLayout)
    return runDisabled(Ctx);
  Ctx.FuncOrder = computeFunctionLayout(Ctx.cfg(), Ctx.profile());
  // The identity permutation carries no information; normalize to "no
  // explicit order" so downstream byte-stability short-circuits apply.
  bool Identity = true;
  for (unsigned F = 0; F != Ctx.FuncOrder.size() && Identity; ++F)
    Identity = Ctx.FuncOrder[F] == F;
  if (Identity)
    Ctx.FuncOrder.clear();
  return Status::success();
}

Status LayoutPass::runDisabled(PipelineContext &Ctx) {
  Ctx.FuncOrder.clear();
  return Status::success();
}
