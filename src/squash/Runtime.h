//===- squash/Runtime.h - Decompressor runtime service ---------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime half of squash: the decompressor with its per-register entry
/// points, and CreateStub with its reference-counted restore stubs
/// (Sections 2.2 and 2.3). It is implemented as a simulator trap service
/// occupying the reserved decompressor region of the squashed image; all of
/// its *state* (restore stubs, the runtime buffer, the function offset
/// table, the compressed blob) lives in simulated memory and is executed /
/// read by the simulated program for real — only the decoder logic runs
/// natively, with its work charged to the cycle counter through the cost
/// model.
///
/// Entry points (mirroring "multiple entry points, one per possible return
/// address register"):
///   DecompBase + 4*r        : Decompress, return address in register r
///   DecompBase + 4*(32+r)   : CreateStub, return address in register r
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_RUNTIME_H
#define SQUASH_SQUASH_RUNTIME_H

#include "sim/Machine.h"
#include "squash/Rewriter.h"
#include "support/Status.h"

#include <cstdint>
#include <vector>

namespace squash {

class RuntimeSystem : public vea::TrapHandler {
public:
  struct Stats {
    uint64_t Decompressions = 0;       ///< Region fills.
    uint64_t DecodedInstructions = 0;  ///< Instructions decoded into buffer.
    uint64_t EntryStubCalls = 0;       ///< Decompress from an entry stub.
    uint64_t RestoreStubCalls = 0;     ///< Decompress from a restore stub.
    uint64_t StubCreates = 0;
    uint64_t StubReuses = 0;
    uint64_t BufferedHits = 0; ///< Fills skipped (ReuseBufferedRegion).
    uint64_t CorruptRegionRecoveries = 0; ///< Fills served from the
                                          ///< recovery copy after a failed
                                          ///< integrity check.
    uint32_t MaxLiveStubs = 0;
    uint32_t LiveStubs = 0;
  };

  /// One runtime event, recorded when tracing is enabled: the observable
  /// protocol of Sections 2.2/2.3 (used by tests and the inspector).
  struct Event {
    enum class Kind : uint8_t {
      Decompress,   ///< Region filled into the buffer.
      BufferedHit,  ///< Fill skipped: region already resident.
      EnterViaStub, ///< Decompress entered from an entry stub.
      EnterViaRestore, ///< ... from a restore stub (refcount dropped).
      StubCreate,   ///< New restore stub allocated.
      StubReuse,    ///< Existing restore stub's count incremented.
      StubRelease,  ///< Count reached zero; slot freed.
      RecoverFill,  ///< Region failed its integrity check; buffer was
                    ///< refilled from the retained recovery copy.
    };
    Kind K;
    uint32_t Region = 0; ///< Region involved (Decompress/Enter kinds).
    uint32_t Addr = 0;   ///< Stub or tag address, when applicable.
    uint32_t Count = 0;  ///< Refcount after the operation (Stub kinds).
  };

  explicit RuntimeSystem(const SquashedProgram &SP);

  /// Starts recording events (unbounded; intended for tests and tools).
  void enableTrace() { Tracing = true; }
  const std::vector<Event> &events() const { return Trace; }

  /// Validates the squashed image inside \p M — segment ordering and
  /// bounds, offset-table consistency, and (when Options::ChecksumAtAttach
  /// is set) the image and blob CRC32s — then registers this service's trap
  /// range. Call before running. On failure nothing is registered, so
  /// entry-stub calls land on the decompressor region's zero sentinel words
  /// and fault cleanly instead of executing a corrupt image.
  vea::Status attach(vea::Machine &M);

  bool handleTrap(vea::Machine &M, uint32_t PC) override;

  const Stats &stats() const { return St; }

  /// Region currently held by the runtime buffer (-1 before the first
  /// decompression).
  int32_t currentRegion() const { return CurrentRegion; }

private:
  bool decompress(vea::Machine &M, unsigned Reg);
  bool createStub(vea::Machine &M, unsigned Reg);
  bool fillBuffer(vea::Machine &M, uint32_t Region);

  const SquashedProgram &SP;
  Stats St;
  int32_t CurrentRegion = -1;

  struct StubSlot {
    bool Live = false;
    uint32_t Key = 0;   ///< (region << 16) | call-site buffer word offset.
    uint32_t Count = 0; ///< Reference count (mirrored in memory word 2).
    uint32_t Tag = 0;   ///< Tag written to memory word 1; the in-memory
                        ///< copy is cross-checked against this on reentry.
  };
  std::vector<StubSlot> Slots;

  void record(Event::Kind K, uint32_t Region, uint32_t Addr = 0,
              uint32_t Count = 0) {
    if (Tracing)
      Trace.push_back({K, Region, Addr, Count});
  }
  bool Tracing = false;
  std::vector<Event> Trace;
};

} // namespace squash

#endif // SQUASH_SQUASH_RUNTIME_H
