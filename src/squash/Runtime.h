//===- squash/Runtime.h - Decompressor runtime service ---------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime half of squash: the decompressor with its per-register entry
/// points, and CreateStub with its reference-counted restore stubs
/// (Sections 2.2 and 2.3). It is implemented as a simulator trap service
/// occupying the reserved decompressor region of the squashed image; all of
/// its *state* (restore stubs, the runtime buffer, the function offset
/// table, the compressed blob) lives in simulated memory and is executed /
/// read by the simulated program for real — only the decoder logic runs
/// natively, with its work charged to the cycle counter through the cost
/// model.
///
/// Entry points (mirroring "multiple entry points, one per possible return
/// address register"):
///   DecompBase + 4*r        : Decompress, return address in register r
///   DecompBase + 4*(32+r)   : CreateStub, return address in register r
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_RUNTIME_H
#define SQUASH_SQUASH_RUNTIME_H

#include "sim/Machine.h"
#include "squash/Rewriter.h"
#include "support/Histogram.h"
#include "support/Metrics.h"
#include "support/Status.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace squash {

/// Online region-transition predictor feeding the decode-ahead prefetcher
/// (Options::DecodeAhead, DESIGN.md §16). Second-order Markov model over
/// the decompressor's trap stream: the pair context (prev2, prev1) is
/// consulted first — it disambiguates hub-and-spoke patterns like the
/// thrash workload's M→{f0,f1,f2} rotation, where first-order counts tie —
/// then the first-order context, then global heat. All counts are
/// maintained with an incremental argmax (ties break toward the lowest
/// region id), so predict() is O(1) and fully deterministic.
///
/// The maps can be pre-seeded before any trap fires: from a prior run's
/// trace or heat report, or from a DriftMonitor's live counts
/// (squash/Observability.h's seedPredictor* helpers).
class RegionPredictor {
public:
  /// Feeds one observed decompressor entry into every context.
  void observe(uint32_t Region) {
    Heat.add(Region, 1);
    if (Prev1 >= 0)
      Single[static_cast<uint32_t>(Prev1)].add(Region, 1);
    if (Prev2 >= 0)
      Pair[pairKey(static_cast<uint32_t>(Prev2),
                   static_cast<uint32_t>(Prev1))]
          .add(Region, 1);
    Prev2 = Prev1;
    Prev1 = static_cast<int32_t>(Region);
  }

  /// Most likely next region given the current context, or -1 when no
  /// context has any counts yet.
  int32_t predict() const {
    if (Prev2 >= 0) {
      auto It = Pair.find(pairKey(static_cast<uint32_t>(Prev2),
                                  static_cast<uint32_t>(Prev1)));
      if (It != Pair.end() && It->second.Best >= 0)
        return It->second.Best;
    }
    if (Prev1 >= 0) {
      auto It = Single.find(static_cast<uint32_t>(Prev1));
      if (It != Single.end() && It->second.Best >= 0)
        return It->second.Best;
    }
    return Heat.Best;
  }

  /// Seeds the first-order context (e.g. from a prior run's trace).
  void seedTransition(uint32_t From, uint32_t To, uint64_t Weight = 1) {
    if (Weight)
      Single[From].add(To, Weight);
  }
  /// Seeds the global-heat fallback (e.g. from a heat report or a
  /// DriftMonitor's live entry counts).
  void seedHeat(uint32_t Region, uint64_t Weight) {
    if (Weight)
      Heat.add(Region, Weight);
  }

private:
  struct Context {
    std::unordered_map<uint32_t, uint64_t> Counts;
    int32_t Best = -1;
    uint64_t BestCount = 0;
    void add(uint32_t To, uint64_t Weight) {
      uint64_t C = Counts[To] += Weight;
      if (C > BestCount ||
          (C == BestCount && To < static_cast<uint32_t>(Best)))
        Best = static_cast<int32_t>(To), BestCount = C;
    }
  };
  static uint64_t pairKey(uint32_t A, uint32_t B) {
    return (static_cast<uint64_t>(A) << 32) | B;
  }
  std::unordered_map<uint64_t, Context> Pair;
  std::unordered_map<uint32_t, Context> Single;
  Context Heat;
  int32_t Prev1 = -1, Prev2 = -1;
};

/// Observer of the runtime's Decompress traps, invoked synchronously from
/// the trap path (so implementations must stay allocation-free and cheap).
/// squash/DriftMonitor uses this to accumulate live region heat online,
/// without waiting for the bounded trace ring — which drops old events —
/// to be drained after the run.
class TrapObserver {
public:
  virtual ~TrapObserver();

  /// Called once per Decompress-entry trap, after \p Region became
  /// resident. \p Filled is false when the decode cache served the entry
  /// without re-decoding; \p ViaRestore is true when the trap came through
  /// a restore stub (a call returning into an evicted region) rather than
  /// an entry stub — a cache-pressure artifact, not a fresh region entry;
  /// \p ChargedCycles is the simulated cycle cost the entry added (fill +
  /// setup, or the hit's setup charge).
  virtual void onRegionEntry(uint32_t Region, bool Filled, bool ViaRestore,
                             uint64_t ChargedCycles) = 0;
};

class RuntimeSystem : public vea::TrapHandler {
public:
  struct Stats {
    uint64_t Decompressions = 0;       ///< Region fills.
    uint64_t DecodedInstructions = 0;  ///< Instructions decoded into buffer.
    uint64_t EntryStubCalls = 0;       ///< Decompress from an entry stub.
    uint64_t RestoreStubCalls = 0;     ///< Decompress from a restore stub.
    uint64_t StubCreates = 0;
    uint64_t StubReuses = 0;
    uint64_t BufferedHits = 0; ///< Fills skipped: region was resident.
    uint64_t Evictions = 0;    ///< Resident regions displaced by a fill
                               ///< while the decode cache was active.
    uint64_t SlotMapRepairs = 0; ///< Guest slot-map words that disagreed
                                 ///< with the host resident table and were
                                 ///< invalidated (fill repeated).
    uint64_t ResidentCrcMismatches = 0; ///< Resident slots that failed
                                        ///< re-validation and were refilled.
    uint64_t DirectStubRewrites = 0; ///< Entry stubs turned into direct
                                     ///< branches on residency.
    uint64_t DirectStubRestores = 0; ///< ... restored to bsr on eviction.
    uint64_t CorruptRegionRecoveries = 0; ///< Fills served from the
                                          ///< recovery copy after a failed
                                          ///< integrity check.
    uint32_t MaxLiveStubs = 0;
    uint32_t LiveStubs = 0;

    /// Decode-ahead accounting (Options::DecodeAhead; all zero when off).
    uint64_t PrefetchLaunches = 0; ///< Predictions staged on the worker.
    uint64_t PrefetchHits = 0;     ///< Fills served from a staged decode.
    uint64_t PrefetchMisses = 0;   ///< Fills that had to demand-decode.
    uint64_t PrefetchWasted = 0;   ///< Staged decodes for the wrong region
                                   ///< (or that failed in-flight).
    uint64_t PrefetchLate = 0;     ///< Fills that had to wait for the
                                   ///< in-flight worker (host timing only;
                                   ///< never asserted by tests).
    uint64_t PrefetchCorruptDiscards = 0; ///< Staged decodes discarded by
                                          ///< the consume-time CRC check.

    /// Per-codec fill accounting (indexed by CodecKind): how many region
    /// fills each coder served and the total decode cycles charged for
    /// them. With the default all-Huffman image only index 0 moves.
    std::array<uint64_t, NumCodecKinds> FillsByCodec = {};
    std::array<uint64_t, NumCodecKinds> DecodeCyclesByCodec = {};

    /// Cycle-attribution ledger counters (squash/Telemetry.h). Each counter
    /// is incremented adjacent to the M.addCycles() call it mirrors, so the
    /// conservation identity
    ///   Machine cycles == retired instructions
    ///                     + TrapSetupCyclesTotal
    ///                     + sum(DecodeOnlyCyclesByCodec)
    ///                     + IcacheFlushCyclesTotal
    ///                     + CreateStubCyclesTotal
    /// holds for every run outcome, faults included.
    uint64_t TrapSetupCyclesTotal = 0; ///< DecompSetupCycles per entry (hit
                                       ///< or fill alike).
    std::array<uint64_t, NumCodecKinds> DecodeOnlyCyclesByCodec = {};
                                       ///< Pure decode work, net of setup
                                       ///< and flush (0 on prefetch hits).
    uint64_t IcacheFlushCyclesTotal = 0; ///< Post-fill flush charges.
    uint64_t CreateStubCyclesTotal = 0;  ///< CreateStub trap charges.

    /// Host wall-clock spent building the fast-decode tables at attach
    /// (one-time, memoized across attaches of the same program).
    uint64_t FastTableBuildNanos = 0;
    /// Host wall-clock spent decoding regions (demand fills plus consumed
    /// prefetch work) — the measured-time companion of DecodeCycles.
    uint64_t HostDecodeNanos = 0;

    /// Latency distributions (DESIGN.md §13). Histograms are fixed-size
    /// members — preallocated with the Stats object when the runtime is
    /// constructed — so hot-path recording is a couple of arithmetic ops
    /// and never allocates.
    vea::Histogram TrapCycles;   ///< Charged cycles per decompressor trap.
    vea::Histogram DecodeCycles; ///< Charged decode cycles per region fill.
    vea::Histogram HitStreaks;   ///< Resident (no-decode) entries served
                                 ///< between consecutive fills; recorded at
                                 ///< each fill, so 0 means the fill had no
                                 ///< cache hits before it.

    /// Fills as a fraction of decompression requests: 1.0 means every
    /// entry re-decoded (the paper's always-thrash behaviour), lower means
    /// the decode cache absorbed re-entries.
    double thrashRatio() const {
      uint64_t Requests = Decompressions + BufferedHits;
      return Requests ? static_cast<double>(Decompressions) / Requests : 0.0;
    }

    /// Registers every counter under \p Prefix (DESIGN.md §12).
    void exportMetrics(vea::MetricsRegistry &R,
                       const std::string &Prefix = "runtime.") const;
  };

  /// One runtime event, recorded when tracing is enabled: the observable
  /// protocol of Sections 2.2/2.3 (used by tests and the inspector).
  struct Event {
    enum class Kind : uint8_t {
      Decompress,   ///< Region filled into the buffer.
      BufferedHit,  ///< Fill skipped: region already resident.
      EnterViaStub, ///< Decompress entered from an entry stub.
      EnterViaRestore, ///< ... from a restore stub (refcount dropped).
      StubCreate,   ///< New restore stub allocated.
      StubReuse,    ///< Existing restore stub's count incremented.
      StubRelease,  ///< Count reached zero; slot freed.
      RecoverFill,  ///< Region failed its integrity check; buffer was
                    ///< refilled from the retained recovery copy.
      Evict,        ///< A resident region was displaced from its cache
                    ///< slot (decode cache active only).
      SlotMapRepair, ///< Guest slot-map word contradicted the host table;
                     ///< the slot was invalidated and refilled.
      PrefetchLaunch, ///< Decode-ahead staged a predicted region.
      PrefetchHit,    ///< A fill consumed the staged decode.
      PrefetchDrop,   ///< The staged decode was discarded (mispredicted,
                      ///< failed in-flight, or failed the consume-time
                      ///< CRC check).
    };
    Kind K;
    uint32_t Region = 0; ///< Region involved (Decompress/Enter kinds).
    uint32_t Addr = 0;   ///< Stub/tag address or cache-slot index.
    uint32_t Count = 0;  ///< Refcount after the operation (Stub kinds).
    uint64_t Cycle = 0;  ///< Machine cycle count when recorded (timestamp
                         ///< for the Chrome-trace exporter).
  };

  /// Default trace ring capacity (events, not bytes).
  static constexpr uint32_t DefaultTraceCapacity = 1u << 16;

  explicit RuntimeSystem(const SquashedProgram &SP);

  /// Joins any in-flight decode-ahead work before the members it reads
  /// (the machine's memory is captured by pointer at launch) can go away.
  /// Callers keep the usual order — runtime declared after the machine —
  /// so this drain always precedes the machine's destruction.
  ~RuntimeSystem() override;

  /// Starts recording events into a bounded ring of \p Capacity events.
  /// When the ring is full the oldest event is overwritten (the newest
  /// events are always retained) and droppedEvents() counts the loss, so
  /// host memory for the trace is O(Capacity) no matter how long the
  /// workload runs.
  void enableTrace(uint32_t Capacity = DefaultTraceCapacity) {
    Tracing = true;
    TraceCap = std::max(1u, Capacity);
    Trace.clear();
    Trace.reserve(std::min<uint32_t>(TraceCap, 1024));
    TraceNext = 0;
    TraceDropped = 0;
  }

  /// The retained events, oldest first. With overflow this is the newest
  /// traceCapacity() events of the run.
  std::vector<Event> events() const;

  /// Events overwritten because the ring was full.
  uint64_t droppedEvents() const { return TraceDropped; }
  uint32_t traceCapacity() const { return TraceCap; }
  /// Total events recorded, including overwritten ones.
  uint64_t totalEvents() const { return Trace.size() + TraceDropped; }

  /// Validates the squashed image inside \p M — segment ordering and
  /// bounds, offset-table consistency, and (when Options::ChecksumAtAttach
  /// is set) the image and blob CRC32s — then registers this service's trap
  /// range. Call before running. On failure nothing is registered, so
  /// entry-stub calls land on the decompressor region's zero sentinel words
  /// and fault cleanly instead of executing a corrupt image.
  vea::Status attach(vea::Machine &M);

  bool handleTrap(vea::Machine &M, uint32_t PC) override;

  /// Registers \p O to be called on every Decompress-entry trap (nullptr
  /// detaches). The observer is invoked synchronously on the trap path.
  void setTrapObserver(TrapObserver *O) { Observer = O; }

  const Stats &stats() const { return St; }

  /// The decode-ahead region predictor. Exposed for pre-seeding (see
  /// squash/Observability.h's seedPredictor* helpers) and for tests that
  /// steer the prediction deliberately; the runtime feeds it every
  /// decompressor entry whether or not DecodeAhead is on.
  RegionPredictor &predictor() { return Predictor; }
  const RegionPredictor &predictor() const { return Predictor; }

  /// Region most recently entered through the decompressor (-1 before the
  /// first decompression). With a multi-slot cache this is the MRU
  /// resident region, not the only one.
  int32_t currentRegion() const { return CurrentRegion; }

  /// Region resident in cache slot \p Slot, or -1 when the slot is empty.
  int32_t residentRegion(uint32_t Slot) const {
    return Slot < Cache.size() ? Cache[Slot].Region : -1;
  }

private:
  bool decompress(vea::Machine &M, unsigned Reg);
  bool createStub(vea::Machine &M, unsigned Reg);
  /// Makes \p Region resident (serving it from its slot when possible) and
  /// reports the slot it occupies through \p SlotOut.
  bool fillBuffer(vea::Machine &M, uint32_t Region, uint32_t &SlotOut);
  bool evictSlot(vea::Machine &M, uint32_t Slot);
  bool rewriteEntryStubs(vea::Machine &M, uint32_t Region, uint32_t Slot);
  bool restoreEntryStubs(vea::Machine &M, uint32_t Region);

  /// Decodes region \p Region from the blob in \p Mem into \p Words
  /// (slot-0-relative expanded words), dispatching through the region's
  /// recorded codec — the table-driven fast decoder for Huffman regions
  /// when enabled, the codec's streaming cursor otherwise. Shared by the
  /// demand fill path and the decode-ahead worker. \p WorkOut, when
  /// non-null, receives the decode-work breakdown the cost model prices.
  enum class DecodeOutcome { Ok, BadStream, BadCrc };
  DecodeOutcome decodeRegionWords(uint32_t Region, const uint8_t *Mem,
                                  std::vector<uint32_t> &Words,
                                  uint64_t &Decoded,
                                  DecodeWork *WorkOut = nullptr) const;
  /// Hands the staged decode-ahead result to a fill of \p Region. Returns
  /// true only when the staged region matches and re-passes the
  /// expanded-words CRC check; any failure consumes (discards) the staging
  /// so the caller demand-decodes — prefetch can therefore never change
  /// what the guest observes.
  bool consumePrefetch(vea::Machine &M, uint32_t Region,
                       std::vector<uint32_t> &Words, uint64_t &Decoded);
  /// Predicts the next region and stages its decode on the worker thread
  /// (no-op when DecodeAhead is off, the worker is busy, or the prediction
  /// is already resident).
  void launchPrefetch(vea::Machine &M);

  /// The decode cache serves resident regions without re-decoding only in
  /// these configurations; at the defaults (one slot, no reuse) every
  /// request re-decodes, reproducing the paper's protocol exactly.
  bool cacheActive() const {
    return SP.Opts.ReuseBufferedRegion || SP.Layout.CacheSlots > 1;
  }

  const SquashedProgram &SP;
  Stats St;
  int32_t CurrentRegion = -1;
  TrapObserver *Observer = nullptr;
  uint64_t HitStreak = 0; ///< Resident hits since the last fill.

  /// Memoized fast-decode tables (built once at attach when FastDecode or
  /// DecodeAhead is on; immutable, shared with the prefetch worker).
  std::shared_ptr<const FastTables> Tables;

  RegionPredictor Predictor;
  /// Decode-ahead staging. The worker thread owns every field except Ready
  /// from launch until it stores Ready with release order; the trap thread
  /// reads them only after acquiring Ready (or after ThreadPool::wait(),
  /// which also synchronizes), so there is no lock on the fill path.
  struct PrefetchState {
    int32_t Region = -1; ///< Staged region; -1 when idle (trap thread's
                         ///< view — set at launch, cleared at consume).
    std::vector<uint32_t> Words;
    uint64_t Decoded = 0;
    uint64_t Nanos = 0; ///< Host wall-clock the staged decode took.
    uint64_t FlowId = 0; ///< Span flow id linking launch → worker →
                         ///< consume (written by the trap thread before
                         ///< the worker is enqueued).
    bool Ok = false;    ///< Decode succeeded and passed the words CRC.
    std::atomic<bool> Ready{false};
  };
  PrefetchState PF;
  /// Single-threaded pool running the staged decodes; created lazily on
  /// the first launch so runs without DecodeAhead never spawn a thread.
  std::unique_ptr<vea::ThreadPool> PFPool;
  /// Countdown to the armed prefetch corruption (copied from
  /// SquashedProgram::ArmPrefetchCorrupt at attach).
  uint32_t ArmPrefetchCorrupt = 0;

  /// Host mirror of the decode cache: per slot, the resident region, an
  /// LRU tick, and the CRC of the slot-relocated words written at fill
  /// time (re-checked before a hit is served).
  struct CacheSlotState {
    int32_t Region = -1;
    uint64_t LastUse = 0;
    uint32_t Crc = 0;
    bool StubsRewritten = false;
  };
  std::vector<CacheSlotState> Cache;
  std::vector<int32_t> SlotOfRegion; ///< Per region: its slot, or -1.
  uint64_t UseTick = 0;

  struct StubSlot {
    bool Live = false;
    uint32_t Key = 0;   ///< (region << 16) | call-site buffer word offset.
    uint32_t Count = 0; ///< Reference count (mirrored in memory word 2).
    uint32_t Tag = 0;   ///< Tag written to memory word 1; the in-memory
                        ///< copy is cross-checked against this on reentry.
  };
  std::vector<StubSlot> Slots;

  /// Appends to the trace ring, stamping the machine's cycle counter.
  /// Overwrites the oldest event (counting the drop) once the ring holds
  /// traceCapacity() events. Out of line because it also feeds an armed
  /// flight recorder (which wants events even with tracing off).
  void record(const vea::Machine &M, Event::Kind K, uint32_t Region,
              uint32_t Addr = 0, uint32_t Count = 0);
  bool Tracing = false;
  uint32_t TraceCap = DefaultTraceCapacity;
  size_t TraceNext = 0;      ///< Oldest element once the ring wrapped.
  uint64_t TraceDropped = 0; ///< Events overwritten after overflow.
  std::vector<Event> Trace;  ///< Ring storage (append until TraceCap).
};

} // namespace squash

#endif // SQUASH_SQUASH_RUNTIME_H
