//===- squash/Adaptive.h - Online re-squash with hot-swap ------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the paper's profile-guided loop at runtime. The DriftMonitor
/// (§13) measures when the training profile stops predicting production
/// behaviour; bench/stat_drift shows an offline merged-profile re-squash
/// recovers the drift-induced trap cycles. This subsystem performs that
/// re-squash *online*, as a multiversion hot-swap (DESIGN.md §15):
///
///   ResquashController owns a pristine (compacted) program and a list of
///   image *versions*, each a complete SquashedProgram with its guiding
///   profile and accumulated live heat. Requests are served against the
///   active version under an **epoch pin**: a version's memory (image
///   bytes, compressed streams, decode-cache recovery copies) is never
///   touched while any request holds a pin on it, so a trap mid-swap
///   always completes against a coherent version.
///
/// When the active version's drift score crosses the configured
/// threshold, a background worker (support/ThreadPool) merges the live
/// profile into the guiding profile via the hardened sim/ProfileIO path,
/// re-runs the standard pass pipeline, **CRC-validates the staged image**,
/// and hands it to an atomic publication step (a mutex-scoped registry
/// swap whose wall time is the reported swap pause, plus a semantic
/// cross-check of the offset table against the region metadata). The new
/// version then runs a probation window; if its trap-cycle rate regresses
/// past the prior version's, the controller **rolls back automatically**.
/// Retired versions are freed only when their pins drain (epoch-based
/// retirement); a leaked pin wedges retirement, which is reported via
/// vea::Status rather than risked as a use-after-free. A watchdog
/// invalidates background attempts that overrun their deadline
/// (generation counter — late results are discarded), so a wedged
/// re-squash degrades the system to its current version, never to a
/// broken one.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_ADAPTIVE_H
#define SQUASH_SQUASH_ADAPTIVE_H

#include "squash/DriftMonitor.h"
#include "squash/Driver.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace squash {

/// Lifecycle of one image version (DESIGN.md §15). Forward transitions
/// only; the terminal states are Freed and Failed.
enum class VersionState : uint8_t {
  Probation, ///< Active, under post-swap comparison against the prior.
  Committed, ///< Active (or previously active) and accepted.
  Standby,   ///< The prior version while its successor is on probation —
             ///< the rollback target, never freed.
  Retired,   ///< Superseded; freed once its epoch pins drain.
  RolledBack,///< Regressed on probation; freed once its pins drain.
  Freed,     ///< Memory released (image, streams, recovery copies).
};

const char *versionStateName(VersionState S);

/// One version-transition event in the controller's bounded ring.
struct AdaptiveEvent {
  enum class Kind : uint8_t {
    Trigger,         ///< Drift crossed the threshold; attempt launched.
    Staged,          ///< Background re-squash validated and staged.
    StagingRejected, ///< Staged image failed CRC validation; discarded.
    Converged,       ///< Staged image identical to the active one; no-op.
    Published,       ///< Staged version swapped in (probation begins).
    PublishRejected, ///< Publication cross-check failed; staged discarded.
    Committed,       ///< Probation passed; prior version retires.
    RolledBack,      ///< Probation regressed; prior version reinstated.
    Retired,         ///< A drained version's memory was freed.
    TimedOut,        ///< Watchdog invalidated an overrunning attempt.
    Failed,          ///< Merge or pipeline failed; version unchanged.
    PinLeaked,       ///< A serve leaked its epoch pin (fault injection).
    Wedged,          ///< Retirement stuck behind leaked pins; reported.
  };
  Kind K;
  uint32_t Version = 0; ///< Version the transition concerns.
  uint64_t Seq = 0;     ///< Monotonic event number (gap-free before drops).
};

const char *adaptiveEventKindName(AdaptiveEvent::Kind K);

struct AdaptiveConfig {
  /// Re-squash triggers when DriftReport::DriftScore reaches this value
  /// (and MinEntriesForTrigger is met). 0 triggers on any live evidence.
  double DriftThreshold = 0.25;
  /// Minimum live region entries before the drift score is actionable.
  uint64_t MinEntriesForTrigger = 16;
  /// Probation verdict after this many traps on the new version...
  uint32_t ProbationTraps = 64;
  /// ...or this many full requests, whichever comes first (a fully
  /// recovered version may trap rarely or never).
  uint32_t ProbationRuns = 4;
  /// Rollback when the new version's trap cycles per instruction exceed
  /// the prior version's lifetime rate by this factor.
  double RegressionTolerance = 1.10;
  /// Watchdog deadline for one background re-squash attempt.
  double ResquashTimeoutSeconds = 120.0;
  /// How long a retired version may sit pinned before retirement is
  /// reported wedged (the memory is still never freed under a pin).
  double RetireTimeoutSeconds = 30.0;
  /// Attempts a single active version may launch (re-arming requires a
  /// successful swap; prevents a persistent drift signal from spinning
  /// the pipeline).
  uint32_t MaxAttemptsPerVersion = 1;
  /// Global attempt budget; 0 means unlimited.
  uint64_t MaxAttempts = 0;
  /// When true (the default), poll() publishes a staged version as soon
  /// as no probation is pending. Tests and tools that must control the
  /// exact swap point disable this and call publishStaged() themselves.
  bool AutoPublish = true;
  /// Capacity of the version-transition event ring.
  uint32_t EventCapacity = 1024;
  /// When nonzero, every serve() runs with the runtime trace ring enabled
  /// at this capacity and the run's retained events (plus the exact
  /// dropped-event count) come back in SquashedRun::Trace — the hot-swap
  /// ring-drain test reconciles both rings against this.
  uint32_t TraceCapacity = 0;
  /// Workers for the background re-squash pool.
  unsigned WorkerThreads = 1;
  /// Test hook: replaces squashProgram for the re-squash (forced
  /// regressions, wedged-worker simulation). Receives the pristine
  /// program, the merged profile, and the derived options.
  std::function<vea::Expected<SquashResult>(
      const vea::Program &, const vea::Profile &, const Options &)>
      PipelineOverride;
  /// Test hook: mutates the staged image after the pipeline and before
  /// staging validation (FaultInjector swap-path faults plug in here).
  std::function<void(SquashedProgram &)> StageHook;
};

/// Counter snapshot of the adaptation loop (exported as resquash.*).
struct AdaptiveStats {
  uint64_t Attempts = 0;        ///< Re-squash attempts launched.
  uint64_t Successes = 0;       ///< Versions committed after probation.
  uint64_t Rollbacks = 0;       ///< Automatic probation rollbacks.
  uint64_t Failures = 0;        ///< Merge/pipeline errors (no new version).
  uint64_t StagingRejects = 0;  ///< Staged images failing CRC validation.
  uint64_t PublishRejects = 0;  ///< Publications failing the cross-check.
  uint64_t ConvergedAttempts = 0; ///< Staged image identical to active.
  uint64_t Timeouts = 0;        ///< Watchdog-invalidated attempts.
  uint64_t Publications = 0;    ///< Successful atomic swaps.
  uint64_t RetiredVersions = 0; ///< Versions freed after pin drain.
  uint64_t WedgedRetirements = 0; ///< Retirements stuck behind pins.
  uint64_t PinLeaks = 0;        ///< Injected epoch-pin leaks observed.
  uint64_t ServedRuns = 0;      ///< Requests served.
  uint64_t ServedDuringResquash = 0; ///< ...while an attempt was in flight.
  uint64_t SwapPauseNsTotal = 0; ///< Publication critical-section time.
  uint64_t SwapPauseNsMax = 0;
  double LastResquashSeconds = 0.0; ///< Last attempt's build wall time.
  double LastDriftScore = 0.0;      ///< Most recent trigger evaluation.
  uint32_t ActiveVersion = 0;
  uint32_t VersionsCreated = 1;
  bool ProbationPending = false;

  /// Registers every scalar under \p Prefix (JSON + Prometheus via
  /// MetricsRegistry).
  void exportMetrics(vea::MetricsRegistry &R,
                     const std::string &Prefix = "resquash.") const;
};

/// The multiversion runtime: serves requests, watches drift, re-squashes
/// in the background, and swaps/retires versions. All shared state is
/// guarded by one mutex; requests run pinned and lock-free for their
/// whole duration, so concurrent serve() calls and a concurrent
/// publication are safe (the ThreadSanitizer suite drives exactly that).
class ResquashController {
public:
  /// Squashes \p Prog (post-compaction) under \p Training as version 0.
  /// Fails with squashProgram's errors; on success the controller is
  /// immediately serviceable.
  static vea::Expected<std::unique_ptr<ResquashController>>
  create(vea::Program Prog, vea::Profile Training, Options Opts,
         AdaptiveConfig Cfg = {});

  ~ResquashController();

  ResquashController(const ResquashController &) = delete;
  ResquashController &operator=(const ResquashController &) = delete;

  /// Serves one request against the active version: pins it, runs to
  /// completion on that coherent version, absorbs the run's live heat and
  /// latency histograms, then advances the adaptation state machine
  /// (probation verdict or drift trigger). \p Extra, when non-null, also
  /// observes every trap — the concurrency stress test uses it to force a
  /// publication at an exact trap index.
  SquashedRun serve(const std::vector<uint8_t> &Input,
                    uint64_t MaxInstructions = 2'000'000'000ull,
                    TrapObserver *Extra = nullptr);

  /// Advances the state machine without serving: watchdog check, staged
  /// publication, probation-free retirement reaping. serve() calls this
  /// on entry and exit; callers with idle periods call it directly.
  void poll();

  /// Waits for the background worker to settle (at most \p TimeoutSeconds;
  /// negative means the configured watchdog deadline), then polls.
  /// DeadlineExceeded when the worker is still busy — the attempt will be
  /// invalidated by the watchdog, not waited on forever.
  vea::Status drain(double TimeoutSeconds = -1.0);

  /// Runs one full re-squash attempt synchronously on the caller's thread
  /// (merge, pipeline, staging validation) regardless of drift, leaving
  /// the result staged for publication. For deterministic tests and
  /// tools. Fails if an attempt is already in flight or staged.
  vea::Status resquashNow();

  /// Publishes the staged version now (normally poll() does this).
  /// Callable from a TrapObserver mid-run: the serving request keeps its
  /// pinned version; only *future* requests see the new one. Fails when
  /// nothing is staged or the publication cross-check rejects the image.
  vea::Status publishStaged();

  /// True when a validated image is staged and awaiting publication.
  bool hasStaged() const;

  /// Fault injection (FaultKind::EpochPinLeak): the next serve() skips
  /// its unpin, simulating a request that died holding its epoch — the
  /// version it pinned can then never drain.
  void armEpochPinLeak();

  uint32_t activeVersion() const;
  uint32_t versionCount() const;
  VersionState versionState(uint32_t Id) const;
  /// The squash result behind \p Id (empty SquashResult once freed).
  const SquashResult &versionResult(uint32_t Id) const;
  /// First-run decode-cycle cost of \p Id: the cold-cache warmup a fresh
  /// version pays (0 until it has served).
  uint64_t versionWarmupDecodeCycles(uint32_t Id) const;

  AdaptiveStats stats() const;
  /// Most recent failure surfaced by the adaptation loop (staging
  /// rejection, watchdog timeout, wedged retirement...). Success when the
  /// loop has never failed.
  vea::Status lastError() const;

  /// Version-transition events, oldest first (bounded ring — see
  /// AdaptiveConfig::EventCapacity).
  std::vector<AdaptiveEvent> events() const;
  uint64_t droppedEvents() const;

  void exportMetrics(vea::MetricsRegistry &R,
                     const std::string &Prefix = "resquash.") const;

private:
  using Clock = std::chrono::steady_clock;

  struct Version {
    uint32_t Id = 0;
    VersionState State = VersionState::Committed;
    SquashResult Result;
    vea::Profile Guiding; ///< Profile this version was squashed under.
    std::unique_ptr<DriftMonitor> Monitor; ///< Accumulated live heat.
    vea::Histogram TrapCycles; ///< Accumulated across this version's runs.
    uint64_t Instructions = 0; ///< Guest instructions retired on it.
    uint64_t Runs = 0;
    uint32_t Pins = 0;     ///< In-flight requests (epoch pins).
    uint32_t Attempts = 0; ///< Re-squash attempts launched from it.
    uint64_t WarmupDecodeCycles = 0;
    bool WarmupSet = false;
    uint64_t Flow = 0; ///< Span flow id of the attempt that built this
                       ///< version (0 for the initial version).
    Clock::time_point RetiredAt{};
    bool WedgeReported = false;
  };

  /// Everything one background attempt needs, snapshotted under the lock
  /// at trigger time so the worker never touches shared state.
  struct AttemptInput {
    vea::Profile Guiding;
    vea::Profile LiveUnit; ///< Monitor heat at weight 1.0.
    uint64_t ColdCutoff = 0;
    uint32_t FromVersion = 0;
    uint64_t Gen = 0;
    uint64_t Flow = 0; ///< Span flow id linking trigger → build → publish.
  };

  struct StagedImage {
    SquashResult Result;
    vea::Profile Guiding; ///< The merged profile.
    uint32_t FromVersion = 0;
    uint64_t Flow = 0; ///< Carried from the attempt that staged it.
  };

  ResquashController() = default;

  /// Merge + pipeline + stage hook + CRC validation; no lock held.
  vea::Expected<StagedImage> buildCandidate(const AttemptInput &In) const;
  /// Runs one attempt to completion and records its outcome. Returns the
  /// outcome for resquashNow; the pool wrapper ignores it.
  vea::Status runAttempt(AttemptInput In);

  void startAttemptLocked(Version &V);
  void maybeTriggerLocked(Version &V);
  vea::Status publishStagedLocked();
  void probationVerdictLocked(Version &V);
  void reapRetiredLocked();
  void watchdogLocked();
  void recordEventLocked(AdaptiveEvent::Kind K, uint32_t VersionId);
  double rateOfLocked(const Version &V) const;

  mutable std::mutex Mu;
  vea::Program Pristine; ///< Compacted program; immutable after create().
  Options BaseOpts;
  AdaptiveConfig Cfg;
  double AbsColdBudget = 0.0; ///< θ·(initial training total), preserved
                              ///< across merges so the cold budget never
                              ///< inflates with the profile volume.
  std::vector<std::unique_ptr<Version>> Versions;
  uint32_t Active = 0;
  uint32_t ProbationPrior = 0;
  bool InProbation = false;
  std::optional<StagedImage> Staged;
  std::unique_ptr<vea::ThreadPool> Pool;
  bool InFlight = false;
  uint32_t InFlightFrom = 0; ///< Version the in-flight attempt came from.
  uint64_t Generation = 0; ///< Bumped by the watchdog; a completing
                           ///< attempt whose generation is stale discards
                           ///< its result.
  Clock::time_point AttemptStart{};
  bool PinLeakArmed = false;
  AdaptiveStats St;
  vea::Status LastError;

  std::vector<AdaptiveEvent> Events;
  uint32_t EventCap = 1024;
  size_t EventNext = 0;
  uint64_t EventDropped = 0;
  uint64_t EventSeq = 0;
};

} // namespace squash

#endif // SQUASH_SQUASH_ADAPTIVE_H
