//===- squash/Runtime.cpp - Decompressor runtime service ------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Runtime.h"

#include "huff/FastDecoder.h"
#include "squash/CodecSelect.h"
#include "squash/CostModel.h"
#include "squash/Observability.h"
#include "support/Checksum.h"
#include "support/Span.h"

#include <algorithm>
#include <chrono>

using namespace squash;
using namespace vea;

/// Elapsed host nanoseconds since \p T0.
static uint64_t nanosSince(std::chrono::steady_clock::time_point T0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
}

TrapObserver::~TrapObserver() = default;

RuntimeSystem::RuntimeSystem(const SquashedProgram &SP) : SP(SP) {
  Slots.resize(SP.Layout.StubSlots);
  Cache.resize(std::max(1u, SP.Layout.CacheSlots));
  SlotOfRegion.assign(SP.Regions.size(), -1);
}

RuntimeSystem::~RuntimeSystem() {
  if (PFPool)
    PFPool->wait();
}

void RuntimeSystem::record(const Machine &M, Event::Kind K, uint32_t Region,
                           uint32_t Addr, uint32_t Count) {
  // An armed flight recorder gets the event feed even with tracing off, so
  // a postmortem dump always has the protocol tail leading to the fault.
  if (FlightRecorder::armed())
    FlightRecorder::instance().noteEvent(eventKindName(K), Region, Addr,
                                         M.cycles());
  if (!Tracing)
    return;
  Event E{K, Region, Addr, Count, M.cycles()};
  if (Trace.size() < TraceCap) {
    Trace.push_back(E);
  } else {
    Trace[TraceNext] = E;
    TraceNext = (TraceNext + 1) % TraceCap;
    ++TraceDropped;
  }
}

std::vector<RuntimeSystem::Event> RuntimeSystem::events() const {
  // Before the ring wraps, Trace is already oldest-first; after, the
  // oldest retained event sits at TraceNext.
  std::vector<Event> Out;
  Out.reserve(Trace.size());
  for (size_t I = 0; I != Trace.size(); ++I)
    Out.push_back(Trace[(TraceNext + I) % Trace.size()]);
  return Out;
}

void RuntimeSystem::Stats::exportMetrics(vea::MetricsRegistry &R,
                                         const std::string &Prefix) const {
  R.setCounter(Prefix + "decompressions", Decompressions);
  R.setCounter(Prefix + "decoded_instructions", DecodedInstructions);
  R.setCounter(Prefix + "entry_stub_calls", EntryStubCalls);
  R.setCounter(Prefix + "restore_stub_calls", RestoreStubCalls);
  R.setCounter(Prefix + "stub_creates", StubCreates);
  R.setCounter(Prefix + "stub_reuses", StubReuses);
  R.setCounter(Prefix + "buffered_hits", BufferedHits);
  R.setCounter(Prefix + "evictions", Evictions);
  R.setCounter(Prefix + "slot_map_repairs", SlotMapRepairs);
  R.setCounter(Prefix + "resident_crc_mismatches", ResidentCrcMismatches);
  R.setCounter(Prefix + "direct_stub_rewrites", DirectStubRewrites);
  R.setCounter(Prefix + "direct_stub_restores", DirectStubRestores);
  R.setCounter(Prefix + "corrupt_region_recoveries", CorruptRegionRecoveries);
  R.setCounter(Prefix + "max_live_stubs", MaxLiveStubs);
  R.setCounter(Prefix + "live_stubs", LiveStubs);
  R.setCounter(Prefix + "prefetch_launches", PrefetchLaunches);
  R.setCounter(Prefix + "prefetch_hits", PrefetchHits);
  R.setCounter(Prefix + "prefetch_misses", PrefetchMisses);
  R.setCounter(Prefix + "prefetch_wasted", PrefetchWasted);
  R.setCounter(Prefix + "prefetch_late", PrefetchLate);
  R.setCounter(Prefix + "prefetch_corrupt_discards", PrefetchCorruptDiscards);
  for (unsigned K = 0; K != NumCodecKinds; ++K) {
    const std::string Name = codecKindName(static_cast<CodecKind>(K));
    R.setCounter(Prefix + "fills_" + Name, FillsByCodec[K]);
    R.setCounter(Prefix + "decode_cycles_" + Name, DecodeCyclesByCodec[K]);
  }
  R.setCounter(Prefix + "trap_setup_cycles", TrapSetupCyclesTotal);
  for (unsigned K = 0; K != NumCodecKinds; ++K)
    R.setCounter(Prefix + "decode_only_cycles_" +
                     codecKindName(static_cast<CodecKind>(K)),
                 DecodeOnlyCyclesByCodec[K]);
  R.setCounter(Prefix + "icache_flush_cycles", IcacheFlushCyclesTotal);
  R.setCounter(Prefix + "create_stub_cycles", CreateStubCyclesTotal);
  R.setCounter(Prefix + "fast_table_build_ns", FastTableBuildNanos);
  R.setCounter(Prefix + "host_decode_ns", HostDecodeNanos);
  R.setGauge(Prefix + "thrash_ratio", thrashRatio());
  R.setHistogram(Prefix + "trap_cycles", TrapCycles);
  R.setHistogram(Prefix + "decode_cycles", DecodeCycles);
  R.setHistogram(Prefix + "hit_streaks", HitStreaks);
}

Status RuntimeSystem::attach(Machine &M) {
  const RuntimeLayout &L = SP.Layout;

  // Identity images carry no runtime machinery: nothing to validate or
  // register.
  if (L.DecompEnd == L.DecompBase)
    return Status::success();

  // A machine that failed to load the image reports its own fault when
  // run; attaching is a no-op rather than a second error.
  if (M.faulted())
    return Status::success();

  auto Bad = [](const std::string &What) {
    return Status::error(StatusCode::MalformedImage, "attach: " + What);
  };

  // An image from a different format generation would be decoded with the
  // wrong table layout; refuse it outright.
  if (L.FormatVersion != RuntimeLayout::CurrentFormatVersion)
    return Bad("image format version " + std::to_string(L.FormatVersion) +
               " (runtime speaks " +
               std::to_string(RuntimeLayout::CurrentFormatVersion) + ")");

  // Segment ordering and bounds. These checks are cheap and always on.
  const uint32_t Base = SP.Img.Base;
  const uint64_t Limit = SP.Img.limit();
  const uint64_t OffsetTableEnd =
      static_cast<uint64_t>(L.OffsetTableBase) + 4ull * SP.Regions.size();
  const uint64_t StubAreaEnd =
      static_cast<uint64_t>(L.StubAreaBase) +
      4ull * RuntimeLayout::StubSlotWords * L.StubSlots;
  const uint64_t BufferEnd =
      static_cast<uint64_t>(L.BufferBase) + 4ull * L.BufferWords;
  if (L.DecompBase < Base || L.DecompBase % 4 != 0)
    return Bad("decompressor region outside the image");
  if (L.DecompEnd - L.DecompBase < 4 * RuntimeLayout::NumEntryPoints)
    return Bad("decompressor region smaller than its entry points");
  if (L.OffsetTableBase < L.DecompEnd)
    return Bad("offset table overlaps the decompressor");
  if (OffsetTableEnd > L.StubAreaBase)
    return Bad("offset table shorter than the region count");
  if (StubAreaEnd > L.BufferBase)
    return Bad("restore-stub area overlaps the runtime buffer");
  if (L.BufferWords == 0)
    return Bad("runtime buffer has no jump slot");
  if (L.CacheSlots == 0 || L.SlotWords == 0)
    return Bad("decode cache has no slots");
  if (4ull * L.CacheSlots * L.SlotWords != 4ull * L.BufferWords)
    return Bad("runtime buffer inconsistent with its cache slots");
  const uint64_t SlotMapEnd =
      static_cast<uint64_t>(L.SlotMapBase) + 4ull * L.CacheSlots;
  if (L.SlotMapBase < StubAreaEnd)
    return Bad("slot map overlaps the restore-stub area");
  if (SlotMapEnd > L.BufferBase)
    return Bad("slot map overlaps the runtime buffer");
  if (BufferEnd > L.DataBase)
    return Bad("runtime buffer overlaps the data segment");
  if (L.DataBase > L.BlobBase)
    return Bad("data segment overlaps the compressed blob");
  if (static_cast<uint64_t>(L.BlobBase) + L.BlobBytes > Limit)
    return Bad("compressed blob extends past the image");
  if (Limit > M.memBytes())
    return Bad("image extends past simulated memory");

  // Per-region host-side metadata. Cheap and always on.
  uint32_t PrevOffset = 0;
  bool UsesCodec[NumCodecKinds] = {};
  for (size_t R = 0; R != SP.Regions.size(); ++R) {
    const RegionImageInfo &RI = SP.Regions[R];
    if (RI.ExpandedWords + 1 > L.SlotWords)
      return Bad("cache slot too small for region " + std::to_string(R));
    if (RI.BitOffset >= 8ull * L.BlobBytes)
      return Bad("region " + std::to_string(R) +
                 " starts past the end of the blob");
    if (R != 0 && RI.BitOffset <= PrevOffset)
      return Bad("region bit offsets are not strictly increasing");
    PrevOffset = RI.BitOffset;
    if (RI.Codec >= NumCodecKinds)
      return Bad("region " + std::to_string(R) +
                 " names an unknown codec");
    UsesCodec[RI.Codec] = true;
  }

  // The host mirrors of every referenced codec's tables. A truncated or
  // inconsistent table would otherwise surface as a puzzling per-region
  // decode failure at trap time (and, with recovery copies retained, be
  // silently masked). Codecs no region references are not required to be
  // present.
  if (UsesCodec[static_cast<unsigned>(CodecKind::Huffman)])
    if (Status CS = SP.Codecs.validate(); !CS.ok())
      return CS;
  if (UsesCodec[static_cast<unsigned>(CodecKind::Pattern)])
    if (Status CS = SP.Pattern.validate(); !CS.ok())
      return CS;
  if (UsesCodec[static_cast<unsigned>(CodecKind::Context)])
    if (Status CS = SP.Context.validate(); !CS.ok())
      return CS;

  // Build (or reuse) the fast-decode tables while we are off the trap
  // path; fastTables() memoizes per codec, so repeat attaches of the same
  // squashed program share one immutable table set. Only Huffman regions
  // have a table-driven path; the other coders decode through their own
  // cursors.
  if (UsesCodec[static_cast<unsigned>(CodecKind::Huffman)] &&
      (SP.Opts.FastDecode || SP.Opts.DecodeAhead)) {
    Tables = SP.Codecs.fastTables(SP.Opts.DecodeTableBits);
    St.FastTableBuildNanos = Tables->buildNanos();
  }
  ArmPrefetchCorrupt = SP.ArmPrefetchCorrupt;

  // Full-content scans of guest memory (optional; the offset table and
  // each region are re-checked lazily on every fill regardless).
  if (SP.Opts.ChecksumAtAttach) {
    for (size_t R = 0; R != SP.Regions.size(); ++R) {
      uint32_t Addr = L.OffsetTableBase + 4 * static_cast<uint32_t>(R);
      uint32_t Word = static_cast<uint32_t>(M.memData()[Addr]) |
                      (static_cast<uint32_t>(M.memData()[Addr + 1]) << 8) |
                      (static_cast<uint32_t>(M.memData()[Addr + 2]) << 16) |
                      (static_cast<uint32_t>(M.memData()[Addr + 3]) << 24);
      if (Word != SP.Regions[R].BitOffset)
        return Status::error(StatusCode::CorruptOffsetTable,
                             "attach: offset table entry " +
                                 std::to_string(R) +
                                 " does not match the region metadata");
    }
    if (crc32(M.memData() + Base, L.StubAreaBase - Base) != L.ImageCrc32)
      return Status::error(StatusCode::MalformedImage,
                           "attach: image checksum mismatch");
    if (crc32(M.memData() + L.BlobBase, L.BlobBytes) != L.BlobCrc32)
      return Status::error(StatusCode::CorruptBlob,
                           "attach: blob checksum mismatch");
  }

  M.registerTrapRange(L.DecompBase, L.DecompEnd, this);
  return Status::success();
}

bool RuntimeSystem::handleTrap(Machine &M, uint32_t PC) {
  // Per-trap charged-cycle latency: no guest instruction retires while a
  // trap is being serviced, so the cycle delta across the dispatch is
  // exactly the work this trap charged. Recording is a bit-width plus an
  // array increment on a preallocated histogram — no allocation, no added
  // simulated cycles (DESIGN.md §13).
  const uint64_t Before = M.cycles();
  uint32_t Index = (PC - SP.Layout.DecompBase) / 4;
  bool Ok;
  if (Index < RuntimeLayout::NumDecompressEntries) {
    SpanScope Sp("trap.decompress", "runtime", Before);
    Ok = decompress(M, Index);
    Sp.setEndCycles(M.cycles());
    Sp.setArgs(CurrentRegion < 0 ? 0 : static_cast<uint64_t>(CurrentRegion),
               Ok);
  } else if (Index < RuntimeLayout::NumEntryPoints) {
    SpanScope Sp("trap.create_stub", "runtime", Before);
    Ok = createStub(M, Index - RuntimeLayout::NumDecompressEntries);
    Sp.setEndCycles(M.cycles());
  } else {
    M.fault("jump into the middle of the decompressor");
    return false;
  }
  if (Ok)
    St.TrapCycles.record(M.cycles() - Before);
  return Ok;
}

/// Computes a branch-format displacement from instruction address \p From
/// to \p Target.
static int32_t dispTo(uint32_t From, uint32_t Target) {
  return (static_cast<int32_t>(Target) - static_cast<int32_t>(From) - 4) / 4;
}

bool RuntimeSystem::evictSlot(Machine &M, uint32_t Slot) {
  CacheSlotState &CS = Cache[Slot];
  if (CS.Region < 0)
    return true;
  if (CS.StubsRewritten && !restoreEntryStubs(M, static_cast<uint32_t>(CS.Region)))
    return false;
  SlotOfRegion[CS.Region] = -1;
  ++St.Evictions;
  record(M, Event::Kind::Evict, static_cast<uint32_t>(CS.Region), Slot);
  if (!M.storeWord(SP.Layout.SlotMapBase + 4 * Slot,
                   RuntimeLayout::SlotMapEmpty))
    return false;
  CS = CacheSlotState{};
  return true;
}

bool RuntimeSystem::rewriteEntryStubs(Machine &M, uint32_t Region,
                                      uint32_t Slot) {
  if (Region >= SP.RegionEntryStubs.size())
    return true;
  const RuntimeLayout &L = SP.Layout;
  bool Any = false;
  for (const EntryStubSite &S : SP.RegionEntryStubs[Region]) {
    uint32_t Target = L.slotDataBase(Slot) + 4 * ((S.Tag & 0xFFFFu) - 1);
    int64_t D = (static_cast<int64_t>(Target) -
                 static_cast<int64_t>(S.Addr) - 4) /
                4;
    if (D < -(1 << 20) || D >= (1 << 20))
      continue; // Too far for a direct branch; this stub keeps trapping.
    if (!M.storeWord(S.Addr, encode(makeBranch(Opcode::Br, RegZero,
                                               static_cast<int32_t>(D)))))
      return false;
    M.icacheFlushRange(S.Addr, 4);
    ++St.DirectStubRewrites;
    Any = true;
  }
  Cache[Slot].StubsRewritten = Any;
  return true;
}

bool RuntimeSystem::restoreEntryStubs(Machine &M, uint32_t Region) {
  if (Region >= SP.RegionEntryStubs.size())
    return true;
  const RuntimeLayout &L = SP.Layout;
  for (const EntryStubSite &S : SP.RegionEntryStubs[Region]) {
    MInst Call = makeBranch(Opcode::Bsr, 25,
                            dispTo(S.Addr, L.decompressEntry(25)));
    if (!M.storeWord(S.Addr, encode(Call)))
      return false;
    M.icacheFlushRange(S.Addr, 4);
    ++St.DirectStubRestores;
  }
  return true;
}

RuntimeSystem::DecodeOutcome
RuntimeSystem::decodeRegionWords(uint32_t Region, const uint8_t *Mem,
                                 std::vector<uint32_t> &Words,
                                 uint64_t &Decoded,
                                 DecodeWork *WorkOut) const {
  const RuntimeLayout &L = SP.Layout;
  const RegionImageInfo &RI = SP.Regions[Region];
  Words.clear();
  Words.reserve(RI.ExpandedWords);
  Decoded = 0;
  bool Overrun = false;
  MInst I;
  auto Expand = [&](const MInst &Inst) {
    expandStoredInst(
        L, Inst, L.BufferBase + 4 + 4 * static_cast<uint32_t>(Words.size()),
        Words);
    if (Words.size() > RI.ExpandedWords)
      Overrun = true; // Longer than this region can be: corrupt stream.
  };
  bool DecOk;
  DecodeWork Work;
  const CodecKind Kind = SP.regionCodec(Region);
  if (Kind == CodecKind::Huffman && SP.Opts.FastDecode && Tables) {
    FastDecoder Dec(SP.Codecs, Tables, Mem + L.BlobBase, L.BlobBytes,
                    RI.BitOffset);
    // Chunked batch decode: the decoder's bit cursor stays in registers
    // across each run instead of round-tripping through members per
    // instruction.
    std::array<MInst, 64> Chunk;
    while (!Overrun) {
      const size_t Got = Dec.decodeRun(Chunk.data(), Chunk.size());
      if (!Got)
        break;
      for (size_t K = 0; K != Got && !Overrun; ++K) {
        ++Decoded;
        Expand(Chunk[K]);
      }
    }
    DecOk = Dec.ok();
    Work.Instructions = Decoded;
  } else {
    // The codec-dispatched slow path: the region's coder hands out a
    // cursor over the shared blob (Huffman regions land here too when
    // fast tables are off).
    std::unique_ptr<RegionCursor> Cur =
        SP.makeRegionCursor(Region, Mem + L.BlobBase, L.BlobBytes);
    while (!Overrun && Cur->next(I)) {
      ++Decoded;
      Expand(I);
    }
    DecOk = Cur->ok();
    Work = Cur->work();
  }
  if (WorkOut)
    *WorkOut = Work;
  if (!DecOk || Overrun || Words.size() != RI.ExpandedWords)
    return DecodeOutcome::BadStream;
  if (expandedWordsCrc(Words) != RI.Crc32)
    return DecodeOutcome::BadCrc;
  return DecodeOutcome::Ok;
}

bool RuntimeSystem::consumePrefetch(Machine &M, uint32_t Region,
                                    std::vector<uint32_t> &Words,
                                    uint64_t &Decoded) {
  if (PF.Region < 0)
    return false;
  SpanScope Sp("prefetch.consume", "prefetch", M.cycles());
  Sp.setFlow(PF.FlowId, 0);
  Sp.setArgs(static_cast<uint32_t>(PF.Region), 0);
  if (!PF.Ready.load(std::memory_order_acquire)) {
    // The predicted trap arrived before the worker finished. Join rather
    // than race ahead: the staged decode is consumed (or discarded) at the
    // next fill either way, so simulated behaviour stays deterministic and
    // only this host-timing counter varies run to run.
    ++St.PrefetchLate;
    PFPool->wait();
  }
  const uint32_t Staged = static_cast<uint32_t>(PF.Region);
  PF.Region = -1;
  PF.Ready.store(false, std::memory_order_relaxed);
  St.HostDecodeNanos += PF.Nanos;
  if (Staged != Region || !PF.Ok) {
    ++St.PrefetchWasted;
    record(M, Event::Kind::PrefetchDrop, Staged);
    return false;
  }
  if (ArmPrefetchCorrupt && --ArmPrefetchCorrupt == 0 && !PF.Words.empty())
    PF.Words[PF.Words.size() / 2] ^= 0x80u; // Armed fault injection.
  const RegionImageInfo &RI = SP.Regions[Region];
  if (PF.Words.size() != RI.ExpandedWords ||
      expandedWordsCrc(PF.Words) != RI.Crc32) {
    // The staging buffer no longer matches the region's CRC (host memory
    // corruption, or the armed fault above): discard and demand-decode, so
    // a bad prefetch can never reach guest memory.
    ++St.PrefetchCorruptDiscards;
    record(M, Event::Kind::PrefetchDrop, Staged);
    return false;
  }
  Words = std::move(PF.Words);
  Decoded = PF.Decoded;
  ++St.PrefetchHits;
  record(M, Event::Kind::PrefetchHit, Staged);
  Sp.setArgs(Staged, 1);
  return true;
}

void RuntimeSystem::launchPrefetch(Machine &M) {
  if (!SP.Opts.DecodeAhead || PF.Region >= 0)
    return;
  int32_t P = Predictor.predict();
  if (P < 0 || static_cast<size_t>(P) >= SP.Regions.size())
    return;
  if (cacheActive() && SlotOfRegion[P] >= 0)
    return; // Already resident: the fill would be a cache hit anyway.
  if (!PFPool)
    PFPool = std::make_unique<vea::ThreadPool>(1);
  PF.Region = P;
  PF.Ok = false;
  PF.Decoded = 0;
  PF.Nanos = 0;
  PF.FlowId = SpanTracer::enabled() ? SpanTracer::instance().nextId() : 0;
  PF.Ready.store(false, std::memory_order_relaxed);
  ++St.PrefetchLaunches;
  record(M, Event::Kind::PrefetchLaunch, static_cast<uint32_t>(P));
  {
    SpanScope Launch("prefetch.launch", "prefetch", M.cycles());
    Launch.setFlow(0, PF.FlowId);
    Launch.setArgs(static_cast<uint32_t>(P), 0);
  }
  // The worker reads only the compressed blob (guest code never writes
  // it), the immutable codec tables, and the PrefetchState fields it owns
  // until the release-store of Ready. It writes nothing to guest memory.
  const uint8_t *Mem = M.memData();
  const uint64_t Flow = PF.FlowId;
  PFPool->enqueue([this, Mem, P, Flow] {
    SpanScope Work("prefetch.decode", "prefetch");
    Work.setFlow(Flow, Flow);
    const auto T0 = std::chrono::steady_clock::now();
    PF.Ok = decodeRegionWords(static_cast<uint32_t>(P), Mem, PF.Words,
                              PF.Decoded) == DecodeOutcome::Ok;
    PF.Nanos = nanosSince(T0);
    Work.setArgs(static_cast<uint32_t>(P), PF.Decoded);
    PF.Ready.store(true, std::memory_order_release);
  });
}

bool RuntimeSystem::fillBuffer(Machine &M, uint32_t Region,
                               uint32_t &SlotOut) {
  const RuntimeLayout &L = SP.Layout;
  const RegionImageInfo &RI = SP.Regions[Region];
  const bool Active = cacheActive();

  // Resident? Re-validate and serve from the slot without re-decoding.
  int32_t Preferred = -1;
  if (Active && SlotOfRegion[Region] >= 0) {
    uint32_t Slot = static_cast<uint32_t>(SlotOfRegion[Region]);
    uint32_t MapWord;
    if (!M.loadWord(L.SlotMapBase + 4 * Slot, MapWord))
      return false;
    if (MapWord != Region) {
      // The guest slot map contradicts the host resident table: mask by
      // invalidating the slot and re-decoding into it.
      ++St.SlotMapRepairs;
      record(M, Event::Kind::SlotMapRepair, Region, Slot);
      Preferred = static_cast<int32_t>(Slot);
    } else if (crc32(M.memData() + L.slotDataBase(Slot),
                     4 * RI.ExpandedWords) == Cache[Slot].Crc) {
      SpanScope Hit("cache.hit", "runtime", M.cycles());
      Cache[Slot].LastUse = ++UseTick;
      ++St.BufferedHits;
      ++HitStreak;
      record(M, Event::Kind::BufferedHit, Region, Slot);
      M.addCycles(SP.Opts.Costs.DecompSetupCycles);
      St.TrapSetupCyclesTotal += SP.Opts.Costs.DecompSetupCycles;
      Hit.setEndCycles(M.cycles());
      Hit.setArgs(Region, Slot);
      CurrentRegion = static_cast<int32_t>(Region);
      SlotOut = Slot;
      return true;
    } else {
      // The slot's words were tampered with since the fill; re-decode in
      // place.
      ++St.ResidentCrcMismatches;
      Preferred = static_cast<int32_t>(Slot);
    }
  }

  // Pick the slot to fill: the region's own (revalidation failure), a free
  // one, or the least recently used.
  SpanScope Fill("region.fill", "runtime", M.cycles());
  uint32_t Slot = 0;
  if (Preferred >= 0) {
    Slot = static_cast<uint32_t>(Preferred);
  } else if (Active) {
    int32_t Free = -1;
    uint32_t Lru = 0;
    uint64_t Oldest = ~0ull;
    for (uint32_t I = 0; I != Cache.size(); ++I) {
      if (Cache[I].Region < 0) {
        Free = static_cast<int32_t>(I);
        break;
      }
      if (Cache[I].LastUse < Oldest) {
        Oldest = Cache[I].LastUse;
        Lru = I;
      }
    }
    if (Free >= 0) {
      Slot = static_cast<uint32_t>(Free);
    } else {
      if (!evictSlot(M, Lru))
        return false;
      Slot = Lru;
    }
  }

  // Fetch the region's bit offset through the in-memory function offset
  // table, as the native decompressor would.
  uint32_t BitOff;
  if (!M.loadWord(L.OffsetTableBase + 4 * Region, BitOff))
    return false;

  // Decode into a host-side staging vector so a corrupt stream never
  // leaves a partially-overwritten buffer; the guest sees either the full
  // region or (on recovery) the retained copy. A staged decode-ahead
  // result stands in for the demand decode only after the offset-table
  // word above and the expanded-words CRC both re-validate.
  std::string Corrupt;
  std::vector<uint32_t> Words;
  uint64_t Decoded = 0;
  bool Prefetched = false;
  bool Recovered = false;
  DecodeWork Work;
  if (BitOff != RI.BitOffset || BitOff >= 8ull * L.BlobBytes) {
    Corrupt = "corrupt function offset table entry";
  } else {
    Prefetched = consumePrefetch(M, Region, Words, Decoded);
    if (!Prefetched) {
      if (SP.Opts.DecodeAhead)
        ++St.PrefetchMisses;
      const auto T0 = std::chrono::steady_clock::now();
      DecodeOutcome O;
      {
        // The per-codec decode child span; its name is the codec's.
        SpanScope Dec(codecKindName(SP.regionCodec(Region)), "decode",
                      M.cycles());
        O = decodeRegionWords(Region, M.memData(), Words, Decoded, &Work);
        Dec.setArgs(Region, Decoded);
      }
      St.HostDecodeNanos += nanosSince(T0);
      if (O == DecodeOutcome::BadStream)
        Corrupt = "corrupt compressed region " + std::to_string(Region);
      else if (O == DecodeOutcome::BadCrc)
        Corrupt = "compressed region " + std::to_string(Region) +
                  " failed checksum";
    }
  }

  if (!Corrupt.empty()) {
    // Graceful degradation: refill from the retained uncompressed copy
    // when one exists; otherwise fault.
    if (Region < SP.RecoveryWords.size() &&
        SP.RecoveryWords[Region].size() == RI.ExpandedWords &&
        RI.ExpandedWords != 0) {
      Words = SP.RecoveryWords[Region];
      Decoded = RI.StoredInstructions;
      Recovered = true;
      ++St.CorruptRegionRecoveries;
      record(M, Event::Kind::RecoverFill, Region, Slot);
    } else {
      M.fault(Corrupt);
      return false;
    }
  }

  // Regions are lowered (and their CRCs computed) against slot 0's data
  // base; landing anywhere else slides the external branch displacements.
  if (Status RS = relocateRegionWords(Words, L.slotDataBase(0),
                                      L.slotDataBase(Slot));
      !RS.ok()) {
    M.fault(RS.message());
    return false;
  }

  uint32_t WriteAddr = L.slotDataBase(Slot);
  const uint32_t SlotEnd = L.slotBase(Slot) + 4 * L.SlotWords;
  for (uint32_t Word : Words) {
    if (WriteAddr + 4 > SlotEnd) {
      M.fault("runtime buffer overflow during decompression");
      return false;
    }
    if (!M.storeWord(WriteAddr, Word))
      return false;
    WriteAddr += 4;
  }
  // With a modelled I-cache the freshly written code must be invalidated;
  // the re-fetch misses then carry the flush cost the flat constant used
  // to approximate.
  M.icacheFlushRange(L.slotDataBase(Slot),
                     4 * static_cast<uint32_t>(Words.size()));

  // Host resident table + guest slot map.
  if (Cache[Slot].Region >= 0 &&
      Cache[Slot].Region != static_cast<int32_t>(Region))
    SlotOfRegion[Cache[Slot].Region] = -1; // Paper-mode overwrite.
  Cache[Slot].Region = static_cast<int32_t>(Region);
  Cache[Slot].LastUse = ++UseTick;
  Cache[Slot].Crc = expandedWordsCrc(Words);
  Cache[Slot].StubsRewritten = false;
  SlotOfRegion[Region] = static_cast<int32_t>(Slot);
  if (!M.storeWord(L.SlotMapBase + 4 * Slot, Region))
    return false;

  ++St.Decompressions;
  St.DecodedInstructions += Decoded;
  St.HitStreaks.record(HitStreak);
  HitStreak = 0;
  record(M, Event::Kind::Decompress, Region, Slot);
  const CostModel &C = SP.Opts.Costs;
  // A fill served from a staged decode skips the per-instruction decode
  // charge — the decode happened off the trap's critical path — but still
  // pays the setup and icache-flush charges: the words must be copied into
  // the slot and made fetchable either way. A recovery fill replays the
  // retained copy at the baseline per-instruction rate (the codec never
  // ran); a demand fill is charged by the region's codec from its measured
  // decode work.
  const CodecKind ChargeKind = SP.regionCodec(Region);
  const uint64_t DecodePart =
      Prefetched ? 0
      : Recovered
          ? C.CyclesPerDecodedInstr * Decoded
          : codecDecodeCycles(C, ChargeKind, Work);
  // regionFillCharge zeroes the flat flush charge when the machine models
  // the I-cache itself (the invalidation above makes the cost real as
  // fetch misses — charging the constant too would double-count).
  const FillCharge Charge =
      regionFillCharge(C, DecodePart, M.icacheEnabled());
  St.DecodeCycles.record(Charge.total());
  M.addCycles(Charge.total());
  // Ledger mirrors of this charge: setup + per-codec decode + flush sum
  // exactly to the charge (squash/Telemetry.h's conservation identity).
  St.TrapSetupCyclesTotal += Charge.Setup;
  St.DecodeOnlyCyclesByCodec[static_cast<unsigned>(ChargeKind)] +=
      Charge.Decode;
  St.IcacheFlushCyclesTotal += Charge.Flush;
  ++St.FillsByCodec[static_cast<unsigned>(ChargeKind)];
  St.DecodeCyclesByCodec[static_cast<unsigned>(ChargeKind)] +=
      Charge.total();
  CurrentRegion = static_cast<int32_t>(Region);
  Fill.setEndCycles(M.cycles());
  Fill.setArgs(Region, Slot);

  // A freshly resident region's entry stubs can branch straight to the
  // slot until it is evicted.
  if (Active && SP.Opts.DirectResidentStubs &&
      !rewriteEntryStubs(M, Region, Slot))
    return false;

  SlotOut = Slot;
  return true;
}

bool RuntimeSystem::decompress(Machine &M, unsigned Reg) {
  const RuntimeLayout &L = SP.Layout;
  uint32_t TagAddr = M.reg(Reg);
  uint32_t Tag;
  if (!M.loadWord(TagAddr, Tag))
    return false;
  uint32_t Region = Tag >> 16;
  uint32_t Offset = Tag & 0xFFFFu;
  if (Region >= SP.Regions.size() || Offset == 0 ||
      Offset >= L.SlotWords ||
      Offset > SP.Regions[Region].ExpandedWords) {
    M.fault("corrupt decompressor tag");
    return false;
  }

  // A return address inside the stub area means we were entered through a
  // restore stub: drop its reference.
  const uint32_t StubAreaEnd =
      L.StubAreaBase + 4 * RuntimeLayout::StubSlotWords * L.StubSlots;
  bool FromRestoreStub =
      TagAddr >= L.StubAreaBase && TagAddr < StubAreaEnd;
  uint32_t StubBase = 0;
  if (FromRestoreStub) {
    // The only legitimate return address inside the stub area is the word
    // after a slot's call instruction.
    if ((TagAddr - L.StubAreaBase) % (4 * RuntimeLayout::StubSlotWords) !=
        4) {
      M.fault("corrupt restore stub return address");
      return false;
    }
    StubBase = TagAddr - 4;
    uint32_t SlotIdx =
        (StubBase - L.StubAreaBase) / (4 * RuntimeLayout::StubSlotWords);
    StubSlot &Slot = Slots[SlotIdx];
    if (!Slot.Live || Slot.Count == 0) {
      M.fault("return through a dead restore stub");
      return false;
    }
    if (Tag != Slot.Tag) {
      M.fault("corrupt restore stub tag");
      return false;
    }
    ++St.RestoreStubCalls;
    record(M, Event::Kind::EnterViaRestore, Region, TagAddr);
    --Slot.Count;
    if (!M.storeWord(StubBase + 8, Slot.Count))
      return false;
    if (Slot.Count == 0) {
      Slot.Live = false;
      --St.LiveStubs;
      record(M, Event::Kind::StubRelease, Region, StubBase, 0);
    }
  } else {
    // Entered through an entry stub: the tag must be one the rewriter
    // emitted, otherwise the stub (or the register) was corrupted.
    if (!SP.ValidEntryTags.count(Tag)) {
      M.fault("corrupt decompressor tag");
      return false;
    }
    ++St.EntryStubCalls;
    record(M, Event::Kind::EnterViaStub, Region, TagAddr);
  }

  // Make the region resident (cache hit or decode), learn its slot.
  uint32_t CacheSlotIdx = 0;
  const uint64_t FillsBefore = St.Decompressions;
  const uint64_t CyclesBefore = M.cycles();
  if (!fillBuffer(M, Region, CacheSlotIdx))
    return false;
  if (Observer)
    Observer->onRegionEntry(Region, St.Decompressions != FillsBefore,
                            FromRestoreStub, M.cycles() - CyclesBefore);

  // The slot's jump word transfers to the tag's offset within the slot.
  MInst Jump = makeBranch(Opcode::Br, RegZero,
                          static_cast<int32_t>(Offset) - 1);
  if (!M.storeWord(L.slotBase(CacheSlotIdx), encode(Jump)))
    return false;
  M.icacheFlushRange(L.slotBase(CacheSlotIdx), 4);

  // The paper's decompressor sets the return register to the restore
  // stub's address before entering the buffer (Section 2.3).
  if (FromRestoreStub)
    M.setReg(Reg, StubBase);

  M.setPC(L.slotBase(CacheSlotIdx));

  // Feed the predictor and, when decode-ahead is on, stage the predicted
  // next region on the worker before its trap arrives.
  Predictor.observe(Region);
  launchPrefetch(M);
  return true;
}

bool RuntimeSystem::createStub(Machine &M, unsigned Reg) {
  const RuntimeLayout &L = SP.Layout;
  uint32_t BrAddr = M.reg(Reg); // Address of the expansion's BR word.
  if (BrAddr < L.BufferBase + 4 ||
      BrAddr >= L.BufferBase + 4 * L.BufferWords) {
    M.fault("CreateStub called from outside the runtime buffer");
    return false;
  }
  // Keys and tags are slot-relative so a restore stub stays valid no
  // matter which cache slot its region is refilled into later.
  uint32_t CacheSlotIdx = (BrAddr - L.BufferBase) / (4 * L.SlotWords);
  uint32_t CallWordOffset = (BrAddr - L.slotBase(CacheSlotIdx)) / 4;
  if (CallWordOffset == 0) {
    M.fault("CreateStub called from outside the runtime buffer");
    return false;
  }
  int32_t CallerRegion = Cache[CacheSlotIdx].Region;
  if (CallerRegion < 0) {
    M.fault("CreateStub with no region in the buffer");
    return false;
  }
  Cache[CacheSlotIdx].LastUse = ++UseTick; // The slot is executing.

  uint32_t ReturnOffset = CallWordOffset + 1;
  uint32_t Key =
      (static_cast<uint32_t>(CallerRegion) << 16) | CallWordOffset;

  // One restore stub per call site: reuse if it already exists.
  int32_t Found = -1, Free = -1;
  for (size_t I = 0; I != Slots.size(); ++I) {
    if (Slots[I].Live && Slots[I].Key == Key) {
      Found = static_cast<int32_t>(I);
      break;
    }
    if (!Slots[I].Live && Free < 0)
      Free = static_cast<int32_t>(I);
  }

  uint32_t StubAddr;
  if (Found >= 0) {
    ++St.StubReuses;
    StubSlot &Slot = Slots[Found];
    ++Slot.Count;
    StubAddr = L.StubAreaBase +
               4 * RuntimeLayout::StubSlotWords * static_cast<uint32_t>(Found);
    record(M, Event::Kind::StubReuse, static_cast<uint32_t>(CallerRegion),
           StubAddr, Slot.Count);
    if (!M.storeWord(StubAddr + 8, Slot.Count))
      return false;
  } else {
    if (Free < 0) {
      M.fault("restore stub area exhausted");
      return false;
    }
    ++St.StubCreates;
    StubSlot &Slot = Slots[Free];
    Slot.Live = true;
    Slot.Key = Key;
    Slot.Count = 1;
    ++St.LiveStubs;
    St.MaxLiveStubs = std::max(St.MaxLiveStubs, St.LiveStubs);
    StubAddr = L.StubAreaBase +
               4 * RuntimeLayout::StubSlotWords * static_cast<uint32_t>(Free);
    record(M, Event::Kind::StubCreate, static_cast<uint32_t>(CallerRegion),
           StubAddr, 1);
    uint32_t Tag =
        (static_cast<uint32_t>(CallerRegion) << 16) | ReturnOffset;
    Slot.Tag = Tag;
    MInst Call = makeBranch(Opcode::Bsr, Reg,
                            dispTo(StubAddr, L.decompressEntry(Reg)));
    if (!M.storeWord(StubAddr, encode(Call)) ||
        !M.storeWord(StubAddr + 4, Tag) ||
        !M.storeWord(StubAddr + 8, Slot.Count) ||
        !M.storeWord(StubAddr + 12, Key))
      return false;
    M.icacheFlushRange(StubAddr, 4 * RuntimeLayout::StubSlotWords);
  }

  M.setReg(Reg, StubAddr);
  M.addCycles(SP.Opts.Costs.CreateStubCycles);
  St.CreateStubCyclesTotal += SP.Opts.Costs.CreateStubCycles;
  M.setPC(BrAddr);
  return true;
}
