//===- squash/Runtime.cpp - Decompressor runtime service ------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Runtime.h"

#include "support/Error.h"

#include <algorithm>

using namespace squash;
using namespace vea;

RuntimeSystem::RuntimeSystem(const SquashedProgram &SP) : SP(SP) {
  Slots.resize(SP.Layout.StubSlots);
}

void RuntimeSystem::attach(Machine &M) {
  if (SP.Layout.DecompEnd > SP.Layout.DecompBase)
    M.registerTrapRange(SP.Layout.DecompBase, SP.Layout.DecompEnd, this);
}

bool RuntimeSystem::handleTrap(Machine &M, uint32_t PC) {
  uint32_t Index = (PC - SP.Layout.DecompBase) / 4;
  if (Index < 32)
    return decompress(M, Index);
  if (Index < 64)
    return createStub(M, Index - 32);
  M.fault("jump into the middle of the decompressor");
  return false;
}

/// Computes a branch-format displacement from instruction address \p From
/// to \p Target.
static int32_t dispTo(uint32_t From, uint32_t Target) {
  return (static_cast<int32_t>(Target) - static_cast<int32_t>(From) - 4) / 4;
}

bool RuntimeSystem::fillBuffer(Machine &M, uint32_t Region) {
  const RuntimeLayout &L = SP.Layout;

  // Fetch the region's bit offset through the in-memory function offset
  // table, as the native decompressor would.
  uint32_t BitOff;
  if (!M.loadWord(L.OffsetTableBase + 4 * Region, BitOff))
    return false;
  if (BitOff > 8ull * L.BlobBytes) {
    M.fault("corrupt function offset table entry");
    return false;
  }

  BitReader Reader(M.memData() + L.BlobBase, L.BlobBytes);
  Reader.seekBit(BitOff);
  StreamCodecs::RegionDecoder Dec(SP.Codecs, Reader);

  uint32_t WriteAddr = L.BufferBase + 4;
  const uint32_t BufferEnd = L.BufferBase + 4 * L.BufferWords;
  uint64_t Decoded = 0;
  MInst I;
  while (Dec.next(I)) {
    ++Decoded;
    if (I.Op == Opcode::Bsrx) {
      // Expand to: bsr ra, CreateStub(ra) ; br r31, <stored disp>.
      if (WriteAddr + 8 > BufferEnd) {
        M.fault("runtime buffer overflow during decompression");
        return false;
      }
      unsigned Ra = I.ra();
      MInst Call = makeBranch(Opcode::Bsr, Ra,
                              dispTo(WriteAddr, L.createStubEntry(Ra)));
      MInst Jump = makeBranch(Opcode::Br, RegZero, I.disp21());
      if (!M.storeWord(WriteAddr, encode(Call)) ||
          !M.storeWord(WriteAddr + 4, encode(Jump)))
        return false;
      WriteAddr += 8;
      continue;
    }
    if (WriteAddr + 4 > BufferEnd) {
      M.fault("runtime buffer overflow during decompression");
      return false;
    }
    if (!M.storeWord(WriteAddr, encode(I)))
      return false;
    WriteAddr += 4;
  }
  if (!Dec.ok()) {
    M.fault("corrupt compressed region " + std::to_string(Region));
    return false;
  }

  ++St.Decompressions;
  St.DecodedInstructions += Decoded;
  record(Event::Kind::Decompress, Region);
  const CostModel &C = SP.Opts.Costs;
  M.addCycles(C.DecompSetupCycles + C.CyclesPerDecodedInstr * Decoded +
              C.IcacheFlushCycles);
  CurrentRegion = static_cast<int32_t>(Region);
  return true;
}

bool RuntimeSystem::decompress(Machine &M, unsigned Reg) {
  const RuntimeLayout &L = SP.Layout;
  uint32_t TagAddr = M.reg(Reg);
  uint32_t Tag;
  if (!M.loadWord(TagAddr, Tag))
    return false;
  uint32_t Region = Tag >> 16;
  uint32_t Offset = Tag & 0xFFFFu;
  if (Region >= SP.Regions.size() || Offset == 0 ||
      Offset >= L.BufferWords) {
    M.fault("corrupt decompressor tag");
    return false;
  }

  // A return address inside the stub area means we were entered through a
  // restore stub: drop its reference.
  const uint32_t StubAreaEnd = L.StubAreaBase + 16 * L.StubSlots;
  bool FromRestoreStub =
      TagAddr >= L.StubAreaBase && TagAddr < StubAreaEnd;
  uint32_t StubBase = 0;
  if (FromRestoreStub) {
    ++St.RestoreStubCalls;
    record(Event::Kind::EnterViaRestore, Region, TagAddr);
    StubBase = TagAddr - 4;
    uint32_t SlotIdx = (StubBase - L.StubAreaBase) / 16;
    StubSlot &Slot = Slots[SlotIdx];
    if (!Slot.Live || Slot.Count == 0) {
      M.fault("return through a dead restore stub");
      return false;
    }
    --Slot.Count;
    if (!M.storeWord(StubBase + 8, Slot.Count))
      return false;
    if (Slot.Count == 0) {
      Slot.Live = false;
      --St.LiveStubs;
      record(Event::Kind::StubRelease, Region, StubBase, 0);
    }
  } else {
    ++St.EntryStubCalls;
    record(Event::Kind::EnterViaStub, Region, TagAddr);
  }

  if (SP.Opts.ReuseBufferedRegion &&
      CurrentRegion == static_cast<int32_t>(Region)) {
    ++St.BufferedHits;
    record(Event::Kind::BufferedHit, Region);
    M.addCycles(SP.Opts.Costs.DecompSetupCycles);
  } else if (!fillBuffer(M, Region)) {
    return false;
  }

  // Jump slot at the start of the buffer transfers to the tag's offset.
  MInst Slot = makeBranch(Opcode::Br, RegZero,
                          static_cast<int32_t>(Offset) - 1);
  if (!M.storeWord(L.BufferBase, encode(Slot)))
    return false;

  // The paper's decompressor sets the return register to the restore
  // stub's address before entering the buffer (Section 2.3).
  if (FromRestoreStub)
    M.setReg(Reg, StubBase);

  M.setPC(L.BufferBase);
  return true;
}

bool RuntimeSystem::createStub(Machine &M, unsigned Reg) {
  const RuntimeLayout &L = SP.Layout;
  uint32_t BrAddr = M.reg(Reg); // Address of the expansion's BR word.
  if (BrAddr < L.BufferBase + 4 ||
      BrAddr >= L.BufferBase + 4 * L.BufferWords) {
    M.fault("CreateStub called from outside the runtime buffer");
    return false;
  }
  if (CurrentRegion < 0) {
    M.fault("CreateStub with no region in the buffer");
    return false;
  }

  uint32_t CallWordOffset = (BrAddr - L.BufferBase) / 4;
  uint32_t ReturnOffset = CallWordOffset + 1;
  uint32_t Key =
      (static_cast<uint32_t>(CurrentRegion) << 16) | CallWordOffset;

  // One restore stub per call site: reuse if it already exists.
  int32_t Found = -1, Free = -1;
  for (size_t I = 0; I != Slots.size(); ++I) {
    if (Slots[I].Live && Slots[I].Key == Key) {
      Found = static_cast<int32_t>(I);
      break;
    }
    if (!Slots[I].Live && Free < 0)
      Free = static_cast<int32_t>(I);
  }

  uint32_t StubAddr;
  if (Found >= 0) {
    ++St.StubReuses;
    StubSlot &Slot = Slots[Found];
    ++Slot.Count;
    StubAddr = L.StubAreaBase + 16 * static_cast<uint32_t>(Found);
    record(Event::Kind::StubReuse, static_cast<uint32_t>(CurrentRegion),
           StubAddr, Slot.Count);
    if (!M.storeWord(StubAddr + 8, Slot.Count))
      return false;
  } else {
    if (Free < 0) {
      M.fault("restore stub area exhausted");
      return false;
    }
    ++St.StubCreates;
    StubSlot &Slot = Slots[Free];
    Slot.Live = true;
    Slot.Key = Key;
    Slot.Count = 1;
    ++St.LiveStubs;
    St.MaxLiveStubs = std::max(St.MaxLiveStubs, St.LiveStubs);
    StubAddr = L.StubAreaBase + 16 * static_cast<uint32_t>(Free);
    record(Event::Kind::StubCreate, static_cast<uint32_t>(CurrentRegion),
           StubAddr, 1);
    uint32_t Tag =
        (static_cast<uint32_t>(CurrentRegion) << 16) | ReturnOffset;
    MInst Call = makeBranch(Opcode::Bsr, Reg,
                            dispTo(StubAddr, L.decompressEntry(Reg)));
    if (!M.storeWord(StubAddr, encode(Call)) ||
        !M.storeWord(StubAddr + 4, Tag) ||
        !M.storeWord(StubAddr + 8, Slot.Count) ||
        !M.storeWord(StubAddr + 12, Key))
      return false;
  }

  M.setReg(Reg, StubAddr);
  M.addCycles(SP.Opts.Costs.CreateStubCycles);
  M.setPC(BrAddr);
  return true;
}
