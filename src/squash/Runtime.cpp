//===- squash/Runtime.cpp - Decompressor runtime service ------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Runtime.h"

#include "support/Checksum.h"

#include <algorithm>

using namespace squash;
using namespace vea;

RuntimeSystem::RuntimeSystem(const SquashedProgram &SP) : SP(SP) {
  Slots.resize(SP.Layout.StubSlots);
}

Status RuntimeSystem::attach(Machine &M) {
  const RuntimeLayout &L = SP.Layout;

  // Identity images carry no runtime machinery: nothing to validate or
  // register.
  if (L.DecompEnd == L.DecompBase)
    return Status::success();

  // A machine that failed to load the image reports its own fault when
  // run; attaching is a no-op rather than a second error.
  if (M.faulted())
    return Status::success();

  auto Bad = [](const std::string &What) {
    return Status::error(StatusCode::MalformedImage, "attach: " + What);
  };

  // Segment ordering and bounds. These checks are cheap and always on.
  const uint32_t Base = SP.Img.Base;
  const uint64_t Limit = SP.Img.limit();
  const uint64_t OffsetTableEnd =
      static_cast<uint64_t>(L.OffsetTableBase) + 4ull * SP.Regions.size();
  const uint64_t StubAreaEnd =
      static_cast<uint64_t>(L.StubAreaBase) +
      4ull * RuntimeLayout::StubSlotWords * L.StubSlots;
  const uint64_t BufferEnd =
      static_cast<uint64_t>(L.BufferBase) + 4ull * L.BufferWords;
  if (L.DecompBase < Base || L.DecompBase % 4 != 0)
    return Bad("decompressor region outside the image");
  if (L.DecompEnd - L.DecompBase < 4 * RuntimeLayout::NumEntryPoints)
    return Bad("decompressor region smaller than its entry points");
  if (L.OffsetTableBase < L.DecompEnd)
    return Bad("offset table overlaps the decompressor");
  if (OffsetTableEnd > L.StubAreaBase)
    return Bad("offset table shorter than the region count");
  if (StubAreaEnd > L.BufferBase)
    return Bad("restore-stub area overlaps the runtime buffer");
  if (L.BufferWords == 0)
    return Bad("runtime buffer has no jump slot");
  if (BufferEnd > L.DataBase)
    return Bad("runtime buffer overlaps the data segment");
  if (L.DataBase > L.BlobBase)
    return Bad("data segment overlaps the compressed blob");
  if (static_cast<uint64_t>(L.BlobBase) + L.BlobBytes > Limit)
    return Bad("compressed blob extends past the image");
  if (Limit > M.memBytes())
    return Bad("image extends past simulated memory");

  // Per-region host-side metadata. Cheap and always on.
  uint32_t PrevOffset = 0;
  for (size_t R = 0; R != SP.Regions.size(); ++R) {
    const RegionImageInfo &RI = SP.Regions[R];
    if (RI.ExpandedWords + 1 > L.BufferWords)
      return Bad("runtime buffer too small for region " + std::to_string(R));
    if (RI.BitOffset >= 8ull * L.BlobBytes)
      return Bad("region " + std::to_string(R) +
                 " starts past the end of the blob");
    if (R != 0 && RI.BitOffset <= PrevOffset)
      return Bad("region bit offsets are not strictly increasing");
    PrevOffset = RI.BitOffset;
  }

  // Full-content scans of guest memory (optional; the offset table and
  // each region are re-checked lazily on every fill regardless).
  if (SP.Opts.ChecksumAtAttach) {
    for (size_t R = 0; R != SP.Regions.size(); ++R) {
      uint32_t Addr = L.OffsetTableBase + 4 * static_cast<uint32_t>(R);
      uint32_t Word = static_cast<uint32_t>(M.memData()[Addr]) |
                      (static_cast<uint32_t>(M.memData()[Addr + 1]) << 8) |
                      (static_cast<uint32_t>(M.memData()[Addr + 2]) << 16) |
                      (static_cast<uint32_t>(M.memData()[Addr + 3]) << 24);
      if (Word != SP.Regions[R].BitOffset)
        return Status::error(StatusCode::CorruptOffsetTable,
                             "attach: offset table entry " +
                                 std::to_string(R) +
                                 " does not match the region metadata");
    }
    if (crc32(M.memData() + Base, L.StubAreaBase - Base) != L.ImageCrc32)
      return Status::error(StatusCode::MalformedImage,
                           "attach: image checksum mismatch");
    if (crc32(M.memData() + L.BlobBase, L.BlobBytes) != L.BlobCrc32)
      return Status::error(StatusCode::CorruptBlob,
                           "attach: blob checksum mismatch");
  }

  M.registerTrapRange(L.DecompBase, L.DecompEnd, this);
  return Status::success();
}

bool RuntimeSystem::handleTrap(Machine &M, uint32_t PC) {
  uint32_t Index = (PC - SP.Layout.DecompBase) / 4;
  if (Index < RuntimeLayout::NumDecompressEntries)
    return decompress(M, Index);
  if (Index < RuntimeLayout::NumEntryPoints)
    return createStub(M, Index - RuntimeLayout::NumDecompressEntries);
  M.fault("jump into the middle of the decompressor");
  return false;
}

/// Computes a branch-format displacement from instruction address \p From
/// to \p Target.
static int32_t dispTo(uint32_t From, uint32_t Target) {
  return (static_cast<int32_t>(Target) - static_cast<int32_t>(From) - 4) / 4;
}

bool RuntimeSystem::fillBuffer(Machine &M, uint32_t Region) {
  const RuntimeLayout &L = SP.Layout;
  const RegionImageInfo &RI = SP.Regions[Region];

  // Fetch the region's bit offset through the in-memory function offset
  // table, as the native decompressor would.
  uint32_t BitOff;
  if (!M.loadWord(L.OffsetTableBase + 4 * Region, BitOff))
    return false;

  // Decode into a host-side staging vector so a corrupt stream never
  // leaves a partially-overwritten buffer; the guest sees either the full
  // region or (on recovery) the retained copy.
  std::string Corrupt;
  std::vector<uint32_t> Words;
  uint64_t Decoded = 0;
  if (BitOff != RI.BitOffset || BitOff >= 8ull * L.BlobBytes) {
    Corrupt = "corrupt function offset table entry";
  } else {
    BitReader Reader(M.memData() + L.BlobBase, L.BlobBytes);
    Reader.seekBit(BitOff);
    StreamCodecs::RegionDecoder Dec(SP.Codecs, Reader);
    Words.reserve(RI.ExpandedWords);
    MInst I;
    bool Overrun = false;
    while (Dec.next(I)) {
      ++Decoded;
      expandStoredInst(
          L, I,
          L.BufferBase + 4 + 4 * static_cast<uint32_t>(Words.size()), Words);
      if (Words.size() > RI.ExpandedWords) {
        Overrun = true; // Longer than this region can be: corrupt stream.
        break;
      }
    }
    if (!Dec.ok() || Overrun || Words.size() != RI.ExpandedWords)
      Corrupt = "corrupt compressed region " + std::to_string(Region);
    else if (expandedWordsCrc(Words) != RI.Crc32)
      Corrupt =
          "compressed region " + std::to_string(Region) + " failed checksum";
  }

  if (!Corrupt.empty()) {
    // Graceful degradation: refill from the retained uncompressed copy
    // when one exists; otherwise fault.
    if (Region < SP.RecoveryWords.size() &&
        SP.RecoveryWords[Region].size() == RI.ExpandedWords &&
        RI.ExpandedWords != 0) {
      Words = SP.RecoveryWords[Region];
      Decoded = RI.StoredInstructions;
      ++St.CorruptRegionRecoveries;
      record(Event::Kind::RecoverFill, Region);
    } else {
      M.fault(Corrupt);
      return false;
    }
  }

  uint32_t WriteAddr = L.BufferBase + 4;
  const uint32_t BufferEnd = L.BufferBase + 4 * L.BufferWords;
  for (uint32_t Word : Words) {
    if (WriteAddr + 4 > BufferEnd) {
      M.fault("runtime buffer overflow during decompression");
      return false;
    }
    if (!M.storeWord(WriteAddr, Word))
      return false;
    WriteAddr += 4;
  }

  ++St.Decompressions;
  St.DecodedInstructions += Decoded;
  record(Event::Kind::Decompress, Region);
  const CostModel &C = SP.Opts.Costs;
  M.addCycles(C.DecompSetupCycles + C.CyclesPerDecodedInstr * Decoded +
              C.IcacheFlushCycles);
  CurrentRegion = static_cast<int32_t>(Region);
  return true;
}

bool RuntimeSystem::decompress(Machine &M, unsigned Reg) {
  const RuntimeLayout &L = SP.Layout;
  uint32_t TagAddr = M.reg(Reg);
  uint32_t Tag;
  if (!M.loadWord(TagAddr, Tag))
    return false;
  uint32_t Region = Tag >> 16;
  uint32_t Offset = Tag & 0xFFFFu;
  if (Region >= SP.Regions.size() || Offset == 0 ||
      Offset >= L.BufferWords ||
      Offset > SP.Regions[Region].ExpandedWords) {
    M.fault("corrupt decompressor tag");
    return false;
  }

  // A return address inside the stub area means we were entered through a
  // restore stub: drop its reference.
  const uint32_t StubAreaEnd =
      L.StubAreaBase + 4 * RuntimeLayout::StubSlotWords * L.StubSlots;
  bool FromRestoreStub =
      TagAddr >= L.StubAreaBase && TagAddr < StubAreaEnd;
  uint32_t StubBase = 0;
  if (FromRestoreStub) {
    // The only legitimate return address inside the stub area is the word
    // after a slot's call instruction.
    if ((TagAddr - L.StubAreaBase) % (4 * RuntimeLayout::StubSlotWords) !=
        4) {
      M.fault("corrupt restore stub return address");
      return false;
    }
    StubBase = TagAddr - 4;
    uint32_t SlotIdx =
        (StubBase - L.StubAreaBase) / (4 * RuntimeLayout::StubSlotWords);
    StubSlot &Slot = Slots[SlotIdx];
    if (!Slot.Live || Slot.Count == 0) {
      M.fault("return through a dead restore stub");
      return false;
    }
    if (Tag != Slot.Tag) {
      M.fault("corrupt restore stub tag");
      return false;
    }
    ++St.RestoreStubCalls;
    record(Event::Kind::EnterViaRestore, Region, TagAddr);
    --Slot.Count;
    if (!M.storeWord(StubBase + 8, Slot.Count))
      return false;
    if (Slot.Count == 0) {
      Slot.Live = false;
      --St.LiveStubs;
      record(Event::Kind::StubRelease, Region, StubBase, 0);
    }
  } else {
    // Entered through an entry stub: the tag must be one the rewriter
    // emitted, otherwise the stub (or the register) was corrupted.
    if (!SP.ValidEntryTags.count(Tag)) {
      M.fault("corrupt decompressor tag");
      return false;
    }
    ++St.EntryStubCalls;
    record(Event::Kind::EnterViaStub, Region, TagAddr);
  }

  if (SP.Opts.ReuseBufferedRegion &&
      CurrentRegion == static_cast<int32_t>(Region)) {
    ++St.BufferedHits;
    record(Event::Kind::BufferedHit, Region);
    M.addCycles(SP.Opts.Costs.DecompSetupCycles);
  } else if (!fillBuffer(M, Region)) {
    return false;
  }

  // Jump slot at the start of the buffer transfers to the tag's offset.
  MInst Slot = makeBranch(Opcode::Br, RegZero,
                          static_cast<int32_t>(Offset) - 1);
  if (!M.storeWord(L.BufferBase, encode(Slot)))
    return false;

  // The paper's decompressor sets the return register to the restore
  // stub's address before entering the buffer (Section 2.3).
  if (FromRestoreStub)
    M.setReg(Reg, StubBase);

  M.setPC(L.BufferBase);
  return true;
}

bool RuntimeSystem::createStub(Machine &M, unsigned Reg) {
  const RuntimeLayout &L = SP.Layout;
  uint32_t BrAddr = M.reg(Reg); // Address of the expansion's BR word.
  if (BrAddr < L.BufferBase + 4 ||
      BrAddr >= L.BufferBase + 4 * L.BufferWords) {
    M.fault("CreateStub called from outside the runtime buffer");
    return false;
  }
  if (CurrentRegion < 0) {
    M.fault("CreateStub with no region in the buffer");
    return false;
  }

  uint32_t CallWordOffset = (BrAddr - L.BufferBase) / 4;
  uint32_t ReturnOffset = CallWordOffset + 1;
  uint32_t Key =
      (static_cast<uint32_t>(CurrentRegion) << 16) | CallWordOffset;

  // One restore stub per call site: reuse if it already exists.
  int32_t Found = -1, Free = -1;
  for (size_t I = 0; I != Slots.size(); ++I) {
    if (Slots[I].Live && Slots[I].Key == Key) {
      Found = static_cast<int32_t>(I);
      break;
    }
    if (!Slots[I].Live && Free < 0)
      Free = static_cast<int32_t>(I);
  }

  uint32_t StubAddr;
  if (Found >= 0) {
    ++St.StubReuses;
    StubSlot &Slot = Slots[Found];
    ++Slot.Count;
    StubAddr = L.StubAreaBase +
               4 * RuntimeLayout::StubSlotWords * static_cast<uint32_t>(Found);
    record(Event::Kind::StubReuse, static_cast<uint32_t>(CurrentRegion),
           StubAddr, Slot.Count);
    if (!M.storeWord(StubAddr + 8, Slot.Count))
      return false;
  } else {
    if (Free < 0) {
      M.fault("restore stub area exhausted");
      return false;
    }
    ++St.StubCreates;
    StubSlot &Slot = Slots[Free];
    Slot.Live = true;
    Slot.Key = Key;
    Slot.Count = 1;
    ++St.LiveStubs;
    St.MaxLiveStubs = std::max(St.MaxLiveStubs, St.LiveStubs);
    StubAddr = L.StubAreaBase +
               4 * RuntimeLayout::StubSlotWords * static_cast<uint32_t>(Free);
    record(Event::Kind::StubCreate, static_cast<uint32_t>(CurrentRegion),
           StubAddr, 1);
    uint32_t Tag =
        (static_cast<uint32_t>(CurrentRegion) << 16) | ReturnOffset;
    Slot.Tag = Tag;
    MInst Call = makeBranch(Opcode::Bsr, Reg,
                            dispTo(StubAddr, L.decompressEntry(Reg)));
    if (!M.storeWord(StubAddr, encode(Call)) ||
        !M.storeWord(StubAddr + 4, Tag) ||
        !M.storeWord(StubAddr + 8, Slot.Count) ||
        !M.storeWord(StubAddr + 12, Key))
      return false;
  }

  M.setReg(Reg, StubAddr);
  M.addCycles(SP.Opts.Costs.CreateStubCycles);
  M.setPC(BrAddr);
  return true;
}
