//===- squash/BufferSafe.h - Buffer-safety analysis ------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.1: a callee is buffer-safe if neither it nor anything it can
/// call will invoke the decompressor. Calls from compressed code to
/// buffer-safe functions need no restore stub and no caller
/// re-decompression. The analysis seeds non-safety at functions containing
/// compressed blocks or indirect calls (whose targets may be unsafe) and
/// propagates backwards over the call graph to a fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_BUFFERSAFE_H
#define SQUASH_SQUASH_BUFFERSAFE_H

#include "ir/IR.h"
#include "squash/Regions.h"

#include <vector>

namespace squash {

struct BufferSafeStats {
  unsigned Functions = 0;
  unsigned SafeFunctions = 0;
  unsigned CallSitesFromRegions = 0;     ///< Static calls in compressed code.
  unsigned SafeCallSitesFromRegions = 0; ///< ... whose callee is buffer-safe.

  /// Registers every field as a counter under \p Prefix (DESIGN.md §12).
  void exportMetrics(vea::MetricsRegistry &R,
                     const std::string &Prefix = "squash.buffersafe.") const;
};

/// Returns one flag per function (Cfg function index): 1 = buffer-safe.
std::vector<uint8_t> analyzeBufferSafe(const vea::Cfg &G,
                                       const Partition &Part,
                                       BufferSafeStats *Stats = nullptr);

} // namespace squash

#endif // SQUASH_SQUASH_BUFFERSAFE_H
