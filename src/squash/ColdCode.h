//===- squash/ColdCode.h - Profile-based cold code identification -*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5 of the paper: given a threshold θ, find the largest execution
/// frequency N such that the total weight (size × frequency) of all blocks
/// with frequency ≤ N stays within θ of the total dynamic instruction
/// count; every block with frequency ≤ N is cold.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_COLDCODE_H
#define SQUASH_SQUASH_COLDCODE_H

#include "ir/IR.h"
#include "sim/Machine.h"
#include "support/Status.h"

#include <cstdint>
#include <vector>

namespace squash {

struct ColdCodeResult {
  std::vector<uint8_t> IsCold; ///< Indexed by Cfg block id.
  uint64_t FrequencyCutoff = 0; ///< The paper's N.
  uint64_t ColdInstructions = 0;  ///< Static instructions in cold blocks.
  uint64_t TotalInstructions = 0; ///< Static instructions in the program.

  double coldFraction() const {
    return TotalInstructions
               ? static_cast<double>(ColdInstructions) / TotalInstructions
               : 0.0;
  }
};

/// Identifies cold blocks per Section 5. \p Theta in [0, 1]. \p CutoffCap
/// bounds the frequency cutoff N from above regardless of remaining θ
/// budget — profile-feedback re-squashes use it to keep the original
/// hot/cold boundary when merged-in live heat empties the low frequency
/// classes (which would otherwise let the scan run further and reclassify
/// previously-hot blocks as cold). Fails with InvalidArgument if the
/// profile's block count does not match the program.
vea::Expected<ColdCodeResult>
identifyColdCode(const vea::Cfg &G, const vea::Profile &Prof, double Theta,
                 uint64_t CutoffCap = UINT64_MAX);

} // namespace squash

#endif // SQUASH_SQUASH_COLDCODE_H
