//===- squash/Unswitch.h - Jump-table unswitching --------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.2: indirect jumps through jump tables inside code considered
/// for compression must be handled so that control transfers from the
/// runtime buffer are correct. Like the paper's implementation, squash
/// "unswitches" the table jump into a chain of conditional branches, after
/// which the jump-table data can be reclaimed. If the extent of a table is
/// unknown (SwitchInfo::SizeKnown == false), the block and the possible
/// targets of the jump are excluded from compression instead.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_UNSWITCH_H
#define SQUASH_SQUASH_UNSWITCH_H

#include "ir/IR.h"
#include "support/Metrics.h"
#include "support/Status.h"

#include <vector>

namespace squash {

struct UnswitchStats {
  unsigned Unswitched = 0;       ///< Switch blocks converted to chains.
  unsigned TablesReclaimed = 0;  ///< Jump-table data objects removed.
  unsigned TableBytesReclaimed = 0;
  unsigned BlocksExcluded = 0;   ///< Candidacy removed (unknown extent or
                                 ///< chain too long).

  /// Registers every field as a counter under \p Prefix (DESIGN.md §12).
  void exportMetrics(vea::MetricsRegistry &R,
                     const std::string &Prefix = "squash.unswitch.") const;
};

/// Transforms \p Prog in place. \p Candidate flags (by Cfg block id of the
/// *pre-pass* program; block ids are stable because the pass neither adds
/// nor removes blocks) say which blocks are being considered for
/// compression; only those switches are touched. Candidacy is cleared for
/// blocks that could not be unswitched (and for the jump's targets).
/// If \p EnableUnswitch is false, every candidate switch block is excluded
/// instead of transformed. Fails with InvalidArgument if \p Candidate does
/// not have one flag per block.
vea::Expected<UnswitchStats> unswitchJumpTables(vea::Program &Prog,
                                                std::vector<uint8_t> &Candidate,
                                                bool EnableUnswitch);

} // namespace squash

#endif // SQUASH_SQUASH_UNSWITCH_H
