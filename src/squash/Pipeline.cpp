//===- squash/Pipeline.cpp - Pass manager for the squash pipeline ---------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Pipeline.h"

#include "link/Layout.h"
#include "squash/CodecSelect.h"
#include "squash/LayoutPass.h"
#include "support/Span.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

using namespace squash;
using namespace vea;

//===----------------------------------------------------------------------===//
// PipelineContext
//===----------------------------------------------------------------------===//

PipelineContext::PipelineContext(Program &Prog, const Profile &Prof,
                                 const Options &Opts, SquashResult &Result)
    : Prog(Prog), Prof(Prof), Opts(Opts), Result(Result) {
  OriginalCodeBytes = static_cast<uint32_t>(4 * Prog.instructionCount());
}

const Cfg &PipelineContext::cfg() {
  if (!CachedCfg) {
    CachedCfg = std::make_unique<Cfg>(Prog);
    ++CfgBuildCount;
  }
  return *CachedCfg;
}

const std::vector<std::vector<unsigned>> &PipelineContext::functionBlocks() {
  const Cfg &G = cfg(); // Ensure the index matches the current CFG.
  if (FuncBlocks.empty() && G.numFunctions() != 0) {
    FuncBlocks.resize(G.numFunctions());
    for (unsigned Id = 0; Id != G.numBlocks(); ++Id)
      FuncBlocks[G.functionOf(Id)].push_back(Id);
  }
  return FuncBlocks;
}

void PipelineContext::invalidateCfg() {
  CachedCfg.reset();
  FuncBlocks.clear();
}

//===----------------------------------------------------------------------===//
// The standard passes
//===----------------------------------------------------------------------===//

namespace {

/// Section 5: identify cold code and seed the candidate set.
class ColdCodePass final : public Pass {
public:
  const char *name() const override { return "cold-code"; }
  double SquashStats::*statSlot() const override {
    return &SquashStats::ColdSeconds;
  }
  Status run(PipelineContext &Ctx) override {
    const Options &Opts = Ctx.options();
    Expected<ColdCodeResult> Cold = identifyColdCode(
        Ctx.cfg(), Ctx.profile(), Opts.Theta, Opts.ColdCutoffCap);
    if (!Cold)
      return Cold.status();
    Ctx.result().Cold = std::move(Cold.get());
    Ctx.Candidate = Ctx.result().Cold.IsCold;
    return Status::success();
  }
  Status runDisabled(PipelineContext &Ctx) override {
    // No cold blocks means no candidates: downstream passes still need a
    // correctly sized flag vector.
    Ctx.Candidate.assign(Ctx.cfg().numBlocks(), 0);
    Ctx.result().Cold.IsCold = Ctx.Candidate;
    return Status::success();
  }
};

/// Section 6.2: unswitch cold jump tables (block ids are stable across
/// this pass, so the cold flags remain valid). The program changes, so the
/// cached CFG is invalidated either way.
class UnswitchPass final : public Pass {
public:
  const char *name() const override { return "unswitch"; }
  double SquashStats::*statSlot() const override {
    return &SquashStats::UnswitchSeconds;
  }
  Status run(PipelineContext &Ctx) override {
    return apply(Ctx, Ctx.options().Unswitch);
  }
  Status runDisabled(PipelineContext &Ctx) override {
    // Skipping unswitching outright would leave switch blocks candidate
    // with jump tables full of original addresses; the correct "off"
    // behaviour is the paper's fallback, exclusion (same as
    // Options::Unswitch = false).
    return apply(Ctx, false);
  }

private:
  static Status apply(PipelineContext &Ctx, bool Enable) {
    Expected<UnswitchStats> US =
        unswitchJumpTables(Ctx.program(), Ctx.Candidate, Enable);
    if (!US)
      return US.status();
    Ctx.result().Unswitch = US.get();
    Ctx.invalidateCfg();
    return Status::success();
  }
};

/// Section 2.2 plus conservatism around indirect control flow: setjmp
/// callers are never compressed, and blocks with indirect calls would need
/// Jsr expansion from the buffer (see DESIGN.md).
class SetjmpIndirectFilterPass final : public Pass {
public:
  const char *name() const override { return "filter-setjmp-indirect"; }
  double SquashStats::*statSlot() const override {
    return &SquashStats::UnswitchSeconds;
  }
  Status run(PipelineContext &Ctx) override {
    const Cfg &G = Ctx.cfg();
    for (unsigned Id = 0; Id != G.numBlocks(); ++Id) {
      if (!Ctx.Candidate[Id])
        continue;
      if (G.functionCallsSetjmp(G.functionOf(Id)) || G.hasIndirectCall(Id))
        Ctx.Candidate[Id] = 0;
    }
    return Status::success();
  }
};

/// A computed jump with unknown targets poisons its whole function: one
/// scan marks poisoned functions, then only their block lists are cleared
/// (the monolithic driver rescanned every block per computed jump,
/// O(blocks^2) on jump-heavy programs).
class ComputedJumpFilterPass final : public Pass {
public:
  const char *name() const override { return "filter-computed-jump"; }
  double SquashStats::*statSlot() const override {
    return &SquashStats::UnswitchSeconds;
  }
  Status run(PipelineContext &Ctx) override {
    const Cfg &G = Ctx.cfg();
    std::vector<uint8_t> Poisoned(G.numFunctions(), 0);
    for (unsigned Id = 0; Id != G.numBlocks(); ++Id) {
      const BasicBlock &B = G.block(Id);
      if (B.Insts.back().Op == Opcode::Jmp && !B.Switch)
        Poisoned[G.functionOf(Id)] = 1;
    }
    const auto &FuncBlocks = Ctx.functionBlocks();
    for (unsigned F = 0; F != G.numFunctions(); ++F)
      if (Poisoned[F])
        for (unsigned Id : FuncBlocks[F])
          Ctx.Candidate[Id] = 0;
    return Status::success();
  }
};

/// Section 4: region formation and packing.
class RegionsPass final : public Pass {
public:
  const char *name() const override { return "regions"; }
  double SquashStats::*statSlot() const override {
    return &SquashStats::RegionSeconds;
  }
  Status run(PipelineContext &Ctx) override {
    Expected<Partition> PartOr = formRegions(Ctx.cfg(), Ctx.Candidate,
                                             Ctx.options(),
                                             &Ctx.result().Regions);
    if (!PartOr)
      return PartOr.status();
    Ctx.Part = std::move(PartOr.get());
    return Status::success();
  }
  Status runDisabled(PipelineContext &Ctx) override {
    // An empty partition downstream means the identity image; RegionOf
    // must still have one entry per block.
    Ctx.Part.Regions.clear();
    Ctx.Part.RegionOf.assign(Ctx.cfg().numBlocks(), -1);
    return Status::success();
  }
};

/// Section 6.1: buffer-safety analysis. Runs uniformly even when the
/// partition is empty so identity results carry real stats.
class BufferSafePass final : public Pass {
public:
  const char *name() const override { return "buffer-safe"; }
  double SquashStats::*statSlot() const override {
    return &SquashStats::BufferSafeSeconds;
  }
  Status run(PipelineContext &Ctx) override {
    Ctx.BufferSafeFuncs =
        analyzeBufferSafe(Ctx.cfg(), Ctx.Part, &Ctx.result().BufferSafe);
    return Status::success();
  }
  Status runDisabled(PipelineContext &Ctx) override {
    // No function is considered safe: the rewriter then treats every call
    // from compressed code conservatively (byte-identical to
    // Options::BufferSafeCalls = false).
    Ctx.BufferSafeFuncs.assign(Ctx.cfg().numFunctions(), 0);
    return Status::success();
  }
};

/// Section 2: rewrite — or, when no region was profitable, emit the
/// original layout unchanged (SquashResult::Identity).
class RewritePass final : public Pass {
public:
  const char *name() const override { return "rewrite"; }
  double SquashStats::*statSlot() const override {
    return &SquashStats::RewriteSeconds;
  }
  Status run(PipelineContext &Ctx) override {
    SquashResult &R = Ctx.result();
    if (Ctx.Part.Regions.empty())
      return emitIdentity(Ctx);
    Expected<SquashedProgram> SPOr =
        rewriteProgram(Ctx.program(), Ctx.cfg(), Ctx.Part,
                       Ctx.BufferSafeFuncs, Ctx.options(),
                       std::move(Ctx.Plan), Ctx.FuncOrder);
    if (!SPOr)
      return SPOr.status();
    R.SP = std::move(SPOr.get());
    R.SP.Footprint.OriginalCodeBytes = Ctx.OriginalCodeBytes;
    R.SP.ProfileBlockCount =
        static_cast<uint32_t>(Ctx.profile().BlockCounts.size());
    R.Stats.EncodeSeconds = R.SP.Encode.Seconds;
    R.Stats.EncodeThreads = R.SP.Encode.ThreadsUsed;
    return Status::success();
  }
  Status runDisabled(PipelineContext &Ctx) override {
    // Without the rewrite the only runnable artifact is the input program
    // itself.
    return emitIdentity(Ctx);
  }

private:
  static Status emitIdentity(PipelineContext &Ctx) {
    SquashResult &R = Ctx.result();
    R.Identity = true;
    // An identity image still honours the layout pass's placement — the
    // link-layer explicit-order seam is exactly this call.
    Expected<Image> Img =
        layoutProgramOrError(Ctx.program(), DefaultBase, Ctx.FuncOrder);
    if (!Img)
      return Img.status();
    R.SP.Img = std::move(Img.get());
    R.SP.Opts = Ctx.options();
    recordFunctionOrder(R.SP, Ctx.program(), Ctx.FuncOrder);
    R.SP.ProfileBlockCount =
        static_cast<uint32_t>(Ctx.profile().BlockCounts.size());
    R.SP.Footprint.NeverCompressedWords =
        static_cast<uint32_t>(Ctx.program().instructionCount());
    R.SP.Footprint.OriginalCodeBytes = Ctx.OriginalCodeBytes;
    return Status::success();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// PassManager
//===----------------------------------------------------------------------===//

Pass &PassManager::addPass(std::unique_ptr<Pass> P) {
  Passes.push_back(std::move(P));
  return *Passes.back();
}

bool PassManager::hasPass(const std::string &Name) const {
  return std::any_of(Passes.begin(), Passes.end(),
                     [&](const auto &P) { return Name == P->name(); });
}

std::vector<std::string> PassManager::passNames() const {
  std::vector<std::string> Names;
  Names.reserve(Passes.size());
  for (const auto &P : Passes)
    Names.push_back(P->name());
  return Names;
}

Status PassManager::run(PipelineContext &Ctx) {
  return runPrefix(Ctx, Passes.size());
}

Status PassManager::runUntil(PipelineContext &Ctx,
                             const std::string &LastPass) {
  for (size_t I = 0; I != Passes.size(); ++I)
    if (LastPass == Passes[I]->name())
      return runPrefix(Ctx, I + 1);
  return Status::error(StatusCode::InvalidArgument,
                       "pipeline: no pass named '" + LastPass + "'");
}

Status PassManager::runPrefix(PipelineContext &Ctx, size_t End) {
  // Typos in DisabledPasses must fail loudly: a silently ignored name
  // would make an ablation config measure the wrong thing. Validated
  // against the whole pipeline, not the prefix, so a prefix run accepts a
  // disabled pass it never reaches.
  for (const std::string &Name : Ctx.options().DisabledPasses)
    if (!hasPass(Name))
      return Status::error(StatusCode::InvalidArgument,
                           "pipeline: DisabledPasses names unknown pass '" +
                               Name + "'");

  const auto Start = std::chrono::steady_clock::now();
  Status St = Status::success();
  for (size_t I = 0; I != End; ++I) {
    Pass &P = *Passes[I];
    const auto &Disabled = Ctx.options().DisabledPasses;
    bool IsDisabled =
        std::find(Disabled.begin(), Disabled.end(), P.name()) != Disabled.end();

    if (Pre && !(St = Pre(P, Ctx)).ok()) {
      St.context(std::string("pipeline: pre-hook at ") + P.name());
      break;
    }

    const auto T0 = std::chrono::steady_clock::now();
    {
      // One span per pass, emitted natively here (not through the Pre/Post
      // hooks, which belong to callers). The codec-select decision is the
      // one pass verdict worth span args: how many regions it planned and
      // how many got a non-Huffman coder — read immediately, because the
      // rewrite pass later moves the plan out of the context.
      vea::SpanScope Sp(P.name(), "pass");
      St = IsDisabled ? P.runDisabled(Ctx) : P.run(Ctx);
      if (Sp.active() && std::strcmp(P.name(), "codec-select") == 0) {
        uint64_t NonHuffman = 0;
        for (CodecKind K : Ctx.Plan.RegionCodec)
          NonHuffman += K != CodecKind::Huffman;
        Sp.setArgs(Ctx.Plan.RegionCodec.size(), NonHuffman);
      }
    }
    double Seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - T0)
                         .count();

    SquashResult &R = Ctx.result();
    R.PassTrace.push_back({P.name(), Seconds, IsDisabled, St.ok()});
    if (double SquashStats::*Slot = P.statSlot())
      R.Stats.*Slot += Seconds;

    if (!St.ok()) {
      St.context(std::string("pipeline: ") + P.name());
      break;
    }
    if (Post && !(St = Post(P, Ctx)).ok()) {
      St.context(std::string("pipeline: post-hook at ") + P.name());
      break;
    }
  }
  Ctx.result().Stats.TotalSeconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return St;
}

//===----------------------------------------------------------------------===//
// The standard pipeline
//===----------------------------------------------------------------------===//

void squash::buildStandardPipeline(PassManager &PM) {
  PM.addPass(std::make_unique<ColdCodePass>());
  PM.addPass(std::make_unique<UnswitchPass>());
  PM.addPass(std::make_unique<SetjmpIndirectFilterPass>());
  PM.addPass(std::make_unique<ComputedJumpFilterPass>());
  PM.addPass(std::make_unique<RegionsPass>());
  PM.addPass(std::make_unique<BufferSafePass>());
  PM.addPass(std::make_unique<CodecSelectPass>());
  PM.addPass(std::make_unique<LayoutPass>());
  PM.addPass(std::make_unique<RewritePass>());
}

std::vector<std::string> squash::standardPassNames() {
  PassManager PM;
  buildStandardPipeline(PM);
  return PM.passNames();
}

std::string squash::formatPassTrace(const std::vector<PassTraceEntry> &Trace) {
  std::string Out;
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%-24s %12s  %s\n", "pass", "seconds",
                "status");
  Out += Buf;
  for (const PassTraceEntry &E : Trace) {
    std::snprintf(Buf, sizeof(Buf), "%-24s %12.6f  %s\n", E.Name.c_str(),
                  E.Seconds,
                  !E.Ok ? "FAILED" : (E.Disabled ? "disabled" : "ok"));
    Out += Buf;
  }
  return Out;
}
