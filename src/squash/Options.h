//===- squash/Options.h - squash configuration -----------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration knobs for the squash pipeline. Defaults follow the paper:
/// cold-code threshold θ, runtime-buffer size bound K = 512 bytes, assumed
/// compression factor γ = 0.66 (Section 3 reports compressed size ≈ 66% of
/// the original), and the optimizations of Sections 4 and 6 enabled.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_OPTIONS_H
#define SQUASH_SQUASH_OPTIONS_H

#include "sim/Icache.h"
#include "squash/CostModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace squash {

struct Options {
  /// The paper's θ: cold code may account for at most this fraction of the
  /// dynamic instruction count (Section 5).
  double Theta = 0.0;

  /// Upper bound on the cold-code frequency cutoff N, regardless of how
  /// much θ budget remains (UINT64_MAX = unbounded, the paper's rule).
  /// Profile-feedback re-squashes pin this to the original squash's
  /// cutoff so that merging live heat into the profile can only flip
  /// blocks hot, never reclassify previously-hot blocks as cold (see
  /// ColdCode.h and DESIGN.md §13).
  uint64_t ColdCutoffCap = UINT64_MAX;

  /// The paper's K: upper bound, in bytes, on the runtime buffer used to
  /// guide region formation (Section 4; default 512, chosen empirically in
  /// Figure 3).
  uint32_t BufferBoundBytes = 512;

  /// Assumed fixed compression factor γ used by the region profitability
  /// test E < (1-γ)I (Section 4).
  double Gamma = 0.66;

  /// Enables the region-packing post-pass (Section 4).
  bool PackRegions = true;

  /// Uses whole program-specified functions as the unit of compression
  /// instead of Section 4's sub-function regions. This is the strawman the
  /// paper argues against: a function is compressible only if *all* its
  /// blocks are cold, and the runtime buffer must hold the largest
  /// compressed function. Provided for the ablation benchmark; the paper's
  /// region scheme is the default.
  bool WholeFunctionRegions = false;

  /// Enables the buffer-safe call optimization (Section 6.1).
  bool BufferSafeCalls = true;

  /// Enables unswitching of cold jump tables (Section 6.2); when false,
  /// switch blocks and their targets are simply excluded from compression.
  bool Unswitch = true;

  /// Move-to-front transform ahead of the Huffman coder (Section 3 notes
  /// it helps some streams but grows the decompressor).
  bool MoveToFront = false;

  /// Delta-encodes the displacement streams (disp16/disp21) before entropy
  /// coding — one of the "other algorithms for compression" the paper's
  /// future work contemplates. Resets at region boundaries.
  bool DeltaDisplacements = false;

  /// Region coder selection: "huffman" (the paper's splitting-streams
  /// coder, the default), "pattern" (dictionary of frequent instruction
  /// n-grams with a Huffman escape), "context" (order-1 opcode-context
  /// code tables), or "auto" (the codec-select pass picks the best coder
  /// per region by modeled size x decode-cost). Any other name is an
  /// InvalidArgument error from the pipeline.
  std::string Codec = "huffman";

  /// If true, a decompression request for the region already in the buffer
  /// is satisfied without re-decoding. The paper's decompressor always
  /// re-decodes; this knob exists for the ablation benchmark.
  bool ReuseBufferedRegion = false;

  /// Decode regions with the table-driven multi-symbol decoder
  /// (huff/FastDecoder.h) instead of the bit-serial canonical walk. Output
  /// and corruption verdicts are identical either way (pinned by the
  /// fastdecode conformance suite); only host wall-clock time changes —
  /// simulated cycle charges are the same.
  bool FastDecode = true;

  /// Probe-window width for the fast decoder's lookup tables, in bits;
  /// clamped to FastTables' supported range [4, 14]. Wider windows resolve
  /// more fields per probe but cost 2^Bits table entries per stream.
  unsigned DecodeTableBits = 11;

  /// Decode-ahead: after each decompressor trap, predict the next region
  /// from the observed transition history and pre-decode it on a host
  /// worker thread, so the predicted trap's fill only pays the setup and
  /// icache-flush charges instead of the per-instruction decode charge.
  /// Pure host-side staging: the worker reads only the immutable compressed
  /// blob and writes nothing to guest memory, and every prefetched fill is
  /// re-validated (offset-table word and expanded-words CRC) before use, so
  /// prefetch on/off never changes program output or fault behaviour.
  bool DecodeAhead = false;

  /// Number of slots the runtime buffer area is carved into. Each slot is
  /// large enough for the largest region (jump slot + expanded words), so
  /// the simulated buffer footprint scales linearly with this. With more
  /// than one slot the runtime keeps a resident-region table and serves
  /// repeat entries from a resident slot without re-decoding (LRU
  /// eviction); 1 reproduces the paper's single shared buffer exactly.
  uint32_t CacheSlots = 1;

  /// When the decode cache is active (CacheSlots > 1, or
  /// ReuseBufferedRegion), rewrite a resident region's entry stubs to
  /// branch straight into its slot, skipping the Decompress trap entirely;
  /// the original bsr word is restored on eviction. Has no effect when the
  /// cache is inactive (the paper's protocol always traps).
  bool DirectResidentStubs = true;

  /// Worker threads for the offline per-region compression pass. 0 means
  /// one per hardware thread; 1 forces the serial path. The parallel path
  /// produces byte-identical output to serial order (regions are encoded
  /// independently and concatenated in region order).
  uint32_t SquashThreads = 0;

  /// Capacity of the restore-stub area (the paper observed at most 9 live
  /// stubs even at θ = 0.01).
  uint32_t MaxRestoreStubs = 32;

  /// Size of the reserved decompressor code region, in words (the paper's
  /// decompressor is a small native routine; 256 words = 1 KB).
  uint32_t DecompressorCodeWords = 256;

  /// Verify the image and blob CRC32 checksums when the runtime attaches.
  /// Layout consistency (segment ordering, offset-table bounds) is always
  /// checked; this knob only controls the full-content scan.
  bool ChecksumAtAttach = true;

  /// Retain a host-side uncompressed copy of every region so that a region
  /// whose lazy integrity check fails at decompression time can be refilled
  /// from the copy instead of faulting (graceful degradation). Costs host
  /// memory only; the simulated footprint is unchanged.
  bool RetainRecoveryCopies = true;

  /// Profile-guided layout of the hot (never-compressed) half: the
  /// "layout" pass builds a call-adjacency graph over the profile and
  /// greedy-merges function chains (Pettis-Hansen / C3 style) so hot
  /// callers and callees land on adjacent I-cache lines. Off by default:
  /// the pass then emits the identity order and the image is byte-stable.
  /// Layout only moves whole functions, so guest behaviour is identical
  /// either way; with the simulated I-cache enabled the difference shows
  /// up as conflict-miss cycles.
  bool ProfileLayout = false;

  /// Simulated I-cache for squashed runs (sim/Icache.h). Disabled by
  /// default: fetches are then flat and region fills charge the
  /// CostModel::IcacheFlushCycles constant, bit-stable with every prior
  /// gate. Enabled, fetches go through the tag-only cache model, fills
  /// invalidate the written lines instead of paying the flat constant, and
  /// the ledger gains the IcacheMiss term.
  vea::IcacheConfig Icache;

  /// Pipeline passes to skip, by name (see squash/Pipeline.h for the
  /// standard list). A disabled pass executes its conservative fallback
  /// instead of its transformation — e.g. disabling "unswitch" excludes
  /// candidate switch blocks (same as Unswitch = false) and disabling
  /// "buffer-safe" marks every function unsafe — so ablation benches and
  /// tools toggle whole stages without bespoke per-stage option plumbing.
  /// A name matching no pass is an InvalidArgument error, not a no-op.
  std::vector<std::string> DisabledPasses;

  CostModel Costs;
};

} // namespace squash

#endif // SQUASH_SQUASH_OPTIONS_H
