//===- squash/Driver.h - The squash pipeline -------------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level squash pipeline, mirroring the paper's tool flow:
/// a (compacted) program plus an execution profile goes in; a runnable
/// squashed image with full footprint accounting comes out.
///
///   identify cold code (Sec. 5) -> unswitch cold jump tables (Sec. 6.2)
///   -> filter candidates (setjmp callers, indirect-call blocks)
///   -> form + pack regions (Sec. 4) -> buffer-safety analysis (Sec. 6.1)
///   -> rewrite (Sec. 2) -> attach the decompressor runtime and run.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_DRIVER_H
#define SQUASH_SQUASH_DRIVER_H

#include "squash/BufferSafe.h"
#include "squash/ColdCode.h"
#include "squash/Options.h"
#include "squash/Regions.h"
#include "squash/Rewriter.h"
#include "squash/Runtime.h"
#include "squash/Unswitch.h"

#include <memory>

namespace squash {

/// Wall-clock accounting for the offline pipeline, one entry per stage in
/// execution order (consumed by bench/stat_decode_cache).
struct SquashStats {
  double ColdSeconds = 0.0;       ///< Cold-code identification.
  double UnswitchSeconds = 0.0;   ///< Jump-table unswitching + filters.
  double RegionSeconds = 0.0;     ///< Region formation + packing.
  double BufferSafeSeconds = 0.0; ///< Buffer-safety analysis.
  double RewriteSeconds = 0.0;    ///< Lowering, layout, image emission
                                  ///< (includes EncodeSeconds).
  double EncodeSeconds = 0.0;     ///< Per-region compression only.
  double TotalSeconds = 0.0;
  uint32_t EncodeThreads = 1;     ///< Workers the encode pass used.

  /// Registers per-stage wall times (gauges, seconds) and the encode worker
  /// count under \p Prefix (DESIGN.md §12).
  void exportMetrics(vea::MetricsRegistry &R,
                     const std::string &Prefix = "squash.time.") const;
};

/// Everything squashProgram produces: the runnable image plus the stats
/// every experiment in the paper reports.
struct SquashResult {
  SquashedProgram SP;
  ColdCodeResult Cold;
  RegionStats Regions;
  BufferSafeStats BufferSafe;
  UnswitchStats Unswitch;
  SquashStats Stats;
  /// True when no region was profitable: the "squashed" image is simply
  /// the original layout (no machinery added, footprint unchanged).
  bool Identity = false;
};

/// Runs the full squash pipeline on \p Prog (typically post-compaction)
/// with profile \p Prof. \p Prog is taken by value because unswitching
/// rewrites it. Fails — instead of aborting — on a malformed program, a
/// profile that does not match it, or any downstream layout/encoding
/// error; callers that cannot continue use Expected::take().
vea::Expected<SquashResult> squashProgram(vea::Program Prog,
                                          const vea::Profile &Prof,
                                          const Options &Opts);

/// Result of executing a squashed program.
struct SquashedRun {
  vea::RunResult Run;
  RuntimeSystem::Stats Runtime;
  std::vector<uint8_t> Output; ///< Bytes the program wrote (PutChar).
  /// Runtime event trace, oldest first (empty unless runSquashed was given
  /// a nonzero TraceCapacity). Bounded: when the ring fills, the oldest
  /// events are overwritten and TraceDropped counts them.
  std::vector<RuntimeSystem::Event> Trace;
  uint64_t TraceDropped = 0;
};

/// Executes a squashed image on \p Input with the decompressor attached.
/// If the image fails its attach-time validation the result is a Fault
/// run carrying the validation message; nothing is executed. A nonzero
/// \p TraceCapacity enables runtime event tracing into a ring of that many
/// events (see RuntimeSystem::enableTrace). \p Observer, when non-null, is
/// called on every Decompress-entry trap during the run (squash/DriftMonitor
/// plugs in here).
SquashedRun runSquashed(const SquashedProgram &SP, std::vector<uint8_t> Input,
                        uint64_t MaxInstructions = 2'000'000'000ull,
                        uint32_t TraceCapacity = 0,
                        TrapObserver *Observer = nullptr);

/// Profiles \p Img (an original / compacted image) on \p Input. Fails with
/// RuntimeFault if the program does not halt cleanly.
vea::Expected<vea::Profile> profileImage(const vea::Image &Img,
                                         std::vector<uint8_t> Input);

} // namespace squash

#endif // SQUASH_SQUASH_DRIVER_H
