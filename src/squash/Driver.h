//===- squash/Driver.h - The squash pipeline -------------------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level squash entry points: a (compacted) program plus an
/// execution profile goes in; a runnable squashed image with full
/// footprint accounting comes out. Since the pass-manager refactor the
/// pipeline itself lives in squash/Pipeline.h as named passes over a
/// shared analysis context; squashProgram builds and runs the standard
/// pass list:
///
///   cold-code (Sec. 5) -> unswitch (Sec. 6.2, invalidates the CFG cache)
///   -> filter-setjmp-indirect (Sec. 2.2) -> filter-computed-jump
///   -> regions (Sec. 4) -> buffer-safe (Sec. 6.1) -> codec-select
///   -> layout (profile-guided function placement) -> rewrite (Sec. 2)
///
/// then the caller attaches the decompressor runtime via runSquashed.
/// Tools that need a prefix, a skip, or per-pass hooks drive a
/// PassManager directly (squash_tool --stop-after, Options::DisabledPasses,
/// the fault-injection harness).
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_DRIVER_H
#define SQUASH_SQUASH_DRIVER_H

#include "squash/BufferSafe.h"
#include "squash/ColdCode.h"
#include "squash/Options.h"
#include "squash/Regions.h"
#include "squash/Rewriter.h"
#include "squash/Runtime.h"
#include "squash/Unswitch.h"

#include <memory>
#include <string>
#include <vector>

namespace squash {

/// Wall-clock accounting for the offline pipeline, one entry per stage in
/// execution order (consumed by bench/stat_decode_cache).
struct SquashStats {
  double ColdSeconds = 0.0;       ///< Cold-code identification.
  double UnswitchSeconds = 0.0;   ///< Jump-table unswitching + filters.
  double RegionSeconds = 0.0;     ///< Region formation + packing.
  double BufferSafeSeconds = 0.0; ///< Buffer-safety analysis.
  double CodecSelectSeconds = 0.0; ///< Per-region codec trial + selection.
  double LayoutSeconds = 0.0;     ///< Profile-guided function placement.
  double RewriteSeconds = 0.0;    ///< Lowering, layout, image emission
                                  ///< (includes EncodeSeconds).
  double EncodeSeconds = 0.0;     ///< Per-region compression only.
  double TotalSeconds = 0.0;
  uint32_t EncodeThreads = 1;     ///< Workers the encode pass used.

  /// Registers per-stage wall times (gauges, seconds) and the encode worker
  /// count under \p Prefix (DESIGN.md §12).
  void exportMetrics(vea::MetricsRegistry &R,
                     const std::string &Prefix = "squash.time.") const;
};

/// One executed (or skipped) pass in the pipeline's trace: what ran, for
/// how long, and how it ended (see squash/Pipeline.h; render with
/// formatPassTrace).
struct PassTraceEntry {
  std::string Name;
  double Seconds = 0.0;
  bool Disabled = false; ///< Ran its runDisabled fallback instead.
  bool Ok = true;        ///< False when this pass aborted the pipeline.
};

/// Everything squashProgram produces: the runnable image plus the stats
/// every experiment in the paper reports.
struct SquashResult {
  SquashedProgram SP;
  ColdCodeResult Cold;
  RegionStats Regions;
  BufferSafeStats BufferSafe;
  UnswitchStats Unswitch;
  SquashStats Stats;
  /// Per-pass execution record, in run order (every pass appears, even on
  /// identity results — the pass manager records uniformly).
  std::vector<PassTraceEntry> PassTrace;
  /// True when no region was profitable: the "squashed" image is simply
  /// the original layout (no machinery added, footprint unchanged).
  bool Identity = false;
};

/// Runs the standard squash pass pipeline on \p Prog (typically
/// post-compaction) with profile \p Prof. \p Prog is taken by value
/// because unswitching rewrites it. Fails — instead of aborting — on a
/// malformed program, a profile that does not match it, or any downstream
/// layout/encoding error; callers that cannot continue use
/// Expected::take(). A thin wrapper over buildStandardPipeline +
/// PassManager::run (squash/Pipeline.h) for callers that want the whole
/// pipeline, hook-free.
vea::Expected<SquashResult> squashProgram(vea::Program Prog,
                                          const vea::Profile &Prof,
                                          const Options &Opts);

/// Result of executing a squashed program.
struct SquashedRun {
  vea::RunResult Run;
  RuntimeSystem::Stats Runtime;
  std::vector<uint8_t> Output; ///< Bytes the program wrote (PutChar).
  /// Runtime event trace, oldest first (empty unless runSquashed was given
  /// a nonzero TraceCapacity). Bounded: when the ring fills, the oldest
  /// events are overwritten and TraceDropped counts them.
  std::vector<RuntimeSystem::Event> Trace;
  uint64_t TraceDropped = 0;
};

/// Executes a squashed image on \p Input with the decompressor attached.
/// If the image fails its attach-time validation the result is a Fault
/// run carrying the validation message; nothing is executed. A nonzero
/// \p TraceCapacity enables runtime event tracing into a ring of that many
/// events (see RuntimeSystem::enableTrace). \p Observer, when non-null, is
/// called on every Decompress-entry trap during the run (squash/DriftMonitor
/// plugs in here).
SquashedRun runSquashed(const SquashedProgram &SP, std::vector<uint8_t> Input,
                        uint64_t MaxInstructions = 2'000'000'000ull,
                        uint32_t TraceCapacity = 0,
                        TrapObserver *Observer = nullptr);

/// Profiles \p Img (an original / compacted image) on \p Input. Fails with
/// RuntimeFault if the program does not halt cleanly.
vea::Expected<vea::Profile> profileImage(const vea::Image &Img,
                                         std::vector<uint8_t> Input);

} // namespace squash

#endif // SQUASH_SQUASH_DRIVER_H
