//===- squash/Telemetry.cpp - Cycle-attribution ledger --------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Telemetry.h"

#include "huff/Codec.h"

#include <cstdio>

using namespace squash;

CycleLedger squash::buildCycleLedger(const SquashedRun &R) {
  CycleLedger L;
  L.Total = R.Run.Cycles;
  L.GuestExecute = R.Run.Instructions;
  L.TrapSetup = R.Runtime.TrapSetupCyclesTotal;
  L.DecodeByCodec = R.Runtime.DecodeOnlyCyclesByCodec;
  L.IcacheFlush = R.Runtime.IcacheFlushCyclesTotal;
  L.IcacheMiss = R.Run.IcacheMissCycles;
  L.RestoreStub = R.Runtime.CreateStubCyclesTotal;
  L.HostDecodeNanos = R.Runtime.HostDecodeNanos;
  L.WastedPrefetches = R.Runtime.PrefetchWasted +
                       R.Runtime.PrefetchCorruptDiscards;
  return L;
}

std::string squash::renderAttributionReport(const CycleLedger &L,
                                            const std::string &Label) {
  std::string Out = "cycle attribution: " + Label + "\n";
  char Buf[160];
  const double Total = L.Total ? static_cast<double>(L.Total) : 1.0;
  auto Row = [&](const char *Name, uint64_t Cycles) {
    std::snprintf(Buf, sizeof(Buf), "  %-24s %14llu  %6.2f%%\n", Name,
                  (unsigned long long)Cycles, 100.0 * Cycles / Total);
    Out += Buf;
  };
  Row("guest execute", L.GuestExecute);
  Row("trap setup", L.TrapSetup);
  for (unsigned K = 0; K != NumCodecKinds; ++K) {
    std::string Name =
        std::string("decode (") + codecKindName(static_cast<CodecKind>(K)) +
        ")";
    Row(Name.c_str(), L.DecodeByCodec[K]);
  }
  Row("icache flush", L.IcacheFlush);
  Row("icache miss", L.IcacheMiss);
  Row("restore stubs", L.RestoreStub);
  Row("wasted prefetch", L.WastedPrefetchCycles);
  std::snprintf(Buf, sizeof(Buf),
                "  %-24s %14llu  %s (attributed %llu)\n", "total",
                (unsigned long long)L.Total,
                L.conserves() ? "conserved" : "NOT CONSERVED",
                (unsigned long long)L.attributed());
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  (host decode %llu ns; %llu wasted prefetches, 0 simulated "
                "cycles by design)\n",
                (unsigned long long)L.HostDecodeNanos,
                (unsigned long long)L.WastedPrefetches);
  Out += Buf;
  return Out;
}

void squash::exportLedgerMetrics(vea::MetricsRegistry &R,
                                 const CycleLedger &L,
                                 const std::string &Prefix) {
  R.setCounter(Prefix + "total_cycles", L.Total);
  R.setCounter(Prefix + "guest_execute_cycles", L.GuestExecute);
  R.setCounter(Prefix + "trap_setup_cycles", L.TrapSetup);
  for (unsigned K = 0; K != NumCodecKinds; ++K)
    R.setCounter(Prefix + "decode_cycles_" +
                     codecKindName(static_cast<CodecKind>(K)),
                 L.DecodeByCodec[K]);
  R.setCounter(Prefix + "icache_flush_cycles", L.IcacheFlush);
  R.setCounter(Prefix + "icache_miss_cycles", L.IcacheMiss);
  R.setCounter(Prefix + "restore_stub_cycles", L.RestoreStub);
  R.setCounter(Prefix + "wasted_prefetch_cycles", L.WastedPrefetchCycles);
  R.setCounter(Prefix + "wasted_prefetches", L.WastedPrefetches);
  R.setCounter(Prefix + "host_decode_ns", L.HostDecodeNanos);
  R.setCounter(Prefix + "conserved", L.conserves() ? 1 : 0);
}
