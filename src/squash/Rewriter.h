//===- squash/Rewriter.h - Squashed image construction ---------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the squashed executable (Figure 1(b) / Figure 2(b) of the paper)
/// from a program, a region partition, and the buffer-safety analysis:
///
///   [never-compressed code] [entry stubs] [decompressor] [offset table]
///   [restore-stub area] [runtime buffer] [data] [compressed blob]
///
/// Every segment is counted in the memory footprint, exactly as the paper
/// requires ("the latter must take into account the space occupied by the
/// stubs, the decompressor, the function offset table, the compressed code,
/// the runtime buffer, and the never-compressed original program code").
///
/// Region code is stored with calls that need restore-stub treatment
/// rewritten to the squash-internal opcode Bsrx; the decompressor expands
/// each Bsrx into the paper's two-instruction sequence (BSR to CreateStub +
/// BR to the callee) when filling the buffer, and all intra-region branch
/// displacements are precomputed against that expanded layout.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_REWRITER_H
#define SQUASH_SQUASH_REWRITER_H

#include "huff/StreamCodec.h"
#include "link/Layout.h"
#include "squash/Options.h"
#include "squash/Regions.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace squash {

/// Addresses of the runtime structures inside the squashed image.
struct RuntimeLayout {
  uint32_t DecompBase = 0; ///< Decompress entry r is DecompBase + 4r;
                           ///< CreateStub entry r is DecompBase + 4(32+r).
  uint32_t DecompEnd = 0;
  uint32_t OffsetTableBase = 0; ///< One 32-bit bit-offset per region.
  uint32_t StubAreaBase = 0;
  uint32_t StubSlots = 0;    ///< 4 words per slot.
  uint32_t BufferBase = 0;   ///< Word 0 is the jump slot.
  uint32_t BufferWords = 0;  ///< Including the jump slot.
  uint32_t BlobBase = 0;     ///< Serialized stream tables + region payloads.
  uint32_t BlobBytes = 0;

  uint32_t decompressEntry(unsigned Reg) const { return DecompBase + 4 * Reg; }
  uint32_t createStubEntry(unsigned Reg) const {
    return DecompBase + 4 * (32 + Reg);
  }
};

/// The paper's space accounting for the transformed program.
struct FootprintBreakdown {
  uint32_t NeverCompressedWords = 0; ///< Incl. reconnection branches.
  uint32_t EntryStubWords = 0;
  uint32_t DecompressorWords = 0;
  uint32_t OffsetTableWords = 0;
  uint32_t StubAreaWords = 0;
  uint32_t BufferWords = 0;
  uint32_t CompressedBytes = 0; ///< Stream tables + region payloads.
  uint32_t OriginalCodeBytes = 0;

  uint32_t totalCodeBytes() const {
    return 4 * (NeverCompressedWords + EntryStubWords + DecompressorWords +
                OffsetTableWords + StubAreaWords + BufferWords) +
           CompressedBytes;
  }
  double reduction() const {
    return OriginalCodeBytes
               ? 1.0 - static_cast<double>(totalCodeBytes()) /
                           OriginalCodeBytes
               : 0.0;
  }
};

/// Per-region results of lowering + encoding.
struct RegionImageInfo {
  uint32_t BitOffset = 0;      ///< Absolute bit offset within the blob.
  uint32_t ExpandedWords = 0;  ///< Buffer words the region decompresses to.
  uint32_t StoredInstructions = 0;
  uint32_t NumEntryStubs = 0;
  uint32_t ExternalCalls = 0;  ///< Bsrx sites (restore-stub calls).
  uint32_t BufferSafeCalls = 0;
};

/// A runnable squashed program plus everything the runtime and the
/// experiment harnesses need.
struct SquashedProgram {
  vea::Image Img;
  RuntimeLayout Layout;
  StreamCodecs Codecs; ///< Host mirror of the tables stored in the blob.
  std::vector<RegionImageInfo> Regions;
  FootprintBreakdown Footprint;
  Options Opts;
  /// Entry-stub address of every compressed block that has one.
  std::unordered_map<std::string, uint32_t> StubOf;
};

/// Builds the squashed image. \p BufferSafeFuncs comes from
/// analyzeBufferSafe (pass all-zeros to disable the optimization).
SquashedProgram rewriteProgram(const vea::Program &Prog, const vea::Cfg &G,
                               const Partition &Part,
                               const std::vector<uint8_t> &BufferSafeFuncs,
                               const Options &Opts);

} // namespace squash

#endif // SQUASH_SQUASH_REWRITER_H
