//===- squash/Rewriter.h - Squashed image construction ---------*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the squashed executable (Figure 1(b) / Figure 2(b) of the paper)
/// from a program, a region partition, and the buffer-safety analysis:
///
///   [never-compressed code] [entry stubs] [decompressor] [offset table]
///   [restore-stub area] [runtime buffer] [data] [compressed blob]
///
/// Every segment is counted in the memory footprint, exactly as the paper
/// requires ("the latter must take into account the space occupied by the
/// stubs, the decompressor, the function offset table, the compressed code,
/// the runtime buffer, and the never-compressed original program code").
///
/// Region code is stored with calls that need restore-stub treatment
/// rewritten to the squash-internal opcode Bsrx; the decompressor expands
/// each Bsrx into the paper's two-instruction sequence (BSR to CreateStub +
/// BR to the callee) when filling the buffer, and all intra-region branch
/// displacements are precomputed against that expanded layout.
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_REWRITER_H
#define SQUASH_SQUASH_REWRITER_H

#include "huff/Codec.h"
#include "huff/ContextCodec.h"
#include "huff/PatternCodec.h"
#include "huff/StreamCodec.h"
#include "link/Layout.h"
#include "squash/Options.h"
#include "squash/Regions.h"
#include "support/Metrics.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace squash {

/// Addresses of the runtime structures inside the squashed image.
struct RuntimeLayout {
  /// Image format version stamped by the rewriter and checked at attach.
  /// Version 2 added per-region codec selection (RegionImageInfo::Codec
  /// plus pattern/context side tables in the blob); an image claiming any
  /// other version is rejected as MalformedImage instead of being decoded
  /// with the wrong table layout.
  static constexpr uint32_t CurrentFormatVersion = 2;

  /// One Decompress entry point per possible return-address register, then
  /// one CreateStub entry point per register (Sections 2.2/2.3):
  ///   Decompress entry r is DecompBase + 4r
  ///   CreateStub entry r is DecompBase + 4(NumDecompressEntries + r)
  static constexpr unsigned NumDecompressEntries = 32;
  static constexpr unsigned NumCreateStubEntries = 32;
  static constexpr unsigned NumEntryPoints =
      NumDecompressEntries + NumCreateStubEntries;
  /// Words per restore-stub slot: call, tag, refcount, key.
  static constexpr uint32_t StubSlotWords = 4;

  /// Slot-map word marking a cache slot that holds no region.
  static constexpr uint32_t SlotMapEmpty = 0xFFFFFFFFu;

  uint32_t DecompBase = 0;
  uint32_t DecompEnd = 0;
  uint32_t OffsetTableBase = 0; ///< One 32-bit bit-offset per region.
  uint32_t StubAreaBase = 0;
  uint32_t StubSlots = 0;    ///< StubSlotWords words per slot.
  uint32_t SlotMapBase = 0;  ///< One word per cache slot: resident region
                             ///< id, or SlotMapEmpty. Runtime-written.
  uint32_t CacheSlots = 1;   ///< Decode-cache slots carved from the buffer.
  uint32_t SlotWords = 0;    ///< Words per cache slot, incl. its jump slot.
  uint32_t BufferBase = 0;   ///< Word 0 is slot 0's jump slot.
  uint32_t BufferWords = 0;  ///< All slots: CacheSlots * SlotWords.
  uint32_t DataBase = 0;     ///< First data byte (end of runtime machinery).
  uint32_t BlobBase = 0;     ///< Serialized stream tables + region payloads.
  uint32_t BlobBytes = 0;
  uint32_t FormatVersion = CurrentFormatVersion;

  /// CRC32 of the image's immutable prefix [Base, StubAreaBase): code,
  /// entry stubs, decompressor region, offset table. Everything after is
  /// legitimately written at runtime (stubs, buffer, data) or covered by
  /// BlobCrc32.
  uint32_t ImageCrc32 = 0;
  /// CRC32 of the compressed blob.
  uint32_t BlobCrc32 = 0;

  uint32_t decompressEntry(unsigned Reg) const { return DecompBase + 4 * Reg; }
  uint32_t createStubEntry(unsigned Reg) const {
    return DecompBase + 4 * (NumDecompressEntries + Reg);
  }

  /// Address of cache slot \p Slot's jump-slot word.
  uint32_t slotBase(uint32_t Slot) const {
    return BufferBase + 4 * Slot * SlotWords;
  }
  /// Address of the first decompressed word of cache slot \p Slot. Slot 0
  /// is the canonical base every region displacement is lowered against.
  uint32_t slotDataBase(uint32_t Slot) const { return slotBase(Slot) + 4; }
};

/// The paper's space accounting for the transformed program.
struct FootprintBreakdown {
  uint32_t NeverCompressedWords = 0; ///< Incl. reconnection branches.
  uint32_t EntryStubWords = 0;
  uint32_t DecompressorWords = 0;
  uint32_t OffsetTableWords = 0;
  uint32_t StubAreaWords = 0;
  uint32_t SlotMapWords = 0; ///< One word per decode-cache slot.
  uint32_t BufferWords = 0;  ///< All cache slots.
  uint32_t CompressedBytes = 0; ///< Codec side tables + region payloads.
  uint32_t OriginalCodeBytes = 0;

  /// Exact bit accounting of the blob, measured while it is serialized:
  /// CompressedBytes must equal the byte ceiling of the sum of all four,
  /// so no codec side table (Huffman code representations and MTF
  /// dictionaries, pattern dictionary, context tables) can silently
  /// escape the compressed-size charge.
  uint64_t HuffmanTableBits = 0;
  uint64_t PatternTableBits = 0;
  uint64_t ContextTableBits = 0;
  uint64_t PayloadBits = 0; ///< Region codeword bits, all codecs.

  uint32_t totalCodeBytes() const {
    return 4 * (NeverCompressedWords + EntryStubWords + DecompressorWords +
                OffsetTableWords + StubAreaWords + SlotMapWords +
                BufferWords) +
           CompressedBytes;
  }
  double reduction() const {
    return OriginalCodeBytes
               ? 1.0 - static_cast<double>(totalCodeBytes()) /
                           OriginalCodeBytes
               : 0.0;
  }

  /// Registers every segment size (and the derived totals) under
  /// \p Prefix (DESIGN.md §12).
  void exportMetrics(vea::MetricsRegistry &R,
                     const std::string &Prefix = "footprint.") const;
};

/// Per-region results of lowering + encoding.
struct RegionImageInfo {
  uint32_t BitOffset = 0;      ///< Absolute bit offset within the blob.
  uint32_t ExpandedWords = 0;  ///< Buffer words the region decompresses to.
  uint32_t StoredInstructions = 0;
  uint32_t NumEntryStubs = 0;
  uint32_t ExternalCalls = 0;  ///< Bsrx sites (restore-stub calls).
  uint32_t BufferSafeCalls = 0;
  /// CRC32 of the expanded buffer words (little-endian byte order) this
  /// region must decompress to; checked after every fill.
  uint32_t Crc32 = 0;
  /// The coder this region's payload was encoded with (a CodecKind value);
  /// validated against the image's present codecs at attach.
  uint8_t Codec = 0;
};

/// The codec-select pass's verdict, consumed by rewriteProgram: one
/// CodecKind per region plus the built non-Huffman coders those choices
/// reference. An empty RegionCodec means "all Huffman" and reproduces the
/// legacy blob byte-for-byte.
struct CodecPlan {
  std::vector<CodecKind> RegionCodec;
  PatternCodec Pattern;
  ContextCodec Context;
};

/// One entry stub of a compressed region: where it lives and the tag its
/// second word carries. The runtime uses these to rewrite a resident
/// region's stubs into direct branches (Options::DirectResidentStubs) and
/// to restore them on eviction.
struct EntryStubSite {
  uint32_t Addr = 0; ///< Address of the stub's bsr word.
  uint32_t Tag = 0;  ///< (region << 16) | (1 + expanded word offset).
};

/// One Cfg block a compressed region contains, with its instruction count.
/// squash/DriftMonitor uses this mapping to project live region heat back
/// onto a block-level sim::Profile that mergeProfiles can combine with the
/// training profile for a re-squash.
struct RegionBlockRef {
  uint32_t Block = 0;        ///< Cfg block id (post-unswitch numbering).
  uint32_t Instructions = 0; ///< Source instructions in the block.
  uint8_t IsEntry = 0;       ///< Has an entry stub (region entry point).
};

/// Wall-clock accounting for the offline encode pass, surfaced through
/// SquashStats.
struct EncodeTiming {
  double Seconds = 0.0;       ///< Region-encoding wall time.
  uint32_t ThreadsUsed = 1;   ///< 1 when the serial path ran.
};

/// One function's final placement in the squashed image, for the
/// inspector's function-order view.
struct FunctionPlacement {
  unsigned FuncIdx = 0; ///< Index into the program's function list.
  std::string Name;     ///< Function name (entry label).
  uint32_t Addr = 0;    ///< Entry address in the image.
};

/// A runnable squashed program plus everything the runtime and the
/// experiment harnesses need.
struct SquashedProgram {
  vea::Image Img;
  RuntimeLayout Layout;
  /// Host mirrors of the tables stored in the blob. Codecs is empty when
  /// no region uses the Huffman coder; Pattern/Context are absent
  /// (present() false) when no region uses them.
  StreamCodecs Codecs;
  PatternCodec Pattern;
  ContextCodec Context;
  std::vector<RegionImageInfo> Regions;
  FootprintBreakdown Footprint;
  Options Opts;
  /// Entry-stub address of every compressed block that has one.
  std::unordered_map<std::string, uint32_t> StubOf;
  /// Every tag word an entry stub may legitimately hand to Decompress; the
  /// runtime rejects tags outside this set instead of following them.
  std::unordered_set<uint32_t> ValidEntryTags;
  /// Per region: the exact expanded buffer words (Bsrx already expanded),
  /// kept for recovery when a fill fails its integrity check. Empty when
  /// Options::RetainRecoveryCopies is off.
  std::vector<std::vector<uint32_t>> RecoveryWords;
  /// Per region: its entry stubs, for direct-branch rewriting of resident
  /// regions.
  std::vector<std::vector<EntryStubSite>> RegionEntryStubs;
  /// Per region: the blocks it compresses (same region order as Regions),
  /// for projecting runtime heat back onto the profile's block ids.
  std::vector<std::vector<RegionBlockRef>> RegionBlocks;
  /// Block count of the guiding profile (the pre-unswitch Cfg). Unswitching
  /// may append blocks, so RegionBlocks entries at or past this id have no
  /// profile slot and are skipped when a live profile is exported.
  uint32_t ProfileBlockCount = 0;
  /// Final hot-half placement, in emission order (the layout pass's
  /// verdict). Empty means the identity placement (program order).
  std::vector<FunctionPlacement> FuncLayout;
  /// Timing of the per-region encode pass that produced the blob.
  EncodeTiming Encode;
  /// Fault-injection arming (FaultKind::PrefetchSlotCorrupt): when nonzero,
  /// the runtime flips a bit in the Nth prefetched staging buffer before it
  /// is consumed, then disarms. The consume-time CRC check must catch it
  /// and fall back to a demand decode.
  uint32_t ArmPrefetchCorrupt = 0;

  /// The coder region \p R was encoded with.
  CodecKind regionCodec(size_t R) const {
    return static_cast<CodecKind>(Regions[R].Codec);
  }
  /// Streaming cursor over region \p R's payload in \p Blob, dispatched
  /// through the region's recorded codec. The single decode entry point
  /// shared by the runtime's slow path, the inspector, and the benches.
  std::unique_ptr<RegionCursor> makeRegionCursor(size_t R,
                                                 const uint8_t *Blob,
                                                 size_t BlobBytes) const;
};

/// Expands one stored instruction into the word(s) it occupies in the
/// runtime buffer when written at \p WriteAddr, appending to \p Out (Bsrx
/// becomes the paper's bsr-to-CreateStub + br pair). Shared by the rewriter
/// (recovery copies and region CRCs) and the runtime decompressor so the
/// two can never drift apart.
void expandStoredInst(const RuntimeLayout &L, const vea::MInst &I,
                      uint32_t WriteAddr, std::vector<uint32_t> &Out);

/// CRC32 of a word sequence viewed as little-endian bytes, as stored in
/// RegionImageInfo::Crc32.
uint32_t expandedWordsCrc(const std::vector<uint32_t> &Words);

/// Relocates a region's expanded words from \p FromBase to \p ToBase (both
/// first-data-word addresses). Regions are lowered against the canonical
/// base (slot 0); a branch whose target lies *inside* the region is
/// position-independent and untouched, while one that escapes the region
/// (entry stubs, never-compressed code, decompressor entry points) must
/// absorb the slot displacement. Fails with LayoutError if an adjusted
/// displacement no longer fits disp21.
vea::Status relocateRegionWords(std::vector<uint32_t> &Words,
                                uint32_t FromBase, uint32_t ToBase);

/// Builds the squashed image. \p BufferSafeFuncs comes from
/// analyzeBufferSafe (pass all-zeros to disable the optimization). Fails
/// with InvalidArgument on mismatched inputs, LayoutError when a branch or
/// region does not fit its encoding, or EncodingError from the compressor.
/// \p Plan carries the codec-select pass's per-region coder choices; the
/// default (empty) plan encodes every region with the Huffman coder.
/// \p FuncOrder places never-compressed code in an explicit function order
/// (the layout pass's verdict); empty means program order, and the image
/// is then byte-identical to what the parameterless order produced before
/// the layout pass existed. Placement is whole-function, so blocks keep
/// their in-function order and fallthrough chains are never broken.
vea::Expected<SquashedProgram>
rewriteProgram(const vea::Program &Prog, const vea::Cfg &G,
               const Partition &Part,
               const std::vector<uint8_t> &BufferSafeFuncs,
               const Options &Opts, CodecPlan Plan = CodecPlan(),
               const std::vector<unsigned> &FuncOrder = {});

/// Records the final function placement into \p SP (the inspector's
/// function-order surface): one entry per function in emission order with
/// its entry address in the built image. An empty \p FuncOrder (identity
/// placement) records nothing.
void recordFunctionOrder(SquashedProgram &SP, const vea::Program &Prog,
                         const std::vector<unsigned> &FuncOrder);

/// Runs the rewriter's lowering phases only (entries, expanded offsets,
/// layout, region lowering) and returns each region's stored instruction
/// sequence — exactly what rewriteProgram will hand the region coder. The
/// codec-select pass trial-encodes this corpus to choose per-region
/// coders without building the image twice.
vea::Expected<std::vector<std::vector<vea::MInst>>>
lowerStoredRegions(const vea::Program &Prog, const vea::Cfg &G,
                   const Partition &Part,
                   const std::vector<uint8_t> &BufferSafeFuncs,
                   const Options &Opts);

} // namespace squash

#endif // SQUASH_SQUASH_REWRITER_H
