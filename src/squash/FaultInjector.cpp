//===- squash/FaultInjector.cpp - Deterministic image corruption ----------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/FaultInjector.h"

#include "support/Checksum.h"
#include "support/Span.h"

#include <algorithm>

using namespace squash;
using namespace vea;

const char *squash::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::BlobBitFlip:
    return "blob-bit-flip";
  case FaultKind::OffsetTableEntry:
    return "offset-table-entry";
  case FaultKind::StubSlotWord:
    return "stub-slot-word";
  case FaultKind::EntryStubTag:
    return "entry-stub-tag";
  case FaultKind::BufferShrink:
    return "buffer-shrink";
  case FaultKind::BufferGrow:
    return "buffer-grow";
  case FaultKind::BlobTruncate:
    return "blob-truncate";
  case FaultKind::NCCodeBitFlip:
    return "nc-code-bit-flip";
  case FaultKind::SlotMapEntry:
    return "slot-map-entry";
  case FaultKind::StagingCorrupt:
    return "staging-corrupt";
  case FaultKind::PublishOffsetSkew:
    return "publish-offset-skew";
  case FaultKind::EpochPinLeak:
    return "epoch-pin-leak";
  case FaultKind::PrefetchSlotCorrupt:
    return "prefetch-slot-corrupt";
  case FaultKind::DecodeTableTruncated:
    return "decode-table-truncated";
  case FaultKind::CodecTableCorrupt:
    return "codec-table-corrupt";
  }
  return "unknown";
}

static FaultReport report(FaultKind K, uint32_t Addr, std::string Desc) {
  FaultReport FR;
  FR.Kind = K;
  FR.Addr = Addr;
  FR.Description = std::move(Desc);
  // Every successful injection funnels through here; give the flight
  // recorder its trigger (with the live span stack) at the moment the
  // image is mutated, not when the corruption is later detected.
  SpanScope Sp("fault.inject", "fault");
  Sp.setArgs(static_cast<uint64_t>(K), Addr);
  if (FlightRecorder::armed())
    FlightRecorder::instance().noteFault("fault-injector", FR.Description);
  return FR;
}

std::optional<FaultReport> FaultInjector::inject(SquashedProgram &SP,
                                                FaultKind K) {
  RuntimeLayout &L = SP.Layout;
  Image &Img = SP.Img;
  // Only squashed images (with runtime machinery) can be corrupted in the
  // structures this harness targets.
  if (L.DecompEnd == L.DecompBase)
    return std::nullopt;

  switch (K) {
  case FaultKind::BlobBitFlip: {
    if (L.BlobBytes == 0)
      return std::nullopt;
    uint64_t Bit = R.nextBelow(8ull * L.BlobBytes);
    uint32_t Addr = L.BlobBase + static_cast<uint32_t>(Bit / 8);
    Img.Bytes[Addr - Img.Base] ^= static_cast<uint8_t>(1u << (Bit % 8));
    return report(K, Addr,
                  "flipped blob bit " + std::to_string(Bit) + " (byte " +
                      std::to_string(Addr) + ")");
  }

  case FaultKind::OffsetTableEntry: {
    if (SP.Regions.empty())
      return std::nullopt;
    uint32_t Region =
        static_cast<uint32_t>(R.nextBelow(SP.Regions.size()));
    uint32_t Addr = L.OffsetTableBase + 4 * Region;
    uint32_t Old = Img.word(Addr);
    uint32_t New;
    do {
      New = static_cast<uint32_t>(R.next());
    } while (New == Old);
    Img.setWord(Addr, New);
    return report(K, Addr,
                  "offset table entry " + std::to_string(Region) + ": " +
                      std::to_string(Old) + " -> " + std::to_string(New));
  }

  case FaultKind::StubSlotWord: {
    if (L.StubSlots == 0)
      return std::nullopt;
    uint32_t Words = RuntimeLayout::StubSlotWords * L.StubSlots;
    uint32_t Addr = L.StubAreaBase + 4 * static_cast<uint32_t>(
                                             R.nextBelow(Words));
    uint32_t Old = Img.word(Addr);
    uint32_t New;
    do {
      New = static_cast<uint32_t>(R.next());
    } while (New == Old);
    Img.setWord(Addr, New);
    return report(K, Addr,
                  "stub area word at " + std::to_string(Addr) + ": " +
                      std::to_string(Old) + " -> " + std::to_string(New));
  }

  case FaultKind::EntryStubTag: {
    if (SP.StubOf.empty())
      return std::nullopt;
    // Pick the n-th stub in a deterministic (sorted) order; the map's
    // iteration order is not stable across libraries.
    std::vector<uint32_t> Stubs;
    Stubs.reserve(SP.StubOf.size());
    for (const auto &[Name, Addr] : SP.StubOf)
      Stubs.push_back(Addr);
    std::sort(Stubs.begin(), Stubs.end());
    uint32_t StubAddr = Stubs[R.nextBelow(Stubs.size())];
    uint32_t TagAddr = StubAddr + 4; // Word 1 of [bsr, tag].
    uint32_t Old = Img.word(TagAddr);
    // Never fabricate another *valid* tag: that would be a legitimate
    // control transfer, not a detectable fault.
    uint32_t New;
    do {
      New = static_cast<uint32_t>(R.next());
    } while (New == Old || SP.ValidEntryTags.count(New));
    Img.setWord(TagAddr, New);
    return report(K, TagAddr,
                  "entry stub tag at " + std::to_string(TagAddr) + ": " +
                      std::to_string(Old) + " -> " + std::to_string(New));
  }

  case FaultKind::BufferShrink: {
    if (L.BufferWords < 2)
      return std::nullopt;
    // The layout sizes the buffer as 1 + max(ExpandedWords), so any shrink
    // leaves at least one region that no longer fits.
    uint32_t Old = L.BufferWords;
    L.BufferWords = 1 + static_cast<uint32_t>(R.nextBelow(Old - 1));
    return report(K, L.BufferBase,
                  "buffer shrunk from " + std::to_string(Old) + " to " +
                      std::to_string(L.BufferWords) + " words");
  }

  case FaultKind::BufferGrow: {
    // The data segment starts immediately after the buffer, so any growth
    // overlaps it.
    uint32_t Old = L.BufferWords;
    L.BufferWords += 1 + static_cast<uint32_t>(R.nextBelow(64));
    return report(K, L.BufferBase,
                  "buffer grown from " + std::to_string(Old) + " to " +
                      std::to_string(L.BufferWords) + " words");
  }

  case FaultKind::BlobTruncate: {
    if (L.BlobBytes == 0)
      return std::nullopt;
    uint32_t Cut = 1 + static_cast<uint32_t>(R.nextBelow(L.BlobBytes));
    L.BlobBytes -= Cut;
    Img.Bytes.resize(L.BlobBase - Img.Base + L.BlobBytes);
    return report(K, L.BlobBase + L.BlobBytes,
                  "blob truncated by " + std::to_string(Cut) + " bytes to " +
                      std::to_string(L.BlobBytes));
  }

  case FaultKind::NCCodeBitFlip: {
    if (L.DecompBase <= Img.Base)
      return std::nullopt;
    uint64_t Bit = R.nextBelow(8ull * (L.DecompBase - Img.Base));
    uint32_t Addr = Img.Base + static_cast<uint32_t>(Bit / 8);
    Img.Bytes[Addr - Img.Base] ^= static_cast<uint8_t>(1u << (Bit % 8));
    return report(K, Addr,
                  "flipped code bit " + std::to_string(Bit) + " (byte " +
                      std::to_string(Addr) + ")");
  }

  case FaultKind::SlotMapEntry: {
    if (L.CacheSlots == 0 || L.SlotMapBase == 0)
      return std::nullopt;
    uint32_t Slot = static_cast<uint32_t>(R.nextBelow(L.CacheSlots));
    uint32_t Addr = L.SlotMapBase + 4 * Slot;
    uint32_t Old = Img.word(Addr);
    uint32_t New;
    do {
      New = static_cast<uint32_t>(R.next());
    } while (New == Old);
    Img.setWord(Addr, New);
    return report(K, Addr,
                  "slot map entry " + std::to_string(Slot) + ": " +
                      std::to_string(Old) + " -> " + std::to_string(New));
  }

  case FaultKind::StagingCorrupt: {
    // One bit anywhere in the checksummed content: the immutable prefix
    // [Base, StubAreaBase) covered by ImageCrc32, or the blob covered by
    // BlobCrc32. CRC-validated staging must reject the image either way.
    uint64_t PrefixBits = 8ull * (L.StubAreaBase - Img.Base);
    uint64_t TotalBits = PrefixBits + 8ull * L.BlobBytes;
    if (TotalBits == 0)
      return std::nullopt;
    uint64_t Bit = R.nextBelow(TotalBits);
    uint32_t Addr = Bit < PrefixBits
                        ? Img.Base + static_cast<uint32_t>(Bit / 8)
                        : L.BlobBase +
                              static_cast<uint32_t>((Bit - PrefixBits) / 8);
    Img.Bytes[Addr - Img.Base] ^= static_cast<uint8_t>(1u << (Bit % 8));
    return report(K, Addr,
                  "flipped checksummed bit " + std::to_string(Bit) +
                      " (byte " + std::to_string(Addr) + ")");
  }

  case FaultKind::PublishOffsetSkew: {
    if (SP.Regions.empty())
      return std::nullopt;
    uint32_t Region = static_cast<uint32_t>(R.nextBelow(SP.Regions.size()));
    uint32_t Addr = L.OffsetTableBase + 4 * Region;
    uint32_t Old = Img.word(Addr);
    uint32_t New;
    do {
      New = static_cast<uint32_t>(R.next());
    } while (New == Old);
    Img.setWord(Addr, New);
    // Refresh the prefix checksum: the offset table lies inside the
    // CRC-covered prefix, so without this the fault would collapse into
    // StagingCorrupt. With it, only the table-vs-metadata cross-check
    // (publication gate, attach validation, or the lazy fill check) sees
    // the skew.
    L.ImageCrc32 =
        vea::crc32(Img.Bytes.data(), L.StubAreaBase - Img.Base);
    return report(K, Addr,
                  "offset table entry " + std::to_string(Region) +
                      " skewed (" + std::to_string(Old) + " -> " +
                      std::to_string(New) + ") with image CRC refreshed");
  }

  case FaultKind::EpochPinLeak:
    // A retirement fault, not an image fault: armed on the controller
    // (ResquashController::armEpochPinLeak), which then "forgets" to
    // unpin a served version.
    return std::nullopt;

  case FaultKind::PrefetchSlotCorrupt: {
    // Host-memory fault in the decode-ahead staging buffer. Armed rather
    // than applied: the runtime flips a bit in the Nth prefetch it is
    // about to consume, immediately before the CRC re-check that must
    // catch it.
    if (!SP.Opts.DecodeAhead || SP.Regions.empty())
      return std::nullopt;
    uint32_t Nth = 1 + static_cast<uint32_t>(R.nextBelow(3));
    SP.ArmPrefetchCorrupt = Nth;
    return report(K, 0,
                  "armed corruption of consumed prefetch #" +
                      std::to_string(Nth));
  }

  case FaultKind::DecodeTableTruncated: {
    // Truncate a non-empty stream code's value list in the host mirror.
    // StreamCodecs::validate() at attach must reject the image cleanly.
    // Attach only validates codecs some region references, so a mirror
    // with no Huffman region would mask the corruption — inapplicable.
    bool AnyHuffman = false;
    for (const RegionImageInfo &RI : SP.Regions)
      AnyHuffman |= RI.Codec == static_cast<uint8_t>(CodecKind::Huffman);
    if (!AnyHuffman)
      return std::nullopt;
    std::vector<unsigned> Candidates;
    for (unsigned FK = 0; FK != vea::NumFieldKinds; ++FK)
      if (!SP.Codecs.code(static_cast<vea::FieldKind>(FK)).empty())
        Candidates.push_back(FK);
    if (Candidates.empty())
      return std::nullopt;
    unsigned FK = Candidates[R.nextBelow(Candidates.size())];
    SP.Codecs.codeForFault(static_cast<vea::FieldKind>(FK))
        .truncateValueListForFault();
    return report(K, 0,
                  std::string("truncated the ") +
                      vea::fieldKindName(static_cast<vea::FieldKind>(FK)) +
                      " stream's value list");
  }

  case FaultKind::CodecTableCorrupt: {
    // Damage a non-Huffman codec's host-mirror table: the pattern coder's
    // selector code or the context coder's merged-fallback opcode table.
    // Attach's per-codec validate() must reject the image before any trap
    // could decode through the broken table.
    bool AnyPattern = false, AnyContext = false;
    for (const RegionImageInfo &RI : SP.Regions) {
      AnyPattern |= RI.Codec == static_cast<uint8_t>(CodecKind::Pattern);
      AnyContext |= RI.Codec == static_cast<uint8_t>(CodecKind::Context);
    }
    if (!AnyPattern && !AnyContext)
      return std::nullopt;
    bool HitPattern =
        AnyPattern && (!AnyContext || R.nextBelow(2) == 0);
    if (HitPattern) {
      SP.Pattern.selectorCodeForFault().truncateValueListForFault();
      return report(K, 0,
                    "truncated the pattern codec's selector value list");
    }
    SP.Context.opcodeTableForFault(0).truncateValueListForFault();
    return report(K, 0,
                  "truncated the context codec's fallback opcode table");
  }
  }
  return std::nullopt;
}

std::optional<FaultReport>
FaultInjector::injectAny(SquashedProgram &SP,
                         const std::vector<FaultKind> &Kinds) {
  if (Kinds.empty())
    return std::nullopt;
  // Start at a random kind and rotate until one applies; inject() only
  // draws from the generator once it has committed to a mutation site, so
  // inapplicable kinds do not perturb the sequence.
  size_t Start = R.nextBelow(Kinds.size());
  for (size_t I = 0; I != Kinds.size(); ++I) {
    if (std::optional<FaultReport> FR =
            inject(SP, Kinds[(Start + I) % Kinds.size()]))
      return FR;
  }
  return std::nullopt;
}
