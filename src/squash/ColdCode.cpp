//===- squash/ColdCode.cpp - Profile-based cold code identification -------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/ColdCode.h"

#include <algorithm>

using namespace squash;

vea::Expected<ColdCodeResult>
squash::identifyColdCode(const vea::Cfg &G, const vea::Profile &Prof,
                         double Theta, uint64_t CutoffCap) {
  if (Prof.BlockCounts.size() != G.numBlocks())
    return vea::Status::error(
        vea::StatusCode::InvalidArgument,
        "cold-code: profile has " +
            std::to_string(Prof.BlockCounts.size()) + " blocks, program has " +
            std::to_string(G.numBlocks()));

  ColdCodeResult R;
  R.IsCold.assign(G.numBlocks(), 0);

  // Consider blocks in increasing order of execution frequency and find the
  // largest frequency N whose cumulative weight stays within
  // θ * tot_instr_ct. weight(b) = |b| * freq(b).
  std::vector<unsigned> Order(G.numBlocks());
  for (unsigned I = 0; I != G.numBlocks(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    return Prof.BlockCounts[A] < Prof.BlockCounts[B];
  });

  const double Budget = Theta * static_cast<double>(Prof.TotalInstructions);
  double Cum = 0.0;
  uint64_t Cutoff = 0;
  size_t I = 0;
  while (I < Order.size()) {
    // Frequency classes are admitted whole: every block with freq <= N is
    // cold, so a class that does not fit entirely ends the scan.
    uint64_t Freq = Prof.BlockCounts[Order[I]];
    if (Freq > CutoffCap)
      break;
    double ClassWeight = 0.0;
    size_t J = I;
    while (J < Order.size() && Prof.BlockCounts[Order[J]] == Freq) {
      ClassWeight += static_cast<double>(G.block(Order[J]).size()) *
                     static_cast<double>(Freq);
      ++J;
    }
    if (Cum + ClassWeight > Budget && Freq > 0)
      break;
    Cum += ClassWeight;
    Cutoff = Freq;
    I = J;
  }

  R.FrequencyCutoff = Cutoff;
  for (unsigned Id = 0; Id != G.numBlocks(); ++Id) {
    R.TotalInstructions += G.block(Id).size();
    if (Prof.BlockCounts[Id] <= Cutoff) {
      R.IsCold[Id] = 1;
      R.ColdInstructions += G.block(Id).size();
    }
  }
  return R;
}
