//===- squash/LayoutPass.h - Profile-guided function layout ----*- C++ -*-===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "layout" pass: profile-guided placement of the hot (never-
/// compressed) half of the program. The paper compresses cold code and
/// leaves the hot residue in program order; with the simulated I-cache
/// (sim/Icache.h) that order becomes a measurable cost, and this pass
/// spends the profile on it, following the function-layout line of
/// "Optimizing Function Layout for Mobile Applications" (PAPERS.md) and
/// the classic Pettis-Hansen / C3 greedy chain merge:
///
///   1. Build a function-level adjacency graph: an edge (F, G) weighted by
///      the execution count of every block of F that direct-calls G.
///   2. Merge function chains greedily by descending edge weight (caller's
///      chain followed by callee's chain), deterministic tie-breaks.
///   3. Concatenate chains by descending heat; functions the profile never
///      saw keep program order at the end.
///
/// Placement is whole-function only — blocks keep their in-function order
/// — so fallthrough edges never cross a placement seam and guest behaviour
/// is byte-identical under any order (the rewriter re-resolves every
/// displacement). The pass runs between codec-select and rewrite and
/// writes PipelineContext::FuncOrder, which RewritePass feeds to the
/// rewriter (or, for identity images, straight to link/Layout's explicit-
/// order overload). Gated by Options::ProfileLayout (default off: emits
/// the identity order, keeping every existing image byte-stable).
///
//===----------------------------------------------------------------------===//

#ifndef SQUASH_SQUASH_LAYOUTPASS_H
#define SQUASH_SQUASH_LAYOUTPASS_H

#include "squash/Pipeline.h"

#include <vector>

namespace squash {

/// Computes the hot-half function placement for \p G under \p Prof: a
/// permutation of function indices (C3-style greedy chain merge over the
/// call-adjacency graph). Deterministic for a given CFG and profile.
/// Exposed separately from the pass so benches can lay out an *unsquashed*
/// program with the same policy (bench/stat_layout's squash-off arms).
std::vector<unsigned> computeFunctionLayout(const vea::Cfg &G,
                                            const vea::Profile &Prof);

/// The "layout" pass (between codec-select and rewrite).
class LayoutPass final : public Pass {
public:
  const char *name() const override { return "layout"; }
  double SquashStats::*statSlot() const override {
    return &SquashStats::LayoutSeconds;
  }
  vea::Status run(PipelineContext &Ctx) override;
  vea::Status runDisabled(PipelineContext &Ctx) override;
};

} // namespace squash

#endif // SQUASH_SQUASH_LAYOUTPASS_H
