//===- squash/Driver.cpp - The squash pipeline ----------------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Driver.h"

#include "squash/Pipeline.h"
#include "support/Span.h"

using namespace squash;
using namespace vea;

Expected<SquashResult> squash::squashProgram(Program Prog, const Profile &Prof,
                                             const Options &Opts) {
  SpanScope Root("squash.program", "pipeline");
  // The pipeline's passes assume a well-formed program (the Cfg builder
  // aborts on dangling labels); reject bad input here, recoverably.
  if (std::string Err = Prog.verify(); !Err.empty())
    return Status::error(StatusCode::MalformedProgram,
                         "squash: input does not verify: " + Err);

  SquashResult R;
  PipelineContext Ctx(Prog, Prof, Opts, R);
  PassManager PM;
  buildStandardPipeline(PM);
  if (Status St = PM.run(Ctx); !St.ok())
    return St;
  Root.setArgs(R.SP.Regions.size(), R.SP.Img.Bytes.size());
  return R;
}

SquashedRun squash::runSquashed(const SquashedProgram &SP,
                                std::vector<uint8_t> Input,
                                uint64_t MaxInstructions,
                                uint32_t TraceCapacity,
                                TrapObserver *Observer) {
  SpanScope Root("run.squashed", "driver");
  Machine::Config Cfg;
  Cfg.MaxInstructions = MaxInstructions;
  Cfg.Icache = SP.Opts.Icache;
  Machine M(SP.Img, Cfg);
  RuntimeSystem RT(SP);
  if (TraceCapacity)
    RT.enableTrace(TraceCapacity);
  RT.setTrapObserver(Observer);
  SquashedRun Out;
  {
    SpanScope Attach("runtime.attach", "driver");
    if (Status St = RT.attach(M); !St.ok()) {
      Out.Run.Status = RunStatus::Fault;
      Out.Run.FaultMessage = St.toString();
      Out.Runtime = RT.stats();
      return Out;
    }
  }
  M.setInput(std::move(Input));
  {
    SpanScope Exec("machine.run", "driver");
    Out.Run = M.run();
    Exec.setEndCycles(Out.Run.Cycles);
    Exec.setArgs(Out.Run.Instructions, Out.Run.Cycles);
  }
  Root.setEndCycles(Out.Run.Cycles);
  Out.Runtime = RT.stats();
  Out.Output = M.output();
  if (TraceCapacity) {
    Out.Trace = RT.events();
    Out.TraceDropped = RT.droppedEvents();
  }
  return Out;
}

void SquashStats::exportMetrics(vea::MetricsRegistry &R,
                                const std::string &Prefix) const {
  R.setGauge(Prefix + "cold_seconds", ColdSeconds);
  R.setGauge(Prefix + "unswitch_seconds", UnswitchSeconds);
  R.setGauge(Prefix + "region_seconds", RegionSeconds);
  R.setGauge(Prefix + "buffersafe_seconds", BufferSafeSeconds);
  R.setGauge(Prefix + "codec_select_seconds", CodecSelectSeconds);
  R.setGauge(Prefix + "layout_seconds", LayoutSeconds);
  R.setGauge(Prefix + "rewrite_seconds", RewriteSeconds);
  R.setGauge(Prefix + "encode_seconds", EncodeSeconds);
  R.setGauge(Prefix + "total_seconds", TotalSeconds);
  R.setCounter(Prefix + "encode_threads", EncodeThreads);
}

Expected<Profile> squash::profileImage(const Image &Img,
                                       std::vector<uint8_t> Input) {
  Machine::Config Cfg;
  Cfg.CollectBlockProfile = true;
  Machine M(Img, Cfg);
  M.setInput(std::move(Input));
  RunResult RR = M.run();
  if (RR.Status != RunStatus::Halted)
    return Status::error(StatusCode::RuntimeFault,
                         "profileImage: program did not halt cleanly: " +
                             RR.FaultMessage);
  return M.takeProfile();
}
