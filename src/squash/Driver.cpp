//===- squash/Driver.cpp - The squash pipeline ----------------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Driver.h"

#include "link/Layout.h"

#include <chrono>

using namespace squash;
using namespace vea;

namespace {
/// Seconds since \p Since, advancing it to now (per-stage stopwatch).
double lapSeconds(std::chrono::steady_clock::time_point &Since) {
  auto Now = std::chrono::steady_clock::now();
  double S = std::chrono::duration<double>(Now - Since).count();
  Since = Now;
  return S;
}
} // namespace

Expected<SquashResult> squash::squashProgram(Program Prog, const Profile &Prof,
                                             const Options &Opts) {
  // The pipeline's passes assume a well-formed program (the Cfg builder
  // aborts on dangling labels); reject bad input here, recoverably.
  if (std::string Err = Prog.verify(); !Err.empty())
    return Status::error(StatusCode::MalformedProgram,
                         "squash: input does not verify: " + Err);

  SquashResult R;
  const uint32_t OriginalCodeBytes =
      static_cast<uint32_t>(4 * Prog.instructionCount());
  const auto Start = std::chrono::steady_clock::now();
  auto Lap = Start;

  // Section 5: cold code.
  {
    Cfg G0(Prog);
    Expected<ColdCodeResult> Cold =
        identifyColdCode(G0, Prof, Opts.Theta, Opts.ColdCutoffCap);
    if (!Cold)
      return Cold.status();
    R.Cold = std::move(Cold.get());
  }
  R.Stats.ColdSeconds = lapSeconds(Lap);

  // Section 6.2: unswitch cold jump tables (block ids are stable across
  // this pass, so the cold flags remain valid).
  std::vector<uint8_t> Candidate = R.Cold.IsCold;
  Expected<UnswitchStats> US =
      unswitchJumpTables(Prog, Candidate, Opts.Unswitch);
  if (!US)
    return US.status();
  R.Unswitch = US.get();

  Cfg G(Prog);

  // Remaining candidacy filters (Section 2.2 and conservatism around
  // indirect control flow).
  for (unsigned Id = 0; Id != G.numBlocks(); ++Id) {
    if (!Candidate[Id])
      continue;
    if (G.functionCallsSetjmp(G.functionOf(Id))) {
      Candidate[Id] = 0; // setjmp callers are never compressed.
      continue;
    }
    if (G.hasIndirectCall(Id)) {
      // Indirect calls from the buffer would need Jsr expansion; squash
      // conservatively leaves such blocks uncompressed (see DESIGN.md).
      Candidate[Id] = 0;
      continue;
    }
  }
  // A computed jump with unknown targets poisons its whole function.
  for (unsigned Id = 0; Id != G.numBlocks(); ++Id) {
    const BasicBlock &B = G.block(Id);
    if (B.Insts.back().Op == Opcode::Jmp && !B.Switch) {
      unsigned F = G.functionOf(Id);
      for (unsigned J = 0; J != G.numBlocks(); ++J)
        if (G.functionOf(J) == F)
          Candidate[J] = 0;
    }
  }

  R.Stats.UnswitchSeconds = lapSeconds(Lap);

  // Section 4: regions.
  Expected<Partition> PartOr = formRegions(G, Candidate, Opts, &R.Regions);
  if (!PartOr)
    return PartOr.status();
  Partition Part = std::move(PartOr.get());
  R.Stats.RegionSeconds = lapSeconds(Lap);

  if (Part.Regions.empty()) {
    // Nothing profitable to compress: emit the program unchanged.
    R.Identity = true;
    Expected<Image> Img = layoutProgramOrError(Prog);
    if (!Img)
      return Img.status();
    R.SP.Img = std::move(Img.get());
    R.SP.Opts = Opts;
    R.SP.ProfileBlockCount = static_cast<uint32_t>(Prof.BlockCounts.size());
    R.SP.Footprint.NeverCompressedWords =
        static_cast<uint32_t>(Prog.instructionCount());
    R.SP.Footprint.OriginalCodeBytes = OriginalCodeBytes;
    R.Stats.TotalSeconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - Start)
                               .count();
    return R;
  }

  // Section 6.1: buffer safety.
  std::vector<uint8_t> Safe = analyzeBufferSafe(G, Part, &R.BufferSafe);
  R.Stats.BufferSafeSeconds = lapSeconds(Lap);

  // Section 2: rewrite.
  Expected<SquashedProgram> SPOr = rewriteProgram(Prog, G, Part, Safe, Opts);
  if (!SPOr)
    return SPOr.status();
  R.SP = std::move(SPOr.get());
  R.SP.Footprint.OriginalCodeBytes = OriginalCodeBytes;
  R.SP.ProfileBlockCount = static_cast<uint32_t>(Prof.BlockCounts.size());
  R.Stats.RewriteSeconds = lapSeconds(Lap);
  R.Stats.EncodeSeconds = R.SP.Encode.Seconds;
  R.Stats.EncodeThreads = R.SP.Encode.ThreadsUsed;
  R.Stats.TotalSeconds =
      std::chrono::duration<double>(Lap - Start).count();
  return R;
}

SquashedRun squash::runSquashed(const SquashedProgram &SP,
                                std::vector<uint8_t> Input,
                                uint64_t MaxInstructions,
                                uint32_t TraceCapacity,
                                TrapObserver *Observer) {
  Machine::Config Cfg;
  Cfg.MaxInstructions = MaxInstructions;
  Machine M(SP.Img, Cfg);
  RuntimeSystem RT(SP);
  if (TraceCapacity)
    RT.enableTrace(TraceCapacity);
  RT.setTrapObserver(Observer);
  SquashedRun Out;
  if (Status St = RT.attach(M); !St.ok()) {
    Out.Run.Status = RunStatus::Fault;
    Out.Run.FaultMessage = St.toString();
    Out.Runtime = RT.stats();
    return Out;
  }
  M.setInput(std::move(Input));
  Out.Run = M.run();
  Out.Runtime = RT.stats();
  Out.Output = M.output();
  if (TraceCapacity) {
    Out.Trace = RT.events();
    Out.TraceDropped = RT.droppedEvents();
  }
  return Out;
}

void SquashStats::exportMetrics(vea::MetricsRegistry &R,
                                const std::string &Prefix) const {
  R.setGauge(Prefix + "cold_seconds", ColdSeconds);
  R.setGauge(Prefix + "unswitch_seconds", UnswitchSeconds);
  R.setGauge(Prefix + "region_seconds", RegionSeconds);
  R.setGauge(Prefix + "buffersafe_seconds", BufferSafeSeconds);
  R.setGauge(Prefix + "rewrite_seconds", RewriteSeconds);
  R.setGauge(Prefix + "encode_seconds", EncodeSeconds);
  R.setGauge(Prefix + "total_seconds", TotalSeconds);
  R.setCounter(Prefix + "encode_threads", EncodeThreads);
}

Expected<Profile> squash::profileImage(const Image &Img,
                                       std::vector<uint8_t> Input) {
  Machine::Config Cfg;
  Cfg.CollectBlockProfile = true;
  Machine M(Img, Cfg);
  M.setInput(std::move(Input));
  RunResult RR = M.run();
  if (RR.Status != RunStatus::Halted)
    return Status::error(StatusCode::RuntimeFault,
                         "profileImage: program did not halt cleanly: " +
                             RR.FaultMessage);
  return M.takeProfile();
}
