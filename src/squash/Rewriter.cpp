//===- squash/Rewriter.cpp - Squashed image construction ------------------===//
//
// Part of the squash project: a reproduction of "Profile-Guided Code
// Compression" (Debray & Evans, PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "squash/Rewriter.h"

#include "support/Checksum.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>

using namespace squash;
using namespace vea;

/// Branch-format displacement from instruction address \p From to
/// \p Target; must match the runtime decompressor's arithmetic.
static int32_t rtDisp(uint32_t From, uint32_t Target) {
  return (static_cast<int32_t>(Target) - static_cast<int32_t>(From) - 4) / 4;
}

void squash::expandStoredInst(const RuntimeLayout &L, const MInst &I,
                              uint32_t WriteAddr,
                              std::vector<uint32_t> &Out) {
  if (I.Op == Opcode::Bsrx) {
    // Expand to: bsr ra, CreateStub(ra) ; br r31, <stored disp>.
    unsigned Ra = I.ra();
    MInst Call = makeBranch(Opcode::Bsr, Ra,
                            rtDisp(WriteAddr, L.createStubEntry(Ra)));
    MInst Jump = makeBranch(Opcode::Br, RegZero, I.disp21());
    Out.push_back(encode(Call));
    Out.push_back(encode(Jump));
    return;
  }
  Out.push_back(encode(I));
}

Status squash::relocateRegionWords(std::vector<uint32_t> &Words,
                                   uint32_t FromBase, uint32_t ToBase) {
  if (FromBase == ToBase)
    return Status::success();
  const int64_t SlideWords =
      (static_cast<int64_t>(ToBase) - static_cast<int64_t>(FromBase)) / 4;
  const uint32_t RegionEnd =
      FromBase + 4 * static_cast<uint32_t>(Words.size());
  for (size_t I = 0; I != Words.size(); ++I) {
    MInst D = decode(Words[I]);
    if (!isBranchFormat(D.Op))
      continue;
    // Target as lowered at the canonical base. Branches that stay inside
    // the region slide with it; branches that escape it must compensate.
    uint32_t A = FromBase + 4 * static_cast<uint32_t>(I);
    int64_t Target = static_cast<int64_t>(A) + 4 + 4ll * D.disp21();
    if (Target >= FromBase && Target < RegionEnd)
      continue;
    int64_t NewDisp = static_cast<int64_t>(D.disp21()) - SlideWords;
    if (NewDisp < -(1 << 20) || NewDisp >= (1 << 20))
      return Status::error(StatusCode::LayoutError,
                           "relocate: branch displacement out of range for "
                           "cache slot");
    Words[I] = encode(makeBranch(D.Op, D.ra(), static_cast<int32_t>(NewDisp)));
  }
  return Status::success();
}

uint32_t squash::expandedWordsCrc(const std::vector<uint32_t> &Words) {
  uint32_t Crc = 0;
  for (uint32_t W : Words) {
    uint8_t B[4] = {static_cast<uint8_t>(W), static_cast<uint8_t>(W >> 8),
                    static_cast<uint8_t>(W >> 16),
                    static_cast<uint8_t>(W >> 24)};
    Crc = crc32(B, 4, Crc);
  }
  return Crc;
}

namespace {

class Rewriter {
public:
  Rewriter(const Program &Prog, const Cfg &G, const Partition &Part,
           const std::vector<uint8_t> &Safe, const Options &Opts,
           CodecPlan Plan = CodecPlan(),
           std::vector<unsigned> FuncOrder = {})
      : Prog(Prog), G(G), Part(Part), Safe(Safe), Opts(Opts),
        Plan(std::move(Plan)), FuncOrder(std::move(FuncOrder)),
        HadExplicitOrder(!this->FuncOrder.empty()) {}

  Expected<SquashedProgram> run();
  /// Lowering phases only; returns the stored-region corpus.
  Expected<std::vector<std::vector<MInst>>> preview();

private:
  /// Block id of the fallthrough successor, or -1.
  int32_t ftOf(unsigned B) const {
    if (!G.block(B).canFallThrough())
      return -1;
    const BlockRef &R = G.ref(B);
    if (R.BlockIdx + 1 >= Prog.Functions[R.FuncIdx].Blocks.size())
      return -1;
    return static_cast<int32_t>(B + 1);
  }

  /// True if a region block needs an explicit branch appended for its
  /// fallthrough edge (target not adjacent in the region layout).
  bool regionNeedsBr(unsigned B) const {
    int32_t Ft = ftOf(B);
    return Ft >= 0 && Part.RegionOf[Ft] != Part.RegionOf[B];
  }
  /// Same for a never-compressed block (targets that got compressed moved
  /// away; never-compressed neighbours stay adjacent).
  bool ncNeedsBr(unsigned B) const {
    int32_t Ft = ftOf(B);
    return Ft >= 0 && Part.RegionOf[Ft] >= 0;
  }

  /// True if call instruction \p I needs restore-stub treatment (becomes
  /// Bsrx). Every call out of compressed code does, unless the callee is
  /// buffer-safe (Section 6.1): even a callee in the *same* region may
  /// reach other regions and return with the buffer holding someone else,
  /// so only buffer-safety can justify a plain call.
  bool isStubCall(const Inst &I, int32_t /*Self*/) const {
    if (I.Op != Opcode::Bsr || I.Reloc != RelocKind::BranchDisp)
      return false;
    unsigned Callee = G.idOf(I.Symbol);
    if (Opts.BufferSafeCalls && Safe[G.functionOf(Callee)])
      return false; // Section 6.1.
    return true;
  }

  /// Final address external code should use to reach block \p B.
  Expected<uint32_t> redirect(unsigned B) const {
    if (Part.RegionOf[B] < 0)
      return NCAddr[B];
    int32_t S = StubIndexOf[B];
    if (S < 0)
      return Status::error(StatusCode::LayoutError,
                           "rewriter: reference to compressed block '" +
                               G.block(B).Label + "' without an entry stub");
    return StubAddrs[S];
  }

  static Expected<int32_t> brDisp(uint32_t From, uint32_t Target) {
    int64_t D = (static_cast<int64_t>(Target) -
                 (static_cast<int64_t>(From) + 4)) /
                4;
    if ((static_cast<int64_t>(Target) - (static_cast<int64_t>(From) + 4)) %
            4 !=
        0)
      return Status::error(StatusCode::LayoutError,
                           "rewriter: misaligned branch target");
    if (D < -(1 << 20) || D >= (1 << 20))
      return Status::error(StatusCode::LayoutError,
                           "rewriter: branch displacement out of range");
    return static_cast<int32_t>(D);
  }

  uint32_t bufAddr(uint32_t ExpOff) const {
    return L.BufferBase + 4 + 4 * ExpOff;
  }

  void computeEntries();
  Status computeExpandedOffsets();
  Status layout();
  Status lowerRegions();
  Status emit();

  const Program &Prog;
  const Cfg &G;
  const Partition &Part;
  const std::vector<uint8_t> &Safe;
  const Options &Opts;
  CodecPlan Plan;
  std::vector<unsigned> FuncOrder; ///< Placement order; empty = program.
  /// True when the caller supplied a placement order. layout() rewrites an
  /// empty FuncOrder to the identity, so this is latched at construction.
  bool HadExplicitOrder = false;

  SquashedProgram Out;
  RuntimeLayout L;

  /// Never-compressed block ids in emission order: functions in FuncOrder
  /// (program order when empty), blocks in function order. Built by
  /// layout(), replayed verbatim by emit() — the two walks must match or
  /// NCAddr lies. Under the identity order this equals the id-order walk
  /// the rewriter always did, so the image is byte-identical.
  std::vector<unsigned> EmitOrder;

  std::vector<int32_t> ExpOffset;   ///< Per block: offset in region layout.
  std::vector<uint32_t> NCAddr;     ///< Per block: never-compressed address.
  std::vector<int32_t> StubIndexOf; ///< Per block: entry stub index or -1.
  std::vector<unsigned> StubBlocks; ///< Stub index -> block id.
  std::vector<int32_t> StubRegion;  ///< Stub index -> region.
  std::vector<uint32_t> StubAddrs;  ///< Stub index -> address.
  std::vector<uint32_t> ExpandedWords; ///< Per region.
  std::vector<std::vector<MInst>> Stored; ///< Per region: stored insts.
  std::unordered_map<std::string, uint32_t> Syms;
  uint32_t NCWords = 0;
  uint32_t DataBase = 0;
};

} // namespace

void Rewriter::computeEntries() {
  StubIndexOf.assign(G.numBlocks(), -1);
  // One analysis for all regions: entry queries are per-region work, the
  // call-graph reversal is done once.
  RegionEntryAnalysis Entry(G);
  for (size_t R = 0; R != Part.Regions.size(); ++R) {
    std::vector<unsigned> Entries = regionEntryPoints(
        Entry, Part.Regions[R].Blocks, Part.RegionOf, static_cast<int32_t>(R));
    for (unsigned E : Entries) {
      StubIndexOf[E] = static_cast<int32_t>(StubBlocks.size());
      StubBlocks.push_back(E);
      StubRegion.push_back(static_cast<int32_t>(R));
    }
  }
}

Status Rewriter::computeExpandedOffsets() {
  ExpOffset.assign(G.numBlocks(), -1);
  ExpandedWords.assign(Part.Regions.size(), 0);
  for (size_t R = 0; R != Part.Regions.size(); ++R) {
    uint32_t Cur = 0;
    for (unsigned B : Part.Regions[R].Blocks) {
      ExpOffset[B] = static_cast<int32_t>(Cur);
      for (const auto &I : G.block(B).Insts)
        Cur += isStubCall(I, static_cast<int32_t>(R)) ? 2 : 1;
      if (regionNeedsBr(B))
        ++Cur;
    }
    ExpandedWords[R] = Cur;
    if (Cur + 1 > 0xFFFF)
      return Status::error(
          StatusCode::LayoutError,
          "rewriter: region too large for 16-bit tag offsets");
  }
  return Status::success();
}

Status Rewriter::layout() {
  uint32_t Cursor = DefaultBase;

  // Never-compressed code, functions in placement order, blocks in
  // function order. Whole-function placement keeps every in-function
  // fallthrough chain intact (compressed blocks were never adjacent to
  // their NC fallthrough anyway — ncNeedsBr covers those), so the
  // reconnection-branch rule is order-independent.
  if (FuncOrder.empty()) {
    FuncOrder.resize(G.numFunctions());
    for (unsigned F = 0; F != G.numFunctions(); ++F)
      FuncOrder[F] = F;
  }
  std::vector<std::vector<unsigned>> FuncBlocks(G.numFunctions());
  for (unsigned B = 0; B != G.numBlocks(); ++B)
    FuncBlocks[G.functionOf(B)].push_back(B);
  EmitOrder.clear();
  for (unsigned F : FuncOrder)
    for (unsigned B : FuncBlocks[F])
      if (Part.RegionOf[B] < 0)
        EmitOrder.push_back(B);

  NCAddr.assign(G.numBlocks(), 0);
  for (unsigned B : EmitOrder) {
    NCAddr[B] = Cursor;
    uint32_t Words = G.block(B).size() + (ncNeedsBr(B) ? 1 : 0);
    Cursor += 4 * Words;
    NCWords += Words;
  }

  // Entry stubs (2 words each).
  StubAddrs.resize(StubBlocks.size());
  for (size_t S = 0; S != StubBlocks.size(); ++S) {
    StubAddrs[S] = Cursor;
    Cursor += 8;
  }

  // Decompressor region.
  if (Opts.DecompressorCodeWords < RuntimeLayout::NumEntryPoints)
    return Status::error(StatusCode::InvalidArgument,
                         "rewriter: decompressor region smaller than its " +
                             std::to_string(RuntimeLayout::NumEntryPoints) +
                             " entry points");
  L.DecompBase = Cursor;
  Cursor += 4 * Opts.DecompressorCodeWords;
  L.DecompEnd = Cursor;

  // Function offset table.
  L.OffsetTableBase = Cursor;
  if (Part.Regions.size() > 0xFFFF)
    return Status::error(StatusCode::LayoutError,
                         "rewriter: too many regions for 16-bit tags");
  Cursor += 4 * static_cast<uint32_t>(Part.Regions.size());

  // Restore-stub area (4 words per slot).
  L.StubAreaBase = Cursor;
  L.StubSlots = Opts.MaxRestoreStubs;
  Cursor += 4 * RuntimeLayout::StubSlotWords * L.StubSlots;

  // Decode-cache slot map: one resident-region word per slot.
  if (Opts.CacheSlots == 0)
    return Status::error(StatusCode::InvalidArgument,
                         "rewriter: decode cache needs at least one slot");
  L.CacheSlots = Opts.CacheSlots;
  L.SlotMapBase = Cursor;
  Cursor += 4 * L.CacheSlots;

  // Runtime buffer: per cache slot, a jump slot + the largest decompressed
  // region. One slot reproduces the paper's single shared buffer.
  uint32_t MaxExpanded = 0;
  for (uint32_t W : ExpandedWords)
    MaxExpanded = std::max(MaxExpanded, W);
  L.BufferBase = Cursor;
  L.SlotWords = 1 + MaxExpanded;
  L.BufferWords = L.CacheSlots * L.SlotWords;
  Cursor += 4 * L.BufferWords;

  // Data objects.
  DataBase = Cursor;
  L.DataBase = Cursor;
  for (const auto &D : Prog.Data) {
    uint32_t Align = D.Align ? D.Align : 4;
    Cursor = (Cursor + Align - 1) / Align * Align;
    Syms[D.Name] = Cursor;
    Cursor += static_cast<uint32_t>(D.Bytes.size());
  }

  // Compressed blob (placed last so its size does not perturb any address
  // that the compressed instructions themselves encode).
  Cursor = (Cursor + 3) & ~3u;
  L.BlobBase = Cursor;

  // Final symbol map for code.
  for (unsigned B = 0; B != G.numBlocks(); ++B) {
    if (Part.RegionOf[B] < 0)
      Syms[G.block(B).Label] = NCAddr[B];
    else if (StubIndexOf[B] >= 0)
      Syms[G.block(B).Label] = StubAddrs[StubIndexOf[B]];
    // Compressed blocks without stubs are unreferenced from outside; any
    // attempted reference fails in encodeInstOrError, catching partition
    // bugs.
  }
  return Status::success();
}

Status Rewriter::lowerRegions() {
  Stored.resize(Part.Regions.size());
  Out.Regions.resize(Part.Regions.size());
  Out.RegionBlocks.resize(Part.Regions.size());
  for (size_t R = 0; R != Part.Regions.size(); ++R) {
    int32_t Self = static_cast<int32_t>(R);
    auto &Seq = Stored[R];
    uint32_t Cur = 0;
    for (unsigned B : Part.Regions[R].Blocks)
      Out.RegionBlocks[R].push_back(
          {B, static_cast<uint32_t>(G.block(B).Insts.size()),
           static_cast<uint8_t>(StubIndexOf[B] >= 0)});
    for (unsigned B : Part.Regions[R].Blocks) {
      for (const auto &I : G.block(B).Insts) {
        uint32_t A = bufAddr(Cur);
        if (isStubCall(I, Self)) {
          // Stored as Bsrx; the decompressor expands it to
          //   bsr ra, CreateStub ; br r31, <callee>
          // with the stored displacement belonging to the BR (second
          // word, at A + 4).
          unsigned Callee = G.idOf(I.Symbol);
          Expected<uint32_t> Target = redirect(Callee);
          if (!Target)
            return Target.status();
          Expected<int32_t> D = brDisp(A + 4, *Target);
          if (!D)
            return D.status();
          Seq.push_back(makeBranch(Opcode::Bsrx, I.Ra, *D));
          ++Out.Regions[R].ExternalCalls;
          Cur += 2;
          continue;
        }
        if (I.Reloc == RelocKind::BranchDisp) {
          unsigned T = G.idOf(I.Symbol);
          uint32_t Target;
          if (I.Op != Opcode::Bsr && Part.RegionOf[T] == Self) {
            // Intra-region branches stay inside the buffer. (Calls never
            // take this path: see isStubCall.)
            Target = bufAddr(static_cast<uint32_t>(ExpOffset[T]));
          } else {
            Expected<uint32_t> Red = redirect(T);
            if (!Red)
              return Red.status();
            Target = *Red;
            if (I.Op == Opcode::Bsr)
              ++Out.Regions[R].BufferSafeCalls;
          }
          Expected<int32_t> D = brDisp(A, Target);
          if (!D)
            return D.status();
          Seq.push_back(makeBranch(I.Op, I.Ra, *D));
          Cur += 1;
          continue;
        }
        // Everything else (including hi16/lo16 address materialization,
        // which resolves to absolute values) lowers position-independently.
        Expected<uint32_t> Word = encodeInstOrError(I, A, Syms);
        if (!Word)
          return Word.status();
        Seq.push_back(decode(*Word));
        Cur += 1;
      }
      if (regionNeedsBr(B)) {
        int32_t Ft = ftOf(B);
        uint32_t A = bufAddr(Cur);
        uint32_t Target;
        if (Part.RegionOf[Ft] == Self) {
          Target = bufAddr(static_cast<uint32_t>(ExpOffset[Ft]));
        } else {
          Expected<uint32_t> Red = redirect(static_cast<unsigned>(Ft));
          if (!Red)
            return Red.status();
          Target = *Red;
        }
        Expected<int32_t> D = brDisp(A, Target);
        if (!D)
          return D.status();
        Seq.push_back(makeBranch(Opcode::Br, RegZero, *D));
        Cur += 1;
      }
    }
    Out.Regions[R].ExpandedWords = ExpandedWords[R];
    Out.Regions[R].StoredInstructions = static_cast<uint32_t>(Seq.size());
  }
  return Status::success();
}

Status Rewriter::emit() {
  // Per-region coder assignment. An empty plan is the legacy all-Huffman
  // encode and reproduces the pre-plan blob byte-for-byte.
  const size_t NumRegions = Part.Regions.size();
  std::vector<CodecKind> Kind(NumRegions, CodecKind::Huffman);
  if (!Plan.RegionCodec.empty()) {
    if (Plan.RegionCodec.size() != NumRegions)
      return Status::error(StatusCode::InvalidArgument,
                           "rewriter: codec plan does not match the region "
                           "partition");
    Kind = Plan.RegionCodec;
  }
  bool UseHuff = false, UsePattern = false, UseContext = false;
  for (CodecKind K : Kind) {
    UseHuff |= K == CodecKind::Huffman;
    UsePattern |= K == CodecKind::Pattern;
    UseContext |= K == CodecKind::Context;
  }
  if (UsePattern && !Plan.Pattern.present())
    return Status::error(StatusCode::InvalidArgument,
                         "rewriter: plan selects the pattern codec but "
                         "carries no pattern tables");
  if (UseContext && !Plan.Context.present())
    return Status::error(StatusCode::InvalidArgument,
                         "rewriter: plan selects the context codec but "
                         "carries no context tables");
  // The plan's side tables were trained on the corpus codec-select lowered,
  // which assumed program-order placement. An explicit function order moves
  // never-compressed targets, so the stored displacements differ; retrain
  // the fixed-alphabet coders on the corpus actually being encoded. The
  // per-region codec choice is kept — placement shifts displacements, not
  // the relative compressibility the selection measured.
  if (HadExplicitOrder) {
    if (UsePattern)
      Plan.Pattern = PatternCodec::build(Stored);
    if (UseContext)
      Plan.Context = ContextCodec::build(Stored);
  }
  for (size_t R = 0; R != NumRegions; ++R)
    Out.Regions[R].Codec = static_cast<uint8_t>(Kind[R]);

  // The Huffman codes are built over exactly the regions they will encode
  // so reassigned regions cannot skew the streams' distributions.
  StreamCodecs::Options CO;
  CO.MoveToFront = Opts.MoveToFront;
  CO.DeltaDisplacements = Opts.DeltaDisplacements;
  if (UseHuff) {
    if (UsePattern || UseContext) {
      std::vector<std::vector<MInst>> HuffCorpus;
      for (size_t R = 0; R != NumRegions; ++R)
        if (Kind[R] == CodecKind::Huffman)
          HuffCorpus.push_back(Stored[R]);
      Out.Codecs = StreamCodecs::build(HuffCorpus, CO);
    } else {
      Out.Codecs = StreamCodecs::build(Stored, CO);
    }
  }

  // Side tables first, in fixed codec order; their measured bit spans feed
  // the footprint so every table is charged to the compressed size.
  vea::BitWriter W;
  FootprintBreakdown &F = Out.Footprint;
  if (UseHuff) {
    Out.Codecs.serializeTables(W);
    F.HuffmanTableBits = W.bitSize();
  }
  if (UsePattern) {
    const uint64_t Before = W.bitSize();
    Plan.Pattern.serializeTables(W);
    F.PatternTableBits = W.bitSize() - Before;
  }
  if (UseContext) {
    const uint64_t Before = W.bitSize();
    Plan.Context.serializeTables(W);
    F.ContextTableBits = W.bitSize() - Before;
  }
  const uint64_t TableBits = W.bitSize();

  auto EncodeOne = [&](size_t R, vea::BitWriter &WR) -> Status {
    switch (Kind[R]) {
    case CodecKind::Huffman:
      return Out.Codecs.encodeRegion(Stored[R], WR);
    case CodecKind::Pattern:
      return Plan.Pattern.encodeRegion(Stored[R], WR);
    case CodecKind::Context:
      return Plan.Context.encodeRegion(Stored[R], WR);
    }
    return Status::error(StatusCode::InternalError,
                         "rewriter: unknown codec kind");
  };
  unsigned Threads =
      ThreadPool::effectiveThreads(Opts.SquashThreads, NumRegions);
  auto EncodeStart = std::chrono::steady_clock::now();
  if (Threads > 1 && NumRegions > 1) {
    // Encode each region into its own bitstream concurrently, then append
    // in region order. Regions are encoded independently (every codec
    // keeps any transform state per region), so the concatenation is
    // byte-identical to the serial path.
    std::vector<vea::BitWriter> Pieces(NumRegions);
    std::vector<Status> Results(NumRegions);
    ThreadPool Pool(Threads);
    Pool.parallelFor(NumRegions, [&](size_t R) {
      Results[R] = EncodeOne(R, Pieces[R]);
    });
    for (size_t R = 0; R != NumRegions; ++R) {
      if (!Results[R].ok())
        return Results[R].context("rewriter: region " + std::to_string(R));
      Out.Regions[R].BitOffset = static_cast<uint32_t>(W.bitSize());
      W.append(Pieces[R]);
    }
  } else {
    Threads = 1;
    for (size_t R = 0; R != NumRegions; ++R) {
      Out.Regions[R].BitOffset = static_cast<uint32_t>(W.bitSize());
      Status St = EncodeOne(R, W);
      if (!St.ok())
        return St.context("rewriter: region " + std::to_string(R));
    }
  }
  F.PayloadBits = W.bitSize() - TableBits;
  Out.Pattern = std::move(Plan.Pattern);
  Out.Context = std::move(Plan.Context);
  Out.Encode.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    EncodeStart)
          .count();
  Out.Encode.ThreadsUsed = Threads;
  std::vector<uint8_t> Blob = W.takeBytes();
  L.BlobBytes = static_cast<uint32_t>(Blob.size());

  Image &Img = Out.Img;
  Img.Base = DefaultBase;
  Img.Bytes.assign(L.BlobBase + L.BlobBytes - DefaultBase, 0);
  Img.CodeBytes = DataBase - DefaultBase;
  Img.Symbols = Syms;

  // Never-compressed code, in the same emission order layout() priced.
  for (unsigned B : EmitOrder) {
    uint32_t PC = NCAddr[B];
    for (const auto &I : G.block(B).Insts) {
      Expected<uint32_t> Word = encodeInstOrError(I, PC, Syms);
      if (!Word)
        return Status(Word.status())
            .context("rewriter: block '" + G.block(B).Label + "'");
      Img.setWord(PC, *Word);
      PC += 4;
    }
    if (ncNeedsBr(B)) {
      int32_t Ft = ftOf(B);
      Expected<uint32_t> Red = redirect(static_cast<unsigned>(Ft));
      if (!Red)
        return Red.status();
      Expected<int32_t> D = brDisp(PC, *Red);
      if (!D)
        return D.status();
      Img.setWord(PC, encode(makeBranch(Opcode::Br, RegZero, *D)));
    }
  }

  // Entry stubs: bsr r25, Decompress(r25) ; tag.
  Out.RegionEntryStubs.resize(Part.Regions.size());
  for (size_t S = 0; S != StubBlocks.size(); ++S) {
    uint32_t Addr = StubAddrs[S];
    unsigned Block = StubBlocks[S];
    Expected<int32_t> D = brDisp(Addr, L.decompressEntry(25));
    if (!D)
      return D.status();
    Img.setWord(Addr, encode(makeBranch(Opcode::Bsr, 25, *D)));
    uint32_t Tag = (static_cast<uint32_t>(StubRegion[S]) << 16) |
                   (1 + static_cast<uint32_t>(ExpOffset[Block]));
    Img.setWord(Addr + 4, Tag);
    Out.StubOf[G.block(Block).Label] = Addr;
    Out.ValidEntryTags.insert(Tag);
    Out.RegionEntryStubs[StubRegion[S]].push_back({Addr, Tag});
  }

  // Decode-cache slot map: every slot starts empty.
  for (uint32_t S = 0; S != L.CacheSlots; ++S)
    Img.setWord(L.SlotMapBase + 4 * S, RuntimeLayout::SlotMapEmpty);

  // The decompressor region is reserved, never fetched (trap dispatch);
  // fill with the illegal sentinel word so stray jumps fault loudly.
  for (uint32_t A = L.DecompBase; A != L.DecompEnd; A += 4)
    Img.setWord(A, 0);

  // Function offset table: absolute bit offsets into the blob.
  for (size_t R = 0; R != Part.Regions.size(); ++R)
    Img.setWord(L.OffsetTableBase + 4 * static_cast<uint32_t>(R),
                Out.Regions[R].BitOffset);

  // Data.
  for (const auto &D : Prog.Data) {
    uint32_t Addr = Syms.at(D.Name);
    std::copy(D.Bytes.begin(), D.Bytes.end(),
              Img.Bytes.begin() + (Addr - Img.Base));
    for (const auto &SW : D.SymWords) {
      auto It = Syms.find(SW.Symbol);
      if (It == Syms.end())
        return Status::error(StatusCode::LayoutError,
                             "rewriter: unresolved data symbol '" +
                                 SW.Symbol + "'");
      Img.setWord(Addr + SW.Offset,
                  It->second + static_cast<uint32_t>(SW.Addend));
    }
  }

  // Compressed blob.
  std::copy(Blob.begin(), Blob.end(),
            Img.Bytes.begin() + (L.BlobBase - Img.Base));

  Img.EntryPC = Syms.at(Prog.EntryFunction);

  // Per-region entry-stub counts.
  for (size_t S = 0; S != StubBlocks.size(); ++S)
    ++Out.Regions[StubRegion[S]].NumEntryStubs;

  // Integrity metadata: per-region expanded-word CRCs (with the recovery
  // copies they are computed from), the immutable image prefix, and the
  // blob.
  Out.RecoveryWords.resize(Part.Regions.size());
  for (size_t R = 0; R != Part.Regions.size(); ++R) {
    std::vector<uint32_t> Words;
    Words.reserve(ExpandedWords[R]);
    for (const MInst &I : Stored[R])
      expandStoredInst(L, I, L.BufferBase + 4 +
                              4 * static_cast<uint32_t>(Words.size()),
                       Words);
    if (Words.size() != ExpandedWords[R])
      return Status::error(StatusCode::InternalError,
                           "rewriter: expanded size mismatch in region " +
                               std::to_string(R));
    Out.Regions[R].Crc32 = expandedWordsCrc(Words);
    if (Opts.RetainRecoveryCopies)
      Out.RecoveryWords[R] = std::move(Words);
  }
  L.ImageCrc32 = crc32(Img.Bytes.data(), L.StubAreaBase - Img.Base);
  L.BlobCrc32 = crc32(Img.Bytes.data() + (L.BlobBase - Img.Base),
                      L.BlobBytes);

  // Footprint.
  F.NeverCompressedWords = NCWords;
  F.EntryStubWords = 2 * static_cast<uint32_t>(StubBlocks.size());
  F.DecompressorWords = Opts.DecompressorCodeWords;
  F.OffsetTableWords = static_cast<uint32_t>(Part.Regions.size());
  F.StubAreaWords = RuntimeLayout::StubSlotWords * L.StubSlots;
  F.SlotMapWords = L.CacheSlots;
  F.BufferWords = L.BufferWords;
  F.CompressedBytes = L.BlobBytes;
  return Status::success();
}

Expected<SquashedProgram> Rewriter::run() {
  computeEntries();
  if (Status St = computeExpandedOffsets(); !St.ok())
    return St;
  if (Status St = layout(); !St.ok())
    return St;
  if (Status St = lowerRegions(); !St.ok())
    return St;
  if (Status St = emit(); !St.ok())
    return St;
  Out.Layout = L;
  Out.Opts = Opts;
  if (HadExplicitOrder)
    recordFunctionOrder(Out, Prog, FuncOrder);
  return std::move(Out);
}

Expected<std::vector<std::vector<MInst>>> Rewriter::preview() {
  computeEntries();
  if (Status St = computeExpandedOffsets(); !St.ok())
    return St;
  if (Status St = layout(); !St.ok())
    return St;
  if (Status St = lowerRegions(); !St.ok())
    return St;
  return std::move(Stored);
}

void squash::recordFunctionOrder(SquashedProgram &SP, const Program &Prog,
                                 const std::vector<unsigned> &FuncOrder) {
  SP.FuncLayout.clear();
  for (unsigned F : FuncOrder) {
    FunctionPlacement P;
    P.FuncIdx = F;
    P.Name = Prog.Functions[F].Name;
    auto It = SP.Img.Symbols.find(P.Name);
    P.Addr = It != SP.Img.Symbols.end() ? It->second : 0;
    SP.FuncLayout.push_back(std::move(P));
  }
}

Expected<SquashedProgram>
squash::rewriteProgram(const Program &Prog, const Cfg &G,
                       const Partition &Part,
                       const std::vector<uint8_t> &Safe,
                       const Options &Opts, CodecPlan Plan,
                       const std::vector<unsigned> &FuncOrder) {
  if (Safe.size() != G.numFunctions())
    return Status::error(
        StatusCode::InvalidArgument,
        "rewriter: buffer-safe vector does not match program");
  if (!FuncOrder.empty()) {
    if (FuncOrder.size() != G.numFunctions())
      return Status::error(
          StatusCode::InvalidArgument,
          "rewriter: function order does not match program");
    std::vector<uint8_t> Seen(G.numFunctions(), 0);
    for (unsigned F : FuncOrder) {
      if (F >= G.numFunctions() || Seen[F])
        return Status::error(
            StatusCode::InvalidArgument,
            "rewriter: function order is not a permutation");
      Seen[F] = 1;
    }
  }
  Rewriter RW(Prog, G, Part, Safe, Opts, std::move(Plan), FuncOrder);
  return RW.run();
}

Expected<std::vector<std::vector<MInst>>>
squash::lowerStoredRegions(const Program &Prog, const Cfg &G,
                           const Partition &Part,
                           const std::vector<uint8_t> &Safe,
                           const Options &Opts) {
  if (Safe.size() != G.numFunctions())
    return Status::error(
        StatusCode::InvalidArgument,
        "rewriter: buffer-safe vector does not match program");
  Rewriter RW(Prog, G, Part, Safe, Opts);
  return RW.preview();
}

std::unique_ptr<RegionCursor>
SquashedProgram::makeRegionCursor(size_t R, const uint8_t *Blob,
                                  size_t BlobBytes) const {
  const size_t StartBit = Regions[R].BitOffset;
  switch (regionCodec(R)) {
  case CodecKind::Huffman:
    return HuffmanCodecView(Codecs).makeDecoder(Blob, BlobBytes, StartBit);
  case CodecKind::Pattern:
    return Pattern.makeDecoder(Blob, BlobBytes, StartBit);
  case CodecKind::Context:
    return Context.makeDecoder(Blob, BlobBytes, StartBit);
  }
  return nullptr;
}

void FootprintBreakdown::exportMetrics(vea::MetricsRegistry &R,
                                       const std::string &Prefix) const {
  R.setCounter(Prefix + "never_compressed_words", NeverCompressedWords);
  R.setCounter(Prefix + "entry_stub_words", EntryStubWords);
  R.setCounter(Prefix + "decompressor_words", DecompressorWords);
  R.setCounter(Prefix + "offset_table_words", OffsetTableWords);
  R.setCounter(Prefix + "stub_area_words", StubAreaWords);
  R.setCounter(Prefix + "slot_map_words", SlotMapWords);
  R.setCounter(Prefix + "buffer_words", BufferWords);
  R.setCounter(Prefix + "compressed_bytes", CompressedBytes);
  R.setCounter(Prefix + "huffman_table_bits", HuffmanTableBits);
  R.setCounter(Prefix + "pattern_table_bits", PatternTableBits);
  R.setCounter(Prefix + "context_table_bits", ContextTableBits);
  R.setCounter(Prefix + "payload_bits", PayloadBits);
  R.setCounter(Prefix + "original_code_bytes", OriginalCodeBytes);
  R.setCounter(Prefix + "total_code_bytes", totalCodeBytes());
  R.setGauge(Prefix + "reduction", reduction());
}
